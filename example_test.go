package coldboot_test

import (
	"fmt"
	"time"

	"coldboot"
)

// Example runs the paper's headline attack end to end: freeze the victim's
// DIMM, move it to a second (still scrambled) machine, dump, mine the
// scrambler keys, recover the XTS-AES-256 masters, unlock the volume.
func Example() {
	out, err := coldboot.Run(coldboot.Scenario{
		CPU:          "i5-6600K",
		FreezeTempC:  -50,
		TransferTime: 2 * time.Second,
		RepairFlips:  1,
		Seed:         1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("stride:", out.Stride)
	fmt.Println("unlocked:", out.VolumeUnlocked)
	fmt.Println("secret:", string(out.SecretRecovered))
	// Output:
	// stride: 4096
	// unlocked: true
	// secret: TOP-SECRET: the cold boot attack recovered this sector.
}

// ExampleRun_defense shows the Section IV defense: the same attack against
// ChaCha8-encrypted memory recovers nothing.
func ExampleRun_defense() {
	out, err := coldboot.Run(coldboot.Scenario{
		Seed:              2,
		Protection:        coldboot.EncryptedChaCha8,
		SameMachineReboot: true,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("keys recovered:", len(out.RecoveredMasters))
	fmt.Println("unlocked:", out.VolumeUnlocked)
	// Output:
	// keys recovered: 0
	// unlocked: false
}

// ExampleCapture demonstrates the offline workflow: acquire now, attack
// later (or elsewhere).
func ExampleCapture() {
	dump, out, err := coldboot.Capture(coldboot.Scenario{Seed: 3, SameMachineReboot: true})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("dump bytes:", len(dump))
	keys, err := coldboot.AttackDump(dump, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("masters recovered:", len(keys))
	_ = out
	// Output:
	// dump bytes: 2097152
	// masters recovered: 2
}
