// Command coldboot runs the end-to-end cold boot attack simulation with
// configurable physical and machine parameters.
//
// Usage:
//
//	coldboot [-cpu i5-6600K] [-channels 1] [-mem 2097152]
//	         [-freeze -25] [-transfer 2s] [-reboot] [-protection stock]
//	         [-seed 1] [-repair 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"coldboot"
	"coldboot/internal/dumpfile"
	"coldboot/internal/machine"
)

func main() {
	cpu := flag.String("cpu", "i5-6600K", "victim CPU model (see -list)")
	attackerCPU := flag.String("attacker-cpu", "", "attacker CPU model (default: same as victim)")
	channels := flag.Int("channels", 1, "memory channels (1 or 2)")
	mem := flag.Int("mem", 2<<20, "DIMM bytes per channel")
	freeze := flag.Float64("freeze", -50, "DIMM temperature during transfer (C); -25 needs a sub-second transfer")
	transfer := flag.Duration("transfer", 2*time.Second, "DIMM transfer duration")
	reboot := flag.Bool("reboot", false, "same-machine reboot instead of DIMM transfer")
	protection := flag.String("protection", "stock", "victim memory protection: stock | off | chacha8 | aes128")
	seed := flag.Int64("seed", 1, "experiment seed")
	repair := flag.Int("repair", 1, "decay repair flips (0-2)")
	list := flag.Bool("list", false, "list Table I CPU models and exit")
	captureTo := flag.String("capture", "", "capture the dump to this file instead of attacking")
	analyzeFrom := flag.String("analyze", "", "attack a previously captured dump file")
	flag.Parse()

	if *list {
		fmt.Println("CPU models (paper Table I):")
		for _, c := range machine.TableI {
			fmt.Printf("  %-10s %-12s %-5v launched %s\n", c.Name, c.Arch, c.Memory, c.Launched)
		}
		return
	}

	var prot coldboot.MemoryProtection
	switch *protection {
	case "stock":
		prot = coldboot.StockScrambler
	case "off":
		prot = coldboot.ScramblerOff
	case "chacha8":
		prot = coldboot.EncryptedChaCha8
	case "aes128":
		prot = coldboot.EncryptedAES128
	default:
		fmt.Fprintf(os.Stderr, "unknown protection %q\n", *protection)
		os.Exit(2)
	}

	if *analyzeFrom != "" {
		analyzeFile(*analyzeFrom, *repair)
		return
	}

	scenario := coldboot.Scenario{
		CPU:               *cpu,
		AttackerCPU:       *attackerCPU,
		Channels:          *channels,
		MemoryBytes:       *mem,
		FreezeTempC:       *freeze,
		TransferTime:      *transfer,
		SameMachineReboot: *reboot,
		Protection:        prot,
		Seed:              *seed,
		RepairFlips:       *repair,
	}

	if *captureTo != "" {
		captureFile(scenario, *captureTo)
		return
	}

	out, err := coldboot.Run(scenario)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("victim seed      %#016x\n", out.VictimSeed)
	fmt.Printf("attacker seed    %#016x\n", out.AttackerSeed)
	fmt.Printf("retention        %.4f\n", out.Retention)
	fmt.Printf("mined keys       %d (stride %d, coverage %.1f%%)\n", out.MinedKeys, out.Stride, out.Coverage*100)
	fmt.Printf("masters found    %d\n", len(out.RecoveredMasters))
	for i, m := range out.RecoveredMasters {
		fmt.Printf("  [%d] %x\n", i, m)
	}
	if out.VolumeUnlocked {
		fmt.Printf("volume UNLOCKED; secret: %q\n", out.SecretRecovered)
	} else {
		fmt.Println("volume still locked — attack failed")
		os.Exit(1)
	}
}

// captureFile runs only the acquisition half and saves the dump container.
func captureFile(s coldboot.Scenario, path string) {
	dump, out, err := coldboot.Capture(s)
	if err != nil {
		log.Fatal(err)
	}
	meta := dumpfile.Metadata{
		CPU:             s.AttackerCPU,
		Channels:        s.Channels,
		ScramblerOn:     true,
		FreezeTempC:     s.FreezeTempC,
		TransferSeconds: s.TransferTime.Seconds(),
		Notes:           fmt.Sprintf("victim seed %#x, attacker seed %#x", out.VictimSeed, out.AttackerSeed),
	}
	if meta.CPU == "" {
		meta.CPU = s.CPU
	}
	if err := dumpfile.WriteFile(path, meta, dump); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured %d bytes (retention %.4f) to %s\n", len(dump), out.Retention, path)
}

// analyzeFile loads a dump container and runs the offline attack.
func analyzeFile(path string, repair int) {
	meta, dump, err := dumpfile.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d bytes captured on %s (%d ch, frozen to %.0fC, %.1fs transfer)\n",
		len(dump), meta.CPU, meta.Channels, meta.FreezeTempC, meta.TransferSeconds)
	keys, err := coldboot.AttackDump(dump, repair)
	if err != nil {
		log.Fatal(err)
	}
	if len(keys) == 0 {
		fmt.Println("no AES master keys recovered")
		os.Exit(1)
	}
	fmt.Printf("%d master keys recovered:\n", len(keys))
	for i, k := range keys {
		fmt.Printf("  [%d] %x\n", i, k)
	}
}
