// Command coldboot runs the end-to-end cold boot attack simulation with
// configurable physical and machine parameters.
//
// Usage:
//
//	coldboot [-cpu i5-6600K] [-channels 1] [-mem 2097152]
//	         [-freeze -25] [-transfer 2s] [-reboot] [-protection stock]
//	         [-seed 1] [-repair 1]
//	         [-timeout 30s] [-progress] [-trace out.json]
//	         [-trace-chrome trace.json] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// The analysis pipeline is observable and cancellable: -timeout bounds the
// whole run, -progress prints live stage progress to stderr, -trace
// writes per-stage wall time plus candidate counters as JSON, and
// -trace-chrome writes the full span tree as Chrome Trace Event JSON
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
// -cpuprofile/-memprofile record pprof profiles of the run.
//
// -analyze exits with scripting-friendly codes: 0 when at least one master
// key was recovered, 3 when a clean run found no keys, and 1 on errors
// (bad container, checksum mismatch, or an interrupted run that had not
// yet recovered a key).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"coldboot"
	"coldboot/internal/core"
	"coldboot/internal/dumpfile"
	"coldboot/internal/format"
	"coldboot/internal/machine"
	"coldboot/internal/obs"
	"coldboot/internal/profiles"

	// Register every target-format scanner so -formats can name them.
	_ "coldboot/internal/format/all"
)

func main() {
	cpu := flag.String("cpu", "i5-6600K", "victim CPU model (see -list)")
	attackerCPU := flag.String("attacker-cpu", "", "attacker CPU model (default: same as victim)")
	channels := flag.Int("channels", 1, "memory channels (1 or 2)")
	mem := flag.Int("mem", 2<<20, "DIMM bytes per channel")
	freeze := flag.Float64("freeze", -50, "DIMM temperature during transfer (C); -25 needs a sub-second transfer")
	transfer := flag.Duration("transfer", 2*time.Second, "DIMM transfer duration")
	reboot := flag.Bool("reboot", false, "same-machine reboot instead of DIMM transfer")
	protection := flag.String("protection", "stock", "victim memory protection: stock | off | chacha8 | aes128")
	seed := flag.Int64("seed", 1, "experiment seed")
	repair := flag.Int("repair", 1, "decay repair flips (0-2)")
	list := flag.Bool("list", false, "list Table I CPU models and exit")
	captureTo := flag.String("capture", "", "capture the dump to this file instead of attacking")
	analyzeFrom := flag.String("analyze", "", "attack a previously captured dump file (streamed, not loaded whole)")
	formats := flag.String("formats", "", "comma-separated target formats to hunt (default all; see -list-formats)")
	listFormats := flag.Bool("list-formats", false, "list registered target formats and exit")
	timeout := flag.Duration("timeout", 0, "abort the attack after this long (0 = no limit); partial results are reported")
	progress := flag.Bool("progress", false, "print live attack progress to stderr")
	traceOut := flag.String("trace", "", "write per-stage wall time and candidate counters as JSON to this file")
	chromeOut := flag.String("trace-chrome", "", "write the span tree as Chrome Trace Event JSON to this file (open in Perfetto or chrome://tracing)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	flag.Parse()

	if *list {
		fmt.Println("CPU models (paper Table I):")
		for _, c := range machine.TableI {
			fmt.Printf("  %-10s %-12s %-5v launched %s\n", c.Name, c.Arch, c.Memory, c.Launched)
		}
		return
	}
	if *listFormats {
		fmt.Println("target formats:")
		for _, n := range core.KnownFormats() {
			fmt.Printf("  %s\n", n)
		}
		return
	}
	formatList := format.ParseSpec(*formats)

	var prot coldboot.MemoryProtection
	switch *protection {
	case "stock":
		prot = coldboot.StockScrambler
	case "off":
		prot = coldboot.ScramblerOff
	case "chacha8":
		prot = coldboot.EncryptedChaCha8
	case "aes128":
		prot = coldboot.EncryptedAES128
	default:
		fmt.Fprintf(os.Stderr, "unknown protection %q\n", *protection)
		os.Exit(2)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	prof, err := profiles.Start(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfiles(prof)
	collector, tracer := buildTracer(*traceOut != "" || *chromeOut != "", *progress)
	defer writeTrace(collector, *traceOut)
	defer writeChromeTrace(collector, *chromeOut)

	if *analyzeFrom != "" {
		// Scripting contract (see README): 0 = keys recovered, 3 = clean
		// run but no keys, 1 = errors. The traces and profiles are written
		// before exiting (os.Exit skips deferred calls).
		code := analyzeFile(ctx, *analyzeFrom, *repair, formatList, tracer)
		writeTrace(collector, *traceOut)
		writeChromeTrace(collector, *chromeOut)
		stopProfiles(prof)
		os.Exit(code)
	}

	scenario := coldboot.Scenario{
		CPU:               *cpu,
		AttackerCPU:       *attackerCPU,
		Channels:          *channels,
		MemoryBytes:       *mem,
		FreezeTempC:       *freeze,
		TransferTime:      *transfer,
		SameMachineReboot: *reboot,
		Protection:        prot,
		Seed:              *seed,
		RepairFlips:       *repair,
		Formats:           formatList,
		Tracer:            tracer,
	}

	if *captureTo != "" {
		captureFile(scenario, *captureTo)
		return
	}

	out, err := coldboot.RunContext(ctx, scenario)
	if err != nil {
		if out == nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "attack interrupted (%v); reporting partial results\n", err)
	}

	fmt.Printf("victim seed      %#016x\n", out.VictimSeed)
	fmt.Printf("attacker seed    %#016x\n", out.AttackerSeed)
	fmt.Printf("retention        %.4f\n", out.Retention)
	fmt.Printf("mined keys       %d (stride %d, coverage %.1f%%)\n", out.MinedKeys, out.Stride, out.Coverage*100)
	fmt.Printf("masters found    %d\n", len(out.RecoveredMasters))
	for i, m := range out.RecoveredMasters {
		fmt.Printf("  [%d] %x\n", i, m)
	}
	if out.VolumeUnlocked {
		fmt.Printf("volume UNLOCKED; secret: %q\n", out.SecretRecovered)
	} else {
		fmt.Println("volume still locked — attack failed")
		writeTrace(collector, *traceOut)
		writeChromeTrace(collector, *chromeOut)
		stopProfiles(prof)
		os.Exit(1)
	}
}

// stopProfiles flushes the pprof session; Stop is idempotent, so the
// deferred call after an explicit pre-os.Exit call is harmless.
func stopProfiles(s *profiles.Session) {
	if err := s.Stop(); err != nil {
		log.Printf("profile: %v", err)
	}
}

// buildTracer assembles the observability hooks the flags ask for: a
// Collector when tracing, a stderr progress printer when -progress.
func buildTracer(trace, progress bool) (*obs.Collector, obs.Tracer) {
	var collector *obs.Collector
	var tracers []obs.Tracer
	if trace {
		collector = obs.NewCollector()
		tracers = append(tracers, collector)
	}
	if progress {
		tracers = append(tracers, progressPrinter())
	}
	return collector, obs.Multi(tracers...)
}

// progressPrinter logs stage transitions and throttled progress ticks.
func progressPrinter() obs.Tracer {
	var lastPct int64 = -1
	return &obs.Funcs{
		OnStageStart: func(name string) {
			fmt.Fprintf(os.Stderr, "[stage] %s...\n", name)
		},
		OnStageEnd: func(name string, wall time.Duration) {
			fmt.Fprintf(os.Stderr, "[stage] %s done in %v\n", name, wall.Round(time.Microsecond))
		},
		OnProgress: func(stage string, done, total int64) {
			if total <= 0 {
				return
			}
			if pct := done * 100 / total; pct != lastPct {
				lastPct = pct
				fmt.Fprintf(os.Stderr, "[%s] %d%% (%d/%d blocks)\n", stage, pct, done, total)
			}
		},
	}
}

// writeTrace dumps the collected stage report; safe to call with nil
// collector or empty path, and idempotent enough for the deferred +
// early-exit double call (the second write just repeats the report).
func writeTrace(c *obs.Collector, path string) {
	if c == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Printf("trace: %v", err)
		return
	}
	if err := c.WriteJSON(f); err != nil {
		log.Printf("trace: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Printf("trace: %v", err)
	}
}

// writeChromeTrace dumps the collected span tree as Chrome Trace Event
// JSON; like writeTrace it is nil/empty-safe and idempotent under the
// deferred + early-exit double call.
func writeChromeTrace(c *obs.Collector, path string) {
	if c == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Printf("trace-chrome: %v", err)
		return
	}
	if err := c.WriteChromeTrace(f); err != nil {
		log.Printf("trace-chrome: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Printf("trace-chrome: %v", err)
	}
}

// captureFile runs only the acquisition half and saves the dump container.
func captureFile(s coldboot.Scenario, path string) {
	dump, out, err := coldboot.Capture(s)
	if err != nil {
		log.Fatal(err)
	}
	meta := dumpfile.Metadata{
		CPU:             s.AttackerCPU,
		Channels:        s.Channels,
		ScramblerOn:     true,
		FreezeTempC:     s.FreezeTempC,
		TransferSeconds: s.TransferTime.Seconds(),
		Notes:           fmt.Sprintf("victim seed %#x, attacker seed %#x", out.VictimSeed, out.AttackerSeed),
	}
	if meta.CPU == "" {
		meta.CPU = s.CPU
	}
	if err := dumpfile.WriteFile(path, meta, dump); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured %d bytes (retention %.4f) to %s\n", len(dump), out.Retention, path)
}

// analyzeFile streams a dump container through the sharded attack campaign
// without loading the image whole: the container header is parsed eagerly,
// the CRC is verified in one streaming pass, and the campaign reads one
// mining window / one shard at a time.
//
// The returned exit code follows the scripting contract: 0 when at least
// one master key was recovered (even from an interrupted run), 3 for a
// clean run that found no keys, 1 for errors (including a run interrupted
// before any key surfaced).
func analyzeFile(ctx context.Context, path string, repair int, formats []string, tracer obs.Tracer) int {
	f, err := dumpfile.Open(path)
	if err != nil {
		log.Print(err)
		return 1
	}
	defer f.Close()
	meta := f.Meta()
	fmt.Printf("loaded %d bytes captured on %s (%d ch, frozen to %.0fC, %.1fs transfer)\n",
		f.Size(), meta.CPU, meta.Channels, meta.FreezeTempC, meta.TransferSeconds)
	if err := f.VerifyChecksum(); err != nil {
		log.Print(err)
		return 1
	}
	src, err := core.ReaderAtSource(f, f.Size())
	if err != nil {
		log.Print(err)
		return 1
	}
	res, runErr := core.RunCampaignSource(ctx, src, core.CampaignConfig{
		Attack: core.Config{RepairFlips: repair, Formats: formats, Tracer: tracer},
	})
	if runErr != nil {
		if res == nil {
			log.Print(runErr)
			return 1
		}
		fmt.Fprintf(os.Stderr, "attack interrupted (%v); reporting partial results\n", runErr)
	}
	for _, v := range res.Volumes {
		fmt.Printf("volume header  %s at %#x (uuid %s)\n", v.Format, v.Offset, v.UUID)
	}
	if len(res.Keys) == 0 {
		fmt.Println("no master keys recovered")
		if runErr != nil {
			return 1
		}
		return 3
	}
	fmt.Printf("%d master keys recovered:\n", len(res.Keys))
	for i, k := range res.Keys {
		tag := k.Format
		if k.Volume != "" {
			tag += " " + k.Volume
		}
		fmt.Printf("  [%d] %x (%s, score %.3f, table at %#x)\n", i, k.Master, tag, k.Score, k.TableStart)
	}
	return 0
}
