// Command crashsmoke is the durability smoke test behind `make
// crash-smoke`: it builds coldbootd, boots it against a data dir, submits
// two dump-analysis jobs (one big enough to still be mid-hunt, one queued
// behind it), SIGKILLs the daemon mid-campaign, restarts it against the
// same data dir, and requires that the write-ahead log replay requeues
// both jobs and that both complete with their planted masters recovered —
// kill -9 during an active hunt must lose no submitted job.
//
// It exercises the layer the in-process tests cannot: a real process
// dying without any chance to flush or drain, and a real second process
// rebuilding the job store from the bytes that survived on disk.
package main

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log"
	//lint:ignore noweakrand seeded deterministic smoke fixture, not keystream material
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"coldboot/internal/aes"
	"coldboot/internal/dumpfile"
	"coldboot/internal/scramble"
	"coldboot/internal/workload"
)

const (
	blockBytes = 64
	// veraStart sits past the first few shards so the kill window (after
	// 4096 blocks of progress) still leaves recovery work for process two.
	veraStart = 100*blockBytes + 32
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crash-smoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("crash-smoke: PASS")
}

func run() error {
	workDir, err := os.MkdirTemp("", "crash-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(workDir)
	dataDir := filepath.Join(workDir, "data")
	if err := os.MkdirAll(dataDir, 0o700); err != nil {
		return err
	}

	bin := filepath.Join(workDir, "coldbootd")
	log.Printf("building coldbootd...")
	build := exec.Command("go", "build", "-o", bin, "./cmd/coldbootd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building coldbootd: %w", err)
	}

	// Fixture sizes pick the kill window: the 64 MiB job is mid-campaign
	// for a comfortable stretch at the gated scan rate, the 2 MiB one
	// waits behind it on the single worker.
	big := buildFixture(510, 64<<20)
	small := buildFixture(511, 2<<20)

	daemon, exited, base, err := startDaemon(bin, dataDir, filepath.Join(workDir, "addr1"))
	if err != nil {
		return err
	}
	defer daemon.Process.Kill()
	log.Printf("daemon #1 up at %s", base)

	bigID, err := submit(base, big.container)
	if err != nil {
		return err
	}
	smallID, err := submit(base, small.container)
	if err != nil {
		return err
	}
	log.Printf("jobs submitted: %s (64 MiB, running), %s (2 MiB, queued)", bigID, smallID)

	// Wait until the big hunt is demonstrably mid-campaign, then pull the
	// rug: SIGKILL, no drain, no flush.
	if err := waitProgress(base, bigID, 4096, exited); err != nil {
		return err
	}
	log.Printf("job %s mid-hunt; sending SIGKILL", bigID)
	if err := daemon.Process.Kill(); err != nil {
		return err
	}
	<-exited

	daemon2, exited2, base2, err := startDaemon(bin, dataDir, filepath.Join(workDir, "addr2"))
	if err != nil {
		return err
	}
	defer daemon2.Process.Kill()
	log.Printf("daemon #2 up at %s (same data dir)", base2)

	// Both jobs must have survived the kill: same IDs, and both complete
	// with the planted masters recovered end to end.
	for _, check := range []struct {
		id     string
		master []byte
	}{{bigID, big.vera}, {smallID, small.vera}} {
		doc, err := pollUntilDone(base2, check.id)
		if err != nil {
			return fmt.Errorf("job %s after restart: %w", check.id, err)
		}
		log.Printf("job %s resumed and finished (progress %v)", check.id, doc["progress"])
		if err := assertMaster(base2, check.id, check.master); err != nil {
			return err
		}
	}
	log.Printf("both planted masters recovered after kill -9")

	// The restarted daemon's trace endpoint serves the resumed job's
	// timeline; save it before the remaining assertions so a red run still
	// ships the trace artifact.
	if err := saveTrace(base2, bigID, "crash-smoke-trace.json"); err != nil {
		return err
	}
	log.Printf("trace validated and saved to crash-smoke-trace.json")

	// The durability gauges must be live on the restarted daemon.
	resp, err := http.Get(base2 + "/metrics")
	if err != nil {
		return err
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	for _, want := range []string{"coldbootd_wal_records", "coldbootd_jobs_abandoned_total", "coldbootd_jobs_done_total 2"} {
		if !strings.Contains(string(metrics), want) {
			return fmt.Errorf("metrics missing %q", want)
		}
	}

	// Graceful shutdown of the second daemon: SIGTERM must drain and exit 0.
	log.Printf("sending SIGTERM to daemon #2...")
	if err := daemon2.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case err := <-exited2:
		if err != nil {
			return fmt.Errorf("daemon #2 exited uncleanly after SIGTERM: %w", err)
		}
	case <-time.After(2 * time.Minute):
		return fmt.Errorf("daemon #2 did not exit within 2m of SIGTERM")
	}
	log.Printf("daemon #2 drained and exited 0")
	return nil
}

// startDaemon boots one coldbootd process over the shared data dir and
// waits for its listen address.
func startDaemon(bin, dataDir, addrFile string) (*exec.Cmd, <-chan error, string, error) {
	daemon := exec.Command(bin,
		"-listen", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-workers", "1",
		"-shard-blocks", "2048",
		"-data-dir", dataDir,
		"-drain-timeout", "2m",
	)
	daemon.Stdout = os.Stderr
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return nil, nil, "", fmt.Errorf("starting coldbootd: %w", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- daemon.Wait() }()
	addr, err := waitForAddr(addrFile, exited)
	if err != nil {
		daemon.Process.Kill()
		return nil, nil, "", err
	}
	return daemon, exited, "http://" + addr, nil
}

func submit(base string, container []byte) (string, error) {
	resp, err := http.Post(base+"/v1/jobs?repair=1", "application/octet-stream", bytes.NewReader(container))
	if err != nil {
		return "", fmt.Errorf("submitting dump: %w", err)
	}
	doc, err := decode(resp)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusCreated {
		return "", fmt.Errorf("submit: HTTP %d: %v", resp.StatusCode, doc)
	}
	id, _ := doc["id"].(string)
	return id, nil
}

// waitProgress polls a job until its progress_done crosses minBlocks —
// proof the campaign is mid-scan, past mining and into shard work.
func waitProgress(base, id string, minBlocks float64, exited <-chan error) error {
	deadline := time.Now().Add(2 * time.Minute)
	for {
		select {
		case err := <-exited:
			return fmt.Errorf("daemon exited while job %s was running: %v", id, err)
		default:
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s never reached %v blocks of progress", id, minBlocks)
		}
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return err
		}
		doc, err := decode(resp)
		if err != nil {
			return err
		}
		if state, _ := doc["state"].(string); state == "done" {
			return fmt.Errorf("job %s finished before the kill landed; shrink -shard-blocks", id)
		}
		if done, _ := doc["progress_done"].(float64); done >= minBlocks {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// assertMaster requires the job's revealed result to contain the planted
// master.
func assertMaster(base, id string, master []byte) error {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result?reveal=keys")
	if err != nil {
		return err
	}
	result, err := decode(resp)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("result %s: HTTP %d: %v", id, resp.StatusCode, result)
	}
	keys, _ := result["keys"].([]any)
	for _, k := range keys {
		km, _ := k.(map[string]any)
		if km["master"] == hex.EncodeToString(master) {
			return nil
		}
	}
	return fmt.Errorf("job %s result missing the planted master: %v", id, result)
}

// fixture is one uploadable dump container plus its planted ground truth.
type fixture struct {
	container []byte
	vera      []byte
}

// buildFixture plants a single AES-256 schedule in a scrambled image
// under 0.05% bit decay (repair=1 at submit recovers it).
func buildFixture(seed int64, size int) fixture {
	rng := rand.New(rand.NewSource(seed))
	fx := fixture{vera: make([]byte, 32)}
	rng.Read(fx.vera)

	plain := make([]byte, size)
	if err := workload.Fill(plain, seed, workload.LightSystem); err != nil {
		log.Fatal(err)
	}
	copy(plain[veraStart:], aes.ExpandKeyBytes(fx.vera))

	dump := make([]byte, size)
	scramble.NewSkylakeDDR4(uint64(seed)*31+7).Scramble(dump, plain, 0)
	for i := 0; i < size*8/2000; i++ {
		bit := rng.Intn(size * 8)
		dump[bit/8] ^= 1 << uint(bit%8)
	}

	var buf bytes.Buffer
	meta := dumpfile.Metadata{CPU: "crash-smoke rig", Channels: 1, ScramblerOn: true, FreezeTempC: -35, TransferSeconds: 60}
	if err := dumpfile.Write(&buf, meta, dump); err != nil {
		log.Fatal(err)
	}
	fx.container = buf.Bytes()
	return fx
}

// pollUntilDone polls a job's status document until it lands in done,
// failing fast on failed/canceled.
func pollUntilDone(base, id string) (map[string]any, error) {
	deadline := time.Now().Add(3 * time.Minute)
	var doc map[string]any
	for {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("job %s did not finish in time; last status %v", id, doc)
		}
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return nil, fmt.Errorf("polling: %w", err)
		}
		if doc, err = decode(resp); err != nil {
			return nil, err
		}
		state, _ := doc["state"].(string)
		if state == "done" {
			return doc, nil
		}
		if state == "failed" || state == "canceled" {
			return nil, fmt.Errorf("job landed in %s: %v", state, doc["error"])
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// saveTrace fetches a job's merged Chrome-trace timeline, validates its
// shape, and writes it to path for CI to attach as an artifact. The
// resumed job re-ran its campaign in process two, so the trace carries the
// full job/campaign/shard tree despite the kill.
func saveTrace(base, id, path string) error {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/trace")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trace %s: HTTP %d: %s", id, resp.StatusCode, data)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("trace %s is not Chrome trace JSON: %w", id, err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("trace %s has no events", id)
	}
	lastTs := -1.0
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		if e.Ts < lastTs {
			return fmt.Errorf("trace %s timestamps not monotonic", id)
		}
		lastTs = e.Ts
		names[e.Name] = true
	}
	for _, want := range []string{"job", "campaign", "shard"} {
		if !names[want] {
			return fmt.Errorf("trace %s missing %q spans", id, want)
		}
	}
	return os.WriteFile(path, data, 0o644)
}

// waitForAddr tails the -addr-file until the daemon writes its bound
// address, failing fast if the process dies first.
func waitForAddr(path string, exited <-chan error) (string, error) {
	deadline := time.Now().Add(30 * time.Second)
	for {
		select {
		case err := <-exited:
			return "", fmt.Errorf("daemon exited before listening: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("daemon never wrote %s", path)
		}
		b, err := os.ReadFile(path)
		if err == nil && len(bytes.TrimSpace(b)) > 0 {
			return string(bytes.TrimSpace(b)), nil
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func decode(resp *http.Response) (map[string]any, error) {
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("decoding response: %w", err)
	}
	return doc, nil
}
