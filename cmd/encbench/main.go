// Command encbench regenerates the paper's defense-half evaluation:
// Table II (cipher engine performance), Figure 6 (decryption latency vs
// bandwidth utilization), and Figure 7 (power and area overhead).
//
// Usage:
//
//	encbench -table2
//	encbench -figure6
//	encbench -figure7
//	encbench -all
//	encbench -hotpath BENCH_hotpath.json
//	encbench -guard BENCH_hotpath.json
package main

import (
	"flag"
	"fmt"
	"os"

	"coldboot/internal/dram"
	"coldboot/internal/engine"
	"coldboot/internal/memsim"
)

func main() {
	table2 := flag.Bool("table2", false, "print Table II")
	figure6 := flag.Bool("figure6", false, "print the Figure 6 series")
	figure7 := flag.Bool("figure7", false, "print the Figure 7 overheads")
	traffic := flag.Bool("traffic", false, "print the command-level traffic cross-validation")
	all := flag.Bool("all", false, "print everything")
	hotpath := flag.String("hotpath", "", "run the attack hot-path benchmarks and write machine-readable JSON to this file (conventionally BENCH_hotpath.json)")
	guard := flag.String("guard", "", "re-run the end-to-end attack benchmark and fail if it regresses past the gate recorded in this BENCH_hotpath.json")
	flag.Parse()
	if *all {
		*table2, *figure6, *figure7, *traffic = true, true, true, true
	}
	if !*table2 && !*figure6 && !*figure7 && !*traffic && *hotpath == "" && *guard == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *hotpath != "" {
		if err := writeHotpath(*hotpath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *guard != "" {
		if err := runGuard(*guard); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *table2 {
		printTable2()
	}
	if *figure6 {
		printFigure6()
	}
	if *figure7 {
		printFigure7()
	}
	if *traffic {
		printTraffic()
	}
}

// printTraffic cross-validates Figure 6 constructively: the command-level
// DDR4 simulator runs each engine against generated traffic patterns.
func printTraffic() {
	fmt.Println("Command-level cross-validation (internal/memsim, DDR4-2400, 16 banks)")
	fmt.Printf("%-10s %-18s %10s %10s %12s %12s\n",
		"engine", "traffic", "rowhit", "util", "max exposed", "avg latency")
	t := dram.DDR4_2400
	traffics := []struct {
		name string
		reqs []memsim.Request
	}{
		{"stream@100%", memsim.StreamTraffic(5000, t, 1)},
		{"stream@80%", memsim.StreamTraffic(5000, t, 0.8)},
		{"random", memsim.RandomTraffic(5000, t, 16, 4096, 0.25, 1)},
		{"mixed70/30", memsim.MixedTraffic(5000, t, 0.7, 2)},
	}
	engines := []*engine.Spec{nil}
	for _, s := range engine.TableII() {
		spec := s
		engines = append(engines, &spec)
	}
	for _, e := range engines {
		name := "(plain)"
		if e != nil {
			name = e.Name
		}
		for _, tr := range traffics {
			p := memsim.DefaultParams()
			p.Engine = e
			sim, err := memsim.New(p)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			stats := sim.Run(tr.reqs)
			fmt.Printf("%-10s %-18s %9.1f%% %9.1f%% %9.2f ns %9.2f ns\n",
				name, tr.name, stats.RowHitRate*100, stats.Utilization*100,
				stats.MaxExposed, stats.AvgReadLatency)
		}
	}
	fmt.Println()
}

func printTable2() {
	fmt.Println("Table II: cipher engine performance (45nm)")
	fmt.Printf("%-10s %16s %12s %24s\n", "Cipher", "Max Freq (GHz)", "Cycles/64B", "Max Pipeline Delay (ns)")
	for _, s := range engine.TableII() {
		fmt.Printf("%-10s %16.2f %12d %24.2f\n",
			s.Name, s.FreqGHz, s.CyclesPer64B, s.MaxPipelineDelayNs())
	}
	fmt.Println()
}

func printFigure6() {
	t := dram.DDR4_2400
	fmt.Printf("Figure 6: worst-case decryption latency (ns) vs bandwidth utilization, %s\n", t.Name)
	fmt.Printf("(CAS latency window: %.2f ns; max back-to-back CAS: %d)\n\n", t.CASLatency, engine.MaxBackToBackCAS)
	specs := engine.TableII()
	fmt.Printf("%6s %6s", "util%", "outst")
	for _, s := range specs {
		fmt.Printf(" %9s", s.Name)
	}
	fmt.Println()
	sweeps := make([][]engine.LatencyPoint, len(specs))
	for i, s := range specs {
		sweeps[i] = engine.UtilizationSweep(s, t)
	}
	for row := range sweeps[0] {
		p0 := sweeps[0][row]
		fmt.Printf("%6.0f %6d", p0.Utilization*100, p0.Outstanding)
		for i := range specs {
			fmt.Printf(" %9.2f", sweeps[i][row].LatencyNs)
		}
		fmt.Println()
	}
	fmt.Println("\nworst-case exposed latency beyond the DRAM access itself (ns):")
	for i, s := range specs {
		last := sweeps[i][len(sweeps[i])-1]
		fmt.Printf("  %-10s %.2f  (zero exposed at all loads: %v)\n",
			s.Name, last.ExposedNs, engine.ZeroExposedLatency(s, t))
	}
	fmt.Println()
}

func printFigure7() {
	fmt.Println("Figure 7: power and area overhead of per-channel cipher engines (45nm)")
	fmt.Printf("%-14s %-9s %6s %10s %10s\n", "platform", "engine", "util", "area %", "power %")
	for _, o := range engine.Figure7() {
		fmt.Printf("%-14s %-9s %5.0f%% %9.2f%% %9.2f%%\n",
			o.Platform.Name, o.Engine.Name, o.Utilization*100, o.AreaPct, o.PowerPct)
	}
	fmt.Println()
}
