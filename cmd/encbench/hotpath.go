package main

import (
	"encoding/json"
	"fmt"
	//lint:ignore noweakrand seeded benchmark data generation, not keystream material
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"coldboot/internal/aes"
	"coldboot/internal/bitutil"
	"coldboot/internal/core"
	"coldboot/internal/keyfind"
	"coldboot/internal/scramble"
	"coldboot/internal/workload"
)

// Hot-path benchmark emitter (the -hotpath flag): runs the same kernels the
// root bench_test.go measures, but in-process and machine-readable, so the
// perf trajectory of the attack hot path can be tracked across PRs by
// diffing BENCH_hotpath.json.

// HotpathResult is one benchmark row of the JSON report.
type HotpathResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s"`
	BytesPerOp  int64   `json:"processed_bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
}

// HotpathReport is the whole BENCH_hotpath.json document. The run metadata
// (toolchain, OS/arch, CPU budget) is embedded so two BENCH_hotpath.json
// files can be compared knowing whether the machines were comparable.
type HotpathReport struct {
	GeneratedBy      string          `json:"generated_by"`
	Date             string          `json:"date"`
	GitRevision      string          `json:"git_revision"`
	GoVersion        string          `json:"go_version"`
	GOOS             string          `json:"goos"`
	GOARCH           string          `json:"goarch"`
	NumCPU           int             `json:"num_cpu"`
	GOMAXPROCS       int             `json:"gomaxprocs"`
	Benchmarks       []HotpathResult `json:"benchmarks"`
	ParallelSpeedup  float64         `json:"keyfind_parallel_over_serial"`
	SpeedupWorkerPop int             `json:"keyfind_parallel_workers"`
}

func row(name string, bytesPerOp int64, fn func(b *testing.B)) HotpathResult {
	r := testing.Benchmark(fn)
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	return HotpathResult{
		Name:        name,
		NsPerOp:     ns,
		MBPerS:      float64(bytesPerOp) / ns * 1e3, // bytes/ns -> MB/s (1e9 ns * 1e-6 MB)
		BytesPerOp:  bytesPerOp,
		AllocsPerOp: r.AllocsPerOp(),
		Iterations:  r.N,
	}
}

// writeHotpath runs the hot-path suite and writes the JSON report to path.
func writeHotpath(path string) error {
	fmt.Fprintf(os.Stderr, "running hot-path benchmarks (NumCPU=%d)...\n", runtime.NumCPU())

	// Shared fixtures.
	xorBuf := make([]byte, 4096)
	xorKey := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(xorKey)
	ddr4 := scramble.NewSkylakeDDR4(1)

	img := make([]byte, 4<<20)
	if err := workload.Fill(img, 5, workload.LoadedSystem); err != nil {
		return err
	}
	planted := make([]byte, 32)
	rand.New(rand.NewSource(6)).Read(planted)
	copy(img[3<<20:], aes.ExpandKeyBytes(planted))

	plain := make([]byte, 2<<20)
	if err := workload.Fill(plain, 7, workload.LightSystem); err != nil {
		return err
	}
	copy(plain[4096*64+128:], aes.ExpandKeyBytes(planted))
	dump := make([]byte, len(plain))
	scramble.NewSkylakeDDR4(11).Scramble(dump, plain, 0)

	report := HotpathReport{
		GeneratedBy: "encbench -hotpath",
		Date:        time.Now().UTC().Format(time.RFC3339),
		GitRevision: gitRevision(),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}

	report.Benchmarks = append(report.Benchmarks,
		row("xor_words_4096B", 4096, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bitutil.XORWords(xorBuf, xorBuf, xorKey)
			}
		}),
		row("xor_block_64B", 64, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bitutil.XORBlock64(xorBuf, xorBuf, xorKey)
			}
		}),
		// The Figure 1 data path: scramble + descramble 4 KiB through the
		// Skylake DDR4 model (matches BenchmarkFigure1ScramblerModel).
		row("figure1_scramble_roundtrip_4096B", 2*4096, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ddr4.Scramble(xorBuf, xorBuf, 0)
				ddr4.Descramble(xorBuf, xorBuf, 0)
			}
		}),
	)

	serial := row("keyfind_scan_serial_4MiB", int64(len(img)), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(keyfind.ScanSerial(img, aes.AES256, 0)) != 1 {
				b.Fatal("planted key not found")
			}
		}
	})
	parallel := row("keyfind_scan_parallel_4MiB", int64(len(img)), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(keyfind.Scan(img, aes.AES256, 0)) != 1 {
				b.Fatal("planted key not found")
			}
		}
	})
	report.Benchmarks = append(report.Benchmarks, serial, parallel)
	if parallel.NsPerOp > 0 {
		report.ParallelSpeedup = serial.NsPerOp / parallel.NsPerOp
	}
	report.SpeedupWorkerPop = runtime.NumCPU()

	report.Benchmarks = append(report.Benchmarks,
		row("attack_dump_2MiB", int64(len(dump)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.Attack(dump, core.Config{})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Keys) == 0 {
					b.Fatal("key not recovered")
				}
			}
		}),
	)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	for _, r := range report.Benchmarks {
		fmt.Printf("%-34s %14.0f ns/op %10.1f MB/s %6d allocs/op\n",
			r.Name, r.NsPerOp, r.MBPerS, r.AllocsPerOp)
	}
	fmt.Printf("keyfind parallel/serial speedup: %.2fx (%d CPUs)\n",
		report.ParallelSpeedup, report.SpeedupWorkerPop)
	return nil
}

// gitRevision returns the working tree's short commit hash (with a -dirty
// suffix when the tree has uncommitted changes), or "unknown" outside a
// git checkout — BENCH snapshots must stay producible from a tarball.
func gitRevision() string {
	rev, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	out := strings.TrimSpace(string(rev))
	if status, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(status) > 0 {
		out += "-dirty"
	}
	return out
}
