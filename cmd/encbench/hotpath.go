package main

import (
	"encoding/json"
	"fmt"
	"log"
	//lint:ignore noweakrand seeded benchmark data generation, not keystream material
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"coldboot/internal/aes"
	"coldboot/internal/bitutil"
	"coldboot/internal/core"
	"coldboot/internal/keyfind"
	"coldboot/internal/obs"
	"coldboot/internal/scramble"
	"coldboot/internal/workload"
)

// Hot-path benchmark emitter (the -hotpath flag): runs the same kernels the
// root bench_test.go measures, but in-process and machine-readable, so the
// perf trajectory of the attack hot path can be tracked across PRs by
// diffing BENCH_hotpath.json.

// HotpathResult is one benchmark row of the JSON report. ns_per_op is the
// mean from testing.Benchmark; p50/p99 come from a separate sampling pass
// through an obs.Histogram, so tail skew (GC pauses, scheduler noise,
// cache-cold iterations) is visible next to the mean. The power-of-two
// buckets bound the percentile estimates within 2x; sub-microsecond ops
// are sampled in batches, so their percentiles describe batch-averaged
// latency, not single-call jitter.
type HotpathResult struct {
	Name           string  `json:"name"`
	NsPerOp        float64 `json:"ns_per_op"`
	P50NsPerOp     float64 `json:"p50_ns_per_op"`
	P99NsPerOp     float64 `json:"p99_ns_per_op"`
	LatencySamples int64   `json:"latency_samples"`
	MBPerS         float64 `json:"mb_per_s"`
	BytesPerOp     int64   `json:"processed_bytes_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	Iterations     int     `json:"iterations"`
}

// HotpathGate is the CI floor/ceiling for the end-to-end attack pipeline
// row: `encbench -guard` re-runs attack_dump_2MiB and fails the build when
// throughput regresses below the floor or the allocation budget is blown.
// The values are deliberately loose relative to the recorded numbers
// (~40% of measured MB/s, ~3x measured allocs) so scheduler noise on a
// loaded 1-CPU CI container does not flake, while a return of per-candidate
// allocation (tens of thousands per op before the pooled-scratch work)
// still fails unmistakably.
type HotpathGate struct {
	AttackDumpMinMBPerS      float64 `json:"attack_dump_min_mb_per_s"`
	AttackDumpMaxAllocsPerOp int64   `json:"attack_dump_max_allocs_per_op"`
}

// defaultHotpathGate is written into fresh reports and backstops reports
// generated before the gate existed.
var defaultHotpathGate = HotpathGate{
	AttackDumpMinMBPerS:      60,
	AttackDumpMaxAllocsPerOp: 1000,
}

// HotpathReport is the whole BENCH_hotpath.json document. The run metadata
// (toolchain, OS/arch, CPU budget) is embedded so two BENCH_hotpath.json
// files can be compared knowing whether the machines were comparable.
type HotpathReport struct {
	GeneratedBy      string          `json:"generated_by"`
	Date             string          `json:"date"`
	GitRevision      string          `json:"git_revision"`
	GoVersion        string          `json:"go_version"`
	GOOS             string          `json:"goos"`
	GOARCH           string          `json:"goarch"`
	NumCPU           int             `json:"num_cpu"`
	GOMAXPROCS       int             `json:"gomaxprocs"`
	Gate             HotpathGate     `json:"gate"`
	Benchmarks       []HotpathResult `json:"benchmarks"`
	ParallelSpeedup  float64         `json:"keyfind_parallel_over_serial"`
	SpeedupWorkerPop int             `json:"keyfind_parallel_workers"`
}

func row(name string, bytesPerOp int64, op func()) HotpathResult {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op()
		}
	})
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	p50, p99, samples := sampleLatency(op, ns)
	return HotpathResult{
		Name:           name,
		NsPerOp:        ns,
		P50NsPerOp:     p50,
		P99NsPerOp:     p99,
		LatencySamples: samples,
		MBPerS:         float64(bytesPerOp) / ns * 1e3, // bytes/ns -> MB/s (1e9 ns * 1e-6 MB)
		BytesPerOp:     bytesPerOp,
		AllocsPerOp:    r.AllocsPerOp(),
		Iterations:     r.N,
	}
}

// Latency sampling bounds: enough samples for a stable p99, capped in wall
// time so the slow whole-attack rows do not stall the report.
const (
	latencyMaxSamples = 512
	latencyBudgetNs   = int64(2e9)
)

// sampleLatency re-runs op, timing batches through the same log-bucketed
// histogram the pipeline uses (obs.Histogram), and returns the p50/p99
// per-op estimates plus the number of samples taken. Ops faster than 1 µs
// run in batches sized to ~1 µs so a clock read does not dominate the
// measurement; each sample is then the batch mean.
func sampleLatency(op func(), nsPerOp float64) (p50, p99 float64, samples int64) {
	batch := int64(1)
	if nsPerOp > 0 && nsPerOp < 1000 {
		batch = int64(1000/nsPerOp) + 1
	}
	var h obs.Histogram
	deadline := obs.Now() + latencyBudgetNs
	for n := 0; n < latencyMaxSamples && obs.Now() < deadline; n++ {
		start := obs.Now()
		for i := int64(0); i < batch; i++ {
			op()
		}
		h.Observe(obs.Since(start) / batch)
	}
	snap := h.Snapshot("latency")
	return float64(snap.P50), float64(snap.P99), snap.Count
}

// attackDump builds the scrambled 2 MiB fixture the attack_dump_2MiB row
// and the -guard re-run share: a light-workload image with one expanded
// AES-256 schedule planted, scrambled by the Skylake DDR4 model.
func attackDump() ([]byte, error) {
	planted := make([]byte, 32)
	rand.New(rand.NewSource(6)).Read(planted)
	plain := make([]byte, 2<<20)
	if err := workload.Fill(plain, 7, workload.LightSystem); err != nil {
		return nil, err
	}
	copy(plain[4096*64+128:], aes.ExpandKeyBytes(planted))
	dump := make([]byte, len(plain))
	scramble.NewSkylakeDDR4(11).Scramble(dump, plain, 0)
	return dump, nil
}

// attackRow benchmarks the whole mine→directory→hunt→assemble pipeline over
// the shared fixture.
func attackRow(dump []byte) HotpathResult {
	return row("attack_dump_2MiB", int64(len(dump)), func() {
		res, err := core.Attack(dump, core.Config{})
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Keys) == 0 {
			log.Fatal("key not recovered")
		}
	})
}

// writeHotpath runs the hot-path suite and writes the JSON report to path.
func writeHotpath(path string) error {
	fmt.Fprintf(os.Stderr, "running hot-path benchmarks (NumCPU=%d)...\n", runtime.NumCPU())

	// Shared fixtures.
	xorBuf := make([]byte, 4096)
	xorKey := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(xorKey)
	ddr4 := scramble.NewSkylakeDDR4(1)

	img := make([]byte, 4<<20)
	if err := workload.Fill(img, 5, workload.LoadedSystem); err != nil {
		return err
	}
	planted := make([]byte, 32)
	rand.New(rand.NewSource(6)).Read(planted)
	copy(img[3<<20:], aes.ExpandKeyBytes(planted))

	dump, err := attackDump()
	if err != nil {
		return err
	}

	report := HotpathReport{
		GeneratedBy: "encbench -hotpath",
		Date:        time.Now().UTC().Format(time.RFC3339),
		GitRevision: gitRevision(),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Gate:        defaultHotpathGate,
	}

	report.Benchmarks = append(report.Benchmarks,
		row("xor_words_4096B", 4096, func() {
			bitutil.XORWords(xorBuf, xorBuf, xorKey)
		}),
		row("xor_block_64B", 64, func() {
			bitutil.XORBlock64(xorBuf, xorBuf, xorKey)
		}),
		// The Figure 1 data path: scramble + descramble 4 KiB through the
		// Skylake DDR4 model (matches BenchmarkFigure1ScramblerModel).
		row("figure1_scramble_roundtrip_4096B", 2*4096, func() {
			ddr4.Scramble(xorBuf, xorBuf, 0)
			ddr4.Descramble(xorBuf, xorBuf, 0)
		}),
	)

	serial := row("keyfind_scan_serial_4MiB", int64(len(img)), func() {
		if len(keyfind.ScanSerial(img, aes.AES256, 0)) != 1 {
			log.Fatal("planted key not found")
		}
	})
	parallel := row("keyfind_scan_parallel_4MiB", int64(len(img)), func() {
		if len(keyfind.Scan(img, aes.AES256, 0)) != 1 {
			log.Fatal("planted key not found")
		}
	})
	report.Benchmarks = append(report.Benchmarks, serial, parallel)
	if parallel.NsPerOp > 0 {
		report.ParallelSpeedup = serial.NsPerOp / parallel.NsPerOp
	}
	report.SpeedupWorkerPop = runtime.NumCPU()

	report.Benchmarks = append(report.Benchmarks, attackRow(dump))

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	for _, r := range report.Benchmarks {
		fmt.Printf("%-34s %14.0f ns/op  p50 %12.0f  p99 %12.0f %10.1f MB/s %6d allocs/op\n",
			r.Name, r.NsPerOp, r.P50NsPerOp, r.P99NsPerOp, r.MBPerS, r.AllocsPerOp)
	}
	fmt.Printf("keyfind parallel/serial speedup: %.2fx (%d CPUs)\n",
		report.ParallelSpeedup, report.SpeedupWorkerPop)
	return nil
}

// runGuard re-runs the end-to-end attack benchmark and enforces the gate
// recorded in the committed BENCH_hotpath.json at path (falling back to the
// built-in defaults for pre-gate reports). This is the CI tripwire for the
// pipeline's throughput and allocation discipline: a change that quietly
// reintroduces per-candidate allocation fails here even if every unit test
// passes.
func runGuard(path string) error {
	gate := defaultHotpathGate
	if data, err := os.ReadFile(path); err == nil {
		var committed HotpathReport
		if err := json.Unmarshal(data, &committed); err != nil {
			return fmt.Errorf("guard: parsing %s: %w", path, err)
		}
		if committed.Gate.AttackDumpMinMBPerS > 0 {
			gate.AttackDumpMinMBPerS = committed.Gate.AttackDumpMinMBPerS
		}
		if committed.Gate.AttackDumpMaxAllocsPerOp > 0 {
			gate.AttackDumpMaxAllocsPerOp = committed.Gate.AttackDumpMaxAllocsPerOp
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("guard: reading %s: %w", path, err)
	}

	fmt.Fprintf(os.Stderr, "guard: re-running attack_dump_2MiB (floor %.0f MB/s, ceiling %d allocs/op)...\n",
		gate.AttackDumpMinMBPerS, gate.AttackDumpMaxAllocsPerOp)
	dump, err := attackDump()
	if err != nil {
		return err
	}
	r := attackRow(dump)
	fmt.Printf("guard: %s %14.0f ns/op %10.1f MB/s %6d allocs/op\n",
		r.Name, r.NsPerOp, r.MBPerS, r.AllocsPerOp)
	if r.MBPerS < gate.AttackDumpMinMBPerS {
		return fmt.Errorf("guard: %s throughput %.1f MB/s is below the %.0f MB/s floor (pipeline regression)",
			r.Name, r.MBPerS, gate.AttackDumpMinMBPerS)
	}
	if r.AllocsPerOp > gate.AttackDumpMaxAllocsPerOp {
		return fmt.Errorf("guard: %s allocates %d times per op, over the %d budget (pooled-scratch regression)",
			r.Name, r.AllocsPerOp, gate.AttackDumpMaxAllocsPerOp)
	}
	fmt.Println("guard: attack_dump_2MiB within gate")
	return nil
}

// gitRevision returns the working tree's short commit hash (with a -dirty
// suffix when the tree has uncommitted changes), or "unknown" outside a
// git checkout — BENCH snapshots must stay producible from a tarball.
func gitRevision() string {
	rev, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	out := strings.TrimSpace(string(rev))
	if status, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(status) > 0 {
		out += "-dirty"
	}
	return out
}
