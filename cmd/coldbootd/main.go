// Command coldbootd is the long-running dump-analysis daemon: it accepts
// memory-dump containers over HTTP, schedules bounded concurrent attack
// campaigns over them, and reports live per-stage progress, redacted key
// results, and Prometheus metrics.
//
//	coldbootd -listen :8080 -workers 2 -job-timeout 2h -data-dir /var/tmp
//
// With -data-dir set the job store is durable: every lifecycle mutation
// is journaled to a write-ahead log under <data-dir>/wal before it
// applies, and on restart the daemon replays it — queued and mid-run
// hunts resume, finished jobs stay queryable (key material as
// fingerprints unless the job was submitted with ?reveal=keys).
//
// -role splits the daemon across machines:
//
//	coldbootd -role standalone            today's single-process daemon (default)
//	coldbootd -role coordinator           serve the API and shard every campaign
//	                                      to workers over /v1/shards/* leases
//	coldbootd -role worker -coordinator http://host:8080
//	                                      no API; lease shards, scan, report back
//
// API (see internal/service and DESIGN.md "Analysis service"):
//
//	POST   /v1/jobs             submit a dump container (body)
//	GET    /v1/jobs/{id}        status with per-stage progress
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/jobs/{id}/result key report (?reveal=keys for key material)
//	GET    /v1/jobs/{id}/trace  merged Chrome-trace timeline (Perfetto-loadable)
//	POST   /v1/shards/lease     (coordinator) worker lease protocol
//	GET    /metrics             Prometheus text
//	GET    /healthz             liveness
//
// Tracing: -trace-chrome FILE writes the process's span timeline as Chrome
// Trace Event JSON on exit (any role). On a coordinator that timeline
// includes the span trees workers shipped with their shard completions —
// one named track per worker, clock-corrected onto the coordinator's
// timebase. Workers additionally take -metrics-addr to expose their local
// pipeline histograms and span-drop counters on a separate listener.
//
// -pprof-addr mounts net/http/pprof on a second, separate listener so the
// profiling surface can be firewalled independently of the service API:
//
//	coldbootd -listen :8080 -pprof-addr 127.0.0.1:6060
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
//
// On SIGTERM/SIGINT the daemon stops accepting work (new submissions get
// 503), lets running analyses finish (bounded by -drain-timeout), and
// exits 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"coldboot/internal/fleet"
	"coldboot/internal/obs"
	"coldboot/internal/service"

	// Register every target-format scanner (aesxts, chacha20, luks2) so
	// submitted jobs hunt all of them unless ?formats= narrows the set.
	_ "coldboot/internal/format/all"
)

// daemonOpts carries the parsed flag set.
type daemonOpts struct {
	listen       string
	workers      int
	jobTimeout   time.Duration
	maxUpload    int64
	dataDir      string
	retries      int
	shardBlocks  int
	drainTimeout time.Duration
	addrFile     string
	pprofAddr    string
	role         string
	coordinator  string
	workerName   string
	leaseTTL     time.Duration
	traceChrome  string
	metricsAddr  string
}

func main() {
	var o daemonOpts
	flag.StringVar(&o.listen, "listen", ":8080", "listen address (host:port; :0 picks a free port)")
	flag.IntVar(&o.workers, "workers", 2, "concurrent analysis jobs")
	flag.DurationVar(&o.jobTimeout, "job-timeout", 0, "per-job run budget (0 = unlimited)")
	flag.Int64Var(&o.maxUpload, "max-upload", service.DefaultMaxUploadBytes, "largest accepted upload in bytes")
	flag.StringVar(&o.dataDir, "data-dir", "", "directory for spooled uploads and the durable job journal (default: OS temp dir, no durability)")
	flag.IntVar(&o.retries, "retries", 1, "total attempts for transiently failing jobs")
	flag.IntVar(&o.shardBlocks, "shard-blocks", 0, "campaign shard size in blocks (0 = default; small values yield fine-grained progress and cancellation)")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 10*time.Minute, "how long shutdown waits for running jobs")
	flag.StringVar(&o.addrFile, "addr-file", "", "write the bound address to this file once listening (for scripts using :0)")
	flag.StringVar(&o.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this separate address (empty = profiling off)")
	flag.StringVar(&o.role, "role", service.RoleStandalone, "fleet role: standalone, coordinator, or worker")
	flag.StringVar(&o.coordinator, "coordinator", "", "coordinator base URL (required for -role worker)")
	flag.StringVar(&o.workerName, "worker-name", "", "this worker's name in leases and metrics (default: hostname-pid)")
	flag.DurationVar(&o.leaseTTL, "lease-ttl", 30*time.Second, "coordinator shard lease lifetime; workers heartbeat a few times per TTL")
	flag.StringVar(&o.traceChrome, "trace-chrome", "", "write this process's span timeline as Chrome Trace Event JSON to this file on exit")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "(worker role) serve Prometheus /metrics on this separate address; other roles serve /metrics on -listen")
	flag.Parse()

	log.SetFlags(0)
	log.SetPrefix("coldbootd: ")
	var err error
	if o.role == service.RoleWorker {
		err = runWorker(o)
	} else {
		err = run(o)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// runWorker is the -role worker loop: no HTTP surface of its own, just a
// fleet client leasing shards from the coordinator until signalled.
func runWorker(o daemonOpts) error {
	if o.coordinator == "" {
		return fmt.Errorf("-role worker requires -coordinator URL")
	}
	name := o.workerName
	if name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		name = host + "-" + strconv.Itoa(os.Getpid())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// The worker's collector is its local observability root: scans trace
	// into it (in addition to shipping telemetry with each completion), the
	// optional -metrics-addr listener reports it, and -trace-chrome writes
	// it out on exit.
	col := obs.NewCollector()
	if o.metricsAddr != "" {
		stopMetrics, err := serveWorkerMetrics(o.metricsAddr, col)
		if err != nil {
			return err
		}
		defer stopMetrics()
	}
	if o.traceChrome != "" {
		defer func() {
			if err := writeChromeTrace(col, o.traceChrome); err != nil {
				log.Printf("writing -trace-chrome: %v", err)
			}
		}()
	}
	log.Printf("worker %s leasing from %s", name, o.coordinator)
	w := &fleet.Worker{Base: o.coordinator, Name: name, Tracer: col}
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	log.Printf("worker %s stopped", name)
	return nil
}

func run(o daemonOpts) error {
	svc, err := service.New(service.Config{
		Workers:        o.workers,
		JobTimeout:     o.jobTimeout,
		MaxUploadBytes: o.maxUpload,
		DataDir:        o.dataDir,
		MaxAttempts:    o.retries,
		ShardBlocks:    o.shardBlocks,
		Role:           o.role,
		LeaseTTL:       o.leaseTTL,
	})
	if err != nil {
		return err
	}
	if o.traceChrome != "" {
		defer func() {
			if err := writeChromeTrace(svc.Collector(), o.traceChrome); err != nil {
				log.Printf("writing -trace-chrome: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	addr := ln.Addr().String()
	if o.addrFile != "" {
		if err := os.WriteFile(o.addrFile, []byte(addr+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("writing -addr-file: %w", err)
		}
	}
	log.Printf("listening on %s (role %s, %d workers, max upload %d bytes)", addr, o.role, o.workers, o.maxUpload)

	if o.pprofAddr != "" {
		stopPprof, err := servePprof(o.pprofAddr)
		if err != nil {
			ln.Close()
			return err
		}
		defer stopPprof()
	}

	httpSrv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	log.Printf("shutting down: draining running jobs (up to %v)", o.drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	// Drain the pool first — running campaigns finish, queued jobs are
	// abandoned, new submissions get 503 — while the HTTP server stays up
	// so operators can keep polling progress. Only then close the server.
	drainErr := svc.Drain(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if drainErr != nil {
		return fmt.Errorf("drain interrupted with jobs still running: %w", drainErr)
	}
	log.Printf("drained cleanly")
	return nil
}

// servePprof mounts the net/http/pprof handlers on their own listener and
// mux — deliberately not the service mux, so operators can bind profiling
// to loopback while the API listens publicly. The returned func closes the
// listener.
func servePprof(addr string) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Printf("pprof on http://%s/debug/pprof/", ln.Addr())
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("pprof server: %v", err)
		}
	}()
	return func() { srv.Close() }, nil
}

// serveWorkerMetrics exposes a worker's local collector as Prometheus text
// on its own listener — workers have no service mux, but their pipeline
// histograms and span-drop counters are still worth scraping. The returned
// func closes the listener.
func serveWorkerMetrics(addr string, col *obs.Collector) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		col.Report().WritePrometheus(w, "coldbootd_pipeline")
	})
	log.Printf("worker metrics on http://%s/metrics", ln.Addr())
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("metrics server: %v", err)
		}
	}()
	return func() { srv.Close() }, nil
}

// writeChromeTrace dumps a collector's completed spans as Chrome Trace
// Event JSON, loadable in Perfetto or chrome://tracing.
func writeChromeTrace(col *obs.Collector, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = col.WriteChromeTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
