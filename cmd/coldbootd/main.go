// Command coldbootd is the long-running dump-analysis daemon: it accepts
// memory-dump containers over HTTP, schedules bounded concurrent attack
// campaigns over them, and reports live per-stage progress, redacted key
// results, and Prometheus metrics.
//
//	coldbootd -listen :8080 -workers 2 -job-timeout 2h -data-dir /var/tmp
//
// API (see internal/service and DESIGN.md "Analysis service"):
//
//	POST   /v1/jobs             submit a dump container (body)
//	GET    /v1/jobs/{id}        status with per-stage progress
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/jobs/{id}/result key report (?reveal=keys for key material)
//	GET    /metrics             Prometheus text
//	GET    /healthz             liveness
//
// -pprof-addr mounts net/http/pprof on a second, separate listener so the
// profiling surface can be firewalled independently of the service API:
//
//	coldbootd -listen :8080 -pprof-addr 127.0.0.1:6060
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
//
// On SIGTERM/SIGINT the daemon stops accepting work (new submissions get
// 503), lets running analyses finish (bounded by -drain-timeout), and
// exits 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"coldboot/internal/service"

	// Register every target-format scanner (aesxts, chacha20, luks2) so
	// submitted jobs hunt all of them unless ?formats= narrows the set.
	_ "coldboot/internal/format/all"
)

func main() {
	listen := flag.String("listen", ":8080", "listen address (host:port; :0 picks a free port)")
	workers := flag.Int("workers", 2, "concurrent analysis jobs")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job run budget (0 = unlimited)")
	maxUpload := flag.Int64("max-upload", service.DefaultMaxUploadBytes, "largest accepted upload in bytes")
	dataDir := flag.String("data-dir", "", "directory for spooled uploads (default: the OS temp dir)")
	retries := flag.Int("retries", 1, "total attempts for transiently failing jobs")
	shardBlocks := flag.Int("shard-blocks", 0, "campaign shard size in blocks (0 = default; small values yield fine-grained progress and cancellation)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Minute, "how long shutdown waits for running jobs")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using :0)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = profiling off)")
	flag.Parse()

	log.SetFlags(0)
	log.SetPrefix("coldbootd: ")
	if err := run(*listen, *workers, *jobTimeout, *maxUpload, *dataDir, *retries, *shardBlocks, *drainTimeout, *addrFile, *pprofAddr); err != nil {
		log.Fatal(err)
	}
}

func run(listen string, workers int, jobTimeout time.Duration, maxUpload int64, dataDir string, retries, shardBlocks int, drainTimeout time.Duration, addrFile, pprofAddr string) error {
	svc := service.New(service.Config{
		Workers:        workers,
		JobTimeout:     jobTimeout,
		MaxUploadBytes: maxUpload,
		DataDir:        dataDir,
		MaxAttempts:    retries,
		ShardBlocks:    shardBlocks,
	})

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	addr := ln.Addr().String()
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(addr+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("writing -addr-file: %w", err)
		}
	}
	log.Printf("listening on %s (%d workers, max upload %d bytes)", addr, workers, maxUpload)

	if pprofAddr != "" {
		stopPprof, err := servePprof(pprofAddr)
		if err != nil {
			ln.Close()
			return err
		}
		defer stopPprof()
	}

	httpSrv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	log.Printf("shutting down: draining running jobs (up to %v)", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Drain the pool first — running campaigns finish, queued jobs are
	// abandoned, new submissions get 503 — while the HTTP server stays up
	// so operators can keep polling progress. Only then close the server.
	drainErr := svc.Drain(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if drainErr != nil {
		return fmt.Errorf("drain interrupted with jobs still running: %w", drainErr)
	}
	log.Printf("drained cleanly")
	return nil
}

// servePprof mounts the net/http/pprof handlers on their own listener and
// mux — deliberately not the service mux, so operators can bind profiling
// to loopback while the API listens publicly. The returned func closes the
// listener.
func servePprof(addr string) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Printf("pprof on http://%s/debug/pprof/", ln.Addr())
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("pprof server: %v", err)
		}
	}()
	return func() { srv.Close() }, nil
}
