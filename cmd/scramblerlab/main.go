// Command scramblerlab is the paper's analysis framework (§III-A) as a
// tool: it compares DDR3 and DDR4 scramblers, regenerates the Figure 3
// panels as PGM images, and reports the Table I machine inventory.
//
// Usage:
//
//	scramblerlab -table1            # print Table I
//	scramblerlab -figure3 DIR       # write fig3a..fig3e PGM panels to DIR
//	scramblerlab -compare           # DDR3 vs DDR4 correlation statistics
//	scramblerlab -retention         # §III-D retention table
package main

import (
	"flag"
	"fmt"
	"log"
	//lint:ignore noweakrand seeded deterministic simulation driver, not keystream material
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"coldboot/internal/bitutil"
	"coldboot/internal/chacha"
	"coldboot/internal/dram"
	"coldboot/internal/machine"
	"coldboot/internal/memimg"
	"coldboot/internal/randtest"
	"coldboot/internal/scramble"
)

func main() {
	table1 := flag.Bool("table1", false, "print the Table I machine inventory")
	figure3 := flag.String("figure3", "", "write Figure 3 PGM panels into this directory")
	compare := flag.Bool("compare", false, "print DDR3 vs DDR4 correlation statistics")
	retention := flag.Bool("retention", false, "print the §III-D retention measurements")
	battery := flag.Bool("battery", false, "print the randomness battery: scrambler generator vs ChaCha8")
	flag.Parse()

	ran := false
	if *table1 {
		printTable1()
		ran = true
	}
	if *figure3 != "" {
		writeFigure3(*figure3)
		ran = true
	}
	if *compare {
		printComparison()
		ran = true
	}
	if *retention {
		printRetention()
		ran = true
	}
	if *battery {
		printBattery()
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func printTable1() {
	fmt.Println("Table I: CPU models of tested machines")
	fmt.Printf("%-12s %-14s %s\n", "CPU Model", "Microarch", "Launch Date")
	for _, c := range machine.TableI {
		fmt.Printf("%-12s %-14s %s\n", fmt.Sprintf("%s (%v)", c.Name, c.Memory), c.Arch, c.Launched)
	}
}

// figure3Panels builds the five panels of Figure 3 over the test pattern.
func figure3Panels() map[string][]byte {
	const width = 1024
	plain := make([]byte, width*width)
	memimg.TestPattern(plain, width)

	ddr3a := scramble.NewDDR3(0x1111)
	ddr3b := scramble.NewDDR3(0x2222)
	ddr4a := scramble.NewSkylakeDDR4(0x1111)
	ddr4b := scramble.NewSkylakeDDR4(0x2222)

	sc := func(s scramble.Scrambler) []byte {
		out := make([]byte, len(plain))
		s.Scramble(out, plain, 0)
		return out
	}
	d3 := sc(ddr3a)
	d4 := sc(ddr4a)
	// "Read back after reboot": the stored scrambled bits descrambled with
	// the NEW boot's keystream = plain ^ K_a ^ K_b.
	reboot := func(stored []byte, s scramble.Scrambler) []byte {
		out := make([]byte, len(stored))
		s.Descramble(out, stored, 0)
		return out
	}
	return map[string][]byte{
		"fig3a_original.pgm":    plain,
		"fig3b_ddr3.pgm":        d3,
		"fig3c_ddr3_reboot.pgm": reboot(d3, ddr3b),
		"fig3d_ddr4.pgm":        d4,
		"fig3e_ddr4_reboot.pgm": reboot(d4, ddr4b),
	}
}

func writeFigure3(dir string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, data := range figure3Panels() {
		im, err := memimg.New(data)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			log.Fatal(err)
		}
		if err := im.WritePGM(f, 1024); err != nil {
			log.Fatal(err)
		}
		f.Close()
		s := im.Correlations()
		fmt.Printf("%-24s distinct blocks %6d, correlated fraction %.3f\n",
			name, s.Distinct, s.CorrelatedFraction())
	}
}

func printComparison() {
	panels := figure3Panels()
	fmt.Println("Figure 3 correlation statistics (test pattern, 1 MiB):")
	order := []string{"fig3a_original.pgm", "fig3b_ddr3.pgm", "fig3c_ddr3_reboot.pgm",
		"fig3d_ddr4.pgm", "fig3e_ddr4_reboot.pgm"}
	for _, name := range order {
		im, _ := memimg.New(panels[name])
		s := im.Correlations()
		fmt.Printf("%-24s distinct %6d  correlated %.3f  entropy %.2f\n",
			name, s.Distinct, s.CorrelatedFraction(), bitutil.Entropy(panels[name]))
	}
}

func printRetention() {
	fmt.Println("Section III-D: retention after a 5s transfer")
	fmt.Printf("%-20s %10s %12s %12s\n", "module", "std", "-25C/5s", "+20C/3s")
	for i, spec := range dram.ModuleCatalog {
		spec.Geometry = spec.Geometry.WithCapacity(1 << 20)
		cold := measure(spec, int64(i), -25, 5*time.Second)
		warm := measure(spec, int64(i), 20, 3*time.Second)
		fmt.Printf("%-20s %10v %11.2f%% %11.2f%%\n", spec.Model, spec.Standard, cold*100, warm*100)
	}
}

// printBattery prints the statistical and algebraic randomness comparison:
// the scrambler's generator stream (reconstructed from one key via the w/d
// inversion) versus a ChaCha8 keystream.
func printBattery() {
	s := scramble.NewSkylakeDDR4(0x5EED)
	key := s.KeyAt(0)
	var gen []byte
	for g := 0; g < 4; g++ {
		base := g * 16
		gen = append(gen, key[base:base+8]...)
		gen = append(gen, key[base+8]^key[base], key[base+9]^key[base+1])
	}
	cc, err := chacha.New(chacha.Rounds8, make([]byte, 32), 7)
	if err != nil {
		log.Fatal(err)
	}
	stream := make([]byte, 4096)
	cc.Keystream(stream, 0)

	fmt.Println("randomness battery: scrambler generator (from ONE mined key) vs ChaCha8")
	lc := randtest.LinearComplexity(randtest.Bits(gen), len(gen)*8)
	fmt.Printf("  scrambler generator: linear complexity %d/%d bits, LFSR-predictable %v\n",
		lc, len(gen)*8, randtest.PredictableFromPrefix(randtest.Bits(gen), 64, 150))
	r := randtest.Battery(randtest.Bits(stream))
	fmt.Printf("  ChaCha8 keystream:   statistical pass %v, linear complexity %d/4096, LFSR-predictable %v\n",
		r.PassesStatistical(), r.LinearComplexity, r.LFSRPredictable)
}

func measure(spec dram.ModuleSpec, seed int64, tempC float64, d time.Duration) float64 {
	m, err := dram.NewModule(spec, seed)
	if err != nil {
		log.Fatal(err)
	}
	data := make([]byte, m.Size())
	rand.New(rand.NewSource(seed)).Read(data)
	m.Write(0, data)
	m.SetTemperature(tempC)
	m.PowerOff()
	m.Elapse(d)
	return m.MeasureRetention(data)
}
