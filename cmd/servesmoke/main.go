// Command servesmoke is the end-to-end smoke test behind `make
// serve-smoke`: it builds coldbootd, boots it on a random port, submits a
// multi-format fixture dump (a planted VeraCrypt AES-256 master, a LUKS2
// VMK schedule pair with its volume header, and a raw ChaCha20 state)
// over HTTP, tails the job's live NDJSON event stream (including a cursor
// resume), polls the job's per-format progress to completion, asserts
// every planted key comes back with the right format tag (and that the
// metrics endpoint saw the per-format work), DELETEs a second job mid-run
// and requires partial per-format results, then SIGTERMs the daemon and
// requires a clean drain (exit 0).
//
// It exercises the real binary over a real socket — the layer the
// in-process httptest suite cannot reach (flag parsing, signal handling,
// listener setup, process exit codes).
package main

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log"
	//lint:ignore noweakrand seeded deterministic smoke fixture, not keystream material
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"coldboot/internal/aes"
	"coldboot/internal/chacha"
	"coldboot/internal/dumpfile"
	"coldboot/internal/format/luks2"
	"coldboot/internal/scramble"
	"coldboot/internal/workload"
)

// Planted-target layout. The VeraCrypt schedule and ChaCha state sit in
// the first few shards (-shard-blocks 2048 below) so the cancellation job
// has recovered them before the DELETE lands.
const (
	blockBytes  = 64
	veraStart   = 100*blockBytes + 32
	chachaStart = 2100*blockBytes + 16
	luksStart   = 9000*blockBytes + 16
	luksTweak   = luksStart + 240
	headerStart = 20000 * blockBytes
	volumeUUID  = "5c01db00-dead-beef-cafe-123456789abc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve-smoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("serve-smoke: PASS")
}

func run() error {
	workDir, err := os.MkdirTemp("", "serve-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(workDir)

	bin := filepath.Join(workDir, "coldbootd")
	log.Printf("building coldbootd...")
	build := exec.Command("go", "build", "-o", bin, "./cmd/coldbootd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building coldbootd: %w", err)
	}

	fx := buildFixture(77, 2<<20)
	log.Printf("fixture: %d-byte container, planted vera %x.../luks pair/chacha %x...",
		len(fx.container), fx.vera[:4], fx.chachaKey[:4])

	addrFile := filepath.Join(workDir, "addr")
	daemon := exec.Command(bin,
		"-listen", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-workers", "1",
		"-shard-blocks", "2048",
		"-data-dir", workDir,
		"-drain-timeout", "2m",
	)
	daemon.Stdout = os.Stderr
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return fmt.Errorf("starting coldbootd: %w", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- daemon.Wait() }()
	defer daemon.Process.Kill()

	addr, err := waitForAddr(addrFile, exited)
	if err != nil {
		return err
	}
	base := "http://" + addr
	log.Printf("daemon up at %s", base)

	if err := multiFormatJob(base, fx); err != nil {
		return err
	}
	if err := cancelJob(base); err != nil {
		return err
	}

	// Graceful shutdown: SIGTERM must drain and exit 0.
	log.Printf("sending SIGTERM...")
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case err := <-exited:
		if err != nil {
			return fmt.Errorf("daemon exited uncleanly after SIGTERM: %w", err)
		}
	case <-time.After(2 * time.Minute):
		return fmt.Errorf("daemon did not exit within 2m of SIGTERM")
	}
	log.Printf("daemon drained and exited 0")
	return nil
}

// multiFormatJob drives the headline path: one submitted dump, every
// format recovered and tagged in a single pass, with per-format counts on
// the status document and the metrics endpoint.
func multiFormatJob(base string, fx fixture) error {
	resp, err := http.Post(base+"/v1/jobs?repair=1", "application/octet-stream", bytes.NewReader(fx.container))
	if err != nil {
		return fmt.Errorf("submitting dump: %w", err)
	}
	doc, err := decode(resp)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("submit: HTTP %d: %v", resp.StatusCode, doc)
	}
	id, _ := doc["id"].(string)
	log.Printf("job %s submitted", id)

	// Tail the live telemetry stream while the job runs: the first
	// connection reads from the start, asserts strictly ordered event
	// sequence numbers, and detaches after a handful of events, recording
	// its cursor for the resume check below.
	lastSeq, _, nLive, err := consumeEvents(base, id, 0, 5)
	if err != nil {
		return fmt.Errorf("live event stream: %w", err)
	}
	if nLive == 0 {
		return fmt.Errorf("live event stream delivered no events")
	}
	log.Printf("live stream: %d events, detached at cursor %d", nLive, lastSeq)

	doc, err = pollUntilDone(base, id)
	if err != nil {
		return err
	}
	log.Printf("job done (progress %v)", doc["progress"])

	// Save the job's span timeline first thing after completion, so a
	// failure in any later assertion still leaves the trace on disk for CI
	// to attach as an artifact.
	if tid, _ := doc["trace_id"].(string); tid == "" {
		return fmt.Errorf("done job carries no trace_id: %v", doc)
	}
	if err := saveTrace(base, id, "serve-smoke-trace.json"); err != nil {
		return err
	}
	log.Printf("trace validated and saved to serve-smoke-trace.json")

	// Per-format tallies on the status document (the job's progress view).
	formats, _ := doc["formats"].(map[string]any)
	for name, want := range map[string]float64{
		"aesxts.candidates":   1,
		"luks2.candidates":    2,
		"chacha20.candidates": 1,
		"luks2.volumes":       1,
	} {
		if got, _ := formats[name].(float64); got != want {
			return fmt.Errorf("status formats[%q] = %v, want %v (have %v)", name, formats[name], want, formats)
		}
	}
	log.Printf("status reports per-format counts: %v", formats)

	// Every planted key comes back with the right format tag.
	resp, err = http.Get(base + "/v1/jobs/" + id + "/result?reveal=keys")
	if err != nil {
		return err
	}
	result, err := decode(resp)
	if err != nil {
		return err
	}
	keys, _ := result["keys"].([]any)
	masters := map[string]map[string]bool{} // format -> hex master set
	for _, k := range keys {
		km, _ := k.(map[string]any)
		f, _ := km["format"].(string)
		m, _ := km["master"].(string)
		if masters[f] == nil {
			masters[f] = map[string]bool{}
		}
		masters[f][m] = true
		if f == "luks2" {
			if uuid, _ := km["volume"].(string); uuid != volumeUUID {
				return fmt.Errorf("luks2 key volume %q, want %q", uuid, volumeUUID)
			}
		}
	}
	if !masters["aesxts"][hex.EncodeToString(fx.vera)] {
		return fmt.Errorf("vera master not recovered under aesxts: %v", masters)
	}
	if !masters["luks2"][hex.EncodeToString(fx.luksData)] || !masters["luks2"][hex.EncodeToString(fx.luksTweak)] {
		return fmt.Errorf("luks2 VMK pair not recovered: %v", masters)
	}
	if !masters["chacha20"][hex.EncodeToString(fx.chachaKey)] {
		return fmt.Errorf("chacha key not recovered under chacha20: %v", masters)
	}
	vols, _ := result["volumes"].([]any)
	if len(vols) != 1 {
		return fmt.Errorf("volumes = %v, want the sighted LUKS2 header", vols)
	}
	log.Printf("all three formats recovered and tagged (%d keys, 1 volume)", len(keys))

	// Resume the event stream from the recorded cursor: each surviving
	// event arrives exactly once with a sequence number past the cursor,
	// and — the job being done — the server closes the connection itself
	// with an "end" line.
	endSeq, sawEnd, nResumed, err := consumeEvents(base, id, lastSeq, 0)
	if err != nil {
		return fmt.Errorf("resumed event stream: %w", err)
	}
	if !sawEnd {
		return fmt.Errorf("resumed event stream closed without an end line")
	}
	log.Printf("resumed stream: %d more events through seq %d, end line seen", nResumed, endSeq)

	// The metrics endpoint must have seen the pool, the pipeline, and the
	// per-format counters.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	for _, want := range []string{
		"coldbootd_jobs_done_total 1",
		"coldbootd_pipeline_stage_wall_seconds",
		"coldbootd_pipeline_jobs_run_seconds_bucket",
		"coldbootd_pipeline_hunt_chunk_seconds_count",
		`{name="format.aesxts.candidates"} 1`,
		`{name="format.luks2.candidates"} 2`,
		`{name="format.chacha20.candidates"} 1`,
		`{name="format.luks2.volumes"} 1`,
	} {
		if !strings.Contains(string(metrics), want) {
			return fmt.Errorf("metrics missing %q", want)
		}
	}
	log.Printf("metrics report per-format counters")
	return nil
}

// cancelJob submits a larger fixture, DELETEs it after the first shards
// complete, and requires a partial result that still carries tagged
// per-format findings from the finished shards.
func cancelJob(base string) error {
	// 64 MiB: at the gated >=60 MB/s the scan runs for a sub-second
	// stretch, leaving a wide window for the DELETE to land mid-campaign
	// (an 8 MiB job is over in ~100ms — cancellation would race completion).
	fx := buildFixture(78, 64<<20)
	resp, err := http.Post(base+"/v1/jobs?repair=1", "application/octet-stream", bytes.NewReader(fx.container))
	if err != nil {
		return fmt.Errorf("submitting cancel-job dump: %w", err)
	}
	doc, err := decode(resp)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("submit: HTTP %d: %v", resp.StatusCode, doc)
	}
	id, _ := doc["id"].(string)
	log.Printf("cancel job %s submitted (64 MiB)", id)

	// Wait for the early shards (holding the VeraCrypt and ChaCha targets)
	// to finish, then cancel mid-campaign.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("cancel job never progressed: %v", doc)
		}
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return err
		}
		if doc, err = decode(resp); err != nil {
			return err
		}
		if state, _ := doc["state"].(string); state == "done" {
			return fmt.Errorf("cancel job finished before the DELETE landed; shrink -shard-blocks")
		}
		if done, _ := doc["progress_done"].(float64); done >= 4096 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	if doc, err = decode(resp); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("DELETE: HTTP %d: %v", resp.StatusCode, doc)
	}

	deadline = time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("cancel job never reached canceled: %v", doc)
		}
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return err
		}
		if doc, err = decode(resp); err != nil {
			return err
		}
		if state, _ := doc["state"].(string); state == "canceled" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err = http.Get(base + "/v1/jobs/" + id + "/result?reveal=keys")
	if err != nil {
		return err
	}
	result, err := decode(resp)
	if err != nil {
		return err
	}
	if partial, _ := result["partial"].(bool); !partial {
		return fmt.Errorf("canceled job's result not marked partial: %v", result)
	}
	formats, _ := result["formats"].(map[string]any)
	if n, _ := formats["aesxts"].(float64); n < 1 {
		return fmt.Errorf("partial result lost the early aesxts finding: %v", result)
	}
	keys, _ := result["keys"].([]any)
	found := false
	for _, k := range keys {
		km, _ := k.(map[string]any)
		if km["format"] == "aesxts" && km["master"] == hex.EncodeToString(fx.vera) {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("partial result missing the planted vera master: %v", keys)
	}
	log.Printf("DELETE mid-run kept partial per-format results (%d keys, formats %v)", len(keys), formats)
	return nil
}

// fixture is one uploadable multi-format dump container plus its planted
// ground truth.
type fixture struct {
	container []byte
	vera      []byte
	luksData  []byte
	luksTweak []byte
	chachaKey []byte
}

// buildFixture returns a dump container with every supported target
// planted in a scrambled image under 0.05% bit decay. Decay spares the
// strict-parse LUKS2 header and the raw ChaCha state (intact page-cache
// pages); the AES schedules have repair machinery and take their lumps.
func buildFixture(seed int64, size int) fixture {
	rng := rand.New(rand.NewSource(seed))
	key32 := func() []byte {
		k := make([]byte, 32)
		rng.Read(k)
		return k
	}
	fx := fixture{vera: key32(), luksData: key32(), luksTweak: key32(), chachaKey: key32()}

	plain := make([]byte, size)
	if err := workload.Fill(plain, seed, workload.LightSystem); err != nil {
		log.Fatal(err)
	}
	copy(plain[veraStart:], aes.ExpandKeyBytes(fx.vera))
	copy(plain[luksStart:], aes.ExpandKeyBytes(fx.luksData))
	copy(plain[luksTweak:], aes.ExpandKeyBytes(fx.luksTweak))
	copy(plain[headerStart:], luks2.EncodeHeader(&luks2.Header{
		Primary:     true,
		Version:     2,
		HeaderSize:  16384,
		SeqID:       7,
		Label:       "smoke",
		ChecksumAlg: "sha256",
		UUID:        volumeUUID,
		Cipher:      "aes-xts-plain64",
		KeyBytes:    64,
	}))
	st := plain[chachaStart : chachaStart+64]
	for i, w := range chacha.Sigma() {
		binary.LittleEndian.PutUint32(st[4*i:], w)
	}
	copy(st[16:48], fx.chachaKey)
	binary.LittleEndian.PutUint32(st[48:], 1)

	dump := make([]byte, size)
	scramble.NewSkylakeDDR4(uint64(seed)*31+7).Scramble(dump, plain, 0)
	for i := 0; i < size*8/2000; i++ {
		bit := rng.Intn(size * 8)
		off := bit / 8
		if (off >= headerStart && off < headerStart+luks2.BinHeaderBytes+1024) ||
			(off >= chachaStart && off < chachaStart+64) {
			continue
		}
		dump[off] ^= 1 << uint(bit%8)
	}

	var buf bytes.Buffer
	meta := dumpfile.Metadata{CPU: "serve-smoke rig", Channels: 1, ScramblerOn: true, FreezeTempC: -35, TransferSeconds: 60}
	if err := dumpfile.Write(&buf, meta, dump); err != nil {
		log.Fatal(err)
	}
	fx.container = buf.Bytes()
	return fx
}

// pollUntilDone polls a job's status document until it lands in done,
// failing fast on failed/canceled.
func pollUntilDone(base, id string) (map[string]any, error) {
	deadline := time.Now().Add(3 * time.Minute)
	var doc map[string]any
	for {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("job %s did not finish in time; last status %v", id, doc)
		}
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return nil, fmt.Errorf("polling: %w", err)
		}
		if doc, err = decode(resp); err != nil {
			return nil, err
		}
		state, _ := doc["state"].(string)
		if state == "done" {
			return doc, nil
		}
		if state == "failed" || state == "canceled" {
			return nil, fmt.Errorf("job landed in %s: %v", state, doc["error"])
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// eventLine is the union of a data event (obs.Event, keyed by "seq") and
// the stream's control lines (gap/heartbeat/end, keyed by "cursor").
type eventLine struct {
	Type    string `json:"type"`
	Seq     uint64 `json:"seq"`
	Cursor  uint64 `json:"cursor"`
	Skipped uint64 `json:"skipped"`
	State   string `json:"state"`
}

// consumeEvents reads a job's NDJSON event stream starting after cursor,
// asserting that sequence numbers only move forward, and returns the last
// position seen, whether the server's "end" line arrived, and how many
// data events were read. maxData > 0 detaches after that many data events
// (the live-tail case); 0 reads until the stream ends.
func consumeEvents(base, id string, cursor uint64, maxData int) (lastSeq uint64, sawEnd bool, nData int, err error) {
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events?cursor=%d", base, id, cursor))
	if err != nil {
		return 0, false, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, false, 0, fmt.Errorf("events: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		return 0, false, 0, fmt.Errorf("events: Content-Type %q, want application/x-ndjson", ct)
	}
	lastSeq = cursor
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		var line eventLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return lastSeq, sawEnd, nData, fmt.Errorf("bad stream line %q: %w", sc.Text(), err)
		}
		switch line.Type {
		case "end":
			return lastSeq, true, nData, nil
		case "heartbeat":
			// Keepalive; carries no new position.
		case "gap":
			// The reader fell behind the ring buffer; the cursor jumps
			// past the overwritten events but must still move forward.
			if line.Cursor <= lastSeq {
				return lastSeq, sawEnd, nData, fmt.Errorf("gap cursor %d not after %d", line.Cursor, lastSeq)
			}
			lastSeq = line.Cursor
		default: // a data event: span_start/span_end/span_attr/count/progress/observe
			if line.Seq <= lastSeq {
				return lastSeq, sawEnd, nData, fmt.Errorf("event seq %d not after %d (type %q)", line.Seq, lastSeq, line.Type)
			}
			lastSeq = line.Seq
			nData++
			if maxData > 0 && nData >= maxData {
				return lastSeq, false, nData, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return lastSeq, sawEnd, nData, err
	}
	return lastSeq, sawEnd, nData, fmt.Errorf("stream closed without an end line")
}

// saveTrace fetches a job's merged Chrome-trace timeline, validates its
// shape (valid Trace Event JSON, monotonic timestamps, the expected span
// names), and writes it to path so CI can attach it as an artifact when a
// later step fails.
func saveTrace(base, id, path string) error {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/trace")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trace %s: HTTP %d: %s", id, resp.StatusCode, data)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("trace %s is not Chrome trace JSON: %w", id, err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("trace %s has no events", id)
	}
	lastTs := -1.0
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		if e.Ts < lastTs {
			return fmt.Errorf("trace %s timestamps not monotonic", id)
		}
		lastTs = e.Ts
		names[e.Name] = true
	}
	for _, want := range []string{"job", "campaign", "shard"} {
		if !names[want] {
			return fmt.Errorf("trace %s missing %q spans", id, want)
		}
	}
	return os.WriteFile(path, data, 0o644)
}

// waitForAddr polls the daemon's -addr-file, bailing early if the process
// dies before binding.
func waitForAddr(path string, exited <-chan error) (string, error) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-exited:
			return "", fmt.Errorf("coldbootd exited before binding: %v", err)
		default:
		}
		data, err := os.ReadFile(path)
		if err == nil && len(bytes.TrimSpace(data)) > 0 {
			return string(bytes.TrimSpace(data)), nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return "", fmt.Errorf("daemon never wrote %s", path)
}

func decode(resp *http.Response) (map[string]any, error) {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	doc := make(map[string]any)
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("decoding %q: %w", data, err)
	}
	return doc, nil
}
