// Command servesmoke is the end-to-end smoke test behind `make
// serve-smoke`: it builds coldbootd, boots it on a random port, submits a
// small scrambled+decayed fixture dump over HTTP, tails the job's live
// NDJSON event stream (including a cursor resume), polls the job to
// completion, asserts the planted master key is recovered (and that the
// metrics endpoint saw the work), then SIGTERMs the daemon and requires a
// clean drain (exit 0).
//
// It exercises the real binary over a real socket — the layer the
// in-process httptest suite cannot reach (flag parsing, signal handling,
// listener setup, process exit codes).
package main

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log"
	//lint:ignore noweakrand seeded deterministic smoke fixture, not keystream material
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"coldboot/internal/aes"
	"coldboot/internal/dumpfile"
	"coldboot/internal/scramble"
	"coldboot/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve-smoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("serve-smoke: PASS")
}

func run() error {
	workDir, err := os.MkdirTemp("", "serve-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(workDir)

	bin := filepath.Join(workDir, "coldbootd")
	log.Printf("building coldbootd...")
	build := exec.Command("go", "build", "-o", bin, "./cmd/coldbootd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building coldbootd: %w", err)
	}

	container, master := buildFixture()
	log.Printf("fixture: %d-byte container, planted master %x...", len(container), master[:4])

	addrFile := filepath.Join(workDir, "addr")
	daemon := exec.Command(bin,
		"-listen", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-workers", "1",
		"-data-dir", workDir,
		"-drain-timeout", "2m",
	)
	daemon.Stdout = os.Stderr
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return fmt.Errorf("starting coldbootd: %w", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- daemon.Wait() }()
	defer daemon.Process.Kill()

	addr, err := waitForAddr(addrFile, exited)
	if err != nil {
		return err
	}
	base := "http://" + addr
	log.Printf("daemon up at %s", base)

	// Submit the fixture and follow it to completion.
	resp, err := http.Post(base+"/v1/jobs?repair=1", "application/octet-stream", bytes.NewReader(container))
	if err != nil {
		return fmt.Errorf("submitting dump: %w", err)
	}
	doc, err := decode(resp)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("submit: HTTP %d: %v", resp.StatusCode, doc)
	}
	id, _ := doc["id"].(string)
	log.Printf("job %s submitted", id)

	// Tail the live telemetry stream while the job runs: the first
	// connection reads from the start, asserts strictly ordered event
	// sequence numbers, and detaches after a handful of events, recording
	// its cursor for the resume check below.
	lastSeq, _, nLive, err := consumeEvents(base, id, 0, 5)
	if err != nil {
		return fmt.Errorf("live event stream: %w", err)
	}
	if nLive == 0 {
		return fmt.Errorf("live event stream delivered no events")
	}
	log.Printf("live stream: %d events, detached at cursor %d", nLive, lastSeq)

	deadline := time.Now().Add(3 * time.Minute)
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s did not finish in time; last status %v", id, doc)
		}
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return fmt.Errorf("polling: %w", err)
		}
		if doc, err = decode(resp); err != nil {
			return err
		}
		state, _ := doc["state"].(string)
		if state == "done" {
			break
		}
		if state == "failed" || state == "canceled" {
			return fmt.Errorf("job landed in %s: %v", state, doc["error"])
		}
		time.Sleep(100 * time.Millisecond)
	}
	log.Printf("job done (progress %v)", doc["progress"])

	// The recovered master must match the planted key bit for bit.
	resp, err = http.Get(base + "/v1/jobs/" + id + "/result?reveal=keys")
	if err != nil {
		return err
	}
	result, err := decode(resp)
	if err != nil {
		return err
	}
	keys, _ := result["keys"].([]any)
	if len(keys) == 0 {
		return fmt.Errorf("no keys recovered: %v", result)
	}
	got, _ := keys[0].(map[string]any)["master"].(string)
	if got != hex.EncodeToString(master) {
		return fmt.Errorf("recovered master %s, want %s", got, hex.EncodeToString(master))
	}
	log.Printf("recovered the planted master key")

	// Resume the event stream from the recorded cursor: each surviving
	// event arrives exactly once with a sequence number past the cursor,
	// and — the job being done — the server closes the connection itself
	// with an "end" line.
	endSeq, sawEnd, nResumed, err := consumeEvents(base, id, lastSeq, 0)
	if err != nil {
		return fmt.Errorf("resumed event stream: %w", err)
	}
	if !sawEnd {
		return fmt.Errorf("resumed event stream closed without an end line")
	}
	log.Printf("resumed stream: %d more events through seq %d, end line seen", nResumed, endSeq)

	// The metrics endpoint must have seen the pool and the pipeline.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	for _, want := range []string{
		"coldbootd_jobs_done_total 1",
		"coldbootd_pipeline_stage_wall_seconds",
		// The native histograms: job latency from the pool, per-chunk scan
		// latency from the hunt stage.
		"coldbootd_pipeline_jobs_run_seconds_bucket",
		"coldbootd_pipeline_hunt_chunk_seconds_count",
	} {
		if !strings.Contains(string(metrics), want) {
			return fmt.Errorf("metrics missing %q", want)
		}
	}

	// Graceful shutdown: SIGTERM must drain and exit 0.
	log.Printf("sending SIGTERM...")
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case err := <-exited:
		if err != nil {
			return fmt.Errorf("daemon exited uncleanly after SIGTERM: %w", err)
		}
	case <-time.After(2 * time.Minute):
		return fmt.Errorf("daemon did not exit within 2m of SIGTERM")
	}
	log.Printf("daemon drained and exited 0")
	return nil
}

// buildFixture returns a dump container with an AES-256 schedule planted
// in a scrambled image under 0.1% bit decay, plus the planted master key.
func buildFixture() ([]byte, []byte) {
	const size = 2 << 20
	const tableStart = 4096*64 + 256
	rng := rand.New(rand.NewSource(77))
	master := make([]byte, 32)
	rng.Read(master)

	plain := make([]byte, size)
	if err := workload.Fill(plain, 77, workload.LightSystem); err != nil {
		log.Fatal(err)
	}
	copy(plain[tableStart:], aes.ExpandKeyBytes(master))
	dump := make([]byte, size)
	scramble.NewSkylakeDDR4(77*31+7).Scramble(dump, plain, 0)
	for i := 0; i < size*8/1000; i++ {
		bit := rng.Intn(size * 8)
		dump[bit/8] ^= 1 << uint(bit%8)
	}

	var buf bytes.Buffer
	meta := dumpfile.Metadata{CPU: "serve-smoke rig", Channels: 1, ScramblerOn: true, FreezeTempC: -35, TransferSeconds: 60}
	if err := dumpfile.Write(&buf, meta, dump); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes(), master
}

// eventLine is the union of a data event (obs.Event, keyed by "seq") and
// the stream's control lines (gap/heartbeat/end, keyed by "cursor").
type eventLine struct {
	Type    string `json:"type"`
	Seq     uint64 `json:"seq"`
	Cursor  uint64 `json:"cursor"`
	Skipped uint64 `json:"skipped"`
	State   string `json:"state"`
}

// consumeEvents reads a job's NDJSON event stream starting after cursor,
// asserting that sequence numbers only move forward, and returns the last
// position seen, whether the server's "end" line arrived, and how many
// data events were read. maxData > 0 detaches after that many data events
// (the live-tail case); 0 reads until the stream ends.
func consumeEvents(base, id string, cursor uint64, maxData int) (lastSeq uint64, sawEnd bool, nData int, err error) {
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events?cursor=%d", base, id, cursor))
	if err != nil {
		return 0, false, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, false, 0, fmt.Errorf("events: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		return 0, false, 0, fmt.Errorf("events: Content-Type %q, want application/x-ndjson", ct)
	}
	lastSeq = cursor
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		var line eventLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return lastSeq, sawEnd, nData, fmt.Errorf("bad stream line %q: %w", sc.Text(), err)
		}
		switch line.Type {
		case "end":
			return lastSeq, true, nData, nil
		case "heartbeat":
			// Keepalive; carries no new position.
		case "gap":
			// The reader fell behind the ring buffer; the cursor jumps
			// past the overwritten events but must still move forward.
			if line.Cursor <= lastSeq {
				return lastSeq, sawEnd, nData, fmt.Errorf("gap cursor %d not after %d", line.Cursor, lastSeq)
			}
			lastSeq = line.Cursor
		default: // a data event: span_start/span_end/span_attr/count/progress/observe
			if line.Seq <= lastSeq {
				return lastSeq, sawEnd, nData, fmt.Errorf("event seq %d not after %d (type %q)", line.Seq, lastSeq, line.Type)
			}
			lastSeq = line.Seq
			nData++
			if maxData > 0 && nData >= maxData {
				return lastSeq, false, nData, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return lastSeq, sawEnd, nData, err
	}
	return lastSeq, sawEnd, nData, fmt.Errorf("stream closed without an end line")
}

// waitForAddr polls the daemon's -addr-file, bailing early if the process
// dies before binding.
func waitForAddr(path string, exited <-chan error) (string, error) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-exited:
			return "", fmt.Errorf("coldbootd exited before binding: %v", err)
		default:
		}
		data, err := os.ReadFile(path)
		if err == nil && len(bytes.TrimSpace(data)) > 0 {
			return string(bytes.TrimSpace(data)), nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return "", fmt.Errorf("daemon never wrote %s", path)
}

func decode(resp *http.Response) (map[string]any, error) {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	doc := make(map[string]any)
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("decoding %q: %w", data, err)
	}
	return doc, nil
}
