// Command coldbootlint runs the project's static-analysis suite
// (internal/lint) over the module: nine rules enforcing the hot-path,
// context-threading, crypto, and secret-hygiene contracts established by
// earlier PRs.
//
// Usage:
//
//	coldbootlint [-list] [-json] [packages]
//
// With no arguments (or "./...") the whole module is checked. Package
// arguments restrict which packages' findings are REPORTED (the whole
// module is always loaded, because several rules are cross-package).
// Findings print as "file:line: rule-id: message"; with -json they print
// instead as a JSON array of {file, line, rule, message} objects (an
// empty array on a clean tree), for CI artifacts and editor tooling. The
// exit status is 1 when there are findings, 2 on a load error, 0 on a
// clean tree.
//
// A deliberate exception is annotated at the finding site (same line or the
// line above) with:
//
//	//lint:ignore rule-id reason
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"coldboot/internal/lint"
)

// jsonFinding is the machine-readable shape of one finding.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the rules and the contracts they enforce")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array instead of plain lines")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: coldbootlint [-list] [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, r := range lint.Rules() {
			fmt.Printf("%-12s %s\n", r.ID(), r.Doc())
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "coldbootlint:", err)
		os.Exit(2)
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coldbootlint:", err)
		os.Exit(2)
	}

	filters := packageFilters(root, flag.Args())
	findings := lint.Run(mod, lint.Options{})
	reported := 0
	docs := []jsonFinding{} // non-nil: a clean tree serializes as []
	for _, f := range findings {
		if !matchesFilters(f.Pos.Filename, filters) {
			continue
		}
		if *asJSON {
			docs = append(docs, jsonFinding{
				File:    filepath.ToSlash(f.Pos.Filename),
				Line:    f.Pos.Line,
				Rule:    f.Rule,
				Message: f.Msg,
			})
		} else {
			fmt.Println(f)
		}
		reported++
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(docs); err != nil {
			fmt.Fprintln(os.Stderr, "coldbootlint:", err)
			os.Exit(2)
		}
	}
	if reported > 0 {
		fmt.Fprintf(os.Stderr, "coldbootlint: %d finding(s)\n", reported)
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// packageFilters converts CLI package patterns into module-relative path
// prefixes. "./..." (or no patterns) means everything.
func packageFilters(root string, args []string) []string {
	var out []string
	for _, a := range args {
		if a == "./..." || a == "all" {
			return nil
		}
		recursive := strings.HasSuffix(a, "/...")
		a = strings.TrimSuffix(a, "/...")
		a = strings.TrimPrefix(a, "./")
		if abs, err := filepath.Abs(a); err == nil {
			if rel, err := filepath.Rel(root, abs); err == nil && !strings.HasPrefix(rel, "..") {
				a = filepath.ToSlash(rel)
			}
		}
		if a == "." {
			return nil
		}
		_ = recursive // a bare dir and dir/... filter identically (by prefix)
		out = append(out, a)
	}
	return out
}

func matchesFilters(filename string, filters []string) bool {
	if len(filters) == 0 {
		return true
	}
	f := filepath.ToSlash(filename)
	for _, p := range filters {
		if strings.HasPrefix(f, p+"/") || filepath.ToSlash(filepath.Dir(f)) == p {
			return true
		}
	}
	return false
}
