package coldboot

// One benchmark per table and figure of the paper. Each bench regenerates
// the corresponding result (the cmd/ tools print the same data in the
// paper's row/series format); the measured time documents the simulation
// cost of the experiment.

import (
	"bytes"
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"coldboot/internal/aes"
	"coldboot/internal/bitutil"
	"coldboot/internal/core"
	"coldboot/internal/dram"
	"coldboot/internal/dumpfile"
	"coldboot/internal/engine"
	"coldboot/internal/keyfind"
	"coldboot/internal/machine"
	"coldboot/internal/memimg"
	"coldboot/internal/obs"
	"coldboot/internal/scramble"
	"coldboot/internal/workload"
)

// BenchmarkTableI builds and boots every Table I machine.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cpu := range machine.TableI {
			m, err := machine.New(machine.Config{CPU: cpu, DIMMBytes: 1 << 20, ScramblerOn: true, BIOSEntropy: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			if err := m.Boot(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure1ScramblerModel exercises the Figure 1 data path: data
// XORed with a PRNG stream keyed by (seed, address) on write and read.
func BenchmarkFigure1ScramblerModel(b *testing.B) {
	s := scramble.NewSkylakeDDR4(1)
	buf := make([]byte, 4096)
	b.SetBytes(int64(len(buf) * 2))
	for i := 0; i < b.N; i++ {
		s.Scramble(buf, buf, 0)
		s.Descramble(buf, buf, 0)
	}
}

// BenchmarkXORWords measures the word-level XOR kernel the whole attack hot
// path now runs on (4 KiB buffers, in place, zero allocations).
func BenchmarkXORWords(b *testing.B) {
	buf := make([]byte, 4096)
	key := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(key)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bitutil.XORWords(buf, buf, key)
	}
}

// BenchmarkXORBlock64 measures the unrolled one-burst kernel used per
// (block, key) descramble trial.
func BenchmarkXORBlock64(b *testing.B) {
	buf := make([]byte, 64)
	key := make([]byte, 64)
	rand.New(rand.NewSource(2)).Read(key)
	b.SetBytes(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bitutil.XORBlock64(buf, buf, key)
	}
}

// BenchmarkKeyfindScanParallel measures the Halderman-baseline schedule scan
// over a 4 MiB image with the machine-sized worker pool (the default Scan
// path).
func BenchmarkKeyfindScanParallel(b *testing.B) {
	img := make([]byte, 4<<20)
	if err := workload.Fill(img, 5, workload.LoadedSystem); err != nil {
		b.Fatal(err)
	}
	key := make([]byte, 32)
	rand.New(rand.NewSource(6)).Read(key)
	copy(img[3<<20:], aes.ExpandKeyBytes(key))
	b.SetBytes(int64(len(img)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(keyfind.Scan(img, aes.AES256, 0)) != 1 {
			b.Fatal("planted key not found")
		}
	}
}

// BenchmarkKeyfindScanSerial is the single-worker reference for the
// parallel-scan speedup factor recorded in BENCH_hotpath.json.
func BenchmarkKeyfindScanSerial(b *testing.B) {
	img := make([]byte, 4<<20)
	if err := workload.Fill(img, 5, workload.LoadedSystem); err != nil {
		b.Fatal(err)
	}
	key := make([]byte, 32)
	rand.New(rand.NewSource(6)).Read(key)
	copy(img[3<<20:], aes.ExpandKeyBytes(key))
	b.SetBytes(int64(len(img)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(keyfind.ScanSerial(img, aes.AES256, 0)) != 1 {
			b.Fatal("planted key not found")
		}
	}
}

// BenchmarkAttackDump measures the full Section III-C pipeline (mine +
// per-candidate descramble + schedule verify) over a 2 MiB scrambled dump
// with the default machine-sized worker pool.
func BenchmarkAttackDump(b *testing.B) {
	plain := make([]byte, 2<<20)
	if err := workload.Fill(plain, 7, workload.LightSystem); err != nil {
		b.Fatal(err)
	}
	key := make([]byte, 32)
	rand.New(rand.NewSource(8)).Read(key)
	copy(plain[4096*64+128:], aes.ExpandKeyBytes(key))
	s := scramble.NewSkylakeDDR4(11)
	dump := make([]byte, len(plain))
	s.Scramble(dump, plain, 0)
	b.SetBytes(int64(len(dump)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Attack(dump, core.Config{Workers: runtime.NumCPU()})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Keys) == 0 {
			b.Fatal("key not recovered")
		}
	}
}

// BenchmarkAttackDumpStreaming is BenchmarkAttackDump's dump run through the
// full streaming pipeline instead of the resident fast path: the same 2 MiB
// scrambled image is wrapped in a dumpfile container, opened through the
// lazy-CRC streaming reader, fed to the sharded campaign via a ReaderAt
// BlockSource (one shard, so the scan work is identical), and observed by a
// live obs.Collector. Comparing ns/op against BenchmarkAttackDump bounds the
// stage/tracer/source indirection overhead — the ISSUE budget is <2%.
func BenchmarkAttackDumpStreaming(b *testing.B) {
	plain := make([]byte, 2<<20)
	if err := workload.Fill(plain, 7, workload.LightSystem); err != nil {
		b.Fatal(err)
	}
	key := make([]byte, 32)
	rand.New(rand.NewSource(8)).Read(key)
	copy(plain[4096*64+128:], aes.ExpandKeyBytes(key))
	s := scramble.NewSkylakeDDR4(11)
	dump := make([]byte, len(plain))
	s.Scramble(dump, plain, 0)

	var container bytes.Buffer
	if err := dumpfile.Write(&container, dumpfile.Metadata{CPU: "bench"}, dump); err != nil {
		b.Fatal(err)
	}
	raw := container.Bytes()

	b.SetBytes(int64(len(dump)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := dumpfile.NewReader(bytes.NewReader(raw), int64(len(raw)))
		if err != nil {
			b.Fatal(err)
		}
		src, err := core.ReaderAtSource(f, f.Size())
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.RunCampaignSource(context.Background(), src, core.CampaignConfig{
			Attack:      core.Config{Workers: runtime.NumCPU(), Tracer: obs.NewCollector()},
			ShardBlocks: len(dump) / core.BlockBytes, // one shard: same scan as Attack
			Parallel:    1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Keys) == 0 {
			b.Fatal("key not recovered")
		}
	}
}

// BenchmarkFigure2FreezeTransfer measures the physical phase: freeze a
// 1 MiB DIMM to -25C and decay it across a 5 s transfer.
func BenchmarkFigure2FreezeTransfer(b *testing.B) {
	spec := dram.DefaultDDR4Spec(1 << 20)
	data := make([]byte, spec.Geometry.Size())
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, err := dram.NewModule(spec, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		m.Write(0, data)
		b.StartTimer()
		m.SetTemperature(-25)
		m.PowerOff()
		m.Elapse(5 * time.Second)
	}
}

// BenchmarkFigure3 regenerates all five Figure 3 panels and their
// correlation statistics (original, DDR3, DDR3-reboot, DDR4, DDR4-reboot).
func BenchmarkFigure3(b *testing.B) {
	const width = 512
	plain := make([]byte, width*width)
	memimg.TestPattern(plain, width)
	b.SetBytes(int64(5 * len(plain)))
	for i := 0; i < b.N; i++ {
		d3a := scramble.NewDDR3(uint64(i) + 1)
		d3b := scramble.NewDDR3(uint64(i) + 2)
		d4a := scramble.NewSkylakeDDR4(uint64(i) + 1)
		d4b := scramble.NewSkylakeDDR4(uint64(i) + 2)
		buf := make([]byte, len(plain))
		stats := func(data []byte) memimg.CorrelationStats {
			im, err := memimg.New(data)
			if err != nil {
				b.Fatal(err)
			}
			return im.Correlations()
		}
		// 3a original; 3b DDR3; 3c DDR3 reboot; 3d DDR4; 3e DDR4 reboot.
		pa := stats(plain)
		d3a.Scramble(buf, plain, 0)
		pb := stats(buf)
		d3b.Descramble(buf, buf, 0)
		pc := stats(buf)
		d4a.Scramble(buf, plain, 0)
		pd := stats(buf)
		d4b.Descramble(buf, buf, 0)
		pe := stats(buf)
		// The paper's ordering: 3a most correlated, 3c shows one universal
		// key (maximum clusters), 3e shows none.
		if !(pa.CorrelatedFraction() >= pb.CorrelatedFraction() &&
			pb.CorrelatedFraction() > pd.CorrelatedFraction()) {
			b.Fatal("Figure 3 correlation ordering violated")
		}
		_, _ = pc, pe
	}
}

// BenchmarkKeyIdea1KeyMining measures scrambler-key mining over a loaded
// 1 MiB dump (the paper: all keys from <16 MB).
func BenchmarkKeyIdea1KeyMining(b *testing.B) {
	plain := make([]byte, 1<<20)
	if err := workload.Fill(plain, 1, workload.LoadedSystem); err != nil {
		b.Fatal(err)
	}
	s := scramble.NewSkylakeDDR4(99)
	dump := make([]byte, len(plain))
	s.Scramble(dump, plain, 0)
	b.SetBytes(int64(len(dump)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.MineKeys(dump, core.MineOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Keys) == 0 {
			b.Fatal("no keys mined")
		}
	}
}

// BenchmarkSectionIIICDiskKeyRecovery runs the paper's headline attack end
// to end (victim + VeraCrypt + reboot capture + full pipeline + unlock).
func BenchmarkSectionIIICDiskKeyRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := Run(Scenario{Seed: int64(i) + 1, SameMachineReboot: true})
		if err != nil {
			b.Fatal(err)
		}
		if !out.VolumeUnlocked {
			b.Fatalf("attack failed at seed %d", i+1)
		}
	}
}

// BenchmarkSectionIIICScanThroughput measures the analysis scan rate on a
// scrambled dump, the figure the paper reports as 100 MB per 2 CPU-hours
// with AES-NI.
func BenchmarkSectionIIICScanThroughput(b *testing.B) {
	plain := make([]byte, 2<<20)
	workload.Fill(plain, 2, workload.LightSystem)
	key := make([]byte, 32)
	rand.New(rand.NewSource(3)).Read(key)
	copy(plain[4096*64+128:], aes.ExpandKeyBytes(key))
	s := scramble.NewSkylakeDDR4(7)
	dump := make([]byte, len(plain))
	s.Scramble(dump, plain, 0)
	b.SetBytes(int64(len(dump)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Attack(dump, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Keys) == 0 {
			b.Fatal("key not found")
		}
	}
}

// BenchmarkSectionIIIDRetention sweeps the §III-D retention measurement
// across the seven-module catalog.
func BenchmarkSectionIIIDRetention(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(4)).Read(data)
	for i := 0; i < b.N; i++ {
		for j, spec := range dram.ModuleCatalog {
			spec.Geometry = spec.Geometry.WithCapacity(1 << 20)
			m, err := dram.NewModule(spec, int64(i*7+j))
			if err != nil {
				b.Fatal(err)
			}
			m.Write(0, data)
			m.SetTemperature(-25)
			m.PowerOff()
			m.Elapse(5 * time.Second)
			if r := m.MeasureRetention(data); r < 0.90 || r > 0.999 {
				b.Fatalf("%s retention %f outside the paper's 90-99%%", spec.Model, r)
			}
		}
	}
}

// BenchmarkTableII regenerates the cipher-engine performance table.
func BenchmarkTableII(b *testing.B) {
	wantDelay := []float64{5.42, 7.08, 9.18, 13.27, 21.43}
	for i := 0; i < b.N; i++ {
		rows := engine.TableII()
		for j, s := range rows {
			d := s.MaxPipelineDelayNs()
			if d < wantDelay[j]-0.01 || d > wantDelay[j]+0.01 {
				b.Fatalf("%s delay %f, want %f", s.Name, d, wantDelay[j])
			}
		}
	}
}

// BenchmarkFigure5Overlap checks the keystream-overlap criterion (Figure 5)
// for every engine against every DDR4 speed grade.
func BenchmarkFigure5Overlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range engine.TableII() {
			for _, t := range []dram.Timing{dram.DDR4_2133, dram.DDR4_2400} {
				engine.ZeroExposedLatency(s, t)
			}
		}
	}
}

// BenchmarkFigure6 runs the utilization sweep for all five engines.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range engine.TableII() {
			points := engine.UtilizationSweep(s, dram.DDR4_2400)
			if len(points) != engine.MaxBackToBackCAS {
				b.Fatal("sweep truncated")
			}
		}
	}
}

// BenchmarkFigure7 computes the power/area overhead bars.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := engine.Figure7()
		if len(rows) != 16 {
			b.Fatal("figure incomplete")
		}
	}
}
