// Encryptedram demonstrates the paper's Section IV defense: replace the
// memory scrambler with a strong stream cipher engine (ChaCha8 or AES-CTR),
// verify that the cold boot attack collapses, and print the latency /
// power / area analysis showing the replacement is free.
//
//	go run ./examples/encryptedram
package main

import (
	"fmt"
	"log"

	"coldboot"
	"coldboot/internal/aes"
	"coldboot/internal/chacha"
	"coldboot/internal/dram"
	"coldboot/internal/engine"
)

func main() {
	fmt.Println("=== Part 1: the attack vs encrypted memory ===")
	for _, p := range []struct {
		name string
		prot coldboot.MemoryProtection
	}{
		{"stock Skylake scrambler", coldboot.StockScrambler},
		{"ChaCha8 encrypted memory", coldboot.EncryptedChaCha8},
		{"AES-128 CTR encrypted memory", coldboot.EncryptedAES128},
	} {
		out, err := coldboot.Run(coldboot.Scenario{
			Seed: 3, Protection: p.prot, SameMachineReboot: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "volume UNLOCKED — attack succeeded"
		if !out.VolumeUnlocked {
			verdict = "attack DEFEATED"
		}
		fmt.Printf("%-30s mined keys: %5d   %s\n", p.name+":", out.MinedKeys, verdict)
	}

	fmt.Println("\n=== Part 2: why encryption is free (Table II + Figure 6) ===")
	t := dram.DDR4_2400
	fmt.Printf("DDR4 column access window: %.2f ns (JESD79-4 minimum)\n\n", t.CASLatency)
	fmt.Printf("%-10s %8s %12s %16s %14s\n", "cipher", "GHz", "cycles/64B", "pipeline (ns)", "zero exposed?")
	for _, spec := range engine.TableII() {
		fmt.Printf("%-10s %8.2f %12d %16.2f %14v\n",
			spec.Name, spec.FreqGHz, spec.CyclesPer64B,
			spec.MaxPipelineDelayNs(), engine.ZeroExposedLatency(spec, t))
	}

	fmt.Println("\nworst-case decryption latency vs outstanding requests (Figure 6):")
	aes128 := engine.AESEngine(aes.AES128)
	chacha8 := engine.ChaChaEngine(chacha.Rounds8)
	fmt.Printf("%12s %12s %12s\n", "outstanding", aes128.Name, chacha8.Name)
	for _, n := range []int{1, 6, 12, 18} {
		a := engine.SimulateBurst(aes128, t, n)
		c := engine.SimulateBurst(chacha8, t, n)
		fmt.Printf("%12d %9.2f ns %9.2f ns\n", n, a.MaxLatency, c.MaxLatency)
	}

	fmt.Println("\npower/area overheads (Figure 7):")
	for _, o := range engine.Figure7() {
		if o.Utilization != 1.0 || o.Engine.Name != "ChaCha8" {
			continue
		}
		fmt.Printf("  %-14s area +%.2f%%  power +%.2f%% (full load)\n",
			o.Platform.Name, o.AreaPct, o.PowerPct)
	}
	fmt.Println("\nconclusion: ChaCha8 hides entirely under the DRAM access —")
	fmt.Println("strongly encrypted DRAM with zero exposed latency (Key Idea 2).")
}
