// Retention reproduces Section III-D: measure how much data each DRAM
// module in the catalog retains after power loss, across temperature and
// time — the physics that makes cold boot attacks possible, and the reason
// the gas-duster freeze matters.
//
//	go run ./examples/retention
package main

import (
	"fmt"
	"log"
	//lint:ignore noweakrand seeded deterministic example, not keystream material
	"math/rand"
	"time"

	"coldboot/internal/dram"
)

func main() {
	fmt.Println("=== Section III-D: DRAM retention vs temperature and time ===")
	fmt.Println("(fraction of bits retained after power loss; 1 MiB per module)")
	fmt.Println()

	durations := []time.Duration{1 * time.Second, 3 * time.Second, 5 * time.Second, 10 * time.Second}
	temps := []float64{20, -25, -50}

	for _, temp := range temps {
		fmt.Printf("--- %.0f C ---\n", temp)
		fmt.Printf("%-22s", "module")
		for _, d := range durations {
			fmt.Printf("%9s", d)
		}
		fmt.Println()
		for i, spec := range dram.ModuleCatalog {
			spec.Geometry = spec.Geometry.WithCapacity(1 << 20)
			fmt.Printf("%-22s", spec.Model)
			for _, d := range durations {
				fmt.Printf("%8.2f%%", measure(spec, int64(i), temp, d)*100)
			}
			fmt.Println()
		}
		fmt.Println()
	}

	nv := dram.NVDIMMSpec(1 << 20)
	fmt.Printf("%-22s retains %.0f%% after 10 minutes at +20 C (non-volatile)\n",
		nv.Model, measure(nv, 99, 20, 10*time.Minute)*100)
	fmt.Println("\ntakeaways (matching the paper): 90-99% retained when frozen and")
	fmt.Println("moved within ~5s; significant loss within 3s warm; the leakiest")
	fmt.Println("module is a DDR3 part; NVDIMMs never decay at all.")
}

func measure(spec dram.ModuleSpec, seed int64, tempC float64, d time.Duration) float64 {
	m, err := dram.NewModule(spec, seed)
	if err != nil {
		log.Fatal(err)
	}
	data := make([]byte, m.Size())
	rand.New(rand.NewSource(seed)).Read(data)
	m.Write(0, data)
	m.SetTemperature(tempC)
	m.PowerOff()
	m.Elapse(d)
	return m.MeasureRetention(data)
}
