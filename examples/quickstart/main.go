// Quickstart: the smallest end-to-end cold boot attack.
//
// A Skylake DDR4 machine has a VeraCrypt volume mounted. We freeze its
// DIMM, pull it, seat it in a second (also scrambled!) Skylake machine,
// dump memory, run the attack, and unlock the volume without the password.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"coldboot"
)

func main() {
	out, err := coldboot.Run(coldboot.Scenario{
		CPU:          "i5-6600K",
		Password:     "correct horse battery staple",
		FreezeTempC:  -50, // inverted-canister spray (Halderman et al.)
		TransferTime: 2 * time.Second,
		RepairFlips:  1,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Cold boot attack on Skylake DDR4 (quickstart) ===")
	fmt.Printf("victim scrambler seed:    %#016x\n", out.VictimSeed)
	fmt.Printf("attacker scrambler seed:  %#016x\n", out.AttackerSeed)
	fmt.Printf("bits surviving transfer:  %.3f%%\n", out.Retention*100)
	fmt.Printf("scrambler keys mined:     %d (stride %d, coverage %.1f%%)\n",
		out.MinedKeys, out.Stride, out.Coverage*100)
	fmt.Printf("AES masters recovered:    %d\n", len(out.RecoveredMasters))
	for i, m := range out.RecoveredMasters {
		fmt.Printf("  key %d: %x\n", i, m)
	}
	if !out.VolumeUnlocked {
		log.Fatal("attack failed: volume still locked")
	}
	fmt.Println("volume unlocked WITHOUT the password; secret sector reads:")
	fmt.Printf("  %q\n", out.SecretRecovered)
}
