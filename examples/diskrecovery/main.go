// Diskrecovery is the paper's headline attack (§III-C) with every step
// spelled out against the substrate APIs, rather than through the
// high-level Scenario wrapper: build the victim, mount a VeraCrypt volume,
// freeze and transport the DIMM, dump it inside a second scrambled
// machine, mine the scrambler keys, hunt the AES schedules, and decrypt
// the disk.
//
//	go run ./examples/diskrecovery
package main

import (
	"fmt"
	"log"
	"time"

	"coldboot/internal/core"
	"coldboot/internal/machine"
	"coldboot/internal/veracrypt"
	"coldboot/internal/workload"
)

func main() {
	// --- Victim setup -----------------------------------------------------
	cpu, _ := machine.CPUByName("i5-6400")
	victim, err := machine.New(machine.Config{
		CPU: cpu, DIMMBytes: 2 << 20, ScramblerOn: true, BIOSEntropy: 2024,
	})
	check(err)
	check(victim.Boot())
	fmt.Printf("victim: %s (%v, %v), scrambler seed %#x\n",
		cpu.Name, cpu.Arch, cpu.Memory, victim.LastSeed())

	// A running system: memory full of real content.
	mem := make([]byte, victim.MemSize())
	check(workload.Fill(mem, 99, workload.LightSystem))
	check(victim.Write(0, mem))

	// The user mounts an encrypted volume; the driver parks both XTS key
	// schedules in DRAM.
	salt := make([]byte, veracrypt.SaltSize)
	copy(salt, "an unremarkable salt")
	vol, err := veracrypt.Create([]byte("hunter2"), 128*veracrypt.SectorSize, salt, nil)
	check(err)
	const keysAddr = 0x137000 + 24
	mounted, err := vol.Mount([]byte("hunter2"), victim, keysAddr)
	check(err)
	secret := make([]byte, veracrypt.SectorSize)
	copy(secret, "quarterly financials: definitely not for attackers")
	check(mounted.WriteSector(17, secret))
	fmt.Printf("volume mounted; key schedules resident at %#x\n", keysAddr)

	// --- Physical attack ----------------------------------------------------
	fmt.Println("\nfreezing DIMM to -25C, pulling, fast 500ms transfer...")
	victim.FreezeDIMMs(-25)
	mods, err := victim.EjectDIMMs()
	check(err)
	before := mods[0].Snapshot()
	machine.Transfer(mods, 500*time.Millisecond)
	fmt.Printf("retention across transfer: %.3f%%\n", mods[0].MeasureRetention(before)*100)

	attacker, err := machine.New(machine.Config{
		CPU: cpu, DIMMBytes: 2 << 20, ScramblerOn: true, BIOSEntropy: 7777,
	})
	check(err)
	_, err = attacker.Controller().DetachDIMM(0)
	check(err)
	check(attacker.InsertDIMM(0, mods[0]))
	check(attacker.Boot())
	fmt.Printf("attacker machine booted (scrambler ON, seed %#x): dump is double-scrambled\n",
		attacker.LastSeed())
	dump, err := attacker.Dump()
	check(err)

	// --- Analysis ----------------------------------------------------------
	fmt.Println("\nstep 1: mining scrambler keys with the litmus test...")
	res, err := core.Attack(dump, core.Config{RepairFlips: 1})
	check(err)
	fmt.Printf("  %d keys mined from %d passing blocks (stride %d, coverage %.1f%%)\n",
		len(res.Mine.Keys), res.Mine.BlocksPassed, res.Stride, res.Coverage*100)
	fmt.Printf("step 2+3: AES key litmus scan over %d blocks (%d block/key pairs)\n",
		res.BlocksScanned, res.PairsTested)
	fmt.Printf("step 4: %d master keys recovered:\n", len(res.Keys))
	for _, k := range res.Keys {
		fmt.Printf("  %x  (schedule at %#x, verify score %.4f, %d anchors)\n",
			k.Master, k.TableStart, k.Score, k.Anchors)
	}

	// --- Endgame -------------------------------------------------------------
	unlocked, err := vol.MountWithRecoveredKeys(res.Masters(), nil, 0)
	if err != nil {
		log.Fatalf("FAILED to unlock the volume: %v", err)
	}
	buf := make([]byte, veracrypt.SectorSize)
	check(unlocked.ReadSector(17, buf))
	fmt.Printf("\nvolume unlocked without the password. sector 17 reads:\n  %q\n", buf[:52])
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
