// Hiddenvolume demonstrates a consequence of the attack the paper implies
// but does not spell out: cold boot key recovery defeats TrueCrypt-style
// plausible deniability. A hidden volume's header slot is indistinguishable
// from the random filler every ordinary volume carries — but if the hidden
// volume is MOUNTED when the machine is seized, its XTS master keys are in
// DRAM like any other volume's, and the recovered keys locate the deniable
// region by superblock probing, no password required.
//
//	go run ./examples/hiddenvolume
package main

import (
	"fmt"
	"log"

	"coldboot"
	"coldboot/internal/machine"
	"coldboot/internal/veracrypt"
	"coldboot/internal/workload"
)

func main() {
	cpu, _ := machine.CPUByName("i5-6600K")
	m, err := machine.New(machine.Config{CPU: cpu, DIMMBytes: 2 << 20, ScramblerOn: true, BIOSEntropy: 7})
	check(err)
	check(m.Boot())
	mem := make([]byte, m.MemSize())
	check(workload.Fill(mem, 8, workload.LightSystem))
	check(m.Write(0, mem))

	// A 128-sector outer volume with a 32-sector hidden volume in its tail.
	salt := make([]byte, veracrypt.SaltSize)
	copy(salt, "hidden volume demo")
	vol, err := veracrypt.CreateHidden([]byte("decoy-password"), []byte("real-password"),
		128*veracrypt.SectorSize, 32*veracrypt.SectorSize, salt)
	check(err)
	fmt.Println("volume created: outer 128 sectors, hidden 32 sectors in the free space")

	// The user works in the HIDDEN volume when the machine is seized.
	hidden, err := vol.MountHidden([]byte("real-password"), m, 1<<20+256)
	check(err)
	secret := make([]byte, veracrypt.SectorSize)
	copy(secret, "the deniable ledger: it was never supposed to provably exist")
	check(hidden.WriteSector(4, secret))
	fmt.Println("hidden volume mounted; its key schedules now live in DRAM")

	// Cold boot: reboot into a dump (the quick §III-B capture).
	check(m.Boot())
	dump, err := m.Dump()
	check(err)
	keys, err := coldboot.AttackDump(dump, 0)
	check(err)
	fmt.Printf("attack recovered %d master key halves from the scrambled dump\n", len(keys))

	// The recovered keys unlock the volume — and identify WHICH region
	// they unlock, destroying deniability.
	mounted, err := vol.MountWithRecoveredKeys(keys, nil, 0)
	if err != nil {
		log.Fatalf("deniability held: %v", err)
	}
	fmt.Printf("recovered keys map a %d-sector region — the HIDDEN volume\n", mounted.Sectors())
	got := make([]byte, veracrypt.SectorSize)
	check(mounted.ReadSector(4, got))
	fmt.Printf("hidden sector 4 reads: %q\n", got[:61])
	fmt.Println("\nconclusion: deniability is a property of the disk format;")
	fmt.Println("cold boot attacks read the RAM, where nothing is deniable.")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
