// Analysis reproduces the paper's Section III-A/B scrambler analysis
// framework: the "reverse cold boot" — writing raw zeros underneath the
// scrambler (the FPGA path) and reading them back through it — followed by
// the four Skylake observations:
//
//  1. 4096 distinct 64-byte keys per channel (16 on DDR3);
//  2. keys reset on reboot (unless the BIOS reuses its seed);
//  3. no single universal reboot key (unlike DDR3);
//  4. key sharing is decided by address bits alone, so it survives reboots.
//
// Finally it prints the byte-pair invariants discovered on the extracted
// keys — the scrambler-key litmus test.
//
//	go run ./examples/analysis
package main

import (
	"bytes"
	"fmt"
	"log"

	"coldboot/internal/bitutil"
	"coldboot/internal/core"
	"coldboot/internal/engine"
	"coldboot/internal/machine"
	"coldboot/internal/randtest"
)

func main() {
	cpu, _ := machine.CPUByName("i5-6600K")
	m, err := machine.New(machine.Config{CPU: cpu, DIMMBytes: 2 << 20, ScramblerOn: true, BIOSEntropy: 42})
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Boot(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Reverse cold boot: extracting the scrambler keystream ===")
	// FPGA path: write raw zeros directly into the DRAM device, bypassing
	// the scrambler, then read through the descrambler: out = 0 ^ key.
	size := m.MemSize()
	zeros := make([]byte, size)
	if err := m.RawWriteDevice(0, 0, zeros); err != nil {
		log.Fatal(err)
	}
	keystream := make([]byte, size)
	if err := m.Read(0, keystream); err != nil {
		log.Fatal(err)
	}

	// Observation 1: count distinct keys.
	distinct := map[string][]int{}
	for b := 0; b < size/64; b++ {
		k := string(keystream[b*64 : (b+1)*64])
		distinct[k] = append(distinct[k], b)
	}
	fmt.Printf("observation 1: %d distinct 64-byte keys per channel (paper: 4096)\n", len(distinct))

	// Observation 4: key index is periodic in the address.
	period := 0
	for _, positions := range distinct {
		if len(positions) > 1 {
			period = positions[1] - positions[0]
			break
		}
	}
	fmt.Printf("observation 4: keys repeat every %d blocks (%d KiB) — address-selected\n",
		period, period*64/1024)

	// Observation 2: reboot resets the keys.
	firstBootKey0 := append([]byte{}, keystream[:64]...)
	if err := m.Boot(); err != nil {
		log.Fatal(err)
	}
	keystream2 := make([]byte, size)
	if err := m.RawWriteDevice(0, 0, zeros); err != nil {
		log.Fatal(err)
	}
	if err := m.Read(0, keystream2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("observation 2: key 0 changed after reboot: %v\n",
		!bytes.Equal(firstBootKey0, keystream2[:64]))

	// Observation 3: the XOR of the two boots' keystreams does not
	// collapse to a single universal key.
	xored := bitutil.XORNew(keystream, keystream2)
	xorDistinct := map[string]bool{}
	for b := 0; b < size/64; b++ {
		xorDistinct[string(xored[b*64:(b+1)*64])] = true
	}
	fmt.Printf("observation 3: reboot XOR has %d distinct blocks (DDR3 would have exactly 1)\n",
		len(xorDistinct))

	// The litmus test: every extracted key satisfies the paper's byte-pair
	// invariant equations.
	passing := 0
	for k := range distinct {
		if core.PassesKeyLitmus([]byte(k), 0) {
			passing++
		}
	}
	fmt.Printf("litmus test: %d/%d extracted keys satisfy the invariants exactly\n",
		passing, len(distinct))
	fmt.Println("\nthe invariants (for each 16-byte-aligned group, 2-byte words):")
	fmt.Println("  K[i+2]^K[i+4] == K[i+10]^K[i+12]")
	fmt.Println("  K[i+0]^K[i+6] == K[i+8]^K[i+14]")
	fmt.Println("  K[i+0]^K[i+4] == K[i+8]^K[i+12]")
	fmt.Println("  K[i+0]^K[i+2] == K[i+8]^K[i+10]")

	// Cryptanalytic coda: why the scrambler is "not cryptographically
	// secure" in one number. The w/d key layout is invertible, so ONE
	// extracted key yields 320 contiguous bits of the underlying generator
	// stream; Berlekamp-Massey pins it to a tiny LFSR, while the same
	// analysis of a ChaCha8 keystream finds nothing below n/2.
	fmt.Println("\n=== Randomness analysis: scrambler generator vs ChaCha8 ===")
	oneKey := keystream[:64]
	var gen []byte
	for g := 0; g < 4; g++ {
		base := g * 16
		gen = append(gen, oneKey[base:base+8]...)
		gen = append(gen, oneKey[base+8]^oneKey[base], oneKey[base+9]^oneKey[base+1])
	}
	cipher := engine.NewChaChaScrambler(8, 42)
	var encStream []byte
	for off := uint64(0); len(encStream) < 4096; off += 64 {
		encStream = append(encStream, cipher.KeyAt(off)...)
	}
	scrLC := randtest.LinearComplexity(randtest.Bits(gen), len(gen)*8)
	scrPredict := randtest.PredictableFromPrefix(randtest.Bits(gen), 64, 150)
	r := randtest.Battery(randtest.Bits(encStream))
	fmt.Printf("scrambler generator (from one mined key): linear complexity %d/320 bits, LFSR-predictable: %v\n",
		scrLC, scrPredict)
	fmt.Printf("ChaCha8 keystream: statistical battery pass %v, linear complexity %d/4096 bits, LFSR-predictable: %v\n",
		r.PassesStatistical(), r.LinearComplexity, r.LFSRPredictable)
	fmt.Println("a <=64-bit linear complexity means 128 observed bits predict the")
	fmt.Println("stream forever; ~n/2 means the stream is cryptographically strong.")
}
