// Package coldboot reproduces "Cold Boot Attacks are Still Hot: Security
// Analysis of Memory Scramblers in Modern Processors" (HPCA 2017) as a
// simulation library.
//
// The package is organized in three layers:
//
//   - Substrates (internal/dram, internal/addrmap, internal/scramble,
//     internal/memctrl, internal/machine, internal/aes, internal/chacha,
//     internal/sha512, internal/veracrypt, internal/workload): a software
//     model of the machines the paper attacked — DRAM with
//     temperature-dependent charge decay, per-generation memory-controller
//     scramblers (DDR3's 16-key pool, Skylake DDR4's 4096-key pool with the
//     published byte-pair invariants), and a VeraCrypt-style XTS-AES-256
//     disk volume whose mount leaves expanded round keys in simulated RAM.
//
//   - The attack (internal/core, internal/keyfind): scrambler-key mining
//     via the litmus test, the single-block AES key litmus test, full
//     schedule reconstruction with decay tolerance, plus the DDR3 baseline
//     and the classic Halderman scan.
//
//   - The defense (internal/engine): cycle-level cipher-engine models
//     (Table II), the DDR4 read-path queueing analysis (Figure 6), the
//     power/area overhead model (Figure 7), and drop-in encrypted-memory
//     scramblers that provably defeat the attack.
//
// This file provides the high-level scenario API: configure a victim
// machine, mount an encrypted volume on it, execute the physical cold boot
// procedure, run the attack, and try to unlock the volume with whatever
// keys fall out.
package coldboot

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"coldboot/internal/aes"
	"coldboot/internal/chacha"
	"coldboot/internal/core"
	"coldboot/internal/dram"
	"coldboot/internal/engine"
	"coldboot/internal/keyfind"
	"coldboot/internal/machine"
	"coldboot/internal/obs"
	"coldboot/internal/veracrypt"
	"coldboot/internal/workload"
)

// MemoryProtection selects what the victim's memory controller runs.
type MemoryProtection int

// Memory protection schemes for the victim machine.
const (
	// StockScrambler is the CPU generation's production scrambler (DDR3
	// LFSR or Skylake DDR4).
	StockScrambler MemoryProtection = iota
	// ScramblerOff disables scrambling entirely (the pre-DDR3 world).
	ScramblerOff
	// EncryptedChaCha8 replaces the scrambler with the paper's recommended
	// ChaCha8 engine.
	EncryptedChaCha8
	// EncryptedAES128 replaces the scrambler with an AES-128 CTR engine.
	EncryptedAES128
)

// Scenario describes one end-to-end cold boot experiment.
type Scenario struct {
	// CPU is a Table I model name (default "i5-6600K", Skylake DDR4).
	CPU string
	// Channels is the number of memory channels (1 or 2; default 1).
	Channels int
	// MemoryBytes is the physical memory size per channel (default 2 MiB —
	// small enough for fast simulation, large enough that every scrambler
	// address class recurs several times).
	MemoryBytes int
	// Workload fills the victim's memory (default workload.LightSystem).
	Workload workload.Profile
	// Password protects the VeraCrypt volume.
	Password string
	// KeysAddr is where the disk driver keeps its expanded key schedules
	// (default: a page-ish offset in the upper half of memory).
	KeysAddr uint64
	// FreezeTempC is the DIMM temperature during transfer (default -50,
	// the inverted-canister spray temperature from Halderman et al.; the
	// paper's upright gas duster reached -25, which works for transfers
	// under about a second — see the scenario tests for the measured
	// success envelope).
	FreezeTempC float64
	// TransferTime is how long the DIMM is unpowered (default 2s).
	TransferTime time.Duration
	// SameMachineReboot reboots the victim into the dump instead of moving
	// the DIMM to a second machine (no decay, same generation trivially).
	SameMachineReboot bool
	// AttackerCPU is the Table I model of the dumping machine (default:
	// same as CPU). The paper requires a matching generation.
	AttackerCPU string
	// Protection selects the victim's memory protection.
	Protection MemoryProtection
	// Seed makes the whole scenario deterministic.
	Seed int64
	// RepairFlips forwards to the attack (window repair under decay).
	RepairFlips int
	// Formats restricts the attack's target-format hunt (see core.Config.
	// Formats): nil means every format registered in the running binary.
	// Binaries opt into non-AES scanners by importing
	// coldboot/internal/format/all; with an empty registry the attack is
	// the classic AES-schedule hunt.
	Formats []string
	// SeedReuseBIOS models the vendor BIOSes of §III-B observation 2 that
	// do NOT reset the scrambler seed each boot: the same keystream
	// returns after reboot, so the dump descrambles itself.
	SeedReuseBIOS bool
	// KeysInCPURegisters models TRESOR/Loop-Amnesia (§II-B): the disk
	// driver keeps keys in CPU registers and never writes the expanded
	// schedules to DRAM.
	KeysInCPURegisters bool
	// NVDIMM seats non-volatile DIMMs (§III-D/V): contents survive power
	// loss indefinitely at any temperature — no freezing required.
	NVDIMM bool
	// GroundProfile enables the §III-A profiling step on the attacker's
	// machine: after the attack dump, the DIMM is left to decay fully and
	// dumped again under the SAME boot (the keystream cancels in the
	// comparison), enabling asymmetric-decay repair in the analysis.
	// Only meaningful for DIMM-transfer scenarios.
	GroundProfile bool
	// Tracer observes the analysis pipeline (per-stage wall time, candidate
	// counters, progress); nil means no tracing. cmd/coldboot's -trace and
	// -progress flags install one.
	Tracer obs.Tracer
}

func (s Scenario) withDefaults() Scenario {
	if s.CPU == "" {
		s.CPU = "i5-6600K"
	}
	if s.Channels == 0 {
		s.Channels = 1
	}
	if s.MemoryBytes == 0 {
		s.MemoryBytes = 2 << 20
	}
	if s.Workload.Name == "" {
		s.Workload = workload.LightSystem
	}
	if s.Password == "" {
		s.Password = "correct horse battery staple"
	}
	if s.KeysAddr == 0 {
		s.KeysAddr = uint64(s.MemoryBytes*s.Channels/2) + 4096 + 16
	}
	if s.FreezeTempC == 0 {
		s.FreezeTempC = -50
	}
	if s.TransferTime == 0 {
		s.TransferTime = 2 * time.Second
	}
	if s.AttackerCPU == "" {
		s.AttackerCPU = s.CPU
	}
	return s
}

// Outcome reports everything a scenario run produced.
type Outcome struct {
	// VictimSeed and AttackerSeed are the scrambler boot seeds in play.
	VictimSeed, AttackerSeed uint64
	// Retention is the fraction of DIMM bits that survived the transfer
	// (1.0 for same-machine reboots).
	Retention float64
	// MinedKeys is the number of distinct scrambler keys mined.
	MinedKeys int
	// Stride is the inferred key-reuse period in blocks (0 if none).
	Stride int
	// Coverage is the fraction of address classes with a mined key.
	Coverage float64
	// GroundDump holds the §III-A ground-state profile when GroundProfile
	// was requested.
	GroundDump []byte
	// RecoveredMasters are the AES master keys the attack recovered.
	RecoveredMasters [][]byte
	// TrueMasters are the volume's actual XTS keys (ground truth).
	TrueMasters []byte
	// VolumeUnlocked reports whether the recovered keys decrypt the
	// victim's volume without the password.
	VolumeUnlocked bool
	// SecretRecovered is the contents of the volume's secret sector when
	// unlocked.
	SecretRecovered []byte
}

// secretPayload is the plaintext planted in the volume for verification.
const secretPayload = "TOP-SECRET: the cold boot attack recovered this sector."

// Run executes the full experiment: build the victim, mount the volume,
// fill memory, freeze/transfer/dump, attack, and attempt to unlock the
// volume with the recovered keys.
func Run(s Scenario) (*Outcome, error) {
	return RunContext(context.Background(), s)
}

// RunContext is Run with cancellation: the attack's scan loops poll ctx
// every chunk, so a timed-out or cancelled run stops promptly. The partial
// Outcome accumulated so far is returned together with ctx.Err().
func RunContext(ctx context.Context, s Scenario) (*Outcome, error) {
	dump, out, vol, cpu, err := capture(s)
	if err != nil {
		return nil, err
	}
	return analyze(ctx, s.withDefaults(), dump, out, vol, cpu)
}

// Capture performs only the acquisition half of a scenario — victim setup,
// volume mount, freeze/transfer, dump — returning the raw (scrambled) dump
// and the partially filled Outcome. Pair with AttackDump (or save the dump
// with internal/dumpfile via cmd/coldboot -capture) for offline analysis.
func Capture(s Scenario) ([]byte, *Outcome, error) {
	dump, out, _, _, err := capture(s)
	return dump, out, err
}

// capture builds the victim, mounts the volume, runs the physical phase,
// and returns the captured dump plus the context the analysis phase needs.
func capture(s Scenario) ([]byte, *Outcome, *veracrypt.Volume, machine.CPUModel, error) {
	s = s.withDefaults()
	cpu, ok := machine.CPUByName(s.CPU)
	if !ok {
		return nil, nil, nil, machine.CPUModel{}, fmt.Errorf("coldboot: unknown CPU %q (see machine.TableI)", s.CPU)
	}

	victimCfg := machine.Config{
		CPU:         cpu,
		Channels:    s.Channels,
		DIMMBytes:   s.MemoryBytes,
		ScramblerOn: s.Protection != ScramblerOff,
		BIOSEntropy: s.Seed,
	}
	if s.SeedReuseBIOS {
		victimCfg.SeedPolicy = machine.ReuseSeedAcrossBoots
	}
	if s.NVDIMM {
		spec := dram.NVDIMMSpec(s.MemoryBytes)
		victimCfg.ModuleSpec = &spec
	}
	switch s.Protection {
	case EncryptedChaCha8:
		victimCfg.NewScrambler = engine.ChaChaFactory(chacha.Rounds8)
	case EncryptedAES128:
		victimCfg.NewScrambler = engine.AESCTRFactory(aes.AES128)
	}
	victim, err := machine.New(victimCfg)
	if err != nil {
		return nil, nil, nil, cpu, err
	}
	if err := victim.Boot(); err != nil {
		return nil, nil, nil, cpu, err
	}
	out := &Outcome{VictimSeed: victim.LastSeed()}

	// Fill memory with a realistic workload, then mount the volume (the
	// driver's key schedules overwrite their little corner of it).
	mem := make([]byte, victim.MemSize())
	if err := workload.Fill(mem, s.Seed+1, s.Workload); err != nil {
		return nil, nil, nil, cpu, err
	}
	if err := victim.Write(0, mem); err != nil {
		return nil, nil, nil, cpu, err
	}
	salt := make([]byte, veracrypt.SaltSize)
	for i := range salt {
		salt[i] = byte(int(s.Seed) + i)
	}
	vol, err := veracrypt.Create([]byte(s.Password), 64*veracrypt.SectorSize, salt, nil)
	if err != nil {
		return nil, nil, nil, cpu, err
	}
	var keyMem veracrypt.MemWriter = victim
	if s.KeysInCPURegisters {
		keyMem = nil // TRESOR-style: schedules never touch DRAM
	}
	mounted, err := vol.Mount([]byte(s.Password), keyMem, s.KeysAddr)
	if err != nil {
		return nil, nil, nil, cpu, err
	}
	out.TrueMasters = mounted.MasterKeys()
	secret := make([]byte, veracrypt.SectorSize)
	copy(secret, secretPayload)
	if err := mounted.WriteSector(3, secret); err != nil {
		return nil, nil, nil, cpu, err
	}
	// The victim is seized while the volume is mounted: the schedules are
	// resident in DRAM. (An Unmount here would zero them and defeat the
	// attack — see TestUnmountDefeatsAttack.)

	// Physical phase: obtain a dump.
	var dump []byte
	if s.SameMachineReboot {
		if err := victim.Boot(); err != nil { // reseeds the scrambler
			return nil, nil, nil, cpu, err
		}
		out.AttackerSeed = victim.LastSeed()
		if dump, err = victim.Dump(); err != nil {
			return nil, nil, nil, cpu, err
		}
		out.Retention = 1.0
	} else {
		snapshot := victim.Controller().DIMM(0).Snapshot()
		victim.FreezeDIMMs(s.FreezeTempC)
		mods, err := victim.EjectDIMMs()
		if err != nil {
			return nil, nil, nil, cpu, err
		}
		machine.Transfer(mods, s.TransferTime)
		out.Retention = mods[0].MeasureRetention(snapshot)

		attackerCPU, ok := machine.CPUByName(s.AttackerCPU)
		if !ok {
			return nil, nil, nil, cpu, fmt.Errorf("coldboot: unknown attacker CPU %q", s.AttackerCPU)
		}
		attacker, err := machine.New(machine.Config{
			CPU:         attackerCPU,
			Channels:    s.Channels,
			DIMMBytes:   s.MemoryBytes,
			ScramblerOn: true, // the attacker does NOT need a disabled scrambler
			BIOSEntropy: s.Seed + 7919,
		})
		if err != nil {
			return nil, nil, nil, cpu, err
		}
		for ch := 0; ch < s.Channels; ch++ {
			if _, err := attacker.Controller().DetachDIMM(ch); err != nil {
				return nil, nil, nil, cpu, err
			}
			if err := attacker.InsertDIMM(ch, mods[ch]); err != nil {
				return nil, nil, nil, cpu, err
			}
		}
		if err := attacker.Boot(); err != nil {
			return nil, nil, nil, cpu, err
		}
		out.AttackerSeed = attacker.LastSeed()
		if dump, err = attacker.Dump(); err != nil {
			return nil, nil, nil, cpu, err
		}
		if s.GroundProfile {
			// Profile pass: let the DIMM decay fully, then dump again
			// without rebooting — same keystream, so dump XOR groundDump
			// reveals which bits could have decayed.
			for ch := 0; ch < s.Channels; ch++ {
				attacker.Controller().DIMM(ch).PowerOff()
				attacker.Controller().DIMM(ch).FullyDecay()
				attacker.Controller().DIMM(ch).PowerOn()
			}
			if out.GroundDump, err = attacker.Dump(); err != nil {
				return nil, nil, nil, cpu, err
			}
		}
	}

	return dump, out, vol, cpu, nil
}

// analyze runs the generation-appropriate attack on a captured dump and
// attempts to unlock the volume with whatever keys fall out. Cancellation
// mid-attack returns the partial Outcome together with ctx.Err().
func analyze(ctx context.Context, s Scenario, dump []byte, out *Outcome, vol *veracrypt.Volume, cpu machine.CPUModel) (*Outcome, error) {
	tracer := obs.OrNop(s.Tracer)
	if cpu.Memory == dram.DDR3 && s.Protection == StockScrambler {
		// DDR3 baseline (Bauer et al.): 16-key frequency analysis, then the
		// schedule hunt with the known per-class keys. The classic
		// Halderman scan (internal/keyfind) finds the same keys on clean
		// dumps; the anchored hunt adds the decay-tolerant window
		// consensus.
		keys, err := core.MineDDR3KeysContext(ctx, dump)
		if err != nil {
			return nil, err
		}
		res, err := core.AttackContext(ctx, dump, core.Config{
			RepairFlips: s.RepairFlips,
			KeysForBlock: func(b int) [][]byte {
				return [][]byte{keys[b%core.DDR3KeyCount]}
			},
			Tracer: s.Tracer,
		})
		if res == nil {
			return nil, err
		}
		out.MinedKeys = core.DDR3KeyCount
		out.Stride = core.DDR3KeyCount
		out.Coverage = 1
		out.RecoveredMasters = res.Masters()
		if err != nil {
			return out, err
		}
		// Cross-check with the prior-art scan on the descrambled image
		// (adds any finding the anchored hunt missed).
		if plainDump, err := core.DescrambleDDR3Context(ctx, dump, keys); err == nil {
			if fs, err := keyfind.ScanTraced(ctx, plainDump, aes.AES256, keyfind.DefaultTolerance, 0, tracer); err == nil {
				for _, f := range fs {
					out.RecoveredMasters = append(out.RecoveredMasters, f.Master)
				}
			}
		}
	} else {
		res, err := core.AttackContext(ctx, dump, core.Config{
			RepairFlips: s.RepairFlips,
			GroundDump:  out.GroundDump,
			Formats:     s.Formats,
			Tracer:      s.Tracer,
		})
		if res == nil {
			return nil, err
		}
		if res.Mine != nil {
			out.MinedKeys = len(res.Mine.Keys)
		}
		out.Stride = res.Stride
		out.Coverage = res.Coverage
		out.RecoveredMasters = res.Masters()
		if err != nil {
			return out, err
		}
	}

	// A real attacker also runs the classic Halderman scan on the raw dump:
	// it wins outright whenever the dump is effectively plaintext — the
	// scrambler disabled, or a seed-reusing BIOS whose reboot descrambles
	// its own memory (§III-B observation 2).
	scanTimer := tracer.StageStart("halderman-scan")
	findings, err := keyfind.ScanTraced(ctx, dump, aes.AES256, keyfind.DefaultTolerance, 0, tracer)
	scanTimer.End()
	for _, f := range findings {
		out.RecoveredMasters = append(out.RecoveredMasters, f.Master)
	}
	out.RecoveredMasters = dedupKeys(out.RecoveredMasters)
	if err != nil {
		return out, err
	}

	// Endgame: unlock the volume with the recovered keys — no password.
	if len(out.RecoveredMasters) > 0 {
		unlockTimer := tracer.StageStart("unlock")
		if m2, err := vol.MountWithRecoveredKeys(out.RecoveredMasters, nil, 0); err == nil {
			out.VolumeUnlocked = true
			buf := make([]byte, veracrypt.SectorSize)
			if err := m2.ReadSector(3, buf); err == nil {
				out.SecretRecovered = buf[:len(secretPayload)]
			}
		}
		unlockTimer.End()
		tracer.Count("unlock.masters_tried", int64(len(out.RecoveredMasters)))
	}
	return out, nil
}

// SecretPayload returns the plaintext planted in every scenario's volume,
// for verification by callers.
func SecretPayload() string { return secretPayload }

// dedupKeys removes duplicate masters in place. Quadratic by design: the
// handful of recovered keys never justifies string-keyed map copies of key
// material (keyflow), and []byte entries stay wipeable by the caller.
func dedupKeys(keys [][]byte) [][]byte {
	out := keys[:0]
	for _, k := range keys {
		dup := false
		for _, kept := range out {
			if bytes.Equal(kept, k) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, k)
		}
	}
	return out
}

// AttackDump runs the DDR4 attack pipeline directly on a raw scrambled
// memory dump and returns any recovered AES master keys — the entry point
// for dumps obtained outside the Scenario plumbing.
func AttackDump(dump []byte, repairFlips int) ([][]byte, error) {
	return AttackDumpContext(context.Background(), dump, repairFlips, nil)
}

// AttackDumpContext is AttackDump with cancellation and tracing: a
// cancelled attack returns the masters recovered so far with ctx.Err().
func AttackDumpContext(ctx context.Context, dump []byte, repairFlips int, tracer obs.Tracer) ([][]byte, error) {
	res, err := core.AttackContext(ctx, dump, core.Config{RepairFlips: repairFlips, Tracer: tracer})
	if res == nil {
		return nil, err
	}
	return res.Masters(), err
}
