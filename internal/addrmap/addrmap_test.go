package addrmap

import (
	"testing"
	"testing/quick"
)

func TestNewValidatesChannels(t *testing.T) {
	if _, err := New(Skylake, 3); err == nil {
		t.Error("expected error for 3 channels")
	}
	if _, err := New(Skylake, 1); err != nil {
		t.Errorf("single channel rejected: %v", err)
	}
	if _, err := New(Skylake, 2); err != nil {
		t.Errorf("dual channel rejected: %v", err)
	}
}

func TestTranslateRoundTrip(t *testing.T) {
	for _, arch := range []Microarch{SandyBridge, IvyBridge, Skylake} {
		for _, ch := range []int{1, 2} {
			m, err := New(arch, ch)
			if err != nil {
				t.Fatal(err)
			}
			f := func(n uint32) bool {
				phys := uint64(n) * BlockBytes
				loc := m.Translate(phys)
				return m.Untranslate(loc) == phys
			}
			if err := quick.Check(f, nil); err != nil {
				t.Errorf("%v/%dch: %v", arch, ch, err)
			}
		}
	}
}

func TestTranslateBijectiveOverWindow(t *testing.T) {
	// Over a window of blocks, distinct physical addresses must hit
	// distinct (channel, device) locations.
	m, _ := New(Skylake, 2)
	seen := make(map[Location]uint64)
	for b := uint64(0); b < 1<<16; b++ {
		phys := b * BlockBytes
		loc := m.Translate(phys)
		if prev, dup := seen[loc]; dup {
			t.Fatalf("collision: phys %#x and %#x both map to %+v", prev, phys, loc)
		}
		seen[loc] = phys
	}
}

func TestDualChannelInterleave(t *testing.T) {
	m, _ := New(Skylake, 2)
	a := m.Translate(0)
	b := m.Translate(BlockBytes)
	if a.Channel == b.Channel {
		t.Error("adjacent blocks landed on the same channel under 2-channel interleave")
	}
}

func TestSingleChannelAlwaysChannelZero(t *testing.T) {
	m, _ := New(IvyBridge, 1)
	for b := uint64(0); b < 1024; b++ {
		if loc := m.Translate(b * BlockBytes); loc.Channel != 0 {
			t.Fatalf("block %d routed to channel %d", b, loc.Channel)
		}
	}
}

func TestGenerationsMapDifferently(t *testing.T) {
	// The reason the attack needs a same-generation CPU: the same physical
	// address lands on different device locations across generations.
	snb, _ := New(SandyBridge, 1)
	skl, _ := New(Skylake, 1)
	differs := 0
	for b := uint64(0); b < 1<<16; b++ {
		phys := b * BlockBytes
		if snb.Translate(phys) != skl.Translate(phys) {
			differs++
		}
	}
	if differs == 0 {
		t.Error("SandyBridge and Skylake mappings are identical")
	}
}

func TestSameGenerationMapsIdentically(t *testing.T) {
	a, _ := New(Skylake, 2)
	b, _ := New(Skylake, 2)
	for blk := uint64(0); blk < 4096; blk++ {
		phys := blk * BlockBytes
		if a.Translate(phys) != b.Translate(phys) {
			t.Fatalf("same-generation mappings diverge at %#x", phys)
		}
	}
}

func TestSwizzlePreservesLocality(t *testing.T) {
	// Small regions (below the fold source bits) stay contiguous, which is
	// what lets an AES key table spanning 4 blocks remain adjacent in the
	// device. Verify 4 consecutive blocks stay consecutive on Skylake
	// single-channel within an aligned 8 KB region.
	m, _ := New(Skylake, 1)
	base := uint64(0x40000)
	prev := m.Translate(base).DeviceOff
	for i := uint64(1); i < 4; i++ {
		cur := m.Translate(base + i*BlockBytes).DeviceOff
		if cur != prev+BlockBytes {
			t.Fatalf("block %d not adjacent: %#x then %#x", i, prev, cur)
		}
		prev = cur
	}
}

func TestScrambleIndexProperties(t *testing.T) {
	// 12 index bits => 4096 distinct values, cycling with block number.
	seen := make(map[int]bool)
	for b := uint64(0); b < 8192; b++ {
		idx := ScrambleIndex(b*BlockBytes, 12)
		if idx < 0 || idx >= 4096 {
			t.Fatalf("index %d out of range", idx)
		}
		seen[idx] = true
	}
	if len(seen) != 4096 {
		t.Errorf("saw %d distinct indices, want 4096", len(seen))
	}
	// 4 bits => 16 keys (DDR3).
	if got := ScrambleIndex(17*BlockBytes, 4); got != 1 {
		t.Errorf("ScrambleIndex(17 blocks, 4 bits) = %d, want 1", got)
	}
}

func TestScrambleIndexAddressOnly(t *testing.T) {
	// Same address, same index — trivially true but pins the API contract
	// that the index never involves the seed.
	for b := uint64(0); b < 100; b++ {
		if ScrambleIndex(b*BlockBytes, 12) != ScrambleIndex(b*BlockBytes, 12) {
			t.Fatal("index not deterministic")
		}
	}
}

func TestTranslatePanicsOnUnaligned(t *testing.T) {
	m, _ := New(Skylake, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Translate(100)
}

func TestMicroarchString(t *testing.T) {
	if SandyBridge.String() != "SandyBridge" || Skylake.String() != "Skylake" {
		t.Error("String() wrong")
	}
}
