// Package addrmap models how Intel memory controllers map physical
// addresses onto DRAM channels and device locations.
//
// Two properties of this mapping matter to the cold boot attack:
//
//  1. The scrambler key index is derived from (a portion of) the physical
//     address bits after channel routing, so blocks that share a scrambler
//     key continue to share one after a reboot (paper §III-B, observation 4).
//  2. The mapping differs between CPU generations. A DIMM dumped in a
//     machine of a *different* generation sees its victim-machine
//     neighbours scattered, which breaks the attack's neighbouring-block
//     extension — this is why the paper's attack model requires the
//     attacker's CPU to match the victim's generation (§III-C).
//
// The per-generation swizzles here are simplified but bijective XOR-fold
// permutations in the spirit of the documented bank-hashing functions.
package addrmap

import "fmt"

// Microarch identifies a CPU generation with a distinct DRAM mapping.
type Microarch int

// Supported microarchitectures (the generations in the paper's Table I).
const (
	SandyBridge Microarch = iota
	IvyBridge
	Skylake
)

func (a Microarch) String() string {
	switch a {
	case SandyBridge:
		return "SandyBridge"
	case IvyBridge:
		return "IvyBridge"
	case Skylake:
		return "Skylake"
	}
	return fmt.Sprintf("Microarch(%d)", int(a))
}

// BlockBytes is the granularity of channel interleaving and scrambling.
const BlockBytes = 64

// Location is the result of routing a physical address.
type Location struct {
	Channel   int
	DeviceOff uint64 // byte offset within the channel's DIMM
}

// Mapping routes physical addresses for one system configuration.
type Mapping struct {
	arch     Microarch
	channels int // 1 or 2
}

// New builds a Mapping. channels must be 1 or 2 (the client systems the
// paper analyzed are single- or dual-channel).
func New(arch Microarch, channels int) (Mapping, error) {
	if channels != 1 && channels != 2 {
		return Mapping{}, fmt.Errorf("addrmap: unsupported channel count %d", channels)
	}
	return Mapping{arch: arch, channels: channels}, nil
}

// Arch returns the mapping's microarchitecture.
func (m Mapping) Arch() Microarch { return m.arch }

// Channels returns the number of memory channels.
func (m Mapping) Channels() int { return m.channels }

// swizzle permutes the channel-local block index in a generation-specific,
// bijective way (XOR-folding high address bits into the bank/row selector
// bits, as the documented bank-hash functions do). The folds target bits
// 12 and above — above the 12 block-index bits that select the scrambler
// key — matching the observed hardware behaviour that key selection uses
// the low (post-routing) address bits while bank hashing permutes coarser
// placement. Different generations use different folds, which is what
// scatters a foreign-generation dump.
func (m Mapping) swizzle(block uint64) uint64 {
	switch m.arch {
	case SandyBridge:
		return block // identity: the simplest documented mapping
	case IvyBridge:
		// Fold bits 15-17 into bits 12-14: a bank-hash-like XOR.
		return block ^ (((block >> 15) & 0x7) << 12)
	case Skylake:
		// A different fold: bits 14-15 into bits 12-13.
		return block ^ (((block >> 14) & 0x3) << 12)
	}
	panic(fmt.Sprintf("addrmap: unknown microarch %d", m.arch))
}

// unswizzle inverts swizzle. XOR folds of strictly-higher bits into lower
// bits are involutions (the folded-in source bits are unmodified).
func (m Mapping) unswizzle(block uint64) uint64 {
	return m.swizzle(block)
}

// Translate routes a physical address (must be block-aligned) to a channel
// and device offset.
func (m Mapping) Translate(phys uint64) Location {
	if phys%BlockBytes != 0 {
		panic(fmt.Sprintf("addrmap: physical address %#x not block aligned", phys))
	}
	block := phys / BlockBytes
	var ch uint64
	if m.channels == 2 {
		ch = block & 1 // 64-byte channel interleave
		block >>= 1
	}
	dev := m.swizzle(block)
	return Location{Channel: int(ch), DeviceOff: dev * BlockBytes}
}

// Untranslate inverts Translate: given a channel and device offset it
// returns the physical address.
func (m Mapping) Untranslate(loc Location) uint64 {
	if loc.DeviceOff%BlockBytes != 0 {
		panic(fmt.Sprintf("addrmap: device offset %#x not block aligned", loc.DeviceOff))
	}
	block := m.unswizzle(loc.DeviceOff / BlockBytes)
	if m.channels == 2 {
		block = block<<1 | uint64(loc.Channel&1)
	}
	return block * BlockBytes
}

// ScrambleIndex returns the scrambler key selector for a channel-local
// device offset: the low index bits of the block number. indexBits is 4 for
// the DDR3 scramblers (16 keys) and 12 for Skylake DDR4 (4096 keys).
// The index is a pure function of the address — never of the boot seed —
// which is exactly why key-sharing relationships survive reboots.
func ScrambleIndex(deviceOff uint64, indexBits uint) int {
	return int((deviceOff / BlockBytes) & ((1 << indexBits) - 1))
}
