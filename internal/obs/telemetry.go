package obs

import "math/bits"

// Telemetry shipping: the worker side of distributed tracing serializes a
// Collector's accumulated state (span tree, counters, histogram buckets)
// into a Telemetry document, posts it over the fleet wire, and the
// coordinator grafts it into its own Collector — remapping span IDs,
// re-parenting the foreign roots under a local span, and applying a clock
// correction so the merged tree stays monotonic despite per-process
// obs.Now timebases.

// Telemetry is the wire-serializable snapshot of a Collector: everything a
// worker attaches to a shard completion (or flushes periodically on long
// shards). Span attrs and events travel verbatim, so the keyflow contract
// applies: no raw key bytes may ever be written into a span attribute —
// only sha256: fingerprints.
type Telemetry struct {
	Spans        []SpanRecord        `json:"spans,omitempty"`
	SpansDropped int64               `json:"spans_dropped,omitempty"`
	Counters     map[string]int64    `json:"counters,omitempty"`
	Histograms   []HistogramSnapshot `json:"histograms,omitempty"`
}

// Telemetry snapshots the collector's completed spans, counters, and
// histograms for shipping. Live (unended) spans are not included; a
// periodic flush therefore ships a growing prefix of the final tree.
func (c *Collector) Telemetry() Telemetry {
	c.mu.Lock()
	tel := Telemetry{
		Spans:        make([]SpanRecord, len(c.spans)),
		SpansDropped: c.spansDropped,
		Counters:     make(map[string]int64, len(c.counters)),
	}
	copy(tel.Spans, c.spans)
	for k, v := range c.counters {
		tel.Counters[k] = v
	}
	c.mu.Unlock()

	c.hmu.RLock()
	for _, name := range c.horder {
		tel.Histograms = append(tel.Histograms, c.hists[name].Snapshot(name))
	}
	c.hmu.RUnlock()
	return tel
}

// GraftOptions places a foreign span tree inside this collector's trace.
type GraftOptions struct {
	// Parent is the local span ID the foreign root spans are adopted by
	// (typically the shard's lease span). Zero leaves them as roots.
	Parent uint64
	// Root is the local tree ID stamped on every grafted span, so the
	// merged campaign filters as one tree. Zero keeps per-batch roots.
	Root uint64
	// Track names the timeline the grafted spans render on (the worker
	// name); the Chrome exporter gives each track its own named lane.
	Track string
	// OffsetNs is the clock correction added to every grafted StartNs: the
	// estimated difference between this process's obs.Now and the origin
	// process's, derived from lease/heartbeat round-trips.
	OffsetNs int64
	// MinNs is the monotonic floor: if the corrected batch would start
	// before it (residual skew), the whole batch shifts uniformly so its
	// earliest span starts exactly at MinNs. Relative timing within the
	// batch is always preserved.
	MinNs int64
}

// Graft merges a telemetry snapshot into the collector: span IDs are
// remapped into the local ID space, foreign roots are re-parented under
// opts.Parent, timestamps get the clock correction, and the origin's
// counters, histograms, and stage aggregates fold into the local ones.
// Returns the number of spans grafted (spans past the retention cap are
// counted in SpansDropped instead).
func (c *Collector) Graft(tel Telemetry, opts GraftOptions) int {
	shift := opts.OffsetNs
	if len(tel.Spans) > 0 {
		minStart := tel.Spans[0].StartNs
		for _, s := range tel.Spans[1:] {
			if s.StartNs < minStart {
				minStart = s.StartNs
			}
		}
		if minStart+shift < opts.MinNs {
			shift = opts.MinNs - minStart
		}
	}

	idmap := make(map[uint64]uint64, len(tel.Spans))
	for _, s := range tel.Spans {
		idmap[s.ID] = c.nextSpanID.Add(1)
	}

	grafted := 0
	c.mu.Lock()
	for _, s := range tel.Spans {
		r := s
		r.ID = idmap[s.ID]
		if p, ok := idmap[s.Parent]; s.Parent != 0 && ok {
			r.Parent = p
		} else {
			// A foreign root — or an orphan whose parent fell past the
			// origin's span cap — hangs off the adopting span.
			r.Parent = opts.Parent
		}
		if opts.Root != 0 {
			r.Root = opts.Root
		} else if rid, ok := idmap[s.Root]; ok {
			r.Root = rid
		}
		if opts.Track != "" {
			r.Track = opts.Track
		}
		r.StartNs += shift
		st, ok := c.stages[r.Name]
		if !ok {
			st = &StageReport{Name: r.Name}
			c.stages[r.Name] = st
			c.order = append(c.order, r.Name)
		}
		st.Calls++
		st.WallNs += r.DurNs
		if len(c.spans) < spanLimit {
			c.spans = append(c.spans, r)
			grafted++
		} else {
			c.spansDropped++
		}
		c.touchSpanLocked(r)
	}
	c.spansDropped += tel.SpansDropped
	c.mu.Unlock()

	c.MergeCounters(tel.Counters)
	for _, h := range tel.Histograms {
		c.MergeHistogram(h.Name, h)
	}
	return grafted
}

// touchSpanLocked folds a grafted span's corrected time range into the
// first/last event bounds (c.mu held; the atomics tolerate that).
func (c *Collector) touchSpanLocked(r SpanRecord) {
	c.touch(r.StartNs)
	c.touch(r.StartNs + r.DurNs)
}

// MergeCounters adds a foreign counter map into the collector's counters.
// "progress." entries are skipped: they are per-process high-water marks,
// not additive tallies, and summing them across workers would overcount.
func (c *Collector) MergeCounters(counters map[string]int64) {
	if len(counters) == 0 {
		return
	}
	c.mu.Lock()
	for k, v := range counters {
		if len(k) >= 9 && k[:9] == "progress." {
			continue
		}
		c.counters[k] += v
	}
	c.mu.Unlock()
}

// MergeHistogram folds a histogram snapshot into the named local
// histogram, creating it on first use. Snapshot buckets are cumulative;
// the merge reconstructs per-bucket deltas, and the power-of-two bucket
// layout makes the bucket index recoverable from each upper bound — so a
// merge of exact snapshots is exact, not an approximation.
func (c *Collector) MergeHistogram(name string, snap HistogramSnapshot) {
	if snap.Count == 0 {
		return
	}
	c.hmu.Lock()
	h := c.hists[name]
	if h == nil {
		h = &Histogram{}
		c.hists[name] = h
		c.horder = append(c.horder, name)
	}
	c.hmu.Unlock()
	h.merge(snap)
	c.touch(Now())
}

// merge adds a snapshot's samples into the histogram bucket-for-bucket.
func (h *Histogram) merge(s HistogramSnapshot) {
	var prev int64
	for _, b := range s.Buckets {
		d := b.Count - prev
		prev = b.Count
		if d <= 0 {
			continue
		}
		// Invert bucketBounds: bucket 0 has bound 0, bucket i>=1 has bound
		// 2^i-1, bucket 63 tops out at MaxInt64 — all recover their index
		// through bits.Len64.
		h.buckets[bits.Len64(uint64(b.UpperBound))].Add(d)
	}
	h.sum.Add(s.Sum)
}

// SpanID resolves a Span back to its record ID in this collector, seeing
// through the Multi fan-out wrapper. Zero means the span is not one of
// this collector's (a Nop, Journal, or foreign-collector span).
func (c *Collector) SpanID(s Span) uint64 {
	id, _ := c.SpanContext(s)
	return id
}

// SpanContext resolves a Span to its (id, tree root) in this collector,
// seeing through Multi. Both are zero when the span is not ours.
func (c *Collector) SpanContext(s Span) (id, root uint64) {
	switch x := s.(type) {
	case *collectorSpan:
		if x.c == c {
			return x.id, x.root
		}
	case multiSpan:
		for _, sub := range x {
			if id, root = c.SpanContext(sub); id != 0 {
				return id, root
			}
		}
	}
	return 0, 0
}

// FindCollector digs the first Collector out of a tracer, seeing through
// the Multi fan-out wrapper. Nil when the tracer has no Collector.
func FindCollector(t Tracer) *Collector {
	switch x := t.(type) {
	case *Collector:
		return x
	case multiTracer:
		for _, sub := range x {
			if c := FindCollector(sub); c != nil {
				return c
			}
		}
	}
	return nil
}
