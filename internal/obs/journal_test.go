package obs

import (
	"sync"
	"testing"
	"time"
)

func TestJournalRecordsEvents(t *testing.T) {
	j := NewJournal(16)
	sp := j.StartSpan("hunt", A("shard", "0"))
	j.Progress("hunt", 1, 10)
	j.Count("pairs", 3)
	j.Observe("chunk_ns", 42)
	sp.SetAttr("keys", "1")
	sp.End()
	sp.End() // idempotent

	events, missed := j.ReadSince(0, 0)
	if missed != 0 {
		t.Fatalf("missed = %d, want 0", missed)
	}
	types := make([]string, len(events))
	for i, e := range events {
		types[i] = e.Type
		if e.Seq != uint64(i+1) {
			t.Fatalf("seq not dense: %+v", events)
		}
	}
	want := []string{"span_start", "progress", "count", "observe", "span_attr", "span_end"}
	if len(types) != len(want) {
		t.Fatalf("got %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("got %v, want %v", types, want)
		}
	}
	if events[5].WallNs < 0 || events[5].Span != events[0].Span {
		t.Fatalf("span_end payload wrong: %+v", events[5])
	}
	if events[0].Attrs[0].Key != "shard" {
		t.Fatalf("span_start lost attrs: %+v", events[0])
	}
}

func TestJournalCursorAndOverwrite(t *testing.T) {
	j := NewJournal(4)
	for i := int64(0); i < 10; i++ {
		j.Count("c", i)
	}
	// Only the 4 newest survive; a stale cursor observes the gap.
	events, missed := j.ReadSince(0, 0)
	if len(events) != 4 || missed != 6 {
		t.Fatalf("got %d events missed %d, want 4 and 6", len(events), missed)
	}
	if events[0].Seq != 7 || events[3].Seq != 10 {
		t.Fatalf("ring kept wrong window: %+v", events)
	}
	// Resuming from a live cursor is gap-free and ordered.
	events, missed = j.ReadSince(8, 0)
	if missed != 0 || len(events) != 2 || events[0].Seq != 9 {
		t.Fatalf("resume from 8: events=%+v missed=%d", events, missed)
	}
	// max caps the batch.
	events, _ = j.ReadSince(6, 1)
	if len(events) != 1 || events[0].Seq != 7 {
		t.Fatalf("max=1 wrong: %+v", events)
	}
	// A cursor at the head returns nothing.
	if events, _ := j.ReadSince(10, 0); len(events) != 0 {
		t.Fatalf("head cursor returned %+v", events)
	}
	if j.LastSeq() != 10 {
		t.Fatalf("LastSeq = %d, want 10", j.LastSeq())
	}
}

func TestJournalUpdatedWakesReaders(t *testing.T) {
	j := NewJournal(8)
	ch := j.Updated()
	select {
	case <-ch:
		t.Fatal("Updated fired before any append")
	default:
	}
	done := make(chan struct{})
	go func() {
		<-ch
		close(done)
	}()
	j.Count("c", 1)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("append did not wake the reader")
	}
	// Close also wakes, and further appends are dropped.
	ch = j.Updated()
	j.Close()
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not wake the reader")
	}
	j.Close() // safe to repeat
	if !j.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	j.Count("c", 1)
	if j.LastSeq() != 1 {
		t.Fatalf("append after Close changed the journal: LastSeq=%d", j.LastSeq())
	}
}

func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var read uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		var cursor uint64
		for {
			ch := j.Updated()
			events, missed := j.ReadSince(cursor, 0)
			for _, e := range events {
				if e.Seq <= cursor {
					t.Errorf("out-of-order seq %d after cursor %d", e.Seq, cursor)
					return
				}
				cursor = e.Seq
			}
			read += uint64(len(events)) + missed
			select {
			case <-stop:
				events, missed := j.ReadSince(cursor, 0)
				read += uint64(len(events)) + missed
				return
			case <-ch:
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				j.Progress("hunt", int64(i), 500)
			}
		}()
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	if read != 2000 {
		t.Fatalf("reader accounted for %d events (read+missed), want 2000", read)
	}
}

func TestJournalDefaultCapacity(t *testing.T) {
	j := NewJournal(0)
	if cap(j.ring) != defaultJournalCap {
		t.Fatalf("cap = %d, want %d", cap(j.ring), defaultJournalCap)
	}
}
