package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCollectorConcurrentHammer drives one Collector from many goroutines
// at once — stages, counters, progress, and concurrent Report() readers —
// the way the analysis daemon shares a single collector across its worker
// pool. Meaningful under -race (make race); the totals check catches lost
// updates even without it.
func TestCollectorConcurrentHammer(t *testing.T) {
	c := NewCollector()
	const goroutines = 8
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stage := []string{"mine", "hunt", "assemble"}[g%3]
			for i := 0; i < iters; i++ {
				timer := c.StageStart(stage)
				c.Count("pairs", 3)
				c.Count("candidates", 1)
				c.Progress("campaign", int64(g*iters+i), int64(goroutines*iters))
				timer.End()
				if i%17 == 0 {
					// Concurrent readers must see a consistent snapshot.
					r := c.Report()
					if r.Counters["pairs"]%3 != 0 {
						t.Errorf("torn counter read: pairs = %d", r.Counters["pairs"])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	r := c.Report()
	if want := int64(goroutines * iters * 3); r.Counters["pairs"] != want {
		t.Errorf("pairs = %d, want %d (lost updates)", r.Counters["pairs"], want)
	}
	if want := int64(goroutines * iters); r.Counters["candidates"] != want {
		t.Errorf("candidates = %d, want %d", r.Counters["candidates"], want)
	}
	// Progress keeps the high-water mark across all goroutines.
	if want := int64((goroutines-1)*iters + iters - 1); r.Counters["progress.campaign"] != want {
		t.Errorf("progress.campaign = %d, want %d", r.Counters["progress.campaign"], want)
	}
	calls := 0
	for _, s := range r.Stages {
		calls += s.Calls
	}
	if calls != goroutines*iters {
		t.Errorf("stage calls = %d, want %d", calls, goroutines*iters)
	}
}

// TestMultiConcurrentHammer fans concurrent events through Multi into two
// Collectors plus a Funcs adapter, as the service does per job (shared
// collector + job bridge + optional extra tracer).
func TestMultiConcurrentHammer(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	var mu sync.Mutex
	var funcCounts int64
	m := Multi(a, b, &Funcs{
		OnCount: func(name string, delta int64) {
			mu.Lock()
			funcCounts += delta
			mu.Unlock()
		},
	})
	const goroutines = 8
	const iters = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				timer := m.StageStart("hunt")
				m.Count("blocks", 2)
				m.Progress("hunt", int64(i), iters)
				timer.End()
			}
		}(g)
	}
	wg.Wait()
	want := int64(goroutines * iters * 2)
	for name, c := range map[string]*Collector{"a": a, "b": b} {
		if got := c.Report().Counters["blocks"]; got != want {
			t.Errorf("collector %s: blocks = %d, want %d", name, got, want)
		}
	}
	if funcCounts != want {
		t.Errorf("funcs saw %d, want %d", funcCounts, want)
	}
}

func TestWritePrometheus(t *testing.T) {
	c := NewCollector()
	timer := c.StageStart("campaign.mine")
	time.Sleep(time.Millisecond)
	timer.End()
	c.Count("hunt.pairs", 42)
	c.Progress("campaign", 128, 1024)

	var sb strings.Builder
	if err := c.Report().WritePrometheus(&sb, "coldbootd_pipeline"); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE coldbootd_pipeline_stage_wall_seconds counter",
		`coldbootd_pipeline_stage_wall_seconds{stage="campaign.mine"} `,
		`coldbootd_pipeline_stage_calls_total{stage="campaign.mine"} 1`,
		`coldbootd_pipeline_counter_total{name="hunt.pairs"} 42`,
		`coldbootd_pipeline_counter_total{name="progress.campaign"} 128`,
		"coldbootd_pipeline_observed_seconds ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// Every sample line must parse as "<name>{...} <value>" with no
	// unescaped newlines sneaking into labels.
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "coldbootd_pipeline_") {
			t.Errorf("stray line %q", line)
		}
	}
}

func TestWritePrometheusSanitizesNamespace(t *testing.T) {
	var sb strings.Builder
	r := Report{Counters: map[string]int64{"x": 1}}
	if err := r.WritePrometheus(&sb, "1bad-ns.name"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `_bad_ns_name_counter_total{name="x"} 1`) {
		t.Errorf("namespace not sanitized:\n%s", sb.String())
	}
}
