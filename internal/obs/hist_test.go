package obs

import (
	"sync"
	"testing"
)

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot("lat_ns")
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.Sum != 1000*1001/2 {
		t.Fatalf("sum = %d, want %d", s.Sum, 1000*1001/2)
	}
	// Log buckets guarantee estimates within 2x of the true quantile.
	checks := []struct {
		name  string
		got   int64
		truth int64
	}{{"p50", s.P50, 500}, {"p90", s.P90, 900}, {"p99", s.P99, 990}}
	for _, c := range checks {
		if c.got < c.truth/2 || c.got > c.truth*2 {
			t.Errorf("%s = %d, want within 2x of %d", c.name, c.got, c.truth)
		}
	}
	// Buckets must be cumulative and monotone, ending at the total count.
	var prev int64
	for i, b := range s.Buckets {
		if b.Count < prev {
			t.Fatalf("bucket %d count %d < previous %d (not cumulative)", i, b.Count, prev)
		}
		if i > 0 && b.UpperBound <= s.Buckets[i-1].UpperBound {
			t.Fatalf("bucket bounds not increasing: %+v", s.Buckets)
		}
		prev = b.Count
	}
	if prev != s.Count {
		t.Fatalf("last bucket %d != count %d", prev, s.Count)
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-5) // clamped to 0
	h.Observe(1)
	s := h.Snapshot("edge")
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.Sum != 1 {
		t.Fatalf("sum = %d, want 1 (negatives clamp to 0)", s.Sum)
	}
	if len(s.Buckets) != 2 || s.Buckets[0].UpperBound != 0 || s.Buckets[0].Count != 2 {
		t.Fatalf("zero bucket wrong: %+v", s.Buckets)
	}
	if empty := (&Histogram{}).Snapshot("none"); empty.Count != 0 || len(empty.Buckets) != 0 {
		t.Fatalf("empty snapshot should be empty: %+v", empty)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(1 << 20)
	}
	s := h.Snapshot("const")
	lo, hi := bucketBounds(21) // 2^20 has bit length 21
	if s.P50 < lo || s.P50 > hi || s.P99 < lo || s.P99 > hi {
		t.Fatalf("constant-value quantiles escaped the bucket [%d,%d]: p50=%d p99=%d", lo, hi, s.P50, s.P99)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				h.Observe(i)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot("conc"); s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
}

func TestCollectorObserveCreatesHistograms(t *testing.T) {
	c := NewCollector()
	c.Observe("b_ns", 10)
	c.Observe("a_ns", 20)
	c.Observe("b_ns", 30)
	r := c.Report()
	if len(r.Histograms) != 2 {
		t.Fatalf("got %d histograms, want 2", len(r.Histograms))
	}
	// First-observe order, like stages.
	if r.Histograms[0].Name != "b_ns" || r.Histograms[1].Name != "a_ns" {
		t.Fatalf("histograms not in first-observe order: %+v", r.Histograms)
	}
	if r.Histograms[0].Count != 2 || r.Histograms[0].Sum != 40 {
		t.Fatalf("b_ns aggregate wrong: %+v", r.Histograms[0])
	}
	if c.Histogram("a_ns") == nil || c.Histogram("missing") != nil {
		t.Error("Histogram lookup wrong")
	}
}
