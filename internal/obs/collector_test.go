package obs

import (
	"testing"
	"time"
)

// A Count/Progress-only run (no stages at all) must still report wall
// time: every hook touches the first/last event bounds.
func TestCollectorTotalWithoutStages(t *testing.T) {
	c := NewCollector()
	c.Count("pairs", 1)
	time.Sleep(2 * time.Millisecond)
	c.Progress("hunt", 5, 10)
	r := c.Report()
	if r.TotalNs < int64(time.Millisecond) {
		t.Fatalf("TotalNs = %d, want >= 1ms for a Count/Progress-only run", r.TotalNs)
	}
	c2 := NewCollector()
	c2.Observe("lat_ns", 7)
	time.Sleep(2 * time.Millisecond)
	c2.Observe("lat_ns", 9)
	if r := c2.Report(); r.TotalNs < int64(time.Millisecond) {
		t.Fatalf("TotalNs = %d, want >= 1ms for an Observe-only run", r.TotalNs)
	}
	if r := NewCollector().Report(); r.TotalNs != 0 {
		t.Fatalf("empty collector TotalNs = %d, want 0", r.TotalNs)
	}
}

func TestCollectorSpanTree(t *testing.T) {
	c := NewCollector()
	root := c.StartSpan("attack", A("blocks", "32"))
	hunt := root.Child("hunt")
	w0 := hunt.Child("hunt.worker", A("worker", "0"))
	w0.SetAttr("blocks", "0-16")
	w0.End()
	w0.End() // idempotent: must not double-count
	hunt.End()
	root.SetAttr("keys", "1")
	root.End()

	spans := c.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(spans), spans)
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	att, hu, wk := byName["attack"], byName["hunt"], byName["hunt.worker"]
	if att.Parent != 0 || att.Root != att.ID {
		t.Errorf("attack should be a root span: %+v", att)
	}
	if hu.Parent != att.ID || hu.Root != att.ID {
		t.Errorf("hunt should parent under attack: %+v", hu)
	}
	if wk.Parent != hu.ID || wk.Root != att.ID {
		t.Errorf("worker should parent under hunt, rooted at attack: %+v", wk)
	}
	if wk.StartNs < hu.StartNs || hu.StartNs < att.StartNs {
		t.Error("child spans must not start before their parents")
	}
	wantAttrs := map[string]string{"worker": "0", "blocks": "0-16"}
	got := map[string]string{}
	for _, a := range wk.Attrs {
		got[a.Key] = a.Value
	}
	for k, v := range wantAttrs {
		if got[k] != v {
			t.Errorf("worker attr %s = %q, want %q", k, got[k], v)
		}
	}

	// Spans also feed the flat stage aggregates (with idempotent End).
	r := c.Report()
	if len(r.Stages) != 3 {
		t.Fatalf("got %d stages, want 3: %+v", len(r.Stages), r.Stages)
	}
	for _, s := range r.Stages {
		if s.Calls != 1 {
			t.Errorf("stage %s calls = %d, want 1", s.Name, s.Calls)
		}
	}
	if r.Stages[0].Name != "attack" || r.Stages[1].Name != "hunt" {
		t.Errorf("stages not in first-start order: %+v", r.Stages)
	}
}

func TestCollectorSetAttrOverwrites(t *testing.T) {
	c := NewCollector()
	s := c.StartSpan("x", A("k", "a"))
	s.SetAttr("k", "b")
	s.End()
	spans := c.Spans()
	if len(spans) != 1 || len(spans[0].Attrs) != 1 || spans[0].Attrs[0].Value != "b" {
		t.Fatalf("SetAttr should overwrite: %+v", spans)
	}
}

func TestCollectorSpanLimit(t *testing.T) {
	c := NewCollector()
	for i := 0; i < spanLimit+10; i++ {
		c.StartSpan("s").End()
	}
	r := c.Report()
	if len(r.Spans) != spanLimit {
		t.Fatalf("kept %d spans, want cap %d", len(r.Spans), spanLimit)
	}
	if r.SpansDropped != 10 {
		t.Fatalf("SpansDropped = %d, want 10", r.SpansDropped)
	}
	// The flat aggregates keep counting past the cap.
	if r.Stages[0].Calls != spanLimit+10 {
		t.Fatalf("calls = %d, want %d", r.Stages[0].Calls, spanLimit+10)
	}
}

func TestObsClock(t *testing.T) {
	a := Now()
	time.Sleep(time.Millisecond)
	if d := Since(a); d < int64(time.Millisecond) {
		t.Fatalf("Since = %dns across a 1ms sleep", d)
	}
	if b := Now(); b <= a {
		t.Fatalf("Now not monotonic: %d then %d", a, b)
	}
}
