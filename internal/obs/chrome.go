package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// chromeEvent is one Trace Event in the Chrome/Perfetto JSON format. Spans
// are emitted as "X" (complete) events with microsecond timestamps; the
// span tree's root ID becomes the thread ID so each root span (attack,
// campaign, job) renders as its own track. Named tracks (SpanRecord.Track,
// set on grafted fleet telemetry) get synthetic thread IDs plus "M"
// thread_name metadata events, so a merged distributed trace shows a
// coordinator lane and one labelled lane per worker.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the collected spans as Chrome Trace Event JSON,
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTraceSpans(w, c.Spans())
}

// WriteChromeTraceSpans writes an arbitrary span set (e.g. one job's
// subtree filtered out of a shared collector) as Chrome Trace Event JSON.
// Events are sorted by start time so ts is monotonic.
func WriteChromeTraceSpans(w io.Writer, spans []SpanRecord) error {
	spans = append([]SpanRecord(nil), spans...)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartNs < spans[j].StartNs })

	// Named tracks take synthetic thread IDs above every span-derived one,
	// in first-appearance order; unnamed spans keep tid = tree root as
	// always. Metadata events are emitted only when named tracks exist, so
	// single-process traces stay byte-stable.
	var maxID uint64
	for _, s := range spans {
		if s.ID > maxID {
			maxID = s.ID
		}
		if s.Root > maxID {
			maxID = s.Root
		}
	}
	trackTid := make(map[string]uint64)
	var trackOrder []string
	bareTids := make(map[uint64]bool)
	var bareOrder []uint64
	tidOf := func(s SpanRecord) uint64 {
		if s.Track == "" {
			if !bareTids[s.Root] {
				bareTids[s.Root] = true
				bareOrder = append(bareOrder, s.Root)
			}
			return s.Root
		}
		tid, ok := trackTid[s.Track]
		if !ok {
			tid = maxID + 1 + uint64(len(trackOrder))
			trackTid[s.Track] = tid
			trackOrder = append(trackOrder, s.Track)
		}
		return tid
	}

	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		args := make(map[string]string, len(s.Attrs)+2)
		args["span"] = strconv.FormatUint(s.ID, 10)
		if s.Parent != 0 {
			args["parent"] = strconv.FormatUint(s.Parent, 10)
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  "pipeline",
			Ph:   "X",
			Ts:   float64(s.StartNs) / 1e3,
			Dur:  float64(s.DurNs) / 1e3,
			Pid:  1,
			Tid:  tidOf(s),
			Args: args,
		})
	}
	if len(trackOrder) > 0 {
		meta := make([]chromeEvent, 0, len(trackOrder)+len(bareOrder))
		for _, tid := range bareOrder {
			meta = append(meta, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]string{"name": "coordinator"},
			})
		}
		for _, track := range trackOrder {
			meta = append(meta, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: trackTid[track],
				Args: map[string]string{"name": track},
			})
		}
		events = append(meta, events...)
	}
	data, err := json.MarshalIndent(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}, "", " ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
