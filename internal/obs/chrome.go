package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// chromeEvent is one Trace Event in the Chrome/Perfetto JSON format. Spans
// are emitted as "X" (complete) events with microsecond timestamps; the
// span tree's root ID becomes the thread ID so each root span (attack,
// campaign, job) renders as its own track.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the collected spans as Chrome Trace Event JSON,
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
// Events are sorted by start time so ts is monotonic.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	spans := c.Spans()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartNs < spans[j].StartNs })
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		args := make(map[string]string, len(s.Attrs)+2)
		args["span"] = strconv.FormatUint(s.ID, 10)
		if s.Parent != 0 {
			args["parent"] = strconv.FormatUint(s.Parent, 10)
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  "pipeline",
			Ph:   "X",
			Ts:   float64(s.StartNs) / 1e3,
			Dur:  float64(s.DurNs) / 1e3,
			Pid:  1,
			Tid:  s.Root,
			Args: args,
		})
	}
	data, err := json.MarshalIndent(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}, "", " ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
