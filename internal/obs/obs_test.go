package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNopIsSafe(t *testing.T) {
	Nop.StageStart("x").End()
	Nop.Count("c", 1)
	Nop.Progress("x", 1, 2)
	if OrNop(nil) != Nop {
		t.Error("OrNop(nil) != Nop")
	}
	c := NewCollector()
	if OrNop(c) != Tracer(c) {
		t.Error("OrNop dropped a real tracer")
	}
}

func TestCollectorAggregates(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 3; i++ {
		timer := c.StageStart("hunt")
		time.Sleep(time.Millisecond)
		timer.End()
	}
	c.StageStart("mine").End()
	c.Count("pairs", 5)
	c.Count("pairs", 7)
	c.Progress("hunt", 10, 100)
	c.Progress("hunt", 4, 100) // stale report must not regress the mark

	r := c.Report()
	if len(r.Stages) != 2 || r.Stages[0].Name != "hunt" || r.Stages[1].Name != "mine" {
		t.Fatalf("stages not in first-start order: %+v", r.Stages)
	}
	if r.Stages[0].Calls != 3 {
		t.Errorf("hunt calls = %d, want 3", r.Stages[0].Calls)
	}
	if r.Stages[0].WallNs < 3*int64(time.Millisecond) {
		t.Errorf("hunt wall %d ns, want >= 3ms", r.Stages[0].WallNs)
	}
	if r.Counters["pairs"] != 12 {
		t.Errorf("pairs = %d, want 12", r.Counters["pairs"])
	}
	if r.Counters["progress.hunt"] != 10 {
		t.Errorf("progress high-water = %d, want 10", r.Counters["progress.hunt"])
	}
	if r.TotalNs <= 0 {
		t.Error("total span not recorded")
	}
}

func TestCollectorJSON(t *testing.T) {
	c := NewCollector()
	c.StageStart("mine").End()
	c.Count("keys", 2)
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var r Report
	if err := json.Unmarshal(buf.Bytes(), &r); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(r.Stages) != 1 || r.Stages[0].Name != "mine" || r.Counters["keys"] != 2 {
		t.Errorf("round-tripped report wrong: %+v", r)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				timer := c.StageStart("hunt")
				c.Count("n", 1)
				c.Progress("hunt", int64(i), 100)
				timer.End()
			}
		}(w)
	}
	wg.Wait()
	r := c.Report()
	if r.Counters["n"] != 800 {
		t.Errorf("n = %d, want 800", r.Counters["n"])
	}
	if r.Stages[0].Calls != 800 {
		t.Errorf("calls = %d, want 800", r.Stages[0].Calls)
	}
}

func TestFuncsAndMulti(t *testing.T) {
	var started, ended []string
	var counted int64
	f := &Funcs{
		OnStageStart: func(name string) { started = append(started, name) },
		OnStageEnd:   func(name string, wall time.Duration) { ended = append(ended, name) },
		OnCount:      func(name string, delta int64) { counted += delta },
	}
	c := NewCollector()
	m := Multi(f, nil, Nop, c)
	timer := m.StageStart("mine")
	m.Count("pairs", 3)
	timer.End()
	if len(started) != 1 || started[0] != "mine" || len(ended) != 1 {
		t.Errorf("Funcs hooks not invoked: started=%v ended=%v", started, ended)
	}
	if counted != 3 || c.Report().Counters["pairs"] != 3 {
		t.Error("count not fanned out to all tracers")
	}
	if Multi() != Nop || Multi(nil, Nop) != Nop {
		t.Error("empty Multi is not Nop")
	}
	if Multi(c) != Tracer(c) {
		t.Error("single-tracer Multi should unwrap")
	}
}

func TestFuncsNilFieldsAreNops(t *testing.T) {
	f := &Funcs{}
	f.StageStart("x").End()
	f.Count("c", 1)
	f.Progress("x", 1, 2)
}
