package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestGraftRemapsAndReparents builds a worker-side collector with a small
// span tree, grafts its telemetry into a coordinator-side collector, and
// asserts IDs are remapped into the local space, foreign roots hang off the
// adopting span, and every grafted span carries the worker track.
func TestGraftRemapsAndReparents(t *testing.T) {
	worker := NewCollector()
	root := worker.StartSpan("shard.scan")
	child := root.Child("hunt", Attr{Key: "chunk", Value: "0"})
	child.End()
	root.End()
	worker.Count("keys.found", 2)
	worker.Observe("hunt.chunk_ns", 1500)

	coord := NewCollector()
	lease := coord.StartSpan("fleet.lease")
	leaseID := coord.SpanID(lease)
	_, treeRoot := coord.SpanContext(lease)
	if leaseID == 0 || treeRoot == 0 {
		t.Fatalf("SpanContext on own span = (%d, %d), want nonzero", leaseID, treeRoot)
	}

	n := coord.Graft(worker.Telemetry(), GraftOptions{
		Parent: leaseID, Root: treeRoot, Track: "w1",
	})
	if n != 2 {
		t.Fatalf("grafted %d spans, want 2", n)
	}
	lease.End()

	spans := coord.Spans()
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	scan, ok := byName["shard.scan"]
	if !ok {
		t.Fatalf("grafted shard.scan span missing; have %+v", spans)
	}
	hunt := byName["hunt"]
	if scan.Parent != leaseID {
		t.Errorf("foreign root parent = %d, want lease span %d", scan.Parent, leaseID)
	}
	if hunt.Parent != scan.ID {
		t.Errorf("grafted child parent = %d, want remapped %d", hunt.Parent, scan.ID)
	}
	if scan.Root != treeRoot || hunt.Root != treeRoot {
		t.Errorf("grafted roots = %d/%d, want %d", scan.Root, hunt.Root, treeRoot)
	}
	if scan.Track != "w1" || hunt.Track != "w1" {
		t.Errorf("grafted tracks = %q/%q, want w1", scan.Track, hunt.Track)
	}
	if scan.ID == 0 || scan.ID == hunt.ID {
		t.Errorf("remapped IDs not unique: scan=%d hunt=%d", scan.ID, hunt.ID)
	}
	if len(hunt.Attrs) != 1 || hunt.Attrs[0].Key != "chunk" {
		t.Errorf("grafted attrs lost: %+v", hunt.Attrs)
	}

	rep := coord.Report()
	if rep.Counters["keys.found"] != 2 {
		t.Errorf("merged counter = %d, want 2", rep.Counters["keys.found"])
	}
	h := coord.Histogram("hunt.chunk_ns")
	if h == nil || h.Snapshot("hunt.chunk_ns").Count != 1 {
		t.Errorf("merged histogram missing or wrong count")
	}
}

// TestGraftClockCorrection asserts the offset is applied and that a
// corrected batch landing before MinNs is clamped so the earliest span
// starts exactly at the floor — keeping the merged tree monotonic under
// worker clock skew in both directions.
func TestGraftClockCorrection(t *testing.T) {
	tel := Telemetry{Spans: []SpanRecord{
		{ID: 1, Root: 1, Name: "a", StartNs: 1000, DurNs: 10},
		{ID: 2, Parent: 1, Root: 1, Name: "b", StartNs: 1500, DurNs: 10},
	}}

	c := NewCollector()
	c.Graft(tel, GraftOptions{OffsetNs: 500, MinNs: 0})
	spans := c.Spans()
	if spans[0].StartNs != 1500 || spans[1].StartNs != 2000 {
		t.Errorf("offset not applied: starts %d/%d, want 1500/2000", spans[0].StartNs, spans[1].StartNs)
	}

	// Offset would pull the batch to 0/500, below the floor of 4000: the
	// whole batch must shift uniformly so min lands at 4000.
	c2 := NewCollector()
	c2.Graft(tel, GraftOptions{OffsetNs: -1000, MinNs: 4000})
	spans = c2.Spans()
	if spans[0].StartNs != 4000 || spans[1].StartNs != 4500 {
		t.Errorf("clamp broken: starts %d/%d, want 4000/4500", spans[0].StartNs, spans[1].StartNs)
	}
	if gap := spans[1].StartNs - spans[0].StartNs; gap != 500 {
		t.Errorf("relative timing not preserved: gap %d, want 500", gap)
	}
}

// TestGraftSkipsProgressCounters asserts per-process progress high-water
// marks never sum across workers.
func TestGraftSkipsProgressCounters(t *testing.T) {
	c := NewCollector()
	c.Graft(Telemetry{Counters: map[string]int64{
		"progress.campaign": 900,
		"fleet.retries":     3,
	}}, GraftOptions{})
	rep := c.Report()
	if _, ok := rep.Counters["progress.campaign"]; ok {
		t.Errorf("progress counter leaked into merge: %v", rep.Counters)
	}
	if rep.Counters["fleet.retries"] != 3 {
		t.Errorf("additive counter lost: %v", rep.Counters)
	}
}

// TestMergeHistogramExact asserts a snapshot merge is exact: merging N
// collectors' snapshots equals observing all samples in one collector,
// bucket for bucket.
func TestMergeHistogramExact(t *testing.T) {
	samples := []int64{0, 1, 2, 3, 500, 1023, 1024, 1 << 30, 1<<62 + 7}
	direct := &Histogram{}
	a, b := NewCollector(), NewCollector()
	for i, v := range samples {
		direct.Observe(v)
		if i%2 == 0 {
			a.Observe("x_ns", v)
		} else {
			b.Observe("x_ns", v)
		}
	}
	merged := NewCollector()
	merged.MergeHistogram("x_ns", a.Histogram("x_ns").Snapshot("x_ns"))
	merged.MergeHistogram("x_ns", b.Histogram("x_ns").Snapshot("x_ns"))

	want := direct.Snapshot("x_ns")
	got := merged.Histogram("x_ns").Snapshot("x_ns")
	if got.Count != want.Count || got.Sum != want.Sum {
		t.Fatalf("merge count/sum = %d/%d, want %d/%d", got.Count, got.Sum, want.Count, want.Sum)
	}
	if len(got.Buckets) != len(want.Buckets) {
		t.Fatalf("bucket count %d, want %d", len(got.Buckets), len(want.Buckets))
	}
	for i := range want.Buckets {
		if got.Buckets[i] != want.Buckets[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, got.Buckets[i], want.Buckets[i])
		}
	}
}

// TestGraftRespectsSpanCap asserts overflowing spans are counted dropped,
// and shipped drop counts accumulate.
func TestGraftRespectsSpanCap(t *testing.T) {
	tel := Telemetry{SpansDropped: 7}
	for i := uint64(1); i <= 3; i++ {
		tel.Spans = append(tel.Spans, SpanRecord{ID: i, Root: 1, Name: "s"})
	}
	c := NewCollector()
	c.mu.Lock()
	c.spans = make([]SpanRecord, spanLimit-1) // one slot left
	c.mu.Unlock()
	n := c.Graft(tel, GraftOptions{})
	if n != 1 {
		t.Fatalf("grafted %d, want 1 (cap)", n)
	}
	if rep := c.Report(); rep.SpansDropped != 2+7 {
		t.Fatalf("SpansDropped = %d, want 9", rep.SpansDropped)
	}
}

// TestTelemetryRoundTripJSON asserts the wire document survives JSON.
func TestTelemetryRoundTripJSON(t *testing.T) {
	w := NewCollector()
	sp := w.StartSpan("shard.scan", Attr{Key: "shard", Value: "3"})
	sp.End()
	w.Count("n", 1)
	w.Observe("lat_ns", 42)
	tel := w.Telemetry()
	data, err := json.Marshal(tel)
	if err != nil {
		t.Fatal(err)
	}
	var back Telemetry
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Spans) != 1 || back.Spans[0].Name != "shard.scan" ||
		back.Counters["n"] != 1 || len(back.Histograms) != 1 {
		t.Fatalf("round trip mangled telemetry: %+v", back)
	}
}

// TestFindCollectorAndSpanIdentity asserts collector discovery and span
// resolution see through the Multi wrapper and reject foreign spans.
func TestFindCollectorAndSpanIdentity(t *testing.T) {
	c := NewCollector()
	other := NewCollector()
	multi := Multi(NewJournal(8), c)
	if FindCollector(multi) != c {
		t.Fatal("FindCollector failed through Multi")
	}
	if FindCollector(Nop) != nil || FindCollector(NewJournal(8)) != nil {
		t.Fatal("FindCollector invented a collector")
	}
	s := multi.StartSpan("x")
	if id := c.SpanID(s); id == 0 {
		t.Fatal("SpanID failed through multiSpan")
	}
	if id := other.SpanID(s); id != 0 {
		t.Fatalf("foreign collector resolved span to %d, want 0", id)
	}
	if c.SpanID(Nop.StartSpan("x")) != 0 {
		t.Fatal("nop span resolved to nonzero ID")
	}
}

// TestPrometheusLabeledHistograms asserts ";key=value" name suffixes render
// as one labelled family: HELP/TYPE once, per-worker bucket/sum/count
// series distinguished by label.
func TestPrometheusLabeledHistograms(t *testing.T) {
	c := NewCollector()
	c.Observe("fleet.shard_ns;worker=w1", 1000)
	c.Observe("fleet.shard_ns;worker=w1", 3000)
	c.Observe("fleet.shard_ns;worker=w2", 2000)
	var buf bytes.Buffer
	if err := c.Report().WritePrometheus(&buf, "coldbootd_pipeline"); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	const metric = "coldbootd_pipeline_fleet_shard_seconds"
	if n := strings.Count(text, "# TYPE "+metric+" histogram"); n != 1 {
		t.Fatalf("family TYPE emitted %d times, want once:\n%s", n, text)
	}
	for _, want := range []string{
		metric + `_bucket{le="+Inf",worker="w1"} 2`,
		metric + `_bucket{le="+Inf",worker="w2"} 1`,
		metric + `_count{worker="w1"} 2`,
		metric + `_count{worker="w2"} 1`,
		metric + `_sum{worker="w1"} `,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	validatePromText(t, text)
}

// TestPrometheusSpansDropped asserts the drop counter is always exposed.
func TestPrometheusSpansDropped(t *testing.T) {
	var buf bytes.Buffer
	if err := (Report{}).WritePrometheus(&buf, "x"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x_spans_dropped_total 0") {
		t.Fatalf("missing spans_dropped_total in:\n%s", buf.String())
	}
	validatePromText(t, buf.String())
}

// TestJournalOverwritten asserts ring wrap is counted for /metrics.
func TestJournalOverwritten(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Count("e", 1)
	}
	if got := j.Overwritten(); got != 6 {
		t.Fatalf("Overwritten = %d, want 6", got)
	}
}

// TestChromeTraceWorkerTracks asserts grafted spans with Track set render
// on their own named lanes: synthetic tids distinct from the coordinator's,
// plus thread_name metadata events naming each lane.
func TestChromeTraceWorkerTracks(t *testing.T) {
	coord := NewCollector()
	job := coord.StartSpan("job")
	jobID, root := coord.SpanContext(job)

	w1 := NewCollector()
	s := w1.StartSpan("shard.scan")
	s.End()
	coord.Graft(w1.Telemetry(), GraftOptions{Parent: jobID, Root: root, Track: "w1"})

	w2 := NewCollector()
	s = w2.StartSpan("shard.scan")
	s.End()
	coord.Graft(w2.Telemetry(), GraftOptions{Parent: jobID, Root: root, Track: "w2"})
	job.End()

	var buf bytes.Buffer
	if err := coord.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Pid  int               `json:"pid"`
			Tid  uint64            `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	laneNames := map[uint64]string{}
	tids := map[string]uint64{}
	var xEvents, lastTs = 0, -1.0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name != "thread_name" {
				t.Errorf("unexpected metadata event %q", e.Name)
			}
			laneNames[e.Tid] = e.Args["name"]
		case "X":
			xEvents++
			if e.Ts < lastTs {
				t.Errorf("ts not monotonic: %g after %g", e.Ts, lastTs)
			}
			lastTs = e.Ts
			tids[e.Name+"/"+e.Args["span"]] = e.Tid
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if xEvents != 3 {
		t.Fatalf("got %d X events, want 3", xEvents)
	}
	names := map[string]bool{}
	for _, n := range laneNames {
		names[n] = true
	}
	for _, want := range []string{"coordinator", "w1", "w2"} {
		if !names[want] {
			t.Errorf("missing %q lane in %v", want, laneNames)
		}
	}
	// The two worker scans must land on different lanes, both distinct from
	// the coordinator's job lane.
	seen := map[uint64]bool{}
	for key, tid := range tids {
		if seen[tid] {
			t.Errorf("lane %d reused across %v", tid, tids)
		}
		seen[tid] = true
		_ = key
	}
}
