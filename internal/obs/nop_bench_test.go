package obs

import "testing"

// sink defeats dead-call elimination in the benchmarks below.
var sink Span

// TestNopZeroAlloc is the contract the bench-guard target enforces: the
// Nop fast path must not allocate, so hot loops (per-chunk scans, verify
// loops) can call tracing hooks unconditionally.
func TestNopZeroAlloc(t *testing.T) {
	allocs := testing.AllocsPerRun(1000, func() {
		sp := Nop.StartSpan("hunt")
		sp.SetAttr("k", "v")
		child := sp.Child("hunt.worker")
		child.End()
		sp.End()
		Nop.StageStart("mine").End()
		Nop.Count("pairs", 1)
		Nop.Progress("hunt", 1, 2)
		Nop.Observe("chunk_ns", 42)
	})
	if allocs != 0 {
		t.Fatalf("Nop path allocates %v per run, want 0", allocs)
	}
}

// BenchmarkNopOverhead measures the full set of tracing hooks on the Nop
// tracer — the price every instrumented hot loop pays when tracing is
// off. `make bench-guard` runs it with -benchmem and fails on any
// allocation.
func BenchmarkNopOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := Nop.StartSpan("hunt")
		child := sp.Child("hunt.worker")
		child.End()
		sp.End()
		Nop.Count("pairs", 1)
		Nop.Progress("hunt", int64(i), int64(b.N))
		Nop.Observe("chunk_ns", int64(i))
		sink = sp
	}
}

// BenchmarkCollectorObserve prices the live histogram path hunt workers
// hit per chunk: a read-locked map lookup plus two atomic adds.
func BenchmarkCollectorObserve(b *testing.B) {
	c := NewCollector()
	c.Observe("chunk_ns", 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Observe("chunk_ns", int64(i))
	}
}
