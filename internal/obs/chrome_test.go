package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestChromeTraceValid asserts the exporter's output is structurally valid
// Chrome Trace Event JSON: an object with a traceEvents array of complete
// ("X") events whose ts values are monotonic non-decreasing and whose
// durations are non-negative — the contract Perfetto/chrome://tracing
// require to load a file.
func TestChromeTraceValid(t *testing.T) {
	c := NewCollector()
	root := c.StartSpan("attack", A("blocks", "8"))
	mine := root.Child("mine")
	mine.End()
	hunt := root.Child("hunt")
	hunt.Child("hunt.worker", A("worker", "0")).End()
	hunt.End()
	root.End()

	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  uint64            `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(doc.TraceEvents))
	}
	prev := -1.0
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Errorf("event %q has ph=%q, want complete event X", e.Name, e.Ph)
		}
		if e.Ts < prev {
			t.Errorf("ts not monotonic: %g after %g", e.Ts, prev)
		}
		prev = e.Ts
		if e.Dur < 0 {
			t.Errorf("event %q has negative dur %g", e.Name, e.Dur)
		}
		if e.Pid != 1 || e.Tid == 0 {
			t.Errorf("event %q missing pid/tid: %+v", e.Name, e)
		}
		if e.Args["span"] == "" {
			t.Errorf("event %q missing span id arg", e.Name)
		}
		names[e.Name] = true
	}
	for _, want := range []string{"attack", "mine", "hunt", "hunt.worker"} {
		if !names[want] {
			t.Errorf("trace missing span %q", want)
		}
	}
	// All spans of one tree share a track (tid = root span id).
	tid := doc.TraceEvents[0].Tid
	for _, e := range doc.TraceEvents {
		if e.Tid != tid {
			t.Errorf("event %q on track %d, want %d", e.Name, e.Tid, tid)
		}
	}
	// Attrs ride along as args.
	found := false
	for _, e := range doc.TraceEvents {
		if e.Name == "hunt.worker" && e.Args["worker"] == "0" {
			found = true
		}
	}
	if !found {
		t.Error("span attrs not exported as args")
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewCollector().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "traceEvents") {
		t.Fatalf("empty trace missing traceEvents array: %s", buf.String())
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
}
