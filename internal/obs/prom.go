package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the report in the Prometheus text exposition
// format (version 0.0.4), prefixing every metric with namespace. Stage
// aggregates become `<ns>_stage_wall_seconds` / `<ns>_stage_calls_total`
// labelled by stage, every counter becomes a `<ns>_counter_total` sample
// labelled by name, and every latency histogram becomes a native
// `histogram` metric (`_bucket`/`_sum`/`_count` series) — so new pipeline
// counters and histograms appear on the scrape endpoint without exporter
// changes.
func (r Report) WritePrometheus(w io.Writer, namespace string) error {
	ns := sanitizeMetricName(namespace)
	if len(r.Stages) > 0 {
		fmt.Fprintf(w, "# HELP %s_stage_wall_seconds Cumulative wall time spent in each pipeline stage.\n", ns)
		fmt.Fprintf(w, "# TYPE %s_stage_wall_seconds counter\n", ns)
		for _, s := range r.Stages {
			fmt.Fprintf(w, "%s_stage_wall_seconds{stage=%q} %g\n", ns, s.Name, float64(s.WallNs)/1e9)
		}
		fmt.Fprintf(w, "# HELP %s_stage_calls_total Number of times each pipeline stage ran.\n", ns)
		fmt.Fprintf(w, "# TYPE %s_stage_calls_total counter\n", ns)
		for _, s := range r.Stages {
			fmt.Fprintf(w, "%s_stage_calls_total{stage=%q} %d\n", ns, s.Name, s.Calls)
		}
	}
	if len(r.Counters) > 0 {
		fmt.Fprintf(w, "# HELP %s_counter_total Pipeline counters (candidate tallies, progress high-water marks).\n", ns)
		fmt.Fprintf(w, "# TYPE %s_counter_total counter\n", ns)
		// Report.Counters is rebuilt sorted by Collector.Report, but sort
		// defensively for reports assembled by hand.
		for _, name := range sortedKeys(r.Counters) {
			fmt.Fprintf(w, "%s_counter_total{name=%q} %d\n", ns, name, r.Counters[name])
		}
	}
	for _, h := range r.Histograms {
		if err := writePromHistogram(w, ns, h); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# HELP %s_observed_seconds Wall time from first to last observed stage event.\n# TYPE %s_observed_seconds gauge\n%s_observed_seconds %g\n",
		ns, ns, ns, float64(r.TotalNs)/1e9)
	return err
}

// writePromHistogram renders one snapshot as a native Prometheus
// histogram. Values are nanoseconds by the obs.Observe convention, so the
// "_ns" suffix is swapped for "_seconds" and bounds divide by 1e9.
func writePromHistogram(w io.Writer, ns string, h HistogramSnapshot) error {
	name := ns + "_" + strings.TrimSuffix(sanitizeMetricName(h.Name), "_ns") + "_seconds"
	fmt.Fprintf(w, "# HELP %s Latency distribution of %s.\n", name, h.Name)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	for _, b := range h.Buckets {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatSeconds(b.UpperBound), b.Count)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.Sum)/1e9)
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	return err
}

// formatSeconds renders a nanosecond bound as seconds the way Prometheus
// clients do (shortest float64 round trip).
func formatSeconds(ns int64) string {
	return fmt.Sprintf("%g", float64(ns)/1e9)
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sanitizeMetricName maps arbitrary strings onto the Prometheus metric
// name alphabet [a-zA-Z0-9_:].
func sanitizeMetricName(s string) string {
	if s == "" {
		return "obs"
	}
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
