package obs

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders the report in the Prometheus text exposition
// format (version 0.0.4), prefixing every metric with namespace. Stage
// aggregates become `<ns>_stage_wall_seconds` / `<ns>_stage_calls_total`
// labelled by stage, and every counter becomes a `<ns>_counter_total`
// sample labelled by name — so new pipeline counters appear on the scrape
// endpoint without exporter changes.
func (r Report) WritePrometheus(w io.Writer, namespace string) error {
	ns := sanitizeMetricName(namespace)
	if len(r.Stages) > 0 {
		fmt.Fprintf(w, "# HELP %s_stage_wall_seconds Cumulative wall time spent in each pipeline stage.\n", ns)
		fmt.Fprintf(w, "# TYPE %s_stage_wall_seconds counter\n", ns)
		for _, s := range r.Stages {
			fmt.Fprintf(w, "%s_stage_wall_seconds{stage=%q} %g\n", ns, s.Name, float64(s.WallNs)/1e9)
		}
		fmt.Fprintf(w, "# HELP %s_stage_calls_total Number of times each pipeline stage ran.\n", ns)
		fmt.Fprintf(w, "# TYPE %s_stage_calls_total counter\n", ns)
		for _, s := range r.Stages {
			fmt.Fprintf(w, "%s_stage_calls_total{stage=%q} %d\n", ns, s.Name, s.Calls)
		}
	}
	if len(r.Counters) > 0 {
		fmt.Fprintf(w, "# HELP %s_counter_total Pipeline counters (candidate tallies, progress high-water marks).\n", ns)
		fmt.Fprintf(w, "# TYPE %s_counter_total counter\n", ns)
		// Report.Counters is rebuilt sorted by Collector.Report, but sort
		// defensively for reports assembled by hand.
		for _, name := range sortedKeys(r.Counters) {
			fmt.Fprintf(w, "%s_counter_total{name=%q} %d\n", ns, name, r.Counters[name])
		}
	}
	_, err := fmt.Fprintf(w, "# HELP %s_observed_seconds Wall time from first to last observed stage event.\n# TYPE %s_observed_seconds gauge\n%s_observed_seconds %g\n",
		ns, ns, ns, float64(r.TotalNs)/1e9)
	return err
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// sanitizeMetricName maps arbitrary strings onto the Prometheus metric
// name alphabet [a-zA-Z0-9_:].
func sanitizeMetricName(s string) string {
	if s == "" {
		return "obs"
	}
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
