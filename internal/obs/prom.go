package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the report in the Prometheus text exposition
// format (version 0.0.4), prefixing every metric with namespace. Stage
// aggregates become `<ns>_stage_wall_seconds` / `<ns>_stage_calls_total`
// labelled by stage, every counter becomes a `<ns>_counter_total` sample
// labelled by name, and every latency histogram becomes a native
// `histogram` metric (`_bucket`/`_sum`/`_count` series) — so new pipeline
// counters and histograms appear on the scrape endpoint without exporter
// changes.
func (r Report) WritePrometheus(w io.Writer, namespace string) error {
	ns := sanitizeMetricName(namespace)
	if len(r.Stages) > 0 {
		fmt.Fprintf(w, "# HELP %s_stage_wall_seconds Cumulative wall time spent in each pipeline stage.\n", ns)
		fmt.Fprintf(w, "# TYPE %s_stage_wall_seconds counter\n", ns)
		for _, s := range r.Stages {
			fmt.Fprintf(w, "%s_stage_wall_seconds{stage=%q} %g\n", ns, s.Name, float64(s.WallNs)/1e9)
		}
		fmt.Fprintf(w, "# HELP %s_stage_calls_total Number of times each pipeline stage ran.\n", ns)
		fmt.Fprintf(w, "# TYPE %s_stage_calls_total counter\n", ns)
		for _, s := range r.Stages {
			fmt.Fprintf(w, "%s_stage_calls_total{stage=%q} %d\n", ns, s.Name, s.Calls)
		}
	}
	if len(r.Counters) > 0 {
		fmt.Fprintf(w, "# HELP %s_counter_total Pipeline counters (candidate tallies, progress high-water marks).\n", ns)
		fmt.Fprintf(w, "# TYPE %s_counter_total counter\n", ns)
		// Report.Counters is rebuilt sorted by Collector.Report, but sort
		// defensively for reports assembled by hand.
		for _, name := range sortedKeys(r.Counters) {
			fmt.Fprintf(w, "%s_counter_total{name=%q} %d\n", ns, name, r.Counters[name])
		}
	}
	// Group histograms into families: a name like "fleet.shard_ns;worker=w1"
	// is the "fleet.shard_ns" family with a {worker="w1"} label set, so
	// per-worker series aggregated by the fleet coordinator render as one
	// labelled Prometheus histogram instead of N distinct metric names.
	// HELP/TYPE are emitted once per family, in first-appearance order.
	famOrder := make([]string, 0, len(r.Histograms))
	families := make(map[string][]HistogramSnapshot)
	for _, h := range r.Histograms {
		base, _ := splitHistName(h.Name)
		if _, ok := families[base]; !ok {
			famOrder = append(famOrder, base)
		}
		families[base] = append(families[base], h)
	}
	for _, base := range famOrder {
		if err := writePromHistFamily(w, ns, base, families[base]); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "# HELP %s_spans_dropped_total Trace spans discarded past the collector retention cap.\n", ns)
	fmt.Fprintf(w, "# TYPE %s_spans_dropped_total counter\n", ns)
	fmt.Fprintf(w, "%s_spans_dropped_total %d\n", ns, r.SpansDropped)
	_, err := fmt.Fprintf(w, "# HELP %s_observed_seconds Wall time from first to last observed stage event.\n# TYPE %s_observed_seconds gauge\n%s_observed_seconds %g\n",
		ns, ns, ns, float64(r.TotalNs)/1e9)
	return err
}

// splitHistName splits a histogram name into its base family and any
// ";key=value" label suffixes. Malformed suffixes (no "=") are kept in the
// base name, sanitized like any other metric-name character.
func splitHistName(name string) (base string, labels [][2]string) {
	parts := strings.Split(name, ";")
	base = parts[0]
	for _, p := range parts[1:] {
		k, v, ok := strings.Cut(p, "=")
		if !ok || k == "" {
			base += "_" + p
			continue
		}
		labels = append(labels, [2]string{sanitizeLabelName(k), v})
	}
	return base, labels
}

// writePromHistFamily renders one histogram family — every label-set
// variant of one base name — as a native Prometheus histogram. Values are
// nanoseconds by the obs.Observe convention, so the "_ns" suffix is
// swapped for "_seconds" and bounds divide by 1e9.
func writePromHistFamily(w io.Writer, ns, base string, hs []HistogramSnapshot) error {
	name := ns + "_" + strings.TrimSuffix(sanitizeMetricName(base), "_ns") + "_seconds"
	fmt.Fprintf(w, "# HELP %s Latency distribution of %s.\n", name, base)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	for _, h := range hs {
		_, labels := splitHistName(h.Name)
		suffix := formatLabels(labels)
		for _, b := range h.Buckets {
			fmt.Fprintf(w, "%s_bucket{le=%q%s} %d\n", name, formatSeconds(b.UpperBound), suffix, b.Count)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"%s} %d\n", name, suffix, h.Count)
		if suffix == "" {
			fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.Sum)/1e9)
			if _, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count); err != nil {
				return err
			}
			continue
		}
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, strings.TrimPrefix(suffix, ","), float64(h.Sum)/1e9)
		if _, err := fmt.Fprintf(w, "%s_count{%s} %d\n", name, strings.TrimPrefix(suffix, ","), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// formatLabels renders parsed labels as `,k="v",k2="v2"` for appending
// after the le label (empty when there are none).
func formatLabels(labels [][2]string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, kv := range labels {
		fmt.Fprintf(&b, ",%s=%q", kv[0], kv[1])
	}
	return b.String()
}

// formatSeconds renders a nanosecond bound as seconds the way Prometheus
// clients do (shortest float64 round trip).
func formatSeconds(ns int64) string {
	return fmt.Sprintf("%g", float64(ns)/1e9)
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sanitizeLabelName maps arbitrary strings onto the Prometheus label name
// alphabet [a-zA-Z0-9_] (no colon, unlike metric names).
func sanitizeLabelName(s string) string {
	if s == "" {
		return "label"
	}
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// sanitizeMetricName maps arbitrary strings onto the Prometheus metric
// name alphabet [a-zA-Z0-9_:].
func sanitizeMetricName(s string) string {
	if s == "" {
		return "obs"
	}
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
