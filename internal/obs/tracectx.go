package obs

import (
	"crypto/rand"
	"encoding/hex"
)

// Distributed trace context. A campaign that spans processes (the fleet
// coordinator and its workers) shares one trace: the coordinator mints a
// TraceID when it plans the campaign, ships it to workers inside the wire
// plan and every shard lease, and workers stamp it on the span trees they
// send back so the coordinator can graft them under the campaign root.
//
// The context is deliberately tiny — an opaque ID plus a parent span — and
// carries no clock: span timestamps stay in each process's own obs.Now
// timebase and are corrected at graft time (see GraftOptions.OffsetNs),
// because a wire-carried absolute clock would reintroduce exactly the
// cross-host skew the offset estimation exists to remove.

// TraceContext identifies one distributed trace and the span to hang
// foreign subtrees under. It is wire-serializable and rides fleet.WirePlan
// and the shard lease protocol.
type TraceContext struct {
	// TraceID is the campaign-wide trace identifier (16 hex chars).
	TraceID string `json:"trace_id,omitempty"`
	// ParentSpan is the span ID (in the minting process's Collector) that
	// adopted subtrees should be parented under. Zero means "root".
	ParentSpan uint64 `json:"parent_span,omitempty"`
}

// Valid reports whether the context carries a trace ID.
func (tc TraceContext) Valid() bool { return tc.TraceID != "" }

// NewTraceID mints a random 64-bit trace ID as 16 hex characters.
// crypto/rand keeps the noweakrand contract; on the (never observed)
// failure of the system entropy source the ID degrades to a constant,
// which merges traces but never breaks them.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "trace-degraded00"
	}
	return hex.EncodeToString(b[:])
}
