package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// timebase anchors the package's monotonic clock: all span timestamps and
// event times are nanoseconds since process start, so they are comparable
// across goroutines and cheap to subtract.
var timebase = time.Now()

// Now returns the current monotonic timestamp in nanoseconds since
// process start. Instrumented packages use it instead of time.Now so the
// noprint lint contract ("wall-clock reads live in obs") holds.
func Now() int64 { return int64(time.Since(timebase)) }

// Since returns the nanoseconds elapsed since a timestamp from Now.
func Since(start int64) int64 { return Now() - start }

// spanLimit bounds the span records a Collector retains; a campaign over a
// pathological dump could otherwise grow the trace without bound. Spans
// past the cap are counted in Report.SpansDropped.
const spanLimit = 65536

// StageReport is one stage's aggregate in a Collector report. A stage that
// ran more than once (per-shard hunts) accumulates calls and wall time.
type StageReport struct {
	Name   string  `json:"name"`
	Calls  int     `json:"calls"`
	WallNs int64   `json:"wall_ns"`
	WallMs float64 `json:"wall_ms"`
}

// SpanRecord is one completed span in the Collector's trace tree. IDs are
// assigned in start order and are unique within the Collector; Parent is 0
// for root spans; Root names the tree the span belongs to (its own ID for
// roots), which the Chrome exporter uses as the track ID. Track, when set,
// names the timeline the span renders on instead (grafted fleet telemetry
// carries the originating worker's name here), so a merged distributed
// trace shows one named lane per worker.
type SpanRecord struct {
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent,omitempty"`
	Root    uint64 `json:"root"`
	Track   string `json:"track,omitempty"`
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// Report is the Collector's JSON document.
type Report struct {
	// Stages are in first-start order.
	Stages   []StageReport    `json:"stages"`
	Counters map[string]int64 `json:"counters"`
	// Histograms are in first-observe order.
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
	// Spans are completed spans in end order; SpansDropped counts spans
	// discarded past the retention cap.
	Spans        []SpanRecord `json:"spans,omitempty"`
	SpansDropped int64        `json:"spans_dropped,omitempty"`
	// TotalNs spans the first to the last event observed on any hook
	// (stages, spans, counters, progress, or histogram samples).
	TotalNs int64 `json:"total_ns"`
}

// Collector aggregates pipeline events into a Report. The zero value is
// not usable; call NewCollector.
type Collector struct {
	mu           sync.Mutex
	order        []string                // guarded by mu
	stages       map[string]*StageReport // guarded by mu
	counters     map[string]int64        // guarded by mu
	spans        []SpanRecord            // guarded by mu
	spansDropped int64                   // guarded by mu
	nextSpanID   atomic.Uint64

	// firstNs/lastNs hold Now()+1 so zero means "unset"; every hook
	// touches them, so a Count/Progress-only run still reports TotalNs.
	firstNs atomic.Int64
	lastNs  atomic.Int64

	hmu    sync.RWMutex
	hists  map[string]*Histogram // guarded by hmu
	horder []string              // guarded by hmu
}

// NewCollector returns an empty Collector ready for use as a Tracer.
func NewCollector() *Collector {
	return &Collector{
		stages:   make(map[string]*StageReport),
		counters: make(map[string]int64),
		hists:    make(map[string]*Histogram),
	}
}

// touch folds a timestamp into the first/last event bounds.
func (c *Collector) touch(now int64) {
	stamp := now + 1
	for {
		first := c.firstNs.Load()
		if first != 0 && first <= stamp {
			break
		}
		if c.firstNs.CompareAndSwap(first, stamp) {
			break
		}
	}
	for {
		last := c.lastNs.Load()
		if last >= stamp {
			break
		}
		if c.lastNs.CompareAndSwap(last, stamp) {
			break
		}
	}
}

func (c *Collector) StageStart(name string) StageTimer {
	return c.startSpan(name, 0, 0, nil)
}

func (c *Collector) StartSpan(name string, attrs ...Attr) Span {
	return c.startSpan(name, 0, 0, attrs)
}

func (c *Collector) startSpan(name string, parent, root uint64, attrs []Attr) *collectorSpan {
	now := Now()
	c.touch(now)
	id := c.nextSpanID.Add(1)
	if root == 0 {
		root = id
	}
	c.mu.Lock()
	if _, ok := c.stages[name]; !ok {
		c.stages[name] = &StageReport{Name: name}
		c.order = append(c.order, name)
	}
	c.mu.Unlock()
	s := &collectorSpan{c: c, id: id, parent: parent, root: root, name: name, startNs: now}
	if len(attrs) > 0 {
		s.attrs = append(s.attrs, attrs...)
	}
	return s
}

// collectorSpan is a live span; End moves it into the Collector's records.
type collectorSpan struct {
	c       *Collector
	id      uint64
	parent  uint64
	root    uint64
	name    string
	startNs int64

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

func (s *collectorSpan) End() {
	now := Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	s.c.touch(now)
	dur := now - s.startNs
	s.c.mu.Lock()
	st := s.c.stages[s.name]
	st.Calls++
	st.WallNs += dur
	if len(s.c.spans) < spanLimit {
		s.c.spans = append(s.c.spans, SpanRecord{
			ID: s.id, Parent: s.parent, Root: s.root,
			Name: s.name, StartNs: s.startNs, DurNs: dur, Attrs: attrs,
		})
	} else {
		s.c.spansDropped++
	}
	s.c.mu.Unlock()
}

func (s *collectorSpan) SetAttr(key, value string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

func (s *collectorSpan) Child(name string, attrs ...Attr) Span {
	return s.c.startSpan(name, s.id, s.root, attrs)
}

func (c *Collector) Count(name string, delta int64) {
	c.touch(Now())
	c.mu.Lock()
	c.counters[name] += delta
	c.mu.Unlock()
}

// Progress is recorded only as a counter high-water mark (the report has no
// per-tick history; progress is a live signal, not an aggregate).
func (c *Collector) Progress(stage string, done, total int64) {
	c.touch(Now())
	c.mu.Lock()
	if cur := c.counters["progress."+stage]; done > cur {
		c.counters["progress."+stage] = done
	}
	c.mu.Unlock()
}

// Observe records one sample into the named histogram, creating it on
// first use. The fast path is a read-locked map lookup plus two atomic
// adds, so hunt workers can observe per-chunk latencies concurrently.
func (c *Collector) Observe(name string, value int64) {
	c.touch(Now())
	c.hmu.RLock()
	h := c.hists[name]
	c.hmu.RUnlock()
	if h == nil {
		c.hmu.Lock()
		h = c.hists[name]
		if h == nil {
			h = &Histogram{}
			c.hists[name] = h
			c.horder = append(c.horder, name)
		}
		c.hmu.Unlock()
	}
	h.Observe(value)
}

// Histogram returns the named histogram, or nil if nothing has been
// observed under that name yet.
func (c *Collector) Histogram(name string) *Histogram {
	c.hmu.RLock()
	defer c.hmu.RUnlock()
	return c.hists[name]
}

// Spans snapshots the completed span records collected so far, in end
// order.
func (c *Collector) Spans() []SpanRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SpanRecord, len(c.spans))
	copy(out, c.spans)
	return out
}

// Report snapshots the aggregates collected so far.
func (c *Collector) Report() Report {
	c.mu.Lock()
	r := Report{Counters: make(map[string]int64, len(c.counters))}
	for _, name := range c.order {
		s := *c.stages[name]
		s.WallMs = float64(s.WallNs) / 1e6
		r.Stages = append(r.Stages, s)
	}
	names := make([]string, 0, len(c.counters))
	for k := range c.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		r.Counters[k] = c.counters[k]
	}
	r.Spans = make([]SpanRecord, len(c.spans))
	copy(r.Spans, c.spans)
	r.SpansDropped = c.spansDropped
	c.mu.Unlock()

	c.hmu.RLock()
	for _, name := range c.horder {
		r.Histograms = append(r.Histograms, c.hists[name].Snapshot(name))
	}
	c.hmu.RUnlock()

	first, last := c.firstNs.Load(), c.lastNs.Load()
	if first != 0 && last > first {
		r.TotalNs = last - first
	}
	return r
}

// WriteJSON writes the report as indented JSON.
func (c *Collector) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(c.Report(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
