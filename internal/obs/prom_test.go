package obs

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestWritePrometheusHistograms asserts Observe samples render as native
// Prometheus histogram metrics: cumulative _bucket series ending in
// le="+Inf", plus _sum and _count, with the _ns name convention mapped to
// _seconds.
func TestWritePrometheusHistograms(t *testing.T) {
	c := NewCollector()
	c.Observe("hunt.chunk_ns", 1000)
	c.Observe("hunt.chunk_ns", 2000)
	c.Observe("hunt.chunk_ns", 1<<20)
	var buf bytes.Buffer
	if err := c.Report().WritePrometheus(&buf, "coldbootd_pipeline"); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	const metric = "coldbootd_pipeline_hunt_chunk_seconds"
	for _, want := range []string{
		"# TYPE " + metric + " histogram",
		metric + `_bucket{le="+Inf"} 3`,
		metric + "_count 3",
		metric + "_sum ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	// Bucket counts must be cumulative and end at the total.
	var prev int64 = -1
	var buckets int
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, metric+"_bucket{") {
			continue
		}
		buckets++
		n, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("bucket counts not cumulative: %q after %d", line, prev)
		}
		prev = n
	}
	if buckets < 2 || prev != 3 {
		t.Fatalf("got %d buckets ending at %d, want >=2 ending at 3", buckets, prev)
	}
	validatePromText(t, text)
}

// validatePromText checks the text-0.0.4 exposition contract: HELP/TYPE
// comments pair with their metric family, label values parse as quoted
// strings, and no series (name+labels) repeats.
func validatePromText(t *testing.T, text string) {
	t.Helper()
	seen := map[string]bool{}
	typed := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Error("blank line in exposition")
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 {
				t.Errorf("malformed comment %q", line)
				continue
			}
			if fields[1] == "TYPE" {
				typed[fields[2]] = fields[3]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("unknown comment form %q", line)
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Errorf("sample without value: %q", line)
			continue
		}
		series, value := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Errorf("unparseable value in %q: %v", line, err)
		}
		if seen[series] {
			t.Errorf("duplicate series %q", series)
		}
		seen[series] = true
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
			if !strings.HasSuffix(series, "}") {
				t.Errorf("unterminated label set in %q", line)
				continue
			}
			for _, pair := range splitLabels(series[i+1 : len(series)-1]) {
				eq := strings.IndexByte(pair, '=')
				if eq < 0 {
					t.Errorf("label without = in %q", line)
					continue
				}
				if _, err := strconv.Unquote(pair[eq+1:]); err != nil {
					t.Errorf("label value does not parse as quoted string in %q: %v", line, err)
				}
			}
		}
		// Every sample must belong to a TYPE-declared family (histogram
		// series hang off the family name via _bucket/_sum/_count).
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); typed[base] == "histogram" {
				family = base
			}
		}
		if typed[family] == "" {
			t.Errorf("sample %q has no TYPE declaration", line)
		}
	}
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func TestWritePrometheusFullReportIsValid(t *testing.T) {
	c := NewCollector()
	c.StageStart(`mine "quoted\"`).End()
	c.Count("hunt.pairs", 7)
	c.Progress("campaign", 3, 8)
	c.Observe("jobs.run_ns", 5_000_000)
	sp := c.StartSpan("attack")
	sp.Child("hunt").End()
	sp.End()
	var buf bytes.Buffer
	if err := c.Report().WritePrometheus(&buf, "coldbootd_pipeline"); err != nil {
		t.Fatal(err)
	}
	validatePromText(t, buf.String())
}
