package obs

import (
	"sync"
	"sync/atomic"
)

// Event is one telemetry event in a Journal. Seq numbers start at 1 and
// are dense; AtNs is the event time on the obs.Now clock. Type selects
// which of the remaining fields are meaningful.
type Event struct {
	Seq  uint64 `json:"seq"`
	AtNs int64  `json:"at_ns"`
	// Type is one of "span_start", "span_end", "span_attr", "count",
	// "progress", "observe".
	Type string `json:"type"`
	// Name is the span, counter, stage, or histogram name.
	Name string `json:"name"`

	// Progress payload.
	Done  int64 `json:"done,omitempty"`
	Total int64 `json:"total,omitempty"`
	// Count payload.
	Delta int64 `json:"delta,omitempty"`
	// Observe payload.
	Value int64 `json:"value,omitempty"`
	// Span payload: WallNs on span_end, Attrs on span_start/span_attr.
	WallNs int64  `json:"wall_ns,omitempty"`
	Span   uint64 `json:"span,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	Attrs  []Attr `json:"attrs,omitempty"`
}

// defaultJournalCap bounds a Journal when NewJournal is given a
// non-positive capacity.
const defaultJournalCap = 4096

// Journal is a bounded ring buffer of recent telemetry events. It
// implements Tracer, so it slots into an obs.Multi alongside a Collector;
// readers poll ReadSince with a cursor and park on Updated between polls.
// When writers outpace a reader the oldest events are overwritten and the
// reader observes a gap (the missed count from ReadSince), never a stall.
type Journal struct {
	mu          sync.Mutex
	ring        []Event       // guarded by mu
	total       uint64        // events ever appended; Seq of the newest event; guarded by mu
	overwritten uint64        // events lost to ring wrap before any read; guarded by mu
	closed      bool          // guarded by mu
	notify      chan struct{} // guarded by mu
	nextSpan    atomic.Uint64
}

// NewJournal returns a Journal retaining up to capacity recent events
// (defaultJournalCap when capacity <= 0).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = defaultJournalCap
	}
	return &Journal{
		ring:   make([]Event, 0, capacity),
		notify: make(chan struct{}),
	}
}

// append stamps and stores one event, waking any parked readers.
func (j *Journal) append(e Event) {
	e.AtNs = Now()
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return
	}
	j.total++
	e.Seq = j.total
	if len(j.ring) < cap(j.ring) {
		j.ring = append(j.ring, e)
	} else {
		j.overwritten++
		j.ring[(j.total-1)%uint64(cap(j.ring))] = e
	}
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// Updated returns a channel that is closed on the next append or Close.
// Fetch it BEFORE calling ReadSince: events landing between a ReadSince
// and a later Updated call would otherwise be missed until the following
// append.
func (j *Journal) Updated() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.notify
}

// ReadSince returns up to max events with Seq > cursor, in order, plus the
// number of events that were overwritten before they could be read (the
// reader's gap). max <= 0 means no limit.
func (j *Journal) ReadSince(cursor uint64, max int) (events []Event, missed uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.total == 0 || cursor >= j.total {
		return nil, 0
	}
	oldest := j.total - uint64(len(j.ring)) + 1
	from := cursor + 1
	if from < oldest {
		missed = oldest - from
		from = oldest
	}
	n := int(j.total - from + 1)
	if max > 0 && n > max {
		n = max
	}
	events = make([]Event, 0, n)
	for i := 0; i < n; i++ {
		seq := from + uint64(i)
		if len(j.ring) < cap(j.ring) {
			events = append(events, j.ring[seq-1])
		} else {
			events = append(events, j.ring[(seq-1)%uint64(cap(j.ring))])
		}
	}
	return events, missed
}

// Close marks the journal complete (the job finished): appends become
// no-ops and parked readers wake. Safe to call more than once.
func (j *Journal) Close() {
	j.mu.Lock()
	if !j.closed {
		j.closed = true
		close(j.notify)
		j.notify = make(chan struct{})
	}
	j.mu.Unlock()
}

// Closed reports whether Close has been called.
func (j *Journal) Closed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.closed
}

// Overwritten returns how many events have been lost to ring wrap over the
// journal's lifetime. A nonzero value means at least one reader gap was
// possible; /metrics exposes the sum across journals so operators can size
// the ring instead of guessing from missing events.
func (j *Journal) Overwritten() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.overwritten
}

// LastSeq returns the sequence number of the newest event (0 when empty).
func (j *Journal) LastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total
}

// Journal implements Tracer by recording each hook as an Event.

func (j *Journal) StageStart(name string) StageTimer { return j.span(name, 0, nil) }

func (j *Journal) StartSpan(name string, attrs ...Attr) Span { return j.span(name, 0, attrs) }

func (j *Journal) span(name string, parent uint64, attrs []Attr) *journalSpan {
	id := j.nextSpan.Add(1)
	j.append(Event{Type: "span_start", Name: name, Span: id, Parent: parent, Attrs: attrs})
	return &journalSpan{j: j, id: id, name: name, startNs: Now()}
}

func (j *Journal) Count(name string, delta int64) {
	j.append(Event{Type: "count", Name: name, Delta: delta})
}

func (j *Journal) Progress(stage string, done, total int64) {
	j.append(Event{Type: "progress", Name: stage, Done: done, Total: total})
}

func (j *Journal) Observe(name string, value int64) {
	j.append(Event{Type: "observe", Name: name, Value: value})
}

type journalSpan struct {
	j       *Journal
	id      uint64
	name    string
	startNs int64
	ended   atomic.Bool
}

func (s *journalSpan) End() {
	if s.ended.Swap(true) {
		return
	}
	s.j.append(Event{Type: "span_end", Name: s.name, Span: s.id, WallNs: Since(s.startNs)})
}

func (s *journalSpan) SetAttr(key, value string) {
	s.j.append(Event{Type: "span_attr", Name: s.name, Span: s.id, Attrs: []Attr{{Key: key, Value: value}}})
}

func (s *journalSpan) Child(name string, attrs ...Attr) Span {
	return s.j.span(name, s.id, attrs)
}
