// Package obs provides the attack pipeline's lightweight observability
// hooks: hierarchical spans, named stage timers, monotonic counters,
// progress reports, and latency histograms. The zero-cost default is the
// Nop tracer, so instrumented code never branches on "is tracing on?"; a
// Collector aggregates events into a JSON report and a span tree (what
// `coldboot -trace out.json` and `-trace-chrome out.json` write), a
// Journal keeps a bounded ring of recent events for live streaming, and
// Funcs adapts ad-hoc callbacks (what `-progress` uses).
//
// The package deliberately knows nothing about the attack: span, stage,
// counter, and histogram names are plain strings chosen by the
// instrumented code, so the same hooks can observe future pipelines
// (sharded serving, remote campaigns) without changing this API.
package obs

import "time"

// Tracer observes a pipeline run. Implementations must be safe for
// concurrent use: the hunt stage calls Count, Progress, and Observe from
// every worker goroutine.
type Tracer interface {
	// StageStart marks entry into a named stage; call End on the returned
	// timer when the stage finishes. Stages may nest and repeat (a campaign
	// runs the hunt stage once per shard). It is the attribute-free,
	// parentless form of StartSpan, kept for light call sites.
	StageStart(name string) StageTimer
	// StartSpan opens a root span: a named, attributed slice of wall time.
	// Child spans hang off the returned Span, forming the causal tree a
	// Collector exports as a Chrome trace. Attrs annotate the span with
	// string key/value pairs (shard index, offset range, decay level).
	StartSpan(name string, attrs ...Attr) Span
	// Count adds delta to the named monotonic counter.
	Count(name string, delta int64)
	// Progress reports that done of total work units have completed in the
	// named stage. Total may be 0 when unknown.
	Progress(stage string, done, total int64)
	// Observe records one sample into the named latency histogram. By
	// convention values are nanoseconds and names end in "_ns" (the
	// Prometheus exporter renders them as native *_seconds histograms).
	Observe(name string, value int64)
}

// StageTimer ends the stage it was started for.
type StageTimer interface{ End() }

// Span is one node of a trace tree: end it exactly once, attach string
// attributes, and open children under it. Every Span is also a StageTimer.
type Span interface {
	StageTimer
	// SetAttr attaches (or overwrites) a string attribute.
	SetAttr(key, value string)
	// Child opens a sub-span parented under this one.
	Child(name string, attrs ...Attr) Span
}

// Attr is one string key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// A is shorthand for constructing an Attr at a span call site.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Nop is the no-op tracer: every hook is a cheap dynamic call that does
// nothing — no branches, no allocations — so hot loops can call it
// unconditionally. It is the default everywhere a Tracer is accepted.
var Nop Tracer = nopTracer{}

type nopTracer struct{}
type nopTimer struct{}
type nopSpan struct{}

func (nopTracer) StageStart(string) StageTimer   { return nopTimer{} }
func (nopTracer) StartSpan(string, ...Attr) Span { return nopSpan{} }
func (nopTracer) Count(string, int64)            {}
func (nopTracer) Progress(string, int64, int64)  {}
func (nopTracer) Observe(string, int64)          {}
func (nopTimer) End()                            {}
func (nopSpan) End()                             {}
func (nopSpan) SetAttr(string, string)           {}
func (nopSpan) Child(string, ...Attr) Span       { return nopSpan{} }

// OrNop returns t, or the Nop tracer when t is nil, so config structs can
// leave their Tracer field unset.
func OrNop(t Tracer) Tracer {
	if t == nil {
		return Nop
	}
	return t
}

// Multi fans every event out to all the given tracers (e.g. a Collector
// for -trace plus a Funcs printer for -progress). Nil entries are skipped.
func Multi(tracers ...Tracer) Tracer {
	var ts []Tracer
	for _, t := range tracers {
		if t != nil && t != Nop {
			ts = append(ts, t)
		}
	}
	switch len(ts) {
	case 0:
		return Nop
	case 1:
		return ts[0]
	}
	return multiTracer(ts)
}

type multiTracer []Tracer

type multiTimer []StageTimer

type multiSpan []Span

func (m multiTracer) StageStart(name string) StageTimer {
	timers := make(multiTimer, len(m))
	for i, t := range m {
		timers[i] = t.StageStart(name)
	}
	return timers
}

func (m multiTracer) StartSpan(name string, attrs ...Attr) Span {
	spans := make(multiSpan, len(m))
	for i, t := range m {
		spans[i] = t.StartSpan(name, attrs...)
	}
	return spans
}

func (m multiTracer) Count(name string, delta int64) {
	for _, t := range m {
		t.Count(name, delta)
	}
}

func (m multiTracer) Progress(stage string, done, total int64) {
	for _, t := range m {
		t.Progress(stage, done, total)
	}
}

func (m multiTracer) Observe(name string, value int64) {
	for _, t := range m {
		t.Observe(name, value)
	}
}

func (m multiTimer) End() {
	for _, t := range m {
		t.End()
	}
}

func (m multiSpan) End() {
	for _, s := range m {
		s.End()
	}
}

func (m multiSpan) SetAttr(key, value string) {
	for _, s := range m {
		s.SetAttr(key, value)
	}
}

func (m multiSpan) Child(name string, attrs ...Attr) Span {
	spans := make(multiSpan, len(m))
	for i, s := range m {
		spans[i] = s.Child(name, attrs...)
	}
	return spans
}

// Funcs adapts plain callbacks to a Tracer; nil fields are no-ops. Useful
// for one-off hooks (progress printers, cancellation triggers in tests).
// Spans map onto the stage callbacks: StartSpan and Child fire
// OnStageStart/OnStageEnd under the span's name, so a Funcs bridge sees
// the span tree as a flat stage stream.
type Funcs struct {
	OnStageStart func(name string)
	OnStageEnd   func(name string, wall time.Duration)
	OnCount      func(name string, delta int64)
	OnProgress   func(stage string, done, total int64)
	OnObserve    func(name string, value int64)
}

func (f *Funcs) StageStart(name string) StageTimer {
	if f.OnStageStart != nil {
		f.OnStageStart(name)
	}
	if f.OnStageEnd == nil {
		return nopTimer{}
	}
	return &funcTimer{f: f, name: name, start: time.Now()}
}

func (f *Funcs) StartSpan(name string, attrs ...Attr) Span {
	if f.OnStageStart == nil && f.OnStageEnd == nil {
		return nopSpan{}
	}
	if f.OnStageStart != nil {
		f.OnStageStart(name)
	}
	return &funcSpan{f: f, name: name, start: time.Now()}
}

func (f *Funcs) Count(name string, delta int64) {
	if f.OnCount != nil {
		f.OnCount(name, delta)
	}
}

func (f *Funcs) Progress(stage string, done, total int64) {
	if f.OnProgress != nil {
		f.OnProgress(stage, done, total)
	}
}

func (f *Funcs) Observe(name string, value int64) {
	if f.OnObserve != nil {
		f.OnObserve(name, value)
	}
}

type funcTimer struct {
	f     *Funcs
	name  string
	start time.Time
}

func (t *funcTimer) End() { t.f.OnStageEnd(t.name, time.Since(t.start)) }

type funcSpan struct {
	f     *Funcs
	name  string
	start time.Time
}

func (s *funcSpan) End() {
	if s.f.OnStageEnd != nil {
		s.f.OnStageEnd(s.name, time.Since(s.start))
	}
}

func (s *funcSpan) SetAttr(string, string) {}

func (s *funcSpan) Child(name string, attrs ...Attr) Span { return s.f.StartSpan(name, attrs...) }
