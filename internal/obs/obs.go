// Package obs provides the attack pipeline's lightweight observability
// hooks: named stage timers, monotonic counters, and progress reports. The
// zero-cost default is the Nop tracer, so instrumented code never branches
// on "is tracing on?"; a Collector aggregates events into a JSON report
// (what `coldboot -trace out.json` writes), and Funcs adapts ad-hoc
// callbacks (what `-progress` uses).
//
// The package deliberately knows nothing about the attack: stage and
// counter names are plain strings chosen by the instrumented code, so the
// same hooks can observe future pipelines (sharded serving, remote
// campaigns) without changing this API.
package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer observes a pipeline run. Implementations must be safe for
// concurrent use: the hunt stage calls Count and Progress from every
// worker goroutine.
type Tracer interface {
	// StageStart marks entry into a named stage; call End on the returned
	// timer when the stage finishes. Stages may nest and repeat (a campaign
	// runs the hunt stage once per shard).
	StageStart(name string) StageTimer
	// Count adds delta to the named monotonic counter.
	Count(name string, delta int64)
	// Progress reports that done of total work units have completed in the
	// named stage. Total may be 0 when unknown.
	Progress(stage string, done, total int64)
}

// StageTimer ends the stage it was started for.
type StageTimer interface{ End() }

// Nop is the no-op tracer: every hook is a cheap dynamic call that does
// nothing. It is the default everywhere a Tracer is accepted.
var Nop Tracer = nopTracer{}

type nopTracer struct{}
type nopTimer struct{}

func (nopTracer) StageStart(string) StageTimer  { return nopTimer{} }
func (nopTracer) Count(string, int64)           {}
func (nopTracer) Progress(string, int64, int64) {}
func (nopTimer) End()                           {}

// OrNop returns t, or the Nop tracer when t is nil, so config structs can
// leave their Tracer field unset.
func OrNop(t Tracer) Tracer {
	if t == nil {
		return Nop
	}
	return t
}

// Multi fans every event out to all the given tracers (e.g. a Collector
// for -trace plus a Funcs printer for -progress). Nil entries are skipped.
func Multi(tracers ...Tracer) Tracer {
	var ts []Tracer
	for _, t := range tracers {
		if t != nil && t != Nop {
			ts = append(ts, t)
		}
	}
	switch len(ts) {
	case 0:
		return Nop
	case 1:
		return ts[0]
	}
	return multiTracer(ts)
}

type multiTracer []Tracer

type multiTimer []StageTimer

func (m multiTracer) StageStart(name string) StageTimer {
	timers := make(multiTimer, len(m))
	for i, t := range m {
		timers[i] = t.StageStart(name)
	}
	return timers
}

func (m multiTracer) Count(name string, delta int64) {
	for _, t := range m {
		t.Count(name, delta)
	}
}

func (m multiTracer) Progress(stage string, done, total int64) {
	for _, t := range m {
		t.Progress(stage, done, total)
	}
}

func (m multiTimer) End() {
	for _, t := range m {
		t.End()
	}
}

// Funcs adapts plain callbacks to a Tracer; nil fields are no-ops. Useful
// for one-off hooks (progress printers, cancellation triggers in tests).
type Funcs struct {
	OnStageStart func(name string)
	OnStageEnd   func(name string, wall time.Duration)
	OnCount      func(name string, delta int64)
	OnProgress   func(stage string, done, total int64)
}

func (f *Funcs) StageStart(name string) StageTimer {
	if f.OnStageStart != nil {
		f.OnStageStart(name)
	}
	if f.OnStageEnd == nil {
		return nopTimer{}
	}
	return &funcTimer{f: f, name: name, start: time.Now()}
}

func (f *Funcs) Count(name string, delta int64) {
	if f.OnCount != nil {
		f.OnCount(name, delta)
	}
}

func (f *Funcs) Progress(stage string, done, total int64) {
	if f.OnProgress != nil {
		f.OnProgress(stage, done, total)
	}
}

type funcTimer struct {
	f     *Funcs
	name  string
	start time.Time
}

func (t *funcTimer) End() { t.f.OnStageEnd(t.name, time.Since(t.start)) }

// StageReport is one stage's aggregate in a Collector report. A stage that
// ran more than once (per-shard hunts) accumulates calls and wall time.
type StageReport struct {
	Name   string  `json:"name"`
	Calls  int     `json:"calls"`
	WallNs int64   `json:"wall_ns"`
	WallMs float64 `json:"wall_ms"`
}

// Report is the Collector's JSON document.
type Report struct {
	// Stages are in first-start order.
	Stages   []StageReport    `json:"stages"`
	Counters map[string]int64 `json:"counters"`
	// TotalNs spans the first StageStart to the last End observed.
	TotalNs int64 `json:"total_ns"`
}

// Collector aggregates pipeline events into a Report. The zero value is
// not usable; call NewCollector.
type Collector struct {
	mu       sync.Mutex
	order    []string
	stages   map[string]*StageReport
	counters map[string]int64
	first    time.Time
	last     time.Time
}

// NewCollector returns an empty Collector ready for use as a Tracer.
func NewCollector() *Collector {
	return &Collector{
		stages:   make(map[string]*StageReport),
		counters: make(map[string]int64),
	}
}

func (c *Collector) StageStart(name string) StageTimer {
	now := time.Now()
	c.mu.Lock()
	if c.first.IsZero() {
		c.first = now
	}
	if _, ok := c.stages[name]; !ok {
		c.stages[name] = &StageReport{Name: name}
		c.order = append(c.order, name)
	}
	c.mu.Unlock()
	return &collectorTimer{c: c, name: name, start: now}
}

type collectorTimer struct {
	c     *Collector
	name  string
	start time.Time
}

func (t *collectorTimer) End() {
	now := time.Now()
	wall := now.Sub(t.start)
	t.c.mu.Lock()
	s := t.c.stages[t.name]
	s.Calls++
	s.WallNs += wall.Nanoseconds()
	if now.After(t.c.last) {
		t.c.last = now
	}
	t.c.mu.Unlock()
}

func (c *Collector) Count(name string, delta int64) {
	c.mu.Lock()
	c.counters[name] += delta
	c.mu.Unlock()
}

// Progress is recorded only as a counter high-water mark (the report has no
// per-tick history; progress is a live signal, not an aggregate).
func (c *Collector) Progress(stage string, done, total int64) {
	c.mu.Lock()
	if cur := c.counters["progress."+stage]; done > cur {
		c.counters["progress."+stage] = done
	}
	c.mu.Unlock()
}

// Report snapshots the aggregates collected so far.
func (c *Collector) Report() Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := Report{Counters: make(map[string]int64, len(c.counters))}
	for _, name := range c.order {
		s := *c.stages[name]
		s.WallMs = float64(s.WallNs) / 1e6
		r.Stages = append(r.Stages, s)
	}
	names := make([]string, 0, len(c.counters))
	for k := range c.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		r.Counters[k] = c.counters[k]
	}
	if !c.first.IsZero() && c.last.After(c.first) {
		r.TotalNs = c.last.Sub(c.first).Nanoseconds()
	}
	return r
}

// WriteJSON writes the report as indented JSON.
func (c *Collector) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(c.Report(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
