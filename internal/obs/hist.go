package obs

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the number of power-of-two buckets in a Histogram: bucket
// i counts samples whose value fits in i bits, i.e. the half-open range
// [2^(i-1), 2^i). Bucket 0 holds exactly the value 0; bucket 63 tops out
// the int64 range.
const histBuckets = 64

// Histogram is a lock-free log-bucketed latency histogram: recording a
// sample is one bits.Len64 plus two atomic adds, cheap enough for
// per-chunk scan loops. Values are clamped at zero; by convention they are
// nanoseconds. The zero value is ready to use.
type Histogram struct {
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.sum.Add(v)
}

// HistogramBucket is one cumulative bucket in a snapshot: Count samples
// were <= UpperBound.
type HistogramBucket struct {
	UpperBound int64 `json:"le"`
	Count      int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time view of a histogram with estimated
// percentiles. Quantiles are interpolated within the winning power-of-two
// bucket, so they carry up to 2x relative error — fine for spotting tail
// latencies, not for billing.
type HistogramSnapshot struct {
	Name    string            `json:"name"`
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	P50     int64             `json:"p50"`
	P90     int64             `json:"p90"`
	P99     int64             `json:"p99"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// bucketBounds returns the half-open value range [lo, hi] covered by
// bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 0
	}
	lo = int64(1) << (i - 1)
	if i >= 63 {
		return lo, int64(^uint64(0) >> 1)
	}
	return lo, int64(1)<<i - 1
}

// Snapshot captures the histogram's current counts, cumulative buckets
// (trimmed to the occupied range), and p50/p90/p99 estimates. Concurrent
// Observe calls may land between bucket reads; the snapshot is internally
// consistent with whatever subset it saw.
func (h *Histogram) Snapshot(name string) HistogramSnapshot {
	var counts [histBuckets]int64
	var total int64
	first, last := -1, -1
	for i := range counts {
		n := h.buckets[i].Load()
		counts[i] = n
		total += n
		if n > 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	s := HistogramSnapshot{Name: name, Count: total, Sum: h.sum.Load()}
	if total == 0 {
		return s
	}
	var cum int64
	for i := first; i <= last; i++ {
		cum += counts[i]
		_, hi := bucketBounds(i)
		s.Buckets = append(s.Buckets, HistogramBucket{UpperBound: hi, Count: cum})
	}
	s.P50 = quantile(&counts, total, 0.50)
	s.P90 = quantile(&counts, total, 0.90)
	s.P99 = quantile(&counts, total, 0.99)
	return s
}

// quantile estimates the q-th quantile by walking the buckets to the
// target rank and interpolating linearly inside the winning bucket.
func quantile(counts *[histBuckets]int64, total int64, q float64) int64 {
	rank := int64(q*float64(total-1)) + 1
	if rank > total {
		rank = total
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		if counts[i] == 0 {
			continue
		}
		if seen+counts[i] < rank {
			seen += counts[i]
			continue
		}
		lo, hi := bucketBounds(i)
		if counts[i] == 1 || hi == lo {
			return hi
		}
		frac := float64(rank-seen-1) / float64(counts[i]-1)
		return lo + int64(frac*float64(hi-lo))
	}
	return 0
}
