package memsim

import (
	"math"
	"testing"

	"coldboot/internal/aes"
	"coldboot/internal/chacha"
	"coldboot/internal/dram"
	"coldboot/internal/engine"
)

func sim(t *testing.T, p Params) *Sim {
	t.Helper()
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func withEngine(p Params, e engine.Spec) Params {
	p.Engine = &e
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Params{}); err == nil {
		t.Error("zero params accepted")
	}
	p := DefaultParams()
	p.Banks = 0
	if _, err := New(p); err == nil {
		t.Error("zero banks accepted")
	}
}

func TestStreamTrafficIsRowHitHeavy(t *testing.T) {
	s := sim(t, DefaultParams())
	stats := s.Run(StreamTraffic(2000, dram.DDR4_2400, 1))
	if stats.RowHitRate < 0.95 {
		t.Errorf("stream row hit rate = %f, want > 0.95", stats.RowHitRate)
	}
	if stats.Utilization < 0.8 {
		t.Errorf("stream utilization = %f, want high", stats.Utilization)
	}
}

func TestRandomTrafficIsRowMissHeavy(t *testing.T) {
	s := sim(t, DefaultParams())
	stats := s.Run(RandomTraffic(2000, dram.DDR4_2400, 16, 4096, 0.3, 1))
	if stats.RowHitRate > 0.10 {
		t.Errorf("random row hit rate = %f, want near 0", stats.RowHitRate)
	}
}

func TestBaselineLatencySane(t *testing.T) {
	// A single isolated row hit should complete in CAS + burst.
	s := sim(t, DefaultParams())
	warm := []Request{{ArriveNs: 0, Bank: 0, Row: 5}, {ArriveNs: 100, Bank: 0, Row: 5}}
	stats := s.Run(warm)
	second := stats.Results[1]
	wantLatency := dram.DDR4_2400.CASLatency + dram.DDR4_2400.BurstTransferNs()
	if math.Abs(second.ReadLatency-wantLatency) > 0.01 {
		t.Errorf("isolated row-hit latency = %f, want %f", second.ReadLatency, wantLatency)
	}
	if !second.RowHit {
		t.Error("second access to same row not a hit")
	}
	// First access pays activate: tRCD more.
	first := stats.Results[0]
	if first.ReadLatency <= second.ReadLatency {
		t.Error("row miss not slower than row hit")
	}
}

func TestNoEngineMeansNoExposure(t *testing.T) {
	s := sim(t, DefaultParams())
	stats := s.Run(StreamTraffic(1000, dram.DDR4_2400, 1))
	if stats.MaxExposed != 0 {
		t.Errorf("plain channel exposed %f ns", stats.MaxExposed)
	}
}

func TestChaCha8ZeroExposureAllTraffic(t *testing.T) {
	// The paper's headline claim, validated constructively on three traffic
	// shapes at command level.
	e := engine.ChaChaEngine(chacha.Rounds8)
	p := withEngine(DefaultParams(), e)
	s := sim(t, p)
	traffics := map[string][]Request{
		"stream": StreamTraffic(3000, dram.DDR4_2400, 1),
		"random": RandomTraffic(3000, dram.DDR4_2400, 16, 4096, 0.5, 2),
		"mixed":  MixedTraffic(3000, dram.DDR4_2400, 0.7, 3),
	}
	for name, reqs := range traffics {
		stats := s.Run(reqs)
		if stats.MaxExposed > 0 {
			t.Errorf("%s: ChaCha8 exposed %f ns", name, stats.MaxExposed)
		}
	}
}

func TestAES128SustainedSaturationExposure(t *testing.T) {
	// A finding beyond the paper's <=18-request burst analysis: with
	// counter injection at the bus clock, AES-128's injection port
	// (4 slots/read, ~17 GB/s) cannot sustain a fully saturated 19.2 GB/s
	// row-hit stream, so exposure oscillates (row-activation bubbles
	// partially drain the backlog) but stays bounded by the read-queue
	// back-pressure. Under realistic (row-miss-rich or sub-peak) traffic
	// the exposure vanishes — consistent with the paper's conclusion that
	// AES is fine except at extreme sustained utilization.
	e := engine.AESEngine(aes.AES128)
	p := withEngine(DefaultParams(), e)
	s := sim(t, p)
	stream := s.Run(StreamTraffic(3000, dram.DDR4_2400, 1))
	if stream.MaxExposed <= 0 {
		t.Error("AES-128 shows no queueing under saturated streaming")
	}
	if stream.MaxExposed > 80 {
		t.Errorf("AES-128 stream exposure = %f ns; back-pressure bound broken", stream.MaxExposed)
	}
	random := s.Run(RandomTraffic(3000, dram.DDR4_2400, 16, 4096, 0.3, 4))
	if random.MaxExposed > 0.01 {
		t.Errorf("AES-128 exposed %f ns under low-utilization random traffic", random.MaxExposed)
	}
	subParams := withEngine(DefaultParams(), e)
	subParams.TREFIns = 0 // isolate engine queueing from refresh bunching
	sub := sim(t, subParams).Run(StreamTraffic(3000, dram.DDR4_2400, 0.8))
	// At 80% intensity the port sustains; only short transient queues
	// remain after row-activation bubbles release bunched arrivals.
	if sub.MaxExposed > 10 {
		t.Errorf("AES-128 max exposure %f ns at 80%% intensity; should be transient-only", sub.MaxExposed)
	}
	if avg := sub.TotalExposed / float64(sub.Requests); avg > 3 {
		t.Errorf("AES-128 avg exposure %f ns at 80%% intensity", avg)
	}
}

func TestChaCha20AlwaysExposed(t *testing.T) {
	e := engine.ChaChaEngine(chacha.Rounds20)
	p := withEngine(DefaultParams(), e)
	s := sim(t, p)
	stats := s.Run(StreamTraffic(500, dram.DDR4_2400, 1))
	// 21.4 ns pipeline vs the 12.5 ns column access: every read waits.
	if stats.MaxExposed < 5 {
		t.Errorf("ChaCha20 exposure = %f ns, want > 5", stats.MaxExposed)
	}
	if stats.TotalExposed/float64(stats.Requests) < 5 {
		t.Error("ChaCha20 exposure should affect essentially every read")
	}
}

func TestChaCha12AlwaysSlightlyExposed(t *testing.T) {
	// Table II: 13.27 ns pipeline > 12.5 ns CAS — a fixed ~0.8 ns exposure
	// on every read even with an idle injection port, matching Figure 6's
	// "ChaCha12 always above the line".
	e := engine.ChaChaEngine(chacha.Rounds12)
	s := sim(t, withEngine(DefaultParams(), e))
	stats := s.Run(RandomTraffic(1000, dram.DDR4_2400, 16, 4096, 0.3, 9))
	perReq := stats.TotalExposed / float64(stats.Requests)
	if perReq < 0.5 || perReq > 1.5 {
		t.Errorf("ChaCha12 per-request exposure = %f ns, want ~0.77", perReq)
	}
}

func TestEngineExposureOrdering(t *testing.T) {
	// Cross-validation against the analytic Figure 6: exposure ordering
	// ChaCha8 (0) <= AES-128 < AES-256 < ChaCha12 < ChaCha20 on streams.
	traffic := StreamTraffic(2000, dram.DDR4_2400, 1)
	exposure := func(e engine.Spec) float64 {
		s := sim(t, withEngine(DefaultParams(), e))
		return s.Run(traffic).MaxExposed
	}
	c8 := exposure(engine.ChaChaEngine(chacha.Rounds8))
	a128 := exposure(engine.AESEngine(aes.AES128))
	a256 := exposure(engine.AESEngine(aes.AES256))
	c12 := exposure(engine.ChaChaEngine(chacha.Rounds12))
	c20 := exposure(engine.ChaChaEngine(chacha.Rounds20))
	// ChaCha8 is the only zero-exposure engine; ChaCha12/20 pay their fixed
	// pipeline excess; the AES engines pay sustained injection-port
	// queueing, which under saturation dwarfs everything else.
	if !(c8 == 0 && c12 > 0 && c12 < c20 && a128 > c20 && a256 >= a128) {
		t.Errorf("exposure ordering violated: c8=%f c12=%f c20=%f a128=%f a256=%f",
			c8, c12, c20, a128, a256)
	}
}

func TestAvgLatencyPenaltyTiny(t *testing.T) {
	// The performance claim in end-to-end terms at a sustainable intensity
	// (80% of peak): average read latency with ChaCha8 exactly equals the
	// plain channel (zero exposed latency); AES-128 pays a visible but
	// bounded transient-queueing cost.
	// Refresh disabled: this test isolates the ENGINE cost; refresh adds
	// identical stalls to every configuration (see TestRefreshStalls...).
	base := DefaultParams()
	base.TREFIns = 0
	traffic := StreamTraffic(3000, dram.DDR4_2400, 0.8)
	plain := sim(t, base).Run(traffic)
	c8 := sim(t, withEngine(base, engine.ChaChaEngine(chacha.Rounds8))).Run(traffic)
	a128 := sim(t, withEngine(base, engine.AESEngine(aes.AES128))).Run(traffic)
	if c8.AvgReadLatency != plain.AvgReadLatency {
		t.Errorf("ChaCha8 avg latency %f != plain %f", c8.AvgReadLatency, plain.AvgReadLatency)
	}
	if a128.AvgReadLatency > plain.AvgReadLatency*1.15 {
		t.Errorf("AES-128 avg latency %f exceeds plain %f by >15%%", a128.AvgReadLatency, plain.AvgReadLatency)
	}
}

func TestBankParallelismImprovesThroughput(t *testing.T) {
	// Random traffic across many banks must finish faster than the same
	// requests forced into one bank (activation serialization).
	reqs := RandomTraffic(500, dram.DDR4_2400, 16, 1024, 1.0, 5)
	multi := sim(t, DefaultParams()).Run(reqs)
	oneBank := make([]Request, len(reqs))
	copy(oneBank, reqs)
	for i := range oneBank {
		oneBank[i].Bank = 0
	}
	single := sim(t, DefaultParams()).Run(oneBank)
	if single.EndNs <= multi.EndNs {
		t.Errorf("one-bank run (%f ns) not slower than 16-bank run (%f ns)", single.EndNs, multi.EndNs)
	}
}

func TestBankIndexNormalization(t *testing.T) {
	s := sim(t, DefaultParams())
	stats := s.Run([]Request{{ArriveNs: 0, Bank: -3, Row: 1}, {ArriveNs: 10, Bank: 99, Row: 1}})
	if stats.Requests != 2 {
		t.Error("requests dropped")
	}
}

func TestEmptyRun(t *testing.T) {
	s := sim(t, DefaultParams())
	stats := s.Run(nil)
	if stats.Requests != 0 || stats.AvgReadLatency != 0 {
		t.Error("empty run produced nonzero stats")
	}
}

func BenchmarkStreamSimulation(b *testing.B) {
	p := withEngine(DefaultParams(), engine.ChaChaEngine(chacha.Rounds8))
	s, _ := New(p)
	traffic := StreamTraffic(10000, dram.DDR4_2400, 1)
	b.SetBytes(int64(len(traffic) * 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(traffic)
	}
}

func TestWritesNeverStallTheCPU(t *testing.T) {
	// §IV-B: "Delays on memory writes are tolerable as the CPU can proceed
	// with other tasks while stores are being performed" — even the
	// slowest engine causes zero CPU-visible write latency, because the
	// keystream is generated while the store sits in the write queue.
	e := engine.ChaChaEngine(chacha.Rounds20)
	s := sim(t, withEngine(DefaultParams(), e))
	reqs := StreamTraffic(1000, dram.DDR4_2400, 1)
	for i := range reqs {
		reqs[i].Write = true
	}
	stats := s.Run(reqs)
	if stats.MaxExposed != 0 {
		t.Errorf("writes exposed %f ns", stats.MaxExposed)
	}
	if stats.AvgReadLatency != 0 {
		t.Errorf("writes show CPU latency %f ns", stats.AvgReadLatency)
	}
}

func TestMixedReadWriteOnlyReadsExposed(t *testing.T) {
	e := engine.ChaChaEngine(chacha.Rounds20)
	s := sim(t, withEngine(DefaultParams(), e))
	reqs := StreamTraffic(1000, dram.DDR4_2400, 1)
	for i := range reqs {
		reqs[i].Write = i%2 == 0
	}
	stats := s.Run(reqs)
	for _, r := range stats.Results {
		if r.Write && r.ExposedNs != 0 {
			t.Fatal("a write was exposed")
		}
	}
	if stats.MaxExposed <= 0 {
		t.Error("reads in the mix should still be exposed under ChaCha20")
	}
}

func TestRefreshStallsCostBandwidth(t *testing.T) {
	// JEDEC refresh overhead: tRFC/tREFI ~ 4.5% of time is unusable; a
	// saturated stream achieves measurably lower utilization with refresh
	// enabled, and ChaCha8 still exposes nothing across refresh windows.
	long := StreamTraffic(30000, dram.DDR4_2400, 1) // ~100 us of traffic
	p := DefaultParams()
	withRefresh := sim(t, p).Run(long)
	p.TREFIns = 0
	noRefresh := sim(t, p).Run(long)
	if withRefresh.EndNs <= noRefresh.EndNs {
		t.Error("refresh added no time")
	}
	slowdown := withRefresh.EndNs/noRefresh.EndNs - 1
	if slowdown < 0.02 || slowdown > 0.10 {
		t.Errorf("refresh slowdown %.3f; expected ~4.5%%", slowdown)
	}
	pe := DefaultParams()
	e := engine.ChaChaEngine(chacha.Rounds8)
	pe.Engine = &e
	enc := sim(t, pe).Run(long)
	if enc.MaxExposed > 0 {
		t.Errorf("ChaCha8 exposed %f ns across refresh windows", enc.MaxExposed)
	}
}
