// Package memsim is a command-level DDR4 read-path simulator: per-bank row
// state machines, JEDEC inter-command timing constraints, a shared command
// bus and data bus, and an optional cipher engine attached to the read path
// exactly as Section IV proposes (keystream generation launched at CAS
// issue, overlapped with the column access).
//
// Where internal/engine answers Figure 6 analytically for idealized
// back-to-back bursts, memsim answers it constructively for arbitrary
// generated traffic: sequential streams (row-buffer-hit heavy, the paper's
// high-utilization regime), random access (row-miss dominated), and mixes.
// The headline cross-validation — ChaCha8 exposes zero latency under every
// traffic pattern while slower ciphers do not — is asserted by the tests.
package memsim

import (
	"fmt"
	//lint:ignore noweakrand seeded memory-content simulation, not keystream material
	"math/rand"

	"coldboot/internal/dram"
	"coldboot/internal/engine"
)

// Params configures the simulated channel.
type Params struct {
	Timing dram.Timing
	Banks  int
	// Row timing in nanoseconds (typical DDR4-2400 values by default).
	TRCD float64 // activate to CAS
	TRP  float64 // precharge
	TRAS float64 // activate to precharge
	// TREFIns and TRFCns model periodic all-bank refresh: every TREFIns
	// the channel stalls for TRFCns (JEDEC: ~7.8 us / ~350 ns for 8 Gb
	// parts). Zero disables refresh.
	TREFIns float64
	TRFCns  float64
	// MaxOutstanding bounds in-flight reads (the controller's read queue):
	// a new CAS cannot issue until the (i-MaxOutstanding)-th read has
	// delivered plaintext. This back-pressure is what keeps cipher-engine
	// queueing bounded in real systems. Default engine.MaxBackToBackCAS.
	MaxOutstanding int
	// Engine optionally attaches a cipher engine to the read path
	// (nil = plain scrambler/no encryption, zero added latency).
	Engine *engine.Spec
}

// DefaultParams returns a DDR4-2400 channel with 16 banks.
func DefaultParams() Params {
	return Params{
		Timing:         dram.DDR4_2400,
		Banks:          16,
		TRCD:           14.16, // 17 clocks @ 1.2 GHz
		TRP:            14.16,
		TRAS:           32,
		TREFIns:        7800,
		TRFCns:         350,
		MaxOutstanding: engine.MaxBackToBackCAS,
	}
}

// Request is one 64-byte access.
type Request struct {
	ArriveNs float64
	Bank     int
	Row      int
	// Write marks a store. Writes are posted: the CPU does not wait for
	// them, and their keystream can be generated while the store sits in
	// the write queue — the paper's "delays on memory writes are
	// tolerable" (§IV-B). A write's keystream gating can delay its BUS
	// slot (hurting utilization under saturation) but never the CPU.
	Write bool
}

// RequestResult reports one read's simulated timeline.
type RequestResult struct {
	Request
	CASIssueNs float64
	DataEndNs  float64 // last beat of the burst on the data bus
	KeyReadyNs float64 // keystream fully generated (== data start when no engine)
	CompleteNs float64 // when decrypted plaintext is fully delivered
	RowHit     bool
	// ExposedNs is how long decryption stalls the read beyond the DRAM
	// access itself: max(0, keystream-ready - data-start), the paper's
	// Figure 6 criterion (keystream must be ready when the first beat
	// lands for the XOR to stream with the transfer).
	ExposedNs   float64
	ReadLatency float64 // CompleteNs - ArriveNs
}

// Stats aggregates a simulation run.
type Stats struct {
	Requests       int
	RowHitRate     float64
	AvgReadLatency float64 // arrival to plaintext, ns
	MaxExposed     float64 // worst keystream wait beyond the data itself
	TotalExposed   float64
	Utilization    float64 // achieved data-bus utilization
	Refreshes      int     // refresh windows elapsed during the run
	EndNs          float64
	Results        []RequestResult
}

type bankState struct {
	openRow int
	hasRow  bool
	readyNs float64 // earliest next ACT/CAS to this bank
	actNs   float64 // last activate time (for tRAS)
}

// Sim is a single-channel simulator.
type Sim struct {
	p Params
}

// New validates the parameters and builds a simulator.
func New(p Params) (*Sim, error) {
	if p.Banks < 1 {
		return nil, fmt.Errorf("memsim: need at least one bank")
	}
	if p.Timing.BusMHz <= 0 {
		return nil, fmt.Errorf("memsim: timing not set")
	}
	if p.MaxOutstanding <= 0 {
		p.MaxOutstanding = engine.MaxBackToBackCAS
	}
	return &Sim{p: p}, nil
}

// Run simulates the requests (which must be sorted by arrival time) and
// returns the aggregate statistics.
func (s *Sim) Run(reqs []Request) Stats {
	t := s.p.Timing
	tck := t.BusClockNs()
	burst := t.BurstTransferNs()
	banks := make([]bankState, s.p.Banks)
	var cmdBusFree, dataBusFree, injFree float64

	var injTime, finalStage float64
	if s.p.Engine != nil {
		injTime = float64(s.p.Engine.CountersPer64B)*tck + s.p.Engine.CycleNs()
		finalStage = s.p.Engine.MaxPipelineDelayNs() - injTime
		if finalStage < 0 {
			finalStage = 0
		}
	}

	stats := Stats{Results: make([]RequestResult, 0, len(reqs))}
	hits := 0
	completes := make([]float64, 0, len(reqs))
	nextRefresh := s.p.TREFIns
	for idx, r := range reqs {
		_ = idx
		if r.Bank < 0 || r.Bank >= s.p.Banks {
			r.Bank = ((r.Bank % s.p.Banks) + s.p.Banks) % s.p.Banks
		}
		b := &banks[r.Bank]
		res := RequestResult{Request: r}

		start := maxf(r.ArriveNs, b.readyNs)
		// Closed-loop back-pressure: the read queue holds at most
		// MaxOutstanding in-flight requests.
		if w := len(completes) - s.p.MaxOutstanding; w >= 0 {
			start = maxf(start, completes[w])
		}
		// Periodic all-bank refresh stalls the whole channel for tRFC.
		if s.p.TREFIns > 0 {
			for start >= nextRefresh {
				stall := nextRefresh + s.p.TRFCns
				for i := range banks {
					if banks[i].readyNs < stall {
						banks[i].readyNs = stall
					}
				}
				if cmdBusFree < stall {
					cmdBusFree = stall
				}
				if start < stall {
					start = stall
				}
				nextRefresh += s.p.TREFIns
			}
			stats.Refreshes = int((start / s.p.TREFIns)) // approximation for reporting
		}
		if b.hasRow && b.openRow == r.Row {
			res.RowHit = true
			hits++
		} else {
			// Row miss: precharge (respecting tRAS) then activate.
			if b.hasRow {
				prechargeAt := maxf(start, b.actNs+s.p.TRAS)
				start = prechargeAt + s.p.TRP
			}
			// Activate occupies a command-bus slot.
			actAt := maxf(start, cmdBusFree)
			cmdBusFree = actAt + tck
			b.actNs = actAt
			b.hasRow = true
			b.openRow = r.Row
			start = actAt + s.p.TRCD
		}

		// CAS needs a command slot and a data-bus reservation CL later.
		cas := maxf(start, cmdBusFree)
		if cas+t.CASLatency < dataBusFree {
			cas = dataBusFree - t.CASLatency
		}
		cmdBusFree = cas + tck
		dataStart := cas + t.CASLatency
		dataBusFree = dataStart + burst
		b.readyNs = cas + burst // next CAS to the same bank after tCCD-ish gap

		res.CASIssueNs = cas
		res.DataEndNs = dataStart + burst
		res.KeyReadyNs = dataStart

		// Cipher engine: for reads, counters inject from CAS issue onward;
		// for writes, injection can begin at ARRIVAL (the store waits in
		// the write queue with its address known long before the bus slot).
		if s.p.Engine != nil {
			from := cas
			if r.Write {
				from = r.ArriveNs
			}
			injStart := maxf(from, injFree)
			queued := injFree > from
			injFree = injStart + injTime
			res.KeyReadyNs = injStart + injTime + finalStage
			if queued {
				res.KeyReadyNs += tck // synchronizer penalty, as in engine
			}
		}
		if r.Write {
			// A posted write never stalls the CPU; if its keystream is not
			// ready by the data slot, the slot slips (bandwidth cost only).
			res.ExposedNs = 0
			res.CompleteNs = maxf(res.DataEndNs, res.KeyReadyNs+burst)
			res.ReadLatency = 0
		} else {
			// Decryption streams with the transfer once the keystream is
			// ready: plaintext completes one burst after max(data start,
			// key ready).
			res.ExposedNs = maxf(0, res.KeyReadyNs-dataStart)
			res.CompleteNs = maxf(dataStart, res.KeyReadyNs) + burst
			res.ReadLatency = res.CompleteNs - r.ArriveNs
		}

		completes = append(completes, res.CompleteNs)
		stats.Results = append(stats.Results, res)
		stats.AvgReadLatency += res.ReadLatency
		stats.TotalExposed += res.ExposedNs
		if res.ExposedNs > stats.MaxExposed {
			stats.MaxExposed = res.ExposedNs
		}
		if res.CompleteNs > stats.EndNs {
			stats.EndNs = res.CompleteNs
		}
	}
	stats.Requests = len(reqs)
	if len(reqs) > 0 {
		stats.AvgReadLatency /= float64(len(reqs))
		// (writes contribute zero to AvgReadLatency by construction)
		stats.RowHitRate = float64(hits) / float64(len(reqs))
		stats.Utilization = float64(len(reqs)) * burst / stats.EndNs
	}
	return stats
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// --- Traffic generators -----------------------------------------------------

// StreamTraffic generates n sequential reads walking rows: every access
// after a row activation is a row-buffer hit. intensity in (0, 1] scales
// the arrival rate relative to the data bus's peak (1.0 = back-to-back,
// the paper's maximum-utilization regime).
func StreamTraffic(n int, t dram.Timing, intensity float64) []Request {
	if intensity <= 0 || intensity > 1 {
		intensity = 1
	}
	reqs := make([]Request, n)
	gap := t.BurstTransferNs() / intensity
	colsPerRow := 64 // 4 KB rows / 64 B
	for i := range reqs {
		reqs[i] = Request{
			ArriveNs: float64(i) * gap,
			Bank:     (i / colsPerRow) % 4, // stream crosses banks slowly
			Row:      i / colsPerRow,
		}
	}
	return reqs
}

// RandomTraffic generates n uniformly random reads (row-miss dominated),
// with exponential-ish inter-arrival gaps scaled by intensity in (0, 1].
func RandomTraffic(n int, t dram.Timing, banks, rows int, intensity float64, seed int64) []Request {
	if intensity <= 0 {
		intensity = 0.1
	}
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, n)
	now := 0.0
	meanGap := t.BurstTransferNs() / intensity
	for i := range reqs {
		now += rng.ExpFloat64() * meanGap
		reqs[i] = Request{ArriveNs: now, Bank: rng.Intn(banks), Row: rng.Intn(rows)}
	}
	return reqs
}

// MixedTraffic interleaves streaming and random phases with the given
// stream fraction, modeling a realistic workload blend.
func MixedTraffic(n int, t dram.Timing, streamFrac float64, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, n)
	now := 0.0
	burst := t.BurstTransferNs()
	row, col := 0, 0
	for i := range reqs {
		if rng.Float64() < streamFrac {
			col++
			if col == 64 {
				col = 0
				row++
			}
			now += burst
			reqs[i] = Request{ArriveNs: now, Bank: row % 4, Row: row}
		} else {
			now += burst * (1 + rng.ExpFloat64()*3)
			reqs[i] = Request{ArriveNs: now, Bank: rng.Intn(16), Row: 1000 + rng.Intn(1000)}
		}
	}
	return reqs
}
