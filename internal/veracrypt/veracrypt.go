// Package veracrypt implements a TrueCrypt/VeraCrypt-style encrypted
// volume: XTS-AES-256 data encryption with a PBKDF2-HMAC-SHA512-derived
// header key protecting the master keys. It reproduces the property the
// paper's attack exploits: MOUNTING a volume expands the two 256-bit XTS
// master keys into two adjacent 240-byte round-key schedules that stay
// resident in DRAM until the volume is unmounted or the machine is cleanly
// shut down — even when the original password and header key are long gone.
package veracrypt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"coldboot/internal/aes"
	"coldboot/internal/sha512"
)

// Sizes and construction constants.
const (
	SectorSize   = 512
	SaltSize     = 64
	MasterKeyLen = 64 // XTS-AES-256: two 256-bit keys
	headerMagic  = "CBVC"
	// KDFIterations is the PBKDF2 iteration count. Real VeraCrypt uses
	// 500000; the simulation default keeps tests fast while exercising the
	// same code path.
	KDFIterations = 2000
	// headerSectors is where data sectors start: sector 0 holds the outer
	// volume header, sector 1 the hidden-volume header slot (filled with
	// indistinguishable random noise when no hidden volume exists — the
	// deniability property).
	headerSectors = 2
	// hiddenHeaderSector is the hidden header slot.
	hiddenHeaderSector = 1
	// SuperblockMagic marks a formatted volume's first data sector, giving
	// an attacker (and the tests) a plaintext-recognizable target.
	SuperblockMagic = "CBFS"
)

// Volume is the at-rest encrypted container ("the disk").
type Volume struct {
	salt [SaltSize]byte
	disk []byte // sectors 0-1: header + hidden slot; sectors 2..: data
}

// MemWriter is the simulated RAM interface the mounted volume keeps its key
// schedules in. machine.Machine satisfies it.
type MemWriter interface {
	Write(phys uint64, data []byte) error
}

// Create builds a new encrypted volume of dataBytes capacity (rounded up to
// whole sectors), protected by password. The master keys are drawn from
// keyMaterial (64 bytes), letting tests and simulations fix them; pass nil
// to derive them from the password and salt (still unique per volume).
func Create(password []byte, dataBytes int, salt []byte, keyMaterial []byte) (*Volume, error) {
	if len(salt) != SaltSize {
		return nil, fmt.Errorf("veracrypt: salt must be %d bytes", SaltSize)
	}
	sectors := (dataBytes + SectorSize - 1) / SectorSize
	if sectors < 1 {
		return nil, fmt.Errorf("veracrypt: volume too small")
	}
	v := &Volume{disk: make([]byte, (headerSectors+sectors)*SectorSize)}
	copy(v.salt[:], salt)

	var master []byte
	if keyMaterial != nil {
		if len(keyMaterial) != MasterKeyLen {
			return nil, fmt.Errorf("veracrypt: key material must be %d bytes", MasterKeyLen)
		}
		master = append([]byte{}, keyMaterial...)
	} else {
		// Derive unpredictable master keys from password+salt+domain tag.
		master = sha512.PBKDF2(password, append([]byte("master"), salt...), KDFIterations, MasterKeyLen)
	}

	if err := v.writeHeader(password, master); err != nil {
		return nil, err
	}
	v.fillHiddenSlotWithNoise(master)
	if err := v.format(master, 0, sectors); err != nil {
		return nil, err
	}
	return v, nil
}

// CreateHidden builds an outer volume that conceals a hidden volume in the
// tail of its data region, TrueCrypt-style: the hidden header occupies the
// noise slot (indistinguishable from the random filler every plain volume
// carries), and only the hidden password reveals that the region exists.
// hiddenBytes must leave at least one sector for the outer volume.
func CreateHidden(outerPassword, hiddenPassword []byte, dataBytes, hiddenBytes int, salt []byte) (*Volume, error) {
	v, err := Create(outerPassword, dataBytes, salt, nil)
	if err != nil {
		return nil, err
	}
	sectors := v.DataSectors()
	hiddenSectors := (hiddenBytes + SectorSize - 1) / SectorSize
	if hiddenSectors < 1 || hiddenSectors >= sectors {
		return nil, fmt.Errorf("veracrypt: hidden volume must fit inside the outer data region")
	}
	start := uint64(sectors - hiddenSectors)
	hiddenMaster := sha512.PBKDF2(hiddenPassword, append([]byte("hidden-master"), salt...), KDFIterations, MasterKeyLen)
	if err := v.writeHeaderAt(hiddenHeaderSector, hiddenPassword, hiddenMaster, start, uint64(hiddenSectors)); err != nil {
		return nil, err
	}
	if err := v.format(hiddenMaster, start, hiddenSectors); err != nil {
		return nil, err
	}
	return v, nil
}

// format writes an encrypted superblock at the start of a data region.
func (v *Volume) format(master []byte, start uint64, sectors int) error {
	x, err := aes.NewXTS(master)
	if err != nil {
		return err
	}
	super := make([]byte, SectorSize)
	copy(super, SuperblockMagic)
	binary.LittleEndian.PutUint64(super[8:], uint64(sectors))
	abs := headerSectors + int(start)
	x.EncryptSector(v.disk[abs*SectorSize:(abs+1)*SectorSize], super, uint64(abs))
	return nil
}

// fillHiddenSlotWithNoise writes deterministic pseudo-random filler into
// the hidden-header slot so that volumes with and without hidden volumes
// are indistinguishable.
func (v *Volume) fillHiddenSlotWithNoise(master []byte) {
	noise := sha512.PBKDF2(master, append([]byte("slot-noise"), v.salt[:]...), 1, SectorSize)
	copy(v.disk[hiddenHeaderSector*SectorSize:(hiddenHeaderSector+1)*SectorSize], noise)
}

// headerPlain lays out a decrypted header sector.
//
//	[0:4]    magic
//	[4:6]    version
//	[6:10]   CRC32 of master keys
//	[16:80]  master keys
//	[80:88]  region start (data-sector index)
//	[88:96]  region length in sectors (0 = to the end of the volume)
func headerPlain(master []byte, start, length uint64) []byte {
	h := make([]byte, SectorSize-SaltSize)
	copy(h, headerMagic)
	h[4], h[5] = 1, 0
	binary.LittleEndian.PutUint32(h[6:], crc32.ChecksumIEEE(master))
	copy(h[16:], master)
	binary.LittleEndian.PutUint64(h[80:], start)
	binary.LittleEndian.PutUint64(h[88:], length)
	return h
}

func (v *Volume) writeHeader(password, master []byte) error {
	return v.writeHeaderAt(0, password, master, 0, 0)
}

// writeHeaderAt writes an encrypted header into header slot `slot`
// (0 = outer, hiddenHeaderSector = hidden), describing a data region.
func (v *Volume) writeHeaderAt(slot int, password, master []byte, start, length uint64) error {
	hk := sha512.PBKDF2(password, v.salt[:], KDFIterations, MasterKeyLen)
	x, err := aes.NewXTS(hk)
	if err != nil {
		return err
	}
	plain := headerPlain(master, start, length)
	enc := make([]byte, len(plain))
	x.EncryptSector(enc, plain, uint64(slot))
	base := slot * SectorSize
	copy(v.disk[base:base+SaltSize], v.salt[:])
	copy(v.disk[base+SaltSize:base+SectorSize], enc)
	return nil
}

// openHeader decrypts and validates the outer header with a password,
// returning the master keys.
func (v *Volume) openHeader(password []byte) ([]byte, error) {
	master, _, _, err := v.openHeaderAt(0, password)
	return master, err
}

// openHeaderAt decrypts and validates the header in the given slot,
// returning the master keys and the region it maps.
func (v *Volume) openHeaderAt(slot int, password []byte) (master []byte, start, length uint64, err error) {
	hk := sha512.PBKDF2(password, v.salt[:], KDFIterations, MasterKeyLen)
	x, err := aes.NewXTS(hk)
	if err != nil {
		return nil, 0, 0, err
	}
	base := slot * SectorSize
	plain := make([]byte, SectorSize-SaltSize)
	x.DecryptSector(plain, v.disk[base+SaltSize:base+SectorSize], uint64(slot))
	if string(plain[:4]) != headerMagic {
		return nil, 0, 0, fmt.Errorf("veracrypt: wrong password or corrupted header")
	}
	master = append([]byte{}, plain[16:16+MasterKeyLen]...)
	if crc32.ChecksumIEEE(master) != binary.LittleEndian.Uint32(plain[6:]) {
		return nil, 0, 0, fmt.Errorf("veracrypt: header checksum mismatch")
	}
	return master, binary.LittleEndian.Uint64(plain[80:]), binary.LittleEndian.Uint64(plain[88:]), nil
}

// DataSectors returns the number of data sectors.
func (v *Volume) DataSectors() int { return len(v.disk)/SectorSize - headerSectors }

// Mounted is an unlocked volume (outer or hidden) whose key schedules live
// in simulated RAM. base/limit delimit the data region the mount maps.
type Mounted struct {
	vol      *Volume
	xts      *aes.XTS
	mem      MemWriter
	keysAddr uint64
	open     bool
	base     int // first data-sector index of the region
	limit    int // region length in sectors
}

// SchedulesBytes is the size of the in-memory key material a mount leaves
// in DRAM: two full AES-256 round-key schedules, adjacent.
const SchedulesBytes = 2 * 240

// Mount unlocks the volume with password and writes the expanded round-key
// schedules to simulated memory at keysAddr — exactly the footprint a real
// XTS disk-encryption driver leaves, and exactly what the cold boot attack
// goes hunting for.
func (v *Volume) Mount(password []byte, mem MemWriter, keysAddr uint64) (*Mounted, error) {
	master, err := v.openHeader(password)
	if err != nil {
		return nil, err
	}
	return v.mountWithMaster(master, mem, keysAddr, 0, v.DataSectors())
}

// MountHidden unlocks the hidden volume concealed in the noise slot. On a
// volume with no hidden part (or a wrong password) it fails exactly the
// way a wrong outer password does — deniability.
func (v *Volume) MountHidden(password []byte, mem MemWriter, keysAddr uint64) (*Mounted, error) {
	master, start, length, err := v.openHeaderAt(hiddenHeaderSector, password)
	if err != nil {
		return nil, err
	}
	if int(start) >= v.DataSectors() || length == 0 || int(start)+int(length) > v.DataSectors() {
		return nil, fmt.Errorf("veracrypt: hidden header maps an invalid region")
	}
	return v.mountWithMaster(master, mem, keysAddr, int(start), int(length))
}

func (v *Volume) mountWithMaster(master []byte, mem MemWriter, keysAddr uint64, base, limit int) (*Mounted, error) {
	x, err := aes.NewXTS(master)
	if err != nil {
		return nil, err
	}
	m := &Mounted{vol: v, xts: x, mem: mem, keysAddr: keysAddr, open: true, base: base, limit: limit}
	if mem != nil {
		sched := make([]byte, 0, SchedulesBytes)
		sched = append(sched, aes.WordsToBytes(x.DataCipher().Schedule())...)
		sched = append(sched, aes.WordsToBytes(x.TweakCipher().Schedule())...)
		if err := mem.Write(keysAddr, sched); err != nil {
			return nil, fmt.Errorf("veracrypt: writing key schedules to memory: %w", err)
		}
	}
	return m, nil
}

// MountWithRecoveredKeys unlocks a volume directly with candidate master
// keys (e.g. recovered by a cold boot attack), bypassing the password
// entirely. Every ordered pair of distinct candidates (and each candidate
// doubled) is tried against EVERY possible region start — which is how a
// cold boot attack also defeats hidden-volume deniability: the hidden
// region's superblock identifies itself to whoever holds its master keys,
// regardless of any password.
func (v *Volume) MountWithRecoveredKeys(candidates [][]byte, mem MemWriter, keysAddr uint64) (*Mounted, error) {
	var halves [][]byte
	for _, c := range candidates {
		switch len(c) {
		case 32:
			halves = append(halves, c)
		case 64:
			halves = append(halves, c[:32], c[32:])
		}
	}
	total := v.DataSectors()
	for _, k1 := range halves {
		for _, k2 := range halves {
			master := append(append([]byte{}, k1...), k2...)
			x, err := aes.NewXTS(master)
			if err != nil {
				continue
			}
			probe := make([]byte, SectorSize)
			for start := 0; start < total; start++ {
				abs := headerSectors + start
				x.DecryptSector(probe, v.disk[abs*SectorSize:(abs+1)*SectorSize], uint64(abs))
				if string(probe[:4]) != SuperblockMagic {
					continue
				}
				length := int(binary.LittleEndian.Uint64(probe[8:]))
				if length < 1 || start+length > total {
					continue
				}
				return v.mountWithMaster(master, mem, keysAddr, start, length)
			}
		}
	}
	return nil, fmt.Errorf("veracrypt: no candidate key pair unlocks the volume")
}

// ReadSector decrypts region sector n (0-based within the mounted region).
func (m *Mounted) ReadSector(n int, dst []byte) error {
	if err := m.checkSector(n, dst); err != nil {
		return err
	}
	abs := headerSectors + m.base + n
	m.xts.DecryptSector(dst, m.vol.disk[abs*SectorSize:(abs+1)*SectorSize], uint64(abs))
	return nil
}

// WriteSector encrypts and stores region sector n (0-based within the
// mounted region).
func (m *Mounted) WriteSector(n int, src []byte) error {
	if err := m.checkSector(n, src); err != nil {
		return err
	}
	abs := headerSectors + m.base + n
	m.xts.EncryptSector(m.vol.disk[abs*SectorSize:(abs+1)*SectorSize], src, uint64(abs))
	return nil
}

// Sectors returns the mounted region's length.
func (m *Mounted) Sectors() int { return m.limit }

func (m *Mounted) checkSector(n int, buf []byte) error {
	if !m.open {
		return fmt.Errorf("veracrypt: volume not mounted")
	}
	if n < 0 || n >= m.limit {
		return fmt.Errorf("veracrypt: sector %d out of range", n)
	}
	if len(buf) != SectorSize {
		return fmt.Errorf("veracrypt: sector buffer must be %d bytes", SectorSize)
	}
	return nil
}

// Superblock reads and validates the volume superblock, returning the
// sector count it records.
func (m *Mounted) Superblock() (int, error) {
	buf := make([]byte, SectorSize)
	if err := m.ReadSector(0, buf); err != nil {
		return 0, err
	}
	if string(buf[:4]) != SuperblockMagic {
		return 0, fmt.Errorf("veracrypt: bad superblock")
	}
	return int(binary.LittleEndian.Uint64(buf[8:])), nil
}

// MasterKeys returns the mounted volume's XTS master keys (64 bytes).
// Real drivers never expose this; the simulation uses it as ground truth.
func (m *Mounted) MasterKeys() []byte {
	master := make([]byte, 0, MasterKeyLen)
	master = append(master, aes.WordsToBytes(m.xts.DataCipher().Schedule()[:8])...)
	master = append(master, aes.WordsToBytes(m.xts.TweakCipher().Schedule()[:8])...)
	return master
}

// Unmount erases the in-memory key schedules — the standard mitigation
// (§II-B): once a volume is cleanly unmounted, a cold boot attack finds
// nothing.
func (m *Mounted) Unmount() error {
	m.open = false
	if m.mem == nil {
		return nil
	}
	return m.mem.Write(m.keysAddr, make([]byte, SchedulesBytes))
}
