package veracrypt

import (
	"bytes"
	"math/rand"
	"testing"

	"coldboot/internal/aes"
)

// memBuf is a trivial MemWriter capturing what the driver puts in "RAM".
type memBuf struct {
	data map[uint64][]byte
}

func (m *memBuf) Write(phys uint64, data []byte) error {
	if m.data == nil {
		m.data = map[uint64][]byte{}
	}
	m.data[phys] = append([]byte{}, data...)
	return nil
}

func testSalt(seed int64) []byte {
	s := make([]byte, SaltSize)
	rand.New(rand.NewSource(seed)).Read(s)
	return s
}

func createTestVolume(t *testing.T, password string) *Volume {
	t.Helper()
	v, err := Create([]byte(password), 64*SectorSize, testSalt(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCreateAndMount(t *testing.T) {
	v := createTestVolume(t, "hunter2")
	m, err := v.Mount([]byte("hunter2"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	sectors, err := m.Superblock()
	if err != nil {
		t.Fatal(err)
	}
	if sectors != 64 {
		t.Errorf("superblock sectors = %d, want 64", sectors)
	}
}

func TestWrongPasswordRejected(t *testing.T) {
	v := createTestVolume(t, "correct")
	if _, err := v.Mount([]byte("incorrect"), nil, 0); err == nil {
		t.Error("wrong password accepted")
	}
}

func TestSectorRoundTrip(t *testing.T) {
	v := createTestVolume(t, "pw")
	m, err := v.Mount([]byte("pw"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, SectorSize)
	rand.New(rand.NewSource(2)).Read(data)
	if err := m.WriteSector(5, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, SectorSize)
	if err := m.ReadSector(5, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("sector round trip failed")
	}
}

func TestDataEncryptedAtRest(t *testing.T) {
	v := createTestVolume(t, "pw")
	m, _ := v.Mount([]byte("pw"), nil, 0)
	secret := bytes.Repeat([]byte("TOPSECRET!"), 52)[:SectorSize]
	m.WriteSector(3, secret)
	if bytes.Contains(v.disk, []byte("TOPSECRET!")) {
		t.Error("plaintext visible on disk")
	}
}

func TestRemountPersists(t *testing.T) {
	v := createTestVolume(t, "pw")
	m, _ := v.Mount([]byte("pw"), nil, 0)
	data := make([]byte, SectorSize)
	copy(data, "persistent payload")
	m.WriteSector(7, data)
	m.Unmount()
	m2, err := v.Mount([]byte("pw"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, SectorSize)
	m2.ReadSector(7, got)
	if !bytes.Equal(got, data) {
		t.Error("data lost across remount")
	}
}

func TestMountWritesSchedulesToMemory(t *testing.T) {
	v := createTestVolume(t, "pw")
	mem := &memBuf{}
	const addr = 0x1234
	m, err := v.Mount([]byte("pw"), mem, addr)
	if err != nil {
		t.Fatal(err)
	}
	sched := mem.data[addr]
	if len(sched) != SchedulesBytes {
		t.Fatalf("schedule footprint = %d bytes, want %d", len(sched), SchedulesBytes)
	}
	// The schedules must be real expansions of the master key halves.
	master := m.MasterKeys()
	if !bytes.Equal(sched[:240], aes.ExpandKeyBytes(master[:32])) {
		t.Error("data-key schedule in memory is not the expansion of K1")
	}
	if !bytes.Equal(sched[240:], aes.ExpandKeyBytes(master[32:])) {
		t.Error("tweak-key schedule in memory is not the expansion of K2")
	}
}

func TestUnmountErasesSchedules(t *testing.T) {
	v := createTestVolume(t, "pw")
	mem := &memBuf{}
	m, _ := v.Mount([]byte("pw"), mem, 0x40)
	if err := m.Unmount(); err != nil {
		t.Fatal(err)
	}
	for _, b := range mem.data[0x40] {
		if b != 0 {
			t.Fatal("key schedules not zeroed on unmount")
		}
	}
	// Access after unmount fails.
	if err := m.ReadSector(0, make([]byte, SectorSize)); err == nil {
		t.Error("read after unmount succeeded")
	}
}

func TestMountWithRecoveredKeys(t *testing.T) {
	// The attack endgame: no password, just master key halves mined from a
	// memory dump (order unknown, decoys present).
	v := createTestVolume(t, "forgotten-password")
	m, _ := v.Mount([]byte("forgotten-password"), nil, 0)
	master := m.MasterKeys()
	secret := make([]byte, SectorSize)
	copy(secret, "the attacker wants this sector")
	m.WriteSector(9, secret)
	m.Unmount()

	decoy := make([]byte, 32)
	rand.New(rand.NewSource(3)).Read(decoy)
	candidates := [][]byte{decoy, master[32:], master[:32]} // shuffled halves + decoy
	m2, err := v.MountWithRecoveredKeys(candidates, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, SectorSize)
	m2.ReadSector(9, got)
	if !bytes.Equal(got, secret) {
		t.Error("recovered-key mount cannot read the data")
	}
}

func TestMountWithRecoveredKeysAccepts64ByteCandidates(t *testing.T) {
	v := createTestVolume(t, "pw")
	m, _ := v.Mount([]byte("pw"), nil, 0)
	master := m.MasterKeys()
	if _, err := v.MountWithRecoveredKeys([][]byte{master}, nil, 0); err != nil {
		t.Errorf("64-byte candidate rejected: %v", err)
	}
}

func TestMountWithWrongKeysFails(t *testing.T) {
	v := createTestVolume(t, "pw")
	junk := make([]byte, 32)
	if _, err := v.MountWithRecoveredKeys([][]byte{junk}, nil, 0); err == nil {
		t.Error("junk keys unlocked the volume")
	}
}

func TestFixedKeyMaterial(t *testing.T) {
	km := make([]byte, MasterKeyLen)
	for i := range km {
		km[i] = byte(i)
	}
	v, err := Create([]byte("pw"), 16*SectorSize, testSalt(4), km)
	if err != nil {
		t.Fatal(err)
	}
	m, err := v.Mount([]byte("pw"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.MasterKeys(), km) {
		t.Error("fixed key material not used")
	}
}

func TestCreateValidation(t *testing.T) {
	if _, err := Create([]byte("pw"), 1024, make([]byte, 10), nil); err == nil {
		t.Error("short salt accepted")
	}
	if _, err := Create([]byte("pw"), 0, testSalt(5), nil); err == nil {
		t.Error("zero-size volume accepted")
	}
	if _, err := Create([]byte("pw"), 1024, testSalt(5), make([]byte, 10)); err == nil {
		t.Error("short key material accepted")
	}
}

func TestSectorBoundsChecking(t *testing.T) {
	v := createTestVolume(t, "pw")
	m, _ := v.Mount([]byte("pw"), nil, 0)
	if err := m.ReadSector(-1, make([]byte, SectorSize)); err == nil {
		t.Error("negative sector accepted")
	}
	if err := m.ReadSector(64, make([]byte, SectorSize)); err == nil {
		t.Error("out-of-range sector accepted")
	}
	if err := m.ReadSector(0, make([]byte, 100)); err == nil {
		t.Error("short buffer accepted")
	}
}

func TestDistinctVolumesDistinctKeys(t *testing.T) {
	a, _ := Create([]byte("pw"), 1024, testSalt(6), nil)
	b, _ := Create([]byte("pw"), 1024, testSalt(7), nil)
	ma, _ := a.Mount([]byte("pw"), nil, 0)
	mb, _ := b.Mount([]byte("pw"), nil, 0)
	if bytes.Equal(ma.MasterKeys(), mb.MasterKeys()) {
		t.Error("two volumes share master keys")
	}
}
