package veracrypt

import (
	"bytes"
	"testing"

	"coldboot/internal/bitutil"
)

func createHiddenPair(t *testing.T) *Volume {
	t.Helper()
	v, err := CreateHidden([]byte("outer-pw"), []byte("hidden-pw"),
		128*SectorSize, 32*SectorSize, testSalt(50))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHiddenVolumeMounts(t *testing.T) {
	v := createHiddenPair(t)
	outer, err := v.Mount([]byte("outer-pw"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if outer.Sectors() != 128 {
		t.Errorf("outer region %d sectors, want 128", outer.Sectors())
	}
	hidden, err := v.MountHidden([]byte("hidden-pw"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hidden.Sectors() != 32 {
		t.Errorf("hidden region %d sectors, want 32", hidden.Sectors())
	}
	if n, err := hidden.Superblock(); err != nil || n != 32 {
		t.Errorf("hidden superblock = %d, %v", n, err)
	}
}

func TestHiddenVolumeDataIndependent(t *testing.T) {
	v := createHiddenPair(t)
	outer, _ := v.Mount([]byte("outer-pw"), nil, 0)
	hidden, _ := v.MountHidden([]byte("hidden-pw"), nil, 0)
	secret := make([]byte, SectorSize)
	copy(secret, "deniable data in the hidden region")
	if err := hidden.WriteSector(5, secret); err != nil {
		t.Fatal(err)
	}
	// The outer mount sees only ciphertext noise at the overlapping sector
	// (outer sector 96+5 overlaps hidden sector 5).
	overlap := make([]byte, SectorSize)
	if err := outer.ReadSector(96+5, overlap); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(overlap, []byte("deniable")) {
		t.Error("outer mount reads hidden plaintext")
	}
	got := make([]byte, SectorSize)
	hidden.ReadSector(5, got)
	if !bytes.Equal(got, secret) {
		t.Error("hidden round trip failed")
	}
}

func TestDeniability(t *testing.T) {
	// A volume WITHOUT a hidden part carries an indistinguishable noise
	// slot: wrong hidden passwords fail identically on both, and the slot
	// contents are high entropy either way.
	plain, err := Create([]byte("pw"), 128*SectorSize, testSalt(51), nil)
	if err != nil {
		t.Fatal(err)
	}
	withHidden := createHiddenPair(t)
	for name, v := range map[string]*Volume{"plain": plain, "hidden": withHidden} {
		if _, err := v.MountHidden([]byte("wrong"), nil, 0); err == nil {
			t.Errorf("%s: wrong hidden password accepted", name)
		}
		slot := v.disk[hiddenHeaderSector*SectorSize : (hiddenHeaderSector+1)*SectorSize]
		if e := bitutil.Entropy(slot); e < 7.0 {
			t.Errorf("%s: hidden slot entropy %f too low — distinguishable", name, e)
		}
	}
}

func TestColdBootDefeatsDeniability(t *testing.T) {
	// The deniability-relevant attack consequence: a cold boot capture
	// while the HIDDEN volume is mounted yields its master keys, and
	// MountWithRecoveredKeys locates the hidden region by superblock
	// probing — no password, no knowledge that a hidden volume existed.
	v := createHiddenPair(t)
	hidden, err := v.MountHidden([]byte("hidden-pw"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	secret := make([]byte, SectorSize)
	copy(secret, "the existence of this data was deniable until now")
	hidden.WriteSector(7, secret)
	masters := hidden.MasterKeys() // what the cold boot attack recovers
	hidden.Unmount()

	m, err := v.MountWithRecoveredKeys([][]byte{masters}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sectors() != 32 {
		t.Errorf("recovered mount maps %d sectors; expected the hidden region (32)", m.Sectors())
	}
	got := make([]byte, SectorSize)
	m.ReadSector(7, got)
	if !bytes.Equal(got, secret) {
		t.Error("hidden data not recovered")
	}
}

func TestCreateHiddenValidation(t *testing.T) {
	if _, err := CreateHidden([]byte("a"), []byte("b"), 16*SectorSize, 16*SectorSize, testSalt(52)); err == nil {
		t.Error("hidden volume as large as the outer accepted")
	}
	if _, err := CreateHidden([]byte("a"), []byte("b"), 16*SectorSize, 0, testSalt(52)); err == nil {
		t.Error("zero-size hidden volume accepted")
	}
}

func TestOuterOverwriteDestroysHidden(t *testing.T) {
	// The classic TrueCrypt caveat, faithfully reproduced: filling the
	// outer volume clobbers the hidden region.
	v := createHiddenPair(t)
	hidden, _ := v.MountHidden([]byte("hidden-pw"), nil, 0)
	secret := make([]byte, SectorSize)
	copy(secret, "soon to be destroyed")
	hidden.WriteSector(3, secret)

	outer, _ := v.Mount([]byte("outer-pw"), nil, 0)
	junk := make([]byte, SectorSize)
	for n := 1; n < outer.Sectors(); n++ { // spare the outer superblock only
		outer.WriteSector(n, junk)
	}
	got := make([]byte, SectorSize)
	hidden.ReadSector(3, got)
	if bytes.Equal(got, secret) {
		t.Error("hidden data survived an outer-volume overwrite")
	}
}
