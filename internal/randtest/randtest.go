// Package randtest provides the statistical and algebraic tests that make
// the paper's central security claim quantitative: the scramblers' LFSR
// keystreams are "not cryptographically secure" while the proposed cipher
// engines are indistinguishable from random.
//
// Two kinds of evidence:
//
//   - NIST SP 800-22-style statistical tests (monobit frequency, block
//     frequency, runs, serial) — which both LFSR output and cipher output
//     pass: scramblers were, after all, designed to look statistically
//     random on the bus. These tests certify the *electrical* property.
//   - The Berlekamp–Massey linear complexity test — which separates them
//     completely: an LFSR keystream of register width w has linear
//     complexity ≤ w (64 here), so its entire future is predictable from
//     128 observed bits, while ChaCha/AES keystreams have complexity ≈ n/2
//     of any observed prefix. THIS is why scrambled DRAM falls to
//     cryptanalysis and encrypted DRAM does not.
package randtest

import (
	"math"
)

// Bits provides bit-indexed access over a byte slice (LSB first within each
// byte, matching the LFSR output convention).
type Bits []byte

// Len returns the number of bits.
func (b Bits) Len() int { return len(b) * 8 }

// At returns bit i as 0 or 1.
func (b Bits) At(i int) int {
	return int(b[i/8]>>(uint(i)%8)) & 1
}

// MonobitP returns the two-sided p-value of the NIST frequency (monobit)
// test: the fraction of ones should be near 1/2.
func MonobitP(b Bits) float64 {
	n := b.Len()
	if n == 0 {
		return 0
	}
	s := 0
	for i := 0; i < n; i++ {
		s += 2*b.At(i) - 1
	}
	sObs := math.Abs(float64(s)) / math.Sqrt(float64(n))
	return math.Erfc(sObs / math.Sqrt2)
}

// BlockFrequencyP runs the NIST block frequency test with blocks of m bits,
// returning the chi-square tail p-value.
func BlockFrequencyP(b Bits, m int) float64 {
	n := b.Len()
	blocks := n / m
	if blocks == 0 {
		return 0
	}
	chi := 0.0
	for blk := 0; blk < blocks; blk++ {
		ones := 0
		for i := 0; i < m; i++ {
			ones += b.At(blk*m + i)
		}
		pi := float64(ones) / float64(m)
		chi += (pi - 0.5) * (pi - 0.5)
	}
	chi *= 4 * float64(m)
	return upperIncompleteGammaQ(float64(blocks)/2, chi/2)
}

// RunsP returns the p-value of the NIST runs test (number of maximal
// same-bit runs). A stream failing monobit automatically fails here.
func RunsP(b Bits) float64 {
	n := b.Len()
	if n < 2 {
		return 0
	}
	ones := 0
	for i := 0; i < n; i++ {
		ones += b.At(i)
	}
	pi := float64(ones) / float64(n)
	if math.Abs(pi-0.5) >= 2/math.Sqrt(float64(n)) {
		return 0
	}
	runs := 1
	for i := 1; i < n; i++ {
		if b.At(i) != b.At(i-1) {
			runs++
		}
	}
	num := math.Abs(float64(runs) - 2*float64(n)*pi*(1-pi))
	den := 2 * math.Sqrt(2*float64(n)) * pi * (1 - pi)
	return math.Erfc(num / den)
}

// SerialP runs a simplified serial test on overlapping 2-bit patterns,
// returning a chi-square tail p-value: all four patterns 00/01/10/11 must
// be equally frequent.
func SerialP(b Bits) float64 {
	n := b.Len()
	if n < 3 {
		return 0
	}
	var counts [4]int
	for i := 0; i+1 < n; i++ {
		counts[b.At(i)<<1|b.At(i+1)]++
	}
	total := float64(n - 1)
	expected := total / 4
	chi := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi += d * d / expected
	}
	return upperIncompleteGammaQ(3.0/2, chi/2)
}

// ApproximateEntropyP runs the NIST approximate entropy test with block
// length m: it compares the frequencies of overlapping m- and (m+1)-bit
// patterns; a truly random stream has ApEn ≈ ln 2 per bit.
func ApproximateEntropyP(b Bits, m int) float64 {
	n := b.Len()
	if n < (m+1)*8 {
		return 0
	}
	phi := func(mm int) float64 {
		counts := make([]int, 1<<uint(mm))
		for i := 0; i < n; i++ {
			v := 0
			for j := 0; j < mm; j++ {
				v = v<<1 | b.At((i+j)%n)
			}
			counts[v]++
		}
		sum := 0.0
		for _, c := range counts {
			if c > 0 {
				p := float64(c) / float64(n)
				sum += p * math.Log(p)
			}
		}
		return sum
	}
	apen := phi(m) - phi(m+1)
	chi := 2 * float64(n) * (math.Ln2 - apen)
	return upperIncompleteGammaQ(float64(int(1)<<uint(m-1)), chi/2)
}

// CumulativeSumsP runs the NIST cumulative sums (cusum) test, forward
// direction: the random walk of ±1 steps must stay near the origin.
func CumulativeSumsP(b Bits) float64 {
	n := b.Len()
	if n == 0 {
		return 0
	}
	s, z := 0, 0
	for i := 0; i < n; i++ {
		s += 2*b.At(i) - 1
		if s > z {
			z = s
		}
		if -s > z {
			z = -s
		}
	}
	if z == 0 {
		return 0
	}
	fn := float64(n)
	fz := float64(z)
	sum := 0.0
	for k := (-n/z + 1) / 4; k <= (n/z-1)/4; k++ {
		sum += stdNormalCDF((4*float64(k)+1)*fz/math.Sqrt(fn)) -
			stdNormalCDF((4*float64(k)-1)*fz/math.Sqrt(fn))
	}
	sum2 := 0.0
	for k := (-n/z - 3) / 4; k <= (n/z-1)/4; k++ {
		sum2 += stdNormalCDF((4*float64(k)+3)*fz/math.Sqrt(fn)) -
			stdNormalCDF((4*float64(k)+1)*fz/math.Sqrt(fn))
	}
	p := 1 - sum + sum2
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

func stdNormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// LinearComplexity runs the Berlekamp–Massey algorithm over the first n
// bits of the stream and returns the length of the shortest LFSR that
// generates them. For a true w-bit LFSR keystream this is ≤ w regardless
// of n; for a random (or cryptographic) stream it is ≈ n/2.
func LinearComplexity(b Bits, n int) int {
	if n > b.Len() {
		n = b.Len()
	}
	s := make([]int, n)
	for i := range s {
		s[i] = b.At(i)
	}
	c := make([]int, n+1)
	bb := make([]int, n+1)
	c[0], bb[0] = 1, 1
	L, m := 0, -1
	for i := 0; i < n; i++ {
		d := s[i]
		for j := 1; j <= L; j++ {
			d ^= c[j] & s[i-j]
		}
		if d == 1 {
			t := make([]int, n+1)
			copy(t, c)
			for j := 0; j+i-m <= n; j++ {
				c[j+i-m] ^= bb[j]
			}
			if 2*L <= i {
				L = i + 1 - L
				m = i
				bb = t
			}
		}
	}
	return L
}

// PredictableFromPrefix reports whether the stream's continuation is fully
// determined by an LFSR fitted to its first 2*maxRegister bits: the
// operational meaning of "not cryptographically secure". It fits
// Berlekamp–Massey to the prefix and checks the prediction against the next
// check bits.
func PredictableFromPrefix(b Bits, maxRegister, check int) bool {
	prefix := 2 * maxRegister
	if prefix+check > b.Len() {
		return false
	}
	L := LinearComplexity(b, prefix)
	if L == 0 || L > maxRegister {
		return false
	}
	// Re-derive connection polynomial over the prefix.
	conn := connectionPoly(b, prefix)
	ln := len(conn) - 1
	if ln == 0 {
		return false
	}
	// Predict bits prefix..prefix+check-1 from the recurrence
	// s[i] = XOR_{j=1..L} conn[j]*s[i-j].
	s := make([]int, prefix+check)
	for i := 0; i < prefix; i++ {
		s[i] = b.At(i)
	}
	for i := prefix; i < prefix+check; i++ {
		v := 0
		for j := 1; j <= ln && j <= i; j++ {
			v ^= conn[j] & s[i-j]
		}
		s[i] = v
		if v != b.At(i) {
			return false
		}
	}
	return true
}

// connectionPoly runs Berlekamp–Massey and returns the connection
// polynomial coefficients c[0..L].
func connectionPoly(b Bits, n int) []int {
	if n > b.Len() {
		n = b.Len()
	}
	s := make([]int, n)
	for i := range s {
		s[i] = b.At(i)
	}
	c := make([]int, n+1)
	bb := make([]int, n+1)
	c[0], bb[0] = 1, 1
	L, m := 0, -1
	for i := 0; i < n; i++ {
		d := s[i]
		for j := 1; j <= L; j++ {
			d ^= c[j] & s[i-j]
		}
		if d == 1 {
			t := make([]int, n+1)
			copy(t, c)
			for j := 0; j+i-m <= n; j++ {
				c[j+i-m] ^= bb[j]
			}
			if 2*L <= i {
				L = i + 1 - L
				m = i
				bb = t
			}
		}
	}
	return c[:L+1]
}

// upperIncompleteGammaQ computes Q(a, x) = Γ(a,x)/Γ(a), the regularized
// upper incomplete gamma function, via series/continued-fraction expansion
// (Numerical Recipes style) — the tail probability for chi-square tests
// with 2a degrees of freedom at statistic 2x.
func upperIncompleteGammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return 0
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		// Series for P(a,x), return 1-P.
		ap := a
		sum := 1 / a
		del := sum
		for i := 0; i < 200; i++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-12 {
				break
			}
		}
		return 1 - sum*math.Exp(-x+a*math.Log(x)-lgamma(a))
	}
	// Continued fraction for Q(a,x).
	b := x + 1 - a
	c := 1 / 1e-300
	d := 1 / b
	h := d
	for i := 1; i < 200; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < 1e-300 {
			d = 1e-300
		}
		c = b + an/c
		if math.Abs(c) < 1e-300 {
			c = 1e-300
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-12 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lgamma(a)) * h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// Report summarizes a battery run over one stream.
type Report struct {
	Monobit          float64
	BlockFrequency   float64
	Runs             float64
	Serial           float64
	ApproxEntropy    float64
	CumulativeSums   float64
	LinearComplexity int // over the first 4096 bits
	LFSRPredictable  bool
}

// Battery runs all tests over the stream.
func Battery(b Bits) Report {
	return Report{
		Monobit:          MonobitP(b),
		BlockFrequency:   BlockFrequencyP(b, 128),
		Runs:             RunsP(b),
		Serial:           SerialP(b),
		ApproxEntropy:    ApproximateEntropyP(b, 4),
		CumulativeSums:   CumulativeSumsP(b),
		LinearComplexity: LinearComplexity(b, 4096),
		LFSRPredictable:  PredictableFromPrefix(b, 128, 1024),
	}
}

// PassesStatistical reports whether every statistical p-value clears the
// NIST significance threshold of 0.01.
func (r Report) PassesStatistical() bool {
	return r.Monobit > 0.01 && r.BlockFrequency > 0.01 && r.Runs > 0.01 &&
		r.Serial > 0.01 && r.ApproxEntropy > 0.01 && r.CumulativeSums > 0.01
}
