package randtest

import (
	"math/rand"
	"testing"

	"coldboot/internal/chacha"
	"coldboot/internal/engine"
	"coldboot/internal/lfsr"
	"coldboot/internal/scramble"
)

func lfsrStream(n int) Bits {
	g := lfsr.NewMaximal(64, 0xDEADBEEFCAFE)
	out := make([]byte, n)
	g.Fill(out)
	return Bits(out)
}

func chachaStream(n int) Bits {
	c, _ := chacha.New(chacha.Rounds8, make([]byte, 32), 7)
	out := make([]byte, n)
	c.Keystream(out, 0)
	return Bits(out)
}

func TestMonobitExtremes(t *testing.T) {
	zeros := Bits(make([]byte, 256))
	if p := MonobitP(zeros); p > 1e-10 {
		t.Errorf("all-zeros monobit p = %g, want ~0", p)
	}
	rnd := make([]byte, 1<<15)
	rand.New(rand.NewSource(3)).Read(rnd)
	if p := MonobitP(Bits(rnd)); p < 0.01 {
		t.Errorf("random monobit p = %g, want > 0.01", p)
	}
	if p := MonobitP(nil); p != 0 {
		t.Error("empty stream should fail")
	}
}

func TestRunsDetectsStuckStreams(t *testing.T) {
	// Alternating 0101... has far too many runs.
	alt := make([]byte, 1024)
	for i := range alt {
		alt[i] = 0x55
	}
	if p := RunsP(Bits(alt)); p > 1e-10 {
		t.Errorf("alternating runs p = %g, want ~0", p)
	}
	rnd := make([]byte, 1<<14)
	rand.New(rand.NewSource(2)).Read(rnd)
	if p := RunsP(Bits(rnd)); p < 0.01 {
		t.Errorf("random runs p = %g", p)
	}
}

func TestBlockFrequencyDetectsDrift(t *testing.T) {
	// First half zeros, second half ones: global monobit fine, blocks not.
	drift := make([]byte, 2048)
	for i := 1024; i < 2048; i++ {
		drift[i] = 0xFF
	}
	if p := BlockFrequencyP(Bits(drift), 128); p > 1e-10 {
		t.Errorf("drift block-frequency p = %g, want ~0", p)
	}
}

func TestSerialDetectsPeriodicPatterns(t *testing.T) {
	per := make([]byte, 2048)
	for i := range per {
		per[i] = 0x0F // bits 11110000: 2-gram counts 3/1/3/1 per byte
	}
	if p := SerialP(Bits(per)); p > 1e-10 {
		t.Errorf("periodic serial p = %g, want ~0", p)
	}
}

func TestBothStreamsPassStatisticalBattery(t *testing.T) {
	// The electrical scrambling goal: even the LFSR keystream is
	// statistically balanced — which is exactly why statistical tests
	// CANNOT distinguish a scrambler from a cipher, and why the paper's
	// claim needs the algebraic test below.
	for name, s := range map[string]Bits{
		"lfsr":    lfsrStream(1 << 14),
		"chacha8": chachaStream(1 << 14),
	} {
		r := Battery(s)
		if !r.PassesStatistical() {
			t.Errorf("%s fails statistical battery: %+v", name, r)
		}
	}
}

func TestLinearComplexitySeparatesScramblerFromCipher(t *testing.T) {
	// THE quantitative version of "scramblers use PRNGs that are not
	// cryptographically secure": the 64-bit LFSR keystream has linear
	// complexity <= 64 over any prefix, while ChaCha8's is ~n/2.
	lc := LinearComplexity(lfsrStream(4096), 4096)
	if lc > 64 {
		t.Errorf("LFSR linear complexity = %d, want <= 64", lc)
	}
	cc := LinearComplexity(chachaStream(4096), 4096)
	if cc < 1900 {
		t.Errorf("ChaCha8 linear complexity = %d, want ~2048", cc)
	}
}

func TestLFSRStreamIsPredictable(t *testing.T) {
	// Operational meaning: 256 observed bits of scrambler keystream
	// predict the next 1024 exactly.
	if !PredictableFromPrefix(lfsrStream(1<<12), 128, 1024) {
		t.Error("LFSR stream not predicted by Berlekamp-Massey fit")
	}
	if PredictableFromPrefix(chachaStream(1<<12), 128, 1024) {
		t.Error("ChaCha8 stream predicted by an LFSR fit?!")
	}
}

func TestScramblerGeneratorStreamRecoverableFromOneKey(t *testing.T) {
	// Cryptanalysis of the actual Skylake scrambler: the w/d key layout is
	// invertible, so a single mined 64-byte key lets the attacker
	// reconstruct 320 contiguous bits of the underlying generator stream —
	// and Berlekamp-Massey then pins that stream to a <= 64-bit LFSR whose
	// future is fully predictable. This is the precise, quantitative form
	// of the paper's "PRNGs that are not cryptographically secure".
	s := scramble.NewSkylakeDDR4(0x5EED)
	for idx := uint64(0); idx < 8; idx++ {
		key := s.KeyAt(idx * 64)
		var stream []byte
		for g := 0; g < 4; g++ {
			base := g * 16
			stream = append(stream, key[base:base+8]...)                            // w0..w3
			stream = append(stream, key[base+8]^key[base], key[base+9]^key[base+1]) // d
		}
		lc := LinearComplexity(Bits(stream), len(stream)*8)
		if lc > 64 {
			t.Fatalf("key %d: reconstructed generator complexity = %d, want <= 64", idx, lc)
		}
		if !PredictableFromPrefix(Bits(stream), 64, 150) {
			t.Fatalf("key %d: generator stream not LFSR-predictable", idx)
		}
	}
}

func TestEncryptedScramblerHasHighLinearComplexity(t *testing.T) {
	e := engine.NewChaChaScrambler(chacha.Rounds8, 0x5EED)
	stream := make([]byte, 0, 2048)
	for off := uint64(0); len(stream) < 2048; off += 64 {
		stream = append(stream, e.KeyAt(off)...)
	}
	lc := LinearComplexity(Bits(stream), 4096)
	if lc < 1900 {
		t.Errorf("encrypted keystream linear complexity = %d, want ~2048", lc)
	}
}

func TestPredictableRejectsShortStreams(t *testing.T) {
	if PredictableFromPrefix(Bits(make([]byte, 8)), 128, 1024) {
		t.Error("short stream reported predictable")
	}
}

func TestGammaQSanity(t *testing.T) {
	// Q(a, 0) = 1; Q decreases in x; chi-square df=2: Q(1, x) = e^-x.
	if q := upperIncompleteGammaQ(1, 0); q != 1 {
		t.Errorf("Q(1,0) = %f", q)
	}
	if q := upperIncompleteGammaQ(1, 1); q < 0.367 || q > 0.369 {
		t.Errorf("Q(1,1) = %f, want e^-1", q)
	}
	if q := upperIncompleteGammaQ(2.5, 20); q > 0.001 {
		t.Errorf("deep tail Q = %f", q)
	}
}

func TestBatteryReportFields(t *testing.T) {
	r := Battery(chachaStream(1 << 13))
	if r.LFSRPredictable {
		t.Error("cipher stream flagged LFSR-predictable")
	}
	if r.LinearComplexity < 1000 {
		t.Errorf("cipher linear complexity %d too low", r.LinearComplexity)
	}
	lr := Battery(lfsrStream(1 << 13))
	if !lr.LFSRPredictable {
		t.Error("LFSR stream not flagged predictable")
	}
}

func BenchmarkBerlekampMassey4096(b *testing.B) {
	s := chachaStream(1 << 12)
	for i := 0; i < b.N; i++ {
		LinearComplexity(s, 4096)
	}
}

func TestApproximateEntropy(t *testing.T) {
	rnd := make([]byte, 1<<13)
	rand.New(rand.NewSource(7)).Read(rnd)
	if p := ApproximateEntropyP(Bits(rnd), 4); p < 0.01 {
		t.Errorf("random ApEn p = %g", p)
	}
	per := make([]byte, 1<<13)
	for i := range per {
		per[i] = 0x0F
	}
	if p := ApproximateEntropyP(Bits(per), 4); p > 1e-10 {
		t.Errorf("periodic ApEn p = %g, want ~0", p)
	}
	if p := ApproximateEntropyP(Bits(nil), 4); p != 0 {
		t.Error("empty stream should fail")
	}
}

func TestCumulativeSums(t *testing.T) {
	rnd := make([]byte, 1<<13)
	rand.New(rand.NewSource(8)).Read(rnd)
	if p := CumulativeSumsP(Bits(rnd)); p < 0.01 {
		t.Errorf("random cusum p = %g", p)
	}
	// A biased stream drifts far from the origin.
	biased := make([]byte, 1<<12)
	for i := range biased {
		biased[i] = 0xFE // 7 ones per byte
	}
	if p := CumulativeSumsP(Bits(biased)); p > 1e-10 {
		t.Errorf("biased cusum p = %g, want ~0", p)
	}
	if p := CumulativeSumsP(Bits(nil)); p != 0 {
		t.Error("empty stream should fail")
	}
}
