// Package machine assembles CPUs, memory controllers, and DRAM modules into
// whole systems, and provides the physical operations a cold boot attack is
// made of: booting with BIOS-chosen scrambler seeds, powering off, freezing
// a DIMM with a gas duster, pulling it, carrying it to another machine
// (while it decays), and dumping memory from bare metal.
package machine

import (
	"fmt"
	//lint:ignore noweakrand seeded machine-model simulation, not keystream material
	"math/rand"
	"time"

	"coldboot/internal/addrmap"
	"coldboot/internal/dram"
	"coldboot/internal/memctrl"
)

// CPUModel describes a processor from the paper's Table I.
type CPUModel struct {
	Name     string
	Arch     addrmap.Microarch
	Memory   dram.Standard
	Launched string
}

// TableI lists the five machines whose scramblers the paper analyzed.
var TableI = []CPUModel{
	{Name: "i5-2540M", Arch: addrmap.SandyBridge, Memory: dram.DDR3, Launched: "Q1, 2011"},
	{Name: "i5-2430M", Arch: addrmap.SandyBridge, Memory: dram.DDR3, Launched: "Q4, 2011"},
	{Name: "i7-3540M", Arch: addrmap.IvyBridge, Memory: dram.DDR3, Launched: "Q1, 2013"},
	{Name: "i5-6400", Arch: addrmap.Skylake, Memory: dram.DDR4, Launched: "Q3, 2015"},
	{Name: "i5-6600K", Arch: addrmap.Skylake, Memory: dram.DDR4, Launched: "Q3, 2015"},
}

// CPUByName looks up a Table I processor.
func CPUByName(name string) (CPUModel, bool) {
	for _, c := range TableI {
		if c.Name == name {
			return c, true
		}
	}
	return CPUModel{}, false
}

// SeedPolicy controls how the BIOS programs the scrambler seed at boot.
type SeedPolicy int

const (
	// FreshSeedEachBoot is the correct behaviour: a new random seed per
	// boot cycle.
	FreshSeedEachBoot SeedPolicy = iota
	// ReuseSeedAcrossBoots models the vendor BIOSes the paper found that
	// do NOT reset the scrambler seed, so the same key set returns after
	// reboot (§III-B, observation 2).
	ReuseSeedAcrossBoots
)

// Config configures a machine build.
type Config struct {
	CPU        CPUModel
	Channels   int
	DIMMBytes  int // capacity per channel
	SeedPolicy SeedPolicy
	// ScramblerOn is the BIOS scrambler switch (default on; the paper's
	// DDR4 motherboard exposes it).
	ScramblerOn bool
	// BIOSEntropy seeds the BIOS's boot-seed RNG so experiments are
	// reproducible.
	BIOSEntropy int64
	// NewScrambler optionally overrides the stock scrambler (used by the
	// encrypted-memory experiments). Nil selects the generation's stock
	// part.
	NewScrambler memctrl.ScramblerFactory
	// ModuleSpec optionally overrides the DIMM model (e.g. an NVDIMM);
	// its geometry is rescaled to DIMMBytes. Nil selects the default part
	// for the CPU's memory standard.
	ModuleSpec *dram.ModuleSpec
}

// Machine is one simulated computer.
type Machine struct {
	cfg      Config
	ctrl     *memctrl.Controller
	bios     *rand.Rand
	lastSeed uint64
	booted   bool
	powered  bool
	boots    int
}

// New builds a machine with factory-fresh DIMMs seated in every channel.
func New(cfg Config) (*Machine, error) {
	if cfg.Channels == 0 {
		cfg.Channels = 1
	}
	if cfg.DIMMBytes == 0 {
		cfg.DIMMBytes = 4 << 20
	}
	ctrl, err := memctrl.New(memctrl.Config{
		Arch:             cfg.CPU.Arch,
		Channels:         cfg.Channels,
		ScramblerEnabled: cfg.ScramblerOn,
		NewScrambler:     cfg.NewScrambler,
	})
	if err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg, ctrl: ctrl, bios: rand.New(rand.NewSource(cfg.BIOSEntropy))}
	for ch := 0; ch < cfg.Channels; ch++ {
		var spec dram.ModuleSpec
		switch {
		case cfg.ModuleSpec != nil:
			spec = *cfg.ModuleSpec
			spec.Geometry = spec.Geometry.WithCapacity(cfg.DIMMBytes)
		case cfg.CPU.Memory == dram.DDR3:
			spec = dram.DefaultDDR3Spec(cfg.DIMMBytes)
		default:
			spec = dram.DefaultDDR4Spec(cfg.DIMMBytes)
		}
		mod, err := dram.NewModule(spec, cfg.BIOSEntropy*31+int64(ch))
		if err != nil {
			return nil, err
		}
		if err := ctrl.AttachDIMM(ch, mod); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// CPU returns the machine's processor model.
func (m *Machine) CPU() CPUModel { return m.cfg.CPU }

// Controller exposes the memory controller.
func (m *Machine) Controller() *memctrl.Controller { return m.ctrl }

// Boot powers the machine (and its DIMMs) on and programs the scrambler
// seed per the BIOS seed policy. DRAM contents survive a warm reboot.
func (m *Machine) Boot() error {
	for ch := 0; ch < m.cfg.Channels; ch++ {
		if d := m.ctrl.DIMM(ch); d != nil {
			d.PowerOn()
		}
	}
	var seed uint64
	if m.cfg.SeedPolicy == ReuseSeedAcrossBoots && m.boots > 0 {
		seed = m.lastSeed
	} else {
		seed = m.bios.Uint64()
	}
	if err := m.ctrl.Boot(seed); err != nil {
		return err
	}
	m.lastSeed = seed
	m.booted = true
	m.powered = true
	m.boots++
	return nil
}

// Booted reports whether the machine has been booted.
func (m *Machine) Booted() bool { return m.booted }

// BootCount returns the number of completed boots.
func (m *Machine) BootCount() int { return m.boots }

// LastSeed returns the scrambler seed of the current boot.
func (m *Machine) LastSeed() uint64 { return m.lastSeed }

// Suspend puts the machine in S3 sleep: the CPU powers down but DRAM
// keeps refreshing — which is exactly why the paper's §II-B notes that
// disk-encryption keys remain exposed "if the machine is in sleep mode
// while the attacker acquires it". Memory contents neither decay nor
// change; a subsequent Resume (or a cold boot attack) finds them intact.
func (m *Machine) Suspend() {
	m.booted = false // no software runs...
	// ...but DIMMs stay powered: refresh continues, no decay.
}

// Resume wakes a suspended machine without reseeding the scrambler (the
// scrambler keys are preserved across S3, as on real hardware — memory
// would be garbage otherwise).
func (m *Machine) Resume() {
	m.booted = true
}

// PowerOff cuts power: DIMMs stop refreshing and begin to decay.
func (m *Machine) PowerOff() {
	for ch := 0; ch < m.cfg.Channels; ch++ {
		if d := m.ctrl.DIMM(ch); d != nil {
			d.PowerOff()
		}
	}
	m.powered = false
	m.booted = false
}

// Powered reports whether the machine is running.
func (m *Machine) Powered() bool { return m.powered }

// Write stores data at physical address phys through the scrambler.
func (m *Machine) Write(phys uint64, data []byte) error {
	if !m.booted {
		return fmt.Errorf("machine: write while off")
	}
	return m.ctrl.Write(phys, data)
}

// Read loads len(dst) bytes from physical address phys through the
// descrambler.
func (m *Machine) Read(phys uint64, dst []byte) error {
	if !m.booted {
		return fmt.Errorf("machine: read while off")
	}
	return m.ctrl.Read(phys, dst)
}

// Dump captures the whole physical address space through the descrambler —
// the GRUB-module procedure: bare hardware, no OS, minimal pollution.
func (m *Machine) Dump() ([]byte, error) {
	if !m.booted {
		return nil, fmt.Errorf("machine: dump while off")
	}
	return m.ctrl.Dump()
}

// MemSize returns the physical memory size in bytes.
func (m *Machine) MemSize() int { return m.ctrl.MemSize() }

// FreezeDIMMs sprays every DIMM down to tempC (the paper reached about
// -25 C with an off-the-shelf gas duster).
func (m *Machine) FreezeDIMMs(tempC float64) {
	for ch := 0; ch < m.cfg.Channels; ch++ {
		if d := m.ctrl.DIMM(ch); d != nil {
			d.SetTemperature(tempC)
		}
	}
}

// RemoveDIMM pulls the module out of channel ch. The machine must be
// powered off (pulling live DIMMs is not modeled).
func (m *Machine) RemoveDIMM(ch int) (*dram.Module, error) {
	if m.powered {
		return nil, fmt.Errorf("machine: cannot remove DIMM while powered")
	}
	return m.ctrl.DetachDIMM(ch)
}

// InsertDIMM seats a module into channel ch. The machine must be off.
func (m *Machine) InsertDIMM(ch int, d *dram.Module) error {
	if m.powered {
		return fmt.Errorf("machine: cannot insert DIMM while powered")
	}
	return m.ctrl.AttachDIMM(ch, d)
}

// EjectDIMMs powers the machine off and removes all modules — one call for
// the "pull the frozen DIMMs" step.
func (m *Machine) EjectDIMMs() ([]*dram.Module, error) {
	m.PowerOff()
	mods := make([]*dram.Module, m.cfg.Channels)
	for ch := 0; ch < m.cfg.Channels; ch++ {
		d, err := m.ctrl.DetachDIMM(ch)
		if err != nil {
			return nil, err
		}
		mods[ch] = d
	}
	return mods, nil
}

// RawWriteDevice writes unscrambled bytes directly into channel ch's
// module at device offset off — the Xilinx VC709 FPGA path of the paper's
// analysis framework, which bypasses the memory controller entirely.
func (m *Machine) RawWriteDevice(ch int, off int, data []byte) error {
	d := m.ctrl.DIMM(ch)
	if d == nil {
		return fmt.Errorf("machine: channel %d empty", ch)
	}
	d.Write(off, data)
	return nil
}

// RawReadDevice reads raw (possibly scrambled) bits from channel ch's
// module — the FPGA read path.
func (m *Machine) RawReadDevice(ch int, off int, dst []byte) error {
	d := m.ctrl.DIMM(ch)
	if d == nil {
		return fmt.Errorf("machine: channel %d empty", ch)
	}
	d.Read(off, dst)
	return nil
}

// Transfer models carrying modules between machines for d wall-clock time:
// each unpowered module decays at its current temperature.
func Transfer(mods []*dram.Module, d time.Duration) {
	for _, m := range mods {
		m.Elapse(d)
	}
}
