package machine

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"coldboot/internal/addrmap"
	"coldboot/internal/dram"
)

func skylakeMachine(t *testing.T, entropy int64) *Machine {
	t.Helper()
	cpu, _ := CPUByName("i5-6600K")
	m, err := New(Config{CPU: cpu, Channels: 1, DIMMBytes: 1 << 20, ScramblerOn: true, BIOSEntropy: entropy})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTableI(t *testing.T) {
	// Pin the paper's Table I: models, generations, memory standards.
	if len(TableI) != 5 {
		t.Fatalf("Table I has %d entries, want 5", len(TableI))
	}
	wants := []struct {
		name   string
		arch   addrmap.Microarch
		mem    dram.Standard
		launch string
	}{
		{"i5-2540M", addrmap.SandyBridge, dram.DDR3, "Q1, 2011"},
		{"i5-2430M", addrmap.SandyBridge, dram.DDR3, "Q4, 2011"},
		{"i7-3540M", addrmap.IvyBridge, dram.DDR3, "Q1, 2013"},
		{"i5-6400", addrmap.Skylake, dram.DDR4, "Q3, 2015"},
		{"i5-6600K", addrmap.Skylake, dram.DDR4, "Q3, 2015"},
	}
	for i, w := range wants {
		got := TableI[i]
		if got.Name != w.name || got.Arch != w.arch || got.Memory != w.mem || got.Launched != w.launch {
			t.Errorf("Table I row %d = %+v, want %+v", i, got, w)
		}
	}
}

func TestCPUByName(t *testing.T) {
	if _, ok := CPUByName("i5-6400"); !ok {
		t.Error("i5-6400 not found")
	}
	if _, ok := CPUByName("i9-9999"); ok {
		t.Error("phantom CPU found")
	}
}

func TestBootAndMemoryAccess(t *testing.T) {
	m := skylakeMachine(t, 1)
	if err := m.Read(0, make([]byte, 4)); err == nil {
		t.Error("read before boot succeeded")
	}
	if err := m.Boot(); err != nil {
		t.Fatal(err)
	}
	data := []byte("cold boot attacks are still hot")
	if err := m.Write(4096, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := m.Read(4096, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("memory round trip failed")
	}
}

func TestFreshSeedPolicyChangesSeeds(t *testing.T) {
	m := skylakeMachine(t, 2)
	m.Boot()
	s1 := m.LastSeed()
	m.Boot()
	if m.LastSeed() == s1 {
		t.Error("fresh-seed policy reused a seed")
	}
	if m.BootCount() != 2 {
		t.Errorf("boot count = %d", m.BootCount())
	}
}

func TestReuseSeedPolicyKeepsSeed(t *testing.T) {
	cpu, _ := CPUByName("i5-6400")
	m, err := New(Config{CPU: cpu, DIMMBytes: 1 << 20, ScramblerOn: true,
		SeedPolicy: ReuseSeedAcrossBoots, BIOSEntropy: 3})
	if err != nil {
		t.Fatal(err)
	}
	m.Boot()
	s1 := m.LastSeed()
	m.Boot()
	if m.LastSeed() != s1 {
		t.Error("reuse-seed policy changed the seed")
	}
}

func TestWarmRebootPreservesScrambledBits(t *testing.T) {
	// Reboot reseeds the scrambler but leaves DRAM contents alone; the
	// read-back is therefore garbled, not zeroed.
	m := skylakeMachine(t, 4)
	m.Boot()
	data := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(data)
	m.Write(0, data)
	raw := make([]byte, 4096)
	m.RawReadDevice(0, 0, raw)
	m.Boot()
	raw2 := make([]byte, 4096)
	m.RawReadDevice(0, 0, raw2)
	if !bytes.Equal(raw, raw2) {
		t.Error("warm reboot altered DRAM device bits")
	}
	got := make([]byte, 4096)
	m.Read(0, got)
	if bytes.Equal(got, data) {
		t.Error("reseeded read-back returned plaintext")
	}
}

func TestPowerOffStartsDecay(t *testing.T) {
	m := skylakeMachine(t, 5)
	m.Boot()
	data := make([]byte, m.MemSize())
	rand.New(rand.NewSource(2)).Read(data)
	m.Write(0, data)
	snapshot := m.Controller().DIMM(0).Snapshot()
	m.PowerOff()
	if m.Powered() {
		t.Fatal("still powered after PowerOff")
	}
	m.Controller().DIMM(0).Elapse(2 * time.Second)
	after := m.Controller().DIMM(0).Snapshot()
	if bytes.Equal(snapshot, after) {
		t.Error("no decay after power-off at room temperature")
	}
}

func TestFreezeSlowsDecay(t *testing.T) {
	warm := skylakeMachine(t, 6)
	cold := skylakeMachine(t, 6)
	for _, m := range []*Machine{warm, cold} {
		m.Boot()
		data := make([]byte, m.MemSize())
		rand.New(rand.NewSource(3)).Read(data)
		m.Write(0, data)
	}
	cold.FreezeDIMMs(-25)
	warm.PowerOff()
	cold.PowerOff()
	warm.Controller().DIMM(0).Elapse(5 * time.Second)
	cold.Controller().DIMM(0).Elapse(5 * time.Second)
	if cold.Controller().DIMM(0).DecayedBits() >= warm.Controller().DIMM(0).DecayedBits() {
		t.Error("freezing did not slow decay")
	}
}

func TestDIMMTransferBetweenMachines(t *testing.T) {
	// The full physical procedure of Figure 2: freeze, power off, pull,
	// carry, seat in another machine, boot, dump.
	victim := skylakeMachine(t, 7)
	victim.Boot()
	secret := []byte("disk encryption key material....................................")
	victim.Write(8192, secret)
	victimMemSize := victim.MemSize()
	victim.FreezeDIMMs(-25)
	mods, err := victim.EjectDIMMs()
	if err != nil {
		t.Fatal(err)
	}
	Transfer(mods, 5*time.Second)

	attacker := skylakeMachine(t, 8)
	// Attacker machine boots with its own DIMM first; swap in the victim's.
	if _, err := attacker.Controller().DetachDIMM(0); err != nil {
		t.Fatal(err)
	}
	if err := attacker.InsertDIMM(0, mods[0]); err != nil {
		t.Fatal(err)
	}
	if err := attacker.Boot(); err != nil {
		t.Fatal(err)
	}
	dump, err := attacker.Dump()
	if err != nil {
		t.Fatal(err)
	}
	// The secret is NOT directly visible: it is double-scrambled
	// (victim keystream + attacker keystream).
	if bytes.Contains(dump, secret) {
		t.Error("secret visible in double-scrambled dump without descrambling")
	}
	if len(dump) != victimMemSize {
		t.Errorf("dump size %d", len(dump))
	}
}

func TestRemoveDIMMWhilePoweredFails(t *testing.T) {
	m := skylakeMachine(t, 9)
	m.Boot()
	if _, err := m.RemoveDIMM(0); err == nil {
		t.Error("hot-pull allowed")
	}
	if err := m.InsertDIMM(0, nil); err == nil {
		t.Error("hot-insert allowed")
	}
}

func TestRawDeviceAccessBypassesScrambler(t *testing.T) {
	// The FPGA path: write raw zeros below the scrambler, then read them
	// through the descrambler — yielding the keystream itself (the
	// "reverse cold boot" of §III-A).
	m := skylakeMachine(t, 10)
	m.Boot()
	zeros := make([]byte, 64)
	if err := m.RawWriteDevice(0, 0, zeros); err != nil {
		t.Fatal(err)
	}
	through := make([]byte, 64)
	m.Read(0, through)
	key := m.Controller().Scrambler(0).KeyAt(0)
	if !bytes.Equal(through, key) {
		t.Error("reading raw zeros through the descrambler did not reveal the key")
	}
}

func TestRawAccessInvalidChannel(t *testing.T) {
	m := skylakeMachine(t, 11)
	if err := m.RawWriteDevice(3, 0, []byte{1}); err == nil {
		t.Error("raw write to missing channel succeeded")
	}
	if err := m.RawReadDevice(3, 0, make([]byte, 1)); err == nil {
		t.Error("raw read from missing channel succeeded")
	}
}

func TestDDR3MachineUsesDDR3Scrambler(t *testing.T) {
	cpu, _ := CPUByName("i5-2540M")
	m, err := New(Config{CPU: cpu, DIMMBytes: 1 << 20, ScramblerOn: true, BIOSEntropy: 12})
	if err != nil {
		t.Fatal(err)
	}
	m.Boot()
	if got := m.Controller().Scrambler(0).NumKeys(); got != 16 {
		t.Errorf("DDR3 machine scrambler has %d keys, want 16", got)
	}
}

func TestScramblerOffMachine(t *testing.T) {
	cpu, _ := CPUByName("i5-6400")
	m, err := New(Config{CPU: cpu, DIMMBytes: 1 << 20, ScramblerOn: false, BIOSEntropy: 13})
	if err != nil {
		t.Fatal(err)
	}
	m.Boot()
	data := []byte("plaintext-on-the-bus----------------------------bytes==========")
	m.Write(0, data)
	raw := make([]byte, len(data))
	m.RawReadDevice(0, 0, raw)
	if !bytes.Equal(raw, data) {
		t.Error("scrambler-off machine stored non-plaintext")
	}
}

func TestDumpWhileOffFails(t *testing.T) {
	m := skylakeMachine(t, 14)
	if _, err := m.Dump(); err == nil {
		t.Error("dump while off succeeded")
	}
}
