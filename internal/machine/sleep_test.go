package machine

import (
	"math/rand"
	"testing"
	"time"
)

func TestSuspendKeepsMemoryAlive(t *testing.T) {
	// §II-B: a machine in S3 sleep keeps refreshing DRAM — the mounted
	// volume's key schedules remain intact for however long the attacker
	// needs, with no freezing at all.
	cpu, _ := CPUByName("i5-6600K")
	m, err := New(Config{CPU: cpu, DIMMBytes: 1 << 20, ScramblerOn: true, BIOSEntropy: 70})
	if err != nil {
		t.Fatal(err)
	}
	m.Boot()
	secret := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(secret)
	m.Write(0, secret)
	seed := m.LastSeed()

	m.Suspend()
	if err := m.Read(0, make([]byte, 4)); err == nil {
		t.Error("reads succeed while suspended")
	}
	m.Controller().DIMM(0).Elapse(24 * time.Hour) // powered: no decay
	m.Resume()
	if m.LastSeed() != seed {
		t.Error("resume reseeded the scrambler")
	}
	got := make([]byte, 4096)
	if err := m.Read(0, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != secret[i] {
			t.Fatal("memory contents changed across a day of sleep")
		}
	}
}

func TestWeakCellsDecayFirst(t *testing.T) {
	// Halderman's observation: early decay concentrates in the weak-cell
	// population.
	spec := dramSpecWithWeak()
	m, err := NewTestModule(spec, 71)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, m.Size())
	rand.New(rand.NewSource(2)).Read(data)
	m.Write(0, data)
	m.SetTemperature(-25)
	m.PowerOff()
	m.Elapse(2 * time.Second)
	// Count decayed bits inside vs outside the weak population.
	weakFlips, strongFlips, weakBits := 0, 0, 0
	after := m.Snapshot()
	for bit := 0; bit < len(data)*8; bit++ {
		isWeak := m.IsWeak(bit)
		if isWeak {
			weakBits++
		}
		if (data[bit/8]^after[bit/8])&(1<<uint(bit%8)) != 0 {
			if isWeak {
				weakFlips++
			} else {
				strongFlips++
			}
		}
	}
	if weakBits == 0 || weakFlips == 0 {
		t.Fatal("no weak-cell decay observed")
	}
	weakRate := float64(weakFlips) / float64(weakBits)
	strongRate := float64(strongFlips) / float64(len(data)*8-weakBits)
	if weakRate < 3*strongRate {
		t.Errorf("weak cells decay at %.4f vs strong %.4f; expected a clear separation",
			weakRate, strongRate)
	}
}
