package machine

import "coldboot/internal/dram"

// Test helpers bridging to internal/dram without polluting the public API.

func dramSpecWithWeak() dram.ModuleSpec {
	spec := dram.DefaultDDR4Spec(1 << 20)
	spec.WeakCellFraction = 0.01
	return spec
}

// NewTestModule builds a raw module for physics-level tests.
func NewTestModule(spec dram.ModuleSpec, seed int64) (*dram.Module, error) {
	return dram.NewModule(spec, seed)
}
