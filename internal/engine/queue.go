package engine

import (
	"coldboot/internal/dram"
)

// Figure 6 queueing model.
//
// The decisive micro-architectural difference between AES and ChaCha as
// memory ciphers is counter injection: a 64-byte read needs FOUR 16-byte
// counters fed into an AES pipeline but only ONE into ChaCha. Counter
// injection crosses from the memory-controller clock domain, so we model it
// at the DDR bus clock (one injection slot per bus clock, 0.833 ns at
// DDR4-2400) plus a one-engine-cycle handoff per request. For AES that
// makes the per-request injection service time
//
//	4 x busClock + 1 engine cycle  =  3.75 ns at DDR4-2400,
//
// slightly MORE than the 3.33 ns at which back-to-back CAS responses
// arrive, so a queue builds as bandwidth utilization approaches peak —
// while ChaCha (0.833 + 0.51 = 1.34 ns) never queues. These assumptions are
// stated in DESIGN.md; they reproduce the published curve: ChaCha8 flat at
// 9.18 ns (never exposed), AES lowest at low utilization with ~1-2 ns of
// worst-case exposed latency at maximum outstanding requests, ChaCha12/20
// always above the 12.5 ns minimum CAS latency.

// MaxBackToBackCAS is the paper's bound on simultaneous back-to-back CAS
// requests on a DDR4-2400 channel ("we can theoretically have up to 18
// back-to-back CAS requests, provided that there are enough row buffer
// hits").
const MaxBackToBackCAS = 18

// RequestTiming reports the simulated fate of one read in a burst.
type RequestTiming struct {
	IssueNs     float64 // CAS command issue time
	DataReadyNs float64 // data arrives from DRAM (issue + CAS latency)
	KeyReadyNs  float64 // keystream fully generated
	// DecryptLatencyNs is keystream-generation latency measured from issue
	// (Figure 6's y-axis).
	DecryptLatencyNs float64
	// ExposedNs is how long the CPU waits beyond the DRAM latency itself.
	ExposedNs float64
}

// BurstResult summarizes a back-to-back burst simulation.
type BurstResult struct {
	Requests   []RequestTiming
	MaxLatency float64 // max DecryptLatencyNs
	AvgLatency float64
	MaxExposed float64
}

// SimulateBurst runs n back-to-back reads (row-buffer hits on one channel)
// through the cipher engine's counter-injection queue.
func SimulateBurst(s Spec, t dram.Timing, n int) BurstResult {
	if n < 1 {
		n = 1
	}
	burst := t.BurstTransferNs()
	service := float64(s.CountersPer64B)*t.BusClockNs() + s.CycleNs()
	finalStage := s.MaxPipelineDelayNs() - service
	if finalStage < 0 {
		finalStage = 0
	}
	res := BurstResult{Requests: make([]RequestTiming, n)}
	serverFree := 0.0
	for k := 0; k < n; k++ {
		issue := float64(k) * burst
		start := issue
		queued := false
		if serverFree > start {
			start = serverFree
			queued = true
		}
		serviceEnd := start + service
		serverFree = serviceEnd
		keyReady := serviceEnd + finalStage
		if queued {
			// A queued counter set re-crosses the clock-domain boundary
			// behind the previous request's injection: one extra bus clock
			// of synchronizer delay.
			keyReady += t.BusClockNs()
		}
		dataReady := issue + t.CASLatency
		r := &res.Requests[k]
		r.IssueNs = issue
		r.DataReadyNs = dataReady
		r.KeyReadyNs = keyReady
		r.DecryptLatencyNs = keyReady - issue
		if keyReady > dataReady {
			r.ExposedNs = keyReady - dataReady
		}
		if r.DecryptLatencyNs > res.MaxLatency {
			res.MaxLatency = r.DecryptLatencyNs
		}
		if r.ExposedNs > res.MaxExposed {
			res.MaxExposed = r.ExposedNs
		}
		res.AvgLatency += r.DecryptLatencyNs
	}
	res.AvgLatency /= float64(n)
	return res
}

// LatencyPoint is one x/y point of the Figure 6 series.
type LatencyPoint struct {
	Utilization float64 // fraction of peak bandwidth, (0, 1]
	Outstanding int     // back-to-back CAS requests at this utilization
	LatencyNs   float64 // worst-case decryption latency
	ExposedNs   float64 // worst-case exposed latency beyond the CAS time
}

// UtilizationSweep produces the Figure 6 series for one engine: bandwidth
// utilization is swept by varying the number of back-to-back CAS requests
// from 1 to MaxBackToBackCAS.
func UtilizationSweep(s Spec, t dram.Timing) []LatencyPoint {
	points := make([]LatencyPoint, 0, MaxBackToBackCAS)
	for n := 1; n <= MaxBackToBackCAS; n++ {
		r := SimulateBurst(s, t, n)
		points = append(points, LatencyPoint{
			Utilization: float64(n) / float64(MaxBackToBackCAS),
			Outstanding: n,
			LatencyNs:   r.MaxLatency,
			ExposedNs:   r.MaxExposed,
		})
	}
	return points
}

// ZeroExposedLatency reports whether the engine hides its entire keystream
// generation under the DRAM column access at every load level — the
// paper's headline criterion (Figure 5 / Key Idea 2).
func ZeroExposedLatency(s Spec, t dram.Timing) bool {
	for _, p := range UtilizationSweep(s, t) {
		if p.ExposedNs > 0 {
			return false
		}
	}
	return true
}
