package engine

// Figure 7 power/area overhead model.
//
// The paper compares synthesized 45 nm cipher engines against four 45 nm
// Intel CPUs (product-sheet die size and TDP), one engine per memory
// channel, at full and at 20% DRAM bandwidth utilization. The engine cost
// constants below are chosen to be consistent with every number the paper
// states: area overheads about or below 1% everywhere, power below 3%
// except the Atom N280 (up to ~17% at full utilization, under 6% at the
// realistic 20% utilization of Ferdman et al.'s scale-out workloads).

// Platform is one of the comparison CPUs (all 45 nm).
type Platform struct {
	Name     string
	Class    string  // mobile / desktop / high-end desktop / server
	DieMM2   float64 // die area from the product sheet
	TDPWatts float64
	Channels int // memory channels (one cipher engine each)
}

// Platforms lists Figure 7's four comparison CPUs.
var Platforms = []Platform{
	{Name: "Atom N280", Class: "mobile", DieMM2: 26, TDPWatts: 2.5, Channels: 1},
	{Name: "Core i3-330M", Class: "desktop", DieMM2: 81, TDPWatts: 35, Channels: 2},
	{Name: "Core i5-700", Class: "high-end desktop", DieMM2: 296, TDPWatts: 95, Channels: 2},
	{Name: "Xeon W3520", Class: "server", DieMM2: 263, TDPWatts: 130, Channels: 3},
}

// Cost is a synthesized engine's silicon cost at 45 nm.
type Cost struct {
	Name        string
	AreaMM2     float64
	StaticW     float64 // leakage, utilization independent
	DynamicFulW float64 // dynamic power at 100% channel utilization
}

// Engine cost constants (45 nm synthesis model).
var (
	AES128Cost  = Cost{Name: "AES-128", AreaMM2: 0.26, StaticW: 0.05, DynamicFulW: 0.38}
	ChaCha8Cost = Cost{Name: "ChaCha8", AreaMM2: 0.33, StaticW: 0.04, DynamicFulW: 0.35}
)

// PowerW returns one engine's power draw at the given channel utilization
// (dynamic power scales linearly with activity, as the paper scales its
// 20%-utilization estimate).
func (c Cost) PowerW(utilization float64) float64 {
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	return c.StaticW + utilization*c.DynamicFulW
}

// Overhead is one Figure 7 bar group.
type Overhead struct {
	Platform    Platform
	Engine      Cost
	Utilization float64
	AreaPct     float64 // engine area (all channels) as % of die
	PowerPct    float64 // engine power (all channels) as % of TDP
}

// ComputeOverhead evaluates one platform/engine/utilization combination,
// with one engine instance per memory channel.
func ComputeOverhead(p Platform, c Cost, utilization float64) Overhead {
	n := float64(p.Channels)
	return Overhead{
		Platform:    p,
		Engine:      c,
		Utilization: utilization,
		AreaPct:     100 * n * c.AreaMM2 / p.DieMM2,
		PowerPct:    100 * n * c.PowerW(utilization) / p.TDPWatts,
	}
}

// Figure7 computes the full figure: every platform x {AES-128, ChaCha8} x
// {100%, 20%} utilization.
func Figure7() []Overhead {
	var out []Overhead
	for _, p := range Platforms {
		for _, c := range []Cost{AES128Cost, ChaCha8Cost} {
			for _, u := range []float64{1.0, 0.2} {
				out = append(out, ComputeOverhead(p, c, u))
			}
		}
	}
	return out
}
