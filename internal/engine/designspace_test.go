package engine

import (
	"testing"

	"coldboot/internal/aes"
	"coldboot/internal/chacha"
	"coldboot/internal/dram"
)

func TestTimeMultiplexedTradeoff(t *testing.T) {
	// §IV-B: multiplexing a single round unit lowers power and area but
	// also throughput; latency is unchanged.
	pip := PipelinedPoint(AESEngine(aes.AES128), AES128Cost)
	tm := TimeMultiplexedPoint(AESEngine(aes.AES128), AES128Cost)
	if tm.Cost.AreaMM2 >= pip.Cost.AreaMM2 {
		t.Error("multiplexed design not smaller")
	}
	if tm.Cost.PowerW(1) >= pip.Cost.PowerW(1) {
		t.Error("multiplexed design not lower power")
	}
	if tm.ThroughputGBs() >= pip.ThroughputGBs() {
		t.Error("multiplexed design not slower")
	}
	if tm.MaxPipelineDelayNs() != pip.MaxPipelineDelayNs() {
		t.Error("multiplexing changed latency; it only changes issue rate")
	}
}

func TestPipelinedDesignsSustainDDR4(t *testing.T) {
	// The paper's evaluated engines keep up with the full DDR4-2400 bus.
	for _, p := range DesignSpace() {
		if p.Design == Pipelined && !p.SustainsBandwidth(dram.DDR4_2400) {
			t.Errorf("%s pipelined cannot sustain DDR4-2400", p.Spec.Name)
		}
	}
}

func TestTimeMultiplexedCannotSustainPeak(t *testing.T) {
	// The trade-off is real: the cheap designs cannot feed a saturated
	// channel...
	tmAES := TimeMultiplexedPoint(AESEngine(aes.AES128), AES128Cost)
	if tmAES.SustainsBandwidth(dram.DDR4_2400) {
		t.Error("time-multiplexed AES-128 claims to sustain peak bandwidth")
	}
	// ...but comfortably cover the ~15% utilization the paper cites for
	// data-intensive mobile workloads (Ferdman et al.).
	if tmAES.ThroughputGBs() < 0.15*dram.DDR4_2400.PeakBandwidthGBs() {
		t.Error("time-multiplexed AES-128 cannot even cover mobile workloads")
	}
}

func TestMobileRecommendation(t *testing.T) {
	// At mobile utilization, the recommendation is a time-multiplexed
	// (low-power) design that still hides under the CAS latency.
	p, ok := MobileRecommendation(dram.DDR4_2400, 0.15)
	if !ok {
		t.Fatal("no mobile design point qualifies")
	}
	if p.Design != TimeMultiplexed {
		t.Errorf("mobile recommendation is %v; expected the low-power design", p.Design)
	}
	if p.MaxPipelineDelayNs() > dram.DDR4_2400.CASLatency {
		t.Error("recommended design does not hide under the CAS latency")
	}
	// At full bandwidth the recommendation must fall back to a pipelined
	// design.
	full, ok := MobileRecommendation(dram.DDR4_2400, 1.0)
	if !ok {
		t.Fatal("no full-bandwidth design qualifies")
	}
	if full.Design != Pipelined {
		t.Errorf("full-bandwidth recommendation is %v", full.Design)
	}
}

func TestMobileRecommendationPowerSaving(t *testing.T) {
	mobile, _ := MobileRecommendation(dram.DDR4_2400, 0.15)
	full, _ := MobileRecommendation(dram.DDR4_2400, 1.0)
	if mobile.Cost.PowerW(1) >= full.Cost.PowerW(1) {
		t.Error("mobile design saves no power over the full-bandwidth design")
	}
	// On the Atom platform the saving is the difference between ~17% and
	// a few percent of TDP.
	atom := Platforms[0]
	mobilePct := 100 * mobile.Cost.PowerW(0.15) / atom.TDPWatts
	if mobilePct > 3 {
		t.Errorf("mobile design costs %.1f%% of Atom TDP; expected < 3%%", mobilePct)
	}
}

func TestDesignSpaceComplete(t *testing.T) {
	ds := DesignSpace()
	if len(ds) != 4 {
		t.Fatalf("design space has %d points", len(ds))
	}
	seen := map[string]bool{}
	for _, p := range ds {
		seen[p.Spec.Name+"/"+p.Design.String()] = true
		if p.IssueIntervalCycles < 1 {
			t.Errorf("%s: issue interval %d", p.Spec.Name, p.IssueIntervalCycles)
		}
	}
	if !seen["AES-128/pipelined"] || !seen["ChaCha8/time-multiplexed"] {
		t.Error("expected design points missing")
	}
}

func TestChaChaTimeMultiplexedLoop(t *testing.T) {
	tm := TimeMultiplexedPoint(ChaChaEngine(chacha.Rounds8), ChaCha8Cost)
	// 18 cycles total, 3 fixed: 15-cycle loop.
	if tm.IssueIntervalCycles != 15 {
		t.Errorf("ChaCha8 TM loop = %d cycles, want 15", tm.IssueIntervalCycles)
	}
}
