package engine_test

import (
	"fmt"

	"coldboot/internal/chacha"
	"coldboot/internal/dram"
	"coldboot/internal/engine"
)

// Example reproduces the paper's Key Idea 2 in a few lines: ChaCha8's
// keystream pipeline hides entirely under the DDR4 column access, so
// strongly encrypted DRAM has zero exposed latency.
func Example() {
	c8 := engine.ChaChaEngine(chacha.Rounds8)
	fmt.Printf("ChaCha8 pipeline: %.2f ns\n", c8.MaxPipelineDelayNs())
	fmt.Printf("DDR4 minimum CAS: %.2f ns\n", dram.DDR4_2400.CASLatency)
	fmt.Println("zero exposed latency:", engine.ZeroExposedLatency(c8, dram.DDR4_2400))
	// Output:
	// ChaCha8 pipeline: 9.18 ns
	// DDR4 minimum CAS: 12.50 ns
	// zero exposed latency: true
}

// ExampleTableII prints the paper's engine table.
func ExampleTableII() {
	for _, s := range engine.TableII() {
		fmt.Printf("%-8s %.2f GHz  %2d cycles  %5.2f ns\n",
			s.Name, s.FreqGHz, s.CyclesPer64B, s.MaxPipelineDelayNs())
	}
	// Output:
	// AES-128  2.40 GHz  13 cycles   5.42 ns
	// AES-256  2.40 GHz  17 cycles   7.08 ns
	// ChaCha8  1.96 GHz  18 cycles   9.18 ns
	// ChaCha12 1.96 GHz  26 cycles  13.27 ns
	// ChaCha20 1.96 GHz  42 cycles  21.43 ns
}

// ExampleComputeOverhead evaluates Figure 7's worst case: an AES-128
// engine on the little Atom N280 at full memory utilization.
func ExampleComputeOverhead() {
	atom := engine.Platforms[0]
	o := engine.ComputeOverhead(atom, engine.AES128Cost, 1.0)
	fmt.Printf("area +%.1f%%, power +%.1f%%\n", o.AreaPct, o.PowerPct)
	o20 := engine.ComputeOverhead(atom, engine.AES128Cost, 0.2)
	fmt.Printf("at 20%% utilization: power +%.1f%%\n", o20.PowerPct)
	// Output:
	// area +1.0%, power +17.2%
	// at 20% utilization: power +5.0%
}

// ExampleNewChaChaScrambler drops a strong cipher into the scrambler
// socket.
func ExampleNewChaChaScrambler() {
	s := engine.NewChaChaScrambler(chacha.Rounds8, 0xB007_5EED)
	line := make([]byte, 64)
	copy(line, "a cache line of sensitive data")
	enc := make([]byte, 64)
	s.Scramble(enc, line, 0x1000)
	dec := make([]byte, 64)
	s.Descramble(dec, enc, 0x1000)
	fmt.Println("round trip:", string(dec[:30]))
	fmt.Println("keystream space:", s.NumKeys() > 1<<30)
	// Output:
	// round trip: a cache line of sensitive data
	// keystream space: true
}
