package engine

import (
	"bytes"
	"testing"

	"coldboot/internal/aes"
	"coldboot/internal/bitutil"
	"coldboot/internal/chacha"
	"coldboot/internal/core"
	"coldboot/internal/scramble"
	"coldboot/internal/workload"
)

func encryptedScramblers() []scramble.Scrambler {
	return []scramble.Scrambler{
		NewAESCTRScrambler(aes.AES128, 7),
		NewAESCTRScrambler(aes.AES256, 7),
		NewChaChaScrambler(chacha.Rounds8, 7),
		NewChaChaScrambler(chacha.Rounds20, 7),
	}
}

func TestEncryptedScramblersRoundTrip(t *testing.T) {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 3)
	}
	for _, s := range encryptedScramblers() {
		enc := make([]byte, len(data))
		s.Scramble(enc, data, 1<<16)
		if bytes.Equal(enc, data) {
			t.Errorf("%s: identity encryption", s.Name())
		}
		dec := make([]byte, len(data))
		s.Descramble(dec, enc, 1<<16)
		if !bytes.Equal(dec, data) {
			t.Errorf("%s: round trip failed", s.Name())
		}
	}
}

func TestEncryptedKeystreamUniquePerBlock(t *testing.T) {
	// Unlike the 4096-key LFSR scrambler, every block gets its own
	// keystream: identical plaintext blocks produce unrelated ciphertext,
	// leaving zero correlations (the Figure 3 problem solved).
	for _, s := range encryptedScramblers() {
		seen := make(map[string]bool)
		for off := uint64(0); off < 1<<20; off += 64 {
			k := string(s.KeyAt(off))
			if seen[k] {
				t.Fatalf("%s: keystream repeats within 1 MB", s.Name())
			}
			seen[k] = true
		}
	}
}

func TestEncryptedKeyAtMatchesScramble(t *testing.T) {
	for _, s := range encryptedScramblers() {
		zeros := make([]byte, 64)
		out := make([]byte, 64)
		s.Scramble(out, zeros, 128)
		if !bytes.Equal(out, s.KeyAt(128)) {
			t.Errorf("%s: KeyAt disagrees with Scramble-of-zeros", s.Name())
		}
	}
}

func TestEncryptedReseedChangesEverything(t *testing.T) {
	s := NewChaChaScrambler(chacha.Rounds8, 1)
	k1 := s.KeyAt(0)
	s.Reseed(2)
	if bytes.Equal(k1, s.KeyAt(0)) {
		t.Error("reseed did not change the keystream")
	}
	if s.Seed() != 2 {
		t.Error("seed not recorded")
	}
}

func TestEncryptedOutputLooksRandom(t *testing.T) {
	// The cipher engines also satisfy the original electrical purpose.
	s := NewChaChaScrambler(chacha.Rounds8, 3)
	zeros := make([]byte, 1<<16)
	out := make([]byte, len(zeros))
	s.Scramble(out, zeros, 0)
	if f := bitutil.OnesFraction(out); f < 0.49 || f > 0.51 {
		t.Errorf("ones fraction %f", f)
	}
	if e := bitutil.Entropy(out); e < 7.9 {
		t.Errorf("entropy %f", e)
	}
}

func TestColdBootAttackFailsAgainstEncryptedMemory(t *testing.T) {
	// The negative control that proves the defense: run the full DDR4
	// attack machinery against ChaCha8-encrypted memory containing a real
	// AES key schedule. The miner finds (essentially) nothing — there is
	// no key reuse and the keystream satisfies no litmus invariants — and
	// no master key is recovered.
	plain := make([]byte, 1<<20)
	workload.Fill(plain, 5, workload.LightSystem)
	master := make([]byte, 32)
	for i := range master {
		master[i] = byte(i * 7)
	}
	copy(plain[300000:], aes.ExpandKeyBytes(master))
	s := NewChaChaScrambler(chacha.Rounds8, 99)
	dump := make([]byte, len(plain))
	s.Scramble(dump, plain, 0)

	res, err := core.Attack(dump, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) != 0 {
		t.Fatalf("attack recovered %d keys from encrypted memory", len(res.Keys))
	}
	// The litmus miner's yield collapses: with no structured keystream,
	// passing blocks are chance events.
	if res.Mine.BlocksPassed > res.Mine.BlocksScanned/1000 {
		t.Errorf("litmus passed %d/%d blocks on encrypted memory",
			res.Mine.BlocksPassed, res.Mine.BlocksScanned)
	}
}

func TestEncryptedScramblerNames(t *testing.T) {
	if got := NewChaChaScrambler(8, 1).Name(); got != "enc-ChaCha08" {
		t.Errorf("name = %q", got)
	}
	if got := NewAESCTRScrambler(aes.AES128, 1).Name(); got != "enc-AES-128" {
		t.Errorf("name = %q", got)
	}
}

func TestFactories(t *testing.T) {
	if AESCTRFactory(aes.AES128)(5).Seed() != 5 {
		t.Error("AES factory seed wrong")
	}
	if ChaChaFactory(8)(6).Seed() != 6 {
		t.Error("ChaCha factory seed wrong")
	}
}

func BenchmarkChaCha8Scramble64B(b *testing.B) {
	s := NewChaChaScrambler(chacha.Rounds8, 1)
	buf := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		s.Scramble(buf, buf, uint64(i%1024)*64)
	}
}

func BenchmarkAESCTRScramble64B(b *testing.B) {
	s := NewAESCTRScrambler(aes.AES128, 1)
	buf := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		s.Scramble(buf, buf, uint64(i%1024)*64)
	}
}

func TestFixedNonceBusSnoopingWeakness(t *testing.T) {
	// The paper's stated limitation (§IV-B threat model): the per-address
	// nonce/counter is FIXED across writes, so an attacker snooping the
	// bus sees two writes to the same address encrypted with the SAME
	// keystream — their ciphertext XOR equals the plaintext XOR, and a
	// recorded ciphertext can be replayed undetected. Cold boot is closed;
	// bus snooping and replay are not (that is what SGX's counters and
	// MACs buy, at the performance cost the paper is avoiding).
	s := NewChaChaScrambler(chacha.Rounds8, 123)
	p1 := bytes.Repeat([]byte("first secret at this address! "), 3)[:64]
	p2 := bytes.Repeat([]byte("second secret, same address! "), 3)[:64]
	c1 := make([]byte, 64)
	c2 := make([]byte, 64)
	s.Scramble(c1, p1, 0x1000)
	s.Scramble(c2, p2, 0x1000)
	for i := range c1 {
		if c1[i]^c2[i] != p1[i]^p2[i] {
			t.Fatal("keystream differed across writes; fixed-nonce model broken")
		}
	}
	// Replay: the old ciphertext decrypts cleanly after being restored.
	replay := make([]byte, 64)
	s.Descramble(replay, c1, 0x1000)
	if !bytes.Equal(replay, p1) {
		t.Fatal("replayed ciphertext did not decrypt — replay should go undetected")
	}
}

func TestDifferentAddressesNeverShareKeystream(t *testing.T) {
	// ...but across ADDRESSES the keystream is unique, which is the cold
	// boot guarantee (no ECB-style correlations in a memory snapshot).
	s := NewAESCTRScrambler(aes.AES256, 123)
	zero := make([]byte, 64)
	a := make([]byte, 64)
	b := make([]byte, 64)
	s.Scramble(a, zero, 0)
	s.Scramble(b, zero, 64)
	if bytes.Equal(a, b) {
		t.Fatal("adjacent addresses share keystream")
	}
}
