package engine

import (
	"fmt"

	"coldboot/internal/aes"
	"coldboot/internal/dram"
)

// Design-space exploration (paper §IV-B, "Speed vs Area and Power"):
//
//	"Both AES and ChaCha apply the same round function multiple times on a
//	 block of data. This gives us the option to have a single hardware unit
//	 for a round function and time-multiplex it. Such design will result in
//	 lower throughput, but also lower power. ... In the designs we
//	 evaluated, we have dedicated units for each round [pipelined]."
//
// and the mobile note:
//
//	"For low-power mobile devices, more energy-efficient memory encryption
//	 can be achieved by using cipher engines that have much lower
//	 performance ... as mobile CPUs are not likely to produce a large
//	 number of back-to-back CAS requests."
//
// Design captures that axis: the paper's evaluated engines are the
// Pipelined points; TimeMultiplexed trades throughput for area/power.

// Design selects the hardware organization of a cipher engine.
type Design int

// Engine organizations.
const (
	// Pipelined instantiates one hardware unit per round stage: a new
	// counter can enter every cycle (what Table II synthesizes).
	Pipelined Design = iota
	// TimeMultiplexed instantiates a single round unit and loops the block
	// through it: 1/rounds the area and dynamic power of the round logic,
	// but a new counter can only enter every `rounds` cycles.
	TimeMultiplexed
)

func (d Design) String() string {
	switch d {
	case Pipelined:
		return "pipelined"
	case TimeMultiplexed:
		return "time-multiplexed"
	}
	return fmt.Sprintf("Design(%d)", int(d))
}

// DesignPoint is one point in the engine design space.
type DesignPoint struct {
	Spec   Spec
	Design Design
	// IssueIntervalCycles is the minimum spacing between counter
	// injections: 1 when pipelined, the loop length when multiplexed.
	IssueIntervalCycles int
	// Cost is the silicon cost at this design point.
	Cost Cost
}

// PipelinedPoint wraps a Table II engine with its evaluated (pipelined)
// cost.
func PipelinedPoint(s Spec, c Cost) DesignPoint {
	return DesignPoint{Spec: s, Design: Pipelined, IssueIntervalCycles: 1, Cost: c}
}

// TimeMultiplexedPoint derives the single-round-unit variant of an engine:
// the pipeline registers collapse into one loop stage, shrinking the round
// logic by ~the round count while keeping the fixed stages; the issue
// interval grows to the full loop length.
func TimeMultiplexedPoint(s Spec, pipelined Cost) DesignPoint {
	const fixedStages = 3 // counter load, key add, output — not multiplexed
	loop := s.CyclesPer64B - fixedStages
	if loop < 1 {
		loop = 1
	}
	// Round logic dominates area and dynamic power; fixed overhead ~20%.
	scale := 1.0/float64(loop) + 0.2
	if scale > 1 {
		scale = 1
	}
	return DesignPoint{
		Spec:                s,
		Design:              TimeMultiplexed,
		IssueIntervalCycles: loop,
		Cost: Cost{
			Name:        pipelined.Name + "-tm",
			AreaMM2:     pipelined.AreaMM2 * scale,
			StaticW:     pipelined.StaticW * scale,
			DynamicFulW: pipelined.DynamicFulW * scale,
		},
	}
}

// ThroughputGBs returns the design point's peak keystream throughput.
func (p DesignPoint) ThroughputGBs() float64 {
	bytesPerIssue := 64.0 / float64(p.Spec.CountersPer64B)
	issuesPerSec := p.Spec.FreqGHz / float64(p.IssueIntervalCycles) // G-issues/s
	return bytesPerIssue * issuesPerSec
}

// SustainsBandwidth reports whether the design point's keystream throughput
// covers a memory channel's peak bandwidth.
func (p DesignPoint) SustainsBandwidth(t dram.Timing) bool {
	return p.ThroughputGBs() >= t.PeakBandwidthGBs()
}

// MaxPipelineDelayNs: latency is unchanged by multiplexing (the block still
// passes every stage once).
func (p DesignPoint) MaxPipelineDelayNs() float64 { return p.Spec.MaxPipelineDelayNs() }

// DesignSpace enumerates the paper's evaluated pipelined engines together
// with their time-multiplexed siblings for AES-128 and ChaCha8 (the two
// recommended ciphers).
func DesignSpace() []DesignPoint {
	return []DesignPoint{
		PipelinedPoint(AESEngine(aes.AES128), AES128Cost),
		TimeMultiplexedPoint(AESEngine(aes.AES128), AES128Cost),
		PipelinedPoint(ChaChaEngine(8), ChaCha8Cost),
		TimeMultiplexedPoint(ChaChaEngine(8), ChaCha8Cost),
	}
}

// MobileRecommendation picks the cheapest design point that still hides its
// pipeline latency under the platform's DRAM access and sustains the given
// fraction of channel bandwidth — the paper's mobile trade-off made
// concrete. Returns false if nothing qualifies.
func MobileRecommendation(t dram.Timing, bandwidthFraction float64) (DesignPoint, bool) {
	var best DesignPoint
	found := false
	for _, p := range DesignSpace() {
		if p.MaxPipelineDelayNs() > t.CASLatency {
			continue
		}
		if p.ThroughputGBs() < bandwidthFraction*t.PeakBandwidthGBs() {
			continue
		}
		if !found || p.Cost.PowerW(1) < best.Cost.PowerW(1) {
			best = p
			found = true
		}
	}
	return best, found
}
