package engine

import (
	"encoding/binary"
	"math"

	"coldboot/internal/aes"
	"coldboot/internal/bitutil"
	"coldboot/internal/chacha"
	"coldboot/internal/memctrl"
	"coldboot/internal/scramble"
)

// Encrypted memory: drop-in scramble.Scrambler implementations backed by
// strong stream ciphers, keyed at boot exactly like the LFSR scramblers —
// but with a keystream that is unique per memory block (physical address as
// the counter) and cryptographically unpredictable, which closes the cold
// boot attack entirely (Section IV-B's scheme).
//
// The threat-model caveats from the paper carry over: the per-address
// nonce/counter is fixed across writes, so bus snooping and replay attacks
// are NOT prevented — only data-at-rest confidentiality (cold boot) is.

// expandSeed derives cipher key material and a nonce from the boot seed via
// splitmix64 (a boot-time TRNG stands in for this in real hardware).
func expandSeed(seed uint64, keyLen int) (key []byte, nonce uint64) {
	mix := func(x uint64) uint64 {
		x += 0x9E3779B97F4A7C15
		x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
		x = (x ^ (x >> 27)) * 0x94D049BB133111EB
		return x ^ (x >> 31)
	}
	key = make([]byte, keyLen)
	s := seed
	for off := 0; off < keyLen; off += 8 {
		s = mix(s)
		binary.LittleEndian.PutUint64(key[off:], s)
	}
	return key, mix(s)
}

// ksCache is a one-entry keystream chunk cache. The bus access patterns the
// simulator generates — a Scramble immediately followed by a KeyAt probe, or
// repeated transactions against the same line — recompute the same 64-byte
// keystream chunk; caching it skips the cipher core entirely on a hit.
// Scramblers are not goroutine-safe (they model one memory channel), so the
// cache needs no locking.
type ksCache struct {
	block uint64 // 64-byte block index the cached chunk belongs to
	valid bool
	ks    [scramble.BlockBytes]byte
}

// AESCTRScrambler encrypts memory blocks with AES in counter mode: the
// block's physical address provides the four counter values, a boot-time
// key and nonce do the rest.
type AESCTRScrambler struct {
	variant aes.Variant
	seed    uint64
	ctr     *aes.CTR
	cache   ksCache
}

// NewAESCTRScrambler builds an AES-CTR memory encryptor.
func NewAESCTRScrambler(v aes.Variant, seed uint64) *AESCTRScrambler {
	s := &AESCTRScrambler{variant: v}
	s.Reseed(seed)
	return s
}

// Reseed derives a fresh key and nonce from the boot seed.
func (s *AESCTRScrambler) Reseed(seed uint64) {
	s.seed = seed
	key, nonce := expandSeed(seed, s.variant.KeyBytes())
	ctr, err := aes.NewCTR(key, nonce)
	if err != nil {
		panic(err) // key length is correct by construction
	}
	s.ctr = ctr
	s.cache.valid = false
}

// keystream64 returns the cached 64-byte keystream chunk for the block at
// off, generating and caching it on a miss.
func (s *AESCTRScrambler) keystream64(off uint64) *[scramble.BlockBytes]byte {
	blk := off / scramble.BlockBytes
	if !s.cache.valid || s.cache.block != blk {
		s.ctr.Keystream(s.cache.ks[:], off/16) // the counter advances once per 16 bytes
		s.cache.block = blk
		s.cache.valid = true
	}
	return &s.cache.ks
}

// Seed returns the boot seed.
func (s *AESCTRScrambler) Seed() uint64 { return s.seed }

// NumKeys reports an effectively unbounded keystream space.
func (s *AESCTRScrambler) NumKeys() int { return math.MaxInt32 }

// Name identifies the scheme.
func (s *AESCTRScrambler) Name() string { return "enc-" + s.variant.String() }

// KeyAt returns a copy of the 64-byte keystream for the block at off
// (copied so the result stays valid across Reseed; the chunk itself comes
// from the per-scrambler cache).
func (s *AESCTRScrambler) KeyAt(off uint64) []byte {
	ks := make([]byte, scramble.BlockBytes)
	copy(ks, s.keystream64(off)[:])
	return ks
}

// Scramble encrypts src into dst (may alias) for the block-aligned offset.
func (s *AESCTRScrambler) Scramble(dst, src []byte, off uint64) {
	checkArgs(dst, src, off)
	if len(src) == scramble.BlockBytes {
		// Single-line transaction: fold in the cached keystream chunk.
		bitutil.XORBlock64(dst, src, s.keystream64(off)[:])
		return
	}
	// Four counters per 64-byte block: counter = byte offset / 16.
	s.ctr.XORKeyStream(dst, src, off/16)
}

// Descramble decrypts (identical to Scramble for a stream cipher).
func (s *AESCTRScrambler) Descramble(dst, src []byte, off uint64) {
	s.Scramble(dst, src, off)
}

// ChaChaScrambler encrypts memory blocks with ChaCha: one counter per
// 64-byte block — a single injection per memory transaction, the property
// that keeps it queue-free at full bandwidth (Figure 6).
type ChaChaScrambler struct {
	rounds int
	seed   uint64
	cipher *chacha.Cipher
	cache  ksCache
}

// NewChaChaScrambler builds a ChaCha memory encryptor (8, 12, or 20
// rounds; the paper recommends ChaCha8).
func NewChaChaScrambler(rounds int, seed uint64) *ChaChaScrambler {
	s := &ChaChaScrambler{rounds: rounds}
	s.Reseed(seed)
	return s
}

// Reseed derives a fresh key and nonce from the boot seed.
func (s *ChaChaScrambler) Reseed(seed uint64) {
	s.seed = seed
	key, nonce := expandSeed(seed, 32)
	c, err := chacha.New(s.rounds, key, nonce)
	if err != nil {
		panic(err) // parameters are correct by construction
	}
	s.cipher = c
	s.cache.valid = false
}

// keystream64 returns the cached keystream block for the line at off,
// generating and caching it on a miss.
func (s *ChaChaScrambler) keystream64(off uint64) *[scramble.BlockBytes]byte {
	blk := off / scramble.BlockBytes
	if !s.cache.valid || s.cache.block != blk {
		s.cipher.Block(blk, &s.cache.ks)
		s.cache.block = blk
		s.cache.valid = true
	}
	return &s.cache.ks
}

// Seed returns the boot seed.
func (s *ChaChaScrambler) Seed() uint64 { return s.seed }

// NumKeys reports an effectively unbounded keystream space.
func (s *ChaChaScrambler) NumKeys() int { return math.MaxInt32 }

// Name identifies the scheme.
func (s *ChaChaScrambler) Name() string {
	return "enc-ChaCha" + string(rune('0'+s.rounds/10)) + string(rune('0'+s.rounds%10))
}

// KeyAt returns a copy of the 64-byte keystream for the block at off
// (copied so the result stays valid across Reseed; the block itself comes
// from the per-scrambler cache).
func (s *ChaChaScrambler) KeyAt(off uint64) []byte {
	out := make([]byte, scramble.BlockBytes)
	copy(out, s.keystream64(off)[:])
	return out
}

// Scramble encrypts src into dst (may alias) for the block-aligned offset.
func (s *ChaChaScrambler) Scramble(dst, src []byte, off uint64) {
	checkArgs(dst, src, off)
	if len(src) == scramble.BlockBytes {
		// Single-line transaction: fold in the cached keystream block.
		bitutil.XORBlock64(dst, src, s.keystream64(off)[:])
		return
	}
	s.cipher.XORKeyStream(dst, src, off/scramble.BlockBytes)
}

// Descramble decrypts (identical to Scramble for a stream cipher).
func (s *ChaChaScrambler) Descramble(dst, src []byte, off uint64) {
	s.Scramble(dst, src, off)
}

func checkArgs(dst, src []byte, off uint64) {
	if len(dst) != len(src) || len(src)%scramble.BlockBytes != 0 {
		panic("engine: encrypted scrambler length mismatch or partial block")
	}
	if off%scramble.BlockBytes != 0 {
		panic("engine: encrypted scrambler offset not block aligned")
	}
}

// AESCTRFactory returns a memctrl.ScramblerFactory for AES-CTR memory
// encryption — the drop-in replacement experiment.
func AESCTRFactory(v aes.Variant) memctrl.ScramblerFactory {
	return func(seed uint64) scramble.Scrambler { return NewAESCTRScrambler(v, seed) }
}

// ChaChaFactory returns a memctrl.ScramblerFactory for ChaCha memory
// encryption.
func ChaChaFactory(rounds int) memctrl.ScramblerFactory {
	return func(seed uint64) scramble.Scrambler { return NewChaChaScrambler(rounds, seed) }
}

// Interface conformance checks.
var (
	_ scramble.Scrambler = (*AESCTRScrambler)(nil)
	_ scramble.Scrambler = (*ChaChaScrambler)(nil)
)
