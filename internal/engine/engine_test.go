package engine

import (
	"math"
	"testing"

	"coldboot/internal/aes"
	"coldboot/internal/chacha"
	"coldboot/internal/dram"
)

func TestTableII(t *testing.T) {
	// Pin the paper's Table II exactly: frequency, cycles per 64B, and
	// maximum pipeline delay.
	wants := []struct {
		name   string
		freq   float64
		cycles int
		delay  float64
	}{
		{"AES-128", 2.4, 13, 5.42},
		{"AES-256", 2.4, 17, 7.08},
		{"ChaCha8", 1.96, 18, 9.18},
		{"ChaCha12", 1.96, 26, 13.27},
		{"ChaCha20", 1.96, 42, 21.43},
	}
	rows := TableII()
	if len(rows) != len(wants) {
		t.Fatalf("Table II has %d rows", len(rows))
	}
	for i, w := range wants {
		got := rows[i]
		if got.Name != w.name || got.FreqGHz != w.freq || got.CyclesPer64B != w.cycles {
			t.Errorf("row %d = %+v, want %+v", i, got, w)
		}
		if d := got.MaxPipelineDelayNs(); math.Abs(d-w.delay) > 0.01 {
			t.Errorf("%s pipeline delay = %.2f ns, want %.2f", w.name, d, w.delay)
		}
	}
}

func TestAESThroughputMatchesPaper(t *testing.T) {
	// Section IV-B: the 1-cycle-per-round AES design delivers ~39 GB/s.
	got := AESEngine(aes.AES128).ThroughputGBs()
	if got < 37 || got > 40 {
		t.Errorf("AES-128 throughput = %.1f GB/s, want ~39 (paper)", got)
	}
}

func TestChaCha8ZeroExposedLatencyAtAllLoads(t *testing.T) {
	// The headline Key Idea 2: ChaCha8 completes under the minimum DDR4
	// CAS latency at every utilization.
	if !ZeroExposedLatency(ChaChaEngine(chacha.Rounds8), dram.DDR4_2400) {
		t.Error("ChaCha8 has exposed latency; the paper's headline result is violated")
	}
	// And its latency stays flat: no queueing ever.
	sweep := UtilizationSweep(ChaChaEngine(chacha.Rounds8), dram.DDR4_2400)
	first := sweep[0].LatencyNs
	for _, p := range sweep {
		if math.Abs(p.LatencyNs-first) > 1e-9 {
			t.Errorf("ChaCha8 latency not flat: %.2f at u=%.2f", p.LatencyNs, p.Utilization)
		}
	}
	if first < 9.0 || first > 9.4 {
		t.Errorf("ChaCha8 flat latency = %.2f ns, want ~9.18", first)
	}
}

func TestAES128LowLatencyAtLowLoadSmallExposureAtPeak(t *testing.T) {
	sweep := UtilizationSweep(AESEngine(aes.AES128), dram.DDR4_2400)
	low := sweep[0]
	if low.LatencyNs > 6 {
		t.Errorf("AES-128 low-load latency = %.2f ns, want ~5.4", low.LatencyNs)
	}
	if low.ExposedNs != 0 {
		t.Errorf("AES-128 exposed at low load: %.2f ns", low.ExposedNs)
	}
	peak := sweep[len(sweep)-1]
	// The paper: worst case ~1.3 ns exposure under maximum back-to-back
	// CAS. Our model must show a small positive exposure of that order.
	if peak.ExposedNs <= 0 {
		t.Error("AES-128 shows no queueing penalty at peak load")
	}
	if peak.ExposedNs > 3 {
		t.Errorf("AES-128 peak exposure = %.2f ns, want ~1-2", peak.ExposedNs)
	}
}

func TestAESChaChaCrossover(t *testing.T) {
	// Figure 6's shape: AES-128 beats ChaCha8 at low utilization and loses
	// at high utilization.
	a := UtilizationSweep(AESEngine(aes.AES128), dram.DDR4_2400)
	c := UtilizationSweep(ChaChaEngine(chacha.Rounds8), dram.DDR4_2400)
	if a[0].LatencyNs >= c[0].LatencyNs {
		t.Error("AES-128 not faster at low load")
	}
	last := len(a) - 1
	if a[last].LatencyNs <= c[last].LatencyNs {
		t.Error("ChaCha8 not faster at peak load")
	}
	crossover := -1
	for i := range a {
		if a[i].LatencyNs > c[i].LatencyNs {
			crossover = i
			break
		}
	}
	if crossover < 2 {
		t.Errorf("crossover at index %d; expected AES to win for a meaningful low-load range", crossover)
	}
}

func TestChaCha12And20ExceedCASLatency(t *testing.T) {
	// Figure 6 / Table II: ChaCha12 (13.27 ns) and ChaCha20 (21.42 ns)
	// cannot hide under the 12.5 ns minimum CAS latency.
	for _, rounds := range []int{chacha.Rounds12, chacha.Rounds20} {
		if ZeroExposedLatency(ChaChaEngine(rounds), dram.DDR4_2400) {
			t.Errorf("ChaCha%d claims zero exposed latency; must exceed 12.5 ns", rounds)
		}
	}
}

func TestAES256ViableButSlowerThanAES128(t *testing.T) {
	a128 := SimulateBurst(AESEngine(aes.AES128), dram.DDR4_2400, MaxBackToBackCAS)
	a256 := SimulateBurst(AESEngine(aes.AES256), dram.DDR4_2400, MaxBackToBackCAS)
	if a256.MaxExposed <= a128.MaxExposed {
		t.Error("AES-256 should expose more latency than AES-128 at peak")
	}
	if a256.MaxExposed > 5 {
		t.Errorf("AES-256 peak exposure = %.2f ns; should remain small", a256.MaxExposed)
	}
}

func TestSimulateBurstMonotonicQueue(t *testing.T) {
	s := AESEngine(aes.AES128)
	prev := 0.0
	for n := 1; n <= MaxBackToBackCAS; n++ {
		r := SimulateBurst(s, dram.DDR4_2400, n)
		if r.MaxLatency < prev-1e-9 {
			t.Fatalf("max latency decreased at burst %d", n)
		}
		prev = r.MaxLatency
	}
}

func TestSimulateBurstDegenerateInput(t *testing.T) {
	r := SimulateBurst(ChaChaEngine(8), dram.DDR4_2400, 0)
	if len(r.Requests) != 1 {
		t.Error("n<1 should clamp to a single request")
	}
}

func TestAllDDR4GradesCoveredByChaCha8(t *testing.T) {
	// JESD79-4 CAS latencies all lie in [12.5, 15.01]; ChaCha8's 9.18 ns
	// pipeline hides under every compliant grade.
	for _, timing := range []dram.Timing{dram.DDR4_2133, dram.DDR4_2400} {
		if !ZeroExposedLatency(ChaChaEngine(chacha.Rounds8), timing) {
			t.Errorf("ChaCha8 exposed on %s", timing.Name)
		}
	}
}

func TestFigure7Overheads(t *testing.T) {
	// Pin the paper's stated results: area about or below ~1% everywhere;
	// power below 3% except the Atom (≈17% full, <6% at 20% utilization).
	for _, o := range Figure7() {
		if o.AreaPct > 1.3 {
			t.Errorf("%s/%s: area overhead %.2f%% too high", o.Platform.Name, o.Engine.Name, o.AreaPct)
		}
		if o.Platform.Name == "Atom N280" {
			if o.Utilization == 1.0 && (o.PowerPct < 10 || o.PowerPct > 18) {
				t.Errorf("Atom full-util power = %.1f%%, want ~17%%", o.PowerPct)
			}
			if o.Utilization == 0.2 && o.PowerPct > 6 {
				t.Errorf("Atom 20%%-util power = %.1f%%, want < 6%%", o.PowerPct)
			}
		} else if o.PowerPct > 3 {
			t.Errorf("%s/%s/u=%.1f: power overhead %.2f%% exceeds 3%%",
				o.Platform.Name, o.Engine.Name, o.Utilization, o.PowerPct)
		}
	}
}

func TestFigure7Completeness(t *testing.T) {
	rows := Figure7()
	if len(rows) != 4*2*2 {
		t.Errorf("Figure 7 has %d bars, want 16", len(rows))
	}
}

func TestPowerClamping(t *testing.T) {
	c := AES128Cost
	if c.PowerW(-1) != c.StaticW {
		t.Error("negative utilization not clamped")
	}
	if c.PowerW(2) != c.StaticW+c.DynamicFulW {
		t.Error("over-unity utilization not clamped")
	}
}

func BenchmarkFigure6Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range TableII() {
			UtilizationSweep(s, dram.DDR4_2400)
		}
	}
}
