// Package engine models the hardware cipher engines the paper proposes as
// memory-scrambler replacements (Section IV): cycle-level pipeline
// characteristics reproducing Table II, a discrete-event queueing model of
// the DDR4 read path reproducing Figure 6, a power/area overhead model
// reproducing Figure 7, and drop-in encrypted Scrambler implementations
// (AES-CTR and ChaCha) for the simulated memory controller.
//
// The pipeline parameters are the paper's 45 nm synthesis results: the AES
// design (adapted from the OpenCores tiny_aes) runs one round per cycle at
// 2.4 GHz; the ChaCha design splits each quarter round into two pipeline
// stages and runs at 1.96 GHz.
package engine

import (
	"fmt"

	"coldboot/internal/aes"
	"coldboot/internal/chacha"
)

// Spec describes one synthesized cipher engine.
type Spec struct {
	Name string
	// FreqGHz is the synthesized maximum clock frequency.
	FreqGHz float64
	// CyclesPer64B is the pipeline depth from counter injection to a full
	// 64-byte keystream (Table II's "Cycles per 64B").
	CyclesPer64B int
	// CountersPer64B is how many counter/nonce inputs the engine needs per
	// 64-byte memory block: 4 for AES (16-byte blocks), 1 for ChaCha
	// (64-byte blocks). This asymmetry drives Figure 6's queueing.
	CountersPer64B int
}

// MaxPipelineDelayNs is Table II's right column: the keystream generation
// latency through the full pipeline.
func (s Spec) MaxPipelineDelayNs() float64 {
	return float64(s.CyclesPer64B) / s.FreqGHz
}

// CycleNs returns the engine clock period in nanoseconds.
func (s Spec) CycleNs() float64 { return 1 / s.FreqGHz }

// AESEngine builds the Table II spec for an AES variant: one round per
// cycle plus three fixed stages (counter load, initial key add, output
// mux), i.e. 13 cycles for AES-128 and 17 for AES-256 at 2.4 GHz.
func AESEngine(v aes.Variant) Spec {
	return Spec{
		Name:           v.String(),
		FreqGHz:        2.4,
		CyclesPer64B:   v.Rounds() + 3,
		CountersPer64B: 4,
	}
}

// ChaChaEngine builds the Table II spec for a ChaCha variant: each round is
// two pipeline stages (the quarter-round adder chain is split in half to
// reach 1.96 GHz) plus input-add and output stages, i.e. 18 cycles for
// ChaCha8, 26 for ChaCha12, 42 for ChaCha20.
func ChaChaEngine(rounds int) Spec {
	return Spec{
		Name:           fmt.Sprintf("ChaCha%d", rounds),
		FreqGHz:        1.96,
		CyclesPer64B:   2*rounds + 2,
		CountersPer64B: 1,
	}
}

// TableII returns the five engines of the paper's Table II, in its row
// order.
func TableII() []Spec {
	return []Spec{
		AESEngine(aes.AES128),
		AESEngine(aes.AES256),
		ChaChaEngine(chacha.Rounds8),
		ChaChaEngine(chacha.Rounds12),
		ChaChaEngine(chacha.Rounds20),
	}
}

// ThroughputGBs estimates the engine's peak keystream throughput: with a
// fully pipelined design accepting one counter per cycle, each counter
// yields 64/CountersPer64B bytes.
func (s Spec) ThroughputGBs() float64 {
	bytesPerCycle := 64.0 / float64(s.CountersPer64B)
	return bytesPerCycle * s.FreqGHz
}
