// Package dram models DRAM modules at the level the cold boot attack needs:
// raw bit storage addressed by device offset, DRAM geometry
// (rank/bank-group/bank/row/column), JEDEC timing parameters for the
// encryption-overlap analysis, and — critically — the physics of charge
// decay: per-cell ground states and temperature-dependent retention, which
// is what makes cold boot attacks possible at all.
//
// Scrambling is deliberately NOT modeled here: a DRAM device stores whatever
// bits arrive on the bus. The scrambler lives in the memory controller
// (internal/memctrl), exactly as in real systems, which is why moving a DIMM
// between machines moves scrambled bits with it.
package dram

import "fmt"

// Standard identifies the DRAM generation of a module.
type Standard int

// Supported DRAM standards.
const (
	DDR3 Standard = 3
	DDR4 Standard = 4
)

func (s Standard) String() string {
	switch s {
	case DDR3:
		return "DDR3"
	case DDR4:
		return "DDR4"
	}
	return fmt.Sprintf("DDR?(%d)", int(s))
}

// Geometry describes the internal organization of a module. Sizes are kept
// small relative to real DIMMs so simulations stay fast; the structure (not
// the capacity) is what the attack and timing models depend on.
type Geometry struct {
	Ranks         int // chip-select ranks
	BankGroups    int // DDR4 has 4; DDR3 is modeled as 1 group
	BanksPerGroup int
	Rows          int // rows per bank
	RowBytes      int // row (page) size in bytes
}

// Banks returns the total number of banks across all groups.
func (g Geometry) Banks() int { return g.BankGroups * g.BanksPerGroup }

// Size returns the module capacity in bytes.
func (g Geometry) Size() int {
	return g.Ranks * g.Banks() * g.Rows * g.RowBytes
}

// Validate reports an error if any field is non-positive or the row size is
// not a multiple of the 64-byte burst.
func (g Geometry) Validate() error {
	if g.Ranks <= 0 || g.BankGroups <= 0 || g.BanksPerGroup <= 0 || g.Rows <= 0 || g.RowBytes <= 0 {
		return fmt.Errorf("dram: geometry fields must be positive: %+v", g)
	}
	if g.RowBytes%BurstBytes != 0 {
		return fmt.Errorf("dram: row size %d not a multiple of burst %d", g.RowBytes, BurstBytes)
	}
	return nil
}

// Coord identifies one burst-sized location inside a module.
type Coord struct {
	Rank, BankGroup, Bank, Row, Col int // Col indexes 64-byte bursts within the row
}

// BurstBytes is the size of one memory transaction: 8 beats on a 64-bit bus.
// It equals both the CPU cache-line size and the scrambler key size.
const BurstBytes = 64

// Decompose splits a device byte offset (burst-aligned) into its coordinate.
// The layout is row-major: rank > bank group > bank > row > column.
func (g Geometry) Decompose(off int) Coord {
	if off%BurstBytes != 0 {
		panic(fmt.Sprintf("dram: offset %#x not burst aligned", off))
	}
	burst := off / BurstBytes
	colsPerRow := g.RowBytes / BurstBytes
	c := Coord{}
	c.Col = burst % colsPerRow
	burst /= colsPerRow
	c.Row = burst % g.Rows
	burst /= g.Rows
	c.Bank = burst % g.BanksPerGroup
	burst /= g.BanksPerGroup
	c.BankGroup = burst % g.BankGroups
	burst /= g.BankGroups
	c.Rank = burst
	return c
}

// Compose is the inverse of Decompose.
func (g Geometry) Compose(c Coord) int {
	colsPerRow := g.RowBytes / BurstBytes
	burst := ((((c.Rank*g.BankGroups+c.BankGroup)*g.BanksPerGroup+c.Bank)*g.Rows + c.Row) * colsPerRow) + c.Col
	return burst * BurstBytes
}
