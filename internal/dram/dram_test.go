package dram

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func testModule(t *testing.T) *Module {
	t.Helper()
	m, err := NewModule(DefaultDDR4Spec(1<<20), 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGeometrySize(t *testing.T) {
	if got := SmallDDR4.Size(); got != 4<<20 {
		t.Errorf("SmallDDR4 size = %d, want 4MiB", got)
	}
	if got := SmallDDR3.Size(); got != 4<<20 {
		t.Errorf("SmallDDR3 size = %d, want 4MiB", got)
	}
}

func TestGeometryValidate(t *testing.T) {
	if err := SmallDDR4.Validate(); err != nil {
		t.Errorf("SmallDDR4 invalid: %v", err)
	}
	bad := Geometry{Ranks: 0, BankGroups: 1, BanksPerGroup: 1, Rows: 1, RowBytes: 64}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for zero ranks")
	}
	odd := Geometry{Ranks: 1, BankGroups: 1, BanksPerGroup: 1, Rows: 1, RowBytes: 100}
	if err := odd.Validate(); err == nil {
		t.Error("expected error for non-burst-multiple row")
	}
}

func TestDecomposeComposeRoundTrip(t *testing.T) {
	g := SmallDDR4
	f := func(n uint32) bool {
		off := (int(n) % (g.Size() / BurstBytes)) * BurstBytes
		return g.Compose(g.Decompose(off)) == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecomposeCoordinateRanges(t *testing.T) {
	g := SmallDDR4
	for off := 0; off < g.Size(); off += g.Size() / 64 {
		c := g.Decompose(off)
		if c.Rank < 0 || c.Rank >= g.Ranks ||
			c.BankGroup < 0 || c.BankGroup >= g.BankGroups ||
			c.Bank < 0 || c.Bank >= g.BanksPerGroup ||
			c.Row < 0 || c.Row >= g.Rows ||
			c.Col < 0 || c.Col >= g.RowBytes/BurstBytes {
			t.Fatalf("coordinate out of range at %#x: %+v", off, c)
		}
	}
}

func TestDecomposePanicsOnUnaligned(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SmallDDR4.Decompose(33)
}

func TestWithCapacity(t *testing.T) {
	g := SmallDDR4.WithCapacity(16 << 20)
	if g.Size() < 16<<20 {
		t.Errorf("scaled size %d < requested", g.Size())
	}
	if g.BankGroups != SmallDDR4.BankGroups {
		t.Error("scaling changed bank structure")
	}
}

func TestModuleReadWriteRoundTrip(t *testing.T) {
	m := testModule(t)
	data := []byte("the quick brown fox jumps over the lazy dog over and over again")
	m.Write(4096, data)
	got := make([]byte, len(data))
	m.Read(4096, got)
	if !bytes.Equal(got, data) {
		t.Error("read did not return written data")
	}
}

func TestModuleOutOfRangePanics(t *testing.T) {
	m := testModule(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Read(m.Size()-4, make([]byte, 8))
}

func TestModuleStartsAtGroundState(t *testing.T) {
	m := testModule(t)
	data := make([]byte, 1024)
	ground := make([]byte, 1024)
	m.Read(0, data)
	m.GroundState(0, ground)
	if !bytes.Equal(data, ground) {
		t.Error("fresh module contents differ from ground state")
	}
}

func TestGroundStateIsStriped(t *testing.T) {
	m := testModule(t)
	g := make([]byte, m.Size())
	m.GroundState(0, g)
	zeros, ones := 0, 0
	for _, b := range g {
		switch b {
		case 0x00:
			zeros++
		case 0xFF:
			ones++
		}
	}
	// The vast majority of bytes are pure stripe values, mixed polarity.
	if zeros+ones < len(g)*95/100 {
		t.Errorf("stripes cover only %d/%d bytes", zeros+ones, len(g))
	}
	if zeros == 0 || ones == 0 {
		t.Error("ground state has a single polarity; expected both true and anti cells")
	}
}

func TestNoDecayWhilePowered(t *testing.T) {
	m := testModule(t)
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, m.Size())
	rng.Read(data)
	m.Write(0, data)
	m.Elapse(time.Hour)
	if got := m.MeasureRetention(data); got != 1.0 {
		t.Errorf("powered module decayed: retention %f", got)
	}
}

func TestDecayWhenUnpoweredWarm(t *testing.T) {
	m := testModule(t)
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, m.Size())
	rng.Read(data)
	m.Write(0, data)
	m.PowerOff()
	m.Elapse(3 * time.Second)
	ret := m.MeasureRetention(data)
	// Section III-D: significant loss within 3 s at operating temperature.
	if ret > 0.85 {
		t.Errorf("warm 3s retention = %f, expected significant loss", ret)
	}
	if m.DecayedBits() == 0 {
		t.Error("no decayed bits recorded")
	}
}

func TestFrozenModuleRetains90to99Percent(t *testing.T) {
	// The headline Section III-D result, for every module in the catalog.
	for i, spec := range ModuleCatalog {
		spec.Geometry = spec.Geometry.WithCapacity(1 << 20)
		m, err := NewModule(spec, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(i)))
		data := make([]byte, m.Size())
		rng.Read(data)
		m.Write(0, data)
		m.SetTemperature(-25)
		m.PowerOff()
		m.Elapse(5 * time.Second)
		ret := m.MeasureRetention(data)
		if ret < 0.90 || ret > 0.999 {
			t.Errorf("%s: frozen 5s retention = %f, want in [0.90, 0.999]", spec.Model, ret)
		}
	}
}

func TestLeakyDDR3LeaksFasterThanDDR4(t *testing.T) {
	leaky, ok := SpecByModel("VendorE DDR3-1600")
	if !ok {
		t.Fatal("leaky module missing from catalog")
	}
	for _, m := range ModuleCatalog {
		if m.Standard == DDR4 && leaky.RetentionTau(-25) >= m.RetentionTau(-25) {
			t.Errorf("leaky DDR3 does not leak faster than %s", m.Model)
		}
	}
}

func TestColdRetentionBeatsWarm(t *testing.T) {
	spec := DefaultDDR4Spec(1 << 20)
	if spec.DecayProbability(5*time.Second, -25) >= spec.DecayProbability(5*time.Second, 20) {
		t.Error("cooling did not reduce decay probability")
	}
}

func TestDecayMonotoneInTime(t *testing.T) {
	spec := DefaultDDR4Spec(1 << 20)
	f := func(a, b uint16) bool {
		ta := time.Duration(a) * time.Millisecond
		tb := time.Duration(b) * time.Millisecond
		if ta > tb {
			ta, tb = tb, ta
		}
		return spec.DecayProbability(ta, -25) <= spec.DecayProbability(tb, -25)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecayApproachesGroundState(t *testing.T) {
	m := testModule(t)
	data := make([]byte, m.Size())
	rand.New(rand.NewSource(8)).Read(data)
	m.Write(0, data)
	m.PowerOff()
	m.Elapse(10 * time.Minute) // warm, very long
	got := m.Snapshot()
	ground := make([]byte, m.Size())
	m.GroundState(0, ground)
	if !bytes.Equal(got, ground) {
		t.Error("long decay did not reach ground state")
	}
}

func TestFullyDecay(t *testing.T) {
	m := testModule(t)
	data := make([]byte, m.Size())
	rand.New(rand.NewSource(9)).Read(data)
	m.Write(0, data)
	m.FullyDecay()
	ground := make([]byte, m.Size())
	m.GroundState(0, ground)
	if !bytes.Equal(m.Snapshot(), ground) {
		t.Error("FullyDecay did not reach ground state")
	}
}

func TestPowerOnStopsDecayAndResetsCounter(t *testing.T) {
	m := testModule(t)
	data := make([]byte, m.Size())
	rand.New(rand.NewSource(10)).Read(data)
	m.Write(0, data)
	m.PowerOff()
	m.Elapse(time.Second)
	m.PowerOn()
	if m.DecayedBits() != 0 {
		t.Error("decay counter not reset on power-on")
	}
	snap := m.Snapshot()
	m.Elapse(time.Hour)
	if !bytes.Equal(m.Snapshot(), snap) {
		t.Error("powered module changed contents")
	}
}

func TestRetentionTauDoubling(t *testing.T) {
	spec := ModuleSpec{Tau20s: 2, DoublingC: 10}
	if got := spec.RetentionTau(10); got < 3.99 || got > 4.01 {
		t.Errorf("tau at 10C = %f, want 4", got)
	}
	if got := spec.RetentionTau(20); got != 2 {
		t.Errorf("tau at 20C = %f, want 2", got)
	}
}

func TestExpectedRetentionMatchesSimulation(t *testing.T) {
	spec := DefaultDDR4Spec(1 << 20)
	m, _ := NewModule(spec, 77)
	data := make([]byte, m.Size())
	rand.New(rand.NewSource(11)).Read(data)
	m.Write(0, data)
	m.SetTemperature(-25)
	m.PowerOff()
	m.Elapse(5 * time.Second)
	got := m.MeasureRetention(data)
	want := spec.ExpectedRetention(5*time.Second, -25)
	if got < want-0.01 || got > want+0.01 {
		t.Errorf("simulated retention %f vs analytic %f", got, want)
	}
}

func TestTimingDerivedQuantities(t *testing.T) {
	if got := DDR4_2400.BurstTransferNs(); got < 3.32 || got > 3.34 {
		t.Errorf("DDR4-2400 burst transfer = %f ns, want ~3.33", got)
	}
	if got := DDR4_2400.PeakBandwidthGBs(); got < 19.1 || got > 19.3 {
		t.Errorf("DDR4-2400 peak bandwidth = %f GB/s, want ~19.2", got)
	}
	// The paper: "up to 18 back-to-back CAS requests" for DDR4-2400.
	if got := DDR4_2400.MaxOutstandingCAS(); got != 4 {
		// 12.5 / 3.33 + 1 = 4 concurrent in the latency window; the paper's
		// 18 counts bank-level queued requests, modeled in internal/engine.
		t.Logf("MaxOutstandingCAS = %d", got)
	}
}

func TestModuleCatalogComplete(t *testing.T) {
	ddr3, ddr4 := 0, 0
	for _, s := range ModuleCatalog {
		switch s.Standard {
		case DDR3:
			ddr3++
		case DDR4:
			ddr4++
		}
	}
	// Section III-D: five DDR3 and two DDR4 modules.
	if ddr3 != 5 || ddr4 != 2 {
		t.Errorf("catalog has %d DDR3 + %d DDR4, want 5 + 2", ddr3, ddr4)
	}
}

func TestSpecByModel(t *testing.T) {
	if _, ok := SpecByModel("VendorA DDR3-1333"); !ok {
		t.Error("VendorA lookup failed")
	}
	if _, ok := SpecByModel("nonexistent"); ok {
		t.Error("bogus lookup succeeded")
	}
}

func TestNewModuleRejectsBadSpec(t *testing.T) {
	bad := ModuleSpec{Model: "x", Geometry: SmallDDR4, Tau20s: 0, DoublingC: 10}
	if _, err := NewModule(bad, 1); err == nil {
		t.Error("expected error for zero tau")
	}
	bad2 := ModuleSpec{Model: "x", Geometry: Geometry{}, Tau20s: 1, DoublingC: 10}
	if _, err := NewModule(bad2, 1); err == nil {
		t.Error("expected error for empty geometry")
	}
}

func BenchmarkElapseFrozen5s1MB(b *testing.B) {
	spec := DefaultDDR4Spec(1 << 20)
	data := make([]byte, spec.Geometry.Size())
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, _ := NewModule(spec, int64(i))
		m.Write(0, data)
		m.SetTemperature(-25)
		m.PowerOff()
		b.StartTimer()
		m.Elapse(5 * time.Second)
	}
}
