package dram

import "fmt"

// Default geometries. Capacities are deliberately small (a few MB) so that
// whole-memory experiments run quickly; the structural ratios (banks per
// group, row size) follow the JEDEC organizations.
var (
	// SmallDDR4 is a 4 MB DDR4 organization: 4 bank groups x 4 banks,
	// 4 KB rows.
	SmallDDR4 = Geometry{Ranks: 1, BankGroups: 4, BanksPerGroup: 4, Rows: 64, RowBytes: 4096}
	// SmallDDR3 is a 4 MB DDR3 organization: 8 banks, 8 KB rows.
	SmallDDR3 = Geometry{Ranks: 1, BankGroups: 1, BanksPerGroup: 8, Rows: 64, RowBytes: 8192}
)

// WithCapacity returns a copy of g scaled (via the row count) to hold at
// least bytes of storage. It panics if bytes is not reachable by scaling
// rows to a positive integer.
func (g Geometry) WithCapacity(bytes int) Geometry {
	per := g.Ranks * g.Banks() * g.RowBytes
	rows := (bytes + per - 1) / per
	if rows <= 0 {
		panic(fmt.Sprintf("dram: capacity %d too small for geometry", bytes))
	}
	out := g
	out.Rows = rows
	return out
}

// ModuleCatalog lists the seven module models whose retention the paper
// measures in Section III-D: five DDR3 and two DDR4 sticks from various
// manufacturers. Retention parameters are calibrated so that at -25 C all
// modules retain 90-99% of their bits over a 5 s transfer, a significant
// fraction of data is lost within ~3 s at room temperature, and one DDR3
// model ("VendorE DDR3-1600") leaks faster than the newer DDR4 parts —
// all three of the paper's observations.
var ModuleCatalog = []ModuleSpec{
	{Model: "VendorA DDR3-1333", Standard: DDR3, Geometry: SmallDDR3, Tau20s: 2.0, DoublingC: 10},
	{Model: "VendorB DDR3-1600", Standard: DDR3, Geometry: SmallDDR3, Tau20s: 2.6, DoublingC: 10},
	{Model: "VendorC DDR3-1600", Standard: DDR3, Geometry: SmallDDR3, Tau20s: 1.8, DoublingC: 11},
	{Model: "VendorD DDR3-1866", Standard: DDR3, Geometry: SmallDDR3, Tau20s: 3.0, DoublingC: 10},
	{Model: "VendorE DDR3-1600", Standard: DDR3, Geometry: SmallDDR3, Tau20s: 1.1, DoublingC: 10},
	{Model: "VendorF DDR4-2133", Standard: DDR4, Geometry: SmallDDR4, Tau20s: 2.4, DoublingC: 10},
	{Model: "VendorG DDR4-2400", Standard: DDR4, Geometry: SmallDDR4, Tau20s: 2.7, DoublingC: 10},
}

// NVDIMMSpec returns a non-volatile DIMM of the given capacity on the
// DDR4 bus (JEDEC NVDIMM-N style): same interface and scrambling path as
// DRAM, but contents survive power loss indefinitely without cooling.
func NVDIMMSpec(bytes int) ModuleSpec {
	return ModuleSpec{
		Model:       "VendorN NVDIMM-N DDR4",
		Standard:    DDR4,
		Geometry:    SmallDDR4.WithCapacity(bytes),
		Tau20s:      1, // unused: NonVolatile bypasses decay entirely
		DoublingC:   10,
		NonVolatile: true,
	}
}

// SpecByModel returns the catalog entry with the given model name.
func SpecByModel(model string) (ModuleSpec, bool) {
	for _, s := range ModuleCatalog {
		if s.Model == model {
			return s, true
		}
	}
	return ModuleSpec{}, false
}

// DefaultDDR4Spec returns a standard DDR4 module spec with the given
// capacity, used by most simulations.
func DefaultDDR4Spec(bytes int) ModuleSpec {
	s := ModuleCatalog[6]
	s.Geometry = s.Geometry.WithCapacity(bytes)
	return s
}

// DefaultDDR3Spec returns a standard DDR3 module spec with the given
// capacity.
func DefaultDDR3Spec(bytes int) ModuleSpec {
	s := ModuleCatalog[1]
	s.Geometry = s.Geometry.WithCapacity(bytes)
	return s
}
