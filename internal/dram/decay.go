package dram

import (
	"math"
	"time"
)

// Charge decay model.
//
// A DRAM cell holding a value opposite to its ground state loses its charge
// through substrate leakage. We model per-cell survival as exponential with
// a temperature-dependent time constant:
//
//	tau(T) = Tau20s * 2^((20 - T) / DoublingC)
//
// i.e. retention doubles for every DoublingC degrees of cooling — the
// physical behaviour that makes the compressed-air freeze in the paper's
// Figure 2 work. A cell already at ground state never changes.

// RetentionTau returns the decay time constant in seconds at temperature c.
func (s ModuleSpec) RetentionTau(c float64) float64 {
	return s.Tau20s * math.Exp2((20-c)/s.DoublingC)
}

// DecayProbability returns the probability that a charged cell flips to its
// ground state after d unpowered seconds at temperature c.
func (s ModuleSpec) DecayProbability(d time.Duration, c float64) float64 {
	tau := s.RetentionTau(c)
	return 1 - math.Exp(-d.Seconds()/tau)
}

// ExpectedRetention returns the expected fraction of *data bits* that still
// read back correctly after d unpowered seconds at temperature c, assuming
// half the stored bits sit at their cell's ground state (true for
// scrambled/random data). This is the quantity the paper's Section III-D
// reports as "90%-99% of their charges".
func (s ModuleSpec) ExpectedRetention(d time.Duration, c float64) float64 {
	return 1 - 0.5*s.DecayProbability(d, c)
}

// Elapse advances wall-clock time for the module. While powered, refresh
// holds the contents; while unpowered, each charged cell independently
// decays toward ground with the probability given by DecayProbability at
// the module's current temperature.
//
// Sampling uses geometric skips so the cost is proportional to the number
// of decayed bits, not the module size.
func (m *Module) Elapse(d time.Duration) {
	if m.powered || d <= 0 || m.spec.NonVolatile {
		return
	}
	p := m.spec.DecayProbability(d, m.temperatureC)
	if p > 0 {
		m.decayPass(p, nil)
	}
	// Weak cells decay with a 10x shorter time constant: apply the extra
	// probability to the weak population only.
	if m.weak != nil {
		weakSpec := m.spec
		weakSpec.Tau20s /= 10
		if pw := weakSpec.DecayProbability(d, m.temperatureC); pw > p {
			// Residual probability so the total matches pw.
			residual := (pw - p) / (1 - p)
			m.decayPass(residual, m.weak)
		}
	}
}

// decayPass flips each eligible bit toward ground with probability p.
// When filter is non-nil only bits set in it are eligible.
func (m *Module) decayPass(p float64, filter []byte) {
	totalBits := len(m.data) * 8
	if p >= 1 {
		if filter == nil {
			m.FullyDecay()
			return
		}
		p = 0.999999
	}
	if p <= 0 {
		return
	}
	// Geometric skipping: visit each bit with independent probability p.
	logq := math.Log(1 - p)
	pos := 0
	for {
		// Number of bits skipped until the next selected one.
		u := m.rng.Float64()
		skip := int(math.Floor(math.Log(1-u) / logq))
		pos += skip
		if pos >= totalBits {
			return
		}
		byteIdx, bit := pos/8, uint(pos%8)
		mask := byte(1) << bit
		if filter != nil && filter[byteIdx]&mask == 0 {
			pos++
			continue
		}
		if m.data[byteIdx]&mask != m.ground[byteIdx]&mask {
			m.data[byteIdx] ^= mask
			m.decayedBits++
		}
		pos++
	}
}

// MeasureRetention compares the module contents against a reference
// snapshot and returns the fraction of bits that still match. This is the
// measurement procedure of Section III-D.
func (m *Module) MeasureRetention(reference []byte) float64 {
	if len(reference) != len(m.data) {
		panic("dram: retention reference length mismatch")
	}
	diff := countDiffBits(m.data, reference)
	total := len(m.data) * 8
	return 1 - float64(diff)/float64(total)
}

// Snapshot returns a copy of the module's entire contents.
func (m *Module) Snapshot() []byte {
	out := make([]byte, len(m.data))
	copy(out, m.data)
	return out
}
