package dram

// Timing holds the bus-level parameters the Section IV analysis uses. The
// key quantity is the column access (CAS) latency: the fixed, deterministic
// window between a read command and data appearing on the bus, inside which
// a cipher engine can hide keystream generation.
type Timing struct {
	Name       string
	BusMHz     float64 // I/O bus clock in MHz (data rate is 2x)
	CASLatency float64 // column access latency in ns (row-buffer hit)
}

// BusClockNs returns the bus clock period in nanoseconds.
func (t Timing) BusClockNs() float64 { return 1e3 / t.BusMHz }

// BurstTransferNs returns the time to transfer one 64-byte burst: 8 beats at
// double data rate = 4 bus clocks.
func (t Timing) BurstTransferNs() float64 { return 4 * t.BusClockNs() }

// PeakBandwidthGBs returns the theoretical peak bandwidth in GB/s.
func (t Timing) PeakBandwidthGBs() float64 {
	return float64(BurstBytes) / t.BurstTransferNs()
}

// MaxOutstandingCAS returns the largest number of back-to-back CAS responses
// that can be in flight given the CAS latency and the burst transfer time —
// the paper's "up to 18 back-to-back CAS requests" for DDR4-2400.
func (t Timing) MaxOutstandingCAS() int {
	n := int(t.CASLatency/t.BurstTransferNs()) + 1
	return n
}

// Standard JEDEC speed grades used by the simulations. CAS latencies are the
// row-buffer-hit values; JESD79-4 constrains all DDR4 CAS latencies to the
// 12.5–15.01 ns window the paper quotes.
var (
	// DDR3_1600 is a common DDR3 speed grade (CL11).
	DDR3_1600 = Timing{Name: "DDR3-1600", BusMHz: 800, CASLatency: 13.75}
	// DDR4_2133 is the entry DDR4 grade (CL15).
	DDR4_2133 = Timing{Name: "DDR4-2133", BusMHz: 1066, CASLatency: 14.06}
	// DDR4_2400 is the fast grade the paper's Figure 6 analyzes (CL15).
	DDR4_2400 = Timing{Name: "DDR4-2400", BusMHz: 1200, CASLatency: 12.5}
)

// DDR4CASLatencyMinNs and DDR4CASLatencyMaxNs bound the nine standardized
// DDR4 column access latencies (JESD79-4); any cipher whose keystream
// latency is below the minimum has zero exposed latency on every compliant
// module.
const (
	DDR4CASLatencyMinNs = 12.5
	DDR4CASLatencyMaxNs = 15.01
)
