package dram

import (
	"fmt"
	//lint:ignore noweakrand seeded decay/retention simulation, not keystream material
	"math/rand"

	"coldboot/internal/bitutil"
)

// ModuleSpec describes a purchasable DRAM module model: its standard,
// geometry, and retention physics. The catalog in specs.go mirrors the
// seven modules measured in the paper's Section III-D.
type ModuleSpec struct {
	Model    string
	Standard Standard
	Geometry Geometry
	// Tau20s is the charge retention time constant at +20 °C in seconds:
	// the mean time for a cell holding charge against its ground state to
	// lose it. Bigger is better retention.
	Tau20s float64
	// DoublingC is the temperature drop (in °C) that doubles the retention
	// time constant; ~10 °C is the physical rule of thumb.
	DoublingC float64
	// WeakCellFraction is the fraction of cells with a 10x shorter
	// retention constant. Halderman et al. observed that early decay
	// concentrates in a population of weak cells; 0 disables the effect.
	WeakCellFraction float64
	// NonVolatile marks NVDIMM parts (paper §III-D/V): contents persist
	// unpowered at any temperature, indefinitely — no freezing required,
	// which is why the paper calls strong memory encryption "even more
	// crucial on such systems".
	NonVolatile bool
}

// Module is one simulated DRAM stick. Its data array holds whatever raw
// bits the bus last wrote (scrambled or not — the device cannot tell).
type Module struct {
	spec ModuleSpec
	data []byte
	// ground holds the value each cell decays toward when unrefreshed:
	// DRAM arrays mix true and anti cells, so ground state is a per-region
	// pattern of 0s and 1s, not all-zeros.
	ground []byte
	// weak marks the 10x-leakier cell population (nil if disabled).
	weak         []byte
	powered      bool
	temperatureC float64
	rng          *rand.Rand
	decayedBits  int64 // cumulative bits flipped by decay since last power-on
}

// NewModule manufactures a module. The seed individualizes the cell ground
// states (two sticks of the same model decay to different patterns).
func NewModule(spec ModuleSpec, seed int64) (*Module, error) {
	if err := spec.Geometry.Validate(); err != nil {
		return nil, err
	}
	if spec.Tau20s <= 0 || spec.DoublingC <= 0 {
		return nil, fmt.Errorf("dram: module %q has non-positive retention parameters", spec.Model)
	}
	size := spec.Geometry.Size()
	m := &Module{
		spec:         spec,
		data:         make([]byte, size),
		ground:       make([]byte, size),
		powered:      true,
		temperatureC: 20,
		rng:          rand.New(rand.NewSource(seed)),
	}
	m.initGroundState()
	copy(m.data, m.ground) // cells start at ground state
	return m, nil
}

// initGroundState lays out ground values in 128-byte stripes of all-0 or
// all-1 cells (true vs anti cell regions), with a sprinkle of individually
// inverted cells, which is the striped pattern cold boot studies observe in
// fully decayed dumps.
func (m *Module) initGroundState() {
	const stripe = 128
	for off := 0; off < len(m.ground); off += stripe {
		v := byte(0x00)
		if m.rng.Intn(2) == 1 {
			v = 0xFF
		}
		end := off + stripe
		if end > len(m.ground) {
			end = len(m.ground)
		}
		for i := off; i < end; i++ {
			m.ground[i] = v
		}
	}
	// ~0.1% of cells are inverted relative to their stripe.
	flips := len(m.ground) * 8 / 1000
	for i := 0; i < flips; i++ {
		bit := m.rng.Intn(len(m.ground) * 8)
		m.ground[bit/8] ^= 1 << uint(bit%8)
	}
	// Weak-cell population: a sparse bitmap of cells that decay 10x faster.
	if m.spec.WeakCellFraction > 0 {
		m.weak = make([]byte, len(m.ground))
		weakBits := int(float64(len(m.ground)*8) * m.spec.WeakCellFraction)
		for i := 0; i < weakBits; i++ {
			bit := m.rng.Intn(len(m.ground) * 8)
			m.weak[bit/8] |= 1 << uint(bit%8)
		}
	}
}

// IsWeak reports whether the given bit index addresses a weak cell.
func (m *Module) IsWeak(bit int) bool {
	return m.weak != nil && m.weak[bit/8]&(1<<uint(bit%8)) != 0
}

// Spec returns the module's specification.
func (m *Module) Spec() ModuleSpec { return m.spec }

// Size returns the module capacity in bytes.
func (m *Module) Size() int { return len(m.data) }

// Powered reports whether the module is refreshed (true = no decay).
func (m *Module) Powered() bool { return m.powered }

// TemperatureC returns the module's current temperature.
func (m *Module) TemperatureC() float64 { return m.temperatureC }

// DecayedBits returns the cumulative number of bits flipped by decay since
// the last power-on.
func (m *Module) DecayedBits() int64 { return m.decayedBits }

// Read copies len(dst) bytes starting at device offset off into dst.
// This is raw device access: the FPGA rig in the paper's analysis
// framework, or the memory controller's bus side.
func (m *Module) Read(off int, dst []byte) {
	if off < 0 || off+len(dst) > len(m.data) {
		panic(fmt.Sprintf("dram: read [%#x,%#x) out of range %#x", off, off+len(dst), len(m.data)))
	}
	copy(dst, m.data[off:])
}

// Write copies src into the module at device offset off.
func (m *Module) Write(off int, src []byte) {
	if off < 0 || off+len(src) > len(m.data) {
		panic(fmt.Sprintf("dram: write [%#x,%#x) out of range %#x", off, off+len(src), len(m.data)))
	}
	copy(m.data[off:], src)
}

// GroundState copies the ground-state pattern at off into dst — what a
// fully decayed module would read. The paper's alternative analysis
// technique profiles this pattern with the scrambler off, then reads it
// back through the scrambler.
func (m *Module) GroundState(off int, dst []byte) {
	if off < 0 || off+len(dst) > len(m.ground) {
		panic(fmt.Sprintf("dram: ground state [%#x,%#x) out of range", off, off+len(dst)))
	}
	copy(dst, m.ground[off:])
}

// SetTemperature changes the module temperature (e.g. -25 for the
// compressed-gas-duster freeze in Figure 2).
func (m *Module) SetTemperature(c float64) { m.temperatureC = c }

// PowerOff stops refresh; subsequent Elapse calls decay the contents.
func (m *Module) PowerOff() { m.powered = false }

// PowerOn resumes refresh, halting decay. Contents are whatever survived.
func (m *Module) PowerOn() {
	m.powered = true
	m.decayedBits = 0
}

// FullyDecay drives every cell to its ground state, as if the module sat
// unpowered for minutes at room temperature.
func (m *Module) FullyDecay() {
	m.decayedBits += int64(countDiffBits(m.data, m.ground))
	copy(m.data, m.ground)
}

// countDiffBits runs on bitutil's word-level popcount kernel: the retention
// measurement and full-decay accounting sweep whole modules, so the 8x lane
// width matters.
func countDiffBits(a, b []byte) int {
	return bitutil.HammingDistance(a, b)
}
