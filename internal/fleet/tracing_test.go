package fleet

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"coldboot/internal/obs"
)

// Deterministic distributed-tracing tests: these drive the coordinator's
// HTTP handlers directly against a hand-built session, so worker clock
// skew, stolen-shard races, and flush/complete interleavings are exact
// rather than timing-dependent.

// tracingHarness is one campaign session on a collector-backed
// coordinator, with the board's clock under test control.
type tracingHarness struct {
	coord *Coordinator
	sess  *session
	col   *obs.Collector
	clk   *fakeClock
}

func newTracingHarness(t *testing.T, shards int) *tracingHarness {
	t.Helper()
	col := obs.NewCollector()
	c := NewCoordinator(time.Minute, col)
	root := col.StartSpan("campaign")
	t.Cleanup(root.End)
	s := &session{
		id:      "c1",
		board:   NewBoard(testShards(shards, 128), time.Minute, col, root),
		flushes: make(map[string]*telemetryRequest),
	}
	c.mu.Lock()
	c.sessions[s.id] = s
	c.order = append(c.order, s.id)
	c.mu.Unlock()
	return &tracingHarness{coord: c, sess: s, col: col, clk: nil}
}

func (h *tracingHarness) complete(t *testing.T, req completeRequest) (accepted bool, status int) {
	t.Helper()
	body, _ := json.Marshal(req)
	wr := httptest.NewRecorder()
	h.coord.handleComplete(wr, httptest.NewRequest("POST", "/v1/shards/complete", bytes.NewReader(body)))
	var out struct {
		Accepted bool `json:"accepted"`
	}
	if wr.Code == 200 {
		json.NewDecoder(wr.Body).Decode(&out)
	}
	return out.Accepted, wr.Code
}

func (h *tracingHarness) flush(t *testing.T, req telemetryRequest) int {
	t.Helper()
	body, _ := json.Marshal(req)
	wr := httptest.NewRecorder()
	h.coord.handleTelemetry(wr, httptest.NewRequest("POST", "/v1/telemetry", bytes.NewReader(body)))
	return wr.Code
}

// workerTelemetry builds a realistic lease-scoped telemetry snapshot with
// the span timestamps forced to the given (foreign) timebase.
func workerTelemetry(startNs int64) obs.Telemetry {
	return obs.Telemetry{
		Spans: []obs.SpanRecord{
			{ID: 2, Parent: 1, Root: 1, Name: "hunt", StartNs: startNs + 50, DurNs: 100},
			{ID: 1, Root: 1, Name: "shard", StartNs: startNs, DurNs: 300},
		},
		Counters:   map[string]int64{"keys.found": 1, "progress.campaign": 500},
		Histograms: []obs.HistogramSnapshot{histOf("hunt.chunk_ns", 1000, 2000)},
	}
}

func histOf(name string, vals ...int64) obs.HistogramSnapshot {
	var h obs.Histogram
	for _, v := range vals {
		h.Observe(v)
	}
	return h.Snapshot(name)
}

func trackedSpans(col *obs.Collector, name string) []obs.SpanRecord {
	var out []obs.SpanRecord
	for _, s := range col.Spans() {
		if s.Track != "" && (name == "" || s.Name == name) {
			out = append(out, s)
		}
	}
	return out
}

// TestCompleteGraftsSkewedWorkerClock: a worker whose obs.Now timebase is
// wildly behind the coordinator's (tiny StartNs, no offset estimate) must
// still land inside the lease span — the MinNs floor clamps the batch to
// the grant time, keeping the merged tree monotonic.
func TestCompleteGraftsSkewedWorkerClock(t *testing.T) {
	h := newTracingHarness(t, 1)
	l, ok := h.sess.board.Lease("w1")
	if !ok {
		t.Fatal("no lease")
	}
	tel := workerTelemetry(5) // worker clock ~0: far before coordinator grant time
	accepted, _ := h.complete(t, completeRequest{
		Campaign: "c1", Lease: l.ID, Shard: l.Shard,
		Worker: "w1", ClockOffsetNs: 0, Telemetry: &tel,
	})
	if !accepted {
		t.Fatal("completion rejected")
	}

	spans := h.col.Spans()
	var leaseSpan, shardSpan, huntSpan obs.SpanRecord
	for _, s := range spans {
		switch s.Name {
		case "fleet.lease":
			leaseSpan = s
		case "shard":
			shardSpan = s
		case "hunt":
			huntSpan = s
		}
	}
	if leaseSpan.ID == 0 || shardSpan.ID == 0 || huntSpan.ID == 0 {
		t.Fatalf("missing spans in merged tree: %+v", spans)
	}
	if shardSpan.Parent != leaseSpan.ID {
		t.Errorf("shard parent = %d, want lease %d", shardSpan.Parent, leaseSpan.ID)
	}
	if shardSpan.StartNs < leaseSpan.StartNs {
		t.Errorf("skewed shard span at %d precedes lease at %d", shardSpan.StartNs, leaseSpan.StartNs)
	}
	if huntSpan.StartNs-shardSpan.StartNs != 50 {
		t.Errorf("relative timing mangled: hunt-shard gap %d, want 50", huntSpan.StartNs-shardSpan.StartNs)
	}
	if shardSpan.Track != "w1" || huntSpan.Track != "w1" {
		t.Errorf("tracks = %q/%q, want w1", shardSpan.Track, huntSpan.Track)
	}
	// Per-worker labelled histogram series exists alongside the aggregate.
	if h.col.Histogram("hunt.chunk_ns") == nil || h.col.Histogram("hunt.chunk_ns;worker=w1") == nil {
		t.Error("missing aggregate or per-worker histogram series")
	}
	if got := h.col.Report().Counters["keys.found"]; got != 1 {
		t.Errorf("counter merge = %d, want 1", got)
	}
	if _, ok := h.col.Report().Counters["progress.campaign"]; ok {
		t.Error("worker progress high-water mark leaked into coordinator counters")
	}
}

// TestStolenShardAttribution: when a shard is stolen, only the winning
// completion's telemetry grafts; the loser's spans are dropped with its
// results, so the timeline shows exactly one worker scanning the shard.
func TestStolenShardAttribution(t *testing.T) {
	h := newTracingHarness(t, 1)
	slow, ok := h.sess.board.Lease("w-slow")
	if !ok {
		t.Fatal("no initial lease")
	}
	fast, ok := h.sess.board.Lease("w-fast")
	if !ok || !fast.Stolen {
		t.Fatal("no stolen duplicate")
	}

	fastTel := workerTelemetry(100)
	if accepted, _ := h.complete(t, completeRequest{
		Campaign: "c1", Lease: fast.ID, Shard: fast.Shard,
		Worker: "w-fast", Telemetry: &fastTel,
	}); !accepted {
		t.Fatal("winning completion rejected")
	}
	slowTel := workerTelemetry(200)
	if accepted, _ := h.complete(t, completeRequest{
		Campaign: "c1", Lease: slow.ID, Shard: slow.Shard,
		Worker: "w-slow", Telemetry: &slowTel,
	}); accepted {
		t.Fatal("losing duplicate accepted")
	}

	shards := trackedSpans(h.col, "shard")
	if len(shards) != 1 || shards[0].Track != "w-fast" {
		t.Fatalf("stolen shard attribution wrong: %+v", shards)
	}
	if got := h.col.Report().Counters["keys.found"]; got != 1 {
		t.Errorf("loser's counters merged too: keys.found = %d, want 1", got)
	}
}

// TestFlushThenCompleteGraftsOnce: a mid-shard telemetry flush buffers at
// the coordinator; the completion (carrying a superset of the same tree)
// grafts exactly once, and the buffered flush is consumed, not re-grafted.
func TestFlushThenCompleteGraftsOnce(t *testing.T) {
	h := newTracingHarness(t, 1)
	l, ok := h.sess.board.Lease("w1")
	if !ok {
		t.Fatal("no lease")
	}

	partial := obs.Telemetry{
		Spans:    []obs.SpanRecord{{ID: 2, Parent: 1, Root: 1, Name: "hunt", StartNs: 150, DurNs: 100}},
		Counters: map[string]int64{"keys.found": 1},
	}
	if code := h.flush(t, telemetryRequest{Campaign: "c1", Lease: l.ID, Worker: "w1", Telemetry: partial}); code != 200 {
		t.Fatalf("flush status %d", code)
	}
	if len(trackedSpans(h.col, "")) != 0 {
		t.Fatal("flush grafted spans before completion")
	}

	full := workerTelemetry(100)
	if accepted, _ := h.complete(t, completeRequest{
		Campaign: "c1", Lease: l.ID, Shard: l.Shard,
		Worker: "w1", Telemetry: &full,
	}); !accepted {
		t.Fatal("completion rejected")
	}

	if got := trackedSpans(h.col, "hunt"); len(got) != 1 {
		t.Fatalf("hunt span grafted %d times, want once", len(got))
	}
	if got := h.col.Report().Counters["keys.found"]; got != 1 {
		t.Fatalf("counters double-merged: keys.found = %d, want 1", got)
	}
	// A straggler flush arriving after completion is rejected and cannot
	// re-graft.
	if code := h.flush(t, telemetryRequest{Campaign: "c1", Lease: l.ID, Worker: "w1", Telemetry: partial}); code != 410 {
		t.Fatalf("post-completion flush status %d, want 410", code)
	}
	if got := trackedSpans(h.col, "hunt"); len(got) != 1 {
		t.Fatalf("late flush re-grafted: %d hunt spans", len(got))
	}
}

// TestCompleteFallsBackToBufferedFlush: a completion with no inline
// telemetry (worker died between flush and attach, or an older worker)
// still grafts the last buffered flush.
func TestCompleteFallsBackToBufferedFlush(t *testing.T) {
	h := newTracingHarness(t, 1)
	l, _ := h.sess.board.Lease("w1")
	tel := workerTelemetry(100)
	if code := h.flush(t, telemetryRequest{Campaign: "c1", Lease: l.ID, Worker: "w1", ClockOffsetNs: 12, Telemetry: tel}); code != 200 {
		t.Fatalf("flush status %d", code)
	}
	if accepted, _ := h.complete(t, completeRequest{
		Campaign: "c1", Lease: l.ID, Shard: l.Shard, Worker: "w1",
	}); !accepted {
		t.Fatal("completion rejected")
	}
	if got := trackedSpans(h.col, "shard"); len(got) != 1 {
		t.Fatalf("buffered flush not grafted on telemetry-less completion: %+v", got)
	}
}

// TestExpiredLeaseTelemetryDiscarded: once a lease expires, both its
// flushes and its completion are refused, so no spans from the dead lease
// ever reach the merged timeline.
func TestExpiredLeaseTelemetryDiscarded(t *testing.T) {
	col := obs.NewCollector()
	c := NewCoordinator(time.Minute, col)
	clk := &fakeClock{}
	b := NewBoard(testShards(1, 128), time.Second, col, nil)
	b.now = clk.now
	s := &session{id: "c1", board: b, flushes: make(map[string]*telemetryRequest)}
	c.mu.Lock()
	c.sessions[s.id] = s
	c.order = append(c.order, s.id)
	c.mu.Unlock()
	h := &tracingHarness{coord: c, sess: s, col: col}

	l, _ := b.Lease("w1")
	tel := workerTelemetry(100)
	if code := h.flush(t, telemetryRequest{Campaign: "c1", Lease: l.ID, Worker: "w1", Telemetry: tel}); code != 200 {
		t.Fatalf("flush status %d", code)
	}
	clk.advance(int64(2 * time.Second)) // lease expires
	if code := h.flush(t, telemetryRequest{Campaign: "c1", Lease: l.ID, Worker: "w1", Telemetry: tel}); code != 410 {
		t.Fatalf("expired-lease flush status %d, want 410", code)
	}
	if accepted, _ := h.complete(t, completeRequest{
		Campaign: "c1", Lease: l.ID, Shard: l.Shard, Worker: "w1", Telemetry: &tel,
	}); accepted {
		t.Fatal("expired lease completion accepted")
	}
	if got := trackedSpans(h.col, ""); len(got) != 0 {
		t.Fatalf("dead lease left %d spans in the timeline", len(got))
	}
}

// TestStragglerDetection: completions beyond 2x the p99 of earlier ones
// are flagged, counted, and attributed on the lease span.
func TestStragglerDetection(t *testing.T) {
	clk := &fakeClock{}
	col := obs.NewCollector()
	b := NewBoard(testShards(10, 128), time.Hour, col, nil)
	b.now = clk.now
	for i := 0; i < 9; i++ {
		l, ok := b.Lease("w1")
		if !ok {
			t.Fatalf("lease %d refused", i)
		}
		dur := int64(time.Millisecond)
		if i == 8 {
			dur = int64(time.Minute) // way past 2x p99 of the first 8
		}
		clk.advance(dur)
		info, ok := b.Complete(l.ID, result(l.Shard))
		if !ok {
			t.Fatalf("completion %d rejected", i)
		}
		if want := i == 8; info.Straggler != want {
			t.Fatalf("completion %d straggler = %v, want %v", i, info.Straggler, want)
		}
	}
	if st := b.Stats(); st.Stragglers != 1 {
		t.Fatalf("Stragglers = %d, want 1", st.Stragglers)
	}
	if got := col.Report().Counters["fleet.stragglers"]; got != 1 {
		t.Fatalf("fleet.stragglers counter = %d, want 1", got)
	}
	// Per-worker shard-duration series fed the labelled family.
	if col.Histogram("fleet.shard_ns;worker=w1") == nil {
		t.Fatal("missing per-worker fleet.shard_ns series")
	}
	var buf bytes.Buffer
	if err := col.Report().WritePrometheus(&buf, "coldbootd_pipeline"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `coldbootd_pipeline_fleet_shard_seconds_count{worker="w1"} 9`) {
		t.Fatalf("per-worker labelled series missing from exposition:\n%s", buf.String())
	}
}
