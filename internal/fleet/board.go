// Package fleet distributes a campaign across processes: a coordinator
// plans the attack (one global mining pass), cuts the dump into shards,
// and hands shards out to workers over HTTP leases; workers scan their
// shard with the exact per-shard pipeline a local campaign uses
// (core.CampaignPlan.ScanShardBytes) and post the results back; the
// coordinator merges through the same Finalize path. Because every phase
// but the transport is shared with core.RunCampaignSource, a fleet
// campaign's Result is byte-identical to a single-process run over the
// same dump.
//
// Failure model: leases expire. A worker that stops heartbeating loses
// its shard back to the queue (requeue); when the queue is empty but
// shards are still outstanding, an idle worker is handed a duplicate
// lease on the longest-running one (work stealing) and the first
// completion wins. Shard results are idempotent — both copies of a stolen
// shard produce the same bytes — so duplicates are simply dropped.
//
// The package never reads the wall clock (noprint contract): lease
// deadlines come from obs.Now(), the tracer-side monotonic clock.
package fleet

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"coldboot/internal/core"
	"coldboot/internal/obs"
)

// shard lease lifecycle: queued -> leased (1..2 workers) -> done.
const (
	shardQueued = iota
	shardLeased
	shardDone
)

// Lease is one worker's claim on one shard, valid until expiry (renewed
// by heartbeats).
type Lease struct {
	ID     string
	Worker string
	// Shard is the leased shard, in full-dump coordinates.
	Shard core.Shard
	// Stolen marks a duplicate lease granted on a straggling shard.
	Stolen bool

	granted int64 // obs.Now at grant
	expiry  int64 // obs.Now deadline, renewed by Heartbeat
	span    obs.Span
}

type boardShard struct {
	shard    core.Shard
	status   int
	queuedAt int64             // obs.Now when (re)queued, for fleet.lease_wait_ns
	leases   map[string]*Lease // outstanding leases, keyed by lease ID
	result   *core.ShardResult
}

// BoardStats is the board's gauge set (exported at /metrics by the
// coordinator role).
type BoardStats struct {
	Queued int `json:"queued"`
	Leased int `json:"leased"`
	Done   int `json:"done"`
	Total  int `json:"total"`
	// Requeues counts leases that expired and put their shard back in the
	// queue; Steals counts duplicate leases granted on stragglers.
	Requeues int `json:"requeues"`
	Steals   int `json:"steals"`
	// Stragglers counts completed shards whose grant-to-completion time
	// exceeded the straggler bound (2x the p99 of earlier completions).
	Stragglers int `json:"stragglers"`
}

// CompleteInfo describes an accepted shard completion: who finished it,
// the lease span the worker's shipped telemetry grafts under, and timing
// for the straggler detector. On a stolen shard only the winning lease
// produces one, so shipped spans are attributed to exactly one worker.
type CompleteInfo struct {
	Worker string
	Stolen bool
	// Span is the shard's (ended) lease span; the coordinator grafts the
	// worker's span tree under it.
	Span obs.Span
	// GrantedNs is the obs.Now timestamp the winning lease was granted —
	// the monotonic floor for clock-corrected grafting.
	GrantedNs int64
	// DurNs is grant-to-completion wall time.
	DurNs int64
	// Straggler is set when DurNs exceeded the straggler bound.
	Straggler bool
}

// Board is the coordinator-side shard lease state machine for one
// campaign. Safe for concurrent use.
type Board struct {
	mu         sync.Mutex
	ttl        int64
	tracer     obs.Tracer
	parent     obs.Span // campaign root; lease spans are its children
	shards     []*boardShard
	leases     map[string]*Lease
	queue      []int // indices into shards, FIFO
	done       int
	requeues   int
	steals     int
	stragglers int
	durs       obs.Histogram // completed-shard durations, for the straggler bound
	seq        uint64
	finished   chan struct{}
	now        func() int64 // obs.Now, injectable in tests
}

// NewBoard builds a board over the plan's shard cut. ttl is the lease
// lifetime; a worker must heartbeat faster than this or its shard goes
// back to the queue. parent, when non-nil, is the campaign root span the
// per-shard lease spans nest under, putting every remote shard in the same
// trace tree as a local campaign's shards.
func NewBoard(shards []core.Shard, ttl time.Duration, tracer obs.Tracer, parent obs.Span) *Board {
	b := &Board{
		ttl:      int64(ttl),
		tracer:   obs.OrNop(tracer),
		parent:   parent,
		leases:   make(map[string]*Lease),
		finished: make(chan struct{}),
		now:      obs.Now,
	}
	start := obs.Now()
	for i, sh := range shards {
		b.shards = append(b.shards, &boardShard{
			shard:    sh,
			queuedAt: start,
			leases:   make(map[string]*Lease),
		})
		b.queue = append(b.queue, i)
	}
	if len(shards) == 0 {
		close(b.finished)
	}
	return b
}

// Lease grants worker a shard: the oldest queued one, or — when the queue
// is drained but shards are still outstanding — a duplicate (stolen)
// lease on the longest-running single-leased shard. ok is false when
// there is nothing to hand out (all shards done, or every straggler
// already has a second worker on it).
func (b *Board) Lease(worker string) (Lease, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.expireLocked(now)

	var (
		idx    int
		stolen bool
	)
	if len(b.queue) > 0 {
		idx, b.queue = b.queue[0], b.queue[1:]
		b.tracer.Observe("fleet.lease_wait_ns", now-b.shards[idx].queuedAt)
	} else {
		idx, stolen = b.stealTargetLocked()
		if !stolen {
			return Lease{}, false
		}
		b.steals++
		b.tracer.Count("fleet.steals", 1)
	}
	sh := b.shards[idx]
	sh.status = shardLeased
	b.seq++
	attrs := []obs.Attr{
		obs.A("shard", strconv.Itoa(sh.shard.Index)),
		obs.A("worker", worker),
		obs.A("stolen", strconv.FormatBool(stolen)),
	}
	var span obs.Span
	if b.parent != nil {
		span = b.parent.Child("fleet.lease", attrs...)
	} else {
		span = b.tracer.StartSpan("fleet.lease", attrs...)
	}
	// granted is stamped after the span opens: it is the monotonic floor
	// grafted worker spans are clamped to, so it must not precede the lease
	// span's own start.
	granted := b.now()
	l := &Lease{
		ID:      "l" + strconv.FormatUint(b.seq, 10),
		Worker:  worker,
		Shard:   sh.shard,
		Stolen:  stolen,
		granted: granted,
		expiry:  granted + b.ttl,
		span:    span,
	}
	sh.leases[l.ID] = l
	b.leases[l.ID] = l
	return *l, true
}

// stealTargetLocked picks the straggler to duplicate: the leased shard
// with the oldest outstanding grant that has only one worker on it.
func (b *Board) stealTargetLocked() (int, bool) {
	best, bestGrant := -1, int64(0)
	for i, sh := range b.shards {
		if sh.status != shardLeased || len(sh.leases) != 1 {
			continue
		}
		var g int64
		for _, l := range sh.leases {
			g = l.granted
		}
		if best == -1 || g < bestGrant {
			best, bestGrant = i, g
		}
	}
	return best, best != -1
}

// Heartbeat renews a lease's expiry. False means the lease is gone —
// expired and requeued, or its shard already completed — and the worker
// should abandon the scan.
func (b *Board) Heartbeat(leaseID string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.expireLocked(now)
	l, ok := b.leases[leaseID]
	if !ok {
		return false
	}
	l.expiry = now + b.ttl
	return true
}

// stragglerSampleFloor is how many completed shards must be observed
// before the straggler bound is trusted; a p99 over fewer samples is
// noise.
const stragglerSampleFloor = 8

// LeaseAlive reports whether a lease is still outstanding (not expired,
// not completed). Telemetry flushes for dead leases are discarded on the
// strength of this check.
func (b *Board) LeaseAlive(leaseID string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.expireLocked(b.now())
	_, ok := b.leases[leaseID]
	return ok
}

// Complete records a shard's results under the given lease. accepted is
// false for an unknown lease or a shard another worker already finished
// (the stolen-duplicate loser) — both benign, the results are dropped.
// When accepted, the CompleteInfo names the winning worker and the lease
// span the worker's telemetry belongs under.
func (b *Board) Complete(leaseID string, res core.ShardResult) (CompleteInfo, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	l, ok := b.leases[leaseID]
	if !ok {
		return CompleteInfo{}, false
	}
	sh := b.shards[shardByIndex(b.shards, l.Shard.Index)]
	span := l.span
	if sh.status == shardDone || res.Shard.Index != sh.shard.Index {
		b.dropLeaseLocked(l, "complete")
		return CompleteInfo{}, false
	}
	dur := now - l.granted
	info := CompleteInfo{Worker: l.Worker, Stolen: l.Stolen, Span: span, GrantedNs: l.granted, DurNs: dur}
	// The straggler bound comes from completions BEFORE this one, so the
	// first slow shard in a run can still be flagged. Attrs must land
	// before dropLeaseLocked ends the span.
	if s := b.durs.Snapshot(""); s.Count >= stragglerSampleFloor && dur > 2*s.P99 {
		info.Straggler = true
		b.stragglers++
		b.tracer.Count("fleet.stragglers", 1)
		if span != nil {
			span.SetAttr("straggler", "true")
		}
	}
	b.durs.Observe(dur)
	b.dropLeaseLocked(l, "complete")
	sh.status = shardDone
	sh.result = &res
	// Retire any duplicate leases still out on this shard.
	for _, dup := range sh.leases {
		b.dropLeaseLocked(dup, "superseded")
	}
	b.done++
	b.tracer.Observe("fleet.shard_ns", dur)
	if l.Worker != "" {
		// Per-worker series: the ";key=value" suffix renders as a Prometheus
		// label, so /metrics exposes one labelled histogram family.
		b.tracer.Observe("fleet.shard_ns;worker="+l.Worker, dur)
	}
	if b.done == len(b.shards) {
		close(b.finished)
	}
	return info, true
}

// Expire requeues every lease whose holder stopped heartbeating. It is
// called internally by Lease/Heartbeat; the coordinator also ticks it so
// a dead fleet's shards requeue even with no worker traffic.
func (b *Board) Expire() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.expireLocked(b.now())
}

func (b *Board) expireLocked(now int64) int {
	n := 0
	for _, l := range b.leases {
		if l.expiry > now {
			continue
		}
		sh := b.shards[shardByIndex(b.shards, l.Shard.Index)]
		b.dropLeaseLocked(l, "expired")
		n++
		if sh.status == shardDone {
			continue
		}
		if len(sh.leases) == 0 {
			sh.status = shardQueued
			sh.queuedAt = now
			b.queue = append(b.queue, shardByIndex(b.shards, l.Shard.Index))
			b.requeues++
			b.tracer.Count("fleet.requeues", 1)
		}
	}
	return n
}

// dropLeaseLocked removes a lease from both indexes and closes its span.
func (b *Board) dropLeaseLocked(l *Lease, outcome string) {
	sh := b.shards[shardByIndex(b.shards, l.Shard.Index)]
	delete(sh.leases, l.ID)
	delete(b.leases, l.ID)
	if l.span != nil {
		l.span.SetAttr("outcome", outcome)
		l.span.End()
		l.span = nil
	}
}

// Done is closed when every shard has a result.
func (b *Board) Done() <-chan struct{} { return b.finished }

// Results returns the completed shard results in shard order. It errors
// if any shard is still outstanding (the merge must see every shard).
func (b *Board) Results() ([]core.ShardResult, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]core.ShardResult, 0, len(b.shards))
	for _, sh := range b.shards {
		if sh.status != shardDone {
			return nil, fmt.Errorf("fleet: shard %d incomplete", sh.shard.Index)
		}
		out = append(out, *sh.result)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Shard.Index < out[j].Shard.Index })
	return out, nil
}

// Stats snapshots the board's gauges.
func (b *Board) Stats() BoardStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BoardStats{Total: len(b.shards), Requeues: b.requeues, Steals: b.steals, Stragglers: b.stragglers}
	for _, sh := range b.shards {
		switch sh.status {
		case shardQueued:
			st.Queued++
		case shardLeased:
			st.Leased++
		case shardDone:
			st.Done++
		}
	}
	return st
}

// Abort closes out the board's outstanding lease spans (campaign
// cancelled); the board accepts no useful work afterwards.
func (b *Board) Abort() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, l := range b.leases {
		b.dropLeaseLocked(l, "aborted")
	}
}

// shardByIndex maps a shard's campaign index to its slot in the board's
// slice. The two are identical today (boards are built from the plan's
// ordered cut), but the lookup keeps that an implementation detail.
func shardByIndex(shards []*boardShard, index int) int {
	if index >= 0 && index < len(shards) && shards[index].shard.Index == index {
		return index
	}
	for i, sh := range shards {
		if sh.shard.Index == index {
			return i
		}
	}
	return -1
}
