package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"coldboot/internal/aes"
	"coldboot/internal/core"
	_ "coldboot/internal/format/all" // register every built-in scanner
	"coldboot/internal/format/luks2"
	"coldboot/internal/obs"
	"coldboot/internal/scramble"
	"coldboot/internal/workload"
)

// Differential parity: a 3-worker fleet campaign over a scrambled,
// decayed dump must produce byte-identical results — the same FoundKey
// set with the same scores and the same volume tagging — as a
// single-process core.RunCampaignSource over the same bytes. This is the
// subsystem's acceptance bar: distribution must be invisible in the
// output.

const (
	fxSize        = 2 << 20
	fxSeed        = 91
	fxVeraStart   = 1200*core.BlockBytes + 32 // lone AES-256 schedule
	fxLUKSStart   = 9000*core.BlockBytes + 16 // XTS data key schedule…
	fxLUKSTweak   = fxLUKSStart + 240         // …tweak schedule, adjacent
	fxHeaderStart = 20000 * core.BlockBytes   // LUKS2 volume header copy
	fxUUID        = "0f1ee7e0-aaaa-bbbb-cccc-0123456789ab"
)

// buildDecayedDump plants a lone AES schedule plus a LUKS2 pair and its
// volume header in a scrambled image, then flips ~0.05% of the bits.
// Decay spares the strict-parse volume header and the XTS pair (tagging
// requires both halves to survive, and intact page-cache copies are the
// realistic shape); the lone schedule takes its lumps and leans on
// window repair.
func buildDecayedDump(t testing.TB) (dump, vera, luksData []byte) {
	return buildDecayedDumpOpt(t, true)
}

func buildDecayedDumpOpt(t testing.TB, decay bool) (dump, vera, luksData []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(fxSeed))
	key32 := func() []byte {
		k := make([]byte, 32)
		rng.Read(k)
		return k
	}
	vera, luksData, luksTweak := key32(), key32(), key32()

	plain := make([]byte, fxSize)
	if err := workload.Fill(plain, fxSeed, workload.LightSystem); err != nil {
		t.Fatal(err)
	}
	copy(plain[fxVeraStart:], aes.ExpandKeyBytes(vera))
	copy(plain[fxLUKSStart:], aes.ExpandKeyBytes(luksData))
	copy(plain[fxLUKSTweak:], aes.ExpandKeyBytes(luksTweak))
	copy(plain[fxHeaderStart:], luks2.EncodeHeader(&luks2.Header{
		Primary:     true,
		Version:     2,
		HeaderSize:  16384,
		SeqID:       5,
		Label:       "fleet-parity",
		ChecksumAlg: "sha256",
		UUID:        fxUUID,
		Cipher:      "aes-xts-plain64",
		KeyBytes:    64,
	}))

	dump = make([]byte, fxSize)
	scramble.NewSkylakeDDR4(uint64(fxSeed)*31+7).Scramble(dump, plain, 0)
	if decay {
		for i := 0; i < fxSize*8/2000; i++ {
			bit := rng.Intn(fxSize * 8)
			off := bit / 8
			if (off >= fxHeaderStart && off < fxHeaderStart+luks2.BinHeaderBytes+1024) ||
				(off >= fxLUKSStart && off < fxLUKSTweak+240) {
				continue
			}
			dump[off] ^= 1 << uint(bit%8)
		}
	}
	return dump, vera, luksData
}

func parityConfig() core.CampaignConfig {
	return core.CampaignConfig{
		ShardBlocks: 4096, // 8 shards over the 2 MiB fixture
		Attack:      core.Config{RepairFlips: 2, Workers: 2},
	}
}

func TestFleetParityWithLocalCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process campaign parity is not a -short test")
	}
	if raceEnabled {
		t.Skip("deterministic parity comparison; -race multiplies the full-campaign runtime past the package timeout (see race_on_test.go)")
	}
	dump, vera, luksData := buildDecayedDump(t)

	local, err := core.RunCampaignSource(context.Background(), core.BytesSource(dump), parityConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(local.Keys) == 0 {
		t.Fatal("fixture recovered no keys locally; parity would be vacuous")
	}
	recovered := map[string]bool{}
	for _, k := range local.Keys {
		recovered[string(k.Master)] = true
	}
	if !recovered[string(vera)] || !recovered[string(luksData)] {
		t.Fatalf("local campaign missed planted masters (%d keys)", len(local.Keys))
	}

	// The fleet side runs fully traced (the local baseline ran with the
	// obs.Nop path), so a byte-identical result also proves tracing never
	// perturbs the pipeline's output.
	col := obs.NewCollector()
	coord := NewCoordinator(5*time.Second, col)
	mux := http.NewServeMux()
	coord.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for _, name := range []string{"w1", "w2", "w3"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			w := &Worker{Base: srv.URL, Name: name, Poll: 10 * time.Millisecond}
			w.Run(ctx)
		}(name)
	}

	fleet, err := coord.Run(context.Background(), core.BytesSource(dump), parityConfig())
	cancel()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	// Byte-identical across the merge surface: keys (masters, scores,
	// offsets, formats, volume tags), volumes, and the campaign scalars.
	localJSON, _ := json.Marshal(struct {
		Stride   int
		Coverage float64
		Pairs    int64
		Keys     []core.FoundKey
		Volumes  any
	}{local.Stride, local.Coverage, local.PairsTested, local.Keys, local.Volumes})
	fleetJSON, _ := json.Marshal(struct {
		Stride   int
		Coverage float64
		Pairs    int64
		Keys     []core.FoundKey
		Volumes  any
	}{fleet.Stride, fleet.Coverage, fleet.PairsTested, fleet.Keys, fleet.Volumes})
	if string(localJSON) != string(fleetJSON) {
		t.Fatalf("fleet result diverged from local campaign:\nlocal: %s\nfleet: %s", localJSON, fleetJSON)
	}

	// The planted LUKS2 data key must carry the volume UUID in both.
	tagged := false
	for _, k := range fleet.Keys {
		if string(k.Master) == string(luksData) && k.Volume == fxUUID {
			tagged = true
		}
	}
	if !tagged {
		t.Fatalf("fleet campaign lost the LUKS2 volume tag (keys %+v, volumes %+v)", fleet.Keys, fleet.Volumes)
	}

	st := coord.Stats()
	if st.Campaigns != 0 {
		t.Fatalf("campaign not unregistered after Run (%d live)", st.Campaigns)
	}

	validateMergedTimeline(t, col)
}

// validateMergedTimeline checks the acceptance contract on the
// coordinator's collector after a traced fleet run: one trace tree holds
// the campaign root, every lease span, and every worker's grafted shard
// subtree; each shard appears exactly once on a named worker track; and
// the clock-corrected tree is monotonic (children never start before
// their parents).
func validateMergedTimeline(t *testing.T, col *obs.Collector) {
	t.Helper()
	spans := col.Spans()
	byID := make(map[uint64]obs.SpanRecord, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	var campaignRoot uint64
	for _, s := range spans {
		if s.Name == "campaign" && s.Parent == 0 {
			campaignRoot = s.Root
		}
	}
	if campaignRoot == 0 {
		t.Fatal("no campaign root span in coordinator collector")
	}

	shardsSeen := map[string]int{}
	tracks := map[string]bool{}
	for _, s := range spans {
		if s.Track == "" {
			continue
		}
		tracks[s.Track] = true
		if s.Root != campaignRoot {
			t.Fatalf("grafted span %q on track %q outside the campaign tree (root %d, want %d)", s.Name, s.Track, s.Root, campaignRoot)
		}
		parent, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("grafted span %q has dangling parent %d", s.Name, s.Parent)
		}
		if s.StartNs < parent.StartNs {
			t.Fatalf("merged tree not monotonic: %q starts %d before parent %q at %d", s.Name, s.StartNs, parent.Name, parent.StartNs)
		}
		if s.Name == "shard" {
			if parent.Name != "fleet.lease" {
				t.Fatalf("worker shard span parented under %q, want fleet.lease", parent.Name)
			}
			for _, a := range s.Attrs {
				if a.Key == "shard" {
					shardsSeen[a.Value]++
				}
			}
		}
	}
	if len(tracks) == 0 {
		t.Fatal("no worker tracks in the merged timeline")
	}
	for tr := range tracks {
		if tr != "w1" && tr != "w2" && tr != "w3" {
			t.Fatalf("unexpected track %q", tr)
		}
	}
	if len(shardsSeen) != 8 {
		t.Fatalf("expected all 8 shards on worker tracks, saw %v", shardsSeen)
	}
	for idx, n := range shardsSeen {
		if n != 1 {
			t.Fatalf("shard %s grafted %d times, want exactly once", idx, n)
		}
	}

	// The merged trace must render as a valid Chrome trace with one lane
	// per worker plus the coordinator lane.
	var buf bytes.Buffer
	if err := col.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged chrome trace not valid JSON: %v", err)
	}
	lanes := map[string]bool{}
	lastTs := -1.0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			lanes[e.Args["name"]] = true
		case "X":
			if e.Ts < lastTs {
				t.Fatalf("chrome trace ts not monotonic: %g after %g", e.Ts, lastTs)
			}
			lastTs = e.Ts
		default:
			t.Fatalf("unexpected event phase %q", e.Ph)
		}
	}
	if !lanes["coordinator"] {
		t.Fatalf("no coordinator lane in merged trace (lanes %v)", lanes)
	}
	for tr := range tracks {
		if !lanes[tr] {
			t.Fatalf("worker %q has grafted spans but no named lane (lanes %v)", tr, lanes)
		}
	}
}

// TestWirePlanRoundTrip pins the wire projection: a worker-side plan
// rebuilt from JSON scans a shard to the exact bytes the coordinator-side
// plan produces.
func TestWirePlanRoundTrip(t *testing.T) {
	dump, _, _ := buildDecayedDump(t)
	plan, err := core.PlanCampaignSource(context.Background(), core.BytesSource(dump), parityConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()

	raw, err := json.Marshal(plan.Wire())
	if err != nil {
		t.Fatal(err)
	}
	var wire core.WirePlan
	if err := json.Unmarshal(raw, &wire); err != nil {
		t.Fatal(err)
	}
	remote, err := core.PlanFromWire(&wire, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	sh := plan.Shards[2]
	sub := dump[sh.FirstBlock*core.BlockBytes : (sh.FirstBlock+sh.Blocks)*core.BlockBytes]
	lr, err := plan.ScanShardBytes(context.Background(), sub, sh, nil)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := remote.ScanShardBytes(context.Background(), sub, sh, nil)
	if err != nil {
		t.Fatal(err)
	}
	lj, _ := json.Marshal(lr)
	rj, _ := json.Marshal(rr)
	if string(lj) != string(rj) {
		t.Fatalf("wire-rebuilt plan diverged on shard %d:\nlocal:  %s\nremote: %s", sh.Index, lj, rj)
	}
}
