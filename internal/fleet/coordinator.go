package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"coldboot/internal/core"
	"coldboot/internal/format"
	"coldboot/internal/obs"
)

// Wire DTOs shared by coordinator and worker. The shard-result body
// intentionally carries raw recovered masters: the fleet transport is the
// one sanctioned channel where key bytes leave a process, because the
// coordinator needs the real bytes to merge, dedup, and verify-tag across
// shards. Results at rest (WAL, job store) still go through
// secret.Bytes fingerprints in internal/service.

type leaseRequest struct {
	Worker string `json:"worker"`
}

type leaseResponse struct {
	Campaign string     `json:"campaign"`
	Lease    string     `json:"lease"`
	Stolen   bool       `json:"stolen,omitempty"`
	Shard    core.Shard `json:"shard"`
	// TTLNs is the lease lifetime; workers heartbeat a few times per TTL.
	TTLNs int64 `json:"ttl_ns"`
	// Trace is the campaign's trace context: the shared trace ID plus the
	// lease span's ID in the coordinator's collector, which the worker's
	// shipped span tree will be grafted under.
	Trace obs.TraceContext `json:"trace,omitempty"`
	// NowNs is the coordinator's obs.Now at response time; together with
	// the worker's send/receive timestamps it yields one NTP-style clock
	// offset sample.
	NowNs int64 `json:"now_ns"`
}

type leaseRef struct {
	Campaign string `json:"campaign"`
	Lease    string `json:"lease"`
}

// nowResponse carries the coordinator clock back on heartbeats (and
// telemetry flushes), so every round-trip refines the worker's offset
// estimate.
type nowResponse struct {
	NowNs int64 `json:"now_ns"`
}

type completeRequest struct {
	Campaign string          `json:"campaign"`
	Lease    string          `json:"lease"`
	Shard    core.Shard      `json:"shard"`
	Keys     []core.FoundKey `json:"keys"`
	Volumes  []format.Volume `json:"volumes"`
	Pairs    int64           `json:"pairs"`
	// Worker names the completing worker; grafted spans render on a track
	// of this name in the merged timeline.
	Worker string `json:"worker,omitempty"`
	// ClockOffsetNs is the worker's best estimate of (coordinator obs.Now -
	// worker obs.Now), applied to shipped span timestamps at graft time.
	ClockOffsetNs int64 `json:"clock_offset_ns,omitempty"`
	// Telemetry is the lease-scoped span tree, counters, and histograms
	// from the shard scan.
	Telemetry *obs.Telemetry `json:"telemetry,omitempty"`
}

// telemetryRequest is a periodic mid-shard flush of the same lease-scoped
// telemetry a completion carries. The coordinator only buffers it —
// grafting happens exclusively on accepted completion, so a shard that is
// stolen or requeued never leaves half-merged spans behind, and a flush
// racing its own completion cannot graft twice.
type telemetryRequest struct {
	Campaign      string        `json:"campaign"`
	Lease         string        `json:"lease"`
	Worker        string        `json:"worker"`
	ClockOffsetNs int64         `json:"clock_offset_ns,omitempty"`
	Telemetry     obs.Telemetry `json:"telemetry"`
}

// CoordinatorStats aggregates every live campaign's board gauges plus the
// worker-liveness gauge for /metrics.
type CoordinatorStats struct {
	Campaigns    int `json:"campaigns"`
	WorkersAlive int `json:"workers_alive"`
	BoardStats
}

// Coordinator owns the server side of a fleet: it plans campaigns,
// boards their shards, and serves the lease protocol. One Coordinator
// can run several campaigns concurrently (the daemon's job pool may
// overlap jobs); workers lease from whichever campaign has work.
type Coordinator struct {
	ttl    time.Duration
	tracer obs.Tracer

	mu       sync.Mutex
	sessions map[string]*session
	order    []string // session IDs, oldest first: lease scan order
	seq      uint64
	workers  map[string]int64 // worker name -> last contact (obs.Now)
}

type session struct {
	id    string
	plan  *core.CampaignPlan
	wire  []byte // marshaled core.WirePlan, served to workers once each
	src   core.BlockSource
	board *Board

	// fmu guards flushes: the latest buffered telemetry flush per live
	// lease, replaced wholesale on each flush and consumed (or discarded)
	// when the lease completes.
	fmu     sync.Mutex
	flushes map[string]*telemetryRequest
}

// NewCoordinator builds a coordinator. ttl is the shard lease lifetime
// (zero means 30s); tracer observes lease spans, fleet histograms, and
// the campaigns' own pipeline stages.
func NewCoordinator(ttl time.Duration, tracer obs.Tracer) *Coordinator {
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	return &Coordinator{
		ttl:      ttl,
		tracer:   obs.OrNop(tracer),
		sessions: make(map[string]*session),
		workers:  make(map[string]int64),
	}
}

// Register mounts the fleet protocol on mux.
func (c *Coordinator) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/shards/lease", c.handleLease)
	mux.HandleFunc("POST /v1/shards/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/shards/complete", c.handleComplete)
	mux.HandleFunc("POST /v1/telemetry", c.handleTelemetry)
	mux.HandleFunc("GET /v1/shards/plan", c.handlePlan)
	mux.HandleFunc("GET /v1/shards/data", c.handleData)
}

// Run executes one campaign over the fleet: plan locally (the mining
// pass reads the dump directly), post the shards, wait for workers to
// finish them, merge. It is the distributed twin of
// core.RunCampaignSource and returns the identical Result. Cancellation
// returns the context error; shards completed so far are merged.
func (c *Coordinator) Run(ctx context.Context, src core.BlockSource, cfg core.CampaignConfig) (*core.Result, error) {
	if cfg.Attack.Tracer == nil {
		cfg.Attack.Tracer = c.tracer
	}
	plan, err := core.PlanCampaignSource(ctx, src, cfg)
	if plan == nil {
		return nil, err
	}
	defer plan.Close()
	if err != nil {
		return plan.Result(), err
	}
	if cfg.Attack.KeysForBlock != nil {
		return plan.Result(), fmt.Errorf("fleet: KeysForBlock overrides are process-local and cannot be distributed")
	}
	wire, err := json.Marshal(plan.Wire())
	if err != nil {
		return plan.Result(), fmt.Errorf("fleet: encoding wire plan: %w", err)
	}

	s := &session{
		plan:    plan,
		wire:    wire,
		src:     src,
		board:   NewBoard(plan.Shards, c.ttl, c.tracer, plan.Root()),
		flushes: make(map[string]*telemetryRequest),
	}
	c.mu.Lock()
	c.seq++
	s.id = "c" + strconv.FormatUint(c.seq, 10)
	c.sessions[s.id] = s
	c.order = append(c.order, s.id)
	c.mu.Unlock()
	defer c.unregister(s.id)

	// Tick lease expiry so a dead fleet's shards requeue (and ctx
	// cancellation is noticed) even when no worker traffic arrives.
	tick := time.NewTicker(c.ttl / 4)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			s.board.Abort()
			return plan.Result(), ctx.Err()
		case <-tick.C:
			s.board.Expire()
		case <-s.board.Done():
			results, err := s.board.Results()
			if err != nil {
				return plan.Result(), err
			}
			var (
				keys  []core.FoundKey
				vols  []format.Volume
				pairs int64
			)
			for _, sr := range results {
				keys = append(keys, sr.Keys...)
				vols = append(vols, sr.Volumes...)
				pairs += sr.Pairs
			}
			mergeSpan := c.tracer.StartSpan("fleet.merge",
				obs.A("shards", strconv.Itoa(len(results))),
				obs.A("campaign", s.id))
			res := plan.Finalize(keys, vols, pairs)
			mergeSpan.End()
			return res, nil
		}
	}
}

func (c *Coordinator) unregister(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.sessions, id)
	for i, sid := range c.order {
		if sid == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// Stats aggregates board gauges across live campaigns. Workers count as
// alive when they contacted the coordinator within two lease TTLs.
func (c *Coordinator) Stats() CoordinatorStats {
	c.mu.Lock()
	sessions := make([]*session, 0, len(c.sessions))
	for _, s := range c.sessions {
		sessions = append(sessions, s)
	}
	st := CoordinatorStats{Campaigns: len(sessions)}
	horizon := obs.Now() - 2*int64(c.ttl)
	for name, last := range c.workers {
		if last >= horizon {
			st.WorkersAlive++
		} else {
			delete(c.workers, name)
		}
	}
	c.mu.Unlock()
	for _, s := range sessions {
		bs := s.board.Stats()
		st.Queued += bs.Queued
		st.Leased += bs.Leased
		st.Done += bs.Done
		st.Total += bs.Total
		st.Requeues += bs.Requeues
		st.Steals += bs.Steals
		st.Stragglers += bs.Stragglers
	}
	return st
}

// session looks up a campaign and stamps the calling worker alive.
func (c *Coordinator) session(id, worker string) *session {
	c.mu.Lock()
	defer c.mu.Unlock()
	if worker != "" {
		c.workers[worker] = obs.Now()
	}
	return c.sessions[id]
}

// liveSessions returns the campaigns in registration order.
func (c *Coordinator) liveSessions(worker string) []*session {
	c.mu.Lock()
	defer c.mu.Unlock()
	if worker != "" {
		c.workers[worker] = obs.Now()
	}
	out := make([]*session, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.sessions[id])
	}
	return out
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		http.Error(w, "bad lease request", http.StatusBadRequest)
		return
	}
	for _, s := range c.liveSessions(req.Worker) {
		l, ok := s.board.Lease(req.Worker)
		if !ok {
			continue
		}
		trace := s.plan.Trace
		if col := obs.FindCollector(c.tracer); col != nil {
			trace.ParentSpan = col.SpanID(l.span)
		}
		writeJSON(w, leaseResponse{
			Campaign: s.id,
			Lease:    l.ID,
			Stolen:   l.Stolen,
			Shard:    l.Shard,
			TTLNs:    int64(c.ttl),
			Trace:    trace,
			NowNs:    obs.Now(),
		})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var ref leaseRef
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&ref); err != nil {
		http.Error(w, "bad heartbeat", http.StatusBadRequest)
		return
	}
	s := c.session(ref.Campaign, "")
	if s == nil || !s.board.Heartbeat(ref.Lease) {
		http.Error(w, "lease gone", http.StatusGone)
		return
	}
	writeJSON(w, nowResponse{NowNs: obs.Now()})
}

// handleTelemetry buffers one mid-shard flush. Nothing merges here: the
// graft happens only when the shard's completion is accepted, using the
// freshest telemetry available (completion body first, this buffer as the
// fallback). A flush for a lease the board no longer tracks is discarded.
func (c *Coordinator) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	var req telemetryRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&req); err != nil {
		http.Error(w, "bad telemetry", http.StatusBadRequest)
		return
	}
	s := c.session(req.Campaign, req.Worker)
	if s == nil {
		http.Error(w, "no such campaign", http.StatusGone)
		return
	}
	if !s.board.LeaseAlive(req.Lease) {
		s.fmu.Lock()
		delete(s.flushes, req.Lease)
		s.fmu.Unlock()
		http.Error(w, "lease gone", http.StatusGone)
		return
	}
	s.fmu.Lock()
	s.flushes[req.Lease] = &req
	s.fmu.Unlock()
	writeJSON(w, nowResponse{NowNs: obs.Now()})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 256<<20)).Decode(&req); err != nil {
		http.Error(w, "bad completion", http.StatusBadRequest)
		return
	}
	s := c.session(req.Campaign, "")
	if s == nil {
		http.Error(w, "no such campaign", http.StatusGone)
		return
	}
	info, accepted := s.board.Complete(req.Lease, core.ShardResult{
		Shard:   req.Shard,
		Keys:    req.Keys,
		Volumes: req.Volumes,
		Pairs:   req.Pairs,
	})
	// The lease is gone either way; any buffered flush is consumed now or
	// never.
	s.fmu.Lock()
	buffered := s.flushes[req.Lease]
	delete(s.flushes, req.Lease)
	s.fmu.Unlock()
	if accepted {
		c.graftTelemetry(&req, buffered, info)
	}
	// A dropped duplicate (stolen-shard loser, expired lease) is a normal
	// outcome, not a client error; the worker just moves on.
	writeJSON(w, struct {
		Accepted bool `json:"accepted"`
	}{accepted})
}

// graftTelemetry merges one accepted shard's shipped telemetry into the
// coordinator's collector: the span tree grafts under the winning lease
// span (clock-corrected, floored at the grant time so the merged tree
// stays monotonic under any worker skew), and each shipped histogram also
// folds into a per-worker labelled series for /metrics. Only the winning
// completion reaches here, so a stolen shard's timeline shows exactly one
// worker's spans.
func (c *Coordinator) graftTelemetry(req *completeRequest, buffered *telemetryRequest, info CompleteInfo) {
	col := obs.FindCollector(c.tracer)
	if col == nil {
		return
	}
	worker := req.Worker
	if worker == "" {
		worker = info.Worker
	}
	tel := req.Telemetry
	offset := req.ClockOffsetNs
	if tel == nil && buffered != nil && buffered.Worker == worker {
		tel = &buffered.Telemetry
		offset = buffered.ClockOffsetNs
	}
	if tel == nil {
		return
	}
	parent, root := col.SpanContext(info.Span)
	col.Graft(*tel, obs.GraftOptions{
		Parent:   parent,
		Root:     root,
		Track:    worker,
		OffsetNs: offset,
		MinNs:    info.GrantedNs,
	})
	if worker != "" {
		// Per-worker breakdown alongside the fleet-wide aggregate Graft
		// already merged.
		for _, h := range tel.Histograms {
			col.MergeHistogram(h.Name+";worker="+worker, h)
		}
	}
}

func (c *Coordinator) handlePlan(w http.ResponseWriter, r *http.Request) {
	s := c.session(r.URL.Query().Get("campaign"), "")
	if s == nil {
		http.Error(w, "no such campaign", http.StatusGone)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(s.wire)
}

// handleData streams one leased shard's raw bytes to its worker.
func (c *Coordinator) handleData(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	s := c.session(q.Get("campaign"), "")
	if s == nil {
		http.Error(w, "no such campaign", http.StatusGone)
		return
	}
	first, err1 := strconv.Atoi(q.Get("first_block"))
	blocks, err2 := strconv.Atoi(q.Get("blocks"))
	if err1 != nil || err2 != nil || first < 0 || blocks <= 0 || first+blocks > s.plan.TotalBlocks {
		http.Error(w, "bad shard range", http.StatusBadRequest)
		return
	}
	buf := make([]byte, blocks*core.BlockBytes)
	if err := s.src.ReadBlocks(first, buf); err != nil {
		http.Error(w, "reading shard", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
	w.Write(buf)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
