//go:build !race

package fleet

// raceEnabled is false in ordinary test builds; see race_on_test.go.
const raceEnabled = false
