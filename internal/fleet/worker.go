package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"coldboot/internal/core"
	"coldboot/internal/obs"
)

// Worker is the client side of the fleet protocol: it polls the
// coordinator for shard leases, reconstructs the campaign plan from its
// wire projection, scans leased shards with the shared per-shard
// pipeline, and posts results back. Run until the context is cancelled;
// transport errors back off and retry (the coordinator's lease expiry
// covers the shard either way).
type Worker struct {
	// Base is the coordinator's URL prefix, e.g. "http://host:7133".
	Base string
	// Name identifies this worker in leases and /metrics (required).
	Name string
	// Client is the HTTP client (nil means http.DefaultClient).
	Client *http.Client
	// Tracer observes the worker's scans. Nil means no tracing.
	Tracer obs.Tracer
	// Poll is the idle re-poll interval when the coordinator has no work
	// (zero means 250ms).
	Poll time.Duration

	plans map[string]*core.CampaignPlan // campaign ID -> rebuilt plan
	clock clockSync                     // coordinator clock offset estimate
}

// clockSync keeps the worker's best estimate of the coordinator's obs.Now
// clock relative to its own. Every round-trip that returns the
// coordinator's clock yields an NTP-style sample offset = serverNow -
// (t0+t1)/2; the sample with the smallest round-trip time wins, since
// network asymmetry bounds its error by RTT/2.
type clockSync struct {
	mu      sync.Mutex
	sampled bool
	bestRTT int64
	offset  int64
}

// sample folds one round-trip observation in. serverNow == 0 (old
// coordinator, no clock in the response) is ignored.
func (cs *clockSync) sample(t0, t1, serverNow int64) {
	if serverNow == 0 || t1 < t0 {
		return
	}
	rtt := t1 - t0
	cs.mu.Lock()
	if !cs.sampled || rtt < cs.bestRTT {
		cs.sampled = true
		cs.bestRTT = rtt
		cs.offset = serverNow - (t0+t1)/2
	}
	cs.mu.Unlock()
}

// Offset returns the current (coordinator - worker) clock estimate in
// nanoseconds; zero before any sample.
func (cs *clockSync) Offset() int64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.offset
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

// Run leases and scans shards until ctx is cancelled. It returns
// ctx.Err() on cancellation; it never gives up on transport errors.
func (w *Worker) Run(ctx context.Context) error {
	if w.Name == "" {
		return fmt.Errorf("fleet: worker needs a name")
	}
	tracer := obs.OrNop(w.Tracer)
	poll := w.Poll
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	w.plans = make(map[string]*core.CampaignPlan)
	defer func() {
		for _, p := range w.plans {
			p.Close()
		}
	}()
	idle := time.NewTimer(0)
	if !idle.Stop() {
		<-idle.C
	}
	defer idle.Stop()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, ok, err := w.lease(ctx)
		if err != nil || !ok {
			// No work (or the coordinator is unreachable): back off one
			// poll interval and ask again.
			idle.Reset(poll)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-idle.C:
			}
			continue
		}
		if err := w.scanLease(ctx, lease, tracer); err != nil && ctx.Err() != nil {
			return ctx.Err()
		}
	}
}

// scanLease runs one leased shard end to end: plan, data, scan,
// complete — heartbeating throughout so the lease stays ours. The scan
// records into a lease-scoped Collector (alongside the worker's own
// tracer) so its span tree, counters, and histogram buckets ship back with
// the completion and graft into the coordinator's merged timeline.
func (w *Worker) scanLease(ctx context.Context, lease leaseResponse, tracer obs.Tracer) error {
	plan, err := w.planFor(ctx, lease.Campaign, tracer)
	if err != nil {
		return err
	}
	sub, err := w.shardData(ctx, lease)
	if err != nil {
		return err
	}
	col := obs.NewCollector()

	// Heartbeat until the scan finishes; a dead lease (requeued from
	// under us, or a stolen duplicate that lost) cancels the scan — the
	// work's result would be dropped anyway. On long shards each beat also
	// flushes the telemetry collected so far, so the coordinator holds a
	// recent snapshot even if this worker dies mid-shard.
	scanCtx, cancel := context.WithCancel(ctx)
	var hb sync.WaitGroup
	hb.Add(1)
	interval := time.Duration(lease.TTLNs / 3)
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		defer hb.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-scanCtx.Done():
				return
			case <-t.C:
				if !w.heartbeat(scanCtx, lease) {
					cancel()
					return
				}
				w.flushTelemetry(scanCtx, lease, col)
			}
		}
	}()

	sr, scanErr := plan.ScanShardBytesTraced(scanCtx, sub, lease.Shard, obs.Multi(col, tracer))
	cancel()
	hb.Wait()
	if scanErr != nil {
		// Partial shard results never leave the worker: the merge
		// contract needs whole shards, and the lease will expire back to
		// the queue for a healthy worker to redo.
		return scanErr
	}
	return w.complete(ctx, lease, sr, col)
}

// flushTelemetry posts the lease's telemetry-so-far. Best effort: a lost
// flush costs nothing (the completion carries the full tree) and a flush
// rejected for a dead lease is moot (the scan is being cancelled).
func (w *Worker) flushTelemetry(ctx context.Context, lease leaseResponse, col *obs.Collector) {
	t0 := obs.Now()
	var out nowResponse
	_, err := w.postJSON(ctx, "/v1/telemetry", telemetryRequest{
		Campaign:      lease.Campaign,
		Lease:         lease.Lease,
		Worker:        w.Name,
		ClockOffsetNs: w.clock.Offset(),
		Telemetry:     col.Telemetry(),
	}, &out)
	if err == nil {
		w.clock.sample(t0, obs.Now(), out.NowNs)
	}
}

// planFor fetches and rebuilds (once per campaign) the wire plan.
func (w *Worker) planFor(ctx context.Context, campaign string, tracer obs.Tracer) (*core.CampaignPlan, error) {
	if p, ok := w.plans[campaign]; ok {
		return p, nil
	}
	var wire core.WirePlan
	if err := w.getJSON(ctx, "/v1/shards/plan?campaign="+campaign, &wire); err != nil {
		return nil, err
	}
	p, err := core.PlanFromWire(&wire, tracer)
	if err != nil {
		return nil, err
	}
	// Retire plans from finished campaigns: a worker outlives many
	// campaigns, and each plan pins a schedule cache.
	for id, old := range w.plans {
		if id != campaign {
			old.Close()
			delete(w.plans, id)
		}
	}
	w.plans[campaign] = p
	return p, nil
}

func (w *Worker) lease(ctx context.Context) (leaseResponse, bool, error) {
	var out leaseResponse
	t0 := obs.Now()
	status, err := w.postJSON(ctx, "/v1/shards/lease", leaseRequest{Worker: w.Name}, &out)
	if err != nil {
		return out, false, err
	}
	if status == http.StatusOK {
		w.clock.sample(t0, obs.Now(), out.NowNs)
	}
	return out, status == http.StatusOK, nil
}

func (w *Worker) heartbeat(ctx context.Context, lease leaseResponse) bool {
	var out nowResponse
	t0 := obs.Now()
	status, err := w.postJSON(ctx, "/v1/shards/heartbeat", leaseRef{Campaign: lease.Campaign, Lease: lease.Lease}, &out)
	if err != nil {
		// Unreachable coordinator is not a dead lease: keep scanning and
		// let the next beat (or lease expiry) decide.
		return true
	}
	if status == http.StatusOK {
		w.clock.sample(t0, obs.Now(), out.NowNs)
	}
	return status == http.StatusOK
}

func (w *Worker) shardData(ctx context.Context, lease leaseResponse) ([]byte, error) {
	u := w.Base + "/v1/shards/data?campaign=" + lease.Campaign +
		"&first_block=" + strconv.Itoa(lease.Shard.FirstBlock) +
		"&blocks=" + strconv.Itoa(lease.Shard.Blocks)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: shard data: %s", resp.Status)
	}
	want := lease.Shard.Blocks * core.BlockBytes
	buf, err := io.ReadAll(io.LimitReader(resp.Body, int64(want)+1))
	if err != nil {
		return nil, err
	}
	if len(buf) != want {
		return nil, fmt.Errorf("fleet: shard data: got %d bytes, want %d", len(buf), want)
	}
	return buf, nil
}

// complete posts the shard's findings. The body carries the recovered
// masters raw: the coordinator needs the true bytes to merge and tag, and
// this transport is the fleet's sanctioned key egress (results at rest
// are fingerprinted by the service layer).
func (w *Worker) complete(ctx context.Context, lease leaseResponse, sr core.ShardResult, col *obs.Collector) error {
	tel := col.Telemetry()
	_, err := w.postJSON(ctx, "/v1/shards/complete", completeRequest{
		Campaign:      lease.Campaign,
		Lease:         lease.Lease,
		Shard:         sr.Shard,
		Keys:          sr.Keys,
		Volumes:       sr.Volumes,
		Pairs:         sr.Pairs,
		Worker:        w.Name,
		ClockOffsetNs: w.clock.Offset(),
		Telemetry:     &tel,
	}, nil)
	return err
}

func (w *Worker) postJSON(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Base+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

func (w *Worker) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.Base+path, nil)
	if err != nil {
		return err
	}
	resp, err := w.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: GET %s: %s", path, resp.Status)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(out)
}
