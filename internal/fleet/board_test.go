package fleet

import (
	"testing"
	"time"

	"coldboot/internal/core"
)

// fakeClock drives the board's monotonic clock by hand.
type fakeClock struct{ t int64 }

func (c *fakeClock) now() int64      { return c.t }
func (c *fakeClock) advance(d int64) { c.t += d }
func testShards(n, blocks int) []core.Shard {
	out := make([]core.Shard, n)
	for i := range out {
		out[i] = core.Shard{Index: i, FirstBlock: i * blocks, Blocks: blocks}
	}
	return out
}

func testBoard(n int, ttl time.Duration) (*Board, *fakeClock) {
	clk := &fakeClock{}
	b := NewBoard(testShards(n, 128), ttl, nil, nil)
	b.now = clk.now
	return b, clk
}

func result(sh core.Shard) core.ShardResult {
	return core.ShardResult{Shard: sh, Pairs: int64(sh.Index + 1)}
}

func TestBoardLeaseCompleteFlow(t *testing.T) {
	b, _ := testBoard(2, time.Minute)
	l1, ok1 := b.Lease("w1")
	l2, ok2 := b.Lease("w2")
	if !ok1 || !ok2 {
		t.Fatal("two shards, two leases expected")
	}
	if l1.Shard.Index == l2.Shard.Index {
		t.Fatal("same shard leased twice with queue non-empty")
	}
	if _, ok := b.Complete(l1.ID, result(l1.Shard)); !ok {
		t.Fatal("first completion rejected")
	}
	select {
	case <-b.Done():
		t.Fatal("board done with a shard outstanding")
	default:
	}
	if _, ok := b.Complete(l2.ID, result(l2.Shard)); !ok {
		t.Fatal("second completion rejected")
	}
	select {
	case <-b.Done():
	default:
		t.Fatal("board not done after all completions")
	}
	results, err := b.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Shard.Index != 0 || results[1].Shard.Index != 1 {
		t.Fatalf("results out of shard order: %+v", results)
	}
	st := b.Stats()
	if st.Done != 2 || st.Queued != 0 || st.Leased != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBoardExpiryRequeues(t *testing.T) {
	b, clk := testBoard(1, time.Second)
	l, ok := b.Lease("w1")
	if !ok {
		t.Fatal("no lease")
	}
	clk.advance(int64(2 * time.Second))
	if n := b.Expire(); n != 1 {
		t.Fatalf("Expire requeued %d leases, want 1", n)
	}
	if b.Heartbeat(l.ID) {
		t.Fatal("expired lease heartbeat accepted")
	}
	if _, ok := b.Complete(l.ID, result(l.Shard)); ok {
		t.Fatal("expired lease completion accepted")
	}
	l2, ok := b.Lease("w2")
	if !ok || l2.Shard.Index != l.Shard.Index || l2.Stolen {
		t.Fatalf("requeued shard not re-leased cleanly: %+v ok=%v", l2, ok)
	}
	if st := b.Stats(); st.Requeues != 1 {
		t.Fatalf("Requeues = %d, want 1", st.Requeues)
	}
}

func TestBoardHeartbeatExtendsLease(t *testing.T) {
	b, clk := testBoard(1, time.Second)
	l, _ := b.Lease("w1")
	for i := 0; i < 5; i++ {
		clk.advance(int64(700 * time.Millisecond))
		if !b.Heartbeat(l.ID) {
			t.Fatalf("heartbeat %d rejected", i)
		}
	}
	if _, ok := b.Complete(l.ID, result(l.Shard)); !ok {
		t.Fatal("heartbeat-kept lease could not complete")
	}
	if st := b.Stats(); st.Requeues != 0 {
		t.Fatalf("heartbeats did not prevent requeue (%d)", st.Requeues)
	}
}

// TestBoardWorkStealing: with the queue drained, an idle worker is handed
// a duplicate lease on the straggling shard; the first completion wins and
// the loser's result is dropped.
func TestBoardWorkStealing(t *testing.T) {
	b, _ := testBoard(1, time.Minute)
	orig, ok := b.Lease("slow")
	if !ok {
		t.Fatal("no initial lease")
	}
	dup, ok := b.Lease("fast")
	if !ok || !dup.Stolen || dup.Shard.Index != orig.Shard.Index {
		t.Fatalf("no stolen duplicate: %+v ok=%v", dup, ok)
	}
	if _, ok := b.Lease("third"); ok {
		t.Fatal("shard with two outstanding leases stolen again")
	}
	if info, ok := b.Complete(dup.ID, result(dup.Shard)); !ok || info.Worker != "fast" || !info.Stolen {
		t.Fatal("stealing worker's completion rejected")
	}
	if _, ok := b.Complete(orig.ID, result(orig.Shard)); ok {
		t.Fatal("losing duplicate's completion accepted")
	}
	st := b.Stats()
	if st.Steals != 1 || st.Done != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if _, err := b.Results(); err != nil {
		t.Fatal(err)
	}
}

func TestBoardUnknownLease(t *testing.T) {
	b, _ := testBoard(1, time.Minute)
	if b.Heartbeat("nope") {
		t.Fatal("unknown lease heartbeat accepted")
	}
	if _, ok := b.Complete("nope", core.ShardResult{}); ok {
		t.Fatal("unknown lease completion accepted")
	}
}

func TestBoardEmptyIsDone(t *testing.T) {
	b := NewBoard(nil, time.Minute, nil, nil)
	select {
	case <-b.Done():
	default:
		t.Fatal("empty board not immediately done")
	}
	if _, ok := b.Lease("w"); ok {
		t.Fatal("empty board granted a lease")
	}
}
