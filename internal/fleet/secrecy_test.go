package fleet

import (
	"context"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"strings"
	"testing"

	"coldboot/internal/core"
	"coldboot/internal/obs"
)

// TestTelemetryWireCarriesNoMasterBytes pins the secrecy boundary of the
// telemetry channel: the shard-completion body's Keys field is the fleet's
// one sanctioned raw-key egress, but the telemetry document riding the
// same request (span attrs, counter names, histogram names) must never
// carry recovered master bytes in any encoding — only counts, offsets,
// and sha256: fingerprints are allowed to describe keys there.
func TestTelemetryWireCarriesNoMasterBytes(t *testing.T) {
	dump, vera, luksData := buildDecayedDumpOpt(t, false)
	plan, err := core.PlanCampaignSource(context.Background(), core.BytesSource(dump), parityConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()

	// Scan the shards that hold the planted schedules exactly the way a
	// fleet worker does: traced into a lease-scoped collector.
	var masters [][]byte
	col := obs.NewCollector()
	for _, sh := range plan.Shards {
		first, last := sh.FirstBlock*core.BlockBytes, (sh.FirstBlock+sh.Blocks)*core.BlockBytes
		if !(first <= fxVeraStart && fxVeraStart < last) && !(first <= fxLUKSStart && fxLUKSStart < last) {
			continue
		}
		sub := dump[first:last]
		sr, err := plan.ScanShardBytesTraced(context.Background(), sub, sh, col)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range sr.Keys {
			masters = append(masters, append([]byte(nil), k.Master...))
		}
	}
	found := map[string]bool{}
	for _, m := range masters {
		found[string(m)] = true
	}
	if !found[string(vera)] || !found[string(luksData)] {
		t.Fatalf("scan missed planted masters (%d keys); secrecy check would be vacuous", len(masters))
	}

	tel := col.Telemetry()
	if len(tel.Spans) == 0 {
		t.Fatal("no spans in shipped telemetry; secrecy check would be vacuous")
	}
	doc, err := json.Marshal(telemetryRequest{
		Campaign: "c1", Lease: "l1", Worker: "w1", Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	wire := string(doc)
	for i, m := range masters {
		for enc, s := range map[string]string{
			"hex":       hex.EncodeToString(m),
			"HEX":       strings.ToUpper(hex.EncodeToString(m)),
			"base64":    base64.StdEncoding.EncodeToString(m),
			"base64url": base64.URLEncoding.EncodeToString(m),
			"raw":       string(m),
		} {
			if strings.Contains(wire, s) {
				t.Errorf("telemetry wire document leaks master %d as %s", i, enc)
			}
		}
	}

	// Span attrs that mention keys do so as counts or fingerprints, never
	// as material: every attr value must be short of a 32-byte hex run.
	for _, s := range tel.Spans {
		for _, a := range s.Attrs {
			if len(a.Value) >= 64 && isHexRun(a.Value) {
				t.Errorf("span %q attr %q carries a 64+ char hex string: %q", s.Name, a.Key, a.Value)
			}
			if strings.HasPrefix(a.Value, "sha256:") && len(a.Value) != len("sha256:")+12 {
				t.Errorf("span %q attr %q malformed fingerprint %q", s.Name, a.Key, a.Value)
			}
		}
	}
}

func isHexRun(s string) bool {
	for _, r := range s {
		if !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f' || r >= 'A' && r <= 'F') {
			return false
		}
	}
	return len(s) > 0
}
