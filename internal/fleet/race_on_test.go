//go:build race

package fleet

// raceEnabled reports that this test binary was built with -race. The
// fleet parity test skips under the race detector: it runs a full
// 2 MiB decayed campaign twice (locally and through a 3-worker fleet)
// and compares byte-identical outputs, so the detector finds nothing new
// there while multiplying the ~30s runtime past the package timeout.
// Concurrency coverage for the same code runs under -race in the board
// tests here and the coordinator-role end-to-end test in
// internal/service.
const raceEnabled = true
