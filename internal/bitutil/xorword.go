package bitutil

import "encoding/binary"

// Word-level kernels.
//
// The attack hot paths — scrambler (de)scrambling, per-candidate descramble
// trials, stream-cipher XOR, and decay accounting — all reduce to XOR and
// popcount over byte slices. Processing them a byte at a time wastes 7/8 of
// the datapath; these kernels run eight bytes per operation on uint64 lanes
// with a byte fallback for short tails, and are bit-identical to the naive
// loops for every alignment and length (see the differential tests).
//
// binary.LittleEndian.Uint64/PutUint64 compile to single unaligned
// load/store instructions on amd64 and arm64, so no alignment preconditions
// are imposed on callers.

// wordSize is the lane width of the fast paths.
const wordSize = 8

// XORWords writes a[i] ^ b[i] into dst for all i, eight bytes at a time.
// All three slices must have the same length; dst may alias a or b.
// It is the drop-in fast replacement for XOR.
func XORWords(dst, a, b []byte) []byte {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("bitutil: XORWords length mismatch")
	}
	n := len(a)
	i := 0
	for ; i+wordSize <= n; i += wordSize {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(a[i:])^binary.LittleEndian.Uint64(b[i:]))
	}
	for ; i < n; i++ {
		dst[i] = a[i] ^ b[i]
	}
	return dst
}

// XORBlock64 XORs exactly 64 bytes of src with 64 bytes of key into dst
// using eight fully unrolled uint64 lanes — the scrambling granularity of
// every scheme in the repo (one DDR burst, one ChaCha block, four AES-CTR
// counters). dst may alias src. Panics if any slice is shorter than 64
// bytes; longer slices have only their first 64 bytes touched.
func XORBlock64(dst, src, key []byte) {
	// Single bounds check per slice; the compiler elides the rest.
	d := dst[:64]
	s := src[:64]
	k := key[:64]
	binary.LittleEndian.PutUint64(d[0:], binary.LittleEndian.Uint64(s[0:])^binary.LittleEndian.Uint64(k[0:]))
	binary.LittleEndian.PutUint64(d[8:], binary.LittleEndian.Uint64(s[8:])^binary.LittleEndian.Uint64(k[8:]))
	binary.LittleEndian.PutUint64(d[16:], binary.LittleEndian.Uint64(s[16:])^binary.LittleEndian.Uint64(k[16:]))
	binary.LittleEndian.PutUint64(d[24:], binary.LittleEndian.Uint64(s[24:])^binary.LittleEndian.Uint64(k[24:]))
	binary.LittleEndian.PutUint64(d[32:], binary.LittleEndian.Uint64(s[32:])^binary.LittleEndian.Uint64(k[32:]))
	binary.LittleEndian.PutUint64(d[40:], binary.LittleEndian.Uint64(s[40:])^binary.LittleEndian.Uint64(k[40:]))
	binary.LittleEndian.PutUint64(d[48:], binary.LittleEndian.Uint64(s[48:])^binary.LittleEndian.Uint64(k[48:]))
	binary.LittleEndian.PutUint64(d[56:], binary.LittleEndian.Uint64(s[56:])^binary.LittleEndian.Uint64(k[56:]))
}

// XORBlock16 XORs exactly 16 bytes (one AES block) of src with key into
// dst on two uint64 lanes. dst may alias src.
func XORBlock16(dst, src, key []byte) {
	d := dst[:16]
	s := src[:16]
	k := key[:16]
	binary.LittleEndian.PutUint64(d[0:], binary.LittleEndian.Uint64(s[0:])^binary.LittleEndian.Uint64(k[0:]))
	binary.LittleEndian.PutUint64(d[8:], binary.LittleEndian.Uint64(s[8:])^binary.LittleEndian.Uint64(k[8:]))
}
