package bitutil

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHammingWeight(t *testing.T) {
	cases := []struct {
		in   []byte
		want int
	}{
		{nil, 0},
		{[]byte{0x00}, 0},
		{[]byte{0xFF}, 8},
		{[]byte{0x01, 0x02, 0x04}, 3},
		{[]byte{0xF0, 0x0F}, 8},
	}
	for _, c := range cases {
		if got := HammingWeight(c.in); got != c.want {
			t.Errorf("HammingWeight(%x) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestHammingDistance(t *testing.T) {
	a := []byte{0x00, 0xFF, 0xAA}
	b := []byte{0xFF, 0xFF, 0x55}
	if got := HammingDistance(a, b); got != 16 {
		t.Errorf("HammingDistance = %d, want 16", got)
	}
	if got := HammingDistance(a, a); got != 0 {
		t.Errorf("HammingDistance(a,a) = %d, want 0", got)
	}
}

func TestHammingDistancePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	HammingDistance([]byte{1}, []byte{1, 2})
}

func TestHammingDistanceEqualsWeightOfXOR(t *testing.T) {
	f := func(a, b [32]byte) bool {
		x := XORNew(a[:], b[:])
		return HammingDistance(a[:], b[:]) == HammingWeight(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHammingDistance16(t *testing.T) {
	if got := HammingDistance16(0xFFFF, 0x0000); got != 16 {
		t.Errorf("got %d, want 16", got)
	}
	if got := HammingDistance16(0x0001, 0x0003); got != 1 {
		t.Errorf("got %d, want 1", got)
	}
}

func TestNearEqual(t *testing.T) {
	a := []byte{0b00000001, 0x00}
	b := []byte{0b00000011, 0x00}
	if !NearEqual(a, b, 1) {
		t.Error("expected NearEqual within 1 flip")
	}
	if NearEqual(a, b, 0) {
		t.Error("expected not NearEqual within 0 flips")
	}
	if NearEqual(a, []byte{1}, 100) {
		t.Error("length mismatch must report false")
	}
}

func TestNearEqualMatchesHammingDistance(t *testing.T) {
	f := func(a, b [16]byte, budget uint8) bool {
		max := int(budget % 64)
		return NearEqual(a[:], b[:], max) == (HammingDistance(a[:], b[:]) <= max)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXORRoundTrip(t *testing.T) {
	f := func(a, k [64]byte) bool {
		enc := XORNew(a[:], k[:])
		dec := XORNew(enc, k[:])
		return string(dec) == string(a[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXORAliasing(t *testing.T) {
	a := []byte{1, 2, 3}
	k := []byte{0xFF, 0xFF, 0xFF}
	XOR(a, a, k)
	if a[0] != 0xFE || a[1] != 0xFD || a[2] != 0xFC {
		t.Errorf("in-place XOR wrong: %x", a)
	}
}

func TestIsZero(t *testing.T) {
	if !IsZero(make([]byte, 64)) {
		t.Error("zero slice reported nonzero")
	}
	if IsZero([]byte{0, 0, 1}) {
		t.Error("nonzero slice reported zero")
	}
	if !IsZero(nil) {
		t.Error("nil must count as zero")
	}
}

func TestEntropyBounds(t *testing.T) {
	if got := Entropy(make([]byte, 1024)); got != 0 {
		t.Errorf("entropy of constant data = %f, want 0", got)
	}
	uniform := make([]byte, 256*16)
	for i := range uniform {
		uniform[i] = byte(i)
	}
	if got := Entropy(uniform); math.Abs(got-8.0) > 1e-9 {
		t.Errorf("entropy of uniform data = %f, want 8", got)
	}
	if got := Entropy(nil); got != 0 {
		t.Errorf("entropy of empty = %f, want 0", got)
	}
}

func TestEntropyRandomIsHigh(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := make([]byte, 1<<16)
	rng.Read(b)
	if got := Entropy(b); got < 7.9 {
		t.Errorf("entropy of random data = %f, want > 7.9", got)
	}
}

func TestWord16RoundTrip(t *testing.T) {
	f := func(w uint16) bool {
		b := make([]byte, 4)
		PutWord16(b, 1, w)
		return Word16(b, 1) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWord16LittleEndian(t *testing.T) {
	b := []byte{0x34, 0x12}
	if got := Word16(b, 0); got != 0x1234 {
		t.Errorf("Word16 = %04x, want 1234", got)
	}
}

func TestByteHistogram(t *testing.T) {
	h := ByteHistogram([]byte{0, 0, 7, 255})
	if h[0] != 2 || h[7] != 1 || h[255] != 1 {
		t.Errorf("histogram wrong: h[0]=%d h[7]=%d h[255]=%d", h[0], h[7], h[255])
	}
}

func TestTransitionFraction(t *testing.T) {
	// Alternating bits 0101... have transition fraction 1.
	alt := make([]byte, 64)
	for i := range alt {
		alt[i] = 0x55
	}
	if got := TransitionFraction(alt); got < 0.99 {
		t.Errorf("alternating transition fraction = %f, want ~1", got)
	}
	if got := TransitionFraction(make([]byte, 64)); got != 0 {
		t.Errorf("constant transition fraction = %f, want 0", got)
	}
	if got := TransitionFraction(nil); got != 0 {
		t.Errorf("empty transition fraction = %f, want 0", got)
	}
}

func TestTransitionFractionRandomNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := make([]byte, 1<<15)
	rng.Read(b)
	got := TransitionFraction(b)
	if got < 0.48 || got > 0.52 {
		t.Errorf("random transition fraction = %f, want ~0.5", got)
	}
}

func TestOnesFraction(t *testing.T) {
	if got := OnesFraction([]byte{0xFF, 0x00}); got != 0.5 {
		t.Errorf("OnesFraction = %f, want 0.5", got)
	}
	if got := OnesFraction(nil); got != 0 {
		t.Errorf("OnesFraction(nil) = %f, want 0", got)
	}
}

func BenchmarkHammingDistance64B(b *testing.B) {
	x := make([]byte, 64)
	y := make([]byte, 64)
	rand.New(rand.NewSource(1)).Read(x)
	rand.New(rand.NewSource(2)).Read(y)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		HammingDistance(x, y)
	}
}
