package bitutil

import (
	"bytes"
	"math/bits"
	"math/rand"
	"testing"
)

// xorRef is the seed byte-at-a-time XOR loop, kept as the differential
// reference the word kernels must match bit for bit.
func xorRef(dst, a, b []byte) {
	for i := range a {
		dst[i] = a[i] ^ b[i]
	}
}

// TestXORWordsParity checks XORWords against the byte loop for every length
// 0..130 and every source/destination misalignment 0..7 — covering the full
// lane, partial tail, and unaligned-load cases.
func TestXORWordsParity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	backing := make([]byte, 160)
	rng.Read(backing)
	for length := 0; length <= 130; length++ {
		for align := 0; align < 8; align++ {
			a := make([]byte, align+length)
			b := make([]byte, align+length)
			rng.Read(a)
			rng.Read(b)
			want := make([]byte, length)
			xorRef(want, a[align:], b[align:])
			got := make([]byte, length)
			XORWords(got, a[align:], b[align:])
			if !bytes.Equal(got, want) {
				t.Fatalf("XORWords mismatch at length=%d align=%d", length, align)
			}
			// Aliased destination (dst == a), as the scramblers use it.
			aCopy := append([]byte{}, a...)
			XORWords(aCopy[align:], aCopy[align:], b[align:])
			if !bytes.Equal(aCopy[align:], want) {
				t.Fatalf("XORWords aliased mismatch at length=%d align=%d", length, align)
			}
		}
	}
}

// TestXORBlock64Parity checks the unrolled 64-byte kernel against the byte
// loop, including aliasing and unaligned slice starts.
func TestXORBlock64Parity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 64; trial++ {
		align := trial % 8
		src := make([]byte, align+64)
		key := make([]byte, align+64)
		rng.Read(src)
		rng.Read(key)
		want := make([]byte, 64)
		xorRef(want, src[align:], key[align:])
		got := make([]byte, align+64)
		XORBlock64(got[align:], src[align:], key[align:])
		if !bytes.Equal(got[align:], want) {
			t.Fatalf("XORBlock64 mismatch at align=%d", align)
		}
		srcCopy := append([]byte{}, src...)
		XORBlock64(srcCopy[align:], srcCopy[align:], key[align:])
		if !bytes.Equal(srcCopy[align:], want) {
			t.Fatalf("XORBlock64 aliased mismatch at align=%d", align)
		}
	}
}

// TestXORBlock16Parity checks the 16-byte kernel the AES-CTR path uses.
func TestXORBlock16Parity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 32; trial++ {
		src := make([]byte, 16)
		key := make([]byte, 16)
		rng.Read(src)
		rng.Read(key)
		want := make([]byte, 16)
		xorRef(want, src, key)
		got := make([]byte, 16)
		XORBlock16(got, src, key)
		if !bytes.Equal(got, want) {
			t.Fatal("XORBlock16 mismatch")
		}
		XORBlock16(src, src, key)
		if !bytes.Equal(src, want) {
			t.Fatal("XORBlock16 aliased mismatch")
		}
	}
}

func TestXORBlock64ShortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on short slice")
		}
	}()
	XORBlock64(make([]byte, 64), make([]byte, 63), make([]byte, 64))
}

// TestWordPopcountParity checks the word-level HammingWeight,
// HammingDistance, and IsZero against byte-loop references for lengths
// spanning lane boundaries.
func TestWordPopcountParity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for length := 0; length <= 67; length++ {
		a := make([]byte, length)
		b := make([]byte, length)
		rng.Read(a)
		rng.Read(b)
		wantW, wantD := 0, 0
		for i := range a {
			wantW += bits.OnesCount8(a[i])
			wantD += bits.OnesCount8(a[i] ^ b[i])
		}
		if got := HammingWeight(a); got != wantW {
			t.Fatalf("HammingWeight(%d bytes) = %d, want %d", length, got, wantW)
		}
		if got := HammingDistance(a, b); got != wantD {
			t.Fatalf("HammingDistance(%d bytes) = %d, want %d", length, got, wantD)
		}
		zero := make([]byte, length)
		if !IsZero(zero) {
			t.Fatalf("IsZero(zero[%d]) = false", length)
		}
		if length > 0 {
			zero[length-1] = 0x80
			if IsZero(zero) {
				t.Fatalf("IsZero with trailing set bit (length %d) = true", length)
			}
		}
	}
}
