// Package bitutil provides bit-level helpers shared across the scrambler
// simulator and the cold boot attack toolkit: hamming distance and weight,
// XOR combination, Shannon entropy, and simple byte-value statistics.
//
// Everything in this package operates on plain byte slices so it can be used
// on raw memory dumps, scrambler keys, and cipher keystreams alike.
package bitutil

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// HammingWeight returns the total number of set bits in b, popcounting
// eight bytes per step.
func HammingWeight(b []byte) int {
	n := 0
	i := 0
	for ; i+wordSize <= len(b); i += wordSize {
		n += bits.OnesCount64(binary.LittleEndian.Uint64(b[i:]))
	}
	for ; i < len(b); i++ {
		n += bits.OnesCount8(b[i])
	}
	return n
}

// HammingDistance returns the number of differing bits between a and b,
// popcounting eight bytes per step. The slices must have equal length.
func HammingDistance(a, b []byte) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("bitutil: hamming distance of unequal lengths %d and %d", len(a), len(b)))
	}
	n := 0
	i := 0
	for ; i+wordSize <= len(a); i += wordSize {
		n += bits.OnesCount64(binary.LittleEndian.Uint64(a[i:]) ^ binary.LittleEndian.Uint64(b[i:]))
	}
	for ; i < len(a); i++ {
		n += bits.OnesCount8(a[i] ^ b[i])
	}
	return n
}

// HammingDistance16 returns the number of differing bits between two 16-bit
// words. It is the primitive used by the scrambler-key litmus test, which
// compares XOR combinations of 2-byte words under a bit-flip budget.
func HammingDistance16(a, b uint16) int {
	return bits.OnesCount16(a ^ b)
}

// NearEqual reports whether a and b differ in at most maxFlips bits.
func NearEqual(a, b []byte, maxFlips int) bool {
	if len(a) != len(b) {
		return false
	}
	n := 0
	for i := range a {
		n += bits.OnesCount8(a[i] ^ b[i])
		if n > maxFlips {
			return false
		}
	}
	return true
}

// XOR writes a[i] ^ b[i] into dst and returns dst. All three slices must
// have the same length; dst may alias a or b.
func XOR(dst, a, b []byte) []byte {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("bitutil: XOR length mismatch")
	}
	for i := range a {
		dst[i] = a[i] ^ b[i]
	}
	return dst
}

// XORNew returns a freshly allocated a ^ b.
func XORNew(a, b []byte) []byte {
	return XOR(make([]byte, len(a)), a, b)
}

// IsZero reports whether every byte of b is zero, checking eight bytes per
// step.
func IsZero(b []byte) bool {
	i := 0
	for ; i+wordSize <= len(b); i += wordSize {
		if binary.LittleEndian.Uint64(b[i:]) != 0 {
			return false
		}
	}
	for ; i < len(b); i++ {
		if b[i] != 0 {
			return false
		}
	}
	return true
}

// Entropy returns the Shannon entropy of the byte distribution of b, in bits
// per byte (0..8). Encrypted or well-scrambled data approaches 8; structured
// plaintext is typically far lower.
func Entropy(b []byte) float64 {
	if len(b) == 0 {
		return 0
	}
	var hist [256]int
	for _, v := range b {
		hist[v]++
	}
	total := float64(len(b))
	h := 0.0
	for _, c := range hist {
		if c == 0 {
			continue
		}
		p := float64(c) / total
		h -= p * math.Log2(p)
	}
	return h
}

// Word16 returns the little-endian 16-bit word starting at b[off].
// The scrambler-key invariants in the paper are stated over 2-byte words of
// a 64-byte key; this is the accessor the litmus test uses.
func Word16(b []byte, off int) uint16 {
	return uint16(b[off]) | uint16(b[off+1])<<8
}

// PutWord16 stores w little-endian at b[off].
func PutWord16(b []byte, off int, w uint16) {
	b[off] = byte(w)
	b[off+1] = byte(w >> 8)
}

// ByteHistogram counts occurrences of each byte value in b.
func ByteHistogram(b []byte) [256]int {
	var hist [256]int
	for _, v := range b {
		hist[v]++
	}
	return hist
}

// TransitionFraction returns the fraction of adjacent bit positions in the
// serialized bit stream of b whose values differ. Memory scramblers aim to
// push this toward 0.5 on the DRAM bus to suppress di/dt harmonics; the
// metric is used by tests that check scrambled data "looks random".
func TransitionFraction(b []byte) float64 {
	if len(b) == 0 {
		return 0
	}
	transitions := 0
	totalPairs := len(b)*8 - 1
	prev := b[0] & 1
	for i := 0; i < len(b)*8; i++ {
		bit := (b[i/8] >> (uint(i) % 8)) & 1
		if i > 0 && bit != prev {
			transitions++
		}
		prev = bit
	}
	if totalPairs <= 0 {
		return 0
	}
	return float64(transitions) / float64(totalPairs)
}

// OnesFraction returns the fraction of set bits in b.
func OnesFraction(b []byte) float64 {
	if len(b) == 0 {
		return 0
	}
	return float64(HammingWeight(b)) / float64(len(b)*8)
}
