package sha512

import (
	"bytes"
	stdhmac "crypto/hmac"
	stdsha "crypto/sha512"
	"encoding/hex"
	"math/rand"
	"strings"
	"testing"
)

func TestSum512FIPSVectors(t *testing.T) {
	cases := []struct{ in, want string }{
		{"abc", "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a" +
			"2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"},
		{"", "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce" +
			"47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e"},
		{"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno" +
			"ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
			"8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018" +
				"501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909"},
	}
	for _, c := range cases {
		got := Sum512([]byte(c.in))
		if hex.EncodeToString(got[:]) != c.want {
			t.Errorf("SHA-512(%q) =\n %x\nwant %s", c.in, got, c.want)
		}
	}
}

func TestSum512MillionAs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	in := strings.Repeat("a", 1000000)
	got := Sum512([]byte(in))
	want := "e718483d0ce769644e2e42c7bc15b4638e1f98b13b2044285632a803afa973eb" +
		"de0ff244877ea60a4cb0432ce577c31beb009c5c2c49aa2e4eadb217ad8cc09b"
	if hex.EncodeToString(got[:]) != want {
		t.Errorf("SHA-512(10^6 x 'a') mismatch")
	}
}

func TestSum512MatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(1000)
		msg := make([]byte, n)
		rng.Read(msg)
		got := Sum512(msg)
		want := stdsha.Sum512(msg)
		if got != want {
			t.Fatalf("mismatch vs stdlib at length %d", n)
		}
	}
}

func TestStreamingWritesEqualOneShot(t *testing.T) {
	msg := make([]byte, 1000)
	for i := range msg {
		msg[i] = byte(i)
	}
	d := New()
	for i := 0; i < len(msg); i += 7 {
		end := i + 7
		if end > len(msg) {
			end = len(msg)
		}
		d.Write(msg[i:end])
	}
	oneShot := Sum512(msg)
	if !bytes.Equal(d.Sum(nil), oneShot[:]) {
		t.Error("streaming digest != one-shot digest")
	}
}

func TestSumDoesNotDisturbState(t *testing.T) {
	d := New()
	d.Write([]byte("hello "))
	first := d.Sum(nil)
	second := d.Sum(nil)
	if !bytes.Equal(first, second) {
		t.Error("Sum modified the digest state")
	}
	d.Write([]byte("world"))
	full := Sum512([]byte("hello world"))
	if !bytes.Equal(d.Sum(nil), full[:]) {
		t.Error("writes after Sum diverge from expected digest")
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	d := New()
	d.Write([]byte("garbage"))
	d.Reset()
	d.Write([]byte("abc"))
	want := Sum512([]byte("abc"))
	if !bytes.Equal(d.Sum(nil), want[:]) {
		t.Error("Reset did not restore initial state")
	}
}

func TestHMACRFC4231Vectors(t *testing.T) {
	// RFC 4231 test case 1.
	key := bytes.Repeat([]byte{0x0b}, 20)
	got := HMAC(key, []byte("Hi There"))
	want := "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde" +
		"daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854"
	if hex.EncodeToString(got[:]) != want {
		t.Errorf("HMAC test case 1 mismatch:\n got %x", got)
	}
	// RFC 4231 test case 2: key "Jefe".
	got2 := HMAC([]byte("Jefe"), []byte("what do ya want for nothing?"))
	want2 := "164b7a7bfcf819e2e395fbe73b56e0a387bd64222e831fd610270cd7ea250554" +
		"9758bf75c05a994a6d034f65f8f0e6fdcaeab1a34d4a6b4b636e070a38bce737"
	if hex.EncodeToString(got2[:]) != want2 {
		t.Errorf("HMAC test case 2 mismatch:\n got %x", got2)
	}
}

func TestHMACLongKeyMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		key := make([]byte, rng.Intn(300))
		msg := make([]byte, rng.Intn(300))
		rng.Read(key)
		rng.Read(msg)
		got := HMAC(key, msg)
		ref := stdhmac.New(stdsha.New, key)
		ref.Write(msg)
		if !bytes.Equal(got[:], ref.Sum(nil)) {
			t.Fatalf("HMAC mismatch vs stdlib (keylen %d, msglen %d)", len(key), len(msg))
		}
	}
}

func TestPBKDF2KnownAnswer(t *testing.T) {
	// Well-known PBKDF2-HMAC-SHA512 vector: P="password", S="salt", c=1.
	got := PBKDF2([]byte("password"), []byte("salt"), 1, 64)
	want := "867f70cf1ade02cff3752599a3a53dc4af34c7a669815ae5d513554e1c8cf252" +
		"c02d470a285a0501bad999bfe943c08f050235d7d68b1da55e63f73b60a57fce"
	if hex.EncodeToString(got) != want {
		t.Errorf("PBKDF2 c=1 mismatch:\n got %x", got)
	}
}

func TestPBKDF2IterationsChangeOutput(t *testing.T) {
	a := PBKDF2([]byte("pw"), []byte("salt"), 1, 32)
	b := PBKDF2([]byte("pw"), []byte("salt"), 2, 32)
	if bytes.Equal(a, b) {
		t.Error("iteration count had no effect")
	}
}

func TestPBKDF2MultiBlockOutput(t *testing.T) {
	// keyLen > 64 exercises the multi-block path; the prefix must match the
	// single-block derivation.
	long := PBKDF2([]byte("pw"), []byte("salt"), 10, 100)
	short := PBKDF2([]byte("pw"), []byte("salt"), 10, 64)
	if len(long) != 100 {
		t.Fatalf("len = %d, want 100", len(long))
	}
	if !bytes.Equal(long[:64], short) {
		t.Error("first block differs between 64- and 100-byte derivations")
	}
}

func TestPBKDF2PanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PBKDF2([]byte("pw"), []byte("s"), 0, 32)
}

func BenchmarkSum512_1K(b *testing.B) {
	buf := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		Sum512(buf)
	}
}

func BenchmarkPBKDF2_1000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		PBKDF2([]byte("password"), []byte("salt1234"), 1000, 64)
	}
}
