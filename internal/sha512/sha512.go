// Package sha512 is a from-scratch implementation of SHA-512 (FIPS 180-4),
// HMAC-SHA512 (RFC 2104), and PBKDF2 (RFC 8018). VeraCrypt derives its
// volume header keys with PBKDF2-HMAC-SHA512, so the simulated disk volumes
// in internal/veracrypt use this package; correctness is pinned to published
// vectors and cross-checked against the Go standard library in the tests.
package sha512

import "encoding/binary"

// Size is the SHA-512 digest length in bytes.
const Size = 64

// BlockSize is the SHA-512 block length in bytes.
const BlockSize = 128

// k holds the SHA-512 round constants: the first 64 bits of the fractional
// parts of the cube roots of the first 80 primes.
var k = [80]uint64{
	0x428a2f98d728ae22, 0x7137449123ef65cd, 0xb5c0fbcfec4d3b2f, 0xe9b5dba58189dbbc,
	0x3956c25bf348b538, 0x59f111f1b605d019, 0x923f82a4af194f9b, 0xab1c5ed5da6d8118,
	0xd807aa98a3030242, 0x12835b0145706fbe, 0x243185be4ee4b28c, 0x550c7dc3d5ffb4e2,
	0x72be5d74f27b896f, 0x80deb1fe3b1696b1, 0x9bdc06a725c71235, 0xc19bf174cf692694,
	0xe49b69c19ef14ad2, 0xefbe4786384f25e3, 0x0fc19dc68b8cd5b5, 0x240ca1cc77ac9c65,
	0x2de92c6f592b0275, 0x4a7484aa6ea6e483, 0x5cb0a9dcbd41fbd4, 0x76f988da831153b5,
	0x983e5152ee66dfab, 0xa831c66d2db43210, 0xb00327c898fb213f, 0xbf597fc7beef0ee4,
	0xc6e00bf33da88fc2, 0xd5a79147930aa725, 0x06ca6351e003826f, 0x142929670a0e6e70,
	0x27b70a8546d22ffc, 0x2e1b21385c26c926, 0x4d2c6dfc5ac42aed, 0x53380d139d95b3df,
	0x650a73548baf63de, 0x766a0abb3c77b2a8, 0x81c2c92e47edaee6, 0x92722c851482353b,
	0xa2bfe8a14cf10364, 0xa81a664bbc423001, 0xc24b8b70d0f89791, 0xc76c51a30654be30,
	0xd192e819d6ef5218, 0xd69906245565a910, 0xf40e35855771202a, 0x106aa07032bbd1b8,
	0x19a4c116b8d2d0c8, 0x1e376c085141ab53, 0x2748774cdf8eeb99, 0x34b0bcb5e19b48a8,
	0x391c0cb3c5c95a63, 0x4ed8aa4ae3418acb, 0x5b9cca4f7763e373, 0x682e6ff3d6b2b8a3,
	0x748f82ee5defb2fc, 0x78a5636f43172f60, 0x84c87814a1f0ab72, 0x8cc702081a6439ec,
	0x90befffa23631e28, 0xa4506cebde82bde9, 0xbef9a3f7b2c67915, 0xc67178f2e372532b,
	0xca273eceea26619c, 0xd186b8c721c0c207, 0xeada7dd6cde0eb1e, 0xf57d4f7fee6ed178,
	0x06f067aa72176fba, 0x0a637dc5a2c898a6, 0x113f9804bef90dae, 0x1b710b35131c471b,
	0x28db77f523047d84, 0x32caab7b40c72493, 0x3c9ebe0a15c9bebc, 0x431d67c49c100d4c,
	0x4cc5d4becb3e42b6, 0x597f299cfc657e2a, 0x5fcb6fab3ad6faec, 0x6c44198c4a475817,
}

var initH = [8]uint64{
	0x6a09e667f3bcc908, 0xbb67ae8584caa73b, 0x3c6ef372fe94f82b, 0xa54ff53a5f1d36f1,
	0x510e527fade682d1, 0x9b05688c2b3e6c1f, 0x1f83d9abfb41bd6b, 0x5be0cd19137e2179,
}

// Digest is a streaming SHA-512 hash.
type Digest struct {
	h   [8]uint64
	buf [BlockSize]byte
	n   int    // bytes buffered
	len uint64 // total message length in bytes
}

// New returns a new SHA-512 hash.
func New() *Digest {
	d := &Digest{}
	d.Reset()
	return d
}

// Reset returns the digest to its initial state.
func (d *Digest) Reset() {
	d.h = initH
	d.n = 0
	d.len = 0
}

// Write absorbs p into the hash. It never fails.
func (d *Digest) Write(p []byte) (int, error) {
	n := len(p)
	d.len += uint64(n)
	if d.n > 0 {
		c := copy(d.buf[d.n:], p)
		d.n += c
		p = p[c:]
		if d.n == BlockSize {
			d.block(d.buf[:])
			d.n = 0
		}
	}
	for len(p) >= BlockSize {
		d.block(p[:BlockSize])
		p = p[BlockSize:]
	}
	d.n += copy(d.buf[d.n:], p)
	return n, nil
}

// Sum appends the digest of everything written so far to b. The digest
// state is not modified, so writes can continue afterwards.
func (d *Digest) Sum(b []byte) []byte {
	c := *d // copy so Sum does not disturb the stream
	bitLen := c.len * 8
	c.Write([]byte{0x80})
	for c.n != 112 {
		c.Write([]byte{0x00})
	}
	var lenBlock [16]byte // 128-bit length; high 64 bits are zero here
	binary.BigEndian.PutUint64(lenBlock[8:], bitLen)
	c.Write(lenBlock[:])
	var out [Size]byte
	for i, v := range c.h {
		binary.BigEndian.PutUint64(out[8*i:], v)
	}
	return append(b, out[:]...)
}

func (d *Digest) block(p []byte) {
	var w [80]uint64
	for i := 0; i < 16; i++ {
		w[i] = binary.BigEndian.Uint64(p[8*i:])
	}
	for i := 16; i < 80; i++ {
		s0 := rotr(w[i-15], 1) ^ rotr(w[i-15], 8) ^ w[i-15]>>7
		s1 := rotr(w[i-2], 19) ^ rotr(w[i-2], 61) ^ w[i-2]>>6
		w[i] = w[i-16] + s0 + w[i-7] + s1
	}
	a, b, c, dd, e, f, g, h := d.h[0], d.h[1], d.h[2], d.h[3], d.h[4], d.h[5], d.h[6], d.h[7]
	for i := 0; i < 80; i++ {
		s1 := rotr(e, 14) ^ rotr(e, 18) ^ rotr(e, 41)
		ch := (e & f) ^ (^e & g)
		t1 := h + s1 + ch + k[i] + w[i]
		s0 := rotr(a, 28) ^ rotr(a, 34) ^ rotr(a, 39)
		maj := (a & b) ^ (a & c) ^ (b & c)
		t2 := s0 + maj
		h, g, f, e, dd, c, b, a = g, f, e, dd+t1, c, b, a, t1+t2
	}
	d.h[0] += a
	d.h[1] += b
	d.h[2] += c
	d.h[3] += dd
	d.h[4] += e
	d.h[5] += f
	d.h[6] += g
	d.h[7] += h
}

func rotr(v uint64, n uint) uint64 { return v>>n | v<<(64-n) }

// Sum512 returns the SHA-512 digest of data.
func Sum512(data []byte) [Size]byte {
	d := New()
	d.Write(data)
	var out [Size]byte
	copy(out[:], d.Sum(nil))
	return out
}

// HMAC computes HMAC-SHA512(key, message) per RFC 2104.
func HMAC(key, message []byte) [Size]byte {
	var k0 [BlockSize]byte
	if len(key) > BlockSize {
		sum := Sum512(key)
		copy(k0[:], sum[:])
	} else {
		copy(k0[:], key)
	}
	var ipad, opad [BlockSize]byte
	for i := range k0 {
		ipad[i] = k0[i] ^ 0x36
		opad[i] = k0[i] ^ 0x5c
	}
	inner := New()
	inner.Write(ipad[:])
	inner.Write(message)
	innerSum := inner.Sum(nil)
	outer := New()
	outer.Write(opad[:])
	outer.Write(innerSum)
	var out [Size]byte
	copy(out[:], outer.Sum(nil))
	return out
}

// PBKDF2 derives keyLen bytes from password and salt using iter iterations
// of HMAC-SHA512, per RFC 8018. VeraCrypt uses this construction (500k
// iterations by default; the simulation uses fewer for test speed).
func PBKDF2(password, salt []byte, iter, keyLen int) []byte {
	if iter < 1 || keyLen < 1 {
		panic("sha512: PBKDF2 requires iter >= 1 and keyLen >= 1")
	}
	out := make([]byte, 0, keyLen)
	var blockIndex [4]byte
	for block := 1; len(out) < keyLen; block++ {
		binary.BigEndian.PutUint32(blockIndex[:], uint32(block))
		u := HMAC(password, append(append([]byte{}, salt...), blockIndex[:]...))
		t := u
		for i := 1; i < iter; i++ {
			u = HMAC(password, u[:])
			for j := range t {
				t[j] ^= u[j]
			}
		}
		out = append(out, t[:]...)
	}
	return out[:keyLen]
}
