// Package memimg analyzes and renders memory images (dumps). It provides
// the block-correlation statistics behind the paper's Figure 3 — the visual
// DDR3-vs-DDR4 scrambler comparison — plus PGM rendering so the figure can
// literally be regenerated, and generic dump helpers used by the attack.
package memimg

import (
	"fmt"
	"io"
	"math"

	"coldboot/internal/bitutil"
)

// BlockBytes is the analysis granularity (one scrambler key / burst).
const BlockBytes = 64

// Image wraps a memory dump.
type Image struct {
	data []byte
}

// New wraps data (not copied) as an Image. Length must be a multiple of the
// block size.
func New(data []byte) (*Image, error) {
	if len(data)%BlockBytes != 0 {
		return nil, fmt.Errorf("memimg: length %d not a multiple of %d", len(data), BlockBytes)
	}
	return &Image{data: data}, nil
}

// Bytes returns the underlying data.
func (im *Image) Bytes() []byte { return im.data }

// NumBlocks returns the number of 64-byte blocks.
func (im *Image) NumBlocks() int { return len(im.data) / BlockBytes }

// Block returns block i (a view, not a copy).
func (im *Image) Block(i int) []byte {
	return im.data[i*BlockBytes : (i+1)*BlockBytes]
}

// XOR returns a new image whose blocks are the XOR of im and other — the
// "read back after reboot" analysis of Figures 3c/3e, where the data
// cancels and only the two boots' keystream XOR remains.
func (im *Image) XOR(other *Image) (*Image, error) {
	if len(im.data) != len(other.data) {
		return nil, fmt.Errorf("memimg: XOR size mismatch %d vs %d", len(im.data), len(other.data))
	}
	return &Image{data: bitutil.XORNew(im.data, other.data)}, nil
}

// CorrelationStats summarizes how much plaintext structure survives
// scrambling: how many distinct block images exist and how many blocks
// share their image with another block.
type CorrelationStats struct {
	Blocks         int // total blocks
	Distinct       int // distinct 64-byte block values
	Correlated     int // blocks whose value appears more than once
	LargestCluster int // size of the biggest group of identical blocks
}

// CorrelatedFraction returns Correlated/Blocks.
func (s CorrelationStats) CorrelatedFraction() float64 {
	if s.Blocks == 0 {
		return 0
	}
	return float64(s.Correlated) / float64(s.Blocks)
}

// Correlations computes CorrelationStats over the image.
func (im *Image) Correlations() CorrelationStats {
	counts := make(map[string]int)
	n := im.NumBlocks()
	for i := 0; i < n; i++ {
		counts[string(im.Block(i))]++
	}
	s := CorrelationStats{Blocks: n, Distinct: len(counts)}
	for _, c := range counts {
		if c > 1 {
			s.Correlated += c
		}
		if c > s.LargestCluster {
			s.LargestCluster = c
		}
	}
	return s
}

// ZeroBlocks returns the indices of all-zero blocks.
func (im *Image) ZeroBlocks() []int {
	var out []int
	for i := 0; i < im.NumBlocks(); i++ {
		if bitutil.IsZero(im.Block(i)) {
			out = append(out, i)
		}
	}
	return out
}

// Entropy returns the byte entropy of the whole image.
func (im *Image) Entropy() float64 { return bitutil.Entropy(im.data) }

// WritePGM renders the image as a binary PGM (P5) grayscale picture of the
// given width in pixels, one byte per pixel — how the paper's Figure 3
// panels were produced. Height is derived from the data size; trailing
// bytes that do not fill a full row are dropped.
func (im *Image) WritePGM(w io.Writer, width int) error {
	if width <= 0 {
		return fmt.Errorf("memimg: width must be positive")
	}
	height := len(im.data) / width
	if height == 0 {
		return fmt.Errorf("memimg: image smaller than one row of width %d", width)
	}
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", width, height); err != nil {
		return err
	}
	_, err := w.Write(im.data[:width*height])
	return err
}

// TestPattern fills buf with the kind of picture used as Figure 3a: large
// uniform regions (sky, shapes) plus a gradient, so that repeated 64-byte
// blocks are plentiful and scrambler correlations become visible.
func TestPattern(buf []byte, width int) {
	for i := range buf {
		x := i % width
		y := i / width
		switch {
		case y < width/4: // flat sky
			buf[i] = 0xE0
		case inCircle(x, y, width/2, width/2, width/5):
			buf[i] = 0x20 // solid disc
		case y%16 < 8 && x < width/8: // stripes on the left margin
			buf[i] = 0x80
		default: // smooth vertical gradient, constant per 64-byte run
			buf[i] = byte(64 + (y*128)/maxInt(1, width))
		}
	}
}

func inCircle(x, y, cx, cy, r int) bool {
	dx, dy := float64(x-cx), float64(y-cy)
	return math.Sqrt(dx*dx+dy*dy) < float64(r)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
