package memimg

import (
	"bytes"
	"strings"
	"testing"

	"coldboot/internal/scramble"
)

func TestNewRejectsPartialBlocks(t *testing.T) {
	if _, err := New(make([]byte, 65)); err == nil {
		t.Error("expected error for 65-byte image")
	}
	if _, err := New(make([]byte, 128)); err != nil {
		t.Errorf("128-byte image rejected: %v", err)
	}
}

func TestBlockAccess(t *testing.T) {
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	im, _ := New(data)
	if im.NumBlocks() != 4 {
		t.Fatalf("NumBlocks = %d", im.NumBlocks())
	}
	if im.Block(1)[0] != 64 {
		t.Error("block 1 does not start at byte 64")
	}
}

func TestCorrelationsOnUniformData(t *testing.T) {
	im, _ := New(make([]byte, 64*100))
	s := im.Correlations()
	if s.Distinct != 1 || s.Correlated != 100 || s.LargestCluster != 100 {
		t.Errorf("uniform stats = %+v", s)
	}
	if s.CorrelatedFraction() != 1.0 {
		t.Errorf("correlated fraction = %f", s.CorrelatedFraction())
	}
}

func TestCorrelationsOnDistinctData(t *testing.T) {
	data := make([]byte, 64*16)
	for b := 0; b < 16; b++ {
		data[b*64] = byte(b + 1)
	}
	im, _ := New(data)
	s := im.Correlations()
	if s.Distinct != 16 || s.Correlated != 0 {
		t.Errorf("distinct stats = %+v", s)
	}
}

func TestFigure3CorrelationOrdering(t *testing.T) {
	// The full Figure 3 pipeline on the test pattern: plaintext shows the
	// most correlation, DDR3-scrambled less, DDR4-scrambled the least.
	const width = 512
	plain := make([]byte, width*width)
	TestPattern(plain, width)

	imPlain, _ := New(plain)
	ddr3 := scramble.NewDDR3(1)
	ddr4 := scramble.NewSkylakeDDR4(1)
	buf3 := make([]byte, len(plain))
	buf4 := make([]byte, len(plain))
	ddr3.Scramble(buf3, plain, 0)
	ddr4.Scramble(buf4, plain, 0)
	im3, _ := New(buf3)
	im4, _ := New(buf4)

	p := imPlain.Correlations().CorrelatedFraction()
	c3 := im3.Correlations().CorrelatedFraction()
	c4 := im4.Correlations().CorrelatedFraction()
	if !(p >= c3 && c3 > c4) {
		t.Errorf("correlation ordering violated: plain %f, ddr3 %f, ddr4 %f", p, c3, c4)
	}
	if c3 < 0.01 {
		t.Errorf("DDR3 scrambling hides all correlations (%f); 16-key pool should leak", c3)
	}
}

func TestXORRevealsDDR3UniversalKey(t *testing.T) {
	// Figure 3c: scramble under seed A, reboot to seed B, read back;
	// XOR of the two dumps of the same data is key_A ^ key_B per block,
	// which for DDR3 is ONE universal value.
	plain := make([]byte, 64*1024)
	TestPattern(plain, 256)
	a := scramble.NewDDR3(10)
	b := scramble.NewDDR3(20)
	bufA := make([]byte, len(plain))
	bufB := make([]byte, len(plain))
	a.Scramble(bufA, plain, 0)
	b.Scramble(bufB, plain, 0)
	imA, _ := New(bufA)
	imB, _ := New(bufB)
	x, err := imA.XOR(imB)
	if err != nil {
		t.Fatal(err)
	}
	s := x.Correlations()
	if s.Distinct != 1 {
		t.Errorf("DDR3 reboot XOR has %d distinct blocks, want 1 (universal key)", s.Distinct)
	}
}

func TestXORShowsNoDDR4UniversalKey(t *testing.T) {
	plain := make([]byte, 64*4096)
	a := scramble.NewSkylakeDDR4(10)
	b := scramble.NewSkylakeDDR4(20)
	bufA := make([]byte, len(plain))
	bufB := make([]byte, len(plain))
	a.Scramble(bufA, plain, 0)
	b.Scramble(bufB, plain, 0)
	imA, _ := New(bufA)
	imB, _ := New(bufB)
	x, _ := imA.XOR(imB)
	s := x.Correlations()
	if s.Distinct < 2048 {
		t.Errorf("DDR4 reboot XOR collapsed to %d distinct blocks", s.Distinct)
	}
}

func TestXORSizeMismatch(t *testing.T) {
	a, _ := New(make([]byte, 64))
	b, _ := New(make([]byte, 128))
	if _, err := a.XOR(b); err == nil {
		t.Error("expected size-mismatch error")
	}
}

func TestZeroBlocks(t *testing.T) {
	data := make([]byte, 64*4)
	data[64] = 1 // block 1 nonzero
	im, _ := New(data)
	got := im.ZeroBlocks()
	want := []int{0, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("zero blocks = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("zero blocks = %v, want %v", got, want)
		}
	}
}

func TestWritePGM(t *testing.T) {
	data := make([]byte, 64*64)
	TestPattern(data, 64)
	im, _ := New(data)
	var buf bytes.Buffer
	if err := im.WritePGM(&buf, 64); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "P5\n64 64\n255\n") {
		t.Errorf("PGM header wrong: %q", out[:20])
	}
	if buf.Len() != len("P5\n64 64\n255\n")+64*64 {
		t.Errorf("PGM size = %d", buf.Len())
	}
}

func TestWritePGMErrors(t *testing.T) {
	im, _ := New(make([]byte, 64))
	var buf bytes.Buffer
	if err := im.WritePGM(&buf, 0); err == nil {
		t.Error("width 0 accepted")
	}
	if err := im.WritePGM(&buf, 1000); err == nil {
		t.Error("width larger than image accepted")
	}
}

func TestTestPatternHasRepeatedBlocks(t *testing.T) {
	buf := make([]byte, 64*1024)
	TestPattern(buf, 256)
	im, _ := New(buf)
	s := im.Correlations()
	if s.CorrelatedFraction() < 0.5 {
		t.Errorf("test pattern only %f correlated; Figure 3a needs repeated content", s.CorrelatedFraction())
	}
}

func TestScrambledEntropyHigherThanPlain(t *testing.T) {
	plain := make([]byte, 64*1024)
	TestPattern(plain, 256)
	s := scramble.NewSkylakeDDR4(9)
	scrambled := make([]byte, len(plain))
	s.Scramble(scrambled, plain, 0)
	imP, _ := New(plain)
	imS, _ := New(scrambled)
	if imS.Entropy() <= imP.Entropy() {
		t.Errorf("scrambling did not raise entropy: %f vs %f", imS.Entropy(), imP.Entropy())
	}
}
