package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// memJournal collects events in memory, encoded exactly as the service's
// WAL-backed journal would frame them.
type memJournal struct {
	mu      sync.Mutex
	records [][]byte
	fail    bool
}

func (m *memJournal) Record(e Event) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fail {
		return errors.New("journal down")
	}
	enc, err := json.Marshal(e)
	if err != nil {
		return err
	}
	m.records = append(m.records, enc)
	return nil
}

func (m *memJournal) ops(t *testing.T) []EventOp {
	t.Helper()
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []EventOp
	for _, rec := range m.records {
		var e Event
		if err := json.Unmarshal(rec, &e); err != nil {
			t.Fatal(err)
		}
		out = append(out, e.Op)
	}
	return out
}

func encodeString(p any) ([]byte, error) { return json.Marshal(p) }

func journaledPool(j Journal, run RunFunc, workers int) *Pool {
	return NewPool(run, Options{
		Workers:       workers,
		Journal:       j,
		EncodePayload: encodeString,
		EncodeResult:  encodeString,
	})
}

// TestJournalLifecycle drives a job to done and replays the journal: the
// reduced ledger must carry the submitted payload, the terminal state,
// and the encoded result.
func TestJournalLifecycle(t *testing.T) {
	j := &memJournal{}
	p := journaledPool(j, func(ctx context.Context, job *Job) (any, error) {
		return "result:" + job.Payload().(string), nil
	}, 1)
	defer p.Drain(context.Background())

	snap, err := p.Submit("payload-1", 3)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, p, snap.ID, StateDone)

	ops := j.ops(t)
	want := []EventOp{OpSubmit, OpStart, OpDone}
	if fmt.Sprint(ops) != fmt.Sprint(want) {
		t.Fatalf("journal ops = %v, want %v", ops, want)
	}

	ledger, err := Replay(nil, j.records)
	if err != nil {
		t.Fatal(err)
	}
	entries := ledger.Entries()
	if len(entries) != 1 {
		t.Fatalf("ledger has %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.ID != snap.ID || e.State != StateDone || e.Priority != 3 || e.Interrupted {
		t.Fatalf("entry = %+v", e)
	}
	var payload, result string
	if err := json.Unmarshal(e.Payload, &payload); err != nil || payload != "payload-1" {
		t.Fatalf("payload = %q (%v)", e.Payload, err)
	}
	if err := json.Unmarshal(e.Result, &result); err != nil || result != "result:payload-1" {
		t.Fatalf("result = %q (%v)", e.Result, err)
	}
}

// TestReplayInterruptedRun reduces a journal that ends mid-run — the
// crash shape — and expects the job back in the queue, flagged for
// re-execution.
func TestReplayInterruptedRun(t *testing.T) {
	records := [][]byte{
		[]byte(`{"op":"submit","id":"j1","priority":1,"payload":"\"dump-a\""}`),
		[]byte(`{"op":"start","id":"j1","attempts":1}`),
	}
	ledger, err := Replay(nil, records)
	if err != nil {
		t.Fatal(err)
	}
	entries := ledger.Entries()
	if len(entries) != 1 || !entries[0].Interrupted {
		t.Fatalf("mid-run job not flagged interrupted: %+v", entries)
	}
}

// TestDrainJournalsAbandonedJobs is the Drain fix: queued jobs left
// behind by a drain are counted and journaled requeueable, so a replay
// restores them instead of losing them.
func TestDrainJournalsAbandonedJobs(t *testing.T) {
	j := &memJournal{}
	block := make(chan struct{})
	p := journaledPool(j, func(ctx context.Context, job *Job) (any, error) {
		<-block
		return "ok", nil
	}, 1)

	running, err := p.Submit("running", 0)
	if err != nil {
		t.Fatal(err)
	}
	queuedA, _ := p.Submit("queued-a", 0)
	queuedB, _ := p.Submit("queued-b", 0)
	waitState(t, p, running.ID, StateRunning)

	done := make(chan error, 1)
	go func() { done <- p.Drain(context.Background()) }()
	// Drain marks the queued jobs abandoned immediately; unblock the
	// running job so the drain completes.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Abandoned != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("Stats.Abandoned = %d, want 2", p.Stats().Abandoned)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(block)
	if err := <-done; err != nil {
		t.Fatalf("Drain: %v", err)
	}

	ledger, err := Replay(nil, j.records)
	if err != nil {
		t.Fatal(err)
	}
	interrupted := map[string]bool{}
	for _, e := range ledger.Entries() {
		if e.Interrupted {
			interrupted[e.ID] = true
		}
	}
	if !interrupted[queuedA.ID] || !interrupted[queuedB.ID] {
		t.Fatalf("abandoned jobs not restorable: %v", interrupted)
	}
	if interrupted[running.ID] {
		t.Fatalf("drained running job %s wrongly marked interrupted", running.ID)
	}
}

// TestRestoreRunsInterruptedJobs rebuilds a pool from a replayed ledger:
// the interrupted job runs to completion, the terminal job's record is
// queryable without re-running.
func TestRestoreRunsInterruptedJobs(t *testing.T) {
	ran := make(chan string, 4)
	p := journaledPool(&memJournal{}, func(ctx context.Context, job *Job) (any, error) {
		ran <- job.Payload().(string)
		return "re-done", nil
	}, 1)
	defer p.Drain(context.Background())

	err := p.Restore([]Restored{
		{ID: "old-done", Priority: 0, Payload: "old", State: StateDone, Attempts: 1, Result: "old-result"},
		{ID: "crashed", Priority: 5, Payload: "crashed-dump", State: StateQueued, Attempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := waitState(t, p, "crashed", StateDone)
	if snap.Result != "re-done" {
		t.Fatalf("restored job result = %v", snap.Result)
	}
	select {
	case got := <-ran:
		if got != "crashed-dump" {
			t.Fatalf("restored run saw payload %q", got)
		}
	default:
		t.Fatalf("restored queued job never ran")
	}

	oldSnap, ok := p.Get("old-done")
	if !ok || oldSnap.State != StateDone || oldSnap.Result != "old-result" {
		t.Fatalf("terminal job not restored: %+v (ok=%v)", oldSnap, ok)
	}
	if len(ran) != 0 {
		t.Fatalf("terminal job was re-run")
	}

	// Restored IDs collide loudly, not silently.
	if err := p.Restore([]Restored{{ID: "crashed", State: StateQueued}}); err == nil {
		t.Fatalf("duplicate restore accepted")
	}
}

// TestPurgeDropsLedgerEntry: a purged job disappears from the replayed
// state entirely.
func TestPurgeDropsLedgerEntry(t *testing.T) {
	j := &memJournal{}
	p := journaledPool(j, func(ctx context.Context, job *Job) (any, error) { return nil, nil }, 1)
	defer p.Drain(context.Background())
	snap, err := p.Submit("x", 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, p, snap.ID, StateDone)
	if _, err := p.Remove(snap.ID); err != nil {
		t.Fatal(err)
	}
	ledger, err := Replay(nil, j.records)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(ledger.Entries()); n != 0 {
		t.Fatalf("purged job survives in ledger (%d entries)", n)
	}
}

// TestSubmitFailsWhenJournalDown: write-ahead means no journal, no job.
func TestSubmitFailsWhenJournalDown(t *testing.T) {
	j := &memJournal{fail: true}
	p := journaledPool(j, func(ctx context.Context, job *Job) (any, error) { return nil, nil }, 1)
	defer p.Drain(context.Background())
	if _, err := p.Submit("x", 0); err == nil {
		t.Fatalf("Submit succeeded with a failing journal")
	}
	if st := p.Stats(); st.Queued+st.Running+st.Done != 0 {
		t.Fatalf("failed submit left state behind: %+v", st)
	}
}

// TestSnapshotRoundTrip: Marshal + Replay(snapshot, more-events) equals
// replaying the full history.
func TestSnapshotRoundTrip(t *testing.T) {
	full := [][]byte{
		[]byte(`{"op":"submit","id":"a","priority":1,"payload":"\"pa\""}`),
		[]byte(`{"op":"start","id":"a","attempts":1}`),
		[]byte(`{"op":"done","id":"a","attempts":1,"result":"\"ra\""}`),
		[]byte(`{"op":"submit","id":"b","priority":2,"payload":"\"pb\""}`),
	}
	mid, err := Replay(nil, full[:2])
	if err != nil {
		t.Fatal(err)
	}
	snap, err := mid.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	fromSnap, err := Replay(snap, full[2:])
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Replay(nil, full)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(fromSnap.Entries())
	b, _ := json.Marshal(direct.Entries())
	if string(a) != string(b) {
		t.Fatalf("snapshot path diverged:\n%s\nvs\n%s", a, b)
	}
}
