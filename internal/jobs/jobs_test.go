package jobs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, p *Pool, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		snap, ok := p.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if snap.State == want {
			return snap
		}
		time.Sleep(time.Millisecond)
	}
	snap, _ := p.Get(id)
	t.Fatalf("job %s stuck in %s, want %s", id, snap.State, want)
	return Snapshot{}
}

func drain(t *testing.T, p *Pool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestPriorityAndFIFOOrder: with one worker pinned on a plug job, later
// submissions run highest-priority first and FIFO within a priority band.
func TestPriorityAndFIFOOrder(t *testing.T) {
	release := make(chan struct{})
	var mu sync.Mutex
	var ran []string
	p := NewPool(func(ctx context.Context, j *Job) (any, error) {
		if j.Payload() == "plug" {
			<-release
			return nil, nil
		}
		mu.Lock()
		ran = append(ran, j.Payload().(string))
		mu.Unlock()
		return nil, nil
	}, Options{Workers: 1})

	plug, err := p.Submit("plug", 100)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, p, plug.ID, StateRunning)
	for _, s := range []struct {
		name string
		pri  int
	}{{"a0", 0}, {"b5", 5}, {"c5", 5}, {"d0", 0}, {"e9", 9}} {
		if _, err := p.Submit(s.name, s.pri); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	waitState(t, p, plug.ID, StateDone)
	// Wait for the queue to empty.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Done != 6 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	got := strings.Join(ran, ",")
	mu.Unlock()
	if got != "e9,b5,c5,a0,d0" {
		t.Fatalf("execution order %q, want e9,b5,c5,a0,d0", got)
	}
	drain(t, p)
}

// TestTransientRetryWithBackoff: a job that fails transiently twice
// succeeds on its third attempt.
func TestTransientRetryWithBackoff(t *testing.T) {
	var runs atomic.Int32
	p := NewPool(func(ctx context.Context, j *Job) (any, error) {
		if runs.Add(1) < 3 {
			return nil, Transient(errors.New("flaky storage"))
		}
		return "ok", nil
	}, Options{Workers: 1, MaxAttempts: 5, RetryBackoff: time.Millisecond})
	snap, err := p.Submit(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, p, snap.ID, StateDone)
	if final.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", final.Attempts)
	}
	if final.Result != "ok" {
		t.Errorf("result = %v, want ok", final.Result)
	}
	if final.Error != "" {
		t.Errorf("done job still carries error %q", final.Error)
	}
	drain(t, p)
}

// TestTransientExhaustsAttempts: a persistently transient failure lands in
// failed after MaxAttempts runs.
func TestTransientExhaustsAttempts(t *testing.T) {
	p := NewPool(func(ctx context.Context, j *Job) (any, error) {
		return nil, Transient(errors.New("still flaky"))
	}, Options{Workers: 1, MaxAttempts: 2, RetryBackoff: time.Millisecond})
	snap, _ := p.Submit(nil, 0)
	final := waitState(t, p, snap.ID, StateFailed)
	if final.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", final.Attempts)
	}
	if !strings.Contains(final.Error, "still flaky") {
		t.Errorf("error = %q", final.Error)
	}
	drain(t, p)
}

// TestPermanentFailureDoesNotRetry: a non-transient error is terminal on
// the first attempt even with retries configured.
func TestPermanentFailureDoesNotRetry(t *testing.T) {
	var runs atomic.Int32
	p := NewPool(func(ctx context.Context, j *Job) (any, error) {
		runs.Add(1)
		return nil, errors.New("bad container")
	}, Options{Workers: 1, MaxAttempts: 5, RetryBackoff: time.Millisecond})
	snap, _ := p.Submit(nil, 0)
	final := waitState(t, p, snap.ID, StateFailed)
	if final.Attempts != 1 || runs.Load() != 1 {
		t.Errorf("attempts = %d (runs %d), want 1", final.Attempts, runs.Load())
	}
	drain(t, p)
}

// TestPanicFailsJob: a panicking RunFunc fails the job and the worker
// survives to run the next one.
func TestPanicFailsJob(t *testing.T) {
	p := NewPool(func(ctx context.Context, j *Job) (any, error) {
		if j.Payload() == "boom" {
			panic("kaboom")
		}
		return "fine", nil
	}, Options{Workers: 1})
	bad, _ := p.Submit("boom", 0)
	good, _ := p.Submit("calm", 0)
	final := waitState(t, p, bad.ID, StateFailed)
	if !strings.Contains(final.Error, "kaboom") {
		t.Errorf("error = %q, want panic message", final.Error)
	}
	if got := waitState(t, p, good.ID, StateDone); got.Result != "fine" {
		t.Errorf("next job result = %v", got.Result)
	}
	drain(t, p)
}

// TestCancelQueuedJobNeverRuns: cancelling a queued job prevents it from
// ever reaching the RunFunc.
func TestCancelQueuedJobNeverRuns(t *testing.T) {
	release := make(chan struct{})
	var sawVictim atomic.Bool
	p := NewPool(func(ctx context.Context, j *Job) (any, error) {
		if j.Payload() == "victim" {
			sawVictim.Store(true)
		}
		<-release
		return nil, nil
	}, Options{Workers: 1})
	plug, _ := p.Submit("plug", 0)
	waitState(t, p, plug.ID, StateRunning)
	victim, _ := p.Submit("victim", 0)
	snap, err := p.Cancel(victim.ID)
	if err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if snap.State != StateCanceled {
		t.Fatalf("state after cancel = %s", snap.State)
	}
	close(release)
	waitState(t, p, plug.ID, StateDone)
	drain(t, p)
	if sawVictim.Load() {
		t.Error("canceled job still ran")
	}
	// Cancelling a finished job reports ErrFinished.
	if _, err := p.Cancel(victim.ID); !errors.Is(err, ErrFinished) {
		t.Errorf("second cancel: %v, want ErrFinished", err)
	}
	if _, err := p.Cancel("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown cancel: %v, want ErrNotFound", err)
	}
}

// TestCancelRunningKeepsPartialResult: a running job's context is
// cancelled, and the partial result it returns alongside ctx.Err() is kept
// on the canceled snapshot.
func TestCancelRunningKeepsPartialResult(t *testing.T) {
	started := make(chan struct{})
	p := NewPool(func(ctx context.Context, j *Job) (any, error) {
		close(started)
		<-ctx.Done()
		return "partial", ctx.Err()
	}, Options{Workers: 1})
	snap, _ := p.Submit(nil, 0)
	<-started
	if _, err := p.Cancel(snap.ID); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, p, snap.ID, StateCanceled)
	if final.Result != "partial" {
		t.Errorf("partial result lost: %v", final.Result)
	}
	if final.FinishedAt == "" {
		t.Error("canceled job has no finish timestamp")
	}
	drain(t, p)
}

// TestJobTimeoutFails: the per-job budget expires the attempt with a
// deadline error (failed, not canceled).
func TestJobTimeoutFails(t *testing.T) {
	p := NewPool(func(ctx context.Context, j *Job) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}, Options{Workers: 1, JobTimeout: 5 * time.Millisecond})
	snap, _ := p.Submit(nil, 0)
	final := waitState(t, p, snap.ID, StateFailed)
	if !strings.Contains(final.Error, "deadline") {
		t.Errorf("error = %q, want deadline", final.Error)
	}
	drain(t, p)
}

// TestWorkerCapHoldsQueueDepth: jobs beyond the worker cap stay queued —
// the pool never grows extra runners.
func TestWorkerCapHoldsQueueDepth(t *testing.T) {
	release := make(chan struct{})
	var running, peak atomic.Int32
	p := NewPool(func(ctx context.Context, j *Job) (any, error) {
		n := running.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		defer running.Add(-1)
		<-release
		return nil, nil
	}, Options{Workers: 2})
	var ids []string
	for i := 0; i < 6; i++ {
		snap, err := p.Submit(i, 0)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := p.Stats()
		if st.Running == 2 && st.Queued == 4 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if st := p.Stats(); st.Running != 2 || st.Queued != 4 {
		t.Fatalf("stats = %+v, want 2 running / 4 queued", st)
	}
	close(release)
	for _, id := range ids {
		waitState(t, p, id, StateDone)
	}
	if peak.Load() > 2 {
		t.Errorf("concurrency peak %d exceeded worker cap 2", peak.Load())
	}
	drain(t, p)
}

// TestDrainFinishesRunningAbandonsQueued: Drain waits for the running job,
// leaves queued jobs queued, and Submit afterwards fails.
func TestDrainFinishesRunningAbandonsQueued(t *testing.T) {
	release := make(chan struct{})
	p := NewPool(func(ctx context.Context, j *Job) (any, error) {
		<-release
		return "finished", nil
	}, Options{Workers: 1})
	first, _ := p.Submit("run", 0)
	waitState(t, p, first.ID, StateRunning)
	second, _ := p.Submit("wait", 0)

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- p.Drain(ctx)
	}()
	// Drain must not interrupt the running job.
	time.Sleep(20 * time.Millisecond)
	if snap, _ := p.Get(first.ID); snap.State != StateRunning {
		t.Fatalf("running job state during drain = %s", snap.State)
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if snap, _ := p.Get(first.ID); snap.State != StateDone {
		t.Errorf("running job after drain = %s, want done", snap.State)
	}
	if snap, _ := p.Get(second.ID); snap.State != StateQueued {
		t.Errorf("queued job after drain = %s, want queued (abandoned)", snap.State)
	}
	if _, err := p.Submit("late", 0); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after drain: %v, want ErrDraining", err)
	}
	if !p.Stats().Draining {
		t.Error("stats do not report draining")
	}
}

// TestDrainTimeout: a Drain whose context expires while a job is still
// running returns the context error.
func TestDrainTimeout(t *testing.T) {
	release := make(chan struct{})
	p := NewPool(func(ctx context.Context, j *Job) (any, error) {
		<-release
		return nil, nil
	}, Options{Workers: 1})
	snap, _ := p.Submit(nil, 0)
	waitState(t, p, snap.ID, StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := p.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("drain: %v, want deadline exceeded", err)
	}
	close(release)
	drain(t, p)
}

// TestProgressAndStagesInSnapshot: the RunFunc's progress publications
// surface in snapshots, with high-water monotonicity.
func TestProgressAndStagesInSnapshot(t *testing.T) {
	checkpoint := make(chan struct{})
	proceed := make(chan struct{})
	p := NewPool(func(ctx context.Context, j *Job) (any, error) {
		j.StageStart("mine")
		j.StageEnd("mine", 5*time.Millisecond)
		j.StageStart("hunt")
		j.SetStageProgress("hunt", 10, 100)
		j.SetStageProgress("hunt", 7, 100) // stale report must not regress
		j.SetProgress(10, 100)
		checkpoint <- struct{}{}
		<-proceed
		j.StageEnd("hunt", 10*time.Millisecond)
		j.SetProgress(100, 100)
		return "done", nil
	}, Options{Workers: 1})
	snap, _ := p.Submit(nil, 0)
	<-checkpoint
	mid, _ := p.Get(snap.ID)
	if mid.Done != 10 || mid.Total != 100 {
		t.Errorf("mid progress = %d/%d, want 10/100", mid.Done, mid.Total)
	}
	if len(mid.Stages) != 2 || mid.Stages[0].Name != "mine" || mid.Stages[1].Name != "hunt" {
		t.Fatalf("stages = %+v", mid.Stages)
	}
	if mid.Stages[1].Done != 10 {
		t.Errorf("hunt stage regressed to %d", mid.Stages[1].Done)
	}
	if !mid.Stages[1].Running || mid.Stages[0].Running {
		t.Errorf("running flags wrong: %+v", mid.Stages)
	}
	if mid.Stages[0].WallNs != (5 * time.Millisecond).Nanoseconds() {
		t.Errorf("mine wall = %d", mid.Stages[0].WallNs)
	}
	close(proceed)
	final := waitState(t, p, snap.ID, StateDone)
	if final.Progress != 1 {
		t.Errorf("final progress = %f", final.Progress)
	}
	drain(t, p)
}

// TestSnapshotTimestampsUseInjectedClock: timestamps come from the
// injected clock, in submit→start→finish order.
func TestSnapshotTimestampsUseInjectedClock(t *testing.T) {
	var mu sync.Mutex
	now := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		now = now.Add(time.Second)
		return now
	}
	p := NewPool(func(ctx context.Context, j *Job) (any, error) {
		return nil, nil
	}, Options{Workers: 1, Clock: clock})
	snap, _ := p.Submit(nil, 0)
	final := waitState(t, p, snap.ID, StateDone)
	sub, _ := time.Parse(time.RFC3339Nano, final.SubmittedAt)
	start, _ := time.Parse(time.RFC3339Nano, final.StartedAt)
	fin, _ := time.Parse(time.RFC3339Nano, final.FinishedAt)
	if !sub.Before(start) || !start.Before(fin) {
		t.Errorf("timestamps out of order: %v %v %v", sub, start, fin)
	}
	drain(t, p)
}

// TestOnJobDoneHook: the terminal hook fires exactly once per job, for
// every terminal path.
func TestOnJobDoneHook(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[string]int)
	var pool *Pool
	release := make(chan struct{})
	pool = NewPool(func(ctx context.Context, j *Job) (any, error) {
		switch j.Payload() {
		case "ok":
			return nil, nil
		case "fail":
			return nil, errors.New("nope")
		default:
			<-release
			return nil, nil
		}
	}, Options{Workers: 1, OnJobDone: func(j *Job) {
		mu.Lock()
		seen[j.ID()]++
		mu.Unlock()
	}})
	plug, _ := pool.Submit("plug", 9)
	waitState(t, pool, plug.ID, StateRunning)
	ok, _ := pool.Submit("ok", 0)
	fail, _ := pool.Submit("fail", 0)
	canceled, _ := pool.Submit("never", 0)
	if _, err := pool.Cancel(canceled.ID); err != nil {
		t.Fatal(err)
	}
	close(release)
	waitState(t, pool, ok.ID, StateDone)
	waitState(t, pool, fail.ID, StateFailed)
	waitState(t, pool, canceled.ID, StateCanceled)
	drain(t, pool)
	mu.Lock()
	defer mu.Unlock()
	for _, id := range []string{plug.ID, ok.ID, fail.ID, canceled.ID} {
		if seen[id] != 1 {
			t.Errorf("hook fired %d times for %s, want 1", seen[id], id)
		}
	}
}

// TestListOrderAndStats: List returns submission order; Stats counts
// states.
func TestListOrderAndStats(t *testing.T) {
	p := NewPool(func(ctx context.Context, j *Job) (any, error) {
		return nil, nil
	}, Options{Workers: 1})
	var ids []string
	for i := 0; i < 4; i++ {
		snap, _ := p.Submit(i, i) // varied priorities must not affect List order
		ids = append(ids, snap.ID)
	}
	for _, id := range ids {
		waitState(t, p, id, StateDone)
	}
	list := p.List()
	if len(list) != 4 {
		t.Fatalf("list has %d jobs", len(list))
	}
	for i, snap := range list {
		if snap.ID != ids[i] {
			t.Errorf("list[%d] = %s, want %s", i, snap.ID, ids[i])
		}
	}
	if st := p.Stats(); st.Done != 4 || st.Queued != 0 || st.Running != 0 {
		t.Errorf("stats = %+v", st)
	}
	drain(t, p)
}

// TestTransientHelpers pins the error-classification contract.
func TestTransientHelpers(t *testing.T) {
	if Transient(nil) != nil {
		t.Error("Transient(nil) must be nil")
	}
	base := errors.New("io hiccup")
	wrapped := Transient(base)
	if !IsTransient(wrapped) || !errors.Is(wrapped, base) {
		t.Error("transient wrapper loses identity")
	}
	if IsTransient(base) || IsTransient(fmt.Errorf("other: %w", base)) {
		t.Error("unmarked errors must not be transient")
	}
	if !IsTransient(fmt.Errorf("outer: %w", wrapped)) {
		t.Error("transient mark must survive further wrapping")
	}
}

// TestPoolRaceHammer drives every pool API from many goroutines at once;
// meaningful under -race (make race).
func TestPoolRaceHammer(t *testing.T) {
	p := NewPool(func(ctx context.Context, j *Job) (any, error) {
		j.SetProgress(1, 2)
		j.StageStart("work")
		j.StageEnd("work", time.Microsecond)
		switch j.Payload().(int) % 3 {
		case 0:
			return "ok", nil
		case 1:
			return nil, Transient(errors.New("flaky"))
		default:
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			default:
				return nil, errors.New("hard")
			}
		}
	}, Options{Workers: 4, MaxAttempts: 2, RetryBackoff: time.Microsecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			var mine []string
			for i := 0; i < 50; i++ {
				snap, err := p.Submit(g*100+i, rng.Intn(3))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				mine = append(mine, snap.ID)
				if i%5 == 0 {
					p.Cancel(mine[rng.Intn(len(mine))])
				}
				if i%7 == 0 {
					p.List()
					p.Stats()
				}
				p.Get(mine[rng.Intn(len(mine))])
			}
		}(g)
	}
	wg.Wait()
	// Every job must settle before drain completes.
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		st := p.Stats()
		if st.Running == 0 && st.Queued == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	drain(t, p)
	st := p.Stats()
	if got := st.Done + st.Failed + st.Canceled + st.Queued; got != 400 {
		t.Errorf("jobs accounted = %d (stats %+v), want 400", got, st)
	}
}
