package jobs

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"coldboot/internal/obs"
)

// RunFunc executes one job. It must honour ctx — the analysis pipeline
// polls it every scan chunk — and should return whatever partial result it
// accumulated alongside ctx.Err() when interrupted: the pool keeps the
// result in every terminal state. Wrap retryable errors with Transient.
type RunFunc func(ctx context.Context, job *Job) (result any, err error)

// Options tunes a Pool.
type Options struct {
	// Workers is the concurrency cap: exactly this many worker goroutines
	// exist, and excess jobs wait in the queue (default 1).
	Workers int
	// JobTimeout bounds each attempt's run time (0 = no limit). A timed-out
	// job fails with context.DeadlineExceeded.
	JobTimeout time.Duration
	// MaxAttempts is the total number of runs a transiently failing job may
	// consume (default 1: no retries).
	MaxAttempts int
	// RetryBackoff is the delay before the first retry, doubling per
	// subsequent retry (default 250ms).
	RetryBackoff time.Duration
	// Clock supplies job timestamps; nil means the system clock. Tests
	// inject a fake for deterministic snapshots.
	Clock func() time.Time
	// OnJobDone, if non-nil, is called (outside the pool's lock, from the
	// worker or cancelling goroutine) each time a job reaches a terminal
	// state. The service uses it to delete spooled dump files and bump
	// metrics.
	OnJobDone func(job *Job)
	// Tracer receives pool latency telemetry: "jobs.queue_wait_ns" (submit
	// to first run) and "jobs.run_ns" (wall time of the attempt that
	// reached a terminal state) histogram samples. Nil means no telemetry
	// (obs.Nop).
	Tracer obs.Tracer
	// Journal, if non-nil, makes the store durable: every lifecycle
	// mutation is recorded through it BEFORE it applies. A Record error at
	// Submit fails the submit (nothing runs that the journal cannot
	// replay); errors on later transitions are counted in
	// Stats.JournalErrors — the in-memory state machine proceeds, the
	// journal has merely fallen behind reality.
	Journal Journal
	// EncodePayload serializes a job payload into the journal's submit
	// event (nil leaves payloads out — such jobs cannot be restored).
	EncodePayload func(payload any) ([]byte, error)
	// EncodeResult serializes a result into terminal events. The service
	// encoder redacts key material to fingerprints unless the job opted
	// into reveal at submit.
	EncodeResult func(result any) ([]byte, error)
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 1
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 250 * time.Millisecond
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	o.Tracer = obs.OrNop(o.Tracer)
	return o
}

// Pool schedules jobs onto a fixed set of workers. Create with NewPool;
// all methods are safe for concurrent use.
type Pool struct {
	run  RunFunc
	opts Options

	mu        sync.Mutex
	cond      *sync.Cond
	queue     jobHeap         // guarded by mu
	jobs      map[string]*Job // guarded by mu
	order     []string        // submission order, for List; guarded by mu
	seq       uint64          // guarded by mu
	counts    map[State]int   // guarded by mu
	draining  bool            // guarded by mu
	abandoned int             // queued jobs left behind by Drain; guarded by mu
	jErrors   int             // post-submit journal Record failures; guarded by mu
	workers   sync.WaitGroup
}

// NewPool starts opts.Workers worker goroutines and returns the ready
// pool. Callers must eventually Drain it to stop the workers.
func NewPool(run RunFunc, opts Options) *Pool {
	p := &Pool{
		run:    run,
		opts:   opts.withDefaults(),
		jobs:   make(map[string]*Job),
		counts: make(map[State]int),
	}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < p.opts.Workers; i++ {
		p.workers.Add(1)
		go p.worker()
	}
	return p
}

// Submit enqueues a new job and returns its initial snapshot. Higher
// priority runs first; equal priorities run in submission order (FIFO).
// With a Journal configured, the submit event is durable before the job
// becomes runnable; a journal error fails the submit.
func (p *Pool) Submit(payload any, priority int) (Snapshot, error) {
	p.mu.Lock()
	if p.draining {
		p.mu.Unlock()
		return Snapshot{}, ErrDraining
	}
	p.seq++
	j := &Job{
		id:        newID(p.seq),
		priority:  priority,
		seq:       p.seq,
		payload:   payload,
		state:     StateQueued,
		submitted: p.opts.Clock(),
		heapIndex: -1,
	}
	if p.opts.Journal != nil {
		e := Event{Op: OpSubmit, ID: j.id, Priority: priority, Time: j.submitted.Format(time.RFC3339Nano)}
		if p.opts.EncodePayload != nil {
			enc, err := p.opts.EncodePayload(payload)
			if err != nil {
				p.mu.Unlock()
				return Snapshot{}, fmt.Errorf("jobs: encoding payload for journal: %w", err)
			}
			e.Payload = enc
		}
		if err := p.opts.Journal.Record(e); err != nil {
			p.mu.Unlock()
			return Snapshot{}, fmt.Errorf("jobs: journaling submit: %w", err)
		}
	}
	p.jobs[j.id] = j
	p.order = append(p.order, j.id)
	p.counts[StateQueued]++
	heap.Push(&p.queue, j)
	p.cond.Signal()
	snap := p.snapshotLocked(j)
	p.mu.Unlock()
	return snap, nil
}

// Restore re-inserts jobs recovered from a replayed journal into a fresh
// pool: interrupted jobs (State queued) go back on the queue and run
// again, terminal jobs re-enter the bookkeeping so their records stay
// queryable across the restart. Restore does not journal — the restored
// state is, by definition, already in the journal. It must be called
// before any Submit traffic (normally right after NewPool).
func (p *Pool) Restore(restored []Restored) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range restored {
		if r.ID == "" {
			return fmt.Errorf("jobs: restoring job with empty ID")
		}
		if _, exists := p.jobs[r.ID]; exists {
			return fmt.Errorf("jobs: restoring duplicate job %s", r.ID)
		}
		if r.State != StateQueued && !r.State.Terminal() {
			return fmt.Errorf("jobs: restoring job %s in non-restorable state %s", r.ID, r.State)
		}
		p.seq++
		j := &Job{
			id:        r.ID,
			priority:  r.Priority,
			seq:       p.seq,
			payload:   r.Payload,
			state:     r.State,
			attempts:  r.Attempts,
			errText:   r.Error,
			result:    r.Result,
			submitted: p.opts.Clock(),
			heapIndex: -1,
		}
		p.jobs[j.id] = j
		p.order = append(p.order, j.id)
		p.counts[j.state]++
		if j.state == StateQueued {
			heap.Push(&p.queue, j)
			p.cond.Signal()
		}
	}
	return nil
}

// record journals a lifecycle event (pool mutex held). Failures after
// submit are counted, not fatal: the scheduler's in-memory truth moves
// on and the next snapshot heals the journal.
func (p *Pool) record(e Event) {
	if p.opts.Journal == nil {
		return
	}
	e.Time = p.opts.Clock().Format(time.RFC3339Nano)
	if err := p.opts.Journal.Record(e); err != nil {
		p.jErrors++
	}
}

// terminalEvent builds the journal event for a job reaching state s.
func (p *Pool) terminalEvent(j *Job, s State) Event {
	e := Event{ID: j.id, Attempts: j.attempts, Error: j.errText}
	switch s {
	case StateDone:
		e.Op = OpDone
	case StateFailed:
		e.Op = OpFailed
	default:
		e.Op = OpCanceled
	}
	if j.result != nil && p.opts.EncodeResult != nil {
		if enc, err := p.opts.EncodeResult(j.result); err == nil {
			e.Result = enc
		}
	}
	return e
}

// Get returns a snapshot of the job with the given ID.
func (p *Pool) Get(id string) (Snapshot, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return p.snapshotLocked(j), true
}

// List returns snapshots of every job ever submitted, in submission order.
func (p *Pool) List() []Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Snapshot, 0, len(p.order))
	for _, id := range p.order {
		out = append(out, p.snapshotLocked(p.jobs[id]))
	}
	return out
}

// Stats returns the pool's aggregate gauges.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Workers:       p.opts.Workers,
		Queued:        p.counts[StateQueued],
		Running:       p.counts[StateRunning],
		Done:          p.counts[StateDone],
		Failed:        p.counts[StateFailed],
		Canceled:      p.counts[StateCanceled],
		Draining:      p.draining,
		Abandoned:     p.abandoned,
		JournalErrors: p.jErrors,
	}
}

// Cancel cancels the job with the given ID. A queued job (including one
// waiting out a retry backoff) is marked canceled immediately; a running
// job has its context cancelled and reaches the canceled state as soon as
// the RunFunc returns — the analysis pipeline polls every scan chunk, so
// within one chunk of work. The returned snapshot reflects the state at
// return time (a running job may still read "running").
func (p *Pool) Cancel(id string) (Snapshot, error) {
	p.mu.Lock()
	j, ok := p.jobs[id]
	if !ok {
		p.mu.Unlock()
		return Snapshot{}, ErrNotFound
	}
	switch j.state {
	case StateQueued:
		if j.retryTimer != nil {
			j.retryTimer.Stop()
			j.retryTimer = nil
		}
		j.errText = "canceled before start"
		p.record(p.terminalEvent(j, StateCanceled))
		p.setStateLocked(j, StateCanceled)
		j.finished = p.opts.Clock()
		snap := p.snapshotLocked(j)
		hook := p.opts.OnJobDone
		p.mu.Unlock()
		if hook != nil {
			hook(j)
		}
		return snap, nil
	case StateRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
		snap := p.snapshotLocked(j)
		p.mu.Unlock()
		return snap, nil
	default:
		snap := p.snapshotLocked(j)
		p.mu.Unlock()
		return snap, ErrFinished
	}
}

// Remove deletes a terminal job from the pool's bookkeeping and returns
// its final snapshot (including the result, so the caller can dispose of
// sensitive artifacts). Queued or running jobs return ErrActive — cancel
// first, then remove.
func (p *Pool) Remove(id string) (Snapshot, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	if !j.state.Terminal() {
		return p.snapshotLocked(j), ErrActive
	}
	snap := p.snapshotLocked(j)
	p.record(Event{Op: OpPurged, ID: id})
	delete(p.jobs, id)
	p.counts[j.state]--
	for i, jid := range p.order {
		if jid == id {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
	return snap, nil
}

// Drain begins a graceful shutdown: Submit starts failing with
// ErrDraining, idle workers exit, and workers busy with a job finish it
// first — running jobs are never interrupted. Queued jobs are NOT
// silently dropped: each is counted in Stats.Abandoned and, with a
// Journal configured, marked requeueable (OpAbandoned) so the next boot's
// replay restores it to the queue. Drain returns when every worker has
// exited, or with ctx.Err() if ctx expires first.
func (p *Pool) Drain(ctx context.Context) error {
	p.mu.Lock()
	if !p.draining {
		p.draining = true
		for _, id := range p.order {
			j := p.jobs[id]
			if j.state != StateQueued {
				continue
			}
			if j.retryTimer != nil {
				j.retryTimer.Stop()
				j.retryTimer = nil
			}
			p.abandoned++
			p.record(Event{Op: OpAbandoned, ID: j.id, Attempts: j.attempts})
		}
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	done := make(chan struct{})
	go func() {
		p.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker is one pool goroutine: pop the best queued job, run it under its
// own context, apply the outcome, repeat until drained.
func (p *Pool) worker() {
	defer p.workers.Done()
	for {
		p.mu.Lock()
		for p.queue.Len() == 0 && !p.draining {
			p.cond.Wait()
		}
		if p.draining {
			p.mu.Unlock()
			return
		}
		j := heap.Pop(&p.queue).(*Job)
		if j.state != StateQueued {
			// Canceled while queued; its terminal bookkeeping already ran.
			p.mu.Unlock()
			continue
		}
		p.record(Event{Op: OpStart, ID: j.id, Attempts: j.attempts + 1})
		p.setStateLocked(j, StateRunning)
		j.attempts++
		j.started = p.opts.Clock()
		if j.attempts == 1 {
			p.opts.Tracer.Observe("jobs.queue_wait_ns", j.started.Sub(j.submitted).Nanoseconds())
		}
		ctx, cancel := context.WithCancel(context.Background())
		if p.opts.JobTimeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, p.opts.JobTimeout)
		}
		j.cancel = cancel
		p.mu.Unlock()

		result, err := p.invoke(ctx, j)
		cancel()
		p.finish(j, result, err)
	}
}

// invoke runs the RunFunc with panic containment: a panicking job fails
// (permanently) instead of killing its worker.
func (p *Pool) invoke(ctx context.Context, j *Job) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			result, err = nil, fmt.Errorf("jobs: job %s panicked: %v", j.id, r)
		}
	}()
	return p.run(ctx, j)
}

// finish applies one attempt's outcome: done, canceled, retry-after-
// backoff, or failed.
func (p *Pool) finish(j *Job, result any, err error) {
	now := p.opts.Clock()
	p.mu.Lock()
	j.cancel = nil
	if result != nil {
		// Keep partial results: a canceled or failed campaign still reports
		// the keys it found before the interruption.
		j.result = result
	}
	terminal := true
	switch {
	case err == nil:
		j.errText = ""
		p.record(p.terminalEvent(j, StateDone))
		p.setStateLocked(j, StateDone)
	case isCanceled(err, j):
		j.errText = err.Error()
		p.record(p.terminalEvent(j, StateCanceled))
		p.setStateLocked(j, StateCanceled)
	case IsTransient(err) && j.attempts < p.opts.MaxAttempts && !p.draining:
		j.errText = err.Error()
		p.record(Event{Op: OpRequeued, ID: j.id, Attempts: j.attempts, Error: j.errText})
		p.setStateLocked(j, StateQueued)
		terminal = false
		delay := p.opts.RetryBackoff << (j.attempts - 1)
		j.retryTimer = time.AfterFunc(delay, func() { p.requeue(j) })
	default:
		j.errText = err.Error()
		p.record(p.terminalEvent(j, StateFailed))
		p.setStateLocked(j, StateFailed)
	}
	if terminal {
		j.finished = now
		if !j.started.IsZero() {
			p.opts.Tracer.Observe("jobs.run_ns", now.Sub(j.started).Nanoseconds())
		}
	}
	hook := p.opts.OnJobDone
	p.mu.Unlock()
	if terminal && hook != nil {
		hook(j)
	}
}

// requeue returns a backoff-delayed job to the queue (timer callback).
func (p *Pool) requeue(j *Job) {
	p.mu.Lock()
	j.retryTimer = nil
	if j.state == StateQueued && j.heapIndex == -1 && !p.draining {
		heap.Push(&p.queue, j)
		p.cond.Signal()
	}
	p.mu.Unlock()
}

// setStateLocked moves j to state s, keeping the per-state counts in sync.
func (p *Pool) setStateLocked(j *Job, s State) {
	p.counts[j.state]--
	j.state = s
	p.counts[s]++
}

// snapshotLocked copies j's observable state (pool mutex held).
func (p *Pool) snapshotLocked(j *Job) Snapshot {
	done, total, stages, formats := j.progressSnapshot()
	snap := Snapshot{
		ID:       j.id,
		State:    j.state,
		Priority: j.priority,
		Attempts: j.attempts,
		Error:    j.errText,
		Done:     done,
		Total:    total,
		Stages:   stages,
		Formats:  formats,
		TraceID:  j.TraceID(),
		Result:   j.result,
	}
	if total > 0 {
		snap.Progress = float64(done) / float64(total)
	}
	if j.state == StateDone {
		snap.Progress = 1
	}
	if !j.submitted.IsZero() {
		snap.SubmittedAt = j.submitted.Format(time.RFC3339Nano)
	}
	if !j.started.IsZero() {
		snap.StartedAt = j.started.Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		snap.FinishedAt = j.finished.Format(time.RFC3339Nano)
	}
	return snap
}

// isCanceled reports whether an attempt ended because of an operator
// cancellation: either the Cancel path flagged the job, or the RunFunc
// surfaced context.Canceled on its own.
func isCanceled(err error, j *Job) bool {
	return j.cancelRequested || errors.Is(err, context.Canceled)
}

// jobHeap orders queued jobs by descending priority, then ascending
// submission sequence (FIFO within a priority band).
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }

func (h jobHeap) Less(i, k int) bool {
	if h[i].priority != h[k].priority {
		return h[i].priority > h[k].priority
	}
	return h[i].seq < h[k].seq
}

func (h jobHeap) Swap(i, k int) {
	h[i], h[k] = h[k], h[i]
	h[i].heapIndex = i
	h[k].heapIndex = k
}

func (h *jobHeap) Push(x any) {
	j := x.(*Job)
	j.heapIndex = len(*h)
	*h = append(*h, j)
}

func (h *jobHeap) Pop() any {
	old := *h
	j := old[len(old)-1]
	old[len(old)-1] = nil
	j.heapIndex = -1
	*h = old[:len(old)-1]
	return j
}
