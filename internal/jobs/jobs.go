// Package jobs is the analysis daemon's job machinery: a bounded worker
// pool draining a priority+FIFO queue of long-running jobs, each run under
// its own context.Context so it can be cancelled (operator DELETE) or timed
// out (per-job budget) mid-scan, with retry-with-backoff for transient
// failures and a graceful drain for shutdown.
//
// The package is deliberately generic — a job's payload and result are
// opaque `any` values and the work itself is a RunFunc supplied by the
// owner — so the same pool can schedule dump-analysis campaigns today and
// future workloads (re-verification sweeps, cross-dump correlation) without
// changing this layer. internal/service owns the analysis RunFunc.
//
// The job store is "persistent enough" for an operator workflow: every job
// ever submitted stays queryable (state, timestamps, attempts, per-stage
// progress, result) for the life of the process. Nothing is written to
// disk; a daemon restart starts empty.
//
// The package never reads the wall clock directly (the noprint contract):
// timestamps come from the injected Options.Clock, which defaults to
// time.Now only at the edge, as a func value the lint rule's call-site ban
// does not apply to — operators see real wall-clock stamps, tests inject a
// fake clock.
package jobs

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"
)

// State is a job's lifecycle state.
type State string

// Job lifecycle states. Queued and Running are live; Done, Failed and
// Canceled are terminal.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final (the job will never run
// again).
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Sentinel errors returned by pool operations.
var (
	// ErrNotFound is returned for an unknown job ID.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrActive is returned when removing a job that has not reached a
	// terminal state yet (cancel it first).
	ErrActive = errors.New("jobs: job is still active")
	// ErrFinished is returned when cancelling a job that already reached a
	// terminal state.
	ErrFinished = errors.New("jobs: job already finished")
	// ErrDraining is returned by Submit once Drain has begun.
	ErrDraining = errors.New("jobs: pool is draining")
	// ErrTransient marks a failure as retryable; wrap with Transient and
	// test with IsTransient.
	ErrTransient = errors.New("jobs: transient failure")
)

// Transient wraps err so the pool retries the job (up to
// Options.MaxAttempts, with exponential backoff). A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err}
}

type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }

func (e *transientError) Unwrap() error { return e.err }

func (e *transientError) Is(target error) bool { return target == ErrTransient }

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// Job is one unit of work owned by a Pool. RunFuncs receive the *Job to
// read its Payload and publish progress; everything else goes through the
// pool's API by ID.
type Job struct {
	id       string
	priority int
	seq      uint64
	payload  any

	// Scheduling state, guarded by the owning pool's mutex.
	state           State
	attempts        int
	errText         string
	result          any
	submitted       time.Time
	started         time.Time
	finished        time.Time
	cancel          func()
	cancelRequested bool
	heapIndex       int // index in the pool's queue, -1 when not enqueued
	retryTimer      *time.Timer

	// Progress state, guarded by its own mutex: it is updated at high rate
	// from the worker's tracer bridge and must not contend with the pool's
	// scheduling lock.
	pmu        sync.Mutex
	done       int64                     // guarded by pmu
	total      int64                     // guarded by pmu
	stageOrder []string                  // guarded by pmu
	stages     map[string]*StageProgress // guarded by pmu
	formats    map[string]int64          // guarded by pmu
	traceID    string                    // guarded by pmu
}

// ID returns the job's unique identifier.
func (j *Job) ID() string { return j.id }

// Payload returns the opaque payload given to Submit.
func (j *Job) Payload() any { return j.payload }

// SetProgress advances the job's headline progress gauge. Done and total
// are high-water marks: a stale or out-of-order report never moves the
// gauge backwards, so pollers observe monotonically increasing progress.
func (j *Job) SetProgress(done, total int64) {
	j.pmu.Lock()
	if done > j.done {
		j.done = done
	}
	if total > j.total {
		j.total = total
	}
	j.pmu.Unlock()
}

// StageStart marks a named stage as running (stages may repeat; calls
// accumulate).
func (j *Job) StageStart(name string) {
	j.pmu.Lock()
	s := j.stageLocked(name)
	s.Running = true
	s.Calls++
	j.pmu.Unlock()
}

// StageEnd marks a named stage as finished and accumulates its wall time.
func (j *Job) StageEnd(name string, wall time.Duration) {
	j.pmu.Lock()
	s := j.stageLocked(name)
	s.Running = false
	s.WallNs += wall.Nanoseconds()
	j.pmu.Unlock()
}

// SetStageProgress advances a named stage's progress gauge (high-water, as
// SetProgress).
func (j *Job) SetStageProgress(name string, done, total int64) {
	j.pmu.Lock()
	s := j.stageLocked(name)
	if done > s.Done {
		s.Done = done
	}
	if total > s.Total {
		s.Total = total
	}
	j.pmu.Unlock()
}

// SetFormatCount publishes a per-target-format counter (candidate keys,
// sighted volumes) under the given name. Counts are absolute gauges, not
// deltas: the analysis runner emits the final tally per format, and a
// re-emission (shard merge, retry) simply overwrites.
func (j *Job) SetFormatCount(name string, n int64) {
	j.pmu.Lock()
	if j.formats == nil {
		j.formats = make(map[string]int64)
	}
	j.formats[name] = n
	j.pmu.Unlock()
}

// SetTraceID publishes the distributed-trace ID the analysis minted for
// this job's campaign, linking the job record to its span tree. First
// writer wins: retries reuse the original trace so the timeline stays one
// tree per job.
func (j *Job) SetTraceID(id string) {
	j.pmu.Lock()
	if j.traceID == "" {
		j.traceID = id
	}
	j.pmu.Unlock()
}

// TraceID returns the trace ID published via SetTraceID ("" before the
// analysis starts).
func (j *Job) TraceID() string {
	j.pmu.Lock()
	defer j.pmu.Unlock()
	return j.traceID
}

func (j *Job) stageLocked(name string) *StageProgress {
	if j.stages == nil {
		j.stages = make(map[string]*StageProgress)
	}
	s, ok := j.stages[name]
	if !ok {
		s = &StageProgress{Name: name}
		j.stages[name] = s
		j.stageOrder = append(j.stageOrder, name)
	}
	return s
}

// progressSnapshot copies the progress state (called with the pool mutex
// held; takes only the job's progress mutex).
func (j *Job) progressSnapshot() (done, total int64, stages []StageProgress, formats map[string]int64) {
	j.pmu.Lock()
	defer j.pmu.Unlock()
	stages = make([]StageProgress, 0, len(j.stageOrder))
	for _, name := range j.stageOrder {
		stages = append(stages, *j.stages[name])
	}
	if len(j.formats) > 0 {
		formats = make(map[string]int64, len(j.formats))
		for k, v := range j.formats {
			formats[k] = v
		}
	}
	return j.done, j.total, stages, formats
}

// StageProgress is one pipeline stage's progress within a job snapshot.
type StageProgress struct {
	Name string `json:"name"`
	// Done and Total are the stage's progress gauge (0/0 when the stage
	// reports no unit counts).
	Done  int64 `json:"done,omitempty"`
	Total int64 `json:"total,omitempty"`
	// Calls counts stage entries (per-shard stages repeat).
	Calls int `json:"calls"`
	// WallNs accumulates completed calls' wall time.
	WallNs int64 `json:"wall_ns"`
	// Running marks a stage currently in flight.
	Running bool `json:"running,omitempty"`
}

// Snapshot is a point-in-time copy of a job's observable state, safe to
// hold and serialize after the job has moved on.
type Snapshot struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	Priority int    `json:"priority"`
	// Attempts counts runs started (>1 after transient retries).
	Attempts int    `json:"attempts"`
	Error    string `json:"error,omitempty"`
	// Timestamps are RFC 3339; empty when the event has not happened.
	SubmittedAt string `json:"submitted_at,omitempty"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
	// Done/Total are the headline progress gauge (monotonic); Progress is
	// their ratio, forced to 1 for jobs that completed successfully.
	Done     int64           `json:"progress_done"`
	Total    int64           `json:"progress_total"`
	Progress float64         `json:"progress"`
	Stages   []StageProgress `json:"stages,omitempty"`
	// Formats holds per-target-format counters published via
	// SetFormatCount (e.g. "aesxts.candidates": 1). Nil until the
	// analysis emits its first per-format tally.
	Formats map[string]int64 `json:"formats,omitempty"`
	// TraceID is the distributed-trace ID of the job's campaign span tree
	// (empty until the analysis starts). GET /v1/jobs/{id}/trace serves
	// the merged timeline it names.
	TraceID string `json:"trace_id,omitempty"`
	// Result is the RunFunc's return value (partial results survive
	// cancellation and failure). Excluded from JSON: the owner decides how
	// to serialize — the analysis service redacts key material by default.
	Result any `json:"-"`
}

// Stats is the pool's aggregate gauge set.
type Stats struct {
	Workers  int  `json:"workers"`
	Queued   int  `json:"queued"`
	Running  int  `json:"running"`
	Done     int  `json:"done"`
	Failed   int  `json:"failed"`
	Canceled int  `json:"canceled"`
	Draining bool `json:"draining"`
	// Abandoned counts queued jobs Drain left unrun. With a journal they
	// are requeued on the next boot; without one this counter is the only
	// trace they existed, which is why it is surfaced either way.
	Abandoned int `json:"abandoned"`
	// JournalErrors counts post-submit journal writes that failed (the
	// in-memory store proceeded; the WAL is missing those transitions).
	JournalErrors int `json:"journal_errors,omitempty"`
}

// newID returns a 16-hex-character random job ID. seq breaks the (never
// observed) tie where the system's entropy source fails.
func newID(seq uint64) string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("job-%016x", seq)
	}
	return hex.EncodeToString(b[:])
}
