package jobs

import (
	"encoding/json"
	"fmt"
)

// Durable job store support. The pool itself stays in-memory, but every
// mutation can be journaled through a Journal BEFORE it applies (write-
// ahead), and a Ledger reduces the journaled event stream back into
// restorable job state on the next boot. internal/service wires the
// Journal to an internal/wal log in the data dir; this file owns only the
// event vocabulary and the reduction rules, so the jobs package never
// touches the filesystem.
//
// Secrets: events carry the owner-encoded payload and result documents
// opaquely. The service's encoders redact key material to secret.Bytes
// fingerprints unless the job was submitted with explicit reveal, so the
// WAL on disk never holds raw masters by default.

// EventOp enumerates journaled job-lifecycle transitions.
type EventOp string

const (
	// OpSubmit records a new job: ID, priority, and the encoded payload.
	OpSubmit EventOp = "submit"
	// OpStart records an attempt beginning (state queued -> running).
	OpStart EventOp = "start"
	// OpDone / OpFailed / OpCanceled record terminal outcomes, with the
	// encoded (redacted) result document when the owner supplied one.
	OpDone     EventOp = "done"
	OpFailed   EventOp = "failed"
	OpCanceled EventOp = "canceled"
	// OpRequeued records a transient failure going back to the queue.
	OpRequeued EventOp = "requeued"
	// OpAbandoned records a queued job left behind by Drain: the process
	// is exiting without running it, and the next boot must requeue it.
	OpAbandoned EventOp = "abandoned"
	// OpPurged records a terminal job being erased (operator DELETE).
	OpPurged EventOp = "purged"
)

// Event is one journaled job mutation. Payload and Result are documents
// encoded by the pool's Options.EncodePayload / EncodeResult hooks; the
// jobs package never looks inside them.
type Event struct {
	Op       EventOp `json:"op"`
	ID       string  `json:"id"`
	Priority int     `json:"priority,omitempty"`
	Attempts int     `json:"attempts,omitempty"`
	Error    string  `json:"error,omitempty"`
	// Time is the pool clock's RFC 3339 stamp for the transition.
	Time    string          `json:"time,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
}

// Journal persists events. Record must make the event durable before
// returning — the pool applies the mutation only afterwards. Implementations
// need not be safe for concurrent use; the pool serializes calls under its
// scheduling lock.
type Journal interface {
	Record(Event) error
}

// LedgerEntry is one job's reduced state after replaying its events.
type LedgerEntry struct {
	ID       string          `json:"id"`
	Priority int             `json:"priority"`
	State    State           `json:"state"`
	Attempts int             `json:"attempts,omitempty"`
	Error    string          `json:"error,omitempty"`
	Payload  json.RawMessage `json:"payload,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
	// Timestamps carry the journaled transition times (RFC 3339).
	SubmittedAt string `json:"submitted_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
	// Interrupted marks a job that must run again on restore: it was
	// queued or mid-run when the process died, or Drain abandoned it.
	Interrupted bool `json:"interrupted,omitempty"`
}

// Ledger reduces an event stream into per-job state. It doubles as the
// snapshot payload: Marshal writes the reduced state, and replaying
// [snapshot, events...] is equivalent to replaying the full history the
// snapshot compacted away. Re-applying an event a snapshot already
// includes is harmless: transitions are level-based (set state X), not
// edge-based.
type Ledger struct {
	entries map[string]*LedgerEntry
	order   []string // submission order
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{entries: make(map[string]*LedgerEntry)}
}

// Apply folds one event into the ledger.
func (l *Ledger) Apply(e Event) {
	entry := l.entries[e.ID]
	if entry == nil {
		if e.Op == OpPurged {
			return
		}
		entry = &LedgerEntry{ID: e.ID, State: StateQueued}
		l.entries[e.ID] = entry
		l.order = append(l.order, e.ID)
	}
	switch e.Op {
	case OpSubmit:
		entry.Priority = e.Priority
		entry.State = StateQueued
		entry.Payload = e.Payload
		entry.SubmittedAt = e.Time
	case OpStart:
		entry.State = StateRunning
		entry.Attempts = e.Attempts
		entry.Interrupted = false
	case OpDone, OpFailed, OpCanceled:
		entry.State = map[EventOp]State{OpDone: StateDone, OpFailed: StateFailed, OpCanceled: StateCanceled}[e.Op]
		entry.Error = e.Error
		entry.Attempts = e.Attempts
		entry.FinishedAt = e.Time
		entry.Interrupted = false
		if e.Result != nil {
			entry.Result = e.Result
		}
	case OpRequeued:
		entry.State = StateQueued
		entry.Error = e.Error
		entry.Attempts = e.Attempts
	case OpAbandoned:
		entry.State = StateQueued
		entry.Interrupted = true
	case OpPurged:
		delete(l.entries, e.ID)
		for i, id := range l.order {
			if id == e.ID {
				l.order = append(l.order[:i], l.order[i+1:]...)
				break
			}
		}
	}
}

// Entries returns the reduced jobs in submission order. Jobs whose last
// journaled state is queued or running are flagged Interrupted: the
// process died (or drained) before finishing them, and a restore must
// requeue them.
func (l *Ledger) Entries() []LedgerEntry {
	out := make([]LedgerEntry, 0, len(l.order))
	for _, id := range l.order {
		e := *l.entries[id]
		if e.State == StateQueued || e.State == StateRunning {
			e.Interrupted = true
		}
		out = append(out, e)
	}
	return out
}

// Marshal serializes the ledger as a snapshot document.
func (l *Ledger) Marshal() ([]byte, error) {
	entries := make([]LedgerEntry, 0, len(l.order))
	for _, id := range l.order {
		entries = append(entries, *l.entries[id])
	}
	return json.Marshal(struct {
		Jobs []LedgerEntry `json:"jobs"`
	}{entries})
}

// Replay rebuilds a ledger from a snapshot document (nil for none) and
// the journaled events appended after it — exactly what wal.Open
// recovers. Damaged snapshot or event records fail the replay: the WAL
// layer already discarded torn frames, so remaining damage means the
// store's own encoding is broken, which should be loud.
func Replay(snapshot []byte, records [][]byte) (*Ledger, error) {
	l := NewLedger()
	if len(snapshot) > 0 {
		var doc struct {
			Jobs []LedgerEntry `json:"jobs"`
		}
		if err := json.Unmarshal(snapshot, &doc); err != nil {
			return nil, fmt.Errorf("jobs: decoding snapshot: %w", err)
		}
		for i := range doc.Jobs {
			e := doc.Jobs[i]
			l.entries[e.ID] = &e
			l.order = append(l.order, e.ID)
		}
	}
	for i, rec := range records {
		var e Event
		if err := json.Unmarshal(rec, &e); err != nil {
			return nil, fmt.Errorf("jobs: decoding journal record %d: %w", i, err)
		}
		l.Apply(e)
	}
	return l, nil
}

// Restored describes one job being re-inserted into a fresh pool from a
// replayed ledger. The owner decodes the journaled payload/result back
// into live values before calling Pool.Restore.
type Restored struct {
	ID       string
	Priority int
	Payload  any
	// State must be StateQueued (requeue an interrupted job) or a
	// terminal state (re-publish a finished job's record).
	State    State
	Attempts int
	Error    string
	Result   any
}
