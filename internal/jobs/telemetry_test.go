package jobs

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"coldboot/internal/obs"
)

// TestPoolLatencyHistograms: the pool observes queue wait (submit → first
// run) and run time (the terminal attempt's wall time) on the injected
// clock, once per job.
func TestPoolLatencyHistograms(t *testing.T) {
	var mu sync.Mutex
	now := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		now = now.Add(time.Second)
		return now
	}
	col := obs.NewCollector()
	p := NewPool(func(ctx context.Context, j *Job) (any, error) {
		return nil, nil
	}, Options{Workers: 1, Clock: clock, Tracer: col})
	snap, err := p.Submit(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, p, snap.ID, StateDone)
	drain(t, p)

	// The clock ticks once per read: submit, start, finish — so both
	// intervals are exactly one fake second.
	for _, name := range []string{"jobs.queue_wait_ns", "jobs.run_ns"} {
		h := col.Histogram(name)
		if h == nil {
			t.Fatalf("%s histogram missing", name)
		}
		s := h.Snapshot(name)
		if s.Count != 1 || s.Sum != time.Second.Nanoseconds() {
			t.Errorf("%s = %+v, want 1 sample of 1s", name, s)
		}
	}
}

// TestPoolRetriesObserveOneQueueWait: a transiently failing job runs
// multiple attempts but samples the queue wait exactly once and the run
// time exactly once (at the terminal state).
func TestPoolRetriesObserveOneQueueWait(t *testing.T) {
	col := obs.NewCollector()
	var attempts int
	p := NewPool(func(ctx context.Context, j *Job) (any, error) {
		attempts++
		if attempts < 2 {
			return nil, Transient(errors.New("flaky"))
		}
		return nil, nil
	}, Options{Workers: 1, MaxAttempts: 3, RetryBackoff: time.Millisecond, Tracer: col})
	snap, err := p.Submit(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, p, snap.ID, StateDone)
	drain(t, p)
	if h := col.Histogram("jobs.queue_wait_ns"); h == nil || h.Snapshot("").Count != 1 {
		t.Errorf("queue wait sampled more than once across retries")
	}
	if h := col.Histogram("jobs.run_ns"); h == nil || h.Snapshot("").Count != 1 {
		t.Errorf("run time should be sampled once at the terminal state")
	}
}
