// Package wal is the daemon's durability subsystem: an append-only,
// CRC-framed write-ahead log plus a periodic snapshot, both living in a
// directory under the daemon's data dir. The job store (internal/jobs via
// internal/service) journals every lifecycle mutation through it BEFORE
// the mutation applies, and replays the snapshot + surviving frames on
// boot, so queued and in-flight hunts survive a crash — the scale-out
// premise of the paper's §III-C ("fully parallelizable ... multiple
// machines") only holds operationally if losing a box, or kill -9 on the
// coordinator, does not lose the campaign.
//
// Layout inside the directory:
//
//	snapshot.json   the state as of the last compaction (atomic rename)
//	wal.log         CRC-framed records appended since that snapshot
//
// Frame format (little-endian), designed so that a torn tail — the only
// corruption an append-only log acquires from a crash — is detectable and
// cleanly separable from the valid prefix:
//
//	[4] magic 0xC01DB007
//	[4] payload length n (bounded by MaxRecordBytes)
//	[4] CRC-32C (Castagnoli) of the payload
//	[n] payload (opaque to this package; the owner encodes JSON events)
//
// Replay walks frames until EOF, a short read, a bad magic, an oversized
// length, or a CRC mismatch — whichever comes first — and returns every
// record before the damage. Open then truncates the log back to the end
// of the valid prefix so subsequent appends extend good bytes, never
// interleave with garbage.
//
// Secrets: this package stores whatever bytes it is handed. The contract
// that key material rides the WAL only as secret.Bytes fingerprints
// (unless a job was submitted with explicit reveal) is enforced by the
// encoding layer in internal/service, backstopped by the keyflow lint
// rule — nothing in this package formats or copies payloads beyond the
// framing.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

const (
	// frameMagic marks the start of every record frame.
	frameMagic = 0xC01DB007
	// frameHeaderBytes is the fixed frame prefix: magic + length + CRC.
	frameHeaderBytes = 12
	// MaxRecordBytes bounds a single record's payload. Job lifecycle
	// events are small JSON documents; anything near this size in the
	// length field is framing damage, not data.
	MaxRecordBytes = 16 << 20

	logName      = "wal.log"
	snapshotName = "snapshot.json"
	tmpSuffix    = ".tmp"
)

// castagnoli is the CRC-32C table (the iSCSI/ext4 polynomial, hardware-
// accelerated on amd64/arm64 — the same framing choice as most production
// WALs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed Log.
var ErrClosed = errors.New("wal: log is closed")

// Options tunes a Log.
type Options struct {
	// NoSync skips the fsync after each append. Crash durability is the
	// whole point of the log, so the default is sync-per-append; tests
	// and bulk restores turn syncing off.
	NoSync bool
}

// Recovered is what Open salvaged from the directory.
type Recovered struct {
	// Snapshot is the last compacted state (nil when none was written).
	Snapshot []byte
	// Records are the intact frames appended after the snapshot, oldest
	// first.
	Records [][]byte
	// Torn reports that the log ended in a damaged frame (torn write,
	// flipped bits) that was discarded and truncated away. Everything in
	// Records precedes the damage.
	Torn bool
	// TornBytes is how many trailing bytes were discarded.
	TornBytes int64
}

// Log is an open write-ahead log. Methods are NOT safe for concurrent
// use; the owning store serializes appends under its own lock (mutations
// are journaled before they apply, so they are already serialized).
type Log struct {
	dir  string
	opts Options
	f    *os.File
	// appended counts records written since the last snapshot (including
	// the replayed ones), for the owner's compaction policy.
	appended int
	closed   bool
}

// Open opens (creating if necessary) the log directory, replays the
// snapshot and every intact frame, truncates torn tail bytes, and returns
// the log positioned for appends.
func Open(dir string, opts Options) (*Log, Recovered, error) {
	var rec Recovered
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, rec, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	snap, err := os.ReadFile(filepath.Join(dir, snapshotName))
	switch {
	case err == nil:
		rec.Snapshot = snap
	case !errors.Is(err, os.ErrNotExist):
		return nil, rec, fmt.Errorf("wal: reading snapshot: %w", err)
	}

	logPath := filepath.Join(dir, logName)
	f, err := os.OpenFile(logPath, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, rec, fmt.Errorf("wal: opening log: %w", err)
	}
	records, validEnd, torn, err := replay(f)
	if err != nil {
		f.Close()
		return nil, rec, err
	}
	rec.Records = records
	rec.Torn = torn
	if torn {
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, rec, fmt.Errorf("wal: stat log: %w", err)
		}
		rec.TornBytes = st.Size() - validEnd
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return nil, rec, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, rec, fmt.Errorf("wal: seeking to append position: %w", err)
	}
	return &Log{dir: dir, opts: opts, f: f, appended: len(records)}, rec, nil
}

// replay walks the frames of an open log file from the start, returning
// the intact records, the byte offset where the valid prefix ends, and
// whether damage was found after it.
func replay(r io.ReadSeeker) (records [][]byte, validEnd int64, torn bool, err error) {
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, 0, false, fmt.Errorf("wal: seeking log start: %w", err)
	}
	var hdr [frameHeaderBytes]byte
	for {
		_, err := io.ReadFull(r, hdr[:])
		if err == io.EOF {
			return records, validEnd, false, nil // clean end
		}
		if err != nil {
			// Short header: a torn write mid-frame-prefix.
			return records, validEnd, true, nil
		}
		magic := binary.LittleEndian.Uint32(hdr[0:4])
		length := binary.LittleEndian.Uint32(hdr[4:8])
		sum := binary.LittleEndian.Uint32(hdr[8:12])
		if magic != frameMagic || length > MaxRecordBytes {
			return records, validEnd, true, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return records, validEnd, true, nil // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return records, validEnd, true, nil // flipped bits
		}
		records = append(records, payload)
		validEnd += frameHeaderBytes + int64(length)
	}
}

// Append frames and writes one record, syncing unless Options.NoSync.
// The record is durable (or an error is returned) before the caller
// applies the mutation it describes — write-ahead, not write-behind.
func (l *Log) Append(record []byte) error {
	if l.closed {
		return ErrClosed
	}
	if len(record) > MaxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds MaxRecordBytes", len(record))
	}
	var hdr [frameHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], frameMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(record)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.Checksum(record, castagnoli))
	if _, err := l.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: appending frame header: %w", err)
	}
	if _, err := l.f.Write(record); err != nil {
		return fmt.Errorf("wal: appending record: %w", err)
	}
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: syncing append: %w", err)
		}
	}
	l.appended++
	return nil
}

// AppendedSinceSnapshot returns how many records the log holds past the
// last snapshot (replayed + newly appended) — the owner's compaction
// trigger.
func (l *Log) AppendedSinceSnapshot() int { return l.appended }

// Snapshot atomically replaces the snapshot with state and resets the
// log: the snapshot is written to a temp file, synced, renamed over
// snapshot.json, and only then is wal.log truncated to empty. A crash
// between the rename and the truncate replays the new snapshot plus
// already-applied records — events must therefore be idempotent to
// re-apply over the state that already includes them (the jobs reducer
// is: re-observing a transition for a job already in that state is a
// no-op).
func (l *Log) Snapshot(state []byte) error {
	if l.closed {
		return ErrClosed
	}
	tmpPath := filepath.Join(l.dir, snapshotName+tmpSuffix)
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return fmt.Errorf("wal: creating snapshot temp: %w", err)
	}
	if _, err := tmp.Write(state); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("wal: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("wal: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("wal: closing snapshot temp: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(l.dir, snapshotName)); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("wal: installing snapshot: %w", err)
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: resetting log after snapshot: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seeking after snapshot: %w", err)
	}
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: syncing truncated log: %w", err)
		}
	}
	l.appended = 0
	return nil
}

// Sync flushes buffered appends (a no-op unless Options.NoSync batched
// them).
func (l *Log) Sync() error {
	if l.closed {
		return ErrClosed
	}
	return l.f.Sync()
}

// Close syncs and closes the log file. Idempotent.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	syncErr := l.f.Sync()
	closeErr := l.f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// DecodeFrames replays frames from raw log bytes (no file involved):
// the fuzz target and offline inspectors use it. Semantics match Open's
// replay: records before the first damaged frame, plus a torn flag.
func DecodeFrames(raw []byte) (records [][]byte, torn bool) {
	off := 0
	for {
		if off == len(raw) {
			return records, false
		}
		if len(raw)-off < frameHeaderBytes {
			return records, true
		}
		magic := binary.LittleEndian.Uint32(raw[off : off+4])
		length := binary.LittleEndian.Uint32(raw[off+4 : off+8])
		sum := binary.LittleEndian.Uint32(raw[off+8 : off+12])
		if magic != frameMagic || length > MaxRecordBytes || len(raw)-off-frameHeaderBytes < int(length) {
			return records, true
		}
		payload := raw[off+frameHeaderBytes : off+frameHeaderBytes+int(length)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return records, true
		}
		records = append(records, append([]byte(nil), payload...))
		off += frameHeaderBytes + int(length)
	}
}

// EncodeFrame returns the framed wire form of one record — what Append
// writes. Tests and fuzz corpora build inputs with it.
func EncodeFrame(record []byte) []byte {
	out := make([]byte, frameHeaderBytes+len(record))
	binary.LittleEndian.PutUint32(out[0:4], frameMagic)
	binary.LittleEndian.PutUint32(out[4:8], uint32(len(record)))
	binary.LittleEndian.PutUint32(out[8:12], crc32.Checksum(record, castagnoli))
	copy(out[frameHeaderBytes:], record)
	return out
}
