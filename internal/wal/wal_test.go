package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, dir string) (*Log, Recovered) {
	t.Helper()
	l, rec, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func appendAll(t *testing.T, l *Log, recs ...string) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append([]byte(r)); err != nil {
			t.Fatalf("Append(%q): %v", r, err)
		}
	}
}

func wantRecords(t *testing.T, got [][]byte, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d: %q", len(got), len(want), got)
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := openT(t, dir)
	if rec.Snapshot != nil || len(rec.Records) != 0 || rec.Torn {
		t.Fatalf("fresh dir recovered %+v, want empty", rec)
	}
	appendAll(t, l, "one", "two", "three")
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := openT(t, dir)
	defer l2.Close()
	wantRecords(t, rec2.Records, "one", "two", "three")
	if rec2.Torn {
		t.Fatalf("clean log reported torn")
	}
	if got := l2.AppendedSinceSnapshot(); got != 3 {
		t.Fatalf("AppendedSinceSnapshot = %d, want 3", got)
	}
	// Appends after a reopen extend the same log.
	appendAll(t, l2, "four")
	l2.Close()
	_, rec3 := openT(t, dir)
	wantRecords(t, rec3.Records, "one", "two", "three", "four")
}

func TestSnapshotCompacts(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	appendAll(t, l, "a", "b")
	if err := l.Snapshot([]byte(`{"state":"ab"}`)); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if got := l.AppendedSinceSnapshot(); got != 0 {
		t.Fatalf("AppendedSinceSnapshot after snapshot = %d, want 0", got)
	}
	appendAll(t, l, "c")
	l.Close()

	_, rec := openT(t, dir)
	if string(rec.Snapshot) != `{"state":"ab"}` {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
	wantRecords(t, rec.Records, "c")
}

// TestTornTailTruncated covers the crash shape an append-only log
// actually acquires: the final frame is cut off mid-payload. Replay must
// recover every earlier record, report the tear, and truncate it away so
// the next append extends clean bytes.
func TestTornTailTruncated(t *testing.T) {
	for cut := 1; cut < frameHeaderBytes+5; cut++ {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l, _ := openT(t, dir)
			appendAll(t, l, "alpha", "beta", "gamma")
			l.Close()

			path := filepath.Join(dir, logName)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			lastFrame := frameHeaderBytes + 5 // "gamma"
			if err := os.WriteFile(path, raw[:len(raw)-lastFrame+cut], 0o600); err != nil {
				t.Fatal(err)
			}

			l2, rec := openT(t, dir)
			wantRecords(t, rec.Records, "alpha", "beta")
			if !rec.Torn {
				t.Fatalf("torn tail not reported")
			}
			if rec.TornBytes != int64(cut) {
				t.Fatalf("TornBytes = %d, want %d", rec.TornBytes, cut)
			}
			// The damage is gone: appending and replaying again yields the
			// valid prefix plus the new record, no tear.
			appendAll(t, l2, "delta")
			l2.Close()
			_, rec2 := openT(t, dir)
			wantRecords(t, rec2.Records, "alpha", "beta", "delta")
			if rec2.Torn {
				t.Fatalf("log still torn after truncate+append")
			}
		})
	}
}

// TestCorruptCRCStopsReplay flips one payload byte in the middle record:
// replay must stop at the last frame before the damage — later intact
// frames are unreachable (their offsets can't be trusted once a frame is
// bad) and are discarded with the tail.
func TestCorruptCRCStopsReplay(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	appendAll(t, l, "first", "second", "third")
	l.Close()

	path := filepath.Join(dir, logName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside "second"'s payload.
	off := (frameHeaderBytes + 5) + frameHeaderBytes + 2
	raw[off] ^= 0x40
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}

	l2, rec := openT(t, dir)
	defer l2.Close()
	wantRecords(t, rec.Records, "first")
	if !rec.Torn {
		t.Fatalf("CRC damage not reported as torn")
	}
}

// TestCorruptHeaderStopsReplay damages the magic and the length field in
// turn; both must stop replay at the prior frame.
func TestCorruptHeaderStopsReplay(t *testing.T) {
	for _, tc := range []struct {
		name string
		off  int // within the second frame's header
		val  byte
	}{
		{"magic", 0, 0xFF},
		{"length", 7, 0xFF}, // high byte: length becomes > MaxRecordBytes
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, _ := openT(t, dir)
			appendAll(t, l, "first", "second")
			l.Close()

			path := filepath.Join(dir, logName)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[(frameHeaderBytes+5)+tc.off] = tc.val
			if err := os.WriteFile(path, raw, 0o600); err != nil {
				t.Fatal(err)
			}
			l2, rec := openT(t, dir)
			defer l2.Close()
			wantRecords(t, rec.Records, "first")
			if !rec.Torn {
				t.Fatalf("header damage not reported as torn")
			}
		})
	}
}

func TestSnapshotSurvivesTornLog(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	appendAll(t, l, "pre")
	if err := l.Snapshot([]byte("snap")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "post")
	l.Close()

	// Destroy the post-snapshot log entirely.
	if err := os.WriteFile(filepath.Join(dir, logName), []byte("garbage"), 0o600); err != nil {
		t.Fatal(err)
	}
	l2, rec := openT(t, dir)
	defer l2.Close()
	if string(rec.Snapshot) != "snap" {
		t.Fatalf("snapshot lost: %q", rec.Snapshot)
	}
	wantRecords(t, rec.Records)
	if !rec.Torn {
		t.Fatalf("garbage log not reported torn")
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	defer l.Close()
	if err := l.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Fatalf("oversized Append accepted")
	}
}

func TestClosedLog(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	l.Close()
	if err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append on closed = %v, want ErrClosed", err)
	}
	if err := l.Snapshot(nil); err != ErrClosed {
		t.Fatalf("Snapshot on closed = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}

func TestDecodeFramesMatchesFileReplay(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(EncodeFrame([]byte("x")))
	buf.Write(EncodeFrame([]byte("yy")))
	raw := buf.Bytes()

	recs, torn := DecodeFrames(raw)
	wantRecords(t, recs, "x", "yy")
	if torn {
		t.Fatalf("clean frames reported torn")
	}
	recs, torn = DecodeFrames(raw[:len(raw)-1])
	wantRecords(t, recs, "x")
	if !torn {
		t.Fatalf("truncated frames not reported torn")
	}
}
