package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay feeds arbitrary bytes to the log replayer, both through the
// pure decoder and through a real file Open, asserting the two agree and
// that replay upholds its contract on any input:
//
//   - it never errors on content damage (only on I/O), never panics;
//   - every returned record re-encodes into a byte-identical prefix of
//     the input (the valid prefix really was valid);
//   - after Open truncates a torn input, a second Open sees the same
//     records with no tear (recovery is idempotent).
//
// The seed corpus holds the shapes the unit tests pin: clean multi-record
// logs, a tail truncated mid-record, and flipped CRC/magic/length bytes.
func FuzzReplay(f *testing.F) {
	clean := bytes.Join([][]byte{
		EncodeFrame([]byte(`{"op":"submit","id":"a"}`)),
		EncodeFrame([]byte(`{"op":"start","id":"a"}`)),
		EncodeFrame([]byte(`{"op":"done","id":"a"}`)),
	}, nil)
	f.Add([]byte{})
	f.Add(clean)
	f.Add(clean[:len(clean)-7])              // torn mid-payload
	f.Add(clean[:frameHeaderBytes-2])        // torn mid-header
	flipCRC := append([]byte(nil), clean...) // CRC bits flipped
	flipCRC[frameHeaderBytes+3] ^= 0x01      // payload bit -> CRC mismatch
	f.Add(flipCRC)
	badMagic := append([]byte(nil), clean...)
	badMagic[0] = 0x00
	f.Add(badMagic)
	badLen := append([]byte(nil), clean...)
	badLen[7] = 0xFF // length > MaxRecordBytes
	f.Add(badLen)
	f.Add([]byte("not a frame at all"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		records, torn := DecodeFrames(raw)

		// The valid prefix property: re-framing the recovered records
		// reproduces the input up to where replay stopped.
		var prefix bytes.Buffer
		for _, r := range records {
			prefix.Write(EncodeFrame(r))
		}
		if !bytes.Equal(raw[:prefix.Len()], prefix.Bytes()) {
			t.Fatalf("recovered records do not re-encode to the input prefix")
		}
		if !torn && prefix.Len() != len(raw) {
			t.Fatalf("replay reported clean but consumed %d of %d bytes", prefix.Len(), len(raw))
		}

		// File-backed Open must agree with the pure decoder, then leave a
		// clean log behind.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), raw, 0o600); err != nil {
			t.Fatal(err)
		}
		l, rec, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("Open on fuzzed log: %v", err)
		}
		l.Close()
		if rec.Torn != torn || len(rec.Records) != len(records) {
			t.Fatalf("Open (%d records, torn=%v) disagrees with DecodeFrames (%d, torn=%v)",
				len(rec.Records), rec.Torn, len(records), torn)
		}
		for i := range records {
			if !bytes.Equal(rec.Records[i], records[i]) {
				t.Fatalf("record %d differs between Open and DecodeFrames", i)
			}
		}
		l2, rec2, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		l2.Close()
		if rec2.Torn {
			t.Fatalf("log still torn after recovery truncate")
		}
		if len(rec2.Records) != len(records) {
			t.Fatalf("second Open lost records: %d vs %d", len(rec2.Records), len(records))
		}
	})
}
