// Package keyfind implements the classic Halderman et al. ("Lest We
// Remember") expanded-AES-key scan over UNSCRAMBLED memory images: slide a
// window across the dump, treat each position as a candidate cipher key,
// expand it, and compare the expansion against the bytes that follow. This
// is the prior-art baseline the paper's Section III-C modifies — it
// requires the memory image to be fully descrambled ahead of time, which is
// exactly what DDR4 scrambling broke and the internal/core attack restores.
//
// The scan is embarrassingly parallel (each candidate offset is judged
// independently), so Scan shards the image across a worker pool sized to
// the machine by default and merges the per-chunk findings back in offset
// order — the output is byte-identical to a serial left-to-right scan.
package keyfind

import (
	"context"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"coldboot/internal/aes"
	"coldboot/internal/obs"
)

// Finding is one located key schedule.
type Finding struct {
	Offset   int    // byte offset of the schedule (and master key) in the image
	Master   []byte // the recovered master key
	Distance int    // hamming distance between the expected and found schedule tail
}

// DefaultTolerance is the default bit-flip budget over the whole schedule
// tail (the expanded bytes after the master key).
const DefaultTolerance = 16

// minChunkBytes is the smallest per-worker chunk worth dispatching: below
// this the goroutine hand-off costs more than the scan itself.
const minChunkBytes = 64 << 10

// Scan searches image for in-memory AES key schedules of the given variant,
// fanning the offset range out over one worker per CPU. Every byte offset
// is tried, as in the original tool: real schedules are at least word
// aligned, but memory images can have arbitrary framing.
//
// Findings are returned in ascending offset order, exactly as the serial
// scan produces them (see ScanParallel).
func Scan(image []byte, v aes.Variant, tolerance int) []Finding {
	out, _ := ScanContext(context.Background(), image, v, tolerance, 0)
	return out
}

// ScanContext is Scan with cancellation: each worker polls ctx between
// chunks (chunks are at most a few hundred microseconds of scanning). A
// cancelled scan returns nil findings together with ctx.Err().
func ScanContext(ctx context.Context, image []byte, v aes.Variant, tolerance, workers int) ([]Finding, error) {
	return scanParallelCtx(ctx, image, v, tolerance, workers, obs.Nop)
}

// ScanTraced is ScanContext with telemetry: each completed chunk records
// its scan latency into the "keyfind.chunk_ns" histogram and advances the
// "keyfind" progress (in candidate offsets) on tr. The Nop tracer makes it
// identical to ScanContext.
func ScanTraced(ctx context.Context, image []byte, v aes.Variant, tolerance, workers int, tr obs.Tracer) ([]Finding, error) {
	return scanParallelCtx(ctx, image, v, tolerance, workers, obs.OrNop(tr))
}

// ScanSerial is the single-threaded scan: one worker, no goroutines. It is
// the ordering/content reference for ScanParallel.
//
//lint:ignore ctxthread serial parity reference for the tests; cancellable scans go through ScanContext
func ScanSerial(image []byte, v aes.Variant, tolerance int) []Finding {
	if tolerance <= 0 {
		tolerance = DefaultTolerance
	}
	return scanRange(image, v, tolerance, 0, len(image))
}

// ScanParallel scans with an explicit worker count (0 or negative selects
// runtime.NumCPU()). The image is cut into contiguous offset chunks, each
// chunk is scanned independently, and the per-chunk findings — already in
// ascending offset order — are concatenated in chunk order, so the merged
// output is deterministic and byte-identical to ScanSerial's regardless of
// worker count or scheduling.
func ScanParallel(image []byte, v aes.Variant, tolerance int, workers int) []Finding {
	out, _ := scanParallelCtx(context.Background(), image, v, tolerance, workers, obs.Nop)
	return out
}

func scanParallelCtx(ctx context.Context, image []byte, v aes.Variant, tolerance, workers int, tr obs.Tracer) ([]Finding, error) {
	if tolerance <= 0 {
		tolerance = DefaultTolerance
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	nOffsets := len(image) - v.ScheduleBytes() + 1
	if nOffsets <= 0 {
		return nil, ctx.Err()
	}
	// Aim for a few chunks per worker so a dense region doesn't straggle,
	// but never chunks so small that dispatch dominates.
	chunkLen := nOffsets / (workers * 4)
	if chunkLen < minChunkBytes {
		chunkLen = minChunkBytes
	}
	nChunks := (nOffsets + chunkLen - 1) / chunkLen
	if nChunks <= 1 || workers == 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start := obs.Now()
		out := scanRange(image, v, tolerance, 0, len(image))
		tr.Observe("keyfind.chunk_ns", obs.Since(start))
		tr.Progress("keyfind", int64(nOffsets), int64(nOffsets))
		return out, nil
	}
	if workers > nChunks {
		workers = nChunks
	}

	results := make([][]Finding, nChunks)
	jobs := make(chan int)
	var doneOffsets atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				if ctx.Err() != nil {
					continue // drain the queue without scanning
				}
				lo := c * chunkLen
				hi := lo + chunkLen
				if hi > nOffsets {
					hi = nOffsets
				}
				start := obs.Now()
				results[c] = scanRange(image, v, tolerance, lo, hi)
				tr.Observe("keyfind.chunk_ns", obs.Since(start))
				tr.Progress("keyfind", doneOffsets.Add(int64(hi-lo)), int64(nOffsets))
			}
		}()
	}
	for c := 0; c < nChunks; c++ {
		jobs <- c
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var out []Finding
	for _, r := range results {
		out = append(out, r...)
	}
	return out, nil
}

// scanRange scans candidate offsets in [lo, hi) ∩ [0, len(image)-schedBytes].
// Offsets are ownership boundaries only: the schedule window read at each
// offset may extend past hi, so chunked scans see exactly the findings a
// full serial scan does, each exactly once.
//
// The quick filter maintains three rolling big-endian 32-bit words (the
// first key word, the last key word, and the stored word after the key)
// that each advance by one byte per offset — turning twelve byte loads per
// offset into three.
func scanRange(image []byte, v aes.Variant, tolerance, lo, hi int) []Finding {
	keyBytes := v.KeyBytes()
	schedBytes := v.ScheduleBytes()
	if max := len(image) - schedBytes + 1; hi > max {
		hi = max
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return nil
	}
	var out []Finding
	// Full-check expansion buffer, hoisted so candidates that pass the
	// quick filter (~1 per 2^20 offsets of random data, but every offset of
	// adversarial data) expand into scratch instead of allocating.
	var schedBuf [aes.MaxScheduleBytes]byte
	w0 := beWord(image[lo:])              // first 4 key bytes
	prev := beWord(image[lo+keyBytes-4:]) // last 4 key bytes
	stored := beWord(image[lo+keyBytes:]) // first 4 schedule-tail bytes
	for off := lo; off < hi; off++ {
		// Quick filter: derive schedule word nk from the candidate key and
		// compare against the stored bytes, allowing a few flipped bits.
		first := w0 ^ subWordRot(prev) ^ 0x01000000 // rcon(1)
		if bits.OnesCount32(first^stored) <= 4 {
			// Full check: expand and compare the whole tail.
			sched := aes.ExpandKeyBytesInto(schedBuf[:0], image[off:off+keyBytes])
			d := 0
			ok := true
			for i := keyBytes; i < schedBytes; i++ {
				d += bits.OnesCount8(sched[i] ^ image[off+i])
				if d > tolerance {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, Finding{
					Offset: off,
					//lint:ignore allocloop rare path (one hit per real schedule); Finding.Master must not alias the caller's image
					Master:   append([]byte{}, image[off:off+keyBytes]...),
					Distance: d,
				})
			}
		}
		if off+1 < hi {
			// Slide each rolling word one byte to the right. The loads stay
			// in bounds because off+1+schedBytes <= len(image) and
			// schedBytes > keyBytes+4 for every AES variant.
			w0 = w0<<8 | uint32(image[off+4])
			prev = prev<<8 | uint32(image[off+keyBytes])
			stored = stored<<8 | uint32(image[off+keyBytes+4])
		}
	}
	return out
}

func beWord(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func subWordRot(w uint32) uint32 {
	r := w<<8 | w>>24
	return uint32(aes.SubByte(byte(r>>24)))<<24 |
		uint32(aes.SubByte(byte(r>>16)))<<16 |
		uint32(aes.SubByte(byte(r>>8)))<<8 |
		uint32(aes.SubByte(byte(r)))
}
