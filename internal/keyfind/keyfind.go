// Package keyfind implements the classic Halderman et al. ("Lest We
// Remember") expanded-AES-key scan over UNSCRAMBLED memory images: slide a
// window across the dump, treat each position as a candidate cipher key,
// expand it, and compare the expansion against the bytes that follow. This
// is the prior-art baseline the paper's Section III-C modifies — it
// requires the memory image to be fully descrambled ahead of time, which is
// exactly what DDR4 scrambling broke and the internal/core attack restores.
package keyfind

import (
	"math/bits"

	"coldboot/internal/aes"
)

// Finding is one located key schedule.
type Finding struct {
	Offset   int    // byte offset of the schedule (and master key) in the image
	Master   []byte // the recovered master key
	Distance int    // hamming distance between the expected and found schedule tail
}

// DefaultTolerance is the default bit-flip budget over the whole schedule
// tail (the expanded bytes after the master key).
const DefaultTolerance = 16

// Scan searches image for in-memory AES key schedules of the given variant.
// Every byte offset is tried, as in the original tool: real schedules are
// at least word aligned, but memory images can have arbitrary framing.
//
// The first expansion word acts as a cheap filter: only offsets whose first
// derived word matches within a small budget proceed to the full-schedule
// comparison with the given tolerance.
func Scan(image []byte, v aes.Variant, tolerance int) []Finding {
	if tolerance <= 0 {
		tolerance = DefaultTolerance
	}
	var out []Finding
	keyBytes := v.KeyBytes()
	schedBytes := v.ScheduleBytes()
	nk := v.Nk()
	for off := 0; off+schedBytes <= len(image); off++ {
		window := image[off : off+keyBytes]
		// Quick filter: derive schedule word nk from the candidate key and
		// compare against the stored bytes, allowing a few flipped bits.
		first := deriveWord(window, nk)
		stored := beWord(image[off+keyBytes:])
		if bits.OnesCount32(first^stored) > 4 {
			continue
		}
		// Full check: expand and compare the whole tail.
		sched := aes.ExpandKeyBytes(image[off : off+keyBytes])
		d := 0
		ok := true
		for i := keyBytes; i < schedBytes; i++ {
			d += bits.OnesCount8(sched[i] ^ image[off+i])
			if d > tolerance {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, Finding{
				Offset:   off,
				Master:   append([]byte{}, image[off:off+keyBytes]...),
				Distance: d,
			})
		}
	}
	return out
}

// deriveWord computes schedule word nk (the first derived word) from the
// master key bytes.
func deriveWord(key []byte, nk int) uint32 {
	prev := beWord(key[4*(nk-1):])
	w0 := beWord(key)
	g := subWordRot(prev) ^ 0x01000000 // rcon(1)
	return w0 ^ g
}

func beWord(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func subWordRot(w uint32) uint32 {
	r := w<<8 | w>>24
	return uint32(aes.SubByte(byte(r>>24)))<<24 |
		uint32(aes.SubByte(byte(r>>16)))<<16 |
		uint32(aes.SubByte(byte(r>>8)))<<8 |
		uint32(aes.SubByte(byte(r)))
}
