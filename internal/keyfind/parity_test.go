package keyfind

import (
	"bytes"
	"math/bits"
	"math/rand"
	"sync"
	"testing"

	"coldboot/internal/aes"
	"coldboot/internal/workload"
)

// seedScan is a verbatim copy of the pre-optimization serial scan (byte
// loads per offset, no worker pool). It is the ground truth both the
// rolling-word serial scan and the parallel scan must reproduce exactly.
func seedScan(image []byte, v aes.Variant, tolerance int) []Finding {
	if tolerance <= 0 {
		tolerance = DefaultTolerance
	}
	var out []Finding
	keyBytes := v.KeyBytes()
	schedBytes := v.ScheduleBytes()
	nk := v.Nk()
	for off := 0; off+schedBytes <= len(image); off++ {
		window := image[off : off+keyBytes]
		first := seedDeriveWord(window, nk)
		stored := beWord(image[off+keyBytes:])
		if bits.OnesCount32(first^stored) > 4 {
			continue
		}
		sched := aes.ExpandKeyBytes(image[off : off+keyBytes])
		d := 0
		ok := true
		for i := keyBytes; i < schedBytes; i++ {
			d += bits.OnesCount8(sched[i] ^ image[off+i])
			if d > tolerance {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, Finding{
				Offset:   off,
				Master:   append([]byte{}, image[off:off+keyBytes]...),
				Distance: d,
			})
		}
	}
	return out
}

func seedDeriveWord(key []byte, nk int) uint32 {
	prev := beWord(key[4*(nk-1):])
	w0 := beWord(key)
	g := subWordRot(prev) ^ 0x01000000
	return w0 ^ g
}

func sameFindings(a, b []Finding) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Offset != b[i].Offset || a[i].Distance != b[i].Distance ||
			!bytes.Equal(a[i].Master, b[i].Master) {
			return false
		}
	}
	return true
}

// TestScanParityWithSeedImplementation proves the optimized serial scan and
// the parallel scan both return exactly the seed implementation's findings,
// in the same order, across variants, key placements (including chunk
// boundaries), tolerances, and worker counts.
func TestScanParityWithSeedImplementation(t *testing.T) {
	const size = 1 << 19
	img := make([]byte, size)
	if err := workload.Fill(img, 21, workload.LoadedSystem); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	// Plant schedules at awkward places: unaligned, adjacent (XTS pair),
	// straddling the minChunkBytes boundary, and near the end of the image.
	for _, v := range []aes.Variant{aes.AES128, aes.AES256} {
		offsets := []int{
			12345,
			12345 + v.ScheduleBytes(),      // back-to-back with the previous
			minChunkBytes - v.KeyBytes()/2, // schedule straddles a chunk cut
			size - v.ScheduleBytes() - 3,
		}
		for _, off := range offsets {
			key := make([]byte, v.KeyBytes())
			rng.Read(key)
			copy(img[off:], aes.ExpandKeyBytes(key))
		}
		// A couple of decayed tail bits to exercise the tolerance path.
		img[12345+v.KeyBytes()+9] ^= 0x10
		for _, tolerance := range []int{0, DefaultTolerance} {
			want := seedScan(img, v, tolerance)
			if len(want) == 0 {
				t.Fatalf("%v: seed scan found nothing; test is vacuous", v)
			}
			if got := ScanSerial(img, v, tolerance); !sameFindings(got, want) {
				t.Errorf("%v tol=%d: ScanSerial diverged from seed scan", v, tolerance)
			}
			for _, workers := range []int{1, 2, 3, 8} {
				if got := ScanParallel(img, v, tolerance, workers); !sameFindings(got, want) {
					t.Errorf("%v tol=%d workers=%d: ScanParallel diverged from seed scan",
						v, tolerance, workers)
				}
			}
			if got := Scan(img, v, tolerance); !sameFindings(got, want) {
				t.Errorf("%v tol=%d: Scan diverged from seed scan", v, tolerance)
			}
		}
	}
}

// TestScanParityTinyImages covers the degenerate sizes: empty, smaller than
// one schedule, exactly one schedule.
func TestScanParityTinyImages(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	v := aes.AES256
	for _, size := range []int{0, 1, v.ScheduleBytes() - 1, v.ScheduleBytes(), v.ScheduleBytes() + 7} {
		img := make([]byte, size)
		rng.Read(img)
		want := seedScan(img, v, 0)
		if got := ScanParallel(img, v, 0, 4); !sameFindings(got, want) {
			t.Errorf("size %d: parity broken", size)
		}
	}
	// An image that IS a schedule should be found at offset 0.
	key := make([]byte, v.KeyBytes())
	rng.Read(key)
	img := aes.ExpandKeyBytes(key)
	finds := ScanParallel(img, v, 0, 4)
	if len(finds) != 1 || finds[0].Offset != 0 {
		t.Fatalf("exact-schedule image: %+v", finds)
	}
}

// TestScanParallelRace hammers the worker pool: many concurrent ScanParallel
// calls over a shared image, each with multiple workers. Run under -race by
// the Makefile's race gate.
func TestScanParallelRace(t *testing.T) {
	img := make([]byte, 1<<19)
	if err := workload.Fill(img, 24, workload.LoadedSystem); err != nil {
		t.Fatal(err)
	}
	key := make([]byte, 32)
	rand.New(rand.NewSource(25)).Read(key)
	copy(img[300000:], aes.ExpandKeyBytes(key))
	want := ScanSerial(img, aes.AES256, 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				if got := ScanParallel(img, aes.AES256, 0, workers); !sameFindings(got, want) {
					t.Errorf("workers=%d rep=%d: findings diverged", workers, rep)
				}
			}
		}(i%4 + 1)
	}
	wg.Wait()
}
