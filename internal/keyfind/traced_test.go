package keyfind

import (
	"bytes"
	"context"
	"testing"

	"coldboot/internal/aes"
	"coldboot/internal/obs"
)

// TestScanTracedParity checks ScanTraced finds exactly what ScanContext
// finds and fills the keyfind telemetry: per-chunk latency samples and
// progress reaching the full offset count.
func TestScanTracedParity(t *testing.T) {
	for _, workers := range []int{1, 4} {
		img, key := imageWithKey(t, 1<<20, 11, aes.AES256, 98765)
		col := obs.NewCollector()
		got, err := ScanTraced(context.Background(), img, aes.AES256, 0, workers, col)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ScanContext(context.Background(), img, aes.AES256, 0, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) || len(got) != 1 || !bytes.Equal(got[0].Master, key) {
			t.Fatalf("workers=%d: traced scan diverged: got %+v want %+v", workers, got, want)
		}

		rep := col.Report()
		nOffsets := int64(len(img) - aes.AES256.ScheduleBytes() + 1)
		if rep.Counters["progress.keyfind"] != nOffsets {
			t.Errorf("workers=%d: progress.keyfind = %d, want %d",
				workers, rep.Counters["progress.keyfind"], nOffsets)
		}
		var chunks *obs.Histogram
		if chunks = col.Histogram("keyfind.chunk_ns"); chunks == nil {
			t.Fatalf("workers=%d: keyfind.chunk_ns histogram missing", workers)
		}
		if s := chunks.Snapshot("keyfind.chunk_ns"); s.Count == 0 || s.Sum <= 0 {
			t.Errorf("workers=%d: chunk histogram empty: %+v", workers, s)
		}
	}
}

func TestScanTracedNilTracer(t *testing.T) {
	img, key := imageWithKey(t, 1<<19, 12, aes.AES256, 4096)
	got, err := ScanTraced(context.Background(), img, aes.AES256, 0, 0, nil)
	if err != nil || len(got) != 1 || !bytes.Equal(got[0].Master, key) {
		t.Fatalf("nil tracer scan failed: %v %+v", err, got)
	}
}

// BenchmarkScanChunkNop prices one instrumented scan chunk on the Nop
// tracer — the hot path `make bench-guard` holds to zero allocations.
func BenchmarkScanChunkNop(b *testing.B) {
	// A zero image never passes the rolling-word quick filter, so the loop
	// is pure filter + instrumentation — the path that must stay
	// allocation-free (real hits pay for their own Finding copies).
	img := make([]byte, 256<<10)
	b.ReportAllocs()
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := obs.Now()
		findings := scanRange(img, aes.AES256, DefaultTolerance, 0, len(img))
		obs.Nop.Observe("keyfind.chunk_ns", obs.Since(start))
		obs.Nop.Progress("keyfind", int64(len(img)), int64(len(img)))
		if len(findings) != 0 {
			b.Fatal("unexpected findings in noise image")
		}
	}
}
