package keyfind

import (
	"context"
	"fmt"
	"io"

	"coldboot/internal/aes"
)

// DefaultStreamWindow is the window size the streaming scan reads per
// step: large enough to amortize I/O and fan out across the worker pool,
// small enough that a multi-GB image never approaches full residency.
const DefaultStreamWindow = 8 << 20

// ScanReaderAt scans an image of size bytes through r without loading it
// whole: windows of windowBytes (DefaultStreamWindow when <= 0) are read
// with a schedule-sized tail overlap, so every candidate offset is judged
// against its full schedule exactly once and the merged findings are
// byte-identical to Scan over the resident image. The context is checked
// between windows and between in-window chunks.
func ScanReaderAt(ctx context.Context, r io.ReaderAt, size int64, v aes.Variant, tolerance, windowBytes int) ([]Finding, error) {
	if windowBytes <= 0 {
		windowBytes = DefaultStreamWindow
	}
	schedBytes := v.ScheduleBytes()
	if windowBytes < schedBytes {
		windowBytes = schedBytes
	}
	if size <= 0 {
		return nil, nil
	}
	if size <= int64(windowBytes)+int64(schedBytes) {
		// Small image: one read, one scan.
		buf := make([]byte, size)
		if _, err := r.ReadAt(buf, 0); err != nil {
			return nil, fmt.Errorf("keyfind: reading image: %w", err)
		}
		return ScanContext(ctx, buf, v, tolerance, 0)
	}

	// The overlap is schedBytes-1 bytes: a candidate offset in
	// [start, start+windowBytes) reads its schedule window entirely from
	// [start, start+windowBytes+schedBytes-1), so window N owns exactly the
	// offsets below its boundary and no finding is seen twice.
	buf := make([]byte, windowBytes+schedBytes-1)
	var out []Finding
	for start := int64(0); start < size; start += int64(windowBytes) {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		n := int64(len(buf))
		if start+n > size {
			n = size - start
		}
		if _, err := r.ReadAt(buf[:n], start); err != nil {
			return out, fmt.Errorf("keyfind: reading window at %d: %w", start, err)
		}
		findings, err := ScanContext(ctx, buf[:n], v, tolerance, 0)
		if err != nil {
			return out, err
		}
		for _, f := range findings {
			if f.Offset >= windowBytes && start+int64(windowBytes) < size {
				continue // owned by the next window
			}
			f.Offset += int(start)
			out = append(out, f)
		}
	}
	return out, nil
}
