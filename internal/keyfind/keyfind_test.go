package keyfind

import (
	"bytes"
	"math/rand"
	"testing"

	"coldboot/internal/aes"
	"coldboot/internal/workload"
)

func imageWithKey(t testing.TB, size int, seed int64, v aes.Variant, off int) ([]byte, []byte) {
	t.Helper()
	img := make([]byte, size)
	if err := workload.Fill(img, seed, workload.LoadedSystem); err != nil {
		t.Fatal(err)
	}
	key := make([]byte, v.KeyBytes())
	rand.New(rand.NewSource(seed * 31)).Read(key)
	copy(img[off:], aes.ExpandKeyBytes(key))
	return img, key
}

func TestScanFindsPlantedKeys(t *testing.T) {
	for _, v := range []aes.Variant{aes.AES128, aes.AES192, aes.AES256} {
		const off = 123457 // deliberately unaligned
		img, key := imageWithKey(t, 1<<20, 7, v, off)
		finds := Scan(img, v, 0)
		if len(finds) != 1 {
			t.Fatalf("%v: %d findings, want 1", v, len(finds))
		}
		if finds[0].Offset != off || !bytes.Equal(finds[0].Master, key) {
			t.Errorf("%v: wrong finding %+v", v, finds[0])
		}
	}
}

func TestScanToleratesDecay(t *testing.T) {
	const off = 4096
	img, key := imageWithKey(t, 1<<19, 8, aes.AES256, off)
	// Flip a couple of bits in the schedule TAIL (not the master bytes).
	img[off+100] ^= 0x01
	img[off+200] ^= 0x80
	finds := Scan(img, aes.AES256, DefaultTolerance)
	if len(finds) != 1 || !bytes.Equal(finds[0].Master, key) {
		t.Fatalf("decayed schedule not found: %+v", finds)
	}
	if finds[0].Distance != 2 {
		t.Errorf("distance = %d, want 2", finds[0].Distance)
	}
}

func TestScanNoFalsePositives(t *testing.T) {
	img := make([]byte, 1<<20)
	if err := workload.Fill(img, 9, workload.LoadedSystem); err != nil {
		t.Fatal(err)
	}
	if finds := Scan(img, aes.AES256, DefaultTolerance); len(finds) != 0 {
		t.Errorf("%d phantom keys found", len(finds))
	}
}

func TestScanMultipleKeys(t *testing.T) {
	img := make([]byte, 1<<19)
	workload.Fill(img, 10, workload.LoadedSystem)
	k1 := make([]byte, 32)
	k2 := make([]byte, 32)
	rand.New(rand.NewSource(1)).Read(k1)
	rand.New(rand.NewSource(2)).Read(k2)
	copy(img[1000:], aes.ExpandKeyBytes(k1))
	copy(img[200000:], aes.ExpandKeyBytes(k2))
	finds := Scan(img, aes.AES256, 0)
	if len(finds) != 2 {
		t.Fatalf("%d findings, want 2", len(finds))
	}
	if !bytes.Equal(finds[0].Master, k1) || !bytes.Equal(finds[1].Master, k2) {
		t.Error("wrong masters recovered")
	}
}

func TestScanAdjacentXTSSchedules(t *testing.T) {
	// The VeraCrypt memory footprint: two adjacent schedules.
	img := make([]byte, 1<<19)
	workload.Fill(img, 11, workload.LoadedSystem)
	k1 := make([]byte, 32)
	k2 := make([]byte, 32)
	rand.New(rand.NewSource(3)).Read(k1)
	rand.New(rand.NewSource(4)).Read(k2)
	copy(img[5000:], aes.ExpandKeyBytes(k1))
	copy(img[5240:], aes.ExpandKeyBytes(k2))
	finds := Scan(img, aes.AES256, 0)
	if len(finds) != 2 {
		t.Fatalf("%d findings, want 2", len(finds))
	}
}

func TestScanFailsOnScrambledImage(t *testing.T) {
	// The motivating negative result: the Halderman scan is useless on a
	// scrambled dump (this is why the paper's attack exists).
	img, _ := imageWithKey(t, 1<<19, 12, aes.AES256, 8192)
	// "Scramble" with a toy XOR so the schedule structure is destroyed.
	for i := range img {
		img[i] ^= byte(0xA5 ^ (i >> 6)) // per-block-varying mask
	}
	if finds := Scan(img, aes.AES256, DefaultTolerance); len(finds) != 0 {
		t.Errorf("scan found %d keys in scrambled image", len(finds))
	}
}

func BenchmarkScan1MB(b *testing.B) {
	img, _ := imageWithKey(b, 1<<20, 13, aes.AES256, 500000)
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Scan(img, aes.AES256, DefaultTolerance)
	}
}
