package keyfind

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"coldboot/internal/aes"
)

// TestScanReaderAtMatchesResident streams an image through windows that
// deliberately straddle the planted keys and requires the findings to be
// byte-identical to the resident Scan.
func TestScanReaderAtMatchesResident(t *testing.T) {
	img, _ := imageWithKey(t, 1<<20, 21, aes.AES256, 123457)
	// A second key right before a window boundary so its schedule window
	// straddles it (window 64 KiB below).
	img2, key2 := imageWithKey(t, 1<<20, 22, aes.AES256, 2*(64<<10)-31)
	copy(img[2*(64<<10)-31:], img2[2*(64<<10)-31:2*(64<<10)-31+aes.AES256.ScheduleBytes()])

	want := Scan(img, aes.AES256, 0)
	if len(want) != 2 {
		t.Fatalf("resident scan found %d keys, want 2", len(want))
	}
	foundStraddler := false
	for _, f := range want {
		if bytes.Equal(f.Master, key2) {
			foundStraddler = true
		}
	}
	if !foundStraddler {
		t.Fatal("boundary-straddling key not planted correctly")
	}

	for _, window := range []int{64 << 10, 100_000, 1 << 19, 4 << 20 /* > image: one-read path */} {
		got, err := ScanReaderAt(context.Background(), bytes.NewReader(img), int64(len(img)), aes.AES256, 0, window)
		if err != nil {
			t.Fatalf("window %d: %v", window, err)
		}
		if len(got) != len(want) {
			t.Fatalf("window %d: %d findings, want %d", window, len(got), len(want))
		}
		for i := range want {
			if got[i].Offset != want[i].Offset || !bytes.Equal(got[i].Master, want[i].Master) ||
				got[i].Distance != want[i].Distance {
				t.Errorf("window %d: finding %d differs: got %+v, want %+v", window, i, got[i], want[i])
			}
		}
	}
}

func TestScanReaderAtEmptyImage(t *testing.T) {
	got, err := ScanReaderAt(context.Background(), bytes.NewReader(nil), 0, aes.AES256, 0, 0)
	if err != nil || got != nil {
		t.Errorf("empty image: %v, %v", got, err)
	}
}

func TestScanContextCancellation(t *testing.T) {
	img, _ := imageWithKey(t, 1<<20, 23, aes.AES256, 4096)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := ScanContext(ctx, img, aes.AES256, 0, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got != nil {
		t.Errorf("cancelled scan returned findings: %v", got)
	}
}

func TestScanReaderAtCancellation(t *testing.T) {
	img, _ := imageWithKey(t, 1<<20, 24, aes.AES256, 4096)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ScanReaderAt(ctx, bytes.NewReader(img), int64(len(img)), aes.AES256, 0, 64<<10); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
