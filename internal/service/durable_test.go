package service

import (
	"context"
	"encoding/hex"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"coldboot/internal/fleet"
	"coldboot/internal/jobs"
	"coldboot/internal/secret"
)

// The durable-store tests boot a server over a data dir, kill or drain
// it, and boot a second server over the same dir: the WAL replay must
// hand the second process the first one's jobs.

// bootServer is testServer without the auto-drain cleanup: crash-sim
// tests abandon the first server on purpose.
func bootServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

// blockingRunner returns a stub RunFunc that completes only once release
// is closed, reporting one planted key and honoring the job's submit-time
// reveal choice the way runAnalysis does.
func blockingRunner(release <-chan struct{}, master []byte) jobs.RunFunc {
	return func(ctx context.Context, j *jobs.Job) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		m := secret.New(master)
		report := &ResultReport{
			Variant: "AES-256",
			Keys: []KeyReport{{
				Format:      "aesxts",
				Fingerprint: m.Fingerprint(),
				master:      m,
			}},
		}
		if pl, ok := j.Payload().(*dumpJob); ok {
			report.reveal = pl.Reveal
		}
		return report, nil
	}
}

// TestDurableDrainRestoresAbandoned: a drain abandons queued jobs into
// the journal; the next boot requeues and finishes them, and the drained
// process's finished job stays queryable with its redacted result.
func TestDurableDrainRestoresAbandoned(t *testing.T) {
	dir := t.TempDir()
	master := testMaster(7)
	release := make(chan struct{})
	cfg := Config{Workers: 1, DataDir: dir, Runner: blockingRunner(release, master)}

	svc1, ts1 := bootServer(t, cfg)
	code, doc := postDump(t, ts1, "", tinyContainer(t))
	if code != http.StatusCreated {
		t.Fatalf("submit A: HTTP %d: %v", code, doc)
	}
	idA := doc["id"].(string)
	code, doc = postDump(t, ts1, "", tinyContainer(t))
	if code != http.StatusCreated {
		t.Fatalf("submit B: HTTP %d: %v", code, doc)
	}
	idB := doc["id"].(string)

	pollUntil(t, ts1, idA, 10*time.Second, inState("running"))
	close(release) // A finishes; B may or may not start before the drain
	pollUntil(t, ts1, idA, 10*time.Second, inState("done"))

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	st := svc1.Pool().Stats()
	if st.Abandoned+st.Done != 2 {
		t.Fatalf("after drain: done=%d abandoned=%d, want them to cover both jobs", st.Done, st.Abandoned)
	}

	// Second boot over the same dir: A stays done, B runs to done.
	_, ts2 := testServer(t, Config{Workers: 1, DataDir: dir, Runner: blockingRunner(release, master)})
	pollUntil(t, ts2, idB, 30*time.Second, inState("done"))
	code, result := getDoc(t, ts2, "/v1/jobs/"+idA+"/result")
	if code != http.StatusOK {
		t.Fatalf("restored result A: HTTP %d: %v", code, result)
	}
	keys := result["keys"].([]any)
	if len(keys) != 1 {
		t.Fatalf("restored result A keys: %v", result)
	}
	k := keys[0].(map[string]any)
	if k["fingerprint"] != secret.Fingerprint(master) {
		t.Errorf("restored fingerprint = %v, want %s", k["fingerprint"], secret.Fingerprint(master))
	}
	if k["master"] != nil {
		t.Errorf("non-reveal job persisted master across restart: %v", k)
	}

	// The metrics endpoint exposes the new durability gauges.
	resp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"coldbootd_jobs_abandoned_total", "coldbootd_journal_errors_total", "coldbootd_wal_records"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestDurableRevealPersistence: only jobs submitted with ?reveal=keys
// keep raw masters across a restart; everyone else keeps fingerprints.
func TestDurableRevealPersistence(t *testing.T) {
	dir := t.TempDir()
	master := testMaster(11)
	release := make(chan struct{})
	close(release)
	cfg := Config{Workers: 1, DataDir: dir, Runner: blockingRunner(release, master)}

	svc1, ts1 := bootServer(t, cfg)
	code, doc := postDump(t, ts1, "?reveal=keys", tinyContainer(t))
	if code != http.StatusCreated {
		t.Fatalf("submit revealed: HTTP %d: %v", code, doc)
	}
	idReveal := doc["id"].(string)
	code, doc = postDump(t, ts1, "", tinyContainer(t))
	if code != http.StatusCreated {
		t.Fatalf("submit plain: HTTP %d: %v", code, doc)
	}
	idPlain := doc["id"].(string)
	pollUntil(t, ts1, idReveal, 10*time.Second, inState("done"))
	pollUntil(t, ts1, idPlain, 10*time.Second, inState("done"))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc1.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	_, ts2 := testServer(t, cfg)
	code, result := getDoc(t, ts2, "/v1/jobs/"+idReveal+"/result?reveal=keys")
	if code != http.StatusOK {
		t.Fatalf("revealed result: HTTP %d: %v", code, result)
	}
	k := result["keys"].([]any)[0].(map[string]any)
	if k["master"] != hex.EncodeToString(master) {
		t.Errorf("revealed job lost its master across restart: %v", k)
	}
	code, result = getDoc(t, ts2, "/v1/jobs/"+idPlain+"/result?reveal=keys")
	if code != http.StatusOK {
		t.Fatalf("plain result: HTTP %d: %v", code, result)
	}
	k = result["keys"].([]any)[0].(map[string]any)
	if k["master"] != nil {
		t.Errorf("non-reveal job persisted its master: %v", k)
	}
	if k["fingerprint"] != secret.Fingerprint(master) {
		t.Errorf("fingerprint lost: %v", k)
	}
}

// TestDurableSpoolLossFailsJob: a crash that takes the spooled dumps with
// it must not leave jobs retrying a file that no longer exists — replay
// settles them as failed, durably.
func TestDurableSpoolLossFailsJob(t *testing.T) {
	dir := t.TempDir()
	release := make(chan struct{}) // never closed: jobs stay active at "crash"
	cfg := Config{Workers: 1, DataDir: dir, Runner: blockingRunner(release, testMaster(13))}

	_, ts1 := bootServer(t, cfg)
	code, doc := postDump(t, ts1, "", tinyContainer(t))
	if code != http.StatusCreated {
		t.Fatalf("submit A: HTTP %d: %v", code, doc)
	}
	idA := doc["id"].(string)
	code, doc = postDump(t, ts1, "", tinyContainer(t))
	if code != http.StatusCreated {
		t.Fatalf("submit B: HTTP %d: %v", code, doc)
	}
	idB := doc["id"].(string)
	pollUntil(t, ts1, idA, 10*time.Second, inState("running"))

	// "Crash": abandon server 1 (no drain) and destroy every spool file.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}

	_, ts2 := testServer(t, cfg)
	for _, id := range []string{idA, idB} {
		code, doc := getDoc(t, ts2, "/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("restored job %s: HTTP %d", id, code)
		}
		if doc["state"] != "failed" {
			t.Errorf("job %s restored as %v, want failed (spool lost)", id, doc["state"])
		}
		if errText, _ := doc["error"].(string); !strings.Contains(errText, "restore:") {
			t.Errorf("job %s error %q does not name the restore failure", id, errText)
		}
	}
}

// TestCoordinatorRoleEndToEnd: a coordinator-role server plus one fleet
// worker recovers a planted master through the HTTP job API, and the
// fleet gauges surface on /metrics.
func TestCoordinatorRoleEndToEnd(t *testing.T) {
	master := testMaster(91)
	container := buildFixtureContainer(t, 1<<20, 91, master, 1024*64, false)
	svc, ts := testServer(t, Config{
		Workers:     1,
		Role:        RoleCoordinator,
		LeaseTTL:    5 * time.Second,
		ShardBlocks: 4096,
	})
	if svc.Coordinator() == nil {
		t.Fatal("coordinator role without a coordinator")
	}

	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	w := &fleet.Worker{Base: ts.URL, Name: "w-e2e", Poll: 10 * time.Millisecond}
	go w.Run(wctx)

	code, doc := postDump(t, ts, "", container)
	if code != http.StatusCreated {
		t.Fatalf("submit: HTTP %d: %v", code, doc)
	}
	id := doc["id"].(string)
	pollUntil(t, ts, id, 120*time.Second, inState("done"))

	code, result := getDoc(t, ts, "/v1/jobs/"+id+"/result?reveal=keys")
	if code != http.StatusOK {
		t.Fatalf("result: HTTP %d: %v", code, result)
	}
	found := false
	for _, raw := range result["keys"].([]any) {
		k := raw.(map[string]any)
		if k["master"] == hex.EncodeToString(master) {
			found = true
		}
	}
	if !found {
		t.Fatalf("fleet-run job missed the planted master: %v", result)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"coldbootd_fleet_workers_alive", "coldbootd_fleet_shards_done",
		"coldbootd_fleet_stragglers_total", "coldbootd_fleet_lease_wait_p99_ns",
		"coldbootd_fleet_backlog_per_worker", "coldbootd_events_overwritten_total",
		// The worker's shipped histograms surface as a labelled family.
		`coldbootd_pipeline_fleet_shard_seconds_count{worker="w-e2e"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	// The job's trace endpoint serves the merged fleet timeline: the
	// coordinator's own lane plus one named lane carrying the spans the
	// worker shipped with its shard completions.
	events := fetchTrace(t, ts, id)
	lanes := map[string]uint64{}
	var workerTid uint64
	for _, e := range events {
		if e.Ph == "M" && e.Name == "thread_name" {
			lanes[e.Args["name"]] = e.Tid
		}
	}
	if _, ok := lanes["coordinator"]; !ok {
		t.Errorf("merged trace has no coordinator lane (lanes %v)", lanes)
	}
	workerTid = lanes["w-e2e"]
	if workerTid == 0 {
		t.Fatalf("merged trace has no w-e2e lane (lanes %v)", lanes)
	}
	var leases, workerSpans int
	lastTs := -1.0
	for _, e := range events {
		if e.Ph != "X" {
			continue
		}
		if e.Ts < lastTs {
			t.Fatalf("merged trace ts not monotonic: %f after %f", e.Ts, lastTs)
		}
		lastTs = e.Ts
		if e.Name == "fleet.lease" {
			leases++
		}
		if e.Tid == workerTid {
			workerSpans++
		}
	}
	if leases == 0 {
		t.Error("merged trace has no fleet.lease spans")
	}
	if workerSpans == 0 {
		t.Error("merged trace has no spans on the worker's lane")
	}
}
