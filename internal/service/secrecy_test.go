package service

// Secret-hygiene tests for the service surface: recovered masters leave
// the daemon only through the sanctioned ?reveal=keys path, and a purged
// job's key material is actually destroyed, not just dereferenced.

import (
	"encoding/hex"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"
)

// getRaw fetches a path and returns the raw response body as text.
func getRaw(t testing.TB, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

var fingerprintRE = regexp.MustCompile(`^sha256:[0-9a-f]{12}$`)

// TestRedactionAudit: with a key recovered, every service surface — the
// status document, the unrevealed result, the live events stream, and
// /metrics — carries at most SHA-256 fingerprints; the raw master's hex
// appears nowhere except the explicit ?reveal=keys response.
func TestRedactionAudit(t *testing.T) {
	master := testMaster(77)
	container := buildFixtureContainer(t, 1<<20, 77, master, 2048*64, false)
	_, ts := testServer(t, Config{Workers: 1, ShardBlocks: 4096, EventBuffer: 1 << 16})

	code, doc := postDump(t, ts, "", container)
	if code != http.StatusCreated {
		t.Fatalf("submit: HTTP %d: %v", code, doc)
	}
	id := doc["id"].(string)
	pollUntil(t, ts, id, 60*time.Second, inState("done"))

	masterHex := hex.EncodeToString(master)
	surfaces := map[string]string{
		"status":  getRaw(t, ts.URL+"/v1/jobs/"+id),
		"result":  getRaw(t, ts.URL+"/v1/jobs/"+id+"/result"),
		"events":  getRaw(t, ts.URL+"/v1/jobs/"+id+"/events"),
		"metrics": getRaw(t, ts.URL+"/metrics"),
	}
	for name, body := range surfaces {
		if strings.Contains(strings.ToLower(body), masterHex) {
			t.Errorf("%s leaks raw master key hex", name)
		}
	}

	// The unrevealed result still identifies each key by fingerprint.
	code, result := getDoc(t, ts, "/v1/jobs/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: HTTP %d: %v", code, result)
	}
	keys, _ := result["keys"].([]any)
	if len(keys) == 0 {
		t.Fatalf("no keys recovered: %v", result)
	}
	for _, k := range keys {
		key := k.(map[string]any)
		fp, _ := key["fingerprint"].(string)
		if !fingerprintRE.MatchString(fp) {
			t.Errorf("fingerprint %q does not match %v", fp, fingerprintRE)
		}
		if m, ok := key["master"]; ok && m != "" {
			t.Errorf("unrevealed result carries master bytes: %v", m)
		}
	}

	// The sanctioned path still works: ?reveal=keys ships the real master.
	revealed := getRaw(t, ts.URL+"/v1/jobs/"+id+"/result?reveal=keys")
	if !strings.Contains(revealed, masterHex) {
		t.Errorf("reveal=keys did not return the planted master")
	}
}

// TestPurgeDestroysKeyMaterial: DELETE on a terminal job zeroes the
// report's key bytes (not merely drops the reference) and removes the job
// from every endpoint.
func TestPurgeDestroysKeyMaterial(t *testing.T) {
	master := testMaster(78)
	container := buildFixtureContainer(t, 1<<20, 78, master, 1024*64, false)
	svc, ts := testServer(t, Config{Workers: 1, ShardBlocks: 4096})

	code, doc := postDump(t, ts, "", container)
	if code != http.StatusCreated {
		t.Fatalf("submit: HTTP %d: %v", code, doc)
	}
	id := doc["id"].(string)
	pollUntil(t, ts, id, 60*time.Second, inState("done"))

	snap, ok := svc.Pool().Get(id)
	if !ok {
		t.Fatal("job vanished before purge")
	}
	report, ok := snap.Result.(*ResultReport)
	if !ok || len(report.Keys) == 0 {
		t.Fatalf("no result report with keys: %+v", snap.Result)
	}
	for i := range report.Keys {
		if report.Keys[i].master.Destroyed() {
			t.Fatalf("key %d already destroyed before purge", i)
		}
	}

	code, pdoc := deleteJob(t, ts, id)
	if code != http.StatusOK || pdoc["purged"] != true {
		t.Fatalf("purge: HTTP %d: %v", code, pdoc)
	}

	// The retained report pointer proves the purge wiped the bytes rather
	// than just forgetting the job.
	for i := range report.Keys {
		if !report.Keys[i].master.Destroyed() {
			t.Errorf("key %d still holds master bytes after purge", i)
		}
		if fp := report.Keys[i].Fingerprint; !fingerprintRE.MatchString(fp) {
			t.Errorf("fingerprint %q lost by purge", fp)
		}
	}
	if code, _ := getDoc(t, ts, "/v1/jobs/"+id); code != http.StatusNotFound {
		t.Errorf("status after purge: HTTP %d, want 404", code)
	}
	if code, _ := getDoc(t, ts, "/v1/jobs/"+id+"/result"); code != http.StatusNotFound {
		t.Errorf("result after purge: HTTP %d, want 404", code)
	}
	if code, _ := deleteJob(t, ts, id); code != http.StatusNotFound {
		t.Errorf("delete after purge: HTTP %d, want 404", code)
	}
}
