package service

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"coldboot/internal/jobs"
)

// streamLine + the data-event fields we assert on; NDJSON lines decode
// into this regardless of whether they are control or telemetry records.
type eventLine struct {
	Type    string `json:"type"`
	Name    string `json:"name"`
	Seq     uint64 `json:"seq"`
	Cursor  uint64 `json:"cursor"`
	Skipped uint64 `json:"skipped"`
	State   string `json:"state"`
	Done    int64  `json:"done"`
	Total   int64  `json:"total"`
}

func openEvents(t testing.TB, ts *httptest.Server, id string, cursor uint64) *http.Response {
	t.Helper()
	url := ts.URL + "/v1/jobs/" + id + "/events"
	if cursor > 0 {
		url += "?cursor=" + strconv.FormatUint(cursor, 10)
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("events: HTTP %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content type %q", ct)
	}
	return resp
}

// readStream consumes NDJSON lines until an "end" line (or stop returns
// true), returning everything read.
func readStream(t testing.TB, body io.Reader, stop func(eventLine) bool) []eventLine {
	t.Helper()
	var lines []eventLine
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ln eventLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, ln)
		if ln.Type == "end" || (stop != nil && stop(ln)) {
			return lines
		}
	}
	t.Fatalf("stream closed without an end line (%d lines read): %v", len(lines), sc.Err())
	return nil
}

// TestEventsStreamEndToEnd opens the live stream while a real (small)
// analysis runs: data events arrive with dense increasing seqs, span and
// progress records for the whole pipeline show up, and the stream closes
// itself with an "end" record once the job is terminal. A second
// connection resumes from a mid-stream cursor without replaying or
// losing events.
func TestEventsStreamEndToEnd(t *testing.T) {
	master := testMaster(44)
	container := buildFixtureContainer(t, 1<<20, 44, master, 2048*64, false)
	_, ts := testServer(t, Config{Workers: 1, ShardBlocks: 4096, EventBuffer: 1 << 16})

	code, doc := postDump(t, ts, "", container)
	if code != http.StatusCreated {
		t.Fatalf("submit: HTTP %d: %v", code, doc)
	}
	id := doc["id"].(string)

	// Connection 1: follow the whole job live.
	resp := openEvents(t, ts, id, 0)
	lines := readStream(t, resp.Body, nil)
	resp.Body.Close()

	var lastSeq uint64
	spanStarts := map[string]bool{}
	var sawProgress, sawObserve bool
	for _, ln := range lines {
		switch ln.Type {
		case "span_start":
			spanStarts[ln.Name] = true
		case "progress":
			sawProgress = true
		case "observe":
			sawObserve = true
		case "gap":
			t.Fatalf("stream reported a gap (skipped %d) despite a %d-event buffer", ln.Skipped, 1<<16)
		}
		if ln.Seq > 0 {
			if ln.Seq != lastSeq+1 {
				t.Fatalf("event seq %d follows %d, want dense increasing", ln.Seq, lastSeq)
			}
			lastSeq = ln.Seq
		}
	}
	for _, want := range []string{"job", "campaign", "campaign.mine", "attack", "hunt"} {
		if !spanStarts[want] {
			t.Errorf("no span_start for %q in stream (have %v)", want, spanStarts)
		}
	}
	if !sawProgress || !sawObserve {
		t.Errorf("stream missing event types: progress=%v observe=%v", sawProgress, sawObserve)
	}
	end := lines[len(lines)-1]
	if end.Type != "end" || end.State != "done" || end.Cursor != lastSeq {
		t.Fatalf("end line = %+v, want state done at cursor %d", end, lastSeq)
	}

	// Connection 2: resume from the middle; delivery picks up at exactly
	// cursor+1 and reaches the same end.
	mid := lastSeq / 2
	resp = openEvents(t, ts, id, mid)
	resumed := readStream(t, resp.Body, nil)
	resp.Body.Close()
	if first := resumed[0]; first.Seq != mid+1 {
		t.Fatalf("resumed stream starts at seq %d, want %d", first.Seq, mid+1)
	}
	if end := resumed[len(resumed)-1]; end.Type != "end" || end.Cursor != lastSeq {
		t.Fatalf("resumed end = %+v, want cursor %d", end, lastSeq)
	}
}

// TestEventsHeartbeat: an idle stream (stub runner emitting no telemetry)
// stays alive through periodic heartbeat lines and still terminates with
// an end record when the job finishes.
func TestEventsHeartbeat(t *testing.T) {
	release := make(chan struct{})
	_, ts := testServer(t, Config{
		Workers:   1,
		Heartbeat: 20 * time.Millisecond,
		Runner: func(ctx context.Context, j *jobs.Job) (any, error) {
			<-release
			return &ResultReport{}, nil
		},
	})
	code, doc := postDump(t, ts, "", tinyContainer(t))
	if code != http.StatusCreated {
		t.Fatal(code)
	}
	id := doc["id"].(string)

	resp := openEvents(t, ts, id, 0)
	defer resp.Body.Close()
	beats := 0
	done := make(chan []eventLine, 1)
	go func() {
		done <- readStream(t, resp.Body, func(ln eventLine) bool {
			if ln.Type == "heartbeat" {
				beats++
				if beats == 2 {
					close(release) // enough keepalives seen; let the job finish
				}
			}
			return false
		})
	}()
	select {
	case lines := <-done:
		if beats < 2 {
			t.Errorf("saw %d heartbeats, want >= 2", beats)
		}
		if end := lines[len(lines)-1]; end.Type != "end" || end.State != "done" {
			t.Errorf("end line = %+v", end)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not end after job completion")
	}
}

// TestEventsErrors covers the endpoint's error mapping: unknown jobs and
// bad cursors are rejected, and jobs submitted around the HTTP layer
// (straight into the pool) have no journal to stream.
func TestEventsErrors(t *testing.T) {
	svc, ts := testServer(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, j *jobs.Job) (any, error) {
			return &ResultReport{}, nil
		},
	})
	if code, _ := getDoc(t, ts, "/v1/jobs/nope/events"); code != http.StatusNotFound {
		t.Errorf("unknown job events: HTTP %d, want 404", code)
	}

	code, doc := postDump(t, ts, "", tinyContainer(t))
	if code != http.StatusCreated {
		t.Fatal(code)
	}
	id := doc["id"].(string)
	if code, _ := getDoc(t, ts, "/v1/jobs/"+id+"/events?cursor=banana"); code != http.StatusBadRequest {
		t.Errorf("bad cursor: HTTP %d, want 400", code)
	}

	snap, err := svc.Pool().Submit(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if code, d := getDoc(t, ts, "/v1/jobs/"+snap.ID+"/events"); code != http.StatusNotFound {
		t.Errorf("journal-less job events: HTTP %d: %v, want 404", code, d)
	}
}

// TestMetricsEndpointValid fetches /metrics after a real analysis and
// validates the whole exposition against the Prometheus text format:
// HELP/TYPE precede their family, label values unquote, no series is
// emitted twice, and histogram families carry _bucket/_sum/_count.
func TestMetricsEndpointValid(t *testing.T) {
	master := testMaster(45)
	container := buildFixtureContainer(t, 1<<20, 45, master, 1024*64, false)
	_, ts := testServer(t, Config{Workers: 1})
	code, doc := postDump(t, ts, "", container)
	if code != http.StatusCreated {
		t.Fatal(code)
	}
	pollUntil(t, ts, doc["id"].(string), 60*time.Second, inState("done"))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	types := map[string]string{} // family -> TYPE
	seen := map[string]bool{}    // full series (name + labels)
	samples := map[string]bool{} // sample metric names
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if _, dup := types[parts[2]]; dup {
				t.Errorf("duplicate TYPE for family %s", parts[2])
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			if len(strings.Fields(line)) < 4 {
				t.Fatalf("malformed HELP line %q", line)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line %q", line)
		}
		// Sample: name{labels} value
		series := line
		if i := strings.LastIndexByte(line, ' '); i < 0 {
			t.Fatalf("sample line %q has no value", line)
		} else {
			series = line[:i]
			if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
				t.Fatalf("sample %q: bad value: %v", line, err)
			}
		}
		if seen[series] {
			t.Errorf("series %s emitted twice", series)
		}
		seen[series] = true
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
			labels := strings.TrimSuffix(series[i+1:], "}")
			for _, lv := range splitPromLabels(labels) {
				eq := strings.IndexByte(lv, '=')
				if eq < 0 {
					t.Fatalf("series %s: label %q has no =", series, lv)
				}
				if _, err := strconv.Unquote(lv[eq+1:]); err != nil {
					t.Fatalf("series %s: label value %s does not unquote: %v", series, lv[eq+1:], err)
				}
			}
		}
		samples[name] = true
	}
	for name := range samples {
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if f := strings.TrimSuffix(name, suffix); f != name && types[f] == "histogram" {
				family = f
				break
			}
		}
		if _, ok := types[family]; !ok {
			t.Errorf("sample %s has no TYPE family", name)
		}
	}
	// The pipeline histograms are present as native Prometheus histograms.
	nHist := 0
	for family, typ := range types {
		if typ != "histogram" {
			continue
		}
		nHist++
		for _, suffix := range []string{`_bucket{le="+Inf"}`, "_sum", "_count"} {
			if !strings.Contains(text, family+suffix) {
				t.Errorf("histogram %s missing %s series", family, suffix)
			}
		}
	}
	if nHist < 3 {
		t.Errorf("metrics expose %d native histograms, want >= 3", nHist)
	}
	for _, want := range []string{
		"coldbootd_pipeline_hunt_chunk_seconds",
		"coldbootd_pipeline_hunt_verify_seconds",
		"coldbootd_pipeline_jobs_run_seconds",
		"coldbootd_pipeline_jobs_queue_wait_seconds",
	} {
		if types[want] != "histogram" {
			t.Errorf("family %s: TYPE %q, want histogram", want, types[want])
		}
	}
}

// splitPromLabels splits a label body on commas that sit outside quoted
// values.
func splitPromLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
