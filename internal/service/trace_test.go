package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"
)

// traceEvent mirrors the Chrome Trace Event fields the tests assert on.
type traceEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Tid  uint64            `json:"tid"`
	Args map[string]string `json:"args"`
}

// fetchTrace GETs a job's merged timeline and decodes it.
func fetchTrace(t testing.TB, ts *httptest.Server, id string) []traceEvent {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: HTTP %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("trace content type %q", ct)
	}
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("decoding trace: %v", err)
	}
	return doc.TraceEvents
}

var traceIDRE = regexp.MustCompile(`^[0-9a-f]{16}$`)

// TestTraceEndpoint: a finished standalone job serves its span tree as
// Chrome Trace Event JSON, the status document names the trace, and a
// second job's timeline stays disjoint — the endpoint carves exactly one
// job's tree out of the daemon-wide collector.
func TestTraceEndpoint(t *testing.T) {
	master := testMaster(417)
	container := buildFixtureContainer(t, 1<<19, 417, master, 96*64, false)
	_, ts := testServer(t, Config{Workers: 2, ShardBlocks: 2048})

	var ids []string
	for i := 0; i < 2; i++ {
		code, doc := postDump(t, ts, "", container)
		if code != http.StatusCreated {
			t.Fatalf("submit: HTTP %d: %v", code, doc)
		}
		ids = append(ids, doc["id"].(string))
	}
	for _, id := range ids {
		doc := pollUntil(t, ts, id, 120*time.Second, inState("done"))
		tid, _ := doc["trace_id"].(string)
		if !traceIDRE.MatchString(tid) {
			t.Fatalf("job %s status carries bad trace_id %q", id, tid)
		}

		events := fetchTrace(t, ts, id)
		if len(events) == 0 {
			t.Fatalf("job %s: empty trace", id)
		}
		seen := map[string]bool{}
		lastTs := -1.0
		for _, e := range events {
			if e.Ph != "X" {
				t.Fatalf("standalone trace has non-complete event %+v", e)
			}
			if e.Ts < lastTs {
				t.Fatalf("trace ts not monotonic: %f after %f", e.Ts, lastTs)
			}
			lastTs = e.Ts
			seen[e.Name] = true
			// The subtree filter must not leak another job's spans: every
			// job span in this document is this job's.
			if e.Name == "job" && e.Args["job"] != id {
				t.Fatalf("trace for %s contains job span of %s", id, e.Args["job"])
			}
			if e.Name == "job" && e.Args["trace"] != tid {
				t.Fatalf("job span trace attr %q != status trace_id %q", e.Args["trace"], tid)
			}
		}
		for _, want := range []string{"job", "campaign", "shard"} {
			if !seen[want] {
				t.Errorf("job %s trace missing a %q span (saw %v)", id, want, seen)
			}
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job trace: HTTP %d, want 404", resp.StatusCode)
	}
}
