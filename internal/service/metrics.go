package service

import (
	"fmt"
	"net/http"
)

// handleMetrics serves the Prometheus text endpoint: pool gauges (queue
// depth, running workers, terminal-state totals) followed by the shared
// obs.Collector's pipeline aggregates (per-stage wall time and calls,
// candidate counters) accumulated across every job the daemon has run.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	st := s.pool.Stats()
	type gauge struct {
		name, help string
		typ        string
		value      int
	}
	gauges := []gauge{
		{"coldbootd_workers", "Size of the analysis worker pool.", "gauge", st.Workers},
		{"coldbootd_jobs_queued", "Jobs waiting for a worker.", "gauge", st.Queued},
		{"coldbootd_jobs_running", "Jobs currently analyzing.", "gauge", st.Running},
		{"coldbootd_jobs_done_total", "Jobs that finished successfully.", "counter", st.Done},
		{"coldbootd_jobs_failed_total", "Jobs that failed permanently.", "counter", st.Failed},
		{"coldbootd_jobs_canceled_total", "Jobs canceled by operators.", "counter", st.Canceled},
		{"coldbootd_jobs_abandoned_total", "Queued jobs a drain left for the next boot to requeue.", "counter", st.Abandoned},
		{"coldbootd_journal_errors_total", "Post-submit journal writes that failed (in-memory state moved on).", "counter", st.JournalErrors},
		{"coldbootd_draining", "1 while the daemon is draining for shutdown.", "gauge", boolGauge(st.Draining)},
	}
	if s.store != nil {
		ws := s.store.stats()
		gauges = append(gauges,
			gauge{"coldbootd_wal_records", "Journal events held past the last snapshot.", "gauge", ws.Records},
			gauge{"coldbootd_wal_compact_errors_total", "Failed snapshot compactions (log kept growing, no events lost).", "counter", ws.CompactErrs},
			gauge{"coldbootd_wal_torn_bytes", "Trailing bytes boot-time replay discarded as a torn write.", "gauge", int(ws.TornBytes)},
		)
	}
	if s.coord != nil {
		fs := s.coord.Stats()
		gauges = append(gauges,
			gauge{"coldbootd_fleet_workers_alive", "Workers that contacted the coordinator within two lease TTLs.", "gauge", fs.WorkersAlive},
			gauge{"coldbootd_fleet_campaigns", "Fleet campaigns currently running.", "gauge", fs.Campaigns},
			gauge{"coldbootd_fleet_shards_queued", "Shards waiting for a worker lease.", "gauge", fs.Queued},
			gauge{"coldbootd_fleet_shards_leased", "Shards currently leased to workers.", "gauge", fs.Leased},
			gauge{"coldbootd_fleet_shards_done", "Shards completed in live campaigns.", "gauge", fs.Done},
			gauge{"coldbootd_fleet_requeues_total", "Shard leases that expired back to the queue.", "counter", fs.Requeues},
			gauge{"coldbootd_fleet_steals_total", "Duplicate leases granted on straggling shards.", "counter", fs.Steals},
			gauge{"coldbootd_fleet_stragglers_total", "Completed shards that exceeded the straggler bound (2x the p99 of earlier completions).", "counter", fs.Stragglers},
			gauge{"coldbootd_fleet_lease_wait_p99_ns", "p99 of shard queue-to-lease wait; sustained growth means the fleet needs more workers.", "gauge", int(s.collector.Histogram("fleet.lease_wait_ns").Snapshot("").P99)},
			gauge{"coldbootd_fleet_backlog_per_worker", "Queued shards per alive worker (autoscaling signal; counts the whole backlog when no worker is alive).", "gauge", perWorkerBacklog(fs.Queued, fs.WorkersAlive)},
		)
	}
	gauges = append(gauges,
		gauge{"coldbootd_events_overwritten_total", "Telemetry journal entries lost to ring overwrites across all jobs (slow event-stream consumers).", "counter", s.journalOverwrites()},
	)
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", g.name, g.help, g.name, g.typ, g.name, g.value)
	}
	s.collector.Report().WritePrometheus(w, "coldbootd_pipeline")
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}

// perWorkerBacklog is the autoscaling ratio behind
// coldbootd_fleet_backlog_per_worker, rounded up so one queued shard with
// ten workers still reads as pressure 1, not 0.
func perWorkerBacklog(queued, alive int) int {
	if queued == 0 {
		return 0
	}
	if alive <= 0 {
		return queued
	}
	return (queued + alive - 1) / alive
}

// journalOverwrites sums ring overwrites across every job's event journal:
// how many telemetry events slow stream consumers have lost daemon-wide.
func (s *Server) journalOverwrites() int {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	var n uint64
	for _, j := range s.journals {
		n += j.Overwritten()
	}
	return int(n)
}
