package service

import (
	"fmt"
	"net/http"
)

// handleMetrics serves the Prometheus text endpoint: pool gauges (queue
// depth, running workers, terminal-state totals) followed by the shared
// obs.Collector's pipeline aggregates (per-stage wall time and calls,
// candidate counters) accumulated across every job the daemon has run.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	st := s.pool.Stats()
	gauges := []struct {
		name, help string
		typ        string
		value      int
	}{
		{"coldbootd_workers", "Size of the analysis worker pool.", "gauge", st.Workers},
		{"coldbootd_jobs_queued", "Jobs waiting for a worker.", "gauge", st.Queued},
		{"coldbootd_jobs_running", "Jobs currently analyzing.", "gauge", st.Running},
		{"coldbootd_jobs_done_total", "Jobs that finished successfully.", "counter", st.Done},
		{"coldbootd_jobs_failed_total", "Jobs that failed permanently.", "counter", st.Failed},
		{"coldbootd_jobs_canceled_total", "Jobs canceled by operators.", "counter", st.Canceled},
		{"coldbootd_draining", "1 while the daemon is draining for shutdown.", "gauge", boolGauge(st.Draining)},
	}
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", g.name, g.help, g.name, g.typ, g.name, g.value)
	}
	s.collector.Report().WritePrometheus(w, "coldbootd_pipeline")
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}
