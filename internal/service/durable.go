package service

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"coldboot/internal/jobs"
	"coldboot/internal/obs"
	"coldboot/internal/secret"
	"coldboot/internal/wal"
)

// defaultCompactEvery is the snapshot compaction threshold: once the WAL
// holds this many events past the last snapshot, the reduced ledger is
// written out and the log reset. Job lifecycle events are small, so this
// bounds boot-time replay without snapshotting on every hunt.
const defaultCompactEvery = 256

// walDirName is the durability subdirectory inside Config.DataDir.
const walDirName = "wal"

// walStore adapts internal/wal to the jobs pool's Journal interface and
// owns the compaction policy: it keeps a live ledger of the reduced job
// state, appends every event (write-ahead — the pool applies the mutation
// only after Record returns), and replaces the snapshot whenever the log
// grows past compactEvery events.
//
// The pool serializes Record calls under its scheduling lock; the store's
// own mutex exists only so the metrics handler can read the gauges while
// jobs are moving.
type walStore struct {
	mu           sync.Mutex
	log          *wal.Log
	ledger       *jobs.Ledger
	compactEvery int
	compactErrs  int
	torn         bool
	tornBytes    int64
}

// walStoreStats is the store's /metrics gauge set.
type walStoreStats struct {
	// Records is how many events the log holds past the last snapshot.
	Records int
	// CompactErrs counts failed snapshot compactions (the log keeps
	// growing but no events are lost).
	CompactErrs int
	// TornBytes is how many trailing bytes boot-time replay discarded as a
	// torn write (0 for a clean log).
	TornBytes int64
}

// openStore opens (creating if needed) the WAL under dataDir and replays
// it into the reduced per-job entries the caller restores into the pool.
func openStore(dataDir string, compactEvery int) (*walStore, []jobs.LedgerEntry, error) {
	if compactEvery <= 0 {
		compactEvery = defaultCompactEvery
	}
	wlog, rec, err := wal.Open(filepath.Join(dataDir, walDirName), wal.Options{})
	if err != nil {
		return nil, nil, err
	}
	ledger, err := jobs.Replay(rec.Snapshot, rec.Records)
	if err != nil {
		wlog.Close()
		return nil, nil, err
	}
	st := &walStore{
		log:          wlog,
		ledger:       ledger,
		compactEvery: compactEvery,
		torn:         rec.Torn,
		tornBytes:    rec.TornBytes,
	}
	// Compact at boot when the log carried events: replay cost stays
	// bounded no matter how abruptly previous processes died.
	if wlog.AppendedSinceSnapshot() > 0 {
		st.mu.Lock()
		st.compactLocked()
		st.mu.Unlock()
	}
	return st, ledger.Entries(), nil
}

// Record implements jobs.Journal: the event is durable on disk before the
// pool applies the mutation it describes.
func (st *walStore) Record(e jobs.Event) error {
	raw, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("service: encoding journal event: %w", err)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.log.Append(raw); err != nil {
		return err
	}
	st.ledger.Apply(e)
	if st.log.AppendedSinceSnapshot() >= st.compactEvery {
		st.compactLocked()
	}
	return nil
}

// compactLocked writes the reduced ledger as the new snapshot and resets
// the log. Failure is counted, not fatal: the appended events remain on
// disk and replayable, the log has merely not shrunk.
func (st *walStore) compactLocked() {
	state, err := st.ledger.Marshal()
	if err == nil {
		err = st.log.Snapshot(state)
	}
	if err != nil {
		st.compactErrs++
	}
}

func (st *walStore) stats() walStoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := walStoreStats{
		Records:     st.log.AppendedSinceSnapshot(),
		CompactErrs: st.compactErrs,
	}
	if st.torn {
		s.TornBytes = st.tornBytes
	}
	return s
}

func (st *walStore) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.log.Close()
}

// encodePayload serializes a dump job for the journal's submit event.
// The payload carries no key material — only the spool path, acquisition
// metadata, and attack knobs — so it rides the WAL in the clear. Jobs
// submitted around the HTTP layer (embedders, tests) journal without a
// payload: they run normally but cannot be restored after a restart.
func encodePayload(payload any) ([]byte, error) {
	pl, ok := payload.(*dumpJob)
	if !ok {
		return nil, nil
	}
	return json.Marshal(pl)
}

// decodePayload rebuilds a dump job from its journaled form. The event
// journal is NOT restored here: the caller attaches a fresh one to jobs
// that will run again.
func decodePayload(raw json.RawMessage) (*dumpJob, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("service: job was journaled without a payload")
	}
	pl := &dumpJob{}
	if err := json.Unmarshal(raw, pl); err != nil {
		return nil, fmt.Errorf("service: decoding journaled payload: %w", err)
	}
	return pl, nil
}

// encodeResult serializes a terminal result document for the journal.
// Key material is redacted to fingerprints unless the job was submitted
// with ?reveal=keys — the WAL on disk holds raw masters only when the
// operator explicitly opted the job into persistence.
func encodeResult(result any) ([]byte, error) {
	report, ok := result.(*ResultReport)
	if !ok {
		return nil, fmt.Errorf("service: cannot journal result of type %T", result)
	}
	return json.Marshal(report.redacted(report.reveal))
}

// decodeResult rebuilds a restored job's result document. Masters that
// were persisted (reveal-at-submit jobs) are re-wrapped in secret.Bytes;
// everything else keeps fingerprints only — the raw keys died with the
// previous process, by design.
func decodeResult(raw json.RawMessage) *ResultReport {
	if len(raw) == 0 {
		return nil
	}
	report := &ResultReport{}
	if err := json.Unmarshal(raw, report); err != nil {
		return nil
	}
	for i := range report.Keys {
		k := &report.Keys[i]
		if k.Master == "" {
			continue
		}
		if b, err := hex.DecodeString(k.Master); err == nil {
			k.master = secret.New(b)
			secret.Wipe(b)
			report.reveal = true
		}
		k.Master = ""
	}
	return report
}

// restore re-inserts replayed jobs into the fresh pool. Terminal jobs
// come back queryable (their redacted results survive the restart);
// interrupted jobs — queued, mid-run at the crash, or abandoned by a
// drain — go back on the queue to run again, provided their spooled dump
// still exists. A job whose spool vanished is settled as failed, and that
// settlement is journaled so the next boot does not retry a lost dump.
func (s *Server) restore(entries []jobs.LedgerEntry) error {
	restored := make([]jobs.Restored, 0, len(entries))
	for _, e := range entries {
		r := jobs.Restored{
			ID:       e.ID,
			Priority: e.Priority,
			State:    e.State,
			Attempts: e.Attempts,
			Error:    e.Error,
		}
		pl, plErr := decodePayload(e.Payload)
		if pl != nil {
			r.Payload = pl
		}
		if e.Interrupted {
			r.State, r.Error = jobs.StateQueued, ""
			switch {
			case plErr != nil:
				r.State = jobs.StateFailed
				r.Error = fmt.Sprintf("restore: %v", plErr)
			case spoolMissing(pl.Path):
				r.State = jobs.StateFailed
				r.Error = fmt.Sprintf("restore: spooled dump %s did not survive the restart", filepath.Base(pl.Path))
			default:
				// The job will run again: give it a live event journal so
				// the stream endpoint works for the resumed run.
				pl.journal = obs.NewJournal(s.cfg.EventBuffer)
				s.jmu.Lock()
				s.journals[e.ID] = pl.journal
				s.jmu.Unlock()
			}
			if r.State == jobs.StateFailed {
				s.store.Record(jobs.Event{Op: jobs.OpFailed, ID: e.ID, Attempts: e.Attempts, Error: r.Error})
			}
		} else if e.State.Terminal() {
			if report := decodeResult(e.Result); report != nil {
				r.Result = report
			}
		}
		restored = append(restored, r)
	}
	return s.pool.Restore(restored)
}

// spoolMissing reports whether a journaled spool path no longer resolves
// to a readable file.
func spoolMissing(path string) bool {
	if path == "" {
		return true
	}
	_, err := os.Stat(path)
	return err != nil
}
