package service

import (
	"context"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"coldboot/internal/aes"
	"coldboot/internal/core"
	"coldboot/internal/dumpfile"
	"coldboot/internal/format"
	"coldboot/internal/jobs"
	"coldboot/internal/obs"
	"coldboot/internal/secret"
)

// dumpJob is the payload behind every analysis job: where the upload was
// spooled and how to attack it.
type dumpJob struct {
	Path        string
	Meta        dumpfile.Metadata
	ImageBytes  int64
	Variant     aes.Variant
	RepairFlips int
	// Formats restricts the hunt to the named target formats (nil = every
	// registered format). Validated against core.KnownFormats at submit.
	Formats []string
	// Reveal, set by submitting with ?reveal=keys, lets the job's raw
	// recovered masters persist in the durable journal (default: the WAL
	// holds fingerprints only, and keys do not survive a restart).
	Reveal bool

	// journal buffers the job's telemetry events for the live stream
	// endpoint; the pool's terminal hook closes it.
	journal *obs.Journal
}

// ResultReport is a finished (or interrupted) job's result document.
type ResultReport struct {
	// Partial marks a report from a canceled or failed run: the keys below
	// are everything recovered before the interruption.
	Partial bool `json:"partial,omitempty"`
	// Variant is the AES key size hunted for.
	Variant string `json:"variant"`
	// BlocksScanned and PairsTested are the campaign's work tallies.
	BlocksScanned int   `json:"blocks_scanned"`
	PairsTested   int64 `json:"pairs_tested"`
	// Stride is the inferred key-reuse period in blocks (0 = none).
	Stride int `json:"stride,omitempty"`
	// Coverage is the fraction of address classes with a mined key.
	Coverage float64 `json:"coverage"`
	// Formats tallies recovered keys per target-format tag (absent when
	// nothing was found).
	Formats map[string]int64 `json:"formats,omitempty"`
	// Volumes lists container headers sighted in the dump (e.g. a LUKS2
	// superblock in the page cache) — context for the keys, never secret.
	Volumes []format.Volume `json:"volumes,omitempty"`
	// Keys are the recovered masters, redacted to fingerprints by default.
	Keys []KeyReport `json:"keys"`

	// reveal records the job's submit-time ?reveal=keys choice: it gates
	// what encodeResult persists in the durable journal.
	reveal bool
}

// KeyReport is one recovered AES master key. Master is populated only when
// the caller asked to reveal key material; Fingerprint always is, so
// operators can correlate results across jobs without handling keys.
type KeyReport struct {
	// Format is the target-format tag ("aesxts", "luks2", "chacha20", ...).
	Format string `json:"format"`
	// Volume, for formats that recognize container headers, names the
	// volume the key belongs to (a LUKS2 UUID).
	Volume string `json:"volume,omitempty"`
	// Variant is the AES key size for schedule-derived keys; empty for
	// formats whose keys are not AES schedules.
	Variant     string  `json:"variant,omitempty"`
	TableStart  int     `json:"table_start"`
	Score       float64 `json:"score"`
	Anchors     int     `json:"anchors"`
	Fingerprint string  `json:"fingerprint"`
	Master      string  `json:"master,omitempty"`

	// master owns the key bytes behind the report; only redacted(reveal)
	// copies them out, and wipe zeroes them when the job is purged.
	master *secret.Bytes
}

// redacted returns a copy safe to serialize: key bytes are dropped unless
// reveal is set — the one sanctioned exposure of raw key material, behind
// the caller's explicit ?reveal=keys.
func (r *ResultReport) redacted(reveal bool) *ResultReport {
	out := *r
	out.Keys = make([]KeyReport, len(r.Keys))
	for i, k := range r.Keys {
		k.Master = ""
		if reveal && !k.master.Destroyed() {
			k.Master = hex.EncodeToString(k.master.Reveal())
		}
		out.Keys[i] = k
	}
	return &out
}

// wipe destroys the report's key material. Fingerprints survive, so a
// purged job's identity can still be correlated out of band.
func (r *ResultReport) wipe() {
	if r == nil {
		return
	}
	for i := range r.Keys {
		r.Keys[i].master.Destroy()
	}
}

// runAnalysis is the pool's RunFunc: open the spooled container, verify
// its checksum, and stream the campaign over it, bridging pipeline events
// to the job's progress gauges and the server's metrics collector. The
// returned report survives cancellation (Partial=true) so a DELETE mid-run
// still yields whatever keys earlier shards recovered.
func (s *Server) runAnalysis(ctx context.Context, j *jobs.Job) (any, error) {
	pl, ok := j.Payload().(*dumpJob)
	if !ok {
		return nil, fmt.Errorf("service: job %s has payload %T, not a dump", j.ID(), j.Payload())
	}
	f, err := dumpfile.Open(pl.Path)
	if err != nil {
		// The spooled file vanishing or failing to open is an environment
		// problem (tmp reaper, disk), not a property of the dump: retry.
		return nil, jobs.Transient(fmt.Errorf("service: opening spooled dump: %w", err))
	}
	defer f.Close()
	if err := f.VerifyChecksum(); err != nil {
		// A checksum mismatch is permanent: the bytes on disk are wrong
		// and will stay wrong.
		return nil, err
	}
	src, err := core.ReaderAtSource(f, f.Size())
	if err != nil {
		return nil, err
	}
	// Publish the denominator immediately so pollers see 0/N while the
	// mining pass runs, before the first shard completes.
	totalBlocks := f.Size() / int64(core.BlockBytes)
	j.SetProgress(0, totalBlocks)

	// The journal joins the fan-in through a plain Tracer variable: a nil
	// *obs.Journal stuffed straight into Multi would be a non-nil
	// interface and panic on use.
	var jn obs.Tracer = obs.Nop
	if pl.journal != nil {
		jn = pl.journal
	}
	tracer := obs.Multi(s.collector, jobTracer(j), jn, s.cfg.Tracer)
	// One root span per job ties every pipeline span in the trace to the
	// job that produced it. The trace ID is minted here (not by the plan)
	// so the job record, the wire plan, and every worker's shard spans
	// name the same distributed trace.
	traceID := obs.NewTraceID()
	j.SetTraceID(traceID)
	root := tracer.StartSpan("job",
		obs.A("job", j.ID()),
		obs.A("trace", traceID),
		obs.A("variant", pl.Variant.String()),
		obs.A("formats", strings.Join(pl.Formats, ",")),
		obs.A("image_bytes", strconv.FormatInt(pl.ImageBytes, 10)),
		obs.A("repair", strconv.Itoa(pl.RepairFlips)))
	defer root.End()
	// Remember which collector tree belongs to this job: the trace
	// endpoint filters the shared collector by this root to serve one
	// job's merged timeline.
	if _, treeRoot := s.collector.SpanContext(root); treeRoot != 0 {
		s.setTraceRoot(j.ID(), treeRoot)
	}

	cfg := core.CampaignConfig{
		Attack: core.Config{
			Variant:     pl.Variant,
			RepairFlips: pl.RepairFlips,
			Formats:     pl.Formats,
			Tracer:      tracer,
			Span:        root,
		},
		ShardBlocks: s.cfg.ShardBlocks,
		Parallel:    s.cfg.Parallel,
		TraceID:     traceID,
	}
	// A coordinator-role server hands the campaign to the worker fleet;
	// both paths are compositions of the same Plan/Scan/Finalize pipeline,
	// so the Result is byte-identical either way.
	runCampaign := core.RunCampaignSource
	if s.coord != nil {
		runCampaign = s.coord.Run
	}
	res, runErr := runCampaign(ctx, src, cfg)
	if res != nil {
		root.SetAttr("keys", strconv.Itoa(len(res.Keys)))
	}
	report := buildReport(pl.Variant, res, runErr != nil)
	report.reveal = pl.Reveal
	return report, runErr
}

// buildReport converts a campaign result (possibly partial) into the
// service's result document.
func buildReport(v aes.Variant, res *core.Result, partial bool) *ResultReport {
	report := &ResultReport{
		Partial: partial,
		Variant: v.String(),
		Keys:    []KeyReport{},
	}
	if res == nil {
		return report
	}
	report.BlocksScanned = res.BlocksScanned
	report.PairsTested = res.PairsTested
	report.Stride = res.Stride
	report.Coverage = res.Coverage
	report.Formats = res.FormatCounts()
	report.Volumes = res.Volumes
	for _, k := range res.Keys {
		master := secret.New(k.Master)
		variant := ""
		if k.Variant != 0 {
			// Zero Variant marks a non-schedule key (e.g. a raw ChaCha20
			// state) — "AES-0" would be a lie.
			variant = k.Variant.String()
		}
		report.Keys = append(report.Keys, KeyReport{
			Format:      k.Format,
			Volume:      k.Volume,
			Variant:     variant,
			TableStart:  k.TableStart,
			Score:       k.Score,
			Anchors:     k.Anchors,
			Fingerprint: master.Fingerprint(),
			master:      master,
		})
	}
	return report
}

// jobTracer bridges obs pipeline events onto a job's progress gauges. The
// "campaign" stage's per-shard ticks (globally monotonic block counts)
// drive the headline progress; every stage keeps its own gauge for the
// status endpoint's breakdown.
func jobTracer(j *jobs.Job) obs.Tracer {
	return &obs.Funcs{
		OnStageStart: j.StageStart,
		OnStageEnd:   j.StageEnd,
		OnProgress: func(stage string, done, total int64) {
			j.SetStageProgress(stage, done, total)
			if stage == "campaign" {
				j.SetProgress(done, total)
			}
		},
		OnCount: func(name string, delta int64) {
			// Per-format tallies ("format.luks2.candidates") surface on the
			// job's own status document, not just the daemon-wide metrics.
			if rest, ok := strings.CutPrefix(name, "format."); ok {
				j.SetFormatCount(rest, delta)
			}
		},
	}
}
