package service

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// eventBatchMax bounds how many journal events one write drains: large
// enough to amortize the flush, small enough to keep the stream live.
const eventBatchMax = 256

// streamLine is a control record on the event stream. Data lines are raw
// obs.Event JSON (type span_start/span_end/span_attr/count/progress/
// observe); control lines reuse the "type" key with:
//
//	gap       — the reader fell behind the ring buffer; "skipped" events
//	            were overwritten before they could be delivered
//	heartbeat — keepalive after an idle Heartbeat interval
//	end       — the job reached a terminal state and every buffered event
//	            was delivered; the server closes the connection after this
//
// Every control line carries the reader's cursor, so a dropped connection
// resumes with ?cursor=N and sees each surviving event exactly once.
type streamLine struct {
	Type    string `json:"type"`
	Cursor  uint64 `json:"cursor"`
	Skipped uint64 `json:"skipped,omitempty"`
	State   string `json:"state,omitempty"`
}

// handleEvents streams a job's telemetry journal as NDJSON: one JSON
// object per line, flushed as produced. The stream starts at ?cursor=N
// (exclusive, default 0 = from the oldest buffered event) and closes
// itself with an "end" line once the job finishes and the tail has been
// delivered.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.pool.Get(id); !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	jn := s.journal(id)
	if jn == nil {
		// Jobs submitted through Pool directly (tests, embedders) have no
		// journal; the endpoint only serves HTTP-submitted jobs.
		httpError(w, http.StatusNotFound, "job %s has no event journal", id)
		return
	}
	cursor := uint64(0)
	if v := r.URL.Query().Get("cursor"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad cursor %q", v)
			return
		}
		cursor = n
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	heartbeat := time.NewTicker(s.cfg.Heartbeat)
	defer heartbeat.Stop()
	for {
		// Fetch the wake channel BEFORE draining: an append between
		// ReadSince and Updated would otherwise go unnoticed until the
		// event after it.
		wake := jn.Updated()
		events, missed := jn.ReadSince(cursor, eventBatchMax)
		if missed > 0 {
			cursor += missed
			if err := enc.Encode(streamLine{Type: "gap", Cursor: cursor, Skipped: missed}); err != nil {
				return
			}
		}
		for _, e := range events {
			cursor = e.Seq
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		if len(events) > 0 {
			flush()
			continue // drain the ring before parking
		}
		if jn.Closed() {
			end := streamLine{Type: "end", Cursor: cursor}
			if snap, ok := s.pool.Get(id); ok {
				end.State = string(snap.State)
			}
			enc.Encode(end)
			flush()
			return
		}
		flush()
		select {
		case <-wake:
		case <-heartbeat.C:
			if err := enc.Encode(streamLine{Type: "heartbeat", Cursor: cursor}); err != nil {
				return
			}
			flush()
		case <-r.Context().Done():
			return
		}
	}
}
