// Package service is the analysis daemon's HTTP layer: a stdlib net/http
// API over an internal/jobs pool running dump-analysis campaigns.
//
//	POST   /v1/jobs             submit a dump container (body), returns 201 + job
//	GET    /v1/jobs             list all jobs
//	GET    /v1/jobs/{id}        job status with per-stage progress
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/result key report (redacted unless ?reveal=keys)
//	GET    /v1/jobs/{id}/events live NDJSON telemetry stream (?cursor=N resumes)
//	GET    /v1/jobs/{id}/trace  merged Chrome-trace timeline of the job's campaign
//	GET    /metrics             Prometheus text: pool gauges + obs aggregates
//	GET    /healthz             liveness
//
// Uploads stream straight into dumpfile-backed temp storage (never into
// memory) and analysis reads them back through the streaming campaign, so
// a multi-GB dump costs the daemon one worker and constant memory. The
// paper's §III-C scale-out argument — litmus scanning is embarrassingly
// parallel across shards and machines — is what this layer packages: many
// dumps in flight, a bounded worker pool, and live per-stage progress for
// multi-hour campaigns.
//
// Recovered master keys are treated as sensitive artifacts (cf. the
// anti-forensic threat model in "Security Through Amnesia"): status and
// result endpoints expose only SHA-256 fingerprints unless the caller
// explicitly asks for key material with ?reveal=keys.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"coldboot/internal/aes"
	"coldboot/internal/core"
	"coldboot/internal/dumpfile"
	"coldboot/internal/fleet"
	"coldboot/internal/format"
	"coldboot/internal/jobs"
	"coldboot/internal/obs"
	"coldboot/internal/secret"
)

// DefaultMaxUploadBytes bounds POST /v1/jobs bodies when Config leaves
// MaxUploadBytes zero: 1 GiB of container (a 16 GiB capture is submitted
// as shards; see ROADMAP sharding item).
const DefaultMaxUploadBytes = 1 << 30

// Config tunes a Server.
type Config struct {
	// Workers caps concurrently running analysis jobs (default 1).
	Workers int
	// JobTimeout bounds each job's run time (0 = no limit).
	JobTimeout time.Duration
	// MaxUploadBytes caps the POST /v1/jobs body (default
	// DefaultMaxUploadBytes).
	MaxUploadBytes int64
	// DataDir is where uploads are spooled ("" = the OS temp dir). Spooled
	// dumps are deleted as soon as their job reaches a terminal state.
	//
	// A non-empty DataDir also turns on durability: job lifecycle events
	// are journaled through an internal/wal log under DataDir/wal before
	// they apply, and replayed on the next New — queued and mid-run hunts
	// survive kill -9. Key material rides the journal only as fingerprints
	// unless a job was submitted with ?reveal=keys.
	DataDir string
	// CompactEvery overrides the WAL snapshot threshold (0 = default).
	CompactEvery int
	// Role selects the daemon's fleet role: "" or RoleStandalone runs
	// campaigns in-process; RoleCoordinator additionally mounts the fleet
	// lease endpoints and runs every campaign through the worker fleet
	// (jobs wait until workers connect). The worker role has no service —
	// see fleet.Worker.
	Role string
	// LeaseTTL is the coordinator's shard lease lifetime (0 = fleet
	// default). Ignored unless Role is RoleCoordinator.
	LeaseTTL time.Duration
	// MaxAttempts and RetryBackoff configure retry of transiently failing
	// jobs (defaults: no retries; 250ms first backoff).
	MaxAttempts  int
	RetryBackoff time.Duration
	// ShardBlocks overrides the campaign shard size (tests shrink it to
	// see many progress ticks on small fixtures).
	ShardBlocks int
	// Parallel overrides per-job shard concurrency (default: one shard at
	// a time per job — cross-job parallelism comes from Workers).
	Parallel int
	// EventBuffer caps each job's telemetry journal — the ring of recent
	// events behind GET /v1/jobs/{id}/events (0 = obs default). Slow
	// stream consumers see a gap record, never a stalled pipeline.
	EventBuffer int
	// Heartbeat is the idle interval after which the event stream emits a
	// keepalive line (default 10s).
	Heartbeat time.Duration
	// Tracer, if non-nil, additionally observes every job's pipeline
	// (fanned in alongside the server's own Collector).
	Tracer obs.Tracer
	// Runner overrides the analysis RunFunc (tests substitute stubs to
	// exercise scheduling without burning CPU). Nil means real analysis.
	Runner jobs.RunFunc
}

// Role values for Config.Role.
const (
	RoleStandalone  = "standalone"
	RoleCoordinator = "coordinator"
	// RoleWorker is not a service role — a worker is a bare fleet.Worker
	// loop with no HTTP surface — but cmd/coldbootd accepts it, so the
	// name lives here with its siblings.
	RoleWorker = "worker"
)

// Server is the analysis service: create with New, mount Handler, and
// Drain on shutdown.
type Server struct {
	cfg       Config
	pool      *jobs.Pool
	collector *obs.Collector
	mux       *http.ServeMux
	store     *walStore          // nil without a DataDir
	coord     *fleet.Coordinator // nil unless RoleCoordinator

	// journals indexes each job's event journal for the streaming
	// endpoint; entries stay after job completion (the closed journal is
	// the stream's end-of-file) and are bounded by pool retention.
	// traceRoots maps a job ID to the root span ID of its campaign tree in
	// the shared collector, so the trace endpoint can carve one job's
	// merged timeline out of the daemon-wide span set.
	jmu        sync.Mutex
	journals   map[string]*obs.Journal
	traceRoots map[string]uint64
}

// New builds a Server and starts its worker pool. With a DataDir it also
// opens the write-ahead log, replays it, and restores the previous
// process's jobs before accepting new ones.
//
//lint:ignore ctxthread New only wires the analysis callback; the scan it references runs per-job under the job's own context
func New(cfg Config) (*Server, error) {
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = DefaultMaxUploadBytes
	}
	if cfg.Parallel <= 0 {
		// One shard at a time within a job: concurrent jobs already fill
		// the CPU budget, and sequential shards keep per-job progress
		// strictly ordered.
		cfg.Parallel = 1
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 10 * time.Second
	}
	switch cfg.Role {
	case "", RoleStandalone, RoleCoordinator:
	default:
		return nil, fmt.Errorf("service: unknown role %q (want %s or %s)", cfg.Role, RoleStandalone, RoleCoordinator)
	}
	s := &Server{
		cfg:        cfg,
		collector:  obs.NewCollector(),
		mux:        http.NewServeMux(),
		journals:   make(map[string]*obs.Journal),
		traceRoots: make(map[string]uint64),
	}
	if cfg.Role == RoleCoordinator {
		// The coordinator's tracer is the server's collector, so fleet
		// lease spans and shard histograms surface at /metrics alongside
		// the pipeline aggregates.
		s.coord = fleet.NewCoordinator(cfg.LeaseTTL, s.collector)
	}
	var entries []jobs.LedgerEntry
	if cfg.DataDir != "" {
		var err error
		s.store, entries, err = openStore(cfg.DataDir, cfg.CompactEvery)
		if err != nil {
			return nil, err
		}
	}
	run := cfg.Runner
	if run == nil {
		run = s.runAnalysis
	}
	opts := jobs.Options{
		Workers:      cfg.Workers,
		JobTimeout:   cfg.JobTimeout,
		MaxAttempts:  cfg.MaxAttempts,
		RetryBackoff: cfg.RetryBackoff,
		Tracer:       s.collector,
		OnJobDone:    s.jobDone,
	}
	if s.store != nil {
		opts.Journal = s.store
		opts.EncodePayload = encodePayload
		opts.EncodeResult = encodeResult
	}
	s.pool = jobs.NewPool(run, opts)
	if s.store != nil {
		if err := s.restore(entries); err != nil {
			s.store.Close()
			return nil, fmt.Errorf("service: restoring journaled jobs: %w", err)
		}
	}
	if s.coord != nil {
		s.coord.Register(s.mux)
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Pool exposes the job pool (cancel-on-shutdown, tests).
func (s *Server) Pool() *jobs.Pool { return s.pool }

// Coordinator returns the fleet coordinator (nil unless the server runs
// as RoleCoordinator).
func (s *Server) Coordinator() *fleet.Coordinator { return s.coord }

// Collector exposes the server's shared span collector (cmd/coldbootd
// writes its Chrome trace on exit).
func (s *Server) Collector() *obs.Collector { return s.collector }

// setTraceRoot records which collector span tree belongs to a job.
func (s *Server) setTraceRoot(id string, root uint64) {
	s.jmu.Lock()
	s.traceRoots[id] = root
	s.jmu.Unlock()
}

// traceRoot returns a job's span-tree root in the shared collector (0 when
// the job has not started, or was purged).
func (s *Server) traceRoot(id string) uint64 {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	return s.traceRoots[id]
}

// Drain gracefully shuts the worker pool down: running jobs finish, queued
// jobs are journaled as abandoned (requeued on the next boot) and counted
// in Stats.Abandoned, new submissions get 503. The write-ahead log is
// closed once the pool is quiet.
func (s *Server) Drain(ctx context.Context) error {
	err := s.pool.Drain(ctx)
	if s.store != nil {
		if cerr := s.store.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// jobDone is the pool's terminal hook: wipe and delete the spooled
// container (only needed while the job can still run) and close the job's
// event journal so streaming readers observe end-of-stream. The dump is
// overwritten with zeros before the unlink — it holds the victim's memory,
// key schedules included, and a bare unlink leaves those bytes recoverable
// from the backing store.
func (s *Server) jobDone(j *jobs.Job) {
	if pl, ok := j.Payload().(*dumpJob); ok {
		if pl.Path != "" {
			secret.WipeFile(pl.Path)
			os.Remove(pl.Path)
		}
		if pl.journal != nil {
			pl.journal.Close()
		}
	}
}

// journal returns the event journal of a known job, nil otherwise.
func (s *Server) journal(id string) *obs.Journal {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	return s.journals[id]
}

// handleSubmit streams the posted container to disk and enqueues its
// analysis. Query parameters: priority (int, default 0, higher first),
// repair (0..2 decay-repair flips), variant (128/192/256, default 256),
// formats (comma-separated target-format names, default all registered),
// reveal=keys (persist raw recovered masters in the durable journal, so
// they survive a restart; default: fingerprints only).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	pl := &dumpJob{Variant: aes.AES256}
	q := r.URL.Query()
	if v := q.Get("reveal"); v != "" {
		if v != "keys" {
			httpError(w, http.StatusBadRequest, "bad reveal %q (want keys)", v)
			return
		}
		pl.Reveal = true
	}
	priority := 0
	if v := q.Get("priority"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad priority %q", v)
			return
		}
		priority = n
	}
	if v := q.Get("repair"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 || n > 2 {
			httpError(w, http.StatusBadRequest, "bad repair %q (want 0..2)", v)
			return
		}
		pl.RepairFlips = n
	}
	if v := q.Get("variant"); v != "" {
		switch v {
		case "128":
			pl.Variant = aes.AES128
		case "192":
			pl.Variant = aes.AES192
		case "256":
			pl.Variant = aes.AES256
		default:
			httpError(w, http.StatusBadRequest, "bad variant %q (want 128/192/256)", v)
			return
		}
	}
	if v := q.Get("formats"); v != "" {
		specs := format.ParseSpec(v)
		if len(specs) == 0 {
			httpError(w, http.StatusBadRequest, "bad formats %q (want comma-separated names from %v)", v, core.KnownFormats())
			return
		}
		known := make(map[string]bool)
		for _, n := range core.KnownFormats() {
			known[n] = true
		}
		for _, n := range specs {
			if !known[n] {
				httpError(w, http.StatusBadRequest, "unknown format %q (known: %v)", n, core.KnownFormats())
				return
			}
		}
		pl.Formats = specs
	}

	tmp, err := os.CreateTemp(s.cfg.DataDir, "coldbootd-*.cbdump")
	if err != nil {
		httpError(w, http.StatusInternalServerError, "spooling upload: %v", err)
		return
	}
	pl.Path = tmp.Name()
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	meta, imageBytes, err := dumpfile.Spool(tmp, body)
	closeErr := tmp.Close()
	if err == nil {
		err = closeErr
	}
	if err == nil && imageBytes%int64(core.BlockBytes) != 0 {
		err = errInvalidAlignment(imageBytes)
	}
	if err != nil {
		os.Remove(pl.Path)
		var maxBytes *http.MaxBytesError
		var sink *dumpfile.SinkError
		switch {
		case errors.As(err, &maxBytes):
			httpError(w, http.StatusRequestEntityTooLarge, "upload exceeds %d bytes", s.cfg.MaxUploadBytes)
		case errors.As(err, &sink):
			httpError(w, http.StatusInternalServerError, "spooling upload: %v", err)
		default:
			httpError(w, http.StatusBadRequest, "invalid dump container: %v", err)
		}
		return
	}
	pl.Meta = meta
	pl.ImageBytes = imageBytes
	// Create the journal before Submit: a fast job could reach its
	// terminal hook (which closes pl.journal) before Submit returns.
	pl.journal = obs.NewJournal(s.cfg.EventBuffer)

	snap, err := s.pool.Submit(pl, priority)
	if err != nil {
		os.Remove(pl.Path)
		if errors.Is(err, jobs.ErrDraining) {
			httpError(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		httpError(w, http.StatusInternalServerError, "submitting job: %v", err)
		return
	}
	s.jmu.Lock()
	s.journals[snap.ID] = pl.journal
	s.jmu.Unlock()
	w.Header().Set("Location", "/v1/jobs/"+snap.ID)
	writeJSON(w, http.StatusCreated, statusDoc(snap, pl))
}

func errInvalidAlignment(imageBytes int64) error {
	return fmt.Errorf("image length %d is not a multiple of the %d-byte scrambler block",
		imageBytes, core.BlockBytes)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	snaps := s.pool.List()
	docs := make([]any, 0, len(snaps))
	for _, snap := range snaps {
		docs = append(docs, statusDoc(snap, nil))
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": docs})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.pool.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, statusDoc(snap, nil))
}

// handleCancel cancels an active job (202) or, when the job has already
// reached a terminal state, purges it: the result report's key material is
// destroyed, the event journal is dropped, and the job disappears from the
// pool (subsequent GETs 404). DELETE is thus "make this job stop existing":
// once on a live job to stop it, once more to erase what it recovered.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, err := s.pool.Cancel(id)
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		httpError(w, http.StatusNotFound, "no such job")
	case errors.Is(err, jobs.ErrFinished):
		s.purgeJob(id, snap)
		writeJSON(w, http.StatusOK, map[string]any{"id": id, "state": snap.State, "purged": true})
	case err != nil:
		httpError(w, http.StatusInternalServerError, "canceling: %v", err)
	default:
		// 202: a running job reaches canceled as soon as the campaign
		// observes its context — within one scan chunk.
		writeJSON(w, http.StatusAccepted, statusDoc(snap, nil))
	}
}

// purgeJob erases a terminal job: pool bookkeeping, journal, and — the
// part that matters — every copy of recovered key material in its report.
func (s *Server) purgeJob(id string, snap jobs.Snapshot) {
	if removed, err := s.pool.Remove(id); err == nil {
		snap = removed
	}
	if report, ok := snap.Result.(*ResultReport); ok {
		report.wipe()
	}
	s.jmu.Lock()
	delete(s.journals, id)
	delete(s.traceRoots, id)
	s.jmu.Unlock()
}

// handleTrace serves a job's merged campaign timeline as Chrome Trace
// Event JSON (load in Perfetto / chrome://tracing). The document carries
// every completed span of the job's tree in the shared collector — on a
// coordinator that includes the span trees workers shipped with their
// shard completions, one named track per worker, clock-corrected onto the
// coordinator's timebase. Spans still in flight (a running job's open
// stages) appear once they end; re-fetch after completion for the full
// picture.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.pool.Get(id); !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	root := s.traceRoot(id)
	if root == 0 {
		httpError(w, http.StatusNotFound, "job %s has no trace yet (analysis not started)", id)
		return
	}
	var spans []obs.SpanRecord
	for _, sp := range s.collector.Spans() {
		if sp.Root == root {
			spans = append(spans, sp)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	obs.WriteChromeTraceSpans(w, spans)
}

// handleResult serves the key report of a finished job. Key material is
// redacted to SHA-256 fingerprints unless ?reveal=keys.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.pool.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if !snap.State.Terminal() {
		httpError(w, http.StatusConflict, "job is %s; result not ready", snap.State)
		return
	}
	report, ok := snap.Result.(*ResultReport)
	if !ok || report == nil {
		httpError(w, http.StatusNotFound, "job %s produced no result (state %s: %s)", snap.ID, snap.State, snap.Error)
		return
	}
	writeJSON(w, http.StatusOK, report.redacted(r.URL.Query().Get("reveal") == "keys"))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.pool.Stats()
	status := "ok"
	if st.Draining {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": status, "pool": st})
}

// statusDoc merges a job snapshot with submission facts worth echoing
// (image size, acquisition metadata) into one JSON document.
func statusDoc(snap jobs.Snapshot, pl *dumpJob) map[string]any {
	doc := map[string]any{
		"id":             snap.ID,
		"state":          snap.State,
		"priority":       snap.Priority,
		"attempts":       snap.Attempts,
		"progress":       snap.Progress,
		"progress_done":  snap.Done,
		"progress_total": snap.Total,
	}
	if snap.Error != "" {
		doc["error"] = snap.Error
	}
	if snap.SubmittedAt != "" {
		doc["submitted_at"] = snap.SubmittedAt
	}
	if snap.StartedAt != "" {
		doc["started_at"] = snap.StartedAt
	}
	if snap.FinishedAt != "" {
		doc["finished_at"] = snap.FinishedAt
	}
	if len(snap.Stages) > 0 {
		doc["stages"] = snap.Stages
	}
	if len(snap.Formats) > 0 {
		doc["formats"] = snap.Formats
	}
	if snap.TraceID != "" {
		doc["trace_id"] = snap.TraceID
	}
	if report, ok := snap.Result.(*ResultReport); ok && report != nil {
		doc["keys_found"] = len(report.Keys)
	}
	if pl != nil {
		doc["image_bytes"] = pl.ImageBytes
		doc["variant"] = pl.Variant.String()
		if len(pl.Formats) > 0 {
			doc["formats_requested"] = pl.Formats
		}
		doc["meta"] = pl.Meta
	}
	return doc
}

func writeJSON(w http.ResponseWriter, code int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]any{"error": fmt.Sprintf(format, args...)})
}
