package service

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"coldboot/internal/aes"
	"coldboot/internal/chacha"
	"coldboot/internal/core"
	"coldboot/internal/dumpfile"
	"coldboot/internal/format/luks2"
	"coldboot/internal/scramble"
	"coldboot/internal/workload"

	// Register every scanner: this is the daemon's production registry
	// (cmd/coldbootd imports format/all the same way).
	_ "coldboot/internal/format/all"
)

// Planted-target layout for the multi-format acceptance fixture.
const (
	svcVeraStart   = 1200*core.BlockBytes + 32
	svcLUKSStart   = 9000*core.BlockBytes + 16
	svcLUKSTweak   = svcLUKSStart + 240
	svcHeaderStart = 20000 * core.BlockBytes
	svcChaChaStart = 26000*core.BlockBytes + 16
	svcUUID        = "0f5eed00-1111-2222-3333-444455556666"
)

// buildMultiFormatContainer wraps a scrambled, sparsely decayed dump
// holding every supported target — a lone VeraCrypt AES-256 schedule, a
// LUKS2 VMK schedule pair plus its volume header, and a raw ChaCha20
// state — in an uploadable dump container. Decay spares the header and
// ChaCha pages (they model intact page-cache copies; the AES schedules
// have repair machinery and take their lumps).
func buildMultiFormatContainer(t testing.TB, seed int64, vera, luksData, luksTweak, chachaKey []byte) []byte {
	t.Helper()
	const size = 2 << 20
	plain := make([]byte, size)
	if err := workload.Fill(plain, seed, workload.LightSystem); err != nil {
		t.Fatal(err)
	}
	copy(plain[svcVeraStart:], aes.ExpandKeyBytes(vera))
	copy(plain[svcLUKSStart:], aes.ExpandKeyBytes(luksData))
	copy(plain[svcLUKSTweak:], aes.ExpandKeyBytes(luksTweak))
	copy(plain[svcHeaderStart:], luks2.EncodeHeader(&luks2.Header{
		Primary:     true,
		Version:     2,
		HeaderSize:  16384,
		SeqID:       1,
		Label:       "backup",
		ChecksumAlg: "sha256",
		UUID:        svcUUID,
		Cipher:      "aes-xts-plain64",
		KeyBytes:    64,
	}))
	st := plain[svcChaChaStart : svcChaChaStart+64]
	for i, w := range chacha.Sigma() {
		binary.LittleEndian.PutUint32(st[4*i:], w)
	}
	copy(st[16:48], chachaKey)
	binary.LittleEndian.PutUint32(st[48:], 3)

	s := scramble.NewSkylakeDDR4(uint64(seed)*31 + 7)
	dump := make([]byte, size)
	s.Scramble(dump, plain, 0)
	rng := rand.New(rand.NewSource(seed + 1000))
	for i := 0; i < len(dump)*8/2000; i++ {
		bit := rng.Intn(len(dump) * 8)
		off := bit / 8
		if (off >= svcHeaderStart && off < svcHeaderStart+luks2.BinHeaderBytes+1024) ||
			(off >= svcChaChaStart && off < svcChaChaStart+64) {
			continue
		}
		dump[off] ^= 1 << uint(bit%8)
	}

	var buf bytes.Buffer
	meta := dumpfile.Metadata{CPU: "Skylake test rig", Channels: 1, ScramblerOn: true, FreezeTempC: -35, TransferSeconds: 45}
	if err := dumpfile.Write(&buf, meta, dump); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fetchBody GETs a raw (non-JSON) endpoint.
func fetchBody(t testing.TB, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, data)
	}
	return string(data)
}

// TestMultiFormatJobEndToEnd is the tentpole acceptance at the service
// layer: one submitted dump holding a VeraCrypt master, a LUKS2 VMK pair
// (plus header), and a raw ChaCha20 state; one job recovers all three,
// each tagged with its format, with per-format counts visible in the
// status document, /metrics, and the NDJSON event stream.
func TestMultiFormatJobEndToEnd(t *testing.T) {
	vera, ld, lt := testMaster(81), testMaster(82), testMaster(83)
	ck := testMaster(84)
	container := buildMultiFormatContainer(t, 810, vera, ld, lt, ck)
	_, ts := testServer(t, Config{Workers: 1, ShardBlocks: 8192, EventBuffer: 1 << 16})

	code, doc := postDump(t, ts, "?repair=1", container)
	if code != http.StatusCreated {
		t.Fatalf("submit: HTTP %d: %v", code, doc)
	}
	id := doc["id"].(string)

	final := pollUntil(t, ts, id, 120*time.Second, inState("done"))

	// Per-format counts on the status document.
	formats, _ := final["formats"].(map[string]any)
	for name, want := range map[string]float64{
		"aesxts.candidates":   1,
		"luks2.candidates":    2,
		"chacha20.candidates": 1,
		"luks2.volumes":       1,
	} {
		if got, _ := formats[name].(float64); got != want {
			t.Errorf("status formats[%q] = %v, want %v (have %v)", name, formats[name], want, formats)
		}
	}

	// The result document: every key tagged, the LUKS2 pair stamped with
	// the header's UUID, the ChaCha key carrying no AES variant.
	code, result := getDoc(t, ts, "/v1/jobs/"+id+"/result?reveal=keys")
	if code != http.StatusOK {
		t.Fatalf("result: HTTP %d: %v", code, result)
	}
	keys, _ := result["keys"].([]any)
	byFormat := map[string][]map[string]any{}
	for _, k := range keys {
		km := k.(map[string]any)
		f, _ := km["format"].(string)
		byFormat[f] = append(byFormat[f], km)
	}
	if len(byFormat["aesxts"]) != 1 || len(byFormat["luks2"]) != 2 || len(byFormat["chacha20"]) != 1 {
		t.Fatalf("keys per format: aesxts=%d luks2=%d chacha20=%d (%v)",
			len(byFormat["aesxts"]), len(byFormat["luks2"]), len(byFormat["chacha20"]), keys)
	}
	if got := byFormat["aesxts"][0]["master"]; got != hex.EncodeToString(vera) {
		t.Errorf("vera master = %v", got)
	}
	luksMasters := map[string]bool{}
	for _, km := range byFormat["luks2"] {
		luksMasters[km["master"].(string)] = true
		if km["volume"] != svcUUID {
			t.Errorf("luks2 key volume = %v, want %s", km["volume"], svcUUID)
		}
	}
	if !luksMasters[hex.EncodeToString(ld)] || !luksMasters[hex.EncodeToString(lt)] {
		t.Errorf("luks2 pair masters not both recovered: %v", luksMasters)
	}
	cc := byFormat["chacha20"][0]
	if cc["master"] != hex.EncodeToString(ck) {
		t.Errorf("chacha master = %v", cc["master"])
	}
	if v, present := cc["variant"]; present {
		t.Errorf("chacha key reports AES variant %v", v)
	}
	vols, _ := result["volumes"].([]any)
	if len(vols) != 1 {
		t.Fatalf("volumes: %v, want 1", vols)
	}
	if v := vols[0].(map[string]any); v["uuid"] != svcUUID || v["offset"] != float64(svcHeaderStart) {
		t.Errorf("volume = %v, want uuid %s at %d", v, svcUUID, svcHeaderStart)
	}
	rf, _ := result["formats"].(map[string]any)
	if rf["luks2"] != float64(2) || rf["aesxts"] != float64(1) || rf["chacha20"] != float64(1) {
		t.Errorf("result formats = %v", rf)
	}

	// /metrics: per-format counters on the Prometheus endpoint.
	metrics := fetchBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`{name="format.aesxts.candidates"} 1`,
		`{name="format.luks2.candidates"} 2`,
		`{name="format.chacha20.candidates"} 1`,
		`{name="format.luks2.volumes"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// The NDJSON event stream carries the same counters as count events.
	resp := openEvents(t, ts, id, 0)
	lines := readStream(t, resp.Body, nil)
	resp.Body.Close()
	counted := map[string]bool{}
	for _, ln := range lines {
		if ln.Type == "count" && strings.HasPrefix(ln.Name, "format.") {
			counted[ln.Name] = true
		}
	}
	for _, want := range []string{"format.aesxts.candidates", "format.luks2.candidates", "format.chacha20.candidates", "format.luks2.volumes"} {
		if !counted[want] {
			t.Errorf("event stream missing count %q (have %v)", want, counted)
		}
	}
}

// TestSubmitFormatsParam: ?formats= narrows the hunt (a chacha20-only job
// reports only the ChaCha state) and unknown names are rejected up front.
func TestSubmitFormatsParam(t *testing.T) {
	vera, ld, lt := testMaster(85), testMaster(86), testMaster(87)
	ck := testMaster(88)
	container := buildMultiFormatContainer(t, 850, vera, ld, lt, ck)
	_, ts := testServer(t, Config{Workers: 1})

	code, doc := postDump(t, ts, "?formats=ext4", container)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown format: HTTP %d: %v", code, doc)
	}
	if msg, _ := doc["error"].(string); !strings.Contains(msg, "ext4") {
		t.Errorf("error = %q, want the bad name echoed", msg)
	}

	code, doc = postDump(t, ts, "?repair=1&formats=chacha20", container)
	if code != http.StatusCreated {
		t.Fatalf("submit: HTTP %d: %v", code, doc)
	}
	reqd, _ := doc["formats_requested"].([]any)
	if len(reqd) != 1 || reqd[0] != "chacha20" {
		t.Errorf("formats_requested = %v", doc["formats_requested"])
	}
	id := doc["id"].(string)
	pollUntil(t, ts, id, 120*time.Second, inState("done"))

	code, result := getDoc(t, ts, "/v1/jobs/"+id+"/result?reveal=keys")
	if code != http.StatusOK {
		t.Fatalf("result: HTTP %d: %v", code, result)
	}
	keys, _ := result["keys"].([]any)
	if len(keys) != 1 {
		t.Fatalf("chacha20-only keys: %v", keys)
	}
	km := keys[0].(map[string]any)
	if km["format"] != "chacha20" || km["master"] != hex.EncodeToString(ck) {
		t.Errorf("key = %v", km)
	}
}
