package service

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"coldboot/internal/aes"
	"coldboot/internal/dumpfile"
	"coldboot/internal/jobs"
	"coldboot/internal/obs"
	"coldboot/internal/scramble"
	"coldboot/internal/workload"
)

// buildFixtureContainer builds a dump container holding a scrambled,
// sparsely decayed image with an AES-256 schedule planted at tableStart —
// the same recipe as internal/core's attack tests, wrapped for upload.
func buildFixtureContainer(t testing.TB, size int, seed int64, master []byte, tableStart int, decay bool) []byte {
	t.Helper()
	plain := make([]byte, size)
	if err := workload.Fill(plain, seed, workload.LightSystem); err != nil {
		t.Fatal(err)
	}
	copy(plain[tableStart:], aes.ExpandKeyBytes(master))
	s := scramble.NewSkylakeDDR4(uint64(seed)*31 + 7)
	dump := make([]byte, size)
	s.Scramble(dump, plain, 0)
	if decay {
		rng := rand.New(rand.NewSource(seed + 1000))
		flips := len(dump) * 8 / 1000 // 0.1% of bits
		for i := 0; i < flips; i++ {
			bit := rng.Intn(len(dump) * 8)
			dump[bit/8] ^= 1 << uint(bit%8)
		}
	}
	var buf bytes.Buffer
	meta := dumpfile.Metadata{CPU: "Skylake test rig", Channels: 1, ScramblerOn: true, FreezeTempC: -35, TransferSeconds: 60}
	if err := dumpfile.Write(&buf, meta, dump); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func testMaster(seed int64) []byte {
	key := make([]byte, 32)
	rand.New(rand.NewSource(seed)).Read(key)
	return key
}

// testServer boots a Server over httptest and tears both down at test end.
func testServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Drain(ctx)
	})
	return svc, ts
}

func postDump(t testing.TB, ts *httptest.Server, query string, body []byte) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs"+query, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return decodeDoc(t, resp)
}

func getDoc(t testing.TB, ts *httptest.Server, path string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	return decodeDoc(t, resp)
}

func deleteJob(t testing.TB, ts *httptest.Server, id string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return decodeDoc(t, resp)
}

func decodeDoc(t testing.TB, resp *http.Response) (int, map[string]any) {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	doc := make(map[string]any)
	if len(data) > 0 {
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("decoding %q: %v", data, err)
		}
	}
	return resp.StatusCode, doc
}

// pollUntil polls the job's status document until pred is satisfied,
// asserting along the way that the progress gauge never moves backwards.
func pollUntil(t testing.TB, ts *httptest.Server, id string, timeout time.Duration, pred func(doc map[string]any) bool) map[string]any {
	t.Helper()
	deadline := time.Now().Add(timeout)
	lastProgress := -1.0
	for time.Now().Before(deadline) {
		code, doc := getDoc(t, ts, "/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("status poll: HTTP %d: %v", code, doc)
		}
		if p, ok := doc["progress"].(float64); ok {
			if p < lastProgress {
				t.Fatalf("progress moved backwards: %f after %f", p, lastProgress)
			}
			lastProgress = p
		}
		if pred(doc) {
			return doc
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, doc := getDoc(t, ts, "/v1/jobs/"+id)
	t.Fatalf("timed out waiting on job %s; last status %v", id, doc)
	return nil
}

func inState(state string) func(map[string]any) bool {
	return func(doc map[string]any) bool { return doc["state"] == state }
}

// TestJobLifecycleEndToEnd drives the acceptance path: submit a scrambled
// + decayed fixture, watch it move queued → running → done with monotonic
// progress, and read back the planted master key from the result endpoint.
func TestJobLifecycleEndToEnd(t *testing.T) {
	master := testMaster(41)
	const tableStart = 4096*64 + 256
	container := buildFixtureContainer(t, 2<<20, 41, master, tableStart, true)

	var ticks atomic.Int32
	campaignTracer := &obs.Funcs{
		OnProgress: func(stage string, done, total int64) {
			if stage == "campaign" {
				ticks.Add(1)
			}
		},
	}
	dataDir := t.TempDir()
	_, ts := testServer(t, Config{
		Workers:     1,
		DataDir:     dataDir,
		ShardBlocks: 8192, // 512 KiB shards: 4 campaign progress ticks on 2 MiB
		Tracer:      campaignTracer,
	})

	code, doc := postDump(t, ts, "?repair=1", container)
	if code != http.StatusCreated {
		t.Fatalf("submit: HTTP %d: %v", code, doc)
	}
	id, _ := doc["id"].(string)
	if id == "" {
		t.Fatalf("submit returned no id: %v", doc)
	}
	if doc["state"] != "queued" {
		t.Fatalf("submitted job state = %v, want queued", doc["state"])
	}
	if doc["image_bytes"] != float64(2<<20) {
		t.Errorf("image_bytes = %v", doc["image_bytes"])
	}
	meta, _ := doc["meta"].(map[string]any)
	if meta["cpu"] != "Skylake test rig" {
		t.Errorf("metadata not echoed: %v", doc["meta"])
	}

	final := pollUntil(t, ts, id, 60*time.Second, inState("done"))
	if final["progress"] != 1.0 {
		t.Errorf("final progress = %v, want 1", final["progress"])
	}
	if kf, _ := final["keys_found"].(float64); kf < 1 {
		t.Fatalf("keys_found = %v, want >= 1", final["keys_found"])
	}
	if ticks.Load() < 2 {
		t.Errorf("campaign progress ticked %d times, want >= 2 (shard-by-shard)", ticks.Load())
	}
	stages, _ := final["stages"].([]any)
	names := make(map[string]bool)
	for _, s := range stages {
		names[s.(map[string]any)["name"].(string)] = true
	}
	for _, want := range []string{"campaign.mine", "hunt", "campaign.merge"} {
		if !names[want] {
			t.Errorf("stage %q missing from status breakdown (have %v)", want, names)
		}
	}

	// Redacted by default: fingerprints only.
	code, result := getDoc(t, ts, "/v1/jobs/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: HTTP %d: %v", code, result)
	}
	keys, _ := result["keys"].([]any)
	if len(keys) == 0 {
		t.Fatal("result has no keys")
	}
	key0 := keys[0].(map[string]any)
	if fp, _ := key0["fingerprint"].(string); !strings.HasPrefix(fp, "sha256:") {
		t.Errorf("fingerprint = %v", key0["fingerprint"])
	}
	if _, leaked := key0["master"]; leaked {
		t.Fatalf("redacted result leaks key material: %v", key0)
	}

	// Revealed on request: the planted master comes back bit-exact.
	code, revealed := getDoc(t, ts, "/v1/jobs/"+id+"/result?reveal=keys")
	if code != http.StatusOK {
		t.Fatalf("revealed result: HTTP %d", code)
	}
	rkeys := revealed["keys"].([]any)
	got, _ := rkeys[0].(map[string]any)["master"].(string)
	if got != hex.EncodeToString(master) {
		t.Fatalf("recovered master %s, want %s", got, hex.EncodeToString(master))
	}
	if rkeys[0].(map[string]any)["variant"] != "AES-256" {
		t.Errorf("variant = %v", rkeys[0].(map[string]any)["variant"])
	}

	// The spooled upload is deleted once the job is terminal.
	waitDirEmpty(t, dataDir)
}

// waitDirEmpty asserts every spooled dump has been wiped and unlinked.
// The durable journal's wal/ subdirectory is a permanent resident of the
// data dir and doesn't count.
func waitDirEmpty(t testing.TB, dir string) {
	t.Helper()
	spooled := func() int {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, e := range entries {
			if e.Name() != walDirName {
				n++
			}
		}
		return n
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if spooled() == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("spool dir still holds %d files", spooled())
}

// TestCancelMidRunKeepsPartialResult: DELETE while the campaign is mid-
// scan lands the job in canceled promptly, with a partial result report.
func TestCancelMidRunKeepsPartialResult(t *testing.T) {
	master := testMaster(42)
	// The dump must be big enough that the campaign is still mid-scan when
	// the DELETE lands: at the pipeline's gated ≥60 MB/s an 8 MiB job is
	// over in ~100ms — faster than submit→poll→cancel can round-trip on a
	// loaded 1-CPU CI box — so give the scan a sub-second runway instead.
	container := buildFixtureContainer(t, 64<<20, 42, master, 4096*64, false)
	dataDir := t.TempDir()
	_, ts := testServer(t, Config{Workers: 1, DataDir: dataDir, ShardBlocks: 4096})

	code, doc := postDump(t, ts, "", container)
	if code != http.StatusCreated {
		t.Fatalf("submit: HTTP %d: %v", code, doc)
	}
	id := doc["id"].(string)
	pollUntil(t, ts, id, 30*time.Second, inState("running"))

	code, cdoc := deleteJob(t, ts, id)
	if code != http.StatusAccepted {
		t.Fatalf("cancel: HTTP %d: %v", code, cdoc)
	}
	start := time.Now()
	pollUntil(t, ts, id, 10*time.Second, inState("canceled"))
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}

	// Partial results survive: the report exists and is marked partial.
	code, result := getDoc(t, ts, "/v1/jobs/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("partial result: HTTP %d: %v", code, result)
	}
	if result["partial"] != true {
		t.Errorf("result not marked partial: %v", result)
	}
	// A second DELETE purges the terminal job: key material is destroyed
	// and the job stops existing.
	code, pdoc := deleteJob(t, ts, id)
	if code != http.StatusOK {
		t.Errorf("second cancel: HTTP %d, want 200: %v", code, pdoc)
	}
	if pdoc["purged"] != true {
		t.Errorf("second cancel not marked purged: %v", pdoc)
	}
	if code, _ := getDoc(t, ts, "/v1/jobs/"+id); code != http.StatusNotFound {
		t.Errorf("status after purge: HTTP %d, want 404", code)
	}
	waitDirEmpty(t, dataDir)
}

// tinyContainer is a minimal valid upload for scheduling tests that never
// analyze for real (stub runners).
func tinyContainer(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := dumpfile.Write(&buf, dumpfile.Metadata{CPU: "stub"}, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestQueueSaturationStaysBounded: jobs beyond the worker cap wait in the
// queue; no goroutine is spawned per queued job.
func TestQueueSaturationStaysBounded(t *testing.T) {
	release := make(chan struct{})
	var running atomic.Int32
	svc, ts := testServer(t, Config{
		Workers: 2,
		Runner: func(ctx context.Context, j *jobs.Job) (any, error) {
			running.Add(1)
			defer running.Add(-1)
			select {
			case <-release:
				return &ResultReport{}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	container := tinyContainer(t)
	before := runtime.NumGoroutine()
	var ids []string
	for i := 0; i < 8; i++ {
		code, doc := postDump(t, ts, "", container)
		if code != http.StatusCreated {
			t.Fatalf("submit %d: HTTP %d: %v", i, code, doc)
		}
		ids = append(ids, doc["id"].(string))
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := svc.Pool().Stats()
		if st.Running == 2 && st.Queued == 6 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if st := svc.Pool().Stats(); st.Running != 2 || st.Queued != 6 {
		t.Fatalf("stats = %+v, want 2 running / 6 queued", st)
	}
	if running.Load() != 2 {
		t.Fatalf("%d runner invocations in flight, want 2", running.Load())
	}
	// No per-job goroutines: growth is bounded by the httptest server's
	// own connection handling, not the queue depth.
	if after := runtime.NumGoroutine(); after-before > 12 {
		t.Errorf("goroutines grew %d -> %d while 6 jobs queued", before, after)
	}
	close(release)
	for _, id := range ids {
		pollUntil(t, ts, id, 10*time.Second, inState("done"))
	}
}

// TestDrainRejectsNewWorkAndFinishesRunning: during drain the API answers
// 503 for submissions while the in-flight job completes; queued jobs are
// abandoned.
func TestDrainRejectsNewWorkAndFinishesRunning(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	svc, ts := testServer(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, j *jobs.Job) (any, error) {
			started <- struct{}{}
			<-release
			return &ResultReport{Keys: []KeyReport{}}, nil
		},
	})
	container := tinyContainer(t)
	code, doc := postDump(t, ts, "", container)
	if code != http.StatusCreated {
		t.Fatal(code)
	}
	runningID := doc["id"].(string)
	<-started
	code, doc = postDump(t, ts, "", container)
	if code != http.StatusCreated {
		t.Fatal(code)
	}
	queuedID := doc["id"].(string)

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- svc.Drain(ctx)
	}()
	// Submissions during drain are refused. (Draining flips under the pool
	// lock before Drain blocks, but give the goroutine a beat to start.)
	deadline := time.Now().Add(5 * time.Second)
	for !svc.Pool().Stats().Draining && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if code, doc := postDump(t, ts, "", container); code != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: HTTP %d: %v", code, doc)
	}
	if _, doc := getDoc(t, ts, "/healthz"); doc["status"] != "draining" {
		t.Errorf("healthz during drain = %v", doc["status"])
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, doc := getDoc(t, ts, "/v1/jobs/"+runningID); doc["state"] != "done" {
		t.Errorf("running job after drain = %v, want done", doc["state"])
	}
	if _, doc := getDoc(t, ts, "/v1/jobs/"+queuedID); doc["state"] != "queued" {
		t.Errorf("queued job after drain = %v, want queued (abandoned)", doc["state"])
	}
}

// TestSubmitValidation covers the upload guardrails.
func TestSubmitValidation(t *testing.T) {
	_, ts := testServer(t, Config{
		Workers:        1,
		MaxUploadBytes: 64 << 10,
		Runner: func(ctx context.Context, j *jobs.Job) (any, error) {
			return &ResultReport{}, nil
		},
	})
	good := tinyContainer(t)

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		copy(bad, "NOTADUMP")
		if code, doc := postDump(t, ts, "", bad); code != http.StatusBadRequest {
			t.Errorf("HTTP %d: %v", code, doc)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if code, doc := postDump(t, ts, "", good[:len(good)-10]); code != http.StatusBadRequest {
			t.Errorf("HTTP %d: %v", code, doc)
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		bad := append(append([]byte(nil), good...), 0xAA)
		if code, doc := postDump(t, ts, "", bad); code != http.StatusBadRequest {
			t.Errorf("HTTP %d: %v", code, doc)
		}
	})
	t.Run("misaligned image", func(t *testing.T) {
		var buf bytes.Buffer
		if err := dumpfile.Write(&buf, dumpfile.Metadata{}, make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
		code, doc := postDump(t, ts, "", buf.Bytes())
		if code != http.StatusBadRequest {
			t.Errorf("HTTP %d: %v", code, doc)
		}
		if msg, _ := doc["error"].(string); !strings.Contains(msg, "scrambler block") {
			t.Errorf("error = %q", msg)
		}
	})
	t.Run("too large", func(t *testing.T) {
		var buf bytes.Buffer
		if err := dumpfile.Write(&buf, dumpfile.Metadata{}, make([]byte, 128<<10)); err != nil {
			t.Fatal(err)
		}
		if code, doc := postDump(t, ts, "", buf.Bytes()); code != http.StatusRequestEntityTooLarge {
			t.Errorf("HTTP %d: %v", code, doc)
		}
	})
	t.Run("bad params", func(t *testing.T) {
		for _, q := range []string{"?priority=x", "?repair=7", "?repair=x", "?variant=512"} {
			if code, _ := postDump(t, ts, q, good); code != http.StatusBadRequest {
				t.Errorf("%s: HTTP %d, want 400", q, code)
			}
		}
	})
}

// TestStatusAndResultErrors covers the status/result endpoints' error
// mapping.
func TestStatusAndResultErrors(t *testing.T) {
	block := make(chan struct{})
	_, ts := testServer(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, j *jobs.Job) (any, error) {
			<-block
			return nil, errors.New("scan exploded")
		},
	})
	t.Cleanup(func() {
		select {
		case <-block:
		default:
			close(block)
		}
	})
	if code, _ := getDoc(t, ts, "/v1/jobs/nope"); code != http.StatusNotFound {
		t.Errorf("unknown status: HTTP %d", code)
	}
	if code, _ := deleteJob(t, ts, "nope"); code != http.StatusNotFound {
		t.Errorf("unknown cancel: HTTP %d", code)
	}
	if code, _ := getDoc(t, ts, "/v1/jobs/nope/result"); code != http.StatusNotFound {
		t.Errorf("unknown result: HTTP %d", code)
	}

	code, doc := postDump(t, ts, "", tinyContainer(t))
	if code != http.StatusCreated {
		t.Fatal(code)
	}
	id := doc["id"].(string)
	pollUntil(t, ts, id, 10*time.Second, inState("running"))
	// Result before the job finishes conflicts.
	if code, _ := getDoc(t, ts, "/v1/jobs/"+id+"/result"); code != http.StatusConflict {
		t.Errorf("early result: HTTP %d, want 409", code)
	}
	close(block)
	final := pollUntil(t, ts, id, 10*time.Second, inState("failed"))
	if msg, _ := final["error"].(string); !strings.Contains(msg, "scan exploded") {
		t.Errorf("failure error = %q", msg)
	}
	// A failed job with no report has no result document.
	if code, _ := getDoc(t, ts, "/v1/jobs/"+id+"/result"); code != http.StatusNotFound {
		t.Errorf("failed result: HTTP %d, want 404", code)
	}
}

// TestMetricsEndpoint: pool gauges and pipeline aggregates appear in the
// Prometheus text output.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{
		Workers: 3,
		Runner: func(ctx context.Context, j *jobs.Job) (any, error) {
			return &ResultReport{}, nil
		},
		Tracer: nil,
	})
	code, doc := postDump(t, ts, "", tinyContainer(t))
	if code != http.StatusCreated {
		t.Fatal(code)
	}
	pollUntil(t, ts, doc["id"].(string), 10*time.Second, inState("done"))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"coldbootd_workers 3",
		"coldbootd_jobs_done_total 1",
		"coldbootd_jobs_queued 0",
		"coldbootd_draining 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestMetricsIncludePipelineStages: a real (small, clean) analysis run
// feeds the shared collector, and its stage aggregates reach /metrics.
func TestMetricsIncludePipelineStages(t *testing.T) {
	master := testMaster(43)
	container := buildFixtureContainer(t, 1<<20, 43, master, 2048*64, false)
	_, ts := testServer(t, Config{Workers: 1})
	code, doc := postDump(t, ts, "", container)
	if code != http.StatusCreated {
		t.Fatal(code)
	}
	pollUntil(t, ts, doc["id"].(string), 60*time.Second, inState("done"))
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		`coldbootd_pipeline_stage_wall_seconds{stage="campaign.mine"}`,
		`coldbootd_pipeline_stage_calls_total{stage="hunt"}`,
		`coldbootd_pipeline_counter_total{name="progress.campaign"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestListEndpoint: GET /v1/jobs returns every job in submission order.
func TestListEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, j *jobs.Job) (any, error) {
			return &ResultReport{}, nil
		},
	})
	container := tinyContainer(t)
	var ids []string
	for i := 0; i < 3; i++ {
		code, doc := postDump(t, ts, fmt.Sprintf("?priority=%d", i), container)
		if code != http.StatusCreated {
			t.Fatal(code)
		}
		ids = append(ids, doc["id"].(string))
	}
	for _, id := range ids {
		pollUntil(t, ts, id, 10*time.Second, inState("done"))
	}
	code, doc := getDoc(t, ts, "/v1/jobs")
	if code != http.StatusOK {
		t.Fatal(code)
	}
	list, _ := doc["jobs"].([]any)
	if len(list) != 3 {
		t.Fatalf("list has %d jobs", len(list))
	}
	for i, item := range list {
		if got := item.(map[string]any)["id"]; got != ids[i] {
			t.Errorf("list[%d] = %v, want %s", i, got, ids[i])
		}
	}
}
