// Package lfsr implements linear feedback shift registers.
//
// Intel's VLSI-DAT 2011 publication discloses that the DDR scramblers in the
// Westmere (and later) memory controllers generate their pseudo-random
// scrambling streams with LFSRs seeded from boot-time entropy and portions of
// the physical address bits. This package provides the two standard LFSR
// constructions (Fibonacci and Galois) with configurable width and taps, plus
// a table of maximal-length tap sets used by the scrambler models in
// internal/scramble.
//
// An LFSR of width w cycles through at most 2^w - 1 nonzero states. The tap
// sets in MaximalTaps are primitive polynomials, so they achieve exactly that
// period.
package lfsr

import "fmt"

// MaximalTaps maps register width to a tap mask for a maximal-length LFSR in
// the right-shift Galois convention: a polynomial term x^e sets mask bit e-1.
// These are standard primitive polynomials (exponents in the comments).
var MaximalTaps = map[int]uint64{
	8:  0xB8,               // x^8 + x^6 + x^5 + x^4 + 1
	12: 0xE08,              // x^12 + x^11 + x^10 + x^4 + 1
	16: 0xD008,             // x^16 + x^15 + x^13 + x^4 + 1
	23: 0x420000,           // x^23 + x^18 + 1
	24: 0xE10000,           // x^24 + x^23 + x^22 + x^17 + 1
	32: 0x80200003,         // x^32 + x^22 + x^2 + x^1 + 1
	48: 0xC00000101000,     // x^48 + x^47 + x^21 + x^13 + 1
	64: 0xD800000000000000, // x^64 + x^63 + x^61 + x^60 + 1
}

// FibonacciTaps converts a Galois-convention tap mask (see MaximalTaps) into
// the equivalent Fibonacci-convention mask for the same polynomial: the two
// conventions index taps from opposite ends of the register, so the mask is
// bit-reversed within the register width.
func FibonacciTaps(width int, galoisMask uint64) uint64 {
	var m uint64
	for i := 0; i < width; i++ {
		if galoisMask&(1<<uint(i)) != 0 {
			m |= 1 << uint(width-1-i)
		}
	}
	return m
}

// Galois is a Galois-form LFSR. Galois form applies the feedback polynomial
// to multiple bits per shift, which is how the hardware implementations the
// paper discusses are typically built (single XOR level per shifted bit).
type Galois struct {
	state uint64
	taps  uint64
	mask  uint64
	width int
}

// NewGalois returns a Galois LFSR of the given width (1..64) using taps.
// A zero seed is the lock-up state for an LFSR, so it is mapped to the
// all-ones state; hardware seeders do the same.
func NewGalois(width int, taps, seed uint64) *Galois {
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("lfsr: invalid width %d", width))
	}
	g := &Galois{taps: taps, width: width}
	if width == 64 {
		g.mask = ^uint64(0)
	} else {
		g.mask = (uint64(1) << uint(width)) - 1
	}
	g.Reseed(seed)
	return g
}

// NewMaximal returns a Galois LFSR of the given width using the maximal
// length taps from MaximalTaps. It panics if no tap set is known for width.
func NewMaximal(width int, seed uint64) *Galois {
	taps, ok := MaximalTaps[width]
	if !ok {
		panic(fmt.Sprintf("lfsr: no maximal tap set for width %d", width))
	}
	return NewGalois(width, taps, seed)
}

// Reseed resets the register state from seed, avoiding the zero lock-up state.
func (g *Galois) Reseed(seed uint64) {
	g.state = seed & g.mask
	if g.state == 0 {
		g.state = g.mask
	}
}

// State returns the current register contents.
func (g *Galois) State() uint64 { return g.state }

// Width returns the register width in bits.
func (g *Galois) Width() int { return g.width }

// NextBit shifts the register once and returns the output bit (0 or 1).
func (g *Galois) NextBit() uint64 {
	out := g.state & 1
	g.state >>= 1
	if out == 1 {
		g.state ^= g.taps
	}
	return out
}

// NextByte shifts the register eight times and returns the collected bits,
// LSB first.
func (g *Galois) NextByte() byte {
	var b byte
	for i := 0; i < 8; i++ {
		b |= byte(g.NextBit()) << uint(i)
	}
	return b
}

// NextWord16 returns the next 16 output bits as a little-endian word.
func (g *Galois) NextWord16() uint16 {
	return uint16(g.NextByte()) | uint16(g.NextByte())<<8
}

// Fill writes len(dst) pseudo-random bytes into dst.
func (g *Galois) Fill(dst []byte) {
	for i := range dst {
		dst[i] = g.NextByte()
	}
}

// Fibonacci is a Fibonacci-form (external feedback) LFSR. The feedback bit is
// the XOR of the tapped state bits and is shifted in at the top.
type Fibonacci struct {
	state uint64
	taps  uint64
	mask  uint64
	width int
}

// NewFibonacci returns a Fibonacci LFSR of the given width using taps.
func NewFibonacci(width int, taps, seed uint64) *Fibonacci {
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("lfsr: invalid width %d", width))
	}
	f := &Fibonacci{taps: taps, width: width}
	if width == 64 {
		f.mask = ^uint64(0)
	} else {
		f.mask = (uint64(1) << uint(width)) - 1
	}
	f.Reseed(seed)
	return f
}

// Reseed resets the register state from seed, avoiding the zero lock-up state.
func (f *Fibonacci) Reseed(seed uint64) {
	f.state = seed & f.mask
	if f.state == 0 {
		f.state = f.mask
	}
}

// State returns the current register contents.
func (f *Fibonacci) State() uint64 { return f.state }

// NextBit shifts the register once and returns the output bit.
func (f *Fibonacci) NextBit() uint64 {
	out := f.state & 1
	fb := parity(f.state & f.taps)
	f.state >>= 1
	f.state |= fb << uint(f.width-1)
	f.state &= f.mask
	return out
}

// NextByte shifts the register eight times and returns the collected bits,
// LSB first.
func (f *Fibonacci) NextByte() byte {
	var b byte
	for i := 0; i < 8; i++ {
		b |= byte(f.NextBit()) << uint(i)
	}
	return b
}

// Fill writes len(dst) pseudo-random bytes into dst.
func (f *Fibonacci) Fill(dst []byte) {
	for i := range dst {
		dst[i] = f.NextByte()
	}
}

func parity(v uint64) uint64 {
	v ^= v >> 32
	v ^= v >> 16
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return v & 1
}

// Period steps the LFSR from its current state until the state repeats or
// limit steps have been taken, returning the number of steps. It is intended
// for tests that verify maximal-length behaviour of small registers.
func Period(step func() uint64, state func() uint64, limit int) int {
	start := state()
	for i := 1; i <= limit; i++ {
		step()
		if state() == start {
			return i
		}
	}
	return limit
}
