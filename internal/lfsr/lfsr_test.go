package lfsr

import (
	"testing"
	"testing/quick"

	"coldboot/internal/bitutil"
)

func TestGaloisMaximalPeriod8(t *testing.T) {
	g := NewMaximal(8, 1)
	period := Period(func() uint64 { return g.NextBit() }, g.State, 1<<10)
	if period != 255 {
		t.Errorf("8-bit Galois LFSR period = %d, want 255", period)
	}
}

func TestGaloisMaximalPeriod12(t *testing.T) {
	g := NewMaximal(12, 1)
	period := Period(func() uint64 { return g.NextBit() }, g.State, 1<<14)
	if period != 4095 {
		t.Errorf("12-bit Galois LFSR period = %d, want 4095", period)
	}
}

func TestGaloisMaximalPeriod16(t *testing.T) {
	g := NewMaximal(16, 1)
	period := Period(func() uint64 { return g.NextBit() }, g.State, 1<<18)
	if period != 65535 {
		t.Errorf("16-bit Galois LFSR period = %d, want 65535", period)
	}
}

func TestGaloisZeroSeedAvoidsLockup(t *testing.T) {
	g := NewMaximal(16, 0)
	if g.State() == 0 {
		t.Fatal("zero seed left register in lock-up state")
	}
	// It must still advance.
	s0 := g.State()
	g.NextBit()
	if g.State() == s0 {
		t.Error("register did not advance")
	}
}

func TestGaloisDeterminism(t *testing.T) {
	a := NewMaximal(32, 0xDEADBEEF)
	b := NewMaximal(32, 0xDEADBEEF)
	for i := 0; i < 1000; i++ {
		if a.NextBit() != b.NextBit() {
			t.Fatalf("same-seed LFSRs diverged at step %d", i)
		}
	}
}

func TestGaloisSeedSensitivity(t *testing.T) {
	a := NewMaximal(64, 0x1234)
	b := NewMaximal(64, 0x1235)
	bufA := make([]byte, 64)
	bufB := make([]byte, 64)
	a.Fill(bufA)
	b.Fill(bufB)
	if string(bufA) == string(bufB) {
		t.Error("adjacent seeds produced identical output")
	}
}

func TestGaloisOutputBalance(t *testing.T) {
	g := NewMaximal(32, 99)
	buf := make([]byte, 1<<14)
	g.Fill(buf)
	frac := bitutil.OnesFraction(buf)
	if frac < 0.48 || frac > 0.52 {
		t.Errorf("ones fraction = %f, want ~0.5", frac)
	}
	ent := bitutil.Entropy(buf)
	if ent < 7.9 {
		t.Errorf("entropy = %f bits/byte, want > 7.9", ent)
	}
}

func TestGaloisWidth64Mask(t *testing.T) {
	g := NewMaximal(64, ^uint64(0))
	for i := 0; i < 256; i++ {
		g.NextBit()
	}
	// Just exercising: no panic, state stays within 64 bits trivially.
	if g.Width() != 64 {
		t.Errorf("width = %d, want 64", g.Width())
	}
}

func TestGaloisInvalidWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for width 0")
		}
	}()
	NewGalois(0, 1, 1)
}

func TestNewMaximalUnknownWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown width")
		}
	}()
	NewMaximal(17, 1)
}

func TestFibonacciMaximalPeriod8(t *testing.T) {
	// x^8 + x^6 + x^5 + x^4 + 1, converted to the Fibonacci tap convention.
	f := NewFibonacci(8, FibonacciTaps(8, MaximalTaps[8]), 1)
	period := Period(func() uint64 { return f.NextBit() }, f.State, 1<<10)
	if period != 255 {
		t.Errorf("8-bit Fibonacci LFSR period = %d, want 255", period)
	}
}

func TestFibonacciMaximalPeriod12(t *testing.T) {
	f := NewFibonacci(12, FibonacciTaps(12, MaximalTaps[12]), 1)
	period := Period(func() uint64 { return f.NextBit() }, f.State, 1<<14)
	if period != 4095 {
		t.Errorf("12-bit Fibonacci LFSR period = %d, want 4095", period)
	}
}

func TestFibonacciTapsReversal(t *testing.T) {
	if got := FibonacciTaps(8, 0xB8); got != 0x1D {
		t.Errorf("FibonacciTaps(8, B8) = %#x, want 0x1D", got)
	}
	// Double reversal is the identity.
	f := func(m uint16) bool {
		g := uint64(m)
		return FibonacciTaps(16, FibonacciTaps(16, g)) == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFibonacciZeroSeedAvoidsLockup(t *testing.T) {
	f := NewFibonacci(16, 0xD008, 0)
	if f.State() == 0 {
		t.Fatal("zero seed left register in lock-up state")
	}
}

func TestFibonacciDeterminism(t *testing.T) {
	a := NewFibonacci(32, 0x80200003, 7)
	b := NewFibonacci(32, 0x80200003, 7)
	bufA := make([]byte, 128)
	bufB := make([]byte, 128)
	a.Fill(bufA)
	b.Fill(bufB)
	if string(bufA) != string(bufB) {
		t.Error("same-seed Fibonacci LFSRs diverged")
	}
}

func TestNextWord16MatchesBytes(t *testing.T) {
	a := NewMaximal(32, 5)
	b := NewMaximal(32, 5)
	for i := 0; i < 64; i++ {
		w := a.NextWord16()
		lo := b.NextByte()
		hi := b.NextByte()
		if w != uint16(lo)|uint16(hi)<<8 {
			t.Fatalf("word %d mismatch", i)
		}
	}
}

func TestReseedRestartsSequence(t *testing.T) {
	g := NewMaximal(24, 42)
	first := make([]byte, 32)
	g.Fill(first)
	g.Reseed(42)
	second := make([]byte, 32)
	g.Fill(second)
	if string(first) != string(second) {
		t.Error("reseed did not restart the sequence")
	}
}

func TestParityProperty(t *testing.T) {
	f := func(v uint64) bool {
		want := uint64(0)
		for i := 0; i < 64; i++ {
			want ^= (v >> uint(i)) & 1
		}
		return parity(v) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGaloisStatesAllDistinctOverPeriod(t *testing.T) {
	g := NewMaximal(12, 1)
	seen := make(map[uint64]bool)
	for i := 0; i < 4095; i++ {
		if seen[g.State()] {
			t.Fatalf("state repeated early at step %d", i)
		}
		seen[g.State()] = true
		g.NextBit()
	}
}

func BenchmarkGaloisFill64B(b *testing.B) {
	g := NewMaximal(64, 12345)
	buf := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		g.Fill(buf)
	}
}
