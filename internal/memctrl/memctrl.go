// Package memctrl models the integrated memory controller: the component
// that routes physical addresses to channels/DIMMs and passes all data
// through the scrambler (or a strong-cipher replacement) on its way to and
// from the DRAM bus.
//
// The controller is the trust boundary of the whole attack: software —
// even the bare-metal GRUB dump module — only ever sees data AFTER the
// descrambler, while the DRAM device stores the raw scrambled bits. Moving
// a DIMM moves those raw bits to whatever controller reads them next.
package memctrl

import (
	"fmt"

	"coldboot/internal/addrmap"
	"coldboot/internal/dram"
	"coldboot/internal/scramble"
)

// ScramblerFactory builds a per-channel scrambler for a boot seed. The
// factory abstraction is what lets internal/engine drop a ChaCha8 or
// AES-CTR engine into the same socket the LFSR scrambler occupies.
type ScramblerFactory func(seed uint64) scramble.Scrambler

// Config describes a controller.
type Config struct {
	Arch     addrmap.Microarch
	Channels int
	// NewScrambler builds each channel's scrambler at boot; nil selects the
	// generation's stock scrambler (DDR3 LFSR for SandyBridge/IvyBridge,
	// Skylake DDR4 otherwise).
	NewScrambler ScramblerFactory
	// ScramblerEnabled mirrors the BIOS knob the paper's analysis
	// framework relies on; when false all channels run scramble.None.
	ScramblerEnabled bool
}

// Controller is a simulated integrated memory controller.
type Controller struct {
	cfg        Config
	mapping    addrmap.Mapping
	scramblers []scramble.Scrambler
	dimms      []*dram.Module
	seed       uint64
	booted     bool
}

// New builds a controller with empty DIMM slots (one per channel).
func New(cfg Config) (*Controller, error) {
	m, err := addrmap.New(cfg.Arch, cfg.Channels)
	if err != nil {
		return nil, err
	}
	if cfg.NewScrambler == nil {
		cfg.NewScrambler = StockScrambler(cfg.Arch)
	}
	return &Controller{
		cfg:        cfg,
		mapping:    m,
		scramblers: make([]scramble.Scrambler, cfg.Channels),
		dimms:      make([]*dram.Module, cfg.Channels),
	}, nil
}

// StockScrambler returns the factory for the generation's production
// scrambler.
func StockScrambler(arch addrmap.Microarch) ScramblerFactory {
	switch arch {
	case addrmap.SandyBridge, addrmap.IvyBridge:
		return func(seed uint64) scramble.Scrambler { return scramble.NewDDR3(seed) }
	default:
		return func(seed uint64) scramble.Scrambler { return scramble.NewSkylakeDDR4(seed) }
	}
}

// Mapping returns the controller's address mapping.
func (c *Controller) Mapping() addrmap.Mapping { return c.mapping }

// Channels returns the channel count.
func (c *Controller) Channels() int { return c.cfg.Channels }

// ScramblerEnabled reports whether scrambling is active.
func (c *Controller) ScramblerEnabled() bool { return c.cfg.ScramblerEnabled }

// SetScramblerEnabled flips the BIOS scrambler knob. Takes effect at the
// next Boot.
func (c *Controller) SetScramblerEnabled(on bool) { c.cfg.ScramblerEnabled = on }

// AttachDIMM seats a module in channel ch. All channels must hold
// equal-size modules before the controller can serve accesses.
func (c *Controller) AttachDIMM(ch int, m *dram.Module) error {
	if ch < 0 || ch >= c.cfg.Channels {
		return fmt.Errorf("memctrl: no channel %d", ch)
	}
	if c.dimms[ch] != nil {
		return fmt.Errorf("memctrl: channel %d already populated", ch)
	}
	c.dimms[ch] = m
	return nil
}

// DetachDIMM removes and returns the module in channel ch.
func (c *Controller) DetachDIMM(ch int) (*dram.Module, error) {
	if ch < 0 || ch >= c.cfg.Channels {
		return nil, fmt.Errorf("memctrl: no channel %d", ch)
	}
	m := c.dimms[ch]
	if m == nil {
		return nil, fmt.Errorf("memctrl: channel %d empty", ch)
	}
	c.dimms[ch] = nil
	return m, nil
}

// DIMM returns the module in channel ch (nil if empty).
func (c *Controller) DIMM(ch int) *dram.Module {
	if ch < 0 || ch >= c.cfg.Channels {
		return nil
	}
	return c.dimms[ch]
}

// Boot initializes the scramblers with the given boot seed (chosen by the
// BIOS). Memory contents are untouched: a reboot changes the keystream,
// not the stored bits — the effect Figures 3c/3e visualize.
func (c *Controller) Boot(seed uint64) error {
	size := -1
	for ch, m := range c.dimms {
		if m == nil {
			return fmt.Errorf("memctrl: channel %d unpopulated at boot", ch)
		}
		if size == -1 {
			size = m.Size()
		} else if m.Size() != size {
			return fmt.Errorf("memctrl: mismatched DIMM sizes")
		}
	}
	c.seed = seed
	for ch := range c.scramblers {
		if c.cfg.ScramblerEnabled {
			c.scramblers[ch] = c.cfg.NewScrambler(seed + uint64(ch))
		} else {
			c.scramblers[ch] = scramble.None{}
		}
	}
	c.booted = true
	return nil
}

// Seed returns the boot seed currently programmed into the scramblers.
func (c *Controller) Seed() uint64 { return c.seed }

// Scrambler returns channel ch's active scrambler (nil before boot).
func (c *Controller) Scrambler(ch int) scramble.Scrambler {
	if ch < 0 || ch >= len(c.scramblers) {
		return nil
	}
	return c.scramblers[ch]
}

// MemSize returns the size of the physical address space in bytes.
func (c *Controller) MemSize() int {
	total := 0
	for _, m := range c.dimms {
		if m == nil {
			return 0
		}
		total += m.Size()
	}
	return total
}

const blockBytes = scramble.BlockBytes

// Read copies len(dst) bytes of physical memory starting at phys into dst,
// descrambling each 64-byte block with its channel's keystream.
func (c *Controller) Read(phys uint64, dst []byte) error {
	return c.access(phys, dst, nil)
}

// Write stores src at physical address phys, scrambling on the way out.
// Partial-block writes are handled read-modify-write, as a real controller
// handles sub-burst stores via its caches.
func (c *Controller) Write(phys uint64, src []byte) error {
	return c.access(phys, nil, src)
}

// access implements Read (dst != nil) and Write (src != nil) over arbitrary
// byte ranges by walking the covered 64-byte blocks.
func (c *Controller) access(phys uint64, dst, src []byte) error {
	if !c.booted {
		return fmt.Errorf("memctrl: access before boot")
	}
	n := len(dst) + len(src) // exactly one is non-nil
	if uint64(n) == 0 {
		return nil
	}
	if phys+uint64(n) > uint64(c.MemSize()) {
		return fmt.Errorf("memctrl: access [%#x,%#x) beyond memory size %#x", phys, phys+uint64(n), c.MemSize())
	}
	var block [blockBytes]byte
	pos := 0
	for pos < n {
		addr := phys + uint64(pos)
		blockStart := addr &^ (blockBytes - 1)
		inOff := int(addr - blockStart)
		chunk := blockBytes - inOff
		if chunk > n-pos {
			chunk = n - pos
		}
		loc := c.mapping.Translate(blockStart)
		mod := c.dimms[loc.Channel]
		scr := c.scramblers[loc.Channel]
		mod.Read(int(loc.DeviceOff), block[:])
		scr.Descramble(block[:], block[:], loc.DeviceOff)
		if dst != nil {
			copy(dst[pos:pos+chunk], block[inOff:inOff+chunk])
		} else {
			copy(block[inOff:inOff+chunk], src[pos:pos+chunk])
			scr.Scramble(block[:], block[:], loc.DeviceOff)
			mod.Write(int(loc.DeviceOff), block[:])
		}
		pos += chunk
	}
	return nil
}

// Dump reads the entire physical address space through the descrambler —
// the simulated equivalent of the paper's bare-metal GRUB dump module,
// which runs with no OS underneath and sees all of DRAM.
func (c *Controller) Dump() ([]byte, error) {
	out := make([]byte, c.MemSize())
	if err := c.Read(0, out); err != nil {
		return nil, err
	}
	return out, nil
}
