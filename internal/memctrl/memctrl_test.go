package memctrl

import (
	"bytes"
	"math/rand"
	"testing"

	"coldboot/internal/addrmap"
	"coldboot/internal/dram"
	"coldboot/internal/scramble"
)

func newBooted(t *testing.T, arch addrmap.Microarch, channels int, scrambled bool, seed uint64) *Controller {
	t.Helper()
	c, err := New(Config{Arch: arch, Channels: channels, ScramblerEnabled: scrambled})
	if err != nil {
		t.Fatal(err)
	}
	for ch := 0; ch < channels; ch++ {
		m, err := dram.NewModule(dram.DefaultDDR4Spec(1<<20), int64(ch+1))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AttachDIMM(ch, m); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Boot(seed); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestReadWriteRoundTrip(t *testing.T) {
	for _, channels := range []int{1, 2} {
		c := newBooted(t, addrmap.Skylake, channels, true, 42)
		rng := rand.New(rand.NewSource(1))
		for trial := 0; trial < 50; trial++ {
			n := 1 + rng.Intn(500)
			phys := uint64(rng.Intn(c.MemSize() - n))
			data := make([]byte, n)
			rng.Read(data)
			if err := c.Write(phys, data); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, n)
			if err := c.Read(phys, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%dch round trip failed at %#x len %d", channels, phys, n)
			}
		}
	}
}

func TestDeviceStoresScrambledBits(t *testing.T) {
	c := newBooted(t, addrmap.Skylake, 1, true, 7)
	data := bytes.Repeat([]byte{0xAB}, 64)
	if err := c.Write(0, data); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 64)
	c.DIMM(0).Read(0, raw)
	if bytes.Equal(raw, data) {
		t.Error("device holds plaintext despite scrambler on")
	}
	// And the stored bits are data XOR key.
	key := c.Scrambler(0).KeyAt(0)
	for i := range raw {
		if raw[i] != data[i]^key[i] {
			t.Fatalf("stored byte %d is not data^key", i)
		}
	}
}

func TestScramblerDisabledStoresPlaintext(t *testing.T) {
	c := newBooted(t, addrmap.Skylake, 1, false, 7)
	data := bytes.Repeat([]byte{0xCD}, 128)
	if err := c.Write(64, data); err != nil {
		t.Fatal(err)
	}
	loc := c.Mapping().Translate(64)
	raw := make([]byte, 128)
	c.DIMM(loc.Channel).Read(int(loc.DeviceOff), raw[:64])
	if !bytes.Equal(raw[:64], data[:64]) {
		t.Error("scrambler-off device bits differ from plaintext")
	}
}

func TestRebootNewSeedGarblesReadback(t *testing.T) {
	// Reading old data through a reseeded scrambler yields
	// data ^ K_old ^ K_new — garbage, but structured garbage.
	c := newBooted(t, addrmap.Skylake, 1, true, 100)
	data := make([]byte, 4096)
	rand.New(rand.NewSource(2)).Read(data)
	if err := c.Write(0, data); err != nil {
		t.Fatal(err)
	}
	if err := c.Boot(200); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := c.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, data) {
		t.Error("reseeded read-back returned original data")
	}
}

func TestRebootSameSeedPreservesData(t *testing.T) {
	// The vendor-BIOS seed-reuse case from §III-B: same seed, same keys,
	// warm-rebooted DRAM reads back intact.
	c := newBooted(t, addrmap.Skylake, 1, true, 100)
	data := make([]byte, 4096)
	rand.New(rand.NewSource(3)).Read(data)
	if err := c.Write(0, data); err != nil {
		t.Fatal(err)
	}
	if err := c.Boot(100); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := c.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("same-seed reboot lost data")
	}
}

func TestDumpCoversWholeMemory(t *testing.T) {
	c := newBooted(t, addrmap.Skylake, 2, true, 5)
	dump, err := c.Dump()
	if err != nil {
		t.Fatal(err)
	}
	if len(dump) != c.MemSize() {
		t.Errorf("dump size %d != memory size %d", len(dump), c.MemSize())
	}
	if c.MemSize() != 2<<20 {
		t.Errorf("2x1MB system reports %d bytes", c.MemSize())
	}
}

func TestDumpSeesDescrambledData(t *testing.T) {
	c := newBooted(t, addrmap.Skylake, 1, true, 5)
	marker := []byte("SECRET-MARKER-IN-MEMORY-0123456789abcdef")
	if err := c.Write(12345, marker); err != nil {
		t.Fatal(err)
	}
	dump, err := c.Dump()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(dump, marker) {
		t.Error("dump does not contain the plaintext marker")
	}
}

func TestStockScramblerByGeneration(t *testing.T) {
	if s := StockScrambler(addrmap.SandyBridge)(1); s.NumKeys() != scramble.DDR3KeyCount {
		t.Errorf("SandyBridge stock scrambler has %d keys", s.NumKeys())
	}
	if s := StockScrambler(addrmap.Skylake)(1); s.NumKeys() != scramble.SkylakeKeyCount {
		t.Errorf("Skylake stock scrambler has %d keys", s.NumKeys())
	}
}

func TestPerChannelScramblersDiffer(t *testing.T) {
	c := newBooted(t, addrmap.Skylake, 2, true, 9)
	k0 := c.Scrambler(0).KeyAt(0)
	k1 := c.Scrambler(1).KeyAt(0)
	if bytes.Equal(k0, k1) {
		t.Error("both channels use identical keystreams")
	}
}

func TestAccessBeforeBootFails(t *testing.T) {
	c, _ := New(Config{Arch: addrmap.Skylake, Channels: 1, ScramblerEnabled: true})
	if err := c.Read(0, make([]byte, 4)); err == nil {
		t.Error("expected error before boot")
	}
}

func TestBootRequiresAllChannelsPopulated(t *testing.T) {
	c, _ := New(Config{Arch: addrmap.Skylake, Channels: 2, ScramblerEnabled: true})
	m, _ := dram.NewModule(dram.DefaultDDR4Spec(1<<20), 1)
	c.AttachDIMM(0, m)
	if err := c.Boot(1); err == nil {
		t.Error("expected error with empty channel 1")
	}
}

func TestBootRejectsMismatchedDIMMs(t *testing.T) {
	c, _ := New(Config{Arch: addrmap.Skylake, Channels: 2, ScramblerEnabled: true})
	a, _ := dram.NewModule(dram.DefaultDDR4Spec(1<<20), 1)
	b, _ := dram.NewModule(dram.DefaultDDR4Spec(2<<20), 2)
	c.AttachDIMM(0, a)
	c.AttachDIMM(1, b)
	if err := c.Boot(1); err == nil {
		t.Error("expected error for mismatched DIMM sizes")
	}
}

func TestOutOfRangeAccessFails(t *testing.T) {
	c := newBooted(t, addrmap.Skylake, 1, true, 1)
	if err := c.Read(uint64(c.MemSize())-2, make([]byte, 4)); err == nil {
		t.Error("expected error for out-of-range read")
	}
	if err := c.Write(uint64(c.MemSize()), []byte{1}); err == nil {
		t.Error("expected error for out-of-range write")
	}
}

func TestAttachDetachDIMM(t *testing.T) {
	c, _ := New(Config{Arch: addrmap.Skylake, Channels: 1, ScramblerEnabled: true})
	m, _ := dram.NewModule(dram.DefaultDDR4Spec(1<<20), 1)
	if err := c.AttachDIMM(0, m); err != nil {
		t.Fatal(err)
	}
	if err := c.AttachDIMM(0, m); err == nil {
		t.Error("double attach allowed")
	}
	got, err := c.DetachDIMM(0)
	if err != nil || got != m {
		t.Error("detach did not return the module")
	}
	if _, err := c.DetachDIMM(0); err == nil {
		t.Error("detach from empty channel allowed")
	}
	if err := c.AttachDIMM(5, m); err == nil {
		t.Error("attach to invalid channel allowed")
	}
}

func TestCustomScramblerFactory(t *testing.T) {
	// The socket internal/engine uses: inject any Scrambler implementation.
	called := 0
	cfg := Config{
		Arch: addrmap.Skylake, Channels: 1, ScramblerEnabled: true,
		NewScrambler: func(seed uint64) scramble.Scrambler {
			called++
			return scramble.None{}
		},
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := dram.NewModule(dram.DefaultDDR4Spec(1<<20), 1)
	c.AttachDIMM(0, m)
	if err := c.Boot(1); err != nil {
		t.Fatal(err)
	}
	if called != 1 {
		t.Errorf("factory called %d times, want 1", called)
	}
}

func TestDualChannelSplitsAcrossDIMMs(t *testing.T) {
	c := newBooted(t, addrmap.Skylake, 2, false, 1)
	// Write a pattern spanning many blocks; both DIMMs must receive data.
	data := bytes.Repeat([]byte{0x77}, 8192)
	if err := c.Write(0, data); err != nil {
		t.Fatal(err)
	}
	touched := func(ch int) bool {
		buf := make([]byte, 1<<16)
		c.DIMM(ch).Read(0, buf)
		return bytes.Contains(buf, []byte{0x77, 0x77, 0x77, 0x77})
	}
	if !touched(0) || !touched(1) {
		t.Error("interleaved write did not reach both channels")
	}
}

func BenchmarkControllerRead64B(b *testing.B) {
	c, _ := New(Config{Arch: addrmap.Skylake, Channels: 1, ScramblerEnabled: true})
	m, _ := dram.NewModule(dram.DefaultDDR4Spec(1<<20), 1)
	c.AttachDIMM(0, m)
	c.Boot(1)
	buf := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		c.Read(uint64(i%1024)*64, buf)
	}
}
