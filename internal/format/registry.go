package format

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The registry maps format names to their Scanner implementations. Leaf
// packages (format/aesxts, format/chacha20, format/luks2) self-register in
// their init functions; importing coldboot/internal/format/all pulls in
// every built-in. The pipeline layers (core, service, cmds) resolve names
// against this registry only — they never import a leaf directly, so a
// binary's format set is exactly its import set.

var (
	regMu  sync.RWMutex
	reg    = make(map[string]Scanner)
	regSeq []string // registration order, for deterministic default sets
)

// Register adds a scanner under its Name. Registering a duplicate name
// panics: format names are global API surface (CLI flags, query
// parameters, metric names) and must be unambiguous.
func Register(s Scanner) {
	regMu.Lock()
	defer regMu.Unlock()
	name := s.Name()
	if name == "" {
		panic("format: scanner with empty name")
	}
	if _, dup := reg[name]; dup {
		panic(fmt.Sprintf("format: duplicate scanner %q", name))
	}
	reg[name] = s
	regSeq = append(regSeq, name)
}

// Get returns the registered scanner with the given name.
func Get(name string) (Scanner, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := reg[name]
	return s, ok
}

// Names returns every registered format name, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(regSeq))
	copy(out, regSeq)
	sort.Strings(out)
	return out
}

// ParseSpec splits a comma-separated format spec ("aesxts,chacha20") into
// a deduplicated name list, preserving order. Empty elements are skipped;
// an empty spec yields nil (meaning: the caller's default set).
func ParseSpec(spec string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		name := strings.TrimSpace(part)
		if name == "" || seen[name] {
			continue
		}
		seen[name] = true
		out = append(out, name)
	}
	return out
}
