// Package chacha20 detects raw ChaCha20 cipher states in memory. A live
// ChaCha state is sixteen little-endian 32-bit words: the four "expand
// 32-byte k" sigma constants, eight key words, a block counter, and three
// nonce words (RFC 8439 layout; the counter/nonce split varies by
// implementation but the first four words never do). The sigma prefix is
// 128 bits of known plaintext — a far stronger anchor than the AES
// key-schedule litmus — so detection is a straight Hamming comparison
// with a decay tolerance.
//
// States are assumed word-aligned (they are uint32 arrays in every real
// implementation), so each 64-byte block contributes sixteen candidate
// start offsets. A state that starts mid-block continues into the next
// block; those tails are fetched through the attack's View so the probe
// still works block-at-a-time over scrambled dumps.
package chacha20

import (
	"context"
	"encoding/binary"
	"math/bits"

	"coldboot/internal/chacha"
	"coldboot/internal/format"
)

// Name is the registered format name.
const Name = "chacha20"

// StateBytes is the in-memory footprint of one ChaCha state.
const StateBytes = 64

// DefaultTolerance is the bit-flip budget across the four sigma words
// when the caller passes no tolerance. Random data matches 128 known
// bits within 8 flips with probability ~2^-94, so false positives are
// not a concern even on multi-GiB dumps.
const DefaultTolerance = 8

var sigma = chacha.Sigma()

// Scanner locates ChaCha20 states by their sigma constants.
type Scanner struct{}

func init() { format.Register(Scanner{}) }

// Name returns "chacha20".
func (Scanner) Name() string { return Name }

// Width returns the candidate width in bytes (the 64-byte state).
func (Scanner) Width() int { return StateBytes }

// ScanContext scans an unscrambled image for ChaCha states using the
// shared chunked block driver.
func (s Scanner) ScanContext(ctx context.Context, image []byte, cfg format.Config) ([]format.Finding, error) {
	return format.ScanBlocks(ctx, s, image, cfg)
}

// ProbeBlock probes one descrambled 64-byte block for state starts at
// every word alignment. tolerance <= 0 selects DefaultTolerance. The
// no-hit path performs no allocations: the word-0 quick filter rejects
// random words with probability ~1-2^-18 before any buffering happens.
func (s Scanner) ProbeBlock(block []byte, absOff int, view format.View, tolerance int, emit func(format.Finding)) {
	if tolerance <= 0 {
		tolerance = DefaultTolerance
	}
	for o := 0; o+4 <= len(block); o += 4 {
		w0 := binary.LittleEndian.Uint32(block[o:])
		if bits.OnesCount32(w0^sigma[0]) > tolerance {
			continue
		}
		tryState(block, o, absOff, view, tolerance, emit)
	}
}

// tryState checks the full sigma prefix for a candidate state starting at
// in-block offset o, pulling the cross-block tail through view when the
// state straddles the boundary, and emits a Finding carrying the 32-byte
// key (state words 4–11).
func tryState(block []byte, o, absOff int, view format.View, tol int, emit func(format.Finding)) {
	var tail [StateBytes]byte
	st := block[o:]
	if len(st) < StateBytes {
		n := copy(tail[:], st)
		if view == nil || !view.ReadDescrambled(absOff+len(block), tail[n:]) {
			return
		}
		st = tail[:]
	}
	d := 0
	for i := 0; i < 4; i++ {
		d += bits.OnesCount32(binary.LittleEndian.Uint32(st[4*i:]) ^ sigma[i])
		if d > tol {
			return
		}
	}
	key := make([]byte, 32)
	copy(key, st[16:48])
	emit(format.Finding{
		Format:   Name,
		Offset:   absOff + o,
		Key:      key,
		Score:    1 - float64(d)/128,
		Distance: d,
	})
}

// Verify re-scores a finding by re-measuring the sigma-word distance at
// f.Offset in the (unscrambled) image.
func (Scanner) Verify(image []byte, f format.Finding) float64 {
	if f.Offset < 0 || f.Offset+StateBytes > len(image) {
		return 0
	}
	st := image[f.Offset:]
	d := 0
	for i := 0; i < 4; i++ {
		d += bits.OnesCount32(binary.LittleEndian.Uint32(st[4*i:]) ^ sigma[i])
	}
	return 1 - float64(d)/128
}
