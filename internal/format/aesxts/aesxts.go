// Package aesxts is the AES expanded-key-schedule format — the
// VeraCrypt/TrueCrypt XTS master-key posture the pipeline originally
// hardwired, extracted behind the format.Scanner interface. The
// whole-image scan delegates to internal/keyfind (the classic Halderman
// sliding-window scan) and is byte-identical to keyfind.Scan; the
// scrambled-dump hunt for this format stays native in internal/core (the
// anchored per-block litmus with verify/repair/refine needs the attack's
// key directory and pooled scratch), keyed by the same "aesxts" name.
package aesxts

import (
	"context"
	"math/bits"

	"coldboot/internal/aes"
	"coldboot/internal/format"
	"coldboot/internal/keyfind"
)

// Name is the registered format name.
const Name = "aesxts"

// Scanner locates in-memory AES key schedules of one variant.
type Scanner struct {
	// Variant is the hunted key size (zero value means AES-256, the
	// VeraCrypt case).
	Variant aes.Variant
}

func init() { format.Register(Scanner{}) }

func (s Scanner) variant() aes.Variant {
	if s.Variant == 0 {
		return aes.AES256
	}
	return s.Variant
}

// Name returns "aesxts".
func (Scanner) Name() string { return Name }

// Width returns the schedule footprint in image bytes (240 for AES-256).
func (s Scanner) Width() int { return s.variant().ScheduleBytes() }

// ScanContext runs the chunked Halderman scan over an unscrambled image.
// The findings are exactly keyfind.Scan's, converted to format.Finding:
// same offsets, same masters, same distances, same order.
func (s Scanner) ScanContext(ctx context.Context, image []byte, cfg format.Config) ([]format.Finding, error) {
	v := s.variant()
	fs, err := keyfind.ScanTraced(ctx, image, v, cfg.Tolerance, cfg.Workers, cfg.Tracer)
	if err != nil {
		return nil, err
	}
	tailBits := 8 * (v.ScheduleBytes() - v.KeyBytes())
	out := make([]format.Finding, len(fs))
	for i, f := range fs {
		out[i] = format.Finding{
			Format:   Name,
			Offset:   f.Offset,
			Key:      f.Master,
			Distance: f.Distance,
			Score:    1 - float64(f.Distance)/float64(tailBits),
		}
	}
	return out, nil
}

// Verify re-expands the finding's master and returns the fraction of
// schedule bits at f.Offset matching the expansion (the full-schedule
// litmus; correct keys score ~1.0, wrong ones ~0.5).
func (s Scanner) Verify(image []byte, f format.Finding) float64 {
	v := s.variant()
	if len(f.Key) != v.KeyBytes() {
		return 0
	}
	schedBytes := v.ScheduleBytes()
	if f.Offset < 0 || f.Offset+schedBytes > len(image) {
		return 0
	}
	sched := aes.ExpandKeyBytes(f.Key)
	d := 0
	for i := 0; i < schedBytes; i++ {
		d += bits.OnesCount8(sched[i] ^ image[f.Offset+i])
	}
	return 1 - float64(d)/float64(8*schedBytes)
}
