package luks2

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
)

// LUKS2 on-disk binary header (cryptsetup LUKS2 format, all integers
// big-endian). Two copies exist on a real device — primary at offset 0
// with magic "LUKS\xba\xbe" and secondary with the bytes reversed to
// "SKUL\xba\xbe" — and either can be paged into RAM.
//
//	offset  size  field
//	     0     6  magic
//	     6     2  version (== 2)
//	     8     8  hdr_size (binary header + JSON area, power of two)
//	    16     8  seqid
//	    24    48  label (NUL-terminated)
//	    72    32  csum_alg (NUL-terminated)
//	   104    64  salt
//	   168    40  uuid (NUL-terminated)
//	   208    48  subsystem (NUL-terminated)
//	   256     8  hdr_offset (byte offset of this copy on the device)
//	   264   184  padding
//	   448    64  csum
//	   512     —  JSON metadata area, up to hdr_size
const (
	// BinHeaderBytes is the fixed binary-header size before the JSON area.
	BinHeaderBytes = 512
	// MinHeaderSize and MaxHeaderSize bound the hdr_size field; cryptsetup
	// only writes power-of-two sizes in [16 KiB, 4 MiB].
	MinHeaderSize = 16 << 10
	MaxHeaderSize = 4 << 20
	// maxJSONBytes caps how much JSON metadata ParseHeader will look at,
	// independent of what hdr_size claims.
	maxJSONBytes = 256 << 10
)

// Magic prefixes of the two header copies.
var (
	MagicPrimary   = []byte("LUKS\xba\xbe")
	MagicSecondary = []byte("SKUL\xba\xbe")
)

// Header is a parsed LUKS2 binary header plus what could be recovered
// from its JSON metadata area.
type Header struct {
	// Primary is true for the "LUKS\xba\xbe" copy, false for "SKUL\xba\xbe".
	Primary bool
	Version uint16
	// HeaderSize is the claimed binary+JSON footprint in bytes.
	HeaderSize uint64
	SeqID      uint64
	Label      string
	// ChecksumAlg names the csum algorithm ("sha256").
	ChecksumAlg string
	UUID        string
	Subsystem   string
	// HeaderOffset is where this copy claims to live on its device.
	HeaderOffset uint64
	// Cipher and KeyBytes come from the JSON segment/keyslot metadata when
	// it was present and parsable ("aes-xts-plain64", 64); zero otherwise.
	// JSON damage is not an error — in a decayed dump the binary header
	// routinely survives while the JSON area does not.
	Cipher   string
	KeyBytes int
}

var (
	ErrTruncated  = errors.New("luks2: header truncated")
	ErrBadMagic   = errors.New("luks2: bad magic")
	ErrBadVersion = errors.New("luks2: unsupported version")
	ErrBadSize    = errors.New("luks2: implausible hdr_size")
	ErrBadField   = errors.New("luks2: malformed header field")
)

// ParseHeader parses a LUKS2 header starting at data[0]. data needs at
// least the 512-byte binary header; any JSON metadata present beyond it
// (up to hdr_size) is parsed tolerantly for cipher/key-size hints.
func ParseHeader(data []byte) (*Header, error) {
	if len(data) < BinHeaderBytes {
		return nil, ErrTruncated
	}
	h := &Header{}
	switch {
	case string(data[:6]) == string(MagicPrimary):
		h.Primary = true
	case string(data[:6]) == string(MagicSecondary):
	default:
		return nil, ErrBadMagic
	}
	h.Version = binary.BigEndian.Uint16(data[6:8])
	if h.Version != 2 {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, h.Version)
	}
	h.HeaderSize = binary.BigEndian.Uint64(data[8:16])
	if h.HeaderSize < MinHeaderSize || h.HeaderSize > MaxHeaderSize ||
		h.HeaderSize&(h.HeaderSize-1) != 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadSize, h.HeaderSize)
	}
	h.SeqID = binary.BigEndian.Uint64(data[16:24])
	var err error
	if h.Label, err = fixedString(data[24:72], false); err != nil {
		return nil, fmt.Errorf("%w: label", ErrBadField)
	}
	if h.ChecksumAlg, err = fixedString(data[72:104], false); err != nil {
		return nil, fmt.Errorf("%w: csum_alg", ErrBadField)
	}
	if h.UUID, err = fixedString(data[168:208], true); err != nil {
		return nil, fmt.Errorf("%w: uuid", ErrBadField)
	}
	if h.Subsystem, err = fixedString(data[208:256], false); err != nil {
		return nil, fmt.Errorf("%w: subsystem", ErrBadField)
	}
	h.HeaderOffset = binary.BigEndian.Uint64(data[256:264])

	jsonEnd := int(h.HeaderSize)
	if jsonEnd > len(data) {
		jsonEnd = len(data)
	}
	if jsonEnd > BinHeaderBytes+maxJSONBytes {
		jsonEnd = BinHeaderBytes + maxJSONBytes
	}
	if jsonEnd > BinHeaderBytes {
		h.parseJSONArea(data[BinHeaderBytes:jsonEnd])
	}
	return h, nil
}

// fixedString decodes a NUL-padded fixed-width string field. Every byte
// before the terminator must be printable ASCII — in a memory dump these
// fields double as a plausibility filter against random magic collisions.
// uuidish additionally restricts to hex digits and dashes.
func fixedString(field []byte, uuidish bool) (string, error) {
	n := 0
	for n < len(field) && field[n] != 0 {
		n++
	}
	for _, c := range field[:n] {
		if c < 0x20 || c > 0x7e {
			return "", ErrBadField
		}
		if uuidish && !(c == '-' || c >= '0' && c <= '9' ||
			c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
			return "", ErrBadField
		}
	}
	return string(field[:n]), nil
}

// jsonMeta mirrors the slivers of the LUKS2 JSON metadata we care about.
type jsonMeta struct {
	Keyslots map[string]struct {
		KeySize int `json:"key_size"`
	} `json:"keyslots"`
	Segments map[string]struct {
		Encryption string `json:"encryption"`
	} `json:"segments"`
}

// parseJSONArea best-effort extracts cipher and key size from the JSON
// metadata area. The area is NUL-padded to hdr_size; damage or garbage
// leaves the hint fields zero rather than failing the whole header.
func (h *Header) parseJSONArea(area []byte) {
	if i := indexByte(area, 0); i >= 0 {
		area = area[:i]
	}
	area = []byte(strings.TrimSpace(string(area)))
	if len(area) == 0 || area[0] != '{' {
		return
	}
	var m jsonMeta
	if json.Unmarshal(area, &m) != nil {
		return
	}
	for _, seg := range m.Segments {
		if seg.Encryption != "" {
			h.Cipher = seg.Encryption
			break
		}
	}
	for _, ks := range m.Keyslots {
		if ks.KeySize > 0 && ks.KeySize <= 1024 {
			h.KeyBytes = ks.KeySize
			break
		}
	}
}

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

// EncodeHeader renders h back into a binary header followed by a minimal
// JSON area (when Cipher or KeyBytes are set). Used by tests and the fuzz
// seed corpus; the output round-trips through ParseHeader.
func EncodeHeader(h *Header) []byte {
	out := make([]byte, BinHeaderBytes)
	if h.Primary {
		copy(out, MagicPrimary)
	} else {
		copy(out, MagicSecondary)
	}
	binary.BigEndian.PutUint16(out[6:8], h.Version)
	binary.BigEndian.PutUint64(out[8:16], h.HeaderSize)
	binary.BigEndian.PutUint64(out[16:24], h.SeqID)
	copy(out[24:72], h.Label)
	copy(out[72:104], h.ChecksumAlg)
	copy(out[168:208], h.UUID)
	copy(out[208:256], h.Subsystem)
	binary.BigEndian.PutUint64(out[256:264], h.HeaderOffset)
	if h.Cipher != "" || h.KeyBytes != 0 {
		meta := fmt.Sprintf(
			`{"keyslots":{"0":{"type":"luks2","key_size":%d}},`+
				`"segments":{"0":{"type":"crypt","encryption":%q}}}`,
			h.KeyBytes, h.Cipher)
		out = append(out, meta...)
	}
	return out
}
