package luks2

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"coldboot/internal/format"
)

// sampleHeader is a fully populated, valid primary header.
func sampleHeader() *Header {
	return &Header{
		Primary:      true,
		Version:      2,
		HeaderSize:   16384,
		SeqID:        9,
		Label:        "backups",
		ChecksumAlg:  "sha256",
		UUID:         "0f5eed00-1111-2222-3333-444455556666",
		Subsystem:    "",
		HeaderOffset: 0,
		Cipher:       "aes-xts-plain64",
		KeyBytes:     64,
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	want := sampleHeader()
	got, err := ParseHeader(EncodeHeader(want))
	if err != nil {
		t.Fatalf("ParseHeader(EncodeHeader): %v", err)
	}
	if *got != *want {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestHeaderRoundTripSecondary(t *testing.T) {
	want := sampleHeader()
	want.Primary = false
	want.Cipher, want.KeyBytes = "", 0 // bare binary header, no JSON area
	got, err := ParseHeader(EncodeHeader(want))
	if err != nil {
		t.Fatalf("ParseHeader: %v", err)
	}
	if *got != *want {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestParseHeaderErrors(t *testing.T) {
	valid := EncodeHeader(sampleHeader())
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"truncated", func(d []byte) []byte { return d[:BinHeaderBytes-1] }, ErrTruncated},
		{"empty", func(d []byte) []byte { return nil }, ErrTruncated},
		{"bad magic", func(d []byte) []byte { d[0] = 'X'; return d }, ErrBadMagic},
		{"luks1 version", func(d []byte) []byte { binary.BigEndian.PutUint16(d[6:8], 1); return d }, ErrBadVersion},
		{"hdr_size zero", func(d []byte) []byte { binary.BigEndian.PutUint64(d[8:16], 0); return d }, ErrBadSize},
		{"hdr_size not power of two", func(d []byte) []byte { binary.BigEndian.PutUint64(d[8:16], 16384+1); return d }, ErrBadSize},
		{"hdr_size too small", func(d []byte) []byte { binary.BigEndian.PutUint64(d[8:16], MinHeaderSize/2); return d }, ErrBadSize},
		{"hdr_size too large", func(d []byte) []byte { binary.BigEndian.PutUint64(d[8:16], MaxHeaderSize*2); return d }, ErrBadSize},
		{"unprintable label", func(d []byte) []byte { d[24] = 0x07; return d }, ErrBadField},
		{"non-hex uuid", func(d []byte) []byte { d[168] = 'z'; return d }, ErrBadField},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), valid...))
			if _, err := ParseHeader(data); !errors.Is(err, tc.want) {
				t.Errorf("ParseHeader = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestParseHeaderDamagedJSON: garbage in the JSON area must not fail the
// header — decayed dumps routinely lose the metadata while the binary
// header survives.
func TestParseHeaderDamagedJSON(t *testing.T) {
	h := sampleHeader()
	data := EncodeHeader(h)
	for i := BinHeaderBytes; i < len(data); i += 3 {
		data[i] ^= 0xa5
	}
	got, err := ParseHeader(data)
	if err != nil {
		t.Fatalf("ParseHeader with damaged JSON: %v", err)
	}
	if got.UUID != h.UUID {
		t.Errorf("UUID = %q, want %q", got.UUID, h.UUID)
	}
	// Hints may be zero, but must never invent values not in the data.
	if got.Cipher != "" && got.Cipher != h.Cipher {
		t.Errorf("Cipher = %q from damaged JSON", got.Cipher)
	}
}

// FuzzParseHeader hammers the strict binary parser with mutated headers:
// it must never panic, must only accept inputs that satisfy the documented
// invariants, and every accepted header must re-encode to bytes ParseHeader
// accepts again with identical fields (the parse/encode fixpoint).
func FuzzParseHeader(f *testing.F) {
	f.Add(EncodeHeader(sampleHeader()))
	secondary := sampleHeader()
	secondary.Primary = false
	f.Add(EncodeHeader(secondary))
	bare := sampleHeader()
	bare.Cipher, bare.KeyBytes = "", 0
	f.Add(EncodeHeader(bare))

	// Truncated header.
	f.Add(EncodeHeader(sampleHeader())[:100])
	// Bad magic.
	f.Add(append([]byte("LUKS\x00\x00"), make([]byte, BinHeaderBytes)...))
	// Oversized hdr_size claim with a huge keyslot key_size in the JSON.
	big := sampleHeader()
	big.HeaderSize = MaxHeaderSize
	big.KeyBytes = 1 << 20
	f.Add(EncodeHeader(big))
	// Malformed JSON area: opens like an object, never closes.
	f.Add(append(EncodeHeader(bare), []byte(`{"keyslots":{"0":`)...))
	// JSON area that is valid JSON but the wrong shape.
	f.Add(append(EncodeHeader(bare), []byte(`[1,2,3]`)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ParseHeader(data)
		if err != nil {
			if h != nil {
				t.Fatal("non-nil header alongside an error")
			}
			return
		}
		if h.Version != 2 {
			t.Fatalf("accepted version %d", h.Version)
		}
		if h.HeaderSize < MinHeaderSize || h.HeaderSize > MaxHeaderSize || h.HeaderSize&(h.HeaderSize-1) != 0 {
			t.Fatalf("accepted hdr_size %d", h.HeaderSize)
		}
		for _, s := range []string{h.Label, h.ChecksumAlg, h.UUID, h.Subsystem} {
			if strings.ContainsFunc(s, func(r rune) bool { return r < 0x20 || r > 0x7e }) {
				t.Fatalf("accepted unprintable field %q", s)
			}
		}
		for _, c := range h.UUID {
			if !(c == '-' || c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
				t.Fatalf("accepted non-hex uuid %q", h.UUID)
			}
		}
		// Parse/encode fixpoint: re-encoding an accepted header must parse
		// back to the same fields. (JSON hints survive only when both are
		// set the way EncodeHeader writes them.)
		h2, err := ParseHeader(EncodeHeader(h))
		if err != nil {
			t.Fatalf("re-encoded header rejected: %v", err)
		}
		if h2.Primary != h.Primary || h2.SeqID != h.SeqID || h2.Label != h.Label ||
			h2.UUID != h.UUID || h2.ChecksumAlg != h.ChecksumAlg || h2.Subsystem != h.Subsystem ||
			h2.HeaderOffset != h.HeaderOffset || h2.HeaderSize != h.HeaderSize {
			t.Fatalf("fixpoint mismatch:\n got %+v\nwant %+v", h2, h)
		}
	})
}

// TestProbeBlockRejectsNearMisses pins the prober's cheap pre-filters: a
// block that shares the magic's first byte but not the full prefix must be
// rejected before any View traffic.
func TestProbeBlockRejectsNearMisses(t *testing.T) {
	var hits int
	emit := func(format.Finding) { hits++ }
	view := failView{}
	for _, prefix := range [][]byte{
		[]byte("LUKS\xba\xbd"), // last magic byte off
		[]byte("SKUL\x00\xbe"),
		[]byte("linux-vdso"),
	} {
		block := make([]byte, 64)
		copy(block, prefix)
		Scanner{}.ProbeBlock(block, 0, view, 0, emit)
	}
	if hits != 0 {
		t.Errorf("near-miss blocks emitted %d findings", hits)
	}
}

// failView fails the test if the prober reads through it.
type failView struct{}

func (failView) ReadDescrambled(int, []byte) bool { return false }

// TestProbeBlockFullHeader drives the prober against a real encoded header
// served through a View.
func TestProbeBlockFullHeader(t *testing.T) {
	h := sampleHeader()
	image := make([]byte, 8<<10)
	copy(image, EncodeHeader(h))
	var got []format.Finding
	Scanner{}.ProbeBlock(image[:64], 0, format.IdentityView(image), 0, func(f format.Finding) { got = append(got, f) })
	if len(got) != 1 {
		t.Fatalf("findings = %d, want 1", len(got))
	}
	if got[0].Volume != h.UUID || got[0].Key != nil || got[0].Offset != 0 {
		t.Errorf("finding = %+v", got[0])
	}
	if !bytes.Equal(EncodeHeader(h)[:6], MagicPrimary) {
		t.Error("sample header lost its magic")
	}
}
