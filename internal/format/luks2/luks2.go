// Package luks2 detects LUKS2 volume master keys in memory dumps. A
// mounted LUKS2 volume leaves two artifacts in RAM: the dm-crypt XTS key
// schedules (two ADJACENT expanded AES schedules — data key then tweak
// key, back to back in the crypto_xfm) and, via the page cache, the
// volume's on-disk LUKS2 header. The scanner hunts both and ties them
// together: schedule pairs become VMK findings tagged with the UUID of
// the recognized header, so a recovered key names the volume it unlocks
// ("Security Through Amnesia"'s canonical cold-boot prize).
package luks2

import (
	"context"
	"math/bits"
	"sort"

	"coldboot/internal/aes"
	"coldboot/internal/format"
	"coldboot/internal/keyfind"
)

// Name is the registered format name.
const Name = "luks2"

// probeJSONBytes is how much JSON metadata the block prober tries to pull
// through the View after a magic match, for cipher/key-size hints.
const probeJSONBytes = 4 << 10

// Scanner locates LUKS2 VMKs (adjacent AES-XTS schedule pairs) and LUKS2
// headers. It implements format.BlockProber for the header-recognition
// half; the schedule hunt over scrambled dumps rides the core attack's
// native AES hunt, which the core tags as "luks2" when it pairs up next
// to a sighted header.
type Scanner struct{}

func init() { format.Register(Scanner{}) }

// Name returns "luks2".
func (Scanner) Name() string { return Name }

// Width returns the candidate width of one schedule half (240 bytes).
func (Scanner) Width() int { return aes.AES256.ScheduleBytes() }

// ProbeBlock checks whether absOff starts a LUKS2 header. Headers are
// sector-aligned on disk and page-aligned in the page cache, so only
// block-start offsets are candidates — which also makes the no-hit path a
// single byte compare with zero allocations. On a magic match the full
// binary header (plus up to 4 KiB of JSON area) is pulled through view
// and strictly parsed; survivors are emitted as nil-Key volume sightings
// carrying the header UUID.
func (Scanner) ProbeBlock(block []byte, absOff int, view format.View, tolerance int, emit func(format.Finding)) {
	if len(block) < 6 || view == nil {
		return
	}
	if c := block[0]; c != 'L' && c != 'S' {
		return
	}
	if m := string(block[:6]); m != string(MagicPrimary) && m != string(MagicSecondary) {
		return
	}
	tryHeader(absOff, view, emit)
}

func tryHeader(absOff int, view format.View, emit func(format.Finding)) {
	var buf [BinHeaderBytes + probeJSONBytes]byte
	data := buf[:]
	if !view.ReadDescrambled(absOff, data) {
		// Near the image end (or over blocks with no usable scrambler key)
		// fall back to the bare binary header.
		data = buf[:BinHeaderBytes]
		if !view.ReadDescrambled(absOff, data) {
			return
		}
	}
	h, err := ParseHeader(data)
	if err != nil {
		return
	}
	emit(format.Finding{Format: Name, Offset: absOff, Score: 1, Volume: h.UUID})
}

// ScanContext scans an unscrambled image: header recognition through the
// shared block driver, plus an AES-256 schedule scan whose ADJACENT pairs
// (second schedule exactly ScheduleBytes after the first — the dm-crypt
// XTS layout) become VMK findings tagged with the sighted header's UUID.
// Lone schedules are not emitted; they are the aesxts scanner's business.
func (s Scanner) ScanContext(ctx context.Context, image []byte, cfg format.Config) ([]format.Finding, error) {
	out, err := format.ScanBlocks(ctx, s, image, cfg)
	if err != nil {
		return nil, err
	}
	uuid := ""
	if len(out) > 0 {
		uuid = out[0].Volume
	}
	v := aes.AES256
	fs, err := keyfind.ScanTraced(ctx, image, v, cfg.Tolerance, cfg.Workers, cfg.Tracer)
	if err != nil {
		return nil, err
	}
	schedBytes := v.ScheduleBytes()
	tailBits := 8 * (schedBytes - v.KeyBytes())
	at := make(map[int]int, len(fs))
	for i, f := range fs {
		at[f.Offset] = i
	}
	emitted := make(map[int]bool)
	for i, f := range fs {
		j, ok := at[f.Offset+schedBytes]
		if !ok {
			continue
		}
		for _, k := range []int{i, j} {
			if emitted[k] {
				continue
			}
			emitted[k] = true
			g := fs[k]
			out = append(out, format.Finding{
				Format:   Name,
				Offset:   g.Offset,
				Key:      g.Master,
				Distance: g.Distance,
				Score:    1 - float64(g.Distance)/float64(tailBits),
				Volume:   uuid,
			})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Offset < out[b].Offset })
	return out, nil
}

// Verify re-scores a finding: header sightings (nil Key) re-parse the
// header at the offset, key findings re-expand the master and measure the
// schedule match fraction.
func (Scanner) Verify(image []byte, f format.Finding) float64 {
	if f.Key == nil {
		if f.Offset < 0 || f.Offset+BinHeaderBytes > len(image) {
			return 0
		}
		if _, err := ParseHeader(image[f.Offset:]); err != nil {
			return 0
		}
		return 1
	}
	v := aes.AES256
	if len(f.Key) != v.KeyBytes() {
		return 0
	}
	schedBytes := v.ScheduleBytes()
	if f.Offset < 0 || f.Offset+schedBytes > len(image) {
		return 0
	}
	sched := aes.ExpandKeyBytes(f.Key)
	d := 0
	for i := 0; i < schedBytes; i++ {
		d += bits.OnesCount8(sched[i] ^ image[f.Offset+i])
	}
	return 1 - float64(d)/float64(8*schedBytes)
}
