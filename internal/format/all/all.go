// Package all registers every built-in format scanner. Binaries and
// tests that want the full set blank-import this package; anything that
// imports internal/format alone sees an empty registry (and the attack
// falls back to the pure AES hunt), which keeps narrow tools like
// encbench free of format baggage.
package all

import (
	_ "coldboot/internal/format/aesxts"
	_ "coldboot/internal/format/chacha20"
	_ "coldboot/internal/format/luks2"
)
