// Package format defines the pluggable target-format subsystem: the
// Scanner interface every key-material detector implements, the registry
// the pipeline resolves format names against, and the shared chunked
// block-scan driver.
//
// The paper's attack methodology (Section IV) is format-agnostic —
// descramble, then hunt for key material in the plaintext — so the hunt
// machinery in internal/core and the daemon in internal/service carry no
// knowledge of any particular target. Each format (the VeraCrypt/XTS AES
// schedule hunt, LUKS2 volume-key detection, raw ChaCha20 states, ...)
// lives in its own subpackage, registers itself by name, and is selected
// per attack through core.Config.Formats / coldbootd's ?formats=.
//
// Two capability levels exist:
//
//   - Scanner: a whole-image scan over UNSCRAMBLED memory (the prior-art
//     Halderman posture). ScanContext is chunked, cancellable and traced.
//
//   - BlockProber (optional, extends Scanner): a per-block hunt the core
//     attack drives over each freshly descrambled 64-byte block, sharing
//     the descramble work of the single pass across every enabled format.
//     Reads beyond the block go through the attack's View.
package format

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"coldboot/internal/obs"
)

// BlockBytes is the scrambler block size probers operate on — one 64-byte
// DRAM burst, the same granularity as core.BlockBytes.
const BlockBytes = 64

// Finding is one located key-material candidate (or, for volume-header
// formats, one recognized volume sighting with a nil Key).
type Finding struct {
	// Format is the registered name of the scanner that produced this.
	Format string
	// Offset is the byte offset of the candidate in the image.
	Offset int
	// Key is the recovered key material (nil for pure volume sightings).
	Key []byte
	// Score is the scanner's confidence in [0, 1].
	Score float64
	// Distance is the hamming distance between expected and observed
	// verification bits (scanner-specific).
	Distance int
	// Volume names the encrypted volume this key unlocks, when the scanner
	// could tie the two together (e.g. a LUKS2 header's UUID).
	Volume string
}

// Volume is one recognized encrypted-volume header found in the image.
type Volume struct {
	Format  string `json:"format"`
	Offset  int    `json:"offset"`
	UUID    string `json:"uuid,omitempty"`
	Label   string `json:"label,omitempty"`
	Cipher  string `json:"cipher,omitempty"`
	KeyBits int    `json:"key_bits,omitempty"`
}

// Config tunes a whole-image scan.
type Config struct {
	// Tolerance is the scanner's bit-flip budget (0 = the scanner's
	// default).
	Tolerance int
	// Workers is the scan parallelism (0 = one per CPU).
	Workers int
	// Tracer observes the scan: per-chunk latency under
	// "format.<name>.chunk_ns" and progress under "format.<name>". Nil
	// means no tracing.
	Tracer obs.Tracer
}

// Scanner is one target format's whole-image detector over unscrambled
// memory.
type Scanner interface {
	// Name is the registered format name ("aesxts", "luks2", "chacha20").
	Name() string
	// Width is the candidate width in bytes: how many image bytes one
	// finding spans (used for overlap/alias suppression).
	Width() int
	// ScanContext scans an unscrambled image, honouring ctx at chunk
	// granularity. Findings are returned in ascending offset order.
	ScanContext(ctx context.Context, image []byte, cfg Config) ([]Finding, error)
	// Verify re-scores a finding against the image (the litmus hook):
	// 1.0 is a perfect match, values near 0.5 mean chance.
	Verify(image []byte, f Finding) float64
}

// View is random access to descrambled image bytes beyond the block a
// prober was handed. ReadDescrambled fills buf with the descrambled bytes
// at off, returning false when the range is outside the image or no
// scrambler key is known for a touched block.
type View interface {
	ReadDescrambled(off int, buf []byte) bool
}

// BlockProber extends Scanner with a per-block hunt: the core attack calls
// ProbeBlock once per freshly descrambled 64-byte block so every enabled
// format shares a single descramble pass. block is the descrambled block
// (never retained), absOff its byte offset in the image, and view reaches
// neighbouring descrambled bytes for candidates whose tail crosses the
// block boundary. Hits are delivered through emit; implementations must
// not allocate on the no-hit path (the pooled-scratch contract).
type BlockProber interface {
	Scanner
	ProbeBlock(block []byte, absOff int, view View, tolerance int, emit func(Finding))
}

// IdentityView adapts an unscrambled image as a View (the descrambled
// bytes ARE the image bytes).
type IdentityView []byte

// ReadDescrambled copies image bytes at off into buf.
func (v IdentityView) ReadDescrambled(off int, buf []byte) bool {
	if off < 0 || off+len(buf) > len(v) {
		return false
	}
	copy(buf, v[off:])
	return true
}

// minChunkBlocks is the smallest per-worker chunk worth dispatching.
const minChunkBlocks = 1024

// ScanBlocks is the shared chunked scan driver behind the prober-backed
// scanners' ScanContext: it walks an unscrambled image one 64-byte block
// at a time, fanning contiguous chunks out over a worker pool, probing
// each block with p, and merging per-chunk findings back in offset order.
// Each worker polls ctx between chunks and records per-chunk latency into
// "format.<name>.chunk_ns" plus progress under "format.<name>".
func ScanBlocks(ctx context.Context, p BlockProber, image []byte, cfg Config) ([]Finding, error) {
	tr := obs.OrNop(cfg.Tracer)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	nBlocks := len(image) / BlockBytes
	if nBlocks == 0 {
		return nil, ctx.Err()
	}
	chunkLen := nBlocks / (workers * 4)
	if chunkLen < minChunkBlocks {
		chunkLen = minChunkBlocks
	}
	nChunks := (nBlocks + chunkLen - 1) / chunkLen
	if workers > nChunks {
		workers = nChunks
	}
	histName := "format." + p.Name() + ".chunk_ns"
	progName := "format." + p.Name()

	results := make([][]Finding, nChunks)
	jobs := make(chan int)
	var doneBlocks atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			view := IdentityView(image)
			var chunk []Finding
			emit := func(f Finding) { chunk = append(chunk, f) }
			for c := range jobs {
				if ctx.Err() != nil {
					continue // drain the queue without scanning
				}
				lo := c * chunkLen
				hi := lo + chunkLen
				if hi > nBlocks {
					hi = nBlocks
				}
				chunk = nil
				start := obs.Now()
				for b := lo; b < hi; b++ {
					p.ProbeBlock(image[b*BlockBytes:(b+1)*BlockBytes], b*BlockBytes, view, cfg.Tolerance, emit)
				}
				tr.Observe(histName, obs.Since(start))
				tr.Progress(progName, doneBlocks.Add(int64(hi-lo)), int64(nBlocks))
				results[c] = chunk
			}
		}()
	}
	for c := 0; c < nChunks; c++ {
		jobs <- c
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var out []Finding
	for _, r := range results {
		out = append(out, r...)
	}
	return out, nil
}
