// Package workload synthesizes realistic memory contents for the attack
// experiments. The key-mining step of the attack depends on zero-filled
// 64-byte blocks being common in real memory — the observation (cited by
// the paper from the memory-compression literature) that zeros occur more
// frequently than any other value. The generator reproduces the mix a
// loaded system exhibits: zero pages, machine code, text, pointer-rich heap
// structures, and high-entropy (compressed/encrypted/media) pages.
package workload

import (
	"fmt"
	//lint:ignore noweakrand seeded workload synthesis, not keystream material
	"math/rand"
)

// PageBytes is the generation granularity.
const PageBytes = 4096

// Profile sets the fraction of pages drawn from each content class.
// Fractions must sum to 1 (±1e-9).
type Profile struct {
	Name        string
	Zero        float64 // untouched / freed / zeroed pages
	Code        float64 // machine-code-like bytes
	Text        float64 // ASCII text
	Heap        float64 // pointer- and small-integer-rich structures
	HighEntropy float64 // compressed, encrypted, or media data
}

// Validate checks the fractions sum to one.
func (p Profile) Validate() error {
	sum := p.Zero + p.Code + p.Text + p.Heap + p.HighEntropy
	if sum < 1-1e-9 || sum > 1+1e-9 {
		return fmt.Errorf("workload: profile %q fractions sum to %f", p.Name, sum)
	}
	return nil
}

// Standard profiles.
var (
	// LoadedSystem models the "heavily loaded system" of §III-B: most
	// memory in active use, but zero blocks still plentiful.
	LoadedSystem = Profile{Name: "loaded", Zero: 0.15, Code: 0.20, Text: 0.20, Heap: 0.25, HighEntropy: 0.20}
	// LightSystem models a mostly idle machine: zeros dominate.
	LightSystem = Profile{Name: "light", Zero: 0.55, Code: 0.10, Text: 0.10, Heap: 0.15, HighEntropy: 0.10}
	// HostileSystem is a worst case for the attacker: almost no zero
	// pages. Used by the negative/robustness experiments.
	HostileSystem = Profile{Name: "hostile", Zero: 0.01, Code: 0.25, Text: 0.24, Heap: 0.25, HighEntropy: 0.25}
)

// Fill populates buf with synthetic memory contents. Generation is
// deterministic in seed. buf length must be a multiple of PageBytes.
func Fill(buf []byte, seed int64, p Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if len(buf)%PageBytes != 0 {
		return fmt.Errorf("workload: buffer length %d not page aligned", len(buf))
	}
	rng := rand.New(rand.NewSource(seed))
	for off := 0; off < len(buf); off += PageBytes {
		page := buf[off : off+PageBytes]
		r := rng.Float64()
		switch {
		case r < p.Zero:
			fillZero(page)
		case r < p.Zero+p.Code:
			fillCode(page, rng)
		case r < p.Zero+p.Code+p.Text:
			fillText(page, rng)
		case r < p.Zero+p.Code+p.Text+p.Heap:
			fillHeap(page, rng)
		default:
			fillHighEntropy(page, rng)
		}
	}
	return nil
}

func fillZero(page []byte) {
	for i := range page {
		page[i] = 0
	}
}

// fillCode emits x86-64-flavoured byte soup: common opcode prefixes,
// ModRM-ish bytes, and the occasional zero-heavy displacement.
func fillCode(page []byte, rng *rand.Rand) {
	opcodes := []byte{0x48, 0x89, 0x8B, 0xE8, 0xC3, 0x55, 0x5D, 0xFF, 0x0F, 0x85, 0x74, 0x75, 0x90, 0x31, 0x41, 0x4C}
	for i := 0; i < len(page); {
		page[i] = opcodes[rng.Intn(len(opcodes))]
		i++
		if rng.Float64() < 0.25 && i+4 <= len(page) {
			// 32-bit displacement, frequently small → zero-heavy.
			d := rng.Int31n(1 << 12)
			page[i] = byte(d)
			page[i+1] = byte(d >> 8)
			page[i+2] = 0
			page[i+3] = 0
			i += 4
		}
	}
}

const textCorpus = "the quick brown fox jumps over the lazy dog. " +
	"Lorem ipsum dolor sit amet, consectetur adipiscing elit, sed do " +
	"eiusmod tempor incididunt ut labore et dolore magna aliqua. "

func fillText(page []byte, rng *rand.Rand) {
	pos := rng.Intn(len(textCorpus))
	for i := range page {
		page[i] = textCorpus[(pos+i)%len(textCorpus)]
	}
}

// fillHeap emits 8-byte records resembling 64-bit pointers (into a plausible
// heap range) mixed with small integers and padding zeros — the classic
// struct/slice soup of a running process.
func fillHeap(page []byte, rng *rand.Rand) {
	for i := 0; i+8 <= len(page); i += 8 {
		switch rng.Intn(4) {
		case 0: // pointer: 0x00007fxx_xxxxxxxx
			v := 0x00007f0000000000 | rng.Int63n(1<<40)
			putLE64(page[i:], uint64(v))
		case 1: // small integer
			putLE64(page[i:], uint64(rng.Intn(4096)))
		case 2: // zero padding
			putLE64(page[i:], 0)
		case 3: // flags / lengths
			putLE64(page[i:], uint64(rng.Intn(256))<<32|uint64(rng.Intn(65536)))
		}
	}
}

func fillHighEntropy(page []byte, rng *rand.Rand) {
	rng.Read(page)
}

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * uint(i)))
	}
}

// ZeroBlockFraction reports the fraction of 64-byte-aligned blocks in buf
// that are entirely zero — the supply of scrambler-key "leaks" available to
// the miner.
func ZeroBlockFraction(buf []byte) float64 {
	const block = 64
	if len(buf) < block {
		return 0
	}
	zeros, total := 0, 0
	for off := 0; off+block <= len(buf); off += block {
		total++
		allZero := true
		for _, b := range buf[off : off+block] {
			if b != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			zeros++
		}
	}
	return float64(zeros) / float64(total)
}
