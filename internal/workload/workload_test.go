package workload

import (
	"bytes"
	"testing"

	"coldboot/internal/bitutil"
)

func TestProfilesValid(t *testing.T) {
	for _, p := range []Profile{LoadedSystem, LightSystem, HostileSystem} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestValidateRejectsBadSum(t *testing.T) {
	p := Profile{Name: "bad", Zero: 0.5, Code: 0.9}
	if err := p.Validate(); err == nil {
		t.Error("expected error for fractions summing to 1.4")
	}
}

func TestFillDeterministic(t *testing.T) {
	a := make([]byte, 64*PageBytes)
	b := make([]byte, 64*PageBytes)
	if err := Fill(a, 42, LoadedSystem); err != nil {
		t.Fatal(err)
	}
	if err := Fill(b, 42, LoadedSystem); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different contents")
	}
	Fill(b, 43, LoadedSystem)
	if bytes.Equal(a, b) {
		t.Error("different seeds produced identical contents")
	}
}

func TestFillRejectsUnalignedBuffer(t *testing.T) {
	if err := Fill(make([]byte, 100), 1, LoadedSystem); err == nil {
		t.Error("expected error for unaligned buffer")
	}
}

func TestZeroBlockSupplyMatchesProfile(t *testing.T) {
	buf := make([]byte, 1024*PageBytes)
	cases := []struct {
		p        Profile
		min, max float64
	}{
		{LoadedSystem, 0.10, 0.35}, // zero pages + heap padding + code displacements
		{LightSystem, 0.45, 0.75},
		{HostileSystem, 0.00, 0.15},
	}
	for _, c := range cases {
		if err := Fill(buf, 7, c.p); err != nil {
			t.Fatal(err)
		}
		got := ZeroBlockFraction(buf)
		if got < c.min || got > c.max {
			t.Errorf("%s: zero-block fraction %f outside [%f, %f]", c.p.Name, got, c.min, c.max)
		}
	}
}

func TestZerosMostFrequentByteValue(t *testing.T) {
	// The memory-compression observation the key miner relies on.
	buf := make([]byte, 512*PageBytes)
	if err := Fill(buf, 9, LoadedSystem); err != nil {
		t.Fatal(err)
	}
	hist := bitutil.ByteHistogram(buf)
	for v := 1; v < 256; v++ {
		if hist[v] > hist[0] {
			t.Fatalf("byte %#02x more frequent than zero (%d > %d)", v, hist[v], hist[0])
		}
	}
}

func TestContentClassesLookDifferent(t *testing.T) {
	// Entropy ordering: zero < text < code/heap < high entropy.
	page := make([]byte, PageBytes)
	entropies := map[string]float64{}
	onlyClass := func(name string, p Profile) {
		buf := make([]byte, 64*PageBytes)
		if err := Fill(buf, 3, p); err != nil {
			t.Fatal(err)
		}
		entropies[name] = bitutil.Entropy(buf)
	}
	onlyClass("zero", Profile{Name: "z", Zero: 1})
	onlyClass("text", Profile{Name: "t", Text: 1})
	onlyClass("code", Profile{Name: "c", Code: 1})
	onlyClass("rand", Profile{Name: "r", HighEntropy: 1})
	if !(entropies["zero"] < entropies["text"] && entropies["text"] < entropies["code"] &&
		entropies["code"] < entropies["rand"]) {
		t.Errorf("entropy ordering violated: %+v", entropies)
	}
	_ = page
}

func TestHeapPagesContainPointers(t *testing.T) {
	buf := make([]byte, 64*PageBytes)
	if err := Fill(buf, 5, Profile{Name: "h", Heap: 1}); err != nil {
		t.Fatal(err)
	}
	// Look for the 0x7f userspace-pointer signature at qword offsets 5..6.
	found := 0
	for i := 0; i+8 <= len(buf); i += 8 {
		if buf[i+5] == 0x7f || (buf[i+6] == 0x7f && buf[i+7] == 0) {
			found++
		}
	}
	if found < len(buf)/8/16 {
		t.Errorf("only %d pointer-like qwords found", found)
	}
}

func TestZeroBlockFractionEdgeCases(t *testing.T) {
	if got := ZeroBlockFraction(nil); got != 0 {
		t.Errorf("nil fraction = %f", got)
	}
	if got := ZeroBlockFraction(make([]byte, 64)); got != 1 {
		t.Errorf("all-zero fraction = %f", got)
	}
	buf := bytes.Repeat([]byte{1}, 128)
	if got := ZeroBlockFraction(buf); got != 0 {
		t.Errorf("all-ones fraction = %f", got)
	}
}

func BenchmarkFillLoaded1MB(b *testing.B) {
	buf := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		Fill(buf, int64(i), LoadedSystem)
	}
}
