package scramble

import (
	"coldboot/internal/bitutil"
	"coldboot/internal/lfsr"
)

// DDR3KeyCount is the per-channel key pool size of the SandyBridge and
// IvyBridge DDR3 scramblers (Bauer et al., reproduced by the paper).
const DDR3KeyCount = 16

// DDR3IndexBits is the number of address bits selecting the key.
const DDR3IndexBits = 4

// DDR3 models the DDR3-generation scrambler. Its defining (and fatal)
// property is the affine key structure
//
//	key(seed, idx) = E(seed) XOR G(idx)
//
// where E is an LFSR expansion of the boot seed and G is a fixed per-index
// pattern burned into the keystream wiring. XORing dumps taken under two
// different seeds cancels G entirely:
//
//	key(s1, idx) ^ key(s2, idx) = E(s1) ^ E(s2)   — independent of idx!
//
// so the whole memory appears scrambled by ONE 64-byte universal key
// (paper Figure 3c), trivially recoverable by frequency analysis.
type DDR3 struct {
	seed uint64
	keys [DDR3KeyCount][BlockBytes]byte
}

// NewDDR3 builds a DDR3 scrambler with the given boot seed.
func NewDDR3(seed uint64) *DDR3 {
	d := &DDR3{}
	d.Reseed(seed)
	return d
}

// Reseed regenerates the 16-key pool from a new boot seed.
func (d *DDR3) Reseed(seed uint64) {
	d.seed = seed
	var e [BlockBytes]byte
	lfsr.NewMaximal(64, splitmix64(seed)).Fill(e[:])
	for idx := 0; idx < DDR3KeyCount; idx++ {
		var g [BlockBytes]byte
		// G depends only on the index: the generator seed is a constant
		// mixed with idx, never with the boot seed.
		lfsr.NewMaximal(64, splitmix64(0xDD3C0FFEE+uint64(idx))).Fill(g[:])
		bitutil.XORBlock64(d.keys[idx][:], e[:], g[:])
	}
}

// Seed returns the current boot seed.
func (d *DDR3) Seed() uint64 { return d.seed }

// NumKeys returns 16.
func (d *DDR3) NumKeys() int { return DDR3KeyCount }

// Name returns the scheme name.
func (d *DDR3) Name() string { return "ddr3-lfsr" }

func (d *DDR3) keyFor(blockIdx uint64) []byte {
	return d.keys[blockIdx&(DDR3KeyCount-1)][:]
}

// Scramble XORs src with the per-block keys into dst.
func (d *DDR3) Scramble(dst, src []byte, off uint64) {
	xorBlocks(dst, src, off, d.keyFor)
}

// Descramble is identical to Scramble.
func (d *DDR3) Descramble(dst, src []byte, off uint64) {
	xorBlocks(dst, src, off, d.keyFor)
}

// KeyAt returns a copy of the key used for the block at off.
func (d *DDR3) KeyAt(off uint64) []byte {
	out := make([]byte, BlockBytes)
	copy(out, d.keyFor(off/BlockBytes))
	return out
}
