package scramble

import (
	"coldboot/internal/bitutil"
	"coldboot/internal/lfsr"
)

// SkylakeKeyCount is the per-channel key pool size the paper measured on
// Skylake DDR4 controllers: 4096 distinct 64-byte keys, a 256x increase
// over DDR3.
const SkylakeKeyCount = 4096

// SkylakeIndexBits is the number of address bits selecting the key.
const SkylakeIndexBits = 12

// SkylakeDDR4 models the 6th-generation (Skylake) DDR4 scrambler with the
// structure the paper's Section III-B reverse engineering uncovered:
//
//   - 4096 keys per channel, selected by physical address bits alone, so
//     key-sharing relationships between blocks survive reboots;
//
//   - keys derived from a NONLINEAR mix of the boot seed and the key index,
//     so XORing two boots' keystreams does not collapse to a universal key
//     (unlike DDR3);
//
//   - a hardware expander that produces each 16-byte output group as
//     8 LFSR bytes followed by the same 8 bytes XORed with a per-group
//     16-bit difference word d — the wiring that creates the byte-pair
//     invariants of the paper's "scrambler key litmus test":
//
//     for each 16-byte-aligned group, with 2-byte words w0..w7:
//     w4^w0 == w5^w1 == w6^w2 == w7^w3 (== d)
//
// Because the invariants are linear, they are closed under XOR: the XOR of
// two keys for the same index (what a dump taken through a second scrambled
// machine contains) still passes the litmus test — the property that makes
// the attack work without ever disabling a scrambler.
type SkylakeDDR4 struct {
	seed uint64
	keys [][BlockBytes]byte
}

// NewSkylakeDDR4 builds a Skylake DDR4 scrambler with the given boot seed.
func NewSkylakeDDR4(seed uint64) *SkylakeDDR4 {
	s := &SkylakeDDR4{keys: make([][BlockBytes]byte, SkylakeKeyCount)}
	s.Reseed(seed)
	return s
}

// Reseed regenerates the 4096-key pool from a new boot seed.
func (s *SkylakeDDR4) Reseed(seed uint64) {
	s.seed = seed
	for idx := range s.keys {
		generateSkylakeKey(&s.keys[idx], seed, idx)
	}
}

// generateSkylakeKey expands one 64-byte key. The generator seed mixes the
// boot seed and index JOINTLY through a nonlinear mixer before seeding the
// LFSR. Jointness matters: an LFSR's output is linear in its initial state,
// so mixing seed and index separately and XOR-combining them would make the
// cross-boot key XOR out(m(s1)^m(idx)) ^ out(m(s2)^m(idx)) = out(m(s1)^m(s2))
// — independent of the index, i.e. exactly the DDR3 universal-key weakness
// this generation fixed.
func generateSkylakeKey(key *[BlockBytes]byte, seed uint64, idx int) {
	g := lfsr.NewMaximal(64, splitmix64(seed^(uint64(idx)*0x9E3779B97F4A7C15+0xC0FFEE)))
	for group := 0; group < BlockBytes/16; group++ {
		base := group * 16
		var w [4]uint16
		for j := 0; j < 4; j++ {
			w[j] = g.NextWord16()
			bitutil.PutWord16(key[:], base+2*j, w[j])
		}
		d := g.NextWord16()
		for j := 0; j < 4; j++ {
			bitutil.PutWord16(key[:], base+8+2*j, w[j]^d)
		}
	}
}

// Seed returns the current boot seed.
func (s *SkylakeDDR4) Seed() uint64 { return s.seed }

// NumKeys returns 4096.
func (s *SkylakeDDR4) NumKeys() int { return SkylakeKeyCount }

// Name returns the scheme name.
func (s *SkylakeDDR4) Name() string { return "skylake-ddr4" }

func (s *SkylakeDDR4) keyFor(blockIdx uint64) []byte {
	return s.keys[blockIdx&(SkylakeKeyCount-1)][:]
}

// Scramble XORs src with the per-block keys into dst.
func (s *SkylakeDDR4) Scramble(dst, src []byte, off uint64) {
	xorBlocks(dst, src, off, s.keyFor)
}

// Descramble is identical to Scramble.
func (s *SkylakeDDR4) Descramble(dst, src []byte, off uint64) {
	xorBlocks(dst, src, off, s.keyFor)
}

// KeyAt returns a copy of the key used for the block at off.
func (s *SkylakeDDR4) KeyAt(off uint64) []byte {
	out := make([]byte, BlockBytes)
	copy(out, s.keyFor(off/BlockBytes))
	return out
}

// KeyIndex returns which key-pool entry scrambles the block at off.
func (s *SkylakeDDR4) KeyIndex(off uint64) int {
	return int((off / BlockBytes) & (SkylakeKeyCount - 1))
}
