package scramble

import (
	"bytes"
	"testing"

	"coldboot/internal/bitutil"
)

// litmusHolds checks the paper's four published invariant equations on a
// 64-byte key, for every 16-byte-aligned group (Section III-B):
//
//	K[i+2:i+3]^K[i+4:i+5] == K[i+10:i+11]^K[i+12:i+13]
//	K[i:i+1]^K[i+6:i+7]   == K[i+8:i+9]^K[i+14:i+15]
//	K[i:i+1]^K[i+4:i+5]   == K[i+8:i+9]^K[i+12:i+13]
//	K[i:i+1]^K[i+2:i+3]   == K[i+8:i+9]^K[i+10:i+11]
func litmusHolds(k []byte) bool {
	for i := 0; i < 64; i += 16 {
		w := func(off int) uint16 { return bitutil.Word16(k, i+off) }
		if w(2)^w(4) != w(10)^w(12) {
			return false
		}
		if w(0)^w(6) != w(8)^w(14) {
			return false
		}
		if w(0)^w(4) != w(8)^w(12) {
			return false
		}
		if w(0)^w(2) != w(8)^w(10) {
			return false
		}
	}
	return true
}

func TestScramblersAreInvolutions(t *testing.T) {
	scramblers := []Scrambler{None{}, NewDDR3(77), NewSkylakeDDR4(77)}
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 7)
	}
	for _, s := range scramblers {
		enc := make([]byte, len(data))
		s.Scramble(enc, data, 0x10000)
		dec := make([]byte, len(data))
		s.Descramble(dec, enc, 0x10000)
		if !bytes.Equal(dec, data) {
			t.Errorf("%s: scramble/descramble round trip failed", s.Name())
		}
	}
}

func TestNonePassesThrough(t *testing.T) {
	var n None
	data := []byte("test data of exactly 32 bytes!!!")
	out := make([]byte, len(data))
	n.Scramble(out, data, 0)
	if !bytes.Equal(out, data) {
		t.Error("None modified data")
	}
	if !bitutil.IsZero(n.KeyAt(0)) {
		t.Error("None key not zero")
	}
}

func TestScrambleInPlace(t *testing.T) {
	s := NewSkylakeDDR4(1)
	data := make([]byte, 128)
	for i := range data {
		data[i] = byte(i)
	}
	orig := append([]byte{}, data...)
	s.Scramble(data, data, 0)
	if bytes.Equal(data, orig) {
		t.Fatal("in-place scramble did nothing")
	}
	s.Descramble(data, data, 0)
	if !bytes.Equal(data, orig) {
		t.Fatal("in-place round trip failed")
	}
}

func TestZeroBlocksRevealKeys(t *testing.T) {
	// The core of the analysis framework: scrambling zeros yields the key.
	for _, s := range []Scrambler{NewDDR3(9), NewSkylakeDDR4(9)} {
		zeros := make([]byte, BlockBytes)
		out := make([]byte, BlockBytes)
		for _, off := range []uint64{0, 64, 4096, 999 * 64} {
			s.Scramble(out, zeros, off)
			if !bytes.Equal(out, s.KeyAt(off)) {
				t.Errorf("%s: scrambled zeros != key at %#x", s.Name(), off)
			}
		}
	}
}

func TestDDR3HasExactly16DistinctKeys(t *testing.T) {
	s := NewDDR3(123)
	keys := make(map[string]bool)
	for off := uint64(0); off < 1<<20; off += BlockBytes {
		keys[string(s.KeyAt(off))] = true
	}
	if len(keys) != 16 {
		t.Errorf("DDR3 produced %d distinct keys, want 16", len(keys))
	}
}

func TestSkylakeHasExactly4096DistinctKeys(t *testing.T) {
	s := NewSkylakeDDR4(123)
	keys := make(map[string]bool)
	for off := uint64(0); off < (SkylakeKeyCount*2)*BlockBytes; off += BlockBytes {
		keys[string(s.KeyAt(off))] = true
	}
	if len(keys) != SkylakeKeyCount {
		t.Errorf("Skylake produced %d distinct keys, want %d", len(keys), SkylakeKeyCount)
	}
}

func TestKeyReuseIsAddressPeriodic(t *testing.T) {
	s := NewSkylakeDDR4(5)
	period := uint64(SkylakeKeyCount * BlockBytes)
	for _, off := range []uint64{0, 64, 128, 640} {
		if !bytes.Equal(s.KeyAt(off), s.KeyAt(off+period)) {
			t.Errorf("key at %#x not reused at +pool size", off)
		}
	}
}

func TestDDR3UniversalRebootKey(t *testing.T) {
	// Figure 3c / Bauer et al.: XOR of two boots' keystreams is the SAME
	// 64-byte value for every key index.
	boot1 := NewDDR3(0xAAAA)
	boot2 := NewDDR3(0x5555)
	var universal []byte
	for idx := uint64(0); idx < DDR3KeyCount; idx++ {
		off := idx * BlockBytes
		x := bitutil.XORNew(boot1.KeyAt(off), boot2.KeyAt(off))
		if universal == nil {
			universal = x
		} else if !bytes.Equal(universal, x) {
			t.Fatalf("DDR3 reboot XOR differs at index %d: factoring property lost", idx)
		}
	}
	if bitutil.IsZero(universal) {
		t.Error("universal key is zero; seeds did not change the keystream")
	}
}

func TestSkylakeNoUniversalRebootKey(t *testing.T) {
	// Figure 3e: the same XOR on Skylake yields many distinct values.
	boot1 := NewSkylakeDDR4(0xAAAA)
	boot2 := NewSkylakeDDR4(0x5555)
	seen := make(map[string]bool)
	for idx := uint64(0); idx < SkylakeKeyCount; idx++ {
		off := idx * BlockBytes
		seen[string(bitutil.XORNew(boot1.KeyAt(off), boot2.KeyAt(off)))] = true
	}
	if len(seen) < SkylakeKeyCount/2 {
		t.Errorf("reboot XOR collapsed to %d values; Skylake must not factor", len(seen))
	}
}

func TestSkylakeKeySharingSurvivesReboot(t *testing.T) {
	// Observation 4: blocks sharing a key keep sharing one after reseed.
	s := NewSkylakeDDR4(1)
	offA := uint64(10 * BlockBytes)
	offB := offA + uint64(SkylakeKeyCount*BlockBytes)
	if !bytes.Equal(s.KeyAt(offA), s.KeyAt(offB)) {
		t.Fatal("blocks did not share a key before reboot")
	}
	s.Reseed(2)
	if !bytes.Equal(s.KeyAt(offA), s.KeyAt(offB)) {
		t.Error("key sharing broken by reboot")
	}
}

func TestSkylakeKeysSatisfyPaperInvariants(t *testing.T) {
	s := NewSkylakeDDR4(0xFEEDFACE)
	for idx := uint64(0); idx < SkylakeKeyCount; idx++ {
		if !litmusHolds(s.KeyAt(idx * BlockBytes)) {
			t.Fatalf("key %d fails the paper's litmus equations", idx)
		}
	}
}

func TestInvariantsClosedUnderXOR(t *testing.T) {
	// Double-scrambled dumps contain K1^K2 per index; the litmus test must
	// still pass, which is why the attacker never needs a disabled
	// scrambler.
	b1 := NewSkylakeDDR4(0x1111)
	b2 := NewSkylakeDDR4(0x2222)
	for idx := uint64(0); idx < 256; idx++ {
		off := idx * BlockBytes
		x := bitutil.XORNew(b1.KeyAt(off), b2.KeyAt(off))
		if !litmusHolds(x) {
			t.Fatalf("XOR of keys at index %d fails litmus", idx)
		}
	}
}

func TestRandomDataFailsInvariants(t *testing.T) {
	// Tightness: a random block passes a single 16-bit equation with
	// probability 2^-16, so essentially no random block passes all of them.
	g := NewSkylakeDDR4(3)
	buf := make([]byte, BlockBytes)
	passes := 0
	for trial := 0; trial < 20000; trial++ {
		// Derive pseudo-random blocks from the scrambler's own key stream
		// XORed across misaligned offsets, destroying the group alignment.
		copy(buf, g.KeyAt(uint64(trial)*BlockBytes))
		tmp := g.KeyAt(uint64(trial+7919) * BlockBytes)
		for i := range buf {
			buf[i] ^= tmp[(i+3)%BlockBytes] // misaligned: breaks structure
		}
		if litmusHolds(buf) {
			passes++
		}
	}
	if passes > 2 {
		t.Errorf("%d/20000 unstructured blocks passed the litmus test", passes)
	}
}

func TestScrambledDataLooksRandomOnTheBus(t *testing.T) {
	// The original electrical purpose: even pathological all-zero traffic
	// must hit the bus with ~50% ones and high entropy.
	s := NewSkylakeDDR4(42)
	zeros := make([]byte, SkylakeKeyCount*BlockBytes)
	out := make([]byte, len(zeros))
	s.Scramble(out, zeros, 0)
	if f := bitutil.OnesFraction(out); f < 0.49 || f > 0.51 {
		t.Errorf("ones fraction = %f, want ~0.5", f)
	}
	if e := bitutil.Entropy(out); e < 7.9 {
		t.Errorf("entropy = %f bits/byte, want > 7.9", e)
	}
}

func TestCorrelationReductionFactor256(t *testing.T) {
	// Figure 3b vs 3d: identical plaintext blocks collide (same scrambled
	// image) with probability 1/16 on DDR3 but 1/4096 on DDR4 — a 256x
	// reduction in visible correlations.
	const blocks = 1 << 14
	plain := make([]byte, blocks*BlockBytes) // identical (zero) content
	count := func(s Scrambler) int {
		out := make([]byte, len(plain))
		s.Scramble(out, plain, 0)
		seen := make(map[string]int)
		for b := 0; b < blocks; b++ {
			seen[string(out[b*BlockBytes:(b+1)*BlockBytes])]++
		}
		collisions := 0
		for _, n := range seen {
			collisions += n - 1
		}
		return collisions
	}
	ddr3 := count(NewDDR3(6))
	ddr4 := count(NewSkylakeDDR4(6))
	if ddr3 <= ddr4 {
		t.Fatalf("DDR3 collisions (%d) not greater than DDR4 (%d)", ddr3, ddr4)
	}
	ratio := float64(blocks-ddr4) / float64(blocks-ddr3)
	// blocks - collisions = number of distinct scrambled images = pool size
	// exposed; ratio of distinct counts should be ~256.
	if ratio < 200 || ratio > 300 {
		t.Errorf("distinct-image ratio = %f, want ~256", ratio)
	}
}

func TestReseedChangesKeys(t *testing.T) {
	s := NewSkylakeDDR4(1)
	before := s.KeyAt(0)
	s.Reseed(2)
	if bytes.Equal(before, s.KeyAt(0)) {
		t.Error("reseed did not change keys")
	}
	if s.Seed() != 2 {
		t.Errorf("Seed() = %d, want 2", s.Seed())
	}
	s.Reseed(1)
	if !bytes.Equal(before, s.KeyAt(0)) {
		t.Error("reseeding with the original seed did not restore keys (vendor BIOS seed-reuse case)")
	}
}

func TestScramblePanicsOnBadArgs(t *testing.T) {
	s := NewSkylakeDDR4(1)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("unaligned offset", func() { s.Scramble(make([]byte, 64), make([]byte, 64), 3) })
	mustPanic("partial block", func() { s.Scramble(make([]byte, 60), make([]byte, 60), 0) })
	mustPanic("length mismatch", func() { s.Scramble(make([]byte, 64), make([]byte, 128), 0) })
}

func BenchmarkSkylakeScramble64B(b *testing.B) {
	s := NewSkylakeDDR4(1)
	buf := make([]byte, BlockBytes)
	b.SetBytes(BlockBytes)
	for i := 0; i < b.N; i++ {
		s.Scramble(buf, buf, uint64(i%4096)*BlockBytes)
	}
}

func BenchmarkSkylakeReseed(b *testing.B) {
	s := NewSkylakeDDR4(1)
	for i := 0; i < b.N; i++ {
		s.Reseed(uint64(i))
	}
}
