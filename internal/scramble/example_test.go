package scramble_test

import (
	"bytes"
	"fmt"

	"coldboot/internal/scramble"
)

// Example demonstrates the scrambler data path of Figure 1: a symmetric
// XOR with a keystream selected by (boot seed, address), and the zero-block
// property that leaks raw keys into a dump.
func Example() {
	s := scramble.NewSkylakeDDR4(0xB007_5EED)

	data := bytes.Repeat([]byte{0xAA}, 64)
	stored := make([]byte, 64)
	s.Scramble(stored, data, 0x4000)

	restored := make([]byte, 64)
	s.Descramble(restored, stored, 0x4000)
	fmt.Println("round trip ok:", bytes.Equal(restored, data))

	// A zero block stores the raw keystream.
	zeros := make([]byte, 64)
	leak := make([]byte, 64)
	s.Scramble(leak, zeros, 0x4000)
	fmt.Println("zero block leaks key:", bytes.Equal(leak, s.KeyAt(0x4000)))
	fmt.Println("keys per channel:", s.NumKeys())
	// Output:
	// round trip ok: true
	// zero block leaks key: true
	// keys per channel: 4096
}

// ExampleDDR3 shows the DDR3 universal reboot key: the XOR of two boots'
// keys is identical for every address class.
func ExampleDDR3() {
	boot1 := scramble.NewDDR3(111)
	boot2 := scramble.NewDDR3(222)
	xor := func(off uint64) []byte {
		a := boot1.KeyAt(off)
		b := boot2.KeyAt(off)
		out := make([]byte, 64)
		for i := range out {
			out[i] = a[i] ^ b[i]
		}
		return out
	}
	universal := xor(0)
	same := true
	for idx := uint64(1); idx < 16; idx++ {
		if !bytes.Equal(universal, xor(idx*64)) {
			same = false
		}
	}
	fmt.Println("one universal key across all 16 classes:", same)
	// Output:
	// one universal key across all 16 classes: true
}
