package scramble

import (
	"bytes"
	"math/rand"
	"testing"
)

// xorBlocksRef is the seed byte-at-a-time scrambling loop, kept as the
// differential reference the word-level kernel must match bit for bit.
func xorBlocksRef(dst, src []byte, off uint64, keyFor func(blockIdx uint64) []byte) {
	for b := 0; b < len(src)/BlockBytes; b++ {
		key := keyFor(off/BlockBytes + uint64(b))
		for i := 0; i < BlockBytes; i++ {
			dst[b*BlockBytes+i] = src[b*BlockBytes+i] ^ key[i]
		}
	}
}

// TestXORBlocksWordParity proves the optimized scramble path is
// bit-identical to the seed byte loop for every scrambler generation,
// multiple lengths, and non-zero offsets.
func TestXORBlocksWordParity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	scramblers := []Scrambler{
		None{},
		NewDDR3(7),
		NewSkylakeDDR4(7),
		NewSkylakeVariant(7, 9, nil),
	}
	keyFns := map[string]func(uint64) []byte{
		"ddr3":    scramblers[1].(*DDR3).keyFor,
		"skylake": scramblers[2].(*SkylakeDDR4).keyFor,
		"variant": scramblers[3].(*SkylakeVariant).keyFor,
	}
	for name, keyFor := range keyFns {
		for _, blocks := range []int{1, 2, 3, 17} {
			for _, off := range []uint64{0, 64, 4096 * 64} {
				src := make([]byte, blocks*BlockBytes)
				rng.Read(src)
				want := make([]byte, len(src))
				xorBlocksRef(want, src, off, keyFor)
				got := make([]byte, len(src))
				xorBlocks(got, src, off, keyFor)
				if !bytes.Equal(got, want) {
					t.Fatalf("%s: xorBlocks mismatch at blocks=%d off=%#x", name, blocks, off)
				}
				// In place, as the bus path uses it.
				inPlace := append([]byte{}, src...)
				xorBlocks(inPlace, inPlace, off, keyFor)
				if !bytes.Equal(inPlace, want) {
					t.Fatalf("%s: in-place xorBlocks mismatch at blocks=%d off=%#x", name, blocks, off)
				}
			}
		}
	}
	// Scramble→Descramble stays an involution through the kernel.
	for _, s := range scramblers {
		src := make([]byte, 8*BlockBytes)
		rng.Read(src)
		buf := append([]byte{}, src...)
		s.Scramble(buf, buf, 128*BlockBytes)
		s.Descramble(buf, buf, 128*BlockBytes)
		if !bytes.Equal(buf, src) {
			t.Fatalf("%s: scramble/descramble no longer an involution", s.Name())
		}
	}
}

// TestNoneKeyAtShared pins the None.KeyAt allocation contract: the same
// shared all-zero block is returned on every call (callers must not mutate
// KeyAt results, per the Scrambler interface).
func TestNoneKeyAtShared(t *testing.T) {
	n := None{}
	a, b := n.KeyAt(0), n.KeyAt(1<<30)
	if len(a) != BlockBytes {
		t.Fatalf("None.KeyAt length = %d", len(a))
	}
	if &a[0] != &b[0] {
		t.Error("None.KeyAt should return the shared zero block, not a fresh allocation")
	}
	for i, v := range a {
		if v != 0 {
			t.Fatalf("None.KeyAt byte %d = %#x, want 0", i, v)
		}
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = n.KeyAt(0) }); allocs != 0 {
		t.Errorf("None.KeyAt allocates %.1f objects per call, want 0", allocs)
	}
}
