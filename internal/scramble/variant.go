package scramble

import (
	"coldboot/internal/bitutil"
	"coldboot/internal/lfsr"
)

// SkylakeVariant is an experimentation hook for the paper's robustness
// claim: "simple permutations of the random number generators and key
// mapping schemes (as different generations of DDR3 controllers have done
// in the past) would not affect this attack's ability to recover sensitive
// information". It generates keys with the same hardware expander structure
// as SkylakeDDR4 (so the litmus invariants hold) but lets the experimenter
// change the pool size and permute the address→key mapping arbitrarily —
// breaking the periodicity that the fast stride-inference path exploits,
// and forcing the attack back to the paper's literal exhaustive key trial.
type SkylakeVariant struct {
	seed      uint64
	indexBits uint
	perm      func(blockIdx uint64) int
	keys      [][BlockBytes]byte
}

// NewSkylakeVariant builds a variant scrambler with 2^indexBits keys and an
// arbitrary block→key mapping. perm must return values in [0, 2^indexBits);
// nil selects the standard periodic mapping.
func NewSkylakeVariant(seed uint64, indexBits uint, perm func(blockIdx uint64) int) *SkylakeVariant {
	if indexBits < 1 || indexBits > 16 {
		panic("scramble: variant index bits must be in 1..16")
	}
	s := &SkylakeVariant{indexBits: indexBits, perm: perm}
	if s.perm == nil {
		s.perm = func(b uint64) int { return int(b & (uint64(1)<<indexBits - 1)) }
	}
	s.keys = make([][BlockBytes]byte, 1<<indexBits)
	s.Reseed(seed)
	return s
}

// Reseed regenerates the key pool.
func (s *SkylakeVariant) Reseed(seed uint64) {
	s.seed = seed
	for idx := range s.keys {
		generateVariantKey(&s.keys[idx], seed, idx)
	}
}

// generateVariantKey mirrors the Skylake expander (w/d group structure, so
// the litmus invariants hold) with joint nonlinear seed/index mixing.
func generateVariantKey(key *[BlockBytes]byte, seed uint64, idx int) {
	g := lfsr.NewMaximal(64, splitmix64(seed^(uint64(idx)*0x2545F4914F6CDD1D+0xBEEF)))
	for group := 0; group < BlockBytes/16; group++ {
		base := group * 16
		var w [4]uint16
		for j := 0; j < 4; j++ {
			w[j] = g.NextWord16()
			bitutil.PutWord16(key[:], base+2*j, w[j])
		}
		d := g.NextWord16()
		for j := 0; j < 4; j++ {
			bitutil.PutWord16(key[:], base+8+2*j, w[j]^d)
		}
	}
}

// Seed returns the current boot seed.
func (s *SkylakeVariant) Seed() uint64 { return s.seed }

// NumKeys returns the pool size.
func (s *SkylakeVariant) NumKeys() int { return len(s.keys) }

// Name identifies the scheme.
func (s *SkylakeVariant) Name() string { return "skylake-variant" }

func (s *SkylakeVariant) keyFor(blockIdx uint64) []byte {
	return s.keys[s.perm(blockIdx)&(len(s.keys)-1)][:]
}

// Scramble XORs src with the per-block keys into dst.
func (s *SkylakeVariant) Scramble(dst, src []byte, off uint64) {
	xorBlocks(dst, src, off, s.keyFor)
}

// Descramble is identical to Scramble.
func (s *SkylakeVariant) Descramble(dst, src []byte, off uint64) {
	xorBlocks(dst, src, off, s.keyFor)
}

// KeyAt returns a copy of the key used for the block at off.
func (s *SkylakeVariant) KeyAt(off uint64) []byte {
	out := make([]byte, BlockBytes)
	copy(out, s.keyFor(off/BlockBytes))
	return out
}

var _ Scrambler = (*SkylakeVariant)(nil)
