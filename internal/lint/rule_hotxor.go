package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotxorRule flags byte-indexed XOR loops in the attack's hot-path
// packages. PR 1 replaced every per-byte `a[i] ^= b[i]` with the word-level
// bitutil kernels (XORWords / XORBlock64 / XORBlock16), which move eight
// bytes per operation; a byte loop reintroduced into these packages silently
// gives back the ~10x descramble speedup.
type hotxorRule struct{}

func (hotxorRule) ID() string { return "hotxor" }

func (hotxorRule) Doc() string {
	return "byte-indexed XOR loops in hot-path packages must use the bitutil word kernels (PR 1 contract)"
}

// hotxorPackages are the packages whose XOR traffic is hot-path by design.
// The format subsystem is included: its probers run once per descrambled
// block inside the attack's single pass, so a byte-XOR loop there costs
// exactly what one in internal/core would.
var hotxorPackages = map[string]bool{
	"internal/scramble":        true,
	"internal/core":            true,
	"internal/keyfind":         true,
	"internal/engine":          true,
	"internal/aes":             true,
	"internal/chacha":          true,
	"internal/dram":            true,
	"internal/format":          true,
	"internal/format/aesxts":   true,
	"internal/format/chacha20": true,
	"internal/format/luks2":    true,
}

func (r hotxorRule) Check(m *Module, p *Package) []Finding {
	if !hotxorPackages[p.RelPath] {
		return nil
	}
	info := p.Info
	var out []Finding
	report := func(pos token.Pos) {
		out = append(out, Finding{
			Pos:  m.Fset.Position(pos),
			Rule: r.ID(),
			Msg:  "byte-indexed XOR loop; use bitutil.XORWords/XORBlock64/XORBlock16 (word-level kernel contract, PR 1)",
		})
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch l := n.(type) {
			case *ast.ForStmt:
				body = l.Body
			case *ast.RangeStmt:
				body = l.Body
			default:
				return true
			}
			vars := loopVars(info, n.(ast.Stmt))
			if len(vars) == 0 {
				return true
			}
			for _, stmt := range body.List {
				as, ok := stmt.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
					continue
				}
				lhs, rhs := as.Lhs[0], as.Rhs[0]
				if !isLoopByteIndex(info, lhs, vars) {
					continue
				}
				switch as.Tok {
				case token.XOR_ASSIGN: // a[i] ^= b[i]
					if isLoopByteIndex(info, rhs, vars) {
						report(as.Pos())
					}
				case token.ASSIGN, token.DEFINE: // a[i] = b[i] ^ c[i]
					if xorOfLoopIndexes(info, rhs, vars) {
						report(as.Pos())
					}
				}
			}
			return true
		})
	}
	return out
}

// isLoopByteIndex reports whether e is an index into a byte slice/array
// whose index expression involves a loop variable.
func isLoopByteIndex(info *types.Info, e ast.Expr, vars map[types.Object]bool) bool {
	ie, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return false
	}
	if !isByteSliceOrArray(info, ie.X) {
		return false
	}
	return mentionsIdentObj(info, ie.Index, vars)
}

// xorOfLoopIndexes reports whether e is a ^ chain in which at least two
// operands are loop-indexed byte loads (the memcpy-with-xor shape).
func xorOfLoopIndexes(info *types.Info, e ast.Expr, vars map[types.Object]bool) bool {
	n := 0
	var walk func(ast.Expr)
	walk = func(e ast.Expr) {
		e = ast.Unparen(e)
		if be, ok := e.(*ast.BinaryExpr); ok && be.Op == token.XOR {
			walk(be.X)
			walk(be.Y)
			return
		}
		if isLoopByteIndex(info, e, vars) {
			n++
		}
	}
	if be, ok := ast.Unparen(e).(*ast.BinaryExpr); !ok || be.Op != token.XOR {
		return false
	}
	walk(e)
	return n >= 2
}
