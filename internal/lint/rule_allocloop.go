package lint

import (
	"go/ast"
	"go/types"
)

// allocloopRule guards PR 1's zero-alloc hot loops: inside a dump-block
// loop in the scan packages (keyfind.Scan*'s scanRange, core's hunt
// workers and verification walks), a make() or an append onto a fresh
// composite literal allocates once per block — millions of times per
// gigabyte — where the pooled and stack buffers PR 1 introduced must be
// reused instead. Accumulator appends (out = append(out, x)) are fine; a
// rare-path allocation that is genuinely wanted (e.g. a Finding copying its
// Master out of the image) takes an ignore directive.
type allocloopRule struct{}

func (allocloopRule) ID() string { return "allocloop" }

func (allocloopRule) Doc() string {
	return "no make()/fresh-literal append inside per-block hot loops (pooled-buffer contract, PR 1)"
}

// allocloopPackages are the packages whose block loops are the attack's
// per-block hot path. The daemon layers (jobs, service) are included: any
// dump-block loop that grows there (result post-processing, upload
// validation) is on the serving hot path just as much as the scan itself.
var allocloopPackages = map[string]bool{
	"internal/keyfind": true,
	"internal/core":    true,
	"internal/jobs":    true,
	"internal/service": true,
}

func (r allocloopRule) Check(m *Module, p *Package) []Finding {
	if !allocloopPackages[p.RelPath] {
		return nil
	}
	g := m.graph()
	info := p.Info
	var out []Finding
	seen := make(map[ast.Node]bool)
	for fn, loops := range g.blockLoops {
		if fn.Pkg() == nil || fn.Pkg() != p.Types {
			continue
		}
		for _, loop := range loops {
			ast.Inspect(loop, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || seen[call] {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok {
					return true
				}
				b, ok := info.Uses[id].(*types.Builtin)
				if !ok {
					return true
				}
				switch b.Name() {
				case "make":
					seen[call] = true
					out = append(out, Finding{
						Pos:  m.Fset.Position(call.Pos()),
						Rule: r.ID(),
						Msg:  "make() inside a per-block hot loop; hoist the buffer out of the loop or use the worker's pooled buffer (PR 1)",
					})
				case "append":
					if len(call.Args) == 0 {
						return true
					}
					if _, isLit := ast.Unparen(call.Args[0]).(*ast.CompositeLit); isLit {
						seen[call] = true
						out = append(out, Finding{
							Pos:  m.Fset.Position(call.Pos()),
							Rule: r.ID(),
							Msg:  "append onto a fresh literal inside a per-block hot loop allocates every block; reuse a buffer (PR 1)",
						})
					}
				}
				return true
			})
		}
	}
	return out
}
