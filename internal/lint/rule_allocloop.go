package lint

import (
	"go/ast"
	"go/types"
)

// allocloopRule guards the zero-alloc hot loops: inside a dump-block loop
// in the scan packages (keyfind.Scan*'s scanRange, core's hunt workers and
// verification walks), a make() or an append onto a fresh composite literal
// allocates once per block — millions of times per gigabyte — where the
// pooled and stack buffers PR 1 introduced must be reused instead.
//
// The rule also covers per-candidate verify/repair retry loops in the core
// package: any loop that re-invokes one of the hunt's verification kernels
// (xorDistance, predictAndCompare, scheduleScore — directly or through
// helpers like tryMaster or VerifySchedule) runs once per candidate master
// times the repair search fan-out, so allocations there multiply just as
// badly as in the block loops. Accumulator appends (out = append(out, x))
// are fine; a rare-path allocation that is genuinely wanted (e.g. a Finding
// copying its Master out of the image) takes an ignore directive.
type allocloopRule struct{}

func (allocloopRule) ID() string { return "allocloop" }

func (allocloopRule) Doc() string {
	return "no make()/fresh-literal append inside per-block hot loops or per-candidate verify retry loops (pooled-buffer contract, PR 1)"
}

// allocloopPackages are the packages whose block loops are the attack's
// per-block hot path. The daemon layers (jobs, service) are included: any
// dump-block loop that grows there (result post-processing, upload
// validation) is on the serving hot path just as much as the scan itself.
// The format subsystem's block drivers and probers are included: ProbeBlock
// implementations promise an allocation-free no-hit path, and ScanBlocks
// walks whole images block by block. The distribution layers (wal, fleet)
// are included: the coordinator and workers sit between the scheduler and
// the scan kernels, so a per-block allocation there taxes every shard of
// every campaign.
var allocloopPackages = map[string]bool{
	"internal/keyfind":         true,
	"internal/core":            true,
	"internal/jobs":            true,
	"internal/service":         true,
	"internal/wal":             true,
	"internal/fleet":           true,
	"internal/format":          true,
	"internal/format/aesxts":   true,
	"internal/format/chacha20": true,
	"internal/format/luks2":    true,
}

// verifyKernelPackage scopes the retry-loop extension to the package that
// owns the verification kernels.
const verifyKernelPackage = "internal/core"

// verifyKernelNames are the per-candidate scoring kernels of the hunt. A
// loop whose body calls a function reaching one of these re-verifies per
// iteration: that is the repair/refine retry shape, and its buffers must
// come from the worker's scratch.
var verifyKernelNames = map[string]bool{
	"xorDistance":       true,
	"predictAndCompare": true,
	"scheduleScore":     true,
}

func (r allocloopRule) Check(m *Module, p *Package) []Finding {
	if !allocloopPackages[p.RelPath] {
		return nil
	}
	g := m.graph()
	info := p.Info
	var out []Finding
	seen := make(map[ast.Node]bool)
	for fn, loops := range g.blockLoops {
		if fn.Pkg() == nil || fn.Pkg() != p.Types {
			continue
		}
		for _, loop := range loops {
			out = append(out, r.allocsIn(m, info, loop, seen,
				"make() inside a per-block hot loop; hoist the buffer out of the loop or use the worker's pooled buffer (PR 1)",
				"append onto a fresh literal inside a per-block hot loop allocates every block; reuse a buffer (PR 1)")...)
		}
	}
	for _, loop := range r.verifyRetryLoops(m, p) {
		out = append(out, r.allocsIn(m, info, loop, seen,
			"make() inside a per-candidate verify/repair retry loop; expand into the worker's scratch buffers instead (pooled-scratch contract)",
			"append onto a fresh literal inside a per-candidate verify/repair retry loop allocates per candidate; reuse the worker's scratch (pooled-scratch contract)")...)
	}
	return out
}

// allocsIn reports make() calls and fresh-literal appends under loop,
// deduplicating against seen (a node flagged under one loop nesting is not
// re-reported under another).
func (r allocloopRule) allocsIn(m *Module, info *types.Info, loop ast.Node, seen map[ast.Node]bool, makeMsg, appendMsg string) []Finding {
	var out []Finding
	ast.Inspect(loop, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || seen[call] {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		b, ok := info.Uses[id].(*types.Builtin)
		if !ok {
			return true
		}
		switch b.Name() {
		case "make":
			seen[call] = true
			out = append(out, Finding{
				Pos:  m.Fset.Position(call.Pos()),
				Rule: r.ID(),
				Msg:  makeMsg,
			})
		case "append":
			if len(call.Args) == 0 {
				return true
			}
			if _, isLit := ast.Unparen(call.Args[0]).(*ast.CompositeLit); isLit {
				seen[call] = true
				out = append(out, Finding{
					Pos:  m.Fset.Position(call.Pos()),
					Rule: r.ID(),
					Msg:  appendMsg,
				})
			}
		}
		return true
	})
	return out
}

// verifyRetryLoops returns every for/range statement in p whose own body
// calls a verification-kernel-reaching function. Nested function literals
// and nested loops are their own execution contexts and are skipped when
// attributing the kernel call: a buffer hoisted out of an inner retry loop
// into its enclosing loop is exactly the sanctioned fix, so only the
// innermost loop around the call is the retry loop.
func (r allocloopRule) verifyRetryLoops(m *Module, p *Package) []ast.Stmt {
	if p.RelPath != verifyKernelPackage {
		return nil
	}
	g := m.graph()
	reach := kernelReach(g, p)
	if len(reach) == 0 {
		return nil
	}
	var loops []ast.Stmt
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch l := n.(type) {
				case *ast.ForStmt:
					body = l.Body
				case *ast.RangeStmt:
					body = l.Body
				default:
					return true
				}
				if directlyCallsReaching(p.Info, body, reach) {
					loops = append(loops, n.(ast.Stmt))
				}
				return true
			})
		}
	}
	return loops
}

// kernelReach marks the functions whose call graph reaches a verification
// kernel at per-candidate granularity. Propagation stops at functions that
// contain a dump-block loop themselves (the hunt workers, whole-attack
// stages): a loop around one of those is shard- or campaign-grained — its
// allocations amortize over a full scan — not a candidate retry.
func kernelReach(g *callGraph, p *Package) map[*types.Func]bool {
	reach := make(map[*types.Func]bool)
	var queue []*types.Func
	scope := p.Types.Scope()
	for name := range verifyKernelNames {
		if fn, ok := scope.Lookup(name).(*types.Func); ok {
			reach[fn] = true
			queue = append(queue, fn)
		}
	}
	callers := make(map[*types.Func][]*types.Func)
	for caller, callees := range g.calls {
		for callee := range callees {
			callers[callee] = append(callers[callee], caller)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, caller := range callers[fn] {
			if reach[caller] {
				continue
			}
			if _, coarse := g.blockLoop[caller]; coarse {
				continue
			}
			reach[caller] = true
			queue = append(queue, caller)
		}
	}
	return reach
}

// directlyCallsReaching reports whether the loop body calls a
// kernel-reaching function in its own execution context — skipping nested
// function literals and nested loops, which are attributed separately.
func directlyCallsReaching(info *types.Info, body *ast.BlockStmt, reach map[*types.Func]bool) bool {
	noIfaces := func(*types.Interface, string) []*types.Func { return nil }
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			return false
		case *ast.RangeStmt:
			return false
		case *ast.CallExpr:
			for _, callee := range resolveCallees(info, n, noIfaces) {
				if reach[callee] {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
