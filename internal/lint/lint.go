// Package lint is the project's static-analysis suite: it enforces the
// cross-cutting contracts the compiler cannot check and that code review
// will not reliably catch as the tree grows — the same class of silent
// erosion that let weak scramblers pass for memory protection in the source
// paper. Each rule encodes a contract established by an earlier PR:
//
//   - hotxor: hot-path XOR must use the word-level bitutil kernels (PR 1).
//   - ctxthread: exported dump-scanning APIs must thread context.Context
//     and must not manufacture their own background context (PR 2).
//   - keyatmut: Scrambler.KeyAt / shardMineView results are read-only
//     (PR 1: None.KeyAt returns a shared block; PR 2: shards share the
//     global mine pool).
//   - noweakrand: math/rand only in internal/randtest and tests.
//   - noprint: library packages report through internal/obs or return
//     values, never fmt.Print*/log/time.Now (PR 2).
//   - allocloop: no fresh allocations inside per-block hot loops (PR 1's
//     pooled and stack buffers must be reused).
//   - keyflow: interprocedural taint analysis — recovered key material
//     must never be formatted, logged, written out, or converted to
//     string outside internal/secret (PR 8).
//   - lockguard: struct fields annotated "// guarded by <mu>" are only
//     reachable with that mutex held (PR 8).
//   - goroleak: goroutines in internal/* need a context/WaitGroup/channel
//     termination path (PR 8).
//
// Findings print as "file:line: rule-id: message". A deliberate exception
// is annotated in the source with
//
//	//lint:ignore rule-id reason
//
// on the flagged line or the line directly above it; a malformed directive
// (missing rule-id, unknown rule-id, or missing reason) is itself reported
// under the rule-id "lintdirective".
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one rule violation.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Rule is one project contract check.
type Rule interface {
	// ID is the stable rule identifier used in output and ignore directives.
	ID() string
	// Doc is a one-line description of the enforced contract.
	Doc() string
	// Check analyzes one package and returns its findings. The module gives
	// access to cross-package analyses (call graph, other packages).
	Check(m *Module, p *Package) []Finding
}

// Rules returns the full suite in output order.
func Rules() []Rule {
	return []Rule{
		hotxorRule{},
		ctxthreadRule{},
		keyatmutRule{},
		noweakrandRule{},
		noprintRule{},
		allocloopRule{},
		keyflowRule{},
		lockguardRule{},
		goroleakRule{},
	}
}

// DirectiveRuleID is the pseudo-rule under which malformed //lint:ignore
// directives are reported.
const DirectiveRuleID = "lintdirective"

// StaleRuleID is the pseudo-rule under which stale //lint:ignore
// directives — well-formed suppressions whose rule no longer fires at
// that site — are reported, keeping the exception inventory honest.
const StaleRuleID = "lintstale"

// Options configures a lint run.
type Options struct {
	// NoIgnores disables //lint:ignore processing: every raw finding is
	// reported (the self-tests use this to verify that suppressed fixtures
	// would fire).
	NoIgnores bool
}

// Run executes every rule over every package of the module and returns the
// findings that survive ignore-directive filtering, sorted by position.
func Run(m *Module, opts Options) []Finding {
	var all []Finding
	for _, p := range m.Pkgs {
		for _, r := range Rules() {
			all = append(all, r.Check(m, p)...)
		}
	}
	if !opts.NoIgnores {
		all = applyIgnores(m, all)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return all
}

func knownRuleIDs() map[string]bool {
	ids := make(map[string]bool)
	for _, r := range Rules() {
		ids[r.ID()] = true
	}
	return ids
}
