package lint

import (
	"go/ast"
	"go/types"
)

// keyatmutRule enforces the read-only contract on Scrambler.KeyAt results
// and shardMineView projections. PR 1 made scramble.None.KeyAt return a
// shared zero block and documented every KeyAt result as read-only; PR 2's
// campaign shares one global mine pool across shards through shardMineView,
// whose MinedKey.Key slices alias the pool. A write through either corrupts
// state shared across goroutines and shards.
//
// The check is a forward intra-function taint pass: values produced by a
// KeyAt or shardMineView call (and slices/fields derived from them) must
// not appear as the target of an assignment, ++/--, or copy destination.
type keyatmutRule struct{}

func (keyatmutRule) ID() string { return "keyatmut" }

func (keyatmutRule) Doc() string {
	return "KeyAt/shardMineView results are read-only shared state and must not be written through"
}

func (r keyatmutRule) Check(m *Module, p *Package) []Finding {
	info := p.Info
	var out []Finding
	report := func(n ast.Node, what string) {
		out = append(out, Finding{
			Pos:  m.Fset.Position(n.Pos()),
			Rule: r.ID(),
			Msg:  "write through " + what + " result (documented read-only; copy it first)",
		})
	}

	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			tainted := make(map[types.Object]string) // var -> source func name

			// taintSource reports whether e is (or derives from) a call to
			// KeyAt/shardMineView or a tainted variable.
			var taintSource func(e ast.Expr) string
			taintSource = func(e ast.Expr) string {
				switch e := ast.Unparen(e).(type) {
				case *ast.CallExpr:
					if fn := staticCallee(info, e); fn != nil && readOnlyProducer(fn) {
						return fn.Name()
					}
				case *ast.Ident:
					if obj := info.Uses[e]; obj != nil {
						return tainted[obj]
					}
				case *ast.IndexExpr:
					return taintSource(e.X)
				case *ast.SliceExpr:
					return taintSource(e.X)
				case *ast.SelectorExpr:
					return taintSource(e.X)
				case *ast.StarExpr:
					return taintSource(e.X)
				}
				return ""
			}

			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					// Writes through tainted targets. A plain identifier on
					// the LHS is a rebind, not a write through the value.
					for _, lhs := range n.Lhs {
						if _, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
							continue
						}
						if src := taintSource(lhs); src != "" {
							report(n, src)
						}
					}
					// Taint propagation / clearing for identifier targets.
					for i, lhs := range n.Lhs {
						id, ok := ast.Unparen(lhs).(*ast.Ident)
						if !ok || id.Name == "_" {
							continue
						}
						obj := info.Defs[id]
						if obj == nil {
							obj = info.Uses[id]
						}
						if obj == nil {
							continue
						}
						src := ""
						if len(n.Rhs) == len(n.Lhs) {
							src = taintSource(n.Rhs[i])
						} else if len(n.Rhs) == 1 {
							src = taintSource(n.Rhs[0])
						}
						if src != "" {
							tainted[obj] = src
						} else {
							delete(tainted, obj)
						}
					}
				case *ast.IncDecStmt:
					if src := taintSource(n.X); src != "" {
						report(n, src)
					}
				case *ast.CallExpr:
					// copy(dst, ...) and append into a tainted backing array.
					if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) >= 1 {
						if b, isB := info.Uses[id].(*types.Builtin); isB && (b.Name() == "copy" || b.Name() == "append") {
							if src := taintSource(n.Args[0]); src != "" {
								report(n, src)
							}
						}
					}
				}
				return true
			})
		}
	}
	return out
}

// readOnlyProducer reports whether fn's results carry the read-only
// contract: any method named KeyAt, or core's shardMineView projection.
func readOnlyProducer(fn *types.Func) bool {
	switch fn.Name() {
	case "KeyAt":
		return true
	case "shardMineView":
		return true
	}
	return false
}
