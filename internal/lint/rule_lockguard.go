package lint

// lockguard: annotated mutex discipline (PR 8).
//
// A struct field whose doc (or trailing) comment carries the marker
//
//	// guarded by <mu>
//
// where <mu> is a sibling sync.Mutex/sync.RWMutex field, must only be
// accessed with that mutex held. The check is deliberately simple and
// over-approximate in the safe direction:
//
//   - An access inside a function that lexically acquires <mu> on the
//     same struct type earlier in its body is fine (Unlock positions are
//     ignored: a function that locks at all is assumed to manage its
//     critical sections).
//   - Otherwise the function "requires" the lock, and every path through
//     the call graph that reaches it must pass through a function that
//     acquires <mu>. Recursive cycles are assumed satisfied.
//   - Accesses through a struct instance freshly constructed in the same
//     function (composite literal or new) are exempt: nothing else can
//     see it yet.
//
// The marker is strict — "guarded by <ident>" must end the comment line —
// so prose like "guarded by the owning pool's mutex" is not parsed. A
// marker naming a non-mutex or missing sibling is itself a finding.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

var guardedByRE = regexp.MustCompile(`guarded by ([A-Za-z_]\w*)\s*\.?\s*$`)

type lockguardRule struct{}

func (lockguardRule) ID() string { return "lockguard" }
func (lockguardRule) Doc() string {
	return "fields annotated '// guarded by <mu>' must only be reachable with that mutex held (PR 8)"
}

func (lockguardRule) Check(m *Module, p *Package) []Finding {
	if m.lockguardF == nil {
		m.lockguardF = lockguardAnalyze(m)
	}
	return m.lockguardF[p.RelPath]
}

type guardKey struct {
	owner *types.TypeName
	mu    string
}

type guardInfo struct {
	key   guardKey
	field *types.Var
}

func lockguardAnalyze(m *Module) map[string][]Finding {
	out := make(map[string][]Finding)
	emit := func(rel string, pos token.Pos, msg string) {
		out[rel] = append(out[rel], Finding{Pos: m.Fset.Position(pos), Rule: "lockguard", Msg: msg})
	}

	// Pass 1: collect annotated fields and validate their guards.
	guards := make(map[*types.Var]guardInfo)
	for _, p := range m.Pkgs {
		for _, file := range p.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				owner, _ := p.Info.Defs[ts.Name].(*types.TypeName)
				if owner == nil {
					return true
				}
				for _, f := range st.Fields.List {
					mu := guardNameFromComments(f.Doc, f.Comment)
					if mu == "" {
						continue
					}
					if !structHasMutexField(st, p.Info, mu) {
						emit(p.RelPath, f.Pos(), fmt.Sprintf("'guarded by %s' on %s names no sync.Mutex/RWMutex sibling field", mu, ts.Name.Name))
						continue
					}
					for _, name := range f.Names {
						if v, ok := p.Info.Defs[name].(*types.Var); ok {
							guards[v] = guardInfo{key: guardKey{owner: owner, mu: mu}, field: v}
						}
					}
				}
				return true
			})
		}
	}
	if len(guards) == 0 {
		return out
	}

	g := m.graph()

	// Pass 2: which functions acquire which guards anywhere in their body.
	locksIn := make(map[*types.Func]map[guardKey]bool)
	type access struct {
		pkg *Package
		fn  *types.Func
		pos token.Pos
		gi  guardInfo
	}
	var pending []access // accesses with no lexically preceding acquire
	for _, p := range m.Pkgs {
		for _, file := range p.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				var acquires []struct {
					key guardKey
					pos token.Pos
				}
				fresh := freshInstances(p.Info, fd.Body)
				var accesses []access
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch x := n.(type) {
					case *ast.CallExpr:
						if key, ok := lockAcquire(p.Info, x); ok {
							acquires = append(acquires, struct {
								key guardKey
								pos token.Pos
							}{key, x.Pos()})
							if locksIn[fn] == nil {
								locksIn[fn] = make(map[guardKey]bool)
							}
							locksIn[fn][key] = true
						}
					case *ast.SelectorExpr:
						sel, ok := p.Info.Selections[x]
						if !ok || sel.Kind() != types.FieldVal {
							return true
						}
						v, ok := sel.Obj().(*types.Var)
						if !ok {
							return true
						}
						gi, ok := guards[v]
						if !ok {
							return true
						}
						if root := baseObject(p.Info, x.X); root != nil && fresh[root] {
							return true // instance not yet shared
						}
						accesses = append(accesses, access{pkg: p, fn: fn, pos: x.Sel.Pos(), gi: gi})
					}
					return true
				})
				for _, a := range accesses {
					held := false
					for _, acq := range acquires {
						if acq.key == a.gi.key && acq.pos < a.pos {
							held = true
							break
						}
					}
					if !held {
						pending = append(pending, a)
					}
				}
			}
		}
	}

	// Pass 3: an access without a local acquire is fine only if every
	// call-graph path reaching its function goes through an acquire.
	callers := make(map[*types.Func][]*types.Func)
	for caller, callees := range g.calls {
		for callee := range callees {
			callers[callee] = append(callers[callee], caller)
		}
	}
	for _, a := range pending {
		if !lockHeldOnAllPaths(a.fn, a.gi.key, locksIn, callers, make(map[*types.Func]bool)) {
			emit(a.pkg.RelPath, a.pos, fmt.Sprintf(
				"%s.%s is guarded by %s, but %s is reachable without %s held",
				a.gi.key.owner.Name(), a.gi.field.Name(), a.gi.key.mu, a.fn.Name(), a.gi.key.mu))
		}
	}
	return out
}

func lockHeldOnAllPaths(fn *types.Func, key guardKey, locksIn map[*types.Func]map[guardKey]bool, callers map[*types.Func][]*types.Func, seen map[*types.Func]bool) bool {
	if seen[fn] {
		return true // cycle: some acyclic path must still satisfy the check
	}
	seen[fn] = true
	cs := callers[fn]
	if len(cs) == 0 {
		return false // an entry point that never acquires
	}
	for _, c := range cs {
		if locksIn[c][key] {
			continue
		}
		if !lockHeldOnAllPaths(c, key, locksIn, callers, seen) {
			return false
		}
	}
	return true
}

// guardNameFromComments extracts the "guarded by <mu>" marker from a
// field's doc or trailing comment, if present.
func guardNameFromComments(groups ...*ast.CommentGroup) string {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			line := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if match := guardedByRE.FindStringSubmatch(line); match != nil {
				return match[1]
			}
		}
	}
	return ""
}

// structHasMutexField reports whether the struct declares a field named mu
// of type sync.Mutex or sync.RWMutex.
func structHasMutexField(st *ast.StructType, info *types.Info, mu string) bool {
	for _, f := range st.Fields.List {
		for _, name := range f.Names {
			if name.Name != mu {
				continue
			}
			v, ok := info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			t := v.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				obj := named.Obj()
				if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
					return true
				}
			}
		}
	}
	return false
}

// lockAcquire recognizes x.<mu>.Lock() / RLock() and returns the guard key
// (owning struct type + mutex field name).
func lockAcquire(info *types.Info, call *ast.CallExpr) (guardKey, bool) {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (fun.Sel.Name != "Lock" && fun.Sel.Name != "RLock") {
		return guardKey{}, false
	}
	muSel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr)
	if !ok {
		return guardKey{}, false
	}
	tv, ok := info.Types[muSel.X]
	if !ok || tv.Type == nil {
		return guardKey{}, false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return guardKey{}, false
	}
	return guardKey{owner: named.Obj(), mu: muSel.Sel.Name}, true
}

// freshInstances finds local variables assigned a freshly constructed
// value (composite literal, &literal, or new(T)) in this function.
func freshInstances(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	isFreshExpr := func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.CompositeLit:
			return true
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
				return ok
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "new" {
				_, isBuiltin := info.Uses[id].(*types.Builtin)
				return isBuiltin
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) || !isFreshExpr(as.Rhs[i]) {
				continue
			}
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					fresh[obj] = true
				}
			}
		}
		return true
	})
	return fresh
}

// baseObject peels selectors/index/star/paren down to the root object of
// an expression (the instance a field access goes through).
func baseObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
