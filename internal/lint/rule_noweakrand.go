package lint

import (
	"strconv"
	"strings"
)

// noweakrandRule bans math/rand outside internal/randtest and test files.
// The repo models cryptographic scramblers and measures keystream quality;
// a math/rand keystream slipped into a scrambler or engine would reproduce
// exactly the weak-scrambler failure the paper demonstrates, and silently
// pass every statistical smoke test. Deterministic simulation code that
// genuinely wants a seeded PRNG must say so with an ignore directive.
//
// (_test.go files are exempt structurally: the loader never parses them.)
type noweakrandRule struct{}

func (noweakrandRule) ID() string { return "noweakrand" }

func (noweakrandRule) Doc() string {
	return "math/rand is forbidden outside internal/randtest and _test.go files"
}

func (r noweakrandRule) Check(m *Module, p *Package) []Finding {
	if p.RelPath == "internal/randtest" {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" || strings.HasPrefix(path, "math/rand/") {
				out = append(out, Finding{
					Pos:  m.Fset.Position(imp.Pos()),
					Rule: r.ID(),
					Msg:  "import of " + path + " outside internal/randtest (use crypto/rand, or annotate deterministic-simulation use)",
				})
			}
		}
	}
	return out
}
