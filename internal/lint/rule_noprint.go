package lint

import (
	"go/ast"
	"strings"
)

// noprintRule keeps the library packages silent and clock-free: PR 2 routed
// all pipeline instrumentation through internal/obs (tracers, stage timers,
// counters), so internal/* packages must not print to the process's streams
// (fmt.Print*) or log (log.*), and must not read the wall clock (time.Now)
// — timing is the tracer's job, and hidden clock reads make the simulation
// non-reproducible. Commands (cmd/*), examples, and the obs package itself
// are exempt.
type noprintRule struct{}

func (noprintRule) ID() string { return "noprint" }

func (noprintRule) Doc() string {
	return "internal packages must use internal/obs instead of fmt.Print*/log.*/time.Now (PR 2 contract)"
}

func (r noprintRule) Check(m *Module, p *Package) []Finding {
	if !strings.HasPrefix(p.RelPath, "internal/") || p.RelPath == "internal/obs" {
		return nil
	}
	info := p.Info
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := staticCallee(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			var msg string
			switch fn.Pkg().Path() {
			case "fmt":
				if strings.HasPrefix(fn.Name(), "Print") {
					msg = "fmt." + fn.Name() + " in a library package (return the value or report through internal/obs)"
				}
			case "log":
				msg = "log." + fn.Name() + " in a library package (report through internal/obs)"
			case "time":
				if fn.Name() == "Now" {
					msg = "time.Now in a library package (timing belongs to internal/obs tracers)"
				}
			}
			if msg != "" {
				out = append(out, Finding{
					Pos:  m.Fset.Position(call.Pos()),
					Rule: r.ID(),
					Msg:  msg,
				})
			}
			return true
		})
	}
	return out
}
