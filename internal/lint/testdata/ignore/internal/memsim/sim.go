// Package memsim exercises //lint:ignore suppression: the math/rand
// import below would be a noweakrand finding without the directive.
package memsim

import (
	//lint:ignore noweakrand fixture: seeded deterministic simulation
	"math/rand"
)

// Fill fills b from a seeded weak PRNG.
func Fill(b []byte, seed int64) {
	rand.New(rand.NewSource(seed)).Read(b)
}
