// Package scramble exercises trailing-comment suppression of a hotxor
// finding.
package scramble

func xorInto(dst, a, b []byte) {
	for i := range dst {
		dst[i] = a[i] ^ b[i] //lint:ignore hotxor fixture: deliberate byte loop
	}
}

var _ = xorInto
