package scramble

// Three malformed directives: each must be reported under "lintdirective".

//lint:ignore
var a = 1

//lint:ignore nosuchrule some reason
var b = 2

//lint:ignore noweakrand
var c = 3

var _ = a + b + c
