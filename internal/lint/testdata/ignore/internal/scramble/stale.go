package scramble

// A stale suppression: the hotxor exception below once excused a scalar
// XOR loop that has since been rewritten with the word kernels, so the
// directive no longer suppresses anything and must be reported under
// lintstale.

//lint:ignore hotxor the scalar loop here moved to bitutil.XORWords
var rewritten = 0

var _ = rewritten
