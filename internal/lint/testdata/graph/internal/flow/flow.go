// Package flow is the call-graph fixture: method values, defer/go
// attribution, and interface dispatch through an embedded type.
package flow

// Runner owns the analysis entry point referenced as a method value.
type Runner struct{ n int }

// Run is referenced both directly and as a bound method value.
func (r *Runner) Run() int { return tick() }

func tick() int { return 1 }

// Stepper is dispatched through below; Machine implements it only via the
// method promoted from its embedded base.
type Stepper interface {
	Step() int
}

type base struct{ n int }

func (b *base) Step() int { return tick() }

// Machine picks up Step by embedding base.
type Machine struct {
	base
}

// Drive dispatches through the interface: the edge must fan out to the
// promoted implementation on base.
func Drive(s Stepper) int { return s.Step() }

// Launch runs callees under defer and go: both must be attributed to
// Launch itself, not to a synthetic frame.
func Launch(r *Runner) {
	defer r.Run()
	go func() {
		tick()
	}()
}

// Bind references Run as a method value without calling it; the reference
// alone is a conservative call edge.
func Bind(r *Runner) func() int {
	f := r.Run
	return f
}

var _ Stepper = &Machine{}
