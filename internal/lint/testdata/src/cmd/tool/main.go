// Command tool shows that commands may print: not a finding.
package main

import "fmt"

func main() {
	fmt.Println("ok")
}
