// Package keys is a keyatmut fixture: KeyAt results are documented
// read-only shared state, so writes through them must be flagged.
package keys

// Scrambler mimics the scramble.Scrambler KeyAt contract.
type Scrambler struct{ k []byte }

// KeyAt returns shared state the caller must not write through.
func (s *Scrambler) KeyAt(off uint64) []byte { return s.k }

func mutateDirect(s *Scrambler) {
	s.KeyAt(0)[0] = 1 // want keyatmut
}

func mutateViaVar(s *Scrambler) {
	k := s.KeyAt(0)
	k[0] ^= 0xFF // want keyatmut
}

func mutateIncDec(s *Scrambler) {
	s.KeyAt(0)[0]++ // want keyatmut
}

func copyOver(s *Scrambler, src []byte) {
	copy(s.KeyAt(0), src) // want keyatmut
}

// mutateCopy copies the key first — the sanctioned pattern, not a finding.
func mutateCopy(s *Scrambler) {
	k := append([]byte(nil), s.KeyAt(0)...)
	k[0] = 1
}

// readOnly only reads through the result: not a finding.
func readOnly(s *Scrambler, dst []byte) {
	copy(dst, s.KeyAt(0))
}

// rebind reassigns the variable itself, not the shared bytes: not a finding.
func rebind(s *Scrambler) {
	k := s.KeyAt(0)
	k = []byte{1, 2}
	k[0] = 3
}

var _ = mutateDirect
var _ = mutateViaVar
var _ = mutateIncDec
var _ = copyOver
var _ = mutateCopy
var _ = readOnly
var _ = rebind
