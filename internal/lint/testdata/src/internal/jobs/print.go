// Package jobs is a noprint fixture: the daemon's job machinery is a
// library package and must stay silent and clock-free (timestamps come
// from an injected clock; reporting goes through internal/obs).
package jobs

import (
	"log"
	"time"
)

// Finish stamps and logs directly: both are findings.
func Finish(id string) time.Time {
	log.Printf("job %s done", id) // want noprint
	return time.Now()             // want noprint
}

// FinishWith takes the clock as a dependency, the sanctioned shape: the
// bare time.Now VALUE at the default site is not a call, not a finding.
func FinishWith(clock func() time.Time) time.Time {
	if clock == nil {
		clock = time.Now
	}
	return clock()
}
