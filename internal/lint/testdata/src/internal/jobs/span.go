package jobs

import (
	"log"
	"time"

	"coldboot/internal/obs"
)

// spanStamped opens a telemetry span but reads the wall clock and logs
// around it directly: both are findings — span timing and reporting
// belong to internal/obs.
func spanStamped(tr obs.Tracer, id string) time.Time {
	sp := tr.StartSpan("job", obs.A("job", id))
	defer sp.End()
	log.Printf("job %s span open", id) // want noprint
	return time.Now()                  // want noprint
}

// spanObserved routes the same timing through the obs monotonic clock and
// span attributes: the sanctioned shape, no findings.
func spanObserved(tr obs.Tracer, id string) int64 {
	sp := tr.StartSpan("job", obs.A("job", id))
	defer sp.End()
	start := obs.Now()
	sp.SetAttr("state", "running")
	tr.Observe("jobs.run_ns", obs.Since(start))
	return obs.Since(start)
}

var _ = spanStamped
var _ = spanObserved
