// Package guarded is the lockguard fixture: the items field is annotated
// as guarded, and the methods below cover locally-held, caller-held,
// freshly-constructed, and unguarded access shapes.
package guarded

import "sync"

// Store is a mutex-protected registry.
type Store struct {
	mu sync.Mutex
	// guarded by mu
	items map[string]int
	// guarded by missing
	bad int // want lockguard
}

// NewStore builds the registry: accesses to a freshly constructed
// instance need no lock, nothing else can see it yet.
func NewStore() *Store {
	s := &Store{}
	s.items = make(map[string]int)
	return s
}

// Get reads items with the lock held locally.
func (s *Store) Get(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.items[key]
}

// Unsafe reads items with no lock anywhere on its call paths.
func (s *Store) Unsafe(key string) int {
	return s.items[key] // want lockguard
}

// sumLocked requires its caller to hold the lock.
func (s *Store) sumLocked() int {
	total := 0
	for _, v := range s.items {
		total += v
	}
	return total
}

// Sum is sumLocked's only caller and acquires the lock first: the
// caller-held path satisfies the rule.
func (s *Store) Sum() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sumLocked()
}
