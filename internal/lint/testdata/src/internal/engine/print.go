// Package engine is a noprint fixture: library packages must not print,
// log, or read the wall clock.
package engine

import (
	"fmt"
	"log"
	"time"
)

func debugDump(n int) {
	fmt.Println("blocks:", n)        // want noprint
	log.Printf("blocks %d", n)       // want noprint
	if t := time.Now(); t.IsZero() { // want noprint
		return
	}
}

// format builds a string without touching the process streams: not a finding.
func format(n int) string {
	return fmt.Sprintf("%d blocks", n)
}

var _ = debugDump
var _ = format
