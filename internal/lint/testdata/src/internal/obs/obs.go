// Package obs is a fixture stub of the real internal/obs telemetry
// package: just enough surface (spans, the monotonic clock, the Nop
// tracer) for sibling fixtures to compile against. Like the real package
// it is exempt from the noprint rule — timing is its job — so the
// time.Now calls below must not fire.
package obs

import "time"

// Attr is a string key/value span attribute.
type Attr struct{ Key, Value string }

// A builds an Attr.
func A(k, v string) Attr { return Attr{Key: k, Value: v} }

// Span is a live span handle.
type Span interface {
	End()
	SetAttr(key, value string)
	Child(name string, attrs ...Attr) Span
}

// Tracer is the telemetry hook interface.
type Tracer interface {
	StartSpan(name string, attrs ...Attr) Span
	Count(name string, delta int64)
	Progress(stage string, done, total int64)
	Observe(name string, value int64)
}

var timebase = time.Now()

// Now returns nanoseconds on the package's monotonic clock.
func Now() int64 { return int64(time.Since(timebase)) }

// Since returns the nanoseconds elapsed after a Now() reading.
func Since(start int64) int64 { return Now() - start }

type nopSpan struct{}

func (nopSpan) End()                       {}
func (nopSpan) SetAttr(string, string)     {}
func (nopSpan) Child(string, ...Attr) Span { return nopSpan{} }

type nopTracer struct{}

func (nopTracer) StartSpan(string, ...Attr) Span { return nopSpan{} }
func (nopTracer) Count(string, int64)            {}
func (nopTracer) Progress(string, int64, int64)  {}
func (nopTracer) Observe(string, int64)          {}

// Nop discards everything.
var Nop Tracer = nopTracer{}
