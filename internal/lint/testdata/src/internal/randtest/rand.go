// Package randtest is the sanctioned home for math/rand: not a finding.
package randtest

import "math/rand"

// Stream returns n bytes of seeded weak keystream.
func Stream(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	r.Read(out)
	return out
}
