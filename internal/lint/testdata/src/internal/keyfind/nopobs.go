package keyfind

import "coldboot/internal/obs"

// scanInstrumented is the PR 5 contract in fixture form: a per-block hot
// loop carrying full telemetry (span attrs, per-chunk Observe, Progress)
// through the Nop tracer must stay finding-free — the instrumentation
// neither allocates in the loop nor reads the wall clock, so tracing-off
// costs nothing. No want markers: nothing here may fire.
func scanInstrumented(image []byte, tr obs.Tracer) int {
	if tr == nil {
		tr = obs.Nop
	}
	sp := tr.StartSpan("hunt.worker", obs.A("offset", "0x0"))
	defer sp.End()
	hits := 0
	total := int64(len(image) / 64)
	for b := 0; b < len(image)/64; b++ {
		start := obs.Now()
		chunk := image[b*64 : (b+1)*64]
		if chunk[0] != 0 {
			hits++
		}
		tr.Observe("keyfind.chunk_ns", obs.Since(start))
		tr.Progress("keyfind", int64(b+1), total)
	}
	return hits
}

var _ = scanInstrumented
