// Package keyfind is an allocloop fixture: allocations inside the
// per-block hot loops of the scan packages must be flagged.
package keyfind

// scanBlocks allocates a fresh buffer every block.
func scanBlocks(dump []byte) [][]byte {
	var out [][]byte
	for b := 0; b < len(dump)/64; b++ {
		buf := make([]byte, 64) // want allocloop
		copy(buf, dump[b*64:(b+1)*64])
		out = append(out, buf) // accumulator append: not a finding
	}
	return out
}

// scanBlocksPooled hoists the buffer out of the loop: not a finding.
func scanBlocksPooled(dump []byte) int {
	buf := make([]byte, 64)
	total := 0
	for b := 0; b < len(dump)/64; b++ {
		copy(buf, dump[b*64:(b+1)*64])
		total += int(buf[0])
	}
	return total
}

// freshLiteral appends onto a fresh composite literal every block.
func freshLiteral(dump []byte) [][]byte {
	var out [][]byte
	for b := 0; b < len(dump)/64; b++ {
		out = append(out, append([]byte{}, dump[b*64:(b+1)*64]...)) // want allocloop
	}
	return out
}

var _ = scanBlocks
var _ = scanBlocksPooled
var _ = freshLiteral
