// Package secret is the keyflow fixture's sanitizer stub: the analysis
// treats this package as opaque, so calls into it launder taint (and
// Bytes.Reveal is itself a configured source).
package secret

// Wipe zeroes a key buffer.
func Wipe(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// Fingerprint returns a short non-invertible identifier for b.
func Fingerprint(b []byte) string {
	var acc byte
	for _, x := range b {
		acc ^= x
	}
	return "sha256:" + string('a'+rune(acc%26))
}

// Bytes owns a secret buffer and redacts itself when formatted.
type Bytes struct {
	buf []byte
	fp  string
}

// New wraps key material in the redacting container.
func New(b []byte) *Bytes {
	return &Bytes{buf: b, fp: Fingerprint(b)}
}

// Reveal hands back the raw bytes (a keyflow source at call sites).
func (s *Bytes) Reveal() []byte { return s.buf }

// Destroy wipes and drops the buffer.
func (s *Bytes) Destroy() {
	Wipe(s.buf)
	s.buf = nil
}

// Destroyed reports whether the buffer is gone.
func (s *Bytes) Destroyed() bool { return s.buf == nil }

// String redacts: only the fingerprint escapes through formatting.
func (s *Bytes) String() string { return s.fp }
