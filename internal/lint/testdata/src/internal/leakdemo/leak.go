// Package leakdemo is the keyflow fixture: every function handles
// recovered key material, and the want markers pin exactly which escapes
// the taint analysis must catch — and which sanctioned shapes it must
// leave alone.
package leakdemo

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"

	"coldboot/internal/aes"
	"coldboot/internal/obs"
	"coldboot/internal/secret"
)

// FormatLeak interpolates a recovered master straight into a string.
func FormatLeak(schedule []byte) string {
	master := aes.RecoverMasterKey(schedule)
	return fmt.Sprintf("master=%x", master) // want keyflow
}

// ErrorLeak smuggles key bytes into an error value.
func ErrorLeak(schedule []byte) error {
	master := aes.RecoverMasterKey(schedule)
	return fmt.Errorf("no slot for key %x", master) // want keyflow
}

// LogLeak logs a master: the seeded leak. Both the taint rule and the
// library-silence rule must fire.
func LogLeak(schedule []byte) {
	master := aes.RecoverMasterKey(schedule)
	log.Printf("recovered master %x", master) // want keyflow noprint
}

// ConvertLeak retains the master in an unwipeable string copy.
func ConvertLeak(schedule []byte) string {
	master := aes.RecoverMasterKey(schedule)
	return string(master) // want keyflow
}

// MapStoreLeak retains the converted key bytes as a map key.
func MapStoreLeak(seen map[string]bool, schedule []byte) {
	master := aes.RecoverMasterKey(schedule)
	seen[string(master)] = true // want keyflow
}

// describe leaks its parameter: the taint arrives interprocedurally, down
// from DescribeLeak's recovered master into the parameter.
func describe(b []byte) string {
	return fmt.Sprint(b) // want keyflow
}

// DescribeLeak hands a master to a helper that formats it.
func DescribeLeak(schedule []byte) string {
	return describe(aes.RecoverMasterKey(schedule))
}

// derive launders nothing: returning key material through a helper keeps
// the callers' copies tainted.
func derive(schedule []byte) []byte {
	return aes.ExpandKeyBytes(aes.RecoverMasterKey(schedule))
}

// HexLeak re-encodes the derived schedule through a propagator; the hex
// text is still the key.
func HexLeak(schedule []byte) string {
	text := hex.EncodeToString(derive(schedule))
	return fmt.Sprint("key ", text) // want keyflow
}

// Export carries key bytes toward a JSON egress; the composite literal
// keeps the whole document tainted.
type Export struct {
	Name string
	Key  []byte
}

// JSONLeak encodes the key-bearing document onto an HTTP response.
func JSONLeak(w http.ResponseWriter, schedule []byte) error {
	doc := Export{Name: "hit", Key: aes.RecoverMasterKey(schedule)}
	return json.NewEncoder(w).Encode(doc) // want keyflow
}

// WriteLeak ships raw key bytes over an HTTP response body.
func WriteLeak(w http.ResponseWriter, schedule []byte) {
	w.Write(aes.RecoverMasterKey(schedule)) // want keyflow
}

// FileLeak writes key bytes to an open file.
func FileLeak(f *os.File, schedule []byte) error {
	_, err := f.Write(aes.RecoverMasterKey(schedule)) // want keyflow
	return err
}

// WriteFileLeak persists key bytes to disk in one call.
func WriteFileLeak(path string, schedule []byte) error {
	return os.WriteFile(path, aes.RecoverMasterKey(schedule), 0o600) // want keyflow
}

// RevealLeak formats the output of the sanctioned container's Reveal:
// unwrapping the secret re-taints it.
func RevealLeak(sb *secret.Bytes) string {
	return fmt.Sprintf("%x", sb.Reveal()) // want keyflow
}

// SpanAttrLeak ships a recovered master into a span attribute: span attrs
// are telemetry that crosses the fleet wire worker→coordinator, so hex
// re-encoding launders nothing.
func SpanAttrLeak(span obs.Span, schedule []byte) {
	master := aes.RecoverMasterKey(schedule)
	span.SetAttr("master", hex.EncodeToString(master)) // want keyflow
}

// AttrBuildLeak hands a key-bearing attribute to a child span; the attr
// rides the span tree onto the telemetry wire.
func AttrBuildLeak(span obs.Span, schedule []byte) {
	master := aes.RecoverMasterKey(schedule)
	span.Child("shard", obs.Attr{Key: "master", Value: hex.EncodeToString(master)}) // want keyflow
}

// SpanAttrFingerprint is the sanctioned telemetry shape: a sha256
// fingerprint identifies the key without revealing it.
func SpanAttrFingerprint(span obs.Span, schedule []byte) {
	master := aes.RecoverMasterKey(schedule)
	span.SetAttr("key", secret.Fingerprint(master))
}
