package leakdemo

// The sanctioned shapes: fingerprints, map-index reads, and the redacting
// secret.Bytes container. None of these may fire.

import (
	"fmt"

	"coldboot/internal/aes"
	"coldboot/internal/secret"
)

// FingerprintReport launders the master through internal/secret: calls
// into the sanitizer package return untainted data.
func FingerprintReport(schedule []byte) string {
	master := aes.RecoverMasterKey(schedule)
	defer secret.Wipe(master)
	return fmt.Sprintf("key %s", secret.Fingerprint(master))
}

// SeenBefore converts the master only as a map index read and a delete
// key — the compiler does not retain either string.
func SeenBefore(seen map[string]int, schedule []byte) bool {
	master := aes.RecoverMasterKey(schedule)
	defer secret.Wipe(master)
	if _, ok := seen[string(master)]; ok {
		delete(seen, string(master))
		return true
	}
	return false
}

// Wrapped formats the redacting container itself: secret.Bytes prints its
// fingerprint, never the key, so passing it to fmt is fine.
func Wrapped(schedule []byte) string {
	sb := secret.New(aes.RecoverMasterKey(schedule))
	return fmt.Sprint("key ", sb)
}
