// Package memsim is a noweakrand fixture: math/rand outside
// internal/randtest must be flagged at the import.
package memsim

import (
	"math/rand" // want noweakrand
)

// Fill fills b from a seeded weak PRNG.
func Fill(b []byte, seed int64) {
	r := rand.New(rand.NewSource(seed))
	r.Read(b)
}
