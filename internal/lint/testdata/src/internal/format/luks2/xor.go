// Package luks2 is a fixture proving the gating reaches the format
// subpackages: a byte-XOR loop here is as hot as one in internal/scramble.
package luks2

// descrambleHeader XORs a cached header block byte at a time.
func descrambleHeader(dst, stored, key []byte) {
	for i := range dst {
		dst[i] = stored[i] ^ key[i] // want hotxor
	}
}

// parseLabel walks a bounded, XOR-free header field: not a finding.
func parseLabel(hdr []byte) string {
	end := 0
	for end < len(hdr) && hdr[end] != 0 {
		end++
	}
	return string(hdr[:end])
}

var (
	_ = descrambleHeader
	_ = parseLabel
)
