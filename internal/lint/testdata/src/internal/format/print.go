package format

import "fmt"

// reportHit prints from a library package instead of reporting through
// internal/obs.
func reportHit(off int) {
	fmt.Println("hit at", off) // want noprint
}

// describeHit returns the value instead: not a finding.
func describeHit(off int) string {
	return fmt.Sprintf("hit at %#x", off)
}

var (
	_ = reportHit
	_ = describeHit
)
