// Package format is a fixture for the format-subsystem gating: the
// hot-path rules (ctxthread, allocloop, hotxor) apply to internal/format
// and its subpackages exactly as they do to internal/core.
package format

import "context"

// ScanImage reaches a dump-block loop but takes no context.
func ScanImage(image []byte) int { // want ctxthread
	total := 0
	for b := 0; b < len(image)/64; b++ {
		total += int(image[b*64 : (b+1)*64][0])
	}
	return total
}

// ScanImageContext threads the context properly: not a finding.
func ScanImageContext(ctx context.Context, image []byte) (int, error) {
	total := 0
	for b := 0; b < len(image)/64; b++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		total += int(image[b*64 : (b+1)*64][0])
	}
	return total, nil
}

// probeAll allocates a fresh scratch buffer for every probed block.
func probeAll(image []byte) int {
	total := 0
	for b := 0; b < len(image)/64; b++ {
		buf := make([]byte, 64) // want allocloop
		copy(buf, image[b*64:(b+1)*64])
		total += int(buf[0])
	}
	return total
}

// probePooled reuses one hoisted buffer across blocks: not a finding.
func probePooled(image []byte) int {
	buf := make([]byte, 64)
	total := 0
	for b := 0; b < len(image)/64; b++ {
		copy(buf, image[b*64:(b+1)*64])
		total += int(buf[0])
	}
	return total
}

var (
	_ = ScanImage
	_ = ScanImageContext
	_ = probeAll
	_ = probePooled
)
