// Package fleet is a fixture for the distribution-layer gating: shard
// scans must stay cancellable end to end (ctxthread), worker goroutines
// must carry a stop path (goroleak), merged key material must not leak
// into logs or errors (keyflow), and the coordinator's merge loop is on
// the per-block hot path (allocloop).
package fleet

import (
	"context"
	"fmt"

	"coldboot/internal/aes"
	"coldboot/internal/secret"
)

// ScanShard walks a dump shard block by block but takes no context: a
// worker could never abandon the shard when its lease expires.
func ScanShard(dump []byte) int { // want ctxthread
	total := 0
	for b := 0; b < len(dump)/64; b++ {
		total += int(dump[b*64 : (b+1)*64][0])
	}
	return total
}

// ScanShardContext threads the lease's context properly: not a finding.
func ScanShardContext(ctx context.Context, dump []byte) (int, error) {
	total := 0
	for b := 0; b < len(dump)/64; b++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		total += int(dump[b*64 : (b+1)*64][0])
	}
	return total, nil
}

// mergeFresh allocates a scratch buffer for every merged block.
func mergeFresh(dump []byte) int {
	total := 0
	for b := 0; b < len(dump)/64; b++ {
		buf := make([]byte, 64) // want allocloop
		copy(buf, dump[b*64:(b+1)*64])
		total += int(buf[0])
	}
	return total
}

// mergePooled reuses one buffer across blocks: not a finding.
func mergePooled(dump []byte) int {
	buf := make([]byte, 64)
	total := 0
	for b := 0; b < len(dump)/64; b++ {
		copy(buf, dump[b*64:(b+1)*64])
		total += int(buf[0])
	}
	return total
}

// Heartbeat spins a lease-renewal goroutine that can never be told to
// stop: when the coordinator drops the shard the goroutine leaks.
func Heartbeat(beats chan<- int) {
	go func() { // want goroleak
		for i := 0; ; i++ {
			beats <- i
		}
	}()
}

// HeartbeatCtx renews under the lease's context: not a finding.
func HeartbeatCtx(ctx context.Context, beats chan<- int) {
	go func() {
		for i := 0; ; i++ {
			select {
			case <-ctx.Done():
				return
			case beats <- i:
			}
		}
	}()
}

// ReportShard interpolates a recovered master into a worker's shard
// report: key material must cross the fleet as secret.Bytes, never as
// formatted text.
func ReportShard(schedule []byte) string {
	master := aes.RecoverMasterKey(schedule)
	return fmt.Sprintf("shard hit master=%x", master) // want keyflow
}

// ReportShardRedacted ships the sanctioned fingerprint form instead: not
// a finding.
func ReportShardRedacted(schedule []byte) string {
	return "shard hit " + secret.Fingerprint(aes.RecoverMasterKey(schedule))
}

var (
	_ = mergeFresh
	_ = mergePooled
)
