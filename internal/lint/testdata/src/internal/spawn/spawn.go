// Package spawn is the goroleak fixture: goroutines in internal packages
// must carry a termination path (context, WaitGroup, or channel), and a
// dynamic function value cannot be proven to stop.
package spawn

import (
	"context"
	"sync"
)

// LeakForever spins a worker that can never be told to stop.
func LeakForever(n *int) {
	go func() { // want goroleak
		for {
			*n++
		}
	}()
}

// spin is the named equivalent of the unbounded literal.
func spin(n *int) {
	for {
		*n++
	}
}

// LeakNamed launches a named worker with no stop signal.
func LeakNamed(n *int) {
	go spin(n) // want goroleak
}

// LeakDynamic launches through a function value: the launcher cannot
// prove termination for a callee it does not know.
func LeakDynamic(fn func()) {
	go fn() // want goroleak
}

// OKBounded launches a loop-free body: bounded by construction.
func OKBounded(n *int) {
	go func() {
		*n++
	}()
}

// OKCtx threads cancellation through a context.
func OKCtx(ctx context.Context, ticks chan<- int) {
	go func() {
		for i := 0; ; i++ {
			select {
			case <-ctx.Done():
				return
			case ticks <- i:
			}
		}
	}()
}

// OKWG is waited for by its launcher.
func OKWG(work []int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range work {
		}
	}()
	wg.Wait()
}

// OKRange drains a channel its producer closes.
func OKRange(events <-chan int) {
	go func() {
		for range events {
		}
	}()
}

// OKReceive blocks on an explicit done channel each iteration.
func OKReceive(done <-chan struct{}, ticks chan<- int) {
	go func() {
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			case ticks <- i:
			}
		}
	}()
}
