// verifyloop.go is the allocloop fixture for per-candidate verify/repair
// retry loops: loops that re-invoke a verification kernel (scheduleScore,
// predictAndCompare, xorDistance — stubbed here with the real names) must
// not allocate per attempt.
package core

// scheduleScore stubs the hunt's verification kernel (matched by name).
func scheduleScore(dump, sched []byte) float64 {
	if len(dump) < len(sched) {
		return 0
	}
	d := 0
	for i := range sched {
		d += int(dump[i] ^ sched[i])
	}
	return 1 - float64(d)/float64(len(sched)*255)
}

// xorDistance stubs the per-block distance kernel (matched by name).
func xorDistance(a, b []byte) int {
	d := 0
	for i := range a {
		d += int(a[i] ^ b[i])
	}
	return d
}

// tryCandidate reaches the kernel through one helper hop.
func tryCandidate(dump, sched []byte) float64 {
	return scheduleScore(dump, sched)
}

func expand(dst, master []byte) {
	for i := range dst {
		dst[i] = master[i%len(master)]
	}
}

// repairRetry re-expands into a fresh buffer on every flip attempt.
func repairRetry(dump, master []byte) float64 {
	best := 0.0
	for bit := 0; bit < 256; bit++ {
		sched := make([]byte, 240) // want allocloop
		expand(sched, master)
		if s := tryCandidate(dump, sched); s > best {
			best = s
		}
	}
	return best
}

// repairRetryFresh snapshots the candidate through a fresh literal per
// attempt instead of reusing a scratch copy.
func repairRetryFresh(dump, master []byte) float64 {
	best := 0.0
	sched := make([]byte, 240)
	for bit := 0; bit < 256; bit++ {
		cand := append([]byte{}, master...) // want allocloop
		expand(sched, cand)
		if s := scheduleScore(dump, sched); s > best {
			best = s
		}
	}
	return best
}

// distanceRetry reaches a different kernel (xorDistance) directly.
func distanceRetry(probe, ref []byte) int {
	best := 1 << 30
	for shift := 0; shift < 64; shift++ {
		buf := make([]byte, 64) // want allocloop
		copy(buf, probe)
		if d := xorDistance(buf, ref); d < best {
			best = d
		}
	}
	return best
}

// repairRetryHoisted reuses one scratch buffer across attempts: not a
// finding.
func repairRetryHoisted(dump, master []byte) float64 {
	sched := make([]byte, 240)
	best := 0.0
	for bit := 0; bit < 256; bit++ {
		expand(sched, master)
		if s := tryCandidate(dump, sched); s > best {
			best = s
		}
	}
	return best
}

// outerHoist allocates in the loop ABOVE the retry loop — the sanctioned
// hoist pattern. The outer loop's own body never calls a kernel (the call
// sits in the nested retry loop, a separate context), so neither loop is a
// finding.
func outerHoist(dump, master []byte) float64 {
	best := 0.0
	for w := 0; w < 8; w++ {
		buf := make([]byte, 240)
		for bit := 0; bit < 32; bit++ {
			expand(buf, master)
			if s := scheduleScore(dump, buf); s > best {
				best = s
			}
		}
	}
	return best
}

// scanStage contains a dump-block scan that invokes the kernel: it is the
// coarse-grained stage boundary, so kernel reachability must not propagate
// through it.
func scanStage(dump []byte) float64 {
	best := 0.0
	for b := 0; b+240 <= len(dump); b += 64 {
		sub := dump[b : b+240]
		if s := scheduleScore(sub, sub[:240]); s > best {
			best = s
		}
	}
	return best
}

// campaignLoop re-runs the whole scan stage per shard. Its per-iteration
// allocation amortizes over a full dump scan — shard-grained, not
// per-candidate: not a finding.
func campaignLoop(dump []byte) []float64 {
	var out []float64
	for shard := 0; shard < 4; shard++ {
		tag := make([]byte, 8)
		tag[0] = byte(shard)
		out = append(out, scanStage(dump))
	}
	return out
}
