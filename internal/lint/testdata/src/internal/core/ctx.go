// Package core is a ctxthread fixture: exported functions here that reach
// a dump-block loop must thread context.Context.
package core

import "context"

// ScanAll reaches a dump-block loop with no context parameter.
func ScanAll(dump []byte) int { // want ctxthread
	total := 0
	for b := 0; b < len(dump)/64; b++ {
		total += int(dump[b*64 : (b+1)*64][0])
	}
	return total
}

// ScanAllContext threads the context properly: not a finding.
func ScanAllContext(ctx context.Context, dump []byte) (int, error) {
	total := 0
	for b := 0; b < len(dump)/64; b++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		total += int(dump[b*64 : (b+1)*64][0])
	}
	return total, nil
}

// ScanCompat is the sanctioned compat bridge — delegates to the Context
// sibling with context.Background() as the first argument. Not a finding.
func ScanCompat(dump []byte) int {
	out, _ := ScanAllContext(context.Background(), dump)
	return out
}

// ScanSneaky takes a context but then manufactures its own.
func ScanSneaky(ctx context.Context, dump []byte) int {
	out, _ := ScanAllContext(context.Background(), dump) // want ctxthread
	return out
}

// walkBlocks is the unexported helper Indirect reaches the loop through.
func walkBlocks(dump []byte) int {
	total := 0
	for b := 0; b < len(dump)/64; b++ {
		total += int(dump[b*64 : (b+1)*64][0])
	}
	return total
}

// Indirect reaches a dump-block loop transitively through walkBlocks.
func Indirect(dump []byte) int { // want ctxthread
	return walkBlocks(dump)
}

// Bounded does no dump-scale work: not a finding.
func Bounded(block []byte) int {
	total := 0
	for i := range block {
		total += int(block[i])
	}
	return total
}
