package core

// keyflow field-source fixture: FoundKey.Master mirrors the real attack
// result and is configured as key material at rest — any read of the
// field is tainted, no producer call needed.

import "fmt"

// FoundKey is a recovered key with its placement score.
type FoundKey struct {
	Master []byte
	Score  float64
}

// describeKey reads the secret field into a format call.
func describeKey(k FoundKey) string {
	return fmt.Sprintf("%.2f %x", k.Score, k.Master) // want keyflow
}

// scoreKey touches only the non-secret sibling field: per-field taint
// must not bleed across the struct.
func scoreKey(k FoundKey) string {
	return fmt.Sprintf("%.2f", k.Score)
}

var (
	_ = describeKey
	_ = scoreKey
)
