// Package wal is a fixture for the durability-layer gating: the journal
// sits under every job mutation, so it is a library package (noprint —
// silent, clock-free) and its replay path walks whole logs block by block
// (allocloop).
package wal

import (
	"log"
	"time"
)

// replayBlocks verifies a recovered dump image frame by frame, allocating
// a fresh scratch buffer per block: exactly the per-block allocation the
// pooled-buffer contract bans.
func replayBlocks(dump []byte) int {
	total := 0
	for b := 0; b < len(dump)/64; b++ {
		buf := make([]byte, 64) // want allocloop
		copy(buf, dump[b*64:(b+1)*64])
		total += int(buf[0])
	}
	return total
}

// replayBlocksPooled hoists the scratch buffer out of the loop: not a
// finding.
func replayBlocksPooled(dump []byte) int {
	buf := make([]byte, 64)
	total := 0
	for b := 0; b < len(dump)/64; b++ {
		copy(buf, dump[b*64:(b+1)*64])
		total += int(buf[0])
	}
	return total
}

// Append stamps and logs directly: the journal is a library and must do
// neither.
func Append(frame []byte) time.Time {
	log.Printf("appended %d bytes", len(frame)) // want noprint
	return time.Now()                           // want noprint
}

// AppendAt takes the clock as a dependency, the sanctioned shape.
func AppendAt(frame []byte, clock func() time.Time) time.Time {
	if clock == nil {
		clock = time.Now
	}
	_ = frame
	return clock()
}

var (
	_ = replayBlocks
	_ = replayBlocksPooled
)
