// Package service is a ctxthread fixture for handler-rooted paths: HTTP
// handlers reaching dump-block loops must scan under r.Context(), and
// plain exported entry points still need an explicit context parameter.
package service

import (
	"context"
	"io"
	"net/http"
)

// ScanAll is a plain exported scan API without a context: still a finding
// in the service package.
func ScanAll(dump []byte) int { // want ctxthread
	total := 0
	for b := 0; b < len(dump)/64; b++ {
		total += int(dump[b*64 : (b+1)*64][0])
	}
	return total
}

// scanUnder is the context-threaded worker both handlers delegate to.
func scanUnder(ctx context.Context, dump []byte) int {
	total := 0
	for b := 0; b < len(dump)/64; b++ {
		if ctx.Err() != nil {
			return total
		}
		total += int(dump[b*64 : (b+1)*64][0])
	}
	return total
}

// HandleScan reaches a dump-block loop from a handler, scanning under the
// request's context: the *http.Request carries cancellation, so the
// missing context.Context parameter is not a finding.
func HandleScan(w http.ResponseWriter, r *http.Request) {
	dump, err := io.ReadAll(r.Body)
	if err != nil {
		return
	}
	scanUnder(r.Context(), dump)
}

// HandleScanBad reaches the same loop but severs the request's
// cancellation by manufacturing its own context.
func HandleScanBad(w http.ResponseWriter, r *http.Request) {
	dump, err := io.ReadAll(r.Body)
	if err != nil {
		return
	}
	scanUnder(context.Background(), dump) // want ctxthread
}
