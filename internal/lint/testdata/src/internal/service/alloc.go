package service

// redactBlocks allocates inside a per-block hot loop: the allocloop rule
// now covers the service package.
func redactBlocks(dump []byte) [][]byte {
	var out [][]byte
	for b := 0; b < len(dump)/64; b++ {
		buf := make([]byte, 64) // want allocloop
		copy(buf, dump[b*64:(b+1)*64])
		out = append(out, buf)
	}
	return out
}

// redactBlocksPooled reuses one buffer: not a finding.
func redactBlocksPooled(dump []byte) int {
	buf := make([]byte, 64)
	total := 0
	for b := 0; b < len(dump)/64; b++ {
		copy(buf, dump[b*64:(b+1)*64])
		total += int(buf[0])
	}
	return total
}

var _ = redactBlocks
var _ = redactBlocksPooled
