package service

// journalBlocks records one event payload per dump block but allocates it
// fresh inside the per-block loop: a finding — a journal ring on the
// serving hot path must reuse its entry buffers.
func journalBlocks(dump []byte) [][]byte {
	var events [][]byte
	for b := 0; b < len(dump)/64; b++ {
		payload := make([]byte, 64) // want allocloop
		copy(payload, dump[b*64:(b+1)*64])
		events = append(events, payload)
	}
	return events
}

// journalBlocksRing writes into a fixed ring of preallocated entries, the
// shape the real obs.Journal uses: not a finding.
func journalBlocksRing(dump []byte) int {
	ring := make([][]byte, 8)
	for i := range ring {
		ring[i] = make([]byte, 64)
	}
	seq := 0
	for b := 0; b < len(dump)/64; b++ {
		copy(ring[seq%len(ring)], dump[b*64:(b+1)*64])
		seq++
	}
	return seq
}

var _ = journalBlocks
var _ = journalBlocksRing
