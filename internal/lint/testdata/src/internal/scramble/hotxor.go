// Package scramble is a hotxor fixture: it poses as the real hot-path
// scramble package, so byte-indexed XOR loops here must be flagged.
package scramble

// xorInto is the memcpy-with-xor shape PR 1 eliminated.
func xorInto(dst, a, b []byte) {
	for i := 0; i < len(dst); i++ {
		dst[i] = a[i] ^ b[i] // want hotxor
	}
}

// xorAssign is the in-place variant.
func xorAssign(dst, key []byte) {
	for i := range dst {
		dst[i] ^= key[i] // want hotxor
	}
}

// copyOnly moves bytes without XOR: not a finding.
func copyOnly(dst, src []byte) {
	for i := range dst {
		dst[i] = src[i]
	}
}

// xorWords XORs uint64 lanes — that IS the kernel shape, not a finding.
func xorWords(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = a[i] ^ b[i]
	}
}

var _ = xorInto
var _ = xorAssign
var _ = copyOnly
var _ = xorWords
