// Package aes is a keyflow fixture stub: the producer entry points below
// are configured taint sources, so what matters is how callers handle
// their results, not what these bodies do.
package aes

// RecoverMasterKey rewinds a key schedule back to its master key.
func RecoverMasterKey(schedule []byte) []byte {
	master := make([]byte, 16)
	copy(master, schedule)
	return master
}

// ExpandKeyBytes expands a master key into a full round-key schedule.
func ExpandKeyBytes(master []byte) []byte {
	sched := make([]byte, 176)
	copy(sched, master)
	return sched
}
