// Package other is NOT a hot-path package: the same byte-XOR loop that is
// a finding in internal/scramble is fine here.
package other

func xorBytes(dst, a, b []byte) {
	for i := range dst {
		dst[i] = a[i] ^ b[i]
	}
}

var _ = xorBytes
