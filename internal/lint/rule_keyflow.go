package lint

// keyflow: interprocedural secret-taint analysis (PR 8).
//
// The repo's entire purpose is to recover key material from memory dumps;
// the paper's threat model is that such bytes linger. keyflow enforces the
// repo-side contract: recovered masters, schedules, and scanner outputs
// (the *sources* below) must never be formatted, logged, written out, or
// converted to string (the *sinks*), unless laundered through a sanctioner
// (*sanitizers*: sha256 fingerprinting via internal/secret, or any call
// into internal/secret, whose package is opaque to this analysis).
//
// The analysis is a classic monotone taint propagation over the shared
// module call graph:
//
//   - Each function body is analyzed to a local fixpoint: assignments,
//     ranges, copy/append, sends, and composite literals grow a set of
//     tainted objects seeded from tainted parameters and the configured
//     source calls / secret struct fields.
//   - Taint flows DOWN into callees (argument position -> parameter) and
//     UP through return values, iterated over a worklist to a global
//     fixpoint. Receivers deliberately do not carry taint: the fan-out
//     through shared interfaces (obs.Tracer et al.) would drown the
//     analysis in false positives, and no secret in this repo flows
//     through a receiver.
//   - Findings are reported at the sink site, so every //lint:ignore
//     annotation sits next to the actual escape it excuses.
//
// Known, accepted imprecision: calls through function-typed variables and
// closures are not resolved (sinks inside function literal bodies still
// fire, because literals share the enclosing function's object space), and
// package-level variables are not tracked.
//
// One sink nuance: a []byte->string conversion used directly as a map
// INDEX READ (m[string(k)]) or as the key of builtin delete is exempt —
// the compiler does not retain that string — while a map STORE with a
// converted key retains it and is reported.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// keyflowSources maps producer functions (module-relative key) to a
// description of the key material they return. "...Into" sources also
// taint their first argument (the destination buffer).
var keyflowSources = map[string]string{
	"internal/aes.RecoverMasterKey":     "recovered AES master",
	"internal/aes.RecoverMasterKeyInto": "recovered AES master",
	"internal/aes.ExpandKey":            "expanded AES key schedule",
	"internal/aes.ExpandKeyInto":        "expanded AES key schedule",
	"internal/aes.ExpandKeyBytes":       "expanded AES key schedule",
	"internal/aes.ExpandKeyBytesInto":   "expanded AES key schedule",
	"internal/core.MasterFromHit":       "recovered AES master",
	"internal/secret.Bytes.Reveal":      "revealed secret bytes",
}

// keyflowFields marks struct fields that hold key material at rest; any
// read of these fields is a taint source.
var keyflowFields = map[string]string{
	"internal/core.FoundKey.Master":      "FoundKey master",
	"internal/core.huntScratch.master":   "hunt scratch master",
	"internal/core.repairScratch.master": "repair scratch master",
	"internal/core.repairScratch.best":   "repair scratch master",
	"internal/core.repairScratch.sched":  "repair scratch schedule",
	"internal/core.repairScratch.ref":    "repair scratch schedule",
	"internal/core.verifyOutcome.final":  "memoized master",
	"internal/core.ScheduleCache.m":      "cached key schedule",
	"internal/keyfind.Finding.Master":    "keyfind candidate master",
	"internal/format.Finding.Key":        "format scanner key",
}

// keyflowSinks are external escape points beyond the blanket fmt/log and
// string-conversion sinks, keyed like keyflowSources.
var keyflowSinks = map[string]string{
	"os.WriteFile":                  "file write",
	"os.File.Write":                 "file write",
	"os.File.WriteString":           "file write",
	"os.File.WriteAt":               "file write",
	"encoding/json.Marshal":         "JSON marshal",
	"encoding/json.MarshalIndent":   "JSON marshal",
	"encoding/json.Encoder.Encode":  "JSON egress",
	"net/http.Error":                "HTTP error egress",
	"net/http.ResponseWriter.Write": "HTTP response egress",
	// Span attributes are telemetry: they ride the fleet wire
	// worker→coordinator and render in /metrics, event streams, and Chrome
	// traces. Keys appear there as sha256 fingerprints only. (obs.A itself
	// is a module function, so taint flows through it into these calls.)
	"internal/obs.Span.SetAttr":     "span attribute telemetry egress",
	"internal/obs.Span.Child":       "span attribute telemetry egress",
	"internal/obs.Tracer.StartSpan": "span attribute telemetry egress",
}

// keyflowPropagators are external functions whose result is a re-encoding
// of their arguments: taint flows through them (they are NOT sanitizers).
var keyflowPropagators = map[string]bool{
	"encoding/hex.EncodeToString":             true,
	"encoding/hex.AppendEncode":               true,
	"encoding/hex.Dump":                       true,
	"encoding/base64.Encoding.EncodeToString": true,
	"bytes.Clone":                             true,
	"bytes.Join":                              true,
	"slices.Clone":                            true,
}

type keyflowRule struct{}

func (keyflowRule) ID() string { return "keyflow" }
func (keyflowRule) Doc() string {
	return "recovered key material must not be formatted, logged, written out, or converted to string outside internal/secret (PR 8)"
}

func (keyflowRule) Check(m *Module, p *Package) []Finding {
	if !keyflowReports(p.RelPath) {
		return nil
	}
	return m.keyflowFindings()[p.RelPath]
}

// keyflowReports says whether a package is inside the keyflow enforcement
// boundary (both analyzed and reported). The cmd/ binaries print keys by
// explicit operator request and build synthetic dumps with schedules
// planted in them; examples are demos; internal/secret is the sanctioned
// owner of key bytes. All three are outside the boundary — the
// multi-tenant surface the rule protects is the library + service.
func keyflowReports(rel string) bool {
	if rel == "internal/secret" {
		return false
	}
	if strings.HasPrefix(rel, "cmd/") || rel == "examples" || strings.HasPrefix(rel, "examples/") {
		return false
	}
	return true
}

// keyflowFindings runs (once) and caches the whole-module taint analysis.
func (m *Module) keyflowFindings() map[string][]Finding {
	if m.keyflowF == nil {
		e := newTaintEngine(m)
		e.solve()
		m.keyflowF = e.report()
	}
	return m.keyflowF
}

type taintUnit struct {
	fn       *types.Func
	decl     *ast.FuncDecl
	pkg      *Package
	params   []*types.Var // no receiver: receivers do not carry taint
	paramWhy []string     // "" = untainted; set at most once (monotone)
	results  []*types.Var
	retWhy   string
	queued   bool
}

type taintEngine struct {
	m        *Module
	g        *callGraph
	units    map[*types.Func]*taintUnit
	order    []*taintUnit
	callers  map[*types.Func][]*taintUnit
	fieldWhy map[*types.Var]string
	queue    []*taintUnit
}

func newTaintEngine(m *Module) *taintEngine {
	e := &taintEngine{
		m:        m,
		g:        m.graph(),
		units:    make(map[*types.Func]*taintUnit),
		callers:  make(map[*types.Func][]*taintUnit),
		fieldWhy: make(map[*types.Var]string),
	}
	for _, p := range m.Pkgs {
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				key := p.RelPath + "." + tn.Name() + "." + f.Name()
				if why, ok := keyflowFields[key]; ok {
					e.fieldWhy[f] = why
				}
			}
		}
	}
	for _, p := range m.Pkgs {
		// internal/secret is the opaque sanitizer; cmd/ and examples/ are
		// operator tools that plant schedules into synthetic dumps and
		// print keys by explicit request — analyzing their bodies would
		// taint every dump image they build and flood the module.
		if !keyflowReports(p.RelPath) {
			continue
		}
		for _, file := range p.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				u := &taintUnit{fn: fn, decl: fd, pkg: p}
				sig := fn.Type().(*types.Signature)
				for i := 0; i < sig.Params().Len(); i++ {
					u.params = append(u.params, sig.Params().At(i))
				}
				u.paramWhy = make([]string, len(u.params))
				for i := 0; i < sig.Results().Len(); i++ {
					u.results = append(u.results, sig.Results().At(i))
				}
				e.units[fn] = u
				e.order = append(e.order, u)
			}
		}
	}
	for caller, callees := range e.g.calls {
		cu := e.units[caller]
		if cu == nil {
			continue
		}
		for callee := range callees {
			if e.units[callee] != nil {
				e.callers[callee] = append(e.callers[callee], cu)
			}
		}
	}
	return e
}

func (e *taintEngine) push(u *taintUnit) {
	if !u.queued {
		u.queued = true
		e.queue = append(e.queue, u)
	}
}

// solve iterates the per-function analyses to a global fixpoint. Both
// paramWhy entries and retWhy are set at most once, so the worklist
// strictly shrinks once saturation is reached.
func (e *taintEngine) solve() {
	for _, u := range e.order {
		e.push(u)
	}
	for len(e.queue) > 0 {
		u := e.queue[0]
		e.queue = e.queue[1:]
		u.queued = false
		before := u.retWhy
		e.analyze(u, nil)
		if u.retWhy != before {
			for _, c := range e.callers[u.fn] {
				e.push(c)
			}
		}
	}
}

func (e *taintEngine) report() map[string][]Finding {
	out := make(map[string][]Finding)
	for _, u := range e.order {
		rel := u.pkg.RelPath
		if !keyflowReports(rel) {
			continue
		}
		e.analyze(u, func(pos token.Pos, msg string) {
			out[rel] = append(out[rel], Finding{
				Pos:  e.m.Fset.Position(pos),
				Rule: "keyflow",
				Msg:  msg,
			})
		})
	}
	return out
}

func (e *taintEngine) analyze(u *taintUnit, emit func(token.Pos, string)) {
	t := &fnTaint{
		e:       e,
		u:       u,
		info:    u.pkg.Info,
		tainted: make(map[types.Object]string),
		fieldT:  make(map[types.Object]map[*types.Var]string),
	}
	for i, p := range u.params {
		if u.paramWhy[i] != "" {
			t.tainted[p] = u.paramWhy[i]
		}
	}
	for pass := 0; pass < 32; pass++ {
		t.changed = false
		t.grow(u.decl.Body)
		if !t.changed {
			break
		}
	}
	t.finish(u.decl.Body, emit)
	t.returns(u.decl)
}

// funcKey names a function for the config tables: module packages use
// their module-relative path, external packages their import path, and
// methods append "Type.Name".
func (e *taintEngine) funcKey(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return fn.Name()
	}
	path := pkg.Path()
	if path == e.m.Path {
		path = ""
	} else if rest, ok := strings.CutPrefix(path, e.m.Path+"/"); ok {
		path = rest
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedRecvType(sig.Recv().Type()); named != nil {
			name = named.Obj().Name() + "." + name
		}
	}
	if path == "" {
		return name
	}
	return path + "." + name
}

func namedRecvType(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isSecretBytes reports whether t is (a pointer to) secret.Bytes — the
// sanctioned container, exempt from taint: its String() redacts.
func (e *taintEngine) isSecretBytes(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Bytes" && obj.Pkg() != nil && obj.Pkg().Path() == e.m.Path+"/internal/secret"
}

// taintable filters taint to types that can actually retain key material:
// numerics, bools, function values and tuples never carry it.
func (e *taintEngine) taintable(t types.Type) bool {
	if t == nil || e.isSecretBytes(t) {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Signature, *types.Tuple:
		return false
	}
	return true
}

// fnTaint is the per-function analysis state. Taint is tracked at two
// granularities: tainted marks whole objects (direct assignment, range,
// parameter seeding), while fieldT records per-field stores (obj.f = x),
// so storing a master into one field of a context struct does not taint
// sibling fields — without this, AttackRun/huntScratch would taint every
// dump window and config string they carry.
type fnTaint struct {
	e       *taintEngine
	u       *taintUnit
	info    *types.Info
	tainted map[types.Object]string
	fieldT  map[types.Object]map[*types.Var]string
	changed bool
}

// grow runs one pass of intra-procedural propagation, descending into
// function literals (they share the enclosing object space).
func (t *fnTaint) grow(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Rhs) == 1 && len(x.Lhs) > 1 {
				if why := t.taintOf(x.Rhs[0]); why != "" {
					for _, lhs := range x.Lhs {
						t.taintLHS(lhs, why)
					}
				}
			} else {
				for i := range x.Lhs {
					if i < len(x.Rhs) {
						if why := t.taintOf(x.Rhs[i]); why != "" {
							t.taintLHS(x.Lhs[i], why)
						}
					}
				}
			}
		case *ast.ValueSpec:
			if len(x.Values) == 1 && len(x.Names) > 1 {
				if why := t.taintOf(x.Values[0]); why != "" {
					for _, nm := range x.Names {
						t.taintLHS(nm, why)
					}
				}
			} else {
				for i, nm := range x.Names {
					if i < len(x.Values) {
						if why := t.taintOf(x.Values[i]); why != "" {
							t.taintLHS(nm, why)
						}
					}
				}
			}
		case *ast.RangeStmt:
			if why := t.taintOf(x.X); why != "" {
				if x.Key != nil {
					t.taintLHS(x.Key, why)
				}
				if x.Value != nil {
					t.taintLHS(x.Value, why)
				}
			}
		case *ast.SendStmt:
			if why := t.taintOf(x.Value); why != "" {
				t.taintLHS(x.Chan, why)
			}
		case *ast.CallExpr:
			// copy(dst, src): dst inherits src's taint.
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "copy" && len(x.Args) == 2 {
				if _, isBuiltin := t.info.Uses[id].(*types.Builtin); isBuiltin {
					if why := t.taintOf(x.Args[1]); why != "" {
						t.taintLHS(x.Args[0], why)
					}
				}
			}
			// "...Into" sources write key material into their first arg.
			for _, fn := range resolveCallees(t.info, x, t.e.g.impls) {
				if why := keyflowSources[t.e.funcKey(fn)]; why != "" && strings.HasSuffix(fn.Name(), "Into") && len(x.Args) > 0 {
					t.taintLHS(x.Args[0], why)
				}
			}
		}
		return true
	})
}

// finish propagates argument taint into module callees (updating the
// global fixpoint) and, when emit is set, reports sink escapes.
func (t *fnTaint) finish(body *ast.BlockStmt, emit func(token.Pos, string)) {
	var exempt map[*ast.CallExpr]bool
	if emit != nil {
		exempt = t.buildExempt(body)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, isConv := t.info.Types[call.Fun]; !isConv || !tv.IsType() {
			for _, fn := range resolveCallees(t.info, call, t.e.g.impls) {
				cu := t.e.units[fn]
				if cu == nil || len(cu.params) == 0 {
					continue
				}
				for i, a := range call.Args {
					why := t.taintOf(a)
					if why == "" {
						continue
					}
					idx := i
					if idx >= len(cu.params) {
						idx = len(cu.params) - 1 // variadic tail
					}
					// Dump-named parameters are a declassification
					// barrier: a dump is attacker INPUT. Scenario builders
					// plant schedules inside simulated images, so without
					// this cut the whole dump — and everything windowed
					// from it — would count as secret and drown the rule.
					if dumpishName(cu.params[idx].Name()) {
						continue
					}
					if cu.paramWhy[idx] == "" && t.e.taintable(cu.params[idx].Type()) {
						cu.paramWhy[idx] = why
						t.e.push(cu)
					}
				}
			}
		}
		if emit != nil {
			t.sinkCheck(call, exempt, emit)
		}
		return true
	})
}

// returns recomputes the unit's return-taint; `return` inside a function
// literal returns from the literal, so literals are skipped here.
func (t *fnTaint) returns(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			if len(x.Results) == 0 {
				for _, ro := range t.u.results {
					if why := t.tainted[ro]; why != "" {
						t.setRet(why)
					}
				}
			}
			for _, r := range x.Results {
				if why := t.taintOf(r); why != "" {
					t.setRet(why)
				}
			}
		}
		return true
	})
}

func (t *fnTaint) setRet(why string) {
	if t.u.retWhy == "" {
		t.u.retWhy = why
	}
}

// taintOf computes the taint of an expression under the current state.
func (t *fnTaint) taintOf(e ast.Expr) string {
	if e == nil {
		return ""
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := t.info.Uses[x]
		if obj == nil {
			obj = t.info.Defs[x]
		}
		if obj == nil {
			return ""
		}
		return t.tainted[obj]
	case *ast.SelectorExpr:
		if sel, ok := t.info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				if why := t.e.fieldWhy[v]; why != "" {
					return why
				}
				// Dump-named fields are the same declassification
				// barrier as dump-named parameters: Outcome.GroundDump
				// on an Outcome that also carries TrueMasters is still
				// attacker input, not a secret.
				if dumpishName(v.Name()) {
					return ""
				}
				// Field read through a simple base: precise — only the
				// whole-object taint or THIS field's stores count, not
				// sibling-field stores.
				if base, ok := ast.Unparen(x.X).(*ast.Ident); ok {
					obj := t.info.Uses[base]
					if obj == nil {
						obj = t.info.Defs[base]
					}
					if obj != nil {
						if why := t.tainted[obj]; why != "" {
							return why
						}
						return t.fieldT[obj][v]
					}
				}
			}
		}
		return t.taintOf(x.X)
	case *ast.IndexExpr:
		return t.taintOf(x.X)
	case *ast.SliceExpr:
		return t.taintOf(x.X)
	case *ast.StarExpr:
		return t.taintOf(x.X)
	case *ast.UnaryExpr:
		return t.taintOf(x.X)
	case *ast.TypeAssertExpr:
		return t.taintOf(x.X)
	case *ast.BinaryExpr:
		if why := t.taintOf(x.X); why != "" {
			return why
		}
		return t.taintOf(x.Y)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if why := t.taintOf(v); why != "" {
				return why
			}
		}
	case *ast.CallExpr:
		return t.callTaint(x)
	}
	return ""
}

// callTaint computes the taint of a call's result.
func (t *fnTaint) callTaint(call *ast.CallExpr) string {
	if tv, ok := t.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return t.taintOf(call.Args[0]) // conversions propagate
		}
		return ""
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := t.info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "append" {
				for _, a := range call.Args {
					if why := t.taintOf(a); why != "" {
						return why
					}
				}
			}
			return ""
		}
	}
	for _, fn := range resolveCallees(t.info, call, t.e.g.impls) {
		key := t.e.funcKey(fn)
		if why := keyflowSources[key]; why != "" {
			return why
		}
		if cu := t.e.units[fn]; cu != nil {
			if cu.retWhy != "" {
				return cu.retWhy
			}
			continue
		}
		if keyflowPropagators[key] {
			for _, a := range call.Args {
				if why := t.taintOf(a); why != "" {
					return why
				}
			}
		}
	}
	return ""
}

// taintLHS taints the target written by an lvalue (or argument buffer):
// x = v taints x wholly, base.f = v taints only field f of base,
// m[k] = v taints m, *p = v taints p.
func (t *fnTaint) taintLHS(lhs ast.Expr, why string) {
	for {
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if l.Name == "_" {
				return
			}
			obj := t.info.Defs[l]
			if obj == nil {
				obj = t.info.Uses[l]
			}
			if obj == nil || !t.e.taintable(obj.Type()) {
				return
			}
			if t.tainted[obj] == "" {
				t.tainted[obj] = why
				t.changed = true
			}
			return
		case *ast.SelectorExpr:
			if sel, ok := t.info.Selections[l]; ok && sel.Kind() == types.FieldVal {
				if base, ok := ast.Unparen(l.X).(*ast.Ident); ok {
					obj := t.info.Uses[base]
					if obj == nil {
						obj = t.info.Defs[base]
					}
					fv, isVar := sel.Obj().(*types.Var)
					if obj != nil && isVar && t.e.taintable(fv.Type()) {
						if t.fieldT[obj] == nil {
							t.fieldT[obj] = make(map[*types.Var]string)
						}
						if t.fieldT[obj][fv] == "" {
							t.fieldT[obj][fv] = why
							t.changed = true
						}
						return
					}
				}
			}
			lhs = l.X
		case *ast.IndexExpr:
			lhs = l.X
		case *ast.StarExpr:
			lhs = l.X
		case *ast.SliceExpr:
			lhs = l.X
		default:
			return
		}
	}
}

// buildExempt collects []byte->string conversions whose result the
// compiler provably does not retain: map index reads and delete keys.
func (t *fnTaint) buildExempt(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	exempt := make(map[*ast.CallExpr]bool)
	conv := func(e ast.Expr) *ast.CallExpr {
		c, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return nil
		}
		if tv, ok := t.info.Types[c.Fun]; !ok || !tv.IsType() {
			return nil
		}
		return c
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IndexExpr:
			if tv, ok := t.info.Types[x.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					if c := conv(x.Index); c != nil {
						exempt[c] = true
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "delete" && len(x.Args) == 2 {
				if _, isBuiltin := t.info.Uses[id].(*types.Builtin); isBuiltin {
					if c := conv(x.Args[1]); c != nil {
						exempt[c] = true
					}
				}
			}
		}
		return true
	})
	// A converted key on the LHS of an assignment is a map store: the map
	// retains the string, so it is not exempt after all.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
				if c := conv(ix.Index); c != nil {
					delete(exempt, c)
				}
			}
		}
		return true
	})
	return exempt
}

// sinkCheck reports escapes of tainted values at this call.
func (t *fnTaint) sinkCheck(call *ast.CallExpr, exempt map[*ast.CallExpr]bool, emit func(token.Pos, string)) {
	info := t.info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && isStringType(tv.Type) && isByteSliceOrArray(info, call.Args[0]) && !exempt[call] {
			if why := t.taintOf(call.Args[0]); why != "" {
				emit(call.Pos(), fmt.Sprintf("string conversion retains %s in an unwipeable copy; keep []byte and secret.Wipe it, or report secret.Fingerprint", why))
			}
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "print" || id.Name == "println" {
				for _, a := range call.Args {
					if why := t.taintOf(a); why != "" {
						emit(call.Pos(), fmt.Sprintf("%s reaches builtin %s; pass secret.Fingerprint, never key bytes", why, id.Name))
						return
					}
				}
			}
			return
		}
	}
	callees := resolveCallees(info, call, t.e.g.impls)
	// An interface method call resolves to module implementers only; for
	// an interface owned outside the module (http.ResponseWriter) there
	// are none, so the interface method itself is the sink identity.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
			if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				if _, isIface := s.Recv().Underlying().(*types.Interface); isIface {
					callees = append(callees, fn)
				}
			}
		}
	}
	for _, fn := range callees {
		pkg := fn.Pkg()
		if pkg == nil || t.e.units[fn] != nil {
			continue // module functions are covered by param propagation
		}
		key := t.e.funcKey(fn)
		desc := ""
		switch {
		case pkg.Path() == "fmt" || pkg.Path() == "log":
			desc = "formatting escape"
		default:
			if d, ok := keyflowSinks[key]; ok {
				desc = d + " escape"
			}
		}
		if desc == "" {
			continue
		}
		for _, a := range call.Args {
			if tv, ok := info.Types[a]; ok && t.e.isSecretBytes(tv.Type) {
				continue // secret.Bytes redacts itself when formatted
			}
			if why := t.taintOf(a); why != "" {
				emit(call.Pos(), fmt.Sprintf("%s reaches %s (%s); pass secret.Fingerprint, never key bytes", why, key, desc))
				return
			}
		}
	}
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
