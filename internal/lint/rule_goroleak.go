package lint

// goroleak: goroutines in internal/* must have a termination path (PR 8).
//
// A `go` statement launching a function whose body loops forever with no
// way to be told to stop is a leak: under the service (PR 4) every hunt
// runs in a long-lived process, so an orphaned worker pins its dump
// buffers — including descrambled key-bearing windows — for the life of
// the daemon. The rule accepts a goroutine if any of these hold:
//
//   - its body contains no for/range loop (it is bounded by construction);
//   - it references a context.Context (ctx.Err/ctx.Done cancellation);
//   - it calls Done on a sync.WaitGroup (the launcher waits for it);
//   - it ranges over a channel (closed by the producer);
//   - it receives from a channel (<-done / select-based shutdown).
//
// Goroutines launched through a function value that cannot be resolved
// statically are reported too: the launcher cannot prove termination for
// a callee it does not know.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

type goroleakRule struct{}

func (goroleakRule) ID() string { return "goroleak" }
func (goroleakRule) Doc() string {
	return "goroutines in internal/* must have a context/WaitGroup/channel termination path (PR 8)"
}

func (goroleakRule) Check(m *Module, p *Package) []Finding {
	if !strings.HasPrefix(p.RelPath, "internal/") {
		return nil
	}
	g := m.graph()
	var out []Finding
	emit := func(n ast.Node, msg string) {
		out = append(out, Finding{Pos: m.Fset.Position(n.Pos()), Rule: "goroleak", Msg: msg})
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			name := "goroutine"
			if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
				body = lit.Body
			} else if fn := staticCallee(p.Info, gs.Call); fn != nil {
				if decl := g.decls[fn]; decl != nil {
					body = decl.Body
					name = fn.Name()
				} else {
					return true // external callee (e.g. stdlib): not ours to prove
				}
			} else {
				emit(gs, "goroutine launches a dynamic function value; cannot prove it terminates — launch a named worker with a context/WaitGroup instead")
				return true
			}
			if !goroutineTerminates(p.Info, body) {
				emit(gs, fmt.Sprintf("%s loops without a termination path; thread a context.Context, WaitGroup Done, or a done channel", name))
			}
			return true
		})
	}
	return out
}

// goroutineTerminates applies the acceptance criteria from the rule doc to
// a goroutine body.
func goroutineTerminates(info *types.Info, body *ast.BlockStmt) bool {
	hasLoop := false
	hasSignal := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt:
			hasLoop = true
		case *ast.RangeStmt:
			hasLoop = true
			if tv, ok := info.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					hasSignal = true
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				hasSignal = true
			}
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil && isContextType(obj.Type()) {
				hasSignal = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if tv, ok := info.Types[sel.X]; ok && isWaitGroup(tv.Type) {
					hasSignal = true
				}
			}
		}
		return true
	})
	return !hasLoop || hasSignal
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
