package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture loads a testdata tree posing as the real module, so the
// package-scoped rules (hotxor, ctxthread, ...) apply to it.
func loadFixture(t *testing.T, rel string) *Module {
	t.Helper()
	m, err := LoadModuleAs(filepath.Join("testdata", rel), "coldboot")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", rel, err)
	}
	return m
}

// wantMarkerRE matches trailing "// want rule [rule...]" expectations in
// fixture sources.
var wantMarkerRE = regexp.MustCompile(`//\s*want\s+([a-z][a-z ]*[a-z])\s*$`)

// collectWantMarkers scans a fixture tree for // want markers and returns
// the expected findings as "file:line:rule" keys (file module-relative).
func collectWantMarkers(t *testing.T, dir string) map[string]bool {
	t.Helper()
	want := make(map[string]bool)
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			match := wantMarkerRE.FindStringSubmatch(sc.Text())
			if match == nil {
				continue
			}
			for _, rule := range strings.Fields(match[1]) {
				want[fmt.Sprintf("%s:%d:%s", filepath.ToSlash(rel), line, rule)] = true
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatalf("collecting want markers: %v", err)
	}
	return want
}

func findingKey(f Finding) string {
	return fmt.Sprintf("%s:%d:%s", filepath.ToSlash(f.Pos.Filename), f.Pos.Line, f.Rule)
}

// TestFixturesMatchWantMarkers runs the whole suite over the fixture tree
// and requires the findings to match the // want markers exactly — every
// marked line fires (positive fixtures) and nothing unmarked fires
// (negative fixtures).
func TestFixturesMatchWantMarkers(t *testing.T) {
	m := loadFixture(t, "src")
	want := collectWantMarkers(t, filepath.Join("testdata", "src"))
	if len(want) == 0 {
		t.Fatal("no want markers found in testdata/src")
	}

	got := make(map[string]Finding)
	for _, f := range Run(m, Options{}) {
		got[findingKey(f)] = f
	}
	for key := range want {
		if _, ok := got[key]; !ok {
			t.Errorf("expected finding %s did not fire", key)
		}
	}
	for key, f := range got {
		if !want[key] {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

// TestEveryRuleHasPositiveFixture guards the fixture tree itself: each of
// the six rules must keep at least one positive fixture.
func TestEveryRuleHasPositiveFixture(t *testing.T) {
	want := collectWantMarkers(t, filepath.Join("testdata", "src"))
	covered := make(map[string]bool)
	for key := range want {
		covered[key[strings.LastIndex(key, ":")+1:]] = true
	}
	for _, r := range Rules() {
		if !covered[r.ID()] {
			t.Errorf("rule %s has no positive fixture under testdata/src", r.ID())
		}
	}
}

// TestIgnoreDirectives checks the escape hatch end to end: well-formed
// directives suppress their findings (and only with ignores enabled), and
// malformed directives are themselves reported under "lintdirective".
func TestIgnoreDirectives(t *testing.T) {
	m := loadFixture(t, "ignore")

	countRules := func(findings []Finding) map[string]int {
		n := make(map[string]int)
		for _, f := range findings {
			n[f.Rule]++
		}
		return n
	}

	withIgnores := countRules(Run(m, Options{}))
	if withIgnores["noweakrand"] != 0 || withIgnores["hotxor"] != 0 {
		t.Errorf("suppressed findings leaked through ignores: %v", withIgnores)
	}
	if withIgnores[DirectiveRuleID] != 3 {
		t.Errorf("want 3 lintdirective findings for the malformed directives, got %d", withIgnores[DirectiveRuleID])
	}

	raw := countRules(Run(m, Options{NoIgnores: true}))
	if raw["noweakrand"] != 1 || raw["hotxor"] != 1 {
		t.Errorf("NoIgnores run must surface the suppressed findings, got %v", raw)
	}
	if raw[DirectiveRuleID] != 0 {
		t.Errorf("NoIgnores run must not report directives, got %d", raw[DirectiveRuleID])
	}
}

// TestStaleSuppressions: a well-formed //lint:ignore whose rule no longer
// fires at its site is itself reported under lintstale, and the NoIgnores
// run — which skips directive processing entirely — stays silent about it.
func TestStaleSuppressions(t *testing.T) {
	m := loadFixture(t, "ignore")

	var stale []Finding
	for _, f := range Run(m, Options{}) {
		if f.Rule == StaleRuleID {
			stale = append(stale, f)
		}
	}
	if len(stale) != 1 {
		t.Fatalf("want exactly 1 lintstale finding, got %d: %v", len(stale), stale)
	}
	if f := stale[0]; !strings.HasSuffix(f.Pos.Filename, "stale.go") {
		t.Errorf("lintstale finding at %s, want the stale.go fixture", f.Pos.Filename)
	} else if !strings.Contains(f.Msg, "hotxor") {
		t.Errorf("lintstale message %q does not name the stale rule", f.Msg)
	}

	for _, f := range Run(m, Options{NoIgnores: true}) {
		if f.Rule == StaleRuleID {
			t.Errorf("NoIgnores run must not report stale directives: %s", f)
		}
	}
}

// TestMalformedDirectiveMessages pins the three malformed-directive
// diagnoses to their lines in testdata/ignore/internal/scramble/bad.go.
func TestMalformedDirectiveMessages(t *testing.T) {
	m := loadFixture(t, "ignore")
	wantByLine := map[int]string{
		5:  "missing rule-id and reason",
		8:  `unknown rule-id "nosuchrule"`,
		11: "missing reason",
	}
	seen := 0
	for _, f := range Run(m, Options{}) {
		if f.Rule != DirectiveRuleID {
			continue
		}
		seen++
		wantSub, ok := wantByLine[f.Pos.Line]
		if !ok {
			t.Errorf("lintdirective finding at unexpected line %d: %s", f.Pos.Line, f.Msg)
			continue
		}
		if !strings.Contains(f.Msg, wantSub) {
			t.Errorf("line %d: message %q does not mention %q", f.Pos.Line, f.Msg, wantSub)
		}
	}
	if seen != len(wantByLine) {
		t.Errorf("want %d lintdirective findings, got %d", len(wantByLine), seen)
	}
}

// TestFindingString pins the CLI output format.
func TestFindingString(t *testing.T) {
	f := Finding{Rule: "hotxor", Msg: "byte loop"}
	f.Pos.Filename = "internal/aes/xts.go"
	f.Pos.Line = 77
	if got, want := f.String(), "internal/aes/xts.go:77: hotxor: byte loop"; got != want {
		t.Errorf("Finding.String() = %q, want %q", got, want)
	}
}

// TestRealModuleIsClean runs the suite over the repository itself: the tree
// must stay lint-clean (this is the same gate `make lint` enforces, kept
// here so plain `go test ./...` catches regressions too).
func TestRealModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load is slow; run without -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadModule(root)
	if err != nil {
		t.Fatalf("loading repository module: %v", err)
	}
	for _, f := range Run(m, Options{}) {
		t.Errorf("repository finding: %s", f)
	}
}
