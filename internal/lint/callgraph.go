package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Shared whole-module analysis: a static call graph with interface-dispatch
// over-approximation, and detection of "dump-block loops" — the long-running
// scans the ctxthread and allocloop rules care about.
//
// A dump-block loop is a for/range statement whose body re-slices a []byte
// that is, by the repo's naming convention, dump-scale data: an identifier
// named like a dump or image ("dump", "groundDump", "image", "img", "sub",
// ...) sliced with a non-constant low bound. Windowed re-slicing of a
// dump-named buffer inside a loop is the signature of per-block scanning
// (hunt workers, scanRange, schedule verification); byte-at-a-time index
// loops over small fixed buffers deliberately do not match.

type callGraph struct {
	// calls maps each module function to its statically resolved callees
	// (function-literal bodies are attributed to the enclosing declaration;
	// interface method calls fan out to every module method implementing
	// the interface).
	calls map[*types.Func]map[*types.Func]bool
	// blockLoop maps functions whose own body contains a dump-block loop to
	// the position of the first such loop.
	blockLoop map[*types.Func]token.Pos
	// blockLoops lists every dump-block loop statement per function.
	blockLoops map[*types.Func][]ast.Stmt
	// reaches marks functions whose call graph (reflexively) reaches a
	// dump-block loop.
	reaches map[*types.Func]bool
	// decls maps module functions to their declarations.
	decls map[*types.Func]*ast.FuncDecl
	// impls resolves an interface method to its concrete module
	// implementations, including methods promoted through embedding. The
	// taint pass reuses it to fan out calls at dynamic dispatch sites.
	impls func(*types.Interface, string) []*types.Func
}

// graph builds (once) and returns the module's shared call-graph analysis.
func (m *Module) graph() *callGraph {
	if m.callgph != nil {
		return m.callgph
	}
	g := &callGraph{
		calls:      make(map[*types.Func]map[*types.Func]bool),
		blockLoop:  make(map[*types.Func]token.Pos),
		blockLoops: make(map[*types.Func][]ast.Stmt),
		reaches:    make(map[*types.Func]bool),
		decls:      make(map[*types.Func]*ast.FuncDecl),
	}

	// Collect every named (incl. interface) type in the module for
	// interface-dispatch expansion.
	var moduleNamed []*types.Named
	var moduleIfaces []*types.Named
	for _, p := range m.Pkgs {
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				moduleIfaces = append(moduleIfaces, named)
			} else {
				moduleNamed = append(moduleNamed, named)
			}
		}
	}
	_ = moduleIfaces

	// implementers(iface, methodName) -> concrete module methods. The
	// lookup goes through the full (pointer) method set rather than the
	// named type's declared methods so implementations promoted from an
	// embedded field still resolve.
	implementers := func(iface *types.Interface, method string) []*types.Func {
		var out []*types.Func
		for _, named := range moduleNamed {
			impl := types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface)
			if !impl {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), method)
			if fn, ok := obj.(*types.Func); ok {
				out = append(out, fn)
			}
		}
		return out
	}
	g.impls = implementers

	for _, p := range m.Pkgs {
		info := p.Info
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				g.decls[fn] = fd
				if g.calls[fn] == nil {
					g.calls[fn] = make(map[*types.Func]bool)
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.CallExpr:
						for _, callee := range resolveCallees(info, n, implementers) {
							g.calls[fn][callee] = true
						}
					case *ast.SelectorExpr:
						// A method value (f := x.M) may be invoked anywhere
						// downstream, so the reference itself is an edge;
						// values bound through an interface fan out like a
						// dynamic call would.
						if mf, ok := info.Uses[n.Sel].(*types.Func); ok {
							if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal {
								if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
									for _, impl := range implementers(iface, mf.Name()) {
										g.calls[fn][impl] = true
									}
								}
							}
						}
					case *ast.Ident:
						// Plain function references (handler tables, method
						// expressions, callbacks) are conservative edges too.
						if mf, ok := info.Uses[n].(*types.Func); ok {
							g.calls[fn][mf] = true
						}
					case *ast.ForStmt:
						if isBlockLoop(info, n.Body) {
							g.noteBlockLoop(fn, n)
						}
					case *ast.RangeStmt:
						if isBlockLoop(info, n.Body) {
							g.noteBlockLoop(fn, n)
						}
					}
					return true
				})
			}
		}
	}

	// Reverse reachability: a function reaches a block loop if it contains
	// one or calls (transitively) a function that does.
	callers := make(map[*types.Func][]*types.Func)
	for caller, callees := range g.calls {
		for callee := range callees {
			callers[callee] = append(callers[callee], caller)
		}
	}
	var queue []*types.Func
	for fn := range g.blockLoop {
		g.reaches[fn] = true
		queue = append(queue, fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, caller := range callers[fn] {
			if !g.reaches[caller] {
				g.reaches[caller] = true
				queue = append(queue, caller)
			}
		}
	}

	m.callgph = g
	return g
}

func (g *callGraph) noteBlockLoop(fn *types.Func, loop ast.Stmt) {
	if _, ok := g.blockLoop[fn]; !ok {
		g.blockLoop[fn] = loop.Pos()
	}
	g.blockLoops[fn] = append(g.blockLoops[fn], loop)
}

// resolveCallees statically resolves a call expression to module functions.
// Direct calls and method calls with concrete receivers resolve exactly;
// calls through an interface fan out to every module implementation of that
// interface method.
func resolveCallees(info *types.Info, call *ast.CallExpr, implementers func(*types.Interface, string) []*types.Func) []*types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return []*types.Func{fn}
		}
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return nil
		}
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				return implementers(iface, fn.Name())
			}
		}
		return []*types.Func{fn}
	}
	return nil
}

// dumpishName reports whether an identifier names dump-scale data by the
// repo's conventions.
func dumpishName(name string) bool {
	switch name {
	case "image", "img", "sub":
		return true
	}
	return strings.Contains(name, "dump") || strings.Contains(name, "Dump")
}

// isBlockLoop reports whether a loop body windows through a dump-named
// []byte: a slice expression whose operand's root identifier is dumpish and
// whose low bound is a non-constant expression.
func isBlockLoop(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		// A function literal is its own execution context (e.g. a goroutine
		// launched per worker): its loops are recorded separately when they
		// qualify, so the launching loop is not itself per-block.
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		se, ok := n.(*ast.SliceExpr)
		if !ok {
			return true
		}
		if se.Low == nil {
			return true
		}
		if tv, ok := info.Types[se.Low]; ok && tv.Value != nil {
			return true // constant low bound: not a sliding window
		}
		if !isByteSliceOrArray(info, se.X) {
			return true
		}
		if root := rootIdent(se.X); root != nil && dumpishName(root.Name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isByteSliceOrArray reports whether e has type []byte or [N]byte (or
// pointer to either).
func isByteSliceOrArray(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type.Underlying()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem().Underlying()
	}
	switch t := t.(type) {
	case *types.Slice:
		return isByte(t.Elem())
	case *types.Array:
		return isByte(t.Elem())
	}
	return false
}

func isByte(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Byte)
}

// rootIdent peels index, slice, selector, star and paren wrappers down to
// the base identifier of an expression, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.Sel // field name carries the convention (m.dump, run.Dump)
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr:
			return nil
		default:
			return nil
		}
	}
}

// mentionsIdentObj reports whether expr references any of the given objects.
func mentionsIdentObj(info *types.Info, expr ast.Expr, objs map[types.Object]bool) bool {
	if expr == nil || len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && objs[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// loopVars returns the objects that drive a for/range statement: range key
// and value variables, or variables declared in Init / advanced in Post /
// assigned in the body while appearing in the condition.
func loopVars(info *types.Info, loop ast.Stmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	addIdent := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				vars[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	switch l := loop.(type) {
	case *ast.RangeStmt:
		addIdent(l.Key)
		addIdent(l.Value)
	case *ast.ForStmt:
		collectAssigned := func(s ast.Stmt) {
			switch s := s.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					addIdent(lhs)
				}
			case *ast.IncDecStmt:
				addIdent(s.X)
			}
		}
		if l.Init != nil {
			collectAssigned(l.Init)
		}
		if l.Post != nil {
			collectAssigned(l.Post)
		}
		// `for pos < n { ...; pos += chunk }` style: body-advanced condition
		// variables count as loop variables too.
		if l.Cond != nil && l.Body != nil {
			condIdents := make(map[types.Object]bool)
			ast.Inspect(l.Cond, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						condIdents[obj] = true
					}
				}
				return true
			})
			ast.Inspect(l.Body, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range s.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							if obj := info.Uses[id]; obj != nil && condIdents[obj] {
								vars[obj] = true
							}
						}
					}
				case *ast.IncDecStmt:
					if id, ok := s.X.(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil && condIdents[obj] {
							vars[obj] = true
						}
					}
				}
				return true
			})
		}
	}
	return vars
}
