package lint

import (
	"go/types"
	"testing"
)

// graphFn resolves a function in the fixture module by its go/types full
// name, e.g. "coldboot/internal/flow.tick" or
// "(*coldboot/internal/flow.Runner).Run".
func graphFn(t *testing.T, g *callGraph, full string) *types.Func {
	t.Helper()
	for fn := range g.decls {
		if fn.FullName() == full {
			return fn
		}
	}
	t.Fatalf("function %s not found in fixture call graph", full)
	return nil
}

// TestCallGraphEdges pins the conservative edges the rules depend on:
// method-value references, defer/go attribution, and interface dispatch
// resolving to a method promoted from an embedded type.
func TestCallGraphEdges(t *testing.T) {
	m := loadFixture(t, "graph")
	g := m.graph()

	edge := func(caller, callee string) bool {
		return g.calls[graphFn(t, g, caller)][graphFn(t, g, callee)]
	}

	const (
		run   = "(*coldboot/internal/flow.Runner).Run"
		step  = "(*coldboot/internal/flow.base).Step"
		tick  = "coldboot/internal/flow.tick"
		drive = "coldboot/internal/flow.Drive"
		bind  = "coldboot/internal/flow.Bind"
		launc = "coldboot/internal/flow.Launch"
	)

	// Interface dispatch through the embedded type: Drive calls
	// Stepper.Step, whose only module implementation is promoted from
	// base into Machine.
	if !edge(drive, step) {
		t.Errorf("Drive -> (*base).Step edge missing: interface dispatch must resolve promoted methods")
	}

	// defer r.Run() and the spawned literal's tick() both belong to
	// Launch.
	if !edge(launc, run) {
		t.Errorf("Launch -> Run edge missing: deferred calls must be attributed to the launcher")
	}
	if !edge(launc, tick) {
		t.Errorf("Launch -> tick edge missing: go-statement literal bodies must be attributed to the launcher")
	}

	// A method value bound but never called in Bind is still an edge.
	if !edge(bind, run) {
		t.Errorf("Bind -> Run edge missing: method-value references are conservative call edges")
	}

	// Sanity: no fabricated reverse edge.
	if edge(tick, drive) {
		t.Errorf("tick -> Drive edge present: the graph invented a caller")
	}
}
