package lint

import (
	"go/token"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos    token.Position
	rule   string
	reason string
	bad    string // non-empty: why the directive is malformed
}

const ignorePrefix = "//lint:ignore"

// parseIgnores extracts every //lint:ignore directive from the module's
// comments. Well-formed directives carry a known rule-id and a non-empty
// reason; anything else comes back with bad set.
func parseIgnores(m *Module) []ignoreDirective {
	known := knownRuleIDs()
	var out []ignoreDirective
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					rest := c.Text[len(ignorePrefix):]
					if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
						continue // e.g. //lint:ignoreXXX — not a directive
					}
					d := ignoreDirective{pos: m.Fset.Position(c.Pos())}
					fields := strings.Fields(rest)
					switch {
					case len(fields) == 0:
						d.bad = "missing rule-id and reason"
					case !known[fields[0]]:
						d.bad = "unknown rule-id " + quoted(fields[0])
						d.rule = fields[0]
					case len(fields) == 1:
						d.bad = "missing reason (want //lint:ignore " + fields[0] + " reason)"
						d.rule = fields[0]
					default:
						d.rule = fields[0]
						d.reason = strings.Join(fields[1:], " ")
					}
					out = append(out, d)
				}
			}
		}
	}
	return out
}

func quoted(s string) string { return "\"" + s + "\"" }

// applyIgnores filters findings through the module's ignore directives. A
// well-formed directive suppresses findings of its rule on the directive's
// own line (trailing comment) or the line immediately below (comment-above
// style). Malformed directives are appended as lintdirective findings, and
// well-formed directives that suppressed nothing are stale — the exception
// they excused no longer exists — and are reported under lintstale so the
// inventory of deliberate exceptions stays honest.
func applyIgnores(m *Module, findings []Finding) []Finding {
	type key struct {
		file string
		line int
		rule string
	}
	directives := parseIgnores(m)
	// suppress maps a (file, line, rule) to the indices of the directives
	// that would suppress a finding there, so consumption can be tracked.
	suppress := make(map[key][]int)
	consumed := make([]bool, len(directives))
	var out []Finding
	for i, d := range directives {
		if d.bad != "" {
			consumed[i] = true // malformed: reported as lintdirective instead
			out = append(out, Finding{
				Pos:  d.pos,
				Rule: DirectiveRuleID,
				Msg:  "malformed //lint:ignore directive: " + d.bad,
			})
			continue
		}
		k0 := key{d.pos.Filename, d.pos.Line, d.rule}
		k1 := key{d.pos.Filename, d.pos.Line + 1, d.rule}
		suppress[k0] = append(suppress[k0], i)
		suppress[k1] = append(suppress[k1], i)
	}
	for _, f := range findings {
		if idxs := suppress[key{f.Pos.Filename, f.Pos.Line, f.Rule}]; len(idxs) > 0 {
			for _, i := range idxs {
				consumed[i] = true
			}
			continue
		}
		out = append(out, f)
	}
	for i, d := range directives {
		if consumed[i] {
			continue
		}
		out = append(out, Finding{
			Pos:  d.pos,
			Rule: StaleRuleID,
			Msg:  "stale //lint:ignore " + d.rule + " directive: the rule no longer fires here — remove it",
		})
	}
	return out
}
