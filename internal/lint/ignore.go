package lint

import (
	"go/token"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos    token.Position
	rule   string
	reason string
	bad    string // non-empty: why the directive is malformed
}

const ignorePrefix = "//lint:ignore"

// parseIgnores extracts every //lint:ignore directive from the module's
// comments. Well-formed directives carry a known rule-id and a non-empty
// reason; anything else comes back with bad set.
func parseIgnores(m *Module) []ignoreDirective {
	known := knownRuleIDs()
	var out []ignoreDirective
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					rest := c.Text[len(ignorePrefix):]
					if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
						continue // e.g. //lint:ignoreXXX — not a directive
					}
					d := ignoreDirective{pos: m.Fset.Position(c.Pos())}
					fields := strings.Fields(rest)
					switch {
					case len(fields) == 0:
						d.bad = "missing rule-id and reason"
					case !known[fields[0]]:
						d.bad = "unknown rule-id " + quoted(fields[0])
						d.rule = fields[0]
					case len(fields) == 1:
						d.bad = "missing reason (want //lint:ignore " + fields[0] + " reason)"
						d.rule = fields[0]
					default:
						d.rule = fields[0]
						d.reason = strings.Join(fields[1:], " ")
					}
					out = append(out, d)
				}
			}
		}
	}
	return out
}

func quoted(s string) string { return "\"" + s + "\"" }

// applyIgnores filters findings through the module's ignore directives. A
// well-formed directive suppresses findings of its rule on the directive's
// own line (trailing comment) or the line immediately below (comment-above
// style). Malformed directives are appended as lintdirective findings.
func applyIgnores(m *Module, findings []Finding) []Finding {
	type key struct {
		file string
		line int
		rule string
	}
	suppress := make(map[key]bool)
	var out []Finding
	for _, d := range parseIgnores(m) {
		if d.bad != "" {
			out = append(out, Finding{
				Pos:  d.pos,
				Rule: DirectiveRuleID,
				Msg:  "malformed //lint:ignore directive: " + d.bad,
			})
			continue
		}
		suppress[key{d.pos.Filename, d.pos.Line, d.rule}] = true
		suppress[key{d.pos.Filename, d.pos.Line + 1, d.rule}] = true
	}
	for _, f := range findings {
		if suppress[key{f.Pos.Filename, f.Pos.Line, f.Rule}] {
			continue
		}
		out = append(out, f)
	}
	return out
}
