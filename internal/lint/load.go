package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// RelPath is the module-relative import path: "" for the module root
	// package, "internal/core", "cmd/coldboot", ...
	RelPath string
	// Files are the parsed non-test sources, sorted by filename.
	Files []*ast.File
	// Types and Info are the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// Module is the fully loaded analysis unit: every non-test package of one
// Go module, parsed and type-checked, sharing one FileSet.
type Module struct {
	Fset    *token.FileSet
	Path    string // module path from go.mod (e.g. "coldboot")
	Dir     string // module root directory
	Pkgs    []*Package
	byPath  map[string]*Package
	callgph *callGraph // lazily built shared analysis (see callgraph.go)
	// cached whole-module rule results by RelPath
	keyflowF   map[string][]Finding
	lockguardF map[string][]Finding
}

// PkgByRel returns the package with the given module-relative path, or nil.
func (m *Module) PkgByRel(rel string) *Package { return m.byPath[rel] }

var moduleLineRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// LoadModule locates go.mod in dir and loads every non-test package under
// it. Test files (_test.go) are excluded: the contracts the rules enforce
// are library/binary contracts, and several rules (noweakrand, noprint)
// explicitly exempt tests.
func LoadModule(dir string) (*Module, error) {
	gomod, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	match := moduleLineRE.FindSubmatch(gomod)
	if match == nil {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", dir)
	}
	return LoadModuleAs(dir, string(match[1]))
}

// LoadModuleAs loads the module rooted at dir under the given module path
// without consulting go.mod (the self-test fixtures use this to pose as the
// real module so package-scoped rules apply to them).
func LoadModuleAs(dir, modulePath string) (*Module, error) {
	m := &Module{
		Fset:   token.NewFileSet(),
		Path:   modulePath,
		Dir:    dir,
		byPath: make(map[string]*Package),
	}

	parsed := make(map[string][]*ast.File) // relpath -> files
	names := make(map[string][]string)     // relpath -> filenames (parallel)
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != dir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		// Positions carry the module-relative name (clean "pkg/file.go:NN"
		// findings); the contents are passed explicitly so loading works
		// regardless of the process working directory.
		f, err := parser.ParseFile(m.Fset, rel, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		pkgRel := filepath.ToSlash(filepath.Dir(rel))
		if pkgRel == "." {
			pkgRel = ""
		}
		parsed[pkgRel] = append(parsed[pkgRel], f)
		names[pkgRel] = append(names[pkgRel], rel)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Deterministic file order within each package.
	for rel := range parsed {
		files, fnames := parsed[rel], names[rel]
		sort.Sort(&parallelSort{keys: fnames, files: files})
	}

	order, err := topoOrder(m.Path, parsed)
	if err != nil {
		return nil, err
	}

	srcImporter := importer.ForCompiler(m.Fset, "source", nil)
	for _, rel := range order {
		pkg := &Package{RelPath: rel, Files: parsed[rel]}
		pkg.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{
			Importer: &moduleImporter{mod: m, std: srcImporter},
		}
		tpkg, err := conf.Check(importPathFor(m.Path, rel), m.Fset, pkg.Files, pkg.Info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", importPathFor(m.Path, rel), err)
		}
		pkg.Types = tpkg
		m.Pkgs = append(m.Pkgs, pkg)
		m.byPath[rel] = pkg
	}
	return m, nil
}

func importPathFor(modulePath, rel string) string {
	if rel == "" {
		return modulePath
	}
	return modulePath + "/" + rel
}

// relPathFor inverts importPathFor; ok is false for non-module paths.
func relPathFor(modulePath, importPath string) (string, bool) {
	if importPath == modulePath {
		return "", true
	}
	if strings.HasPrefix(importPath, modulePath+"/") {
		return importPath[len(modulePath)+1:], true
	}
	return "", false
}

// topoOrder sorts the module's packages so every package is type-checked
// after all its intra-module imports.
func topoOrder(modulePath string, parsed map[string][]*ast.File) ([]string, error) {
	deps := make(map[string][]string)
	for rel, files := range parsed {
		seen := make(map[string]bool)
		for _, f := range files {
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if depRel, ok := relPathFor(modulePath, p); ok && !seen[depRel] {
					seen[depRel] = true
					if _, exists := parsed[depRel]; !exists {
						return nil, fmt.Errorf("lint: %s imports %s which has no sources", rel, p)
					}
					deps[rel] = append(deps[rel], depRel)
				}
			}
		}
		sort.Strings(deps[rel])
	}

	rels := make([]string, 0, len(parsed))
	for rel := range parsed {
		rels = append(rels, rel)
	}
	sort.Strings(rels)

	var order []string
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(rel string) error
	visit = func(rel string) error {
		switch state[rel] {
		case 1:
			return fmt.Errorf("lint: import cycle through %q", rel)
		case 2:
			return nil
		}
		state[rel] = 1
		for _, d := range deps[rel] {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[rel] = 2
		order = append(order, rel)
		return nil
	}
	for _, rel := range rels {
		if err := visit(rel); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves intra-module imports from the packages already
// type-checked (topoOrder guarantees availability) and everything else —
// the standard library — through the source importer, so the whole load
// needs nothing beyond GOROOT sources.
type moduleImporter struct {
	mod *Module
	std types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if rel, ok := relPathFor(mi.mod.Path, path); ok {
		if p := mi.mod.byPath[rel]; p != nil {
			return p.Types, nil
		}
		return nil, fmt.Errorf("lint: module package %q not yet loaded", path)
	}
	return mi.std.Import(path)
}

// parallelSort sorts files by filename keeping the two slices aligned.
type parallelSort struct {
	keys  []string
	files []*ast.File
}

func (p *parallelSort) Len() int           { return len(p.keys) }
func (p *parallelSort) Less(i, j int) bool { return p.keys[i] < p.keys[j] }
func (p *parallelSort) Swap(i, j int) {
	p.keys[i], p.keys[j] = p.keys[j], p.keys[i]
	p.files[i], p.files[j] = p.files[j], p.files[i]
}
