package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxthreadRule enforces PR 2's cancellation contract: exported functions
// in the attack-pipeline packages whose call graph reaches a loop over dump
// blocks must accept a context.Context, and a function that was handed a
// context must not manufacture its own with context.Background() or
// context.TODO().
//
// The one sanctioned exception is the documented compat-wrapper ("bridge")
// shape — a body of at most two statements whose only call delegates to a
// context-taking sibling with context.Background() as the first argument
// (e.g. Attack -> AttackContext). Anything else needs an explicit
// //lint:ignore with a reason.
type ctxthreadRule struct{}

func (ctxthreadRule) ID() string { return "ctxthread" }

func (ctxthreadRule) Doc() string {
	return "exported dump-scanning APIs must thread context.Context and not call context.Background() (PR 2 contract)"
}

// ctxthreadPackages are the packages holding long-running exported attack
// APIs. internal/service is included for its handler-rooted paths: an HTTP
// handler that reaches a dump-block loop must scan under the request's
// context (r.Context()), not a manufactured one.
// The format subsystem is included: ScanContext drives whole-image block
// scans, so an exported scan entry point there must be cancellable too.
// The fleet is included: Coordinator.Run and Worker.Run drive whole
// campaigns across machines and must stay cancellable end to end.
var ctxthreadPackages = map[string]bool{
	"":                         true, // module root (coldboot)
	"internal/core":            true,
	"internal/keyfind":         true,
	"internal/service":         true,
	"internal/fleet":           true,
	"internal/format":          true,
	"internal/format/aesxts":   true,
	"internal/format/chacha20": true,
	"internal/format/luks2":    true,
}

func (r ctxthreadRule) Check(m *Module, p *Package) []Finding {
	if !ctxthreadPackages[p.RelPath] {
		return nil
	}
	g := m.graph()
	info := p.Info
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			if fn == nil || !g.reaches[fn] {
				continue
			}
			if !hasContextParam(fn) {
				if hasRequestParam(fn) {
					// Handler-rooted path: the *http.Request carries the
					// caller's context (r.Context()), so the signature is
					// fine — but the body must actually scan under it.
					if pos, found := callsBackgroundContext(info, fd.Body); found {
						out = append(out, Finding{
							Pos:  m.Fset.Position(pos),
							Rule: r.ID(),
							Msg:  fn.Name() + " handles an *http.Request whose r.Context() carries cancellation, but manufactures context.Background()/TODO() for a dump-block scan",
						})
					}
					continue
				}
				if isContextBridge(info, fd) {
					continue
				}
				out = append(out, Finding{
					Pos:  m.Fset.Position(fd.Name.Pos()),
					Rule: r.ID(),
					Msg:  "exported " + fn.Name() + " reaches a dump-block scan but takes no context.Context (cancellation contract, PR 2)",
				})
				continue
			}
			if pos, found := callsBackgroundContext(info, fd.Body); found {
				out = append(out, Finding{
					Pos:  m.Fset.Position(pos),
					Rule: r.ID(),
					Msg:  fn.Name() + " takes a context.Context but manufactures its own with context.Background()/TODO()",
				})
			}
		}
	}
	return out
}

// hasContextParam reports whether any parameter of fn is context.Context.
func hasContextParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// hasRequestParam reports whether any parameter of fn is *net/http.Request
// — the handler shape, whose request carries the caller's context.
func hasRequestParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		ptr, ok := sig.Params().At(i).Type().(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http" {
			return true
		}
	}
	return false
}

// isContextBridge recognizes the sanctioned compat-wrapper shape: at most
// two body statements, delegating to a function whose first parameter is a
// context.Context with context.Background() passed for it.
func isContextBridge(info *types.Info, fd *ast.FuncDecl) bool {
	if len(fd.Body.List) > 2 {
		return false
	}
	bridged := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		calleeSig := calleeSignature(info, call)
		if calleeSig == nil || calleeSig.Params().Len() == 0 || !isContextType(calleeSig.Params().At(0).Type()) {
			return true
		}
		if argCall, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); ok {
			if fn := staticCallee(info, argCall); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
				bridged = true
				return false
			}
		}
		return true
	})
	return bridged
}

func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	if fn := staticCallee(info, call); fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok {
			return sig
		}
	}
	// Function-typed variables and fields.
	if tv, ok := info.Types[call.Fun]; ok && tv.Type != nil {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// callsBackgroundContext finds a context.Background()/TODO() call in body,
// excluding those blessed by the bridge shape (the caller checks that
// separately).
func callsBackgroundContext(info *types.Info, body *ast.BlockStmt) (pos token.Pos, found bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := staticCallee(info, call); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
			pos, found = call.Pos(), true
			return false
		}
		return true
	})
	return pos, found
}
