// Package secret is the sanctioned owner of recovered key material. The
// whole repo exists to pull AES masters and volume keys out of memory
// dumps; the paper's threat model (and the "Lest We Remember" /
// "Security Through Amnesia" lineage it extends) is exactly that such
// bytes linger. So our own copies are held behind this package: a
// *Bytes owns one secret buffer, hands out raw views only through an
// explicit Reveal(), and zeroes the buffer on Destroy(). Free helpers
// (Wipe, WipeWords, WipeFile, Fingerprint) cover the scratch buffers and
// spool files that cannot be wrapped.
//
// The keyflow lint rule (internal/lint) is built around this package: it
// treats Reveal() as a taint source, calls into this package as
// sanitizers, and everything else that formats, stringifies, or writes
// tainted bytes as a finding. Code outside this package should never
// need to format key bytes — Fingerprint gives a stable, shareable
// identity instead.
package secret

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"runtime"
)

// Wipe zeroes b in place. runtime.KeepAlive pins the buffer so the write
// cannot be elided as a dead store ahead of a GC release.
func Wipe(b []byte) {
	for i := range b {
		b[i] = 0
	}
	runtime.KeepAlive(&b)
}

// WipeWords zeroes a word buffer (schedule word views, litmus scratch).
func WipeWords(w []uint32) {
	for i := range w {
		w[i] = 0
	}
	runtime.KeepAlive(&w)
}

// Fingerprint is the redacted identity of a secret: "sha256:" plus the
// first 6 bytes of the SHA-256, enough to correlate sightings across
// jobs and dumps without ever shipping key bytes.
func Fingerprint(b []byte) string {
	sum := sha256.Sum256(b)
	return "sha256:" + hex.EncodeToString(sum[:6])
}

// Bytes owns one secret buffer. New copies the input (the caller's copy
// remains the caller's responsibility); Reveal returns the raw bytes for
// a sanctioned use; Destroy zeroes them. A destroyed or nil *Bytes
// reveals nil and fingerprints as the empty string.
type Bytes struct {
	buf []byte
	fp  string
}

// New wraps a copy of b. The fingerprint is computed eagerly so it stays
// available after Destroy.
func New(b []byte) *Bytes {
	return &Bytes{buf: append([]byte(nil), b...), fp: Fingerprint(b)}
}

// Reveal returns the raw secret bytes. Callers must not retain the slice
// past the owner's Destroy. This is the package's only way out for raw
// key material; the keyflow rule treats every call as a taint source.
func (s *Bytes) Reveal() []byte {
	if s == nil {
		return nil
	}
	return s.buf
}

// Destroy zeroes and drops the buffer. Idempotent.
func (s *Bytes) Destroy() {
	if s == nil || s.buf == nil {
		return
	}
	Wipe(s.buf)
	s.buf = nil
}

// Destroyed reports whether Destroy has run (or the Bytes is nil/empty).
func (s *Bytes) Destroyed() bool { return s == nil || s.buf == nil }

// Len returns the secret's length in bytes (0 after Destroy).
func (s *Bytes) Len() int {
	if s == nil {
		return 0
	}
	return len(s.buf)
}

// Fingerprint returns the secret's redacted identity; it survives
// Destroy so reports can keep correlating a wiped key.
func (s *Bytes) Fingerprint() string {
	if s == nil {
		return ""
	}
	return s.fp
}

// String redacts: a *Bytes dropped into a format string or error prints
// its fingerprint, never key bytes.
func (s *Bytes) String() string {
	if s == nil || s.buf == nil {
		return "secret.Bytes(destroyed)"
	}
	return "secret.Bytes(" + s.fp + ")"
}

// WipeFile overwrites the file's current contents with zeros and syncs,
// so deleting it afterwards does not leave key-bearing bytes recoverable
// from the backing store. Best effort: the first error is returned but
// the caller should still remove the file.
func WipeFile(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	var zeros [32 * 1024]byte
	remaining := st.Size()
	for remaining > 0 {
		n := int64(len(zeros))
		if remaining < n {
			n = remaining
		}
		if _, err := f.Write(zeros[:n]); err != nil {
			return err
		}
		remaining -= n
	}
	return f.Sync()
}
